// Package problems defines the six simple PO-checkable graph
// optimisation problems of Example 1.1 of the paper — minimum vertex
// cover, minimum edge cover, maximum matching, maximum independent
// set, minimum dominating set, and minimum edge dominating set — each
// with a global feasibility test, a local (PO-checkable) verifier, and
// an exact optimum solver.
//
// A problem is PO-checkable when a constant-radius anonymous local
// algorithm can verify feasibility: every node inspects its radius-R
// ball together with the solution restricted to the ball, and the
// solution is feasible iff every node accepts. The local verifiers
// here receive only that restricted information, so PO-checkability
// holds by construction; tests confirm that the conjunction of local
// verdicts coincides with global feasibility.
package problems

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/solve"
)

// Goal is the optimisation direction.
type Goal int

const (
	// Minimize means smaller feasible solutions are better.
	Minimize Goal = iota + 1
	// Maximize means larger feasible solutions are better.
	Maximize
)

// LocalView is the information a verifying node sees: its radius-R
// ball, its own position, and the solution restricted to the ball.
type LocalView struct {
	// Ball is the ball subgraph (vertices relabelled 0..k-1).
	Ball *graph.Graph
	// Root is the verifying node's index in the ball.
	Root int
	// Dist[i] is the distance from the root to ball vertex i.
	Dist []int
	// Member[i] reports whether ball vertex i is in the solution
	// (vertex problems).
	Member []bool
	// EdgeIn reports whether a ball edge is in the solution (edge
	// problems); keys use ball indices.
	EdgeIn map[graph.Edge]bool
}

// Problem is one of the paper's simple graph optimisation problems.
type Problem interface {
	// Name is a short identifier, e.g. "min-vertex-cover".
	Name() string
	// Kind says whether solutions are vertex or edge subsets.
	Kind() model.Kind
	// Goal is the optimisation direction.
	Goal() Goal
	// VerifierRadius is the locality radius of the PO-checkable
	// verifier.
	VerifierRadius() int
	// AcceptLocal is the local verifier: the per-node feasibility
	// verdict from the node's restricted view.
	AcceptLocal(lv *LocalView) bool
	// Feasible checks a solution globally (nil = feasible).
	Feasible(g *graph.Graph, sol *model.Solution) error
	// Optimum returns the exact optimum value.
	Optimum(g *graph.Graph) (int, error)
}

// All returns the six problems of Example 1.1.
func All() []Problem {
	return []Problem{
		MinVertexCover{}, MinEdgeCover{}, MaxMatching{},
		MaxIndependentSet{}, MinDominatingSet{}, MinEdgeDominatingSet{},
	}
}

// ByName returns the problem with the given name.
func ByName(name string) (Problem, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("problems: unknown problem %q", name)
}

// VerifyLocally runs the PO-checkable verifier of p at every node and
// reports whether all nodes accept — the paper's definition of a
// feasible solution of a PO-checkable problem.
func VerifyLocally(p Problem, g *graph.Graph, sol *model.Solution) bool {
	for v := 0; v < g.N(); v++ {
		if !p.AcceptLocal(BuildLocalView(p, g, sol, v)) {
			return false
		}
	}
	return true
}

// BuildLocalView extracts the restricted information for a verifying
// node.
func BuildLocalView(p Problem, g *graph.Graph, sol *model.Solution, v int) *LocalView {
	r := p.VerifierRadius()
	verts := g.Ball(v, r)
	sub, idx := g.InducedSubgraph(verts)
	lv := &LocalView{Ball: sub, Dist: make([]int, len(verts))}
	lv.Root = idx[v]
	distFromRoot, _ := sub.BFS(lv.Root)
	copy(lv.Dist, distFromRoot)
	if sol.Kind == model.VertexKind {
		lv.Member = make([]bool, len(verts))
		for i, u := range verts {
			lv.Member[i] = sol.Vertices[u]
		}
	} else {
		lv.EdgeIn = make(map[graph.Edge]bool)
		for _, e := range sub.Edges() {
			hostEdge := graph.NewEdge(verts[e.U], verts[e.V])
			if sol.Edges[hostEdge] {
				lv.EdgeIn[e] = true
			}
		}
	}
	return lv
}

// Ratio returns the approximation ratio of sol for problem p on g,
// normalised to be >= 1 (|sol|/opt when minimising, opt/|sol| when
// maximising). An infeasible solution yields an error; an empty
// solution of a maximisation problem with a nonzero optimum yields
// +Inf.
func Ratio(p Problem, g *graph.Graph, sol *model.Solution) (float64, error) {
	if err := p.Feasible(g, sol); err != nil {
		return 0, fmt.Errorf("problems: infeasible solution: %w", err)
	}
	opt, err := p.Optimum(g)
	if err != nil {
		return 0, err
	}
	size := sol.Size()
	switch p.Goal() {
	case Minimize:
		if opt == 0 {
			if size == 0 {
				return 1, nil
			}
			return math.Inf(1), nil
		}
		return float64(size) / float64(opt), nil
	default:
		if size == 0 {
			if opt == 0 {
				return 1, nil
			}
			return math.Inf(1), nil
		}
		return float64(opt) / float64(size), nil
	}
}

// rootEdges lists the ball edges incident to the root.
func rootEdges(lv *LocalView) []graph.Edge {
	var out []graph.Edge
	for _, u := range lv.Ball.Neighbors(lv.Root) {
		out = append(out, graph.NewEdge(lv.Root, int(u)))
	}
	return out
}

// hasIncidentSelected reports whether ball vertex u has an incident
// selected edge.
func hasIncidentSelected(lv *LocalView, u int) bool {
	for _, w := range lv.Ball.Neighbors(u) {
		if lv.EdgeIn[graph.NewEdge(u, int(w))] {
			return true
		}
	}
	return false
}

// MinVertexCover: a set of vertices touching every edge; minimise.
type MinVertexCover struct{}

// Name implements Problem.
func (MinVertexCover) Name() string { return "min-vertex-cover" }

// Kind implements Problem.
func (MinVertexCover) Kind() model.Kind { return model.VertexKind }

// Goal implements Problem.
func (MinVertexCover) Goal() Goal { return Minimize }

// VerifierRadius implements Problem.
func (MinVertexCover) VerifierRadius() int { return 1 }

// AcceptLocal implements Problem: every edge at the root is covered.
func (MinVertexCover) AcceptLocal(lv *LocalView) bool {
	for _, u := range lv.Ball.Neighbors(lv.Root) {
		if !lv.Member[lv.Root] && !lv.Member[u] {
			return false
		}
	}
	return true
}

// Feasible implements Problem.
func (p MinVertexCover) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.VertexKind {
		return fmt.Errorf("vertex cover needs a vertex solution")
	}
	for _, e := range g.Edges() {
		if !sol.Vertices[e.U] && !sol.Vertices[e.V] {
			return fmt.Errorf("edge %v uncovered", e)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MinVertexCover) Optimum(g *graph.Graph) (int, error) {
	return solve.MinVertexCoverSize(g), nil
}

// MinEdgeCover: a set of edges touching every vertex; minimise.
type MinEdgeCover struct{}

// Name implements Problem.
func (MinEdgeCover) Name() string { return "min-edge-cover" }

// Kind implements Problem.
func (MinEdgeCover) Kind() model.Kind { return model.EdgeKind }

// Goal implements Problem.
func (MinEdgeCover) Goal() Goal { return Minimize }

// VerifierRadius implements Problem.
func (MinEdgeCover) VerifierRadius() int { return 1 }

// AcceptLocal implements Problem: the root is covered.
func (MinEdgeCover) AcceptLocal(lv *LocalView) bool {
	return hasIncidentSelected(lv, lv.Root)
}

// Feasible implements Problem.
func (p MinEdgeCover) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.EdgeKind {
		return fmt.Errorf("edge cover needs an edge solution")
	}
	if err := edgesExist(g, sol); err != nil {
		return err
	}
	covered := make([]bool, g.N())
	for e := range sol.Edges {
		covered[e.U], covered[e.V] = true, true
	}
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			return fmt.Errorf("vertex %d uncovered", v)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MinEdgeCover) Optimum(g *graph.Graph) (int, error) {
	return solve.MinEdgeCoverSize(g)
}

// MaxMatching: a set of pairwise disjoint edges; maximise.
type MaxMatching struct{}

// Name implements Problem.
func (MaxMatching) Name() string { return "max-matching" }

// Kind implements Problem.
func (MaxMatching) Kind() model.Kind { return model.EdgeKind }

// Goal implements Problem.
func (MaxMatching) Goal() Goal { return Maximize }

// VerifierRadius implements Problem.
func (MaxMatching) VerifierRadius() int { return 1 }

// AcceptLocal implements Problem: at most one selected edge at the root.
func (MaxMatching) AcceptLocal(lv *LocalView) bool {
	cnt := 0
	for _, e := range rootEdges(lv) {
		if lv.EdgeIn[e] {
			cnt++
		}
	}
	return cnt <= 1
}

// Feasible implements Problem.
func (p MaxMatching) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.EdgeKind {
		return fmt.Errorf("matching needs an edge solution")
	}
	if err := edgesExist(g, sol); err != nil {
		return err
	}
	deg := make([]int, g.N())
	for e := range sol.Edges {
		deg[e.U]++
		deg[e.V]++
		if deg[e.U] > 1 || deg[e.V] > 1 {
			return fmt.Errorf("two selected edges share a vertex of %v", e)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MaxMatching) Optimum(g *graph.Graph) (int, error) {
	return solve.MaxMatchingSize(g), nil
}

// MaxIndependentSet: a set of pairwise non-adjacent vertices; maximise.
type MaxIndependentSet struct{}

// Name implements Problem.
func (MaxIndependentSet) Name() string { return "max-independent-set" }

// Kind implements Problem.
func (MaxIndependentSet) Kind() model.Kind { return model.VertexKind }

// Goal implements Problem.
func (MaxIndependentSet) Goal() Goal { return Maximize }

// VerifierRadius implements Problem.
func (MaxIndependentSet) VerifierRadius() int { return 1 }

// AcceptLocal implements Problem: a member root has no member neighbour.
func (MaxIndependentSet) AcceptLocal(lv *LocalView) bool {
	if !lv.Member[lv.Root] {
		return true
	}
	for _, u := range lv.Ball.Neighbors(lv.Root) {
		if lv.Member[u] {
			return false
		}
	}
	return true
}

// Feasible implements Problem.
func (p MaxIndependentSet) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.VertexKind {
		return fmt.Errorf("independent set needs a vertex solution")
	}
	for _, e := range g.Edges() {
		if sol.Vertices[e.U] && sol.Vertices[e.V] {
			return fmt.Errorf("edge %v inside the set", e)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MaxIndependentSet) Optimum(g *graph.Graph) (int, error) {
	return solve.MaxIndependentSetSize(g), nil
}

// MinDominatingSet: a set of vertices whose closed neighbourhoods cover
// all vertices; minimise.
type MinDominatingSet struct{}

// Name implements Problem.
func (MinDominatingSet) Name() string { return "min-dominating-set" }

// Kind implements Problem.
func (MinDominatingSet) Kind() model.Kind { return model.VertexKind }

// Goal implements Problem.
func (MinDominatingSet) Goal() Goal { return Minimize }

// VerifierRadius implements Problem.
func (MinDominatingSet) VerifierRadius() int { return 1 }

// AcceptLocal implements Problem: the root is dominated.
func (MinDominatingSet) AcceptLocal(lv *LocalView) bool {
	if lv.Member[lv.Root] {
		return true
	}
	for _, u := range lv.Ball.Neighbors(lv.Root) {
		if lv.Member[u] {
			return true
		}
	}
	return false
}

// Feasible implements Problem.
func (p MinDominatingSet) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.VertexKind {
		return fmt.Errorf("dominating set needs a vertex solution")
	}
	for v := 0; v < g.N(); v++ {
		if sol.Vertices[v] {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if sol.Vertices[u] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("vertex %d undominated", v)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MinDominatingSet) Optimum(g *graph.Graph) (int, error) {
	return solve.MinDominatingSetSize(g), nil
}

// MinEdgeDominatingSet: a set D of edges such that every edge shares an
// endpoint with an edge of D; minimise.
type MinEdgeDominatingSet struct{}

// Name implements Problem.
func (MinEdgeDominatingSet) Name() string { return "min-edge-dominating-set" }

// Kind implements Problem.
func (MinEdgeDominatingSet) Kind() model.Kind { return model.EdgeKind }

// Goal implements Problem.
func (MinEdgeDominatingSet) Goal() Goal { return Minimize }

// VerifierRadius implements Problem.
func (MinEdgeDominatingSet) VerifierRadius() int { return 2 }

// AcceptLocal implements Problem: every edge at the root is dominated
// by a selected edge visible in the radius-2 ball.
func (MinEdgeDominatingSet) AcceptLocal(lv *LocalView) bool {
	for _, u := range lv.Ball.Neighbors(lv.Root) {
		if !hasIncidentSelected(lv, lv.Root) && !hasIncidentSelected(lv, int(u)) {
			return false
		}
	}
	return true
}

// Feasible implements Problem.
func (p MinEdgeDominatingSet) Feasible(g *graph.Graph, sol *model.Solution) error {
	if sol.Kind != model.EdgeKind {
		return fmt.Errorf("edge dominating set needs an edge solution")
	}
	if err := edgesExist(g, sol); err != nil {
		return err
	}
	touched := make([]bool, g.N())
	for e := range sol.Edges {
		touched[e.U], touched[e.V] = true, true
	}
	for _, e := range g.Edges() {
		if !touched[e.U] && !touched[e.V] {
			return fmt.Errorf("edge %v undominated", e)
		}
	}
	return nil
}

// Optimum implements Problem.
func (MinEdgeDominatingSet) Optimum(g *graph.Graph) (int, error) {
	return solve.MinEdgeDominatingSetSize(g), nil
}

// edgesExist verifies that every selected edge is a host edge.
func edgesExist(g *graph.Graph, sol *model.Solution) error {
	for e := range sol.Edges {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("selected %v is not an edge", e)
		}
	}
	return nil
}

var (
	_ Problem = MinVertexCover{}
	_ Problem = MinEdgeCover{}
	_ Problem = MaxMatching{}
	_ Problem = MaxIndependentSet{}
	_ Problem = MinDominatingSet{}
	_ Problem = MinEdgeDominatingSet{}
)
