package problems

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/model"
)

func vertexSol(n int, members ...int) *model.Solution {
	s := model.NewSolution(model.VertexKind, n)
	for _, v := range members {
		s.Vertices[v] = true
	}
	return s
}

func edgeSol(n int, edges ...[2]int) *model.Solution {
	s := model.NewSolution(model.EdgeKind, n)
	for _, e := range edges {
		s.Edges[graph.NewEdge(e[0], e[1])] = true
	}
	return s
}

func TestAllAndByName(t *testing.T) {
	ps := All()
	if len(ps) != 6 {
		t.Fatalf("expected 6 problems, got %d", len(ps))
	}
	for _, p := range ps {
		got, err := ByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("ByName(%q) failed: %v", p.Name(), err)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestVertexCoverFeasibility(t *testing.T) {
	g := graph.Cycle(4)
	if err := (MinVertexCover{}).Feasible(g, vertexSol(4, 0, 2)); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	}
	if err := (MinVertexCover{}).Feasible(g, vertexSol(4, 0)); err == nil {
		t.Error("non-cover accepted")
	}
	if err := (MinVertexCover{}).Feasible(g, edgeSol(4)); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestEdgeCoverFeasibility(t *testing.T) {
	g := graph.Cycle(4)
	if err := (MinEdgeCover{}).Feasible(g, edgeSol(4, [2]int{0, 1}, [2]int{2, 3})); err != nil {
		t.Errorf("valid edge cover rejected: %v", err)
	}
	if err := (MinEdgeCover{}).Feasible(g, edgeSol(4, [2]int{0, 1})); err == nil {
		t.Error("partial cover accepted")
	}
	if err := (MinEdgeCover{}).Feasible(g, edgeSol(4, [2]int{0, 2})); err == nil {
		t.Error("non-edge accepted")
	}
}

func TestMatchingFeasibility(t *testing.T) {
	g := graph.Cycle(5)
	if err := (MaxMatching{}).Feasible(g, edgeSol(5, [2]int{0, 1}, [2]int{2, 3})); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	if err := (MaxMatching{}).Feasible(g, edgeSol(5, [2]int{0, 1}, [2]int{1, 2})); err == nil {
		t.Error("overlapping edges accepted")
	}
	if err := (MaxMatching{}).Feasible(g, edgeSol(5)); err != nil {
		t.Error("the empty matching is feasible")
	}
}

func TestIndependentSetFeasibility(t *testing.T) {
	g := graph.Cycle(5)
	if err := (MaxIndependentSet{}).Feasible(g, vertexSol(5, 0, 2)); err != nil {
		t.Errorf("valid IS rejected: %v", err)
	}
	if err := (MaxIndependentSet{}).Feasible(g, vertexSol(5, 0, 1)); err == nil {
		t.Error("adjacent members accepted")
	}
}

func TestDominatingSetFeasibility(t *testing.T) {
	g := graph.Cycle(6)
	if err := (MinDominatingSet{}).Feasible(g, vertexSol(6, 0, 3)); err != nil {
		t.Errorf("valid DS rejected: %v", err)
	}
	if err := (MinDominatingSet{}).Feasible(g, vertexSol(6, 0)); err == nil {
		t.Error("non-dominating set accepted")
	}
}

func TestEDSFeasibility(t *testing.T) {
	g := graph.Cycle(6)
	if err := (MinEdgeDominatingSet{}).Feasible(g, edgeSol(6, [2]int{0, 1}, [2]int{3, 4})); err != nil {
		t.Errorf("valid EDS rejected: %v", err)
	}
	if err := (MinEdgeDominatingSet{}).Feasible(g, edgeSol(6, [2]int{0, 1})); err == nil {
		t.Error("non-dominating edge set accepted")
	}
}

// Property: for every problem, the conjunction of local verifier
// verdicts equals global feasibility — i.e., the problems really are
// PO-checkable (LCL) as Example 1.1 claims.
func TestQuickLocalVerifierMatchesGlobal(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 4 + rng.Intn(8)
				g := graph.RandomGraph(n, 0.25+0.4*rng.Float64(), rng)
				sol := model.NewSolution(p.Kind(), n)
				if p.Kind() == model.VertexKind {
					for v := 0; v < n; v++ {
						sol.Vertices[v] = rng.Intn(2) == 0
					}
				} else {
					for _, e := range g.Edges() {
						if rng.Intn(2) == 0 {
							sol.Edges[e] = true
						}
					}
				}
				global := p.Feasible(g, sol) == nil
				local := VerifyLocally(p, g, sol)
				return global == local
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRatioMinimisation(t *testing.T) {
	g := graph.Cycle(4) // τ = 2
	r, err := Ratio(MinVertexCover{}, g, vertexSol(4, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r != 1.5 {
		t.Errorf("ratio %v, want 1.5", r)
	}
	if _, err := Ratio(MinVertexCover{}, g, vertexSol(4)); err == nil {
		t.Error("infeasible solution should error")
	}
}

func TestRatioMaximisation(t *testing.T) {
	g := graph.Cycle(6) // ν = 3
	r, err := Ratio(MaxMatching{}, g, edgeSol(6, [2]int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Errorf("ratio %v, want 3", r)
	}
	r, err = Ratio(MaxMatching{}, g, edgeSol(6))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r, 1) {
		t.Errorf("empty maximisation solution should give +Inf, got %v", r)
	}
}

func TestOptimumValues(t *testing.T) {
	g := graph.Cycle(9)
	cases := []struct {
		p    Problem
		want int
	}{
		{MinVertexCover{}, 5},
		{MinEdgeCover{}, 5},
		{MaxMatching{}, 4},
		{MaxIndependentSet{}, 4},
		{MinDominatingSet{}, 3},
		{MinEdgeDominatingSet{}, 3},
	}
	for _, tc := range cases {
		got, err := tc.p.Optimum(g)
		if err != nil {
			t.Errorf("%s: %v", tc.p.Name(), err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s on C9: %d, want %d", tc.p.Name(), got, tc.want)
		}
	}
}

func TestBuildLocalViewRestricts(t *testing.T) {
	// The local view of a radius-1 verifier at v must contain only
	// B(v,1) — locality is enforced structurally.
	g := graph.Cycle(8)
	sol := vertexSol(8, 0, 4)
	lv := BuildLocalView(MinVertexCover{}, g, sol, 0)
	if lv.Ball.N() != 3 {
		t.Errorf("radius-1 ball on cycle has 3 vertices, got %d", lv.Ball.N())
	}
	if !lv.Member[lv.Root] {
		t.Error("root membership lost")
	}
	for i, d := range lv.Dist {
		if d < 0 || d > 1 {
			t.Errorf("vertex %d at distance %d inside radius-1 view", i, d)
		}
	}
}
