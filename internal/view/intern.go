package view

import "repro/internal/intern"

// Interner hash-conses view trees: structurally identical subtrees are
// represented by one canonical *Tree, so tree equality is pointer
// identity and a map keyed by *Tree is a map keyed by isomorphism
// type. The table is sharded by hash, and — like the ball interner on
// the order side — the hit path is lock-free: each shard
// (intern.Shard) publishes an immutable, hash-sorted entry slice
// through an atomic pointer, so re-interning an already-known subtree
// (the steady state of view gathering on hosts whose types repeat) is
// a binary search with no lock. Only a genuinely new node takes the
// shard mutex, republishes the slice copy-on-write with one
// insertion, and returns. Shards are cache-line padded so adjacent
// shards' write traffic does not false-share.
//
// Every constructor in this package (Build, Complete, NewTree, Leaf)
// goes through the package-wide default interner, so trees obtained
// from the public API are always safe to compare with == and to use as
// map keys. Private interners (NewInterner) exist for tests and for
// isolating memory lifetimes; trees from different interners still
// compare correctly via Equal, just not via ==.
type Interner struct {
	shards [internShards]intern.Shard[*Tree]
	leaf   *Tree
}

const internShards = 64 // power of two

// NewInterner returns an empty interner with its own canonical leaf.
func NewInterner() *Interner {
	in := &Interner{}
	in.leaf = &Tree{hash: leafHash, size: 1, depth: 0}
	return in
}

// defaultInterner backs the package-level constructors.
var defaultInterner = NewInterner()

// Leaf returns the canonical childless tree of the default interner.
func Leaf() *Tree { return defaultInterner.Leaf() }

// Leaf returns the interner's canonical childless tree.
func (in *Interner) Leaf() *Tree { return in.leaf }

// NewTree interns a node with the given children in the default
// interner. See (*Interner).Node for the contract on kids.
func NewTree(kids []Child) *Tree { return defaultInterner.Node(kids) }

// NewTreeScratch interns a node assembled in a caller-owned scratch
// buffer in the default interner. See (*Interner).NodeScratch.
func NewTreeScratch(kids []Child) *Tree { return defaultInterner.NodeScratch(kids) }

// Node returns the canonical tree with the given children. Letters
// must be distinct (the proper-labelling invariant); kids need not be
// sorted. Node takes ownership of the slice — callers must not reuse
// it afterwards. Child trees should come from the same interner for
// sharing to occur (correctness does not depend on it).
func (in *Interner) Node(kids []Child) *Tree { return in.intern(kids, false) }

// NodeScratch is Node for callers that keep ownership of kids — a
// reusable assembly buffer. The interner never retains the slice, but
// may sort it in place (letter order); when the node is already
// interned nothing is locked or allocated, and only a new node copies
// the children to the heap (copy-on-miss). This is the view-side hot
// path of the sweep engine: on hosts whose view types repeat, builds
// after the first intern every level without allocating.
func (in *Interner) NodeScratch(kids []Child) *Tree { return in.intern(kids, true) }

func (in *Interner) intern(kids []Child, copyOnMiss bool) *Tree {
	if len(kids) == 0 {
		return in.leaf
	}
	if !childrenSorted(kids) {
		sortChildren(kids)
	}
	h := hashKids(kids)
	shard := &in.shards[h&(internShards-1)]
	for _, e := range shard.Run(h) {
		if sameKids(e.Val.kids, kids) {
			return e.Val
		}
	}
	shard.Lock()
	defer shard.Unlock()
	// Re-probe under the writer lock: another goroutine may have
	// interned the node between the lock-free miss and here.
	for _, e := range shard.Run(h) {
		if sameKids(e.Val.kids, kids) {
			return e.Val
		}
	}
	size, depth := int32(1), int32(0)
	for i := range kids {
		if i > 0 && kids[i].L == kids[i-1].L {
			panic("view: duplicate child letter " + kids[i].L.String())
		}
		size += kids[i].T.size
		if d := kids[i].T.depth + 1; d > depth {
			depth = d
		}
	}
	if copyOnMiss {
		kids = append([]Child(nil), kids...)
	}
	t := &Tree{kids: kids, hash: h, size: size, depth: depth}
	shard.Publish(h, t)
	return t
}

func childrenSorted(kids []Child) bool {
	for i := 1; i < len(kids); i++ {
		if !kids[i-1].L.Less(kids[i].L) {
			return false
		}
	}
	return true
}

// sortChildren is an insertion sort on the letter order: child counts
// are bounded by 2|L| and inputs are nearly sorted (arc rows arrive
// label-sorted), so this beats the reflection-based sort.Slice that
// used to sit on the view-build hot path.
func sortChildren(kids []Child) {
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && kids[j].L.Less(kids[j-1].L); j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
}

// sameKids reports slice equality of children: same letters and the
// same child trees by pointer (valid because children are interned
// before their parent).
func sameKids(a, b []Child) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].L != b[i].L || a[i].T != b[i].T {
			return false
		}
	}
	return true
}

// --- hashing ---

// leafHash seeds the structural hash; any odd constant works since
// collisions are resolved by full comparison in the intern table.
const leafHash uint64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finaliser: a cheap full-avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func letterCode(l Letter) uint64 {
	c := uint64(l.Label) << 1
	if l.In {
		c |= 1
	}
	return c
}

func hashKids(kids []Child) uint64 {
	h := leafHash
	for _, c := range kids {
		h = mix64(h ^ letterCode(c.L))
		h = mix64(h ^ c.T.hash)
	}
	return h
}
