// Package view implements the view trees of Section 2.5 of the paper:
// the information available to a PO-algorithm at a node v of an
// L-digraph G is the radius-r truncation of the view T(G, v), the
// rooted tree whose vertices are the non-backtracking walks on G
// starting at v.
//
// Walks are words over the letters L ∪ L^{-1}; a Letter with In=false
// is ℓ (an arc traversed forwards) and with In=true is ℓ^{-1} (an arc
// traversed backwards). Proper labellings make views deterministic:
// a node has at most one neighbour per letter, so view trees have a
// trivial canonical form.
//
// Trees are immutable and hash-consed (see Interner): children are
// kept in a letter-sorted slice, every node carries a precomputed
// 64-bit structural hash, and structurally identical subtrees share
// one allocation. Two trees built through the package constructors are
// isomorphic if and only if they are the same pointer, so hot loops
// key their count maps by *Tree instead of by Encode() strings.
package view

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// Letter is an element of L ∪ L^{-1}.
type Letter struct {
	Label int
	// In marks the formal inverse ℓ^{-1}: the arc is traversed from
	// head to tail.
	In bool
}

// Inv returns the formal inverse of the letter.
func (l Letter) Inv() Letter { return Letter{Label: l.Label, In: !l.In} }

// Less orders letters by label, with ℓ before ℓ^{-1}.
func (l Letter) Less(m Letter) bool {
	if l.Label != m.Label {
		return l.Label < m.Label
	}
	return !l.In && m.In
}

// String renders the letter as e.g. "3" or "3'".
func (l Letter) String() string {
	s := strconv.Itoa(l.Label)
	if l.In {
		s += "'"
	}
	return s
}

// Key encodes a walk (a word over L ∪ L^{-1}) as a string usable as a
// map key. The empty walk (the root λ) encodes as "".
func Key(walk []Letter) string {
	var sb strings.Builder
	for i, l := range walk {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.String())
	}
	return sb.String()
}

// Child is one labelled edge of a view tree: the letter extending the
// walk and the subtree it leads to.
type Child struct {
	L Letter
	T *Tree
}

// Tree is a (truncated) view tree. Trees are immutable and interned:
// construct them with Build, Complete, NewTree or Leaf, never with a
// composite literal. Children are sorted by letter.
type Tree struct {
	kids  []Child
	hash  uint64
	size  int32
	depth int32
}

// Hash returns the precomputed 64-bit structural hash of the tree.
// Equal trees have equal hashes; the interner resolves collisions, so
// within one interner distinct trees are distinct pointers regardless
// of hash quality.
func (t *Tree) Hash() uint64 { return t.hash }

// NumChildren returns the number of children of the root.
func (t *Tree) NumChildren() int { return len(t.kids) }

// Children returns the root's children in canonical (letter-sorted)
// order. The returned slice is shared and must not be modified.
func (t *Tree) Children() []Child { return t.kids }

// Child returns the subtree reached by letter l, if present.
func (t *Tree) Child(l Letter) (*Tree, bool) {
	kids := t.kids
	i := sort.Search(len(kids), func(i int) bool { return !kids[i].L.Less(l) })
	if i < len(kids) && kids[i].L == l {
		return kids[i].T, true
	}
	return nil, false
}

// Letters returns the root's child letters in canonical order.
func (t *Tree) Letters() []Letter {
	ls := make([]Letter, len(t.kids))
	for i, c := range t.kids {
		ls[i] = c.L
	}
	return ls
}

// BuildScratch holds the per-depth child buffers of repeated Build
// calls. Assembly at depth d only ever recurses into strictly deeper
// buffers, so one buffer per level suffices; the assembled level is
// interned through the copy-on-miss path (NodeScratch), which means a
// view whose subtrees are already interned — every view after the
// first on a host whose types repeat — is built without allocating.
// A scratch belongs to one goroutine.
type BuildScratch struct {
	kids [][]Child
}

// NewBuildScratch returns an empty scratch; level buffers are sized on
// first use and keep their grown capacity.
func NewBuildScratch() *BuildScratch { return &BuildScratch{} }

// Build returns the radius-r truncation of the view T(g, root):
// τ(T(G, v)) in the paper's notation. Scans that build many views
// should reuse a BuildScratch via BuildWith.
func Build[V comparable](g digraph.Implicit[V], root V, r int) *Tree {
	return BuildWith(NewBuildScratch(), g, root, r)
}

// BuildWith is Build over caller-owned scratch: the per-level child
// buffers are reused across calls and every level is interned
// copy-on-miss, so repeated views cost no allocation.
func BuildWith[V comparable](s *BuildScratch, g digraph.Implicit[V], root V, r int) *Tree {
	for len(s.kids) < r {
		s.kids = append(s.kids, nil)
	}
	return buildWith(s, g, root, Letter{}, false, 0, r)
}

func buildWith[V comparable](s *BuildScratch, g digraph.Implicit[V], at V, arrived Letter, hasArrived bool, depth, r int) *Tree {
	if depth == r {
		return Leaf()
	}
	kids := s.kids[depth][:0]
	for _, a := range g.Out(at) {
		l := Letter{Label: a.Label}
		if hasArrived && l == arrived.Inv() {
			continue // non-backtracking
		}
		kids = append(kids, Child{L: l, T: buildWith(s, g, a.To, l, true, depth+1, r)})
	}
	for _, a := range g.In(at) {
		l := Letter{Label: a.Label, In: true}
		if hasArrived && l == arrived.Inv() {
			continue // non-backtracking
		}
		kids = append(kids, Child{L: l, T: buildWith(s, g, a.To, l, true, depth+1, r)})
	}
	s.kids[depth] = kids // keep the grown capacity for the next call
	return NewTreeScratch(kids)
}

// BuildWithEndpoints additionally returns the covering map ϕ restricted
// to the walk vertices: a map from walk key to the endpoint of the walk
// in g.
func BuildWithEndpoints[V comparable](g digraph.Implicit[V], root V, r int) (*Tree, map[string]V) {
	endpoints := make(map[string]V)
	var build func(at V, arrived Letter, hasArrived bool, depth int, walk []Letter) *Tree
	build = func(at V, arrived Letter, hasArrived bool, depth int, walk []Letter) *Tree {
		endpoints[Key(walk)] = at
		if depth == r {
			return Leaf()
		}
		out, in := g.Out(at), g.In(at)
		kids := make([]Child, 0, len(out)+len(in))
		expand := func(to V, l Letter) {
			if hasArrived && l == arrived.Inv() {
				return // non-backtracking
			}
			kids = append(kids, Child{L: l, T: build(to, l, true, depth+1, append(walk, l))})
		}
		for _, a := range out {
			expand(a.To, Letter{Label: a.Label})
		}
		for _, a := range in {
			expand(a.To, Letter{Label: a.Label, In: true})
		}
		return NewTree(kids)
	}
	return build(root, Letter{}, false, 0, nil), endpoints
}

// Complete returns the complete radius-r tree (T*, λ) over an alphabet
// of the given size: the root has an ℓ and an ℓ^{-1} child for every
// label ℓ, and every other internal node has all extensions except the
// inverse of its arrival letter. Hash-consing makes the result a DAG
// whose distinct-node count is linear in alphabet·r.
func Complete(alphabet, r int) *Tree {
	type memoKey struct {
		arrived Letter
		has     bool
		depth   int
	}
	memo := make(map[memoKey]*Tree)
	var build func(arrived Letter, hasArrived bool, depth int) *Tree
	build = func(arrived Letter, hasArrived bool, depth int) *Tree {
		if depth == r {
			return Leaf()
		}
		k := memoKey{arrived: arrived, has: hasArrived, depth: depth}
		if t, ok := memo[k]; ok {
			return t
		}
		kids := make([]Child, 0, 2*alphabet)
		for lbl := 0; lbl < alphabet; lbl++ {
			for _, in := range []bool{false, true} {
				l := Letter{Label: lbl, In: in}
				if hasArrived && l == arrived.Inv() {
					continue
				}
				kids = append(kids, Child{L: l, T: build(l, true, depth+1)})
			}
		}
		t := NewTree(kids)
		memo[k] = t
		return t
	}
	return build(Letter{}, false, 0)
}

// Size returns the number of vertices (walks) in the tree. Precomputed
// at intern time, so this is O(1).
func (t *Tree) Size() int { return int(t.size) }

// Depth returns the height of the tree. O(1).
func (t *Tree) Depth() int { return int(t.depth) }

// Encode returns a canonical string encoding of the tree: two truncated
// views are isomorphic as rooted L-labelled trees if and only if their
// encodings are equal. Hot loops should compare trees by pointer or
// Hash instead; Encode remains for serialisation, goldens and display.
func (t *Tree) Encode() string {
	var sb strings.Builder
	t.encode(&sb)
	return sb.String()
}

func (t *Tree) encode(sb *strings.Builder) {
	sb.WriteByte('(')
	for _, c := range t.kids {
		sb.WriteString(c.L.String())
		c.T.encode(sb)
	}
	sb.WriteByte(')')
}

// Equal reports whether two trees are equal (isomorphic as rooted
// labelled trees). For trees from one interner this is a pointer
// comparison; the structural fallback only runs across interners.
func Equal(a, b *Tree) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.hash != b.hash || len(a.kids) != len(b.kids) {
		return false
	}
	for i := range a.kids {
		if a.kids[i].L != b.kids[i].L || !Equal(a.kids[i].T, b.kids[i].T) {
			return false
		}
	}
	return true
}

// IsSubtreeOf reports whether t embeds into s as a rooted subtree: every
// walk of t is a walk of s. (The paper's W ⊆ V(T*) with
// (T*, λ) ↾ W = τ(T(G, v)).)
func (t *Tree) IsSubtreeOf(s *Tree) bool {
	if t == s {
		return true
	}
	for _, c := range t.kids {
		cs, ok := s.Child(c.L)
		if !ok || !c.T.IsSubtreeOf(cs) {
			return false
		}
	}
	return true
}

// Visit walks the tree in canonical (BFS, letter-sorted) order, calling
// fn with each vertex's walk and node. The root is visited first with
// an empty walk.
func (t *Tree) Visit(fn func(walk []Letter, node *Tree)) {
	type item struct {
		walk []Letter
		node *Tree
	}
	queue := []item{{walk: nil, node: t}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fn(it.walk, it.node)
		for _, c := range it.node.kids {
			w := make([]Letter, len(it.walk)+1)
			copy(w, it.walk)
			w[len(it.walk)] = c.L
			queue = append(queue, item{walk: w, node: c.T})
		}
	}
}

// Walks returns the walks of all vertices in canonical BFS order.
// The first entry is the empty walk (the root).
func (t *Tree) Walks() [][]Letter {
	out := make([][]Letter, 0, t.Size())
	t.Visit(func(walk []Letter, _ *Tree) {
		out = append(out, walk)
	})
	return out
}

// ToGraph returns the underlying undirected tree of the view, the walks
// naming its vertices (in canonical BFS order, root first), and the
// root's vertex index (always 0). This is the structure an OI-algorithm
// sees when a view is interpreted as an ordered graph.
func (t *Tree) ToGraph() (*graph.Graph, [][]Letter, int) {
	walks := t.Walks()
	index := make(map[string]int, len(walks))
	for i, w := range walks {
		index[Key(w)] = i
	}
	b := graph.NewBuilder(len(walks))
	for i, w := range walks {
		if len(w) == 0 {
			continue
		}
		parent := index[Key(w[:len(w)-1])]
		b.MustAddEdge(parent, i)
	}
	return b.Build(), walks, 0
}

// ToDigraph returns the view as a materialised L-digraph together with
// the walks naming its vertices (canonical BFS order, root = vertex 0).
// An ℓ-letter edge from walk w to walk wℓ becomes the arc w -> wℓ
// labelled ℓ; an ℓ^{-1}-letter edge becomes the arc wℓ^{-1} -> w.
func (t *Tree) ToDigraph(alphabet int) (*digraph.Digraph, [][]Letter, int) {
	walks := t.Walks()
	index := make(map[string]int, len(walks))
	for i, w := range walks {
		index[Key(w)] = i
	}
	b := digraph.NewBuilder(len(walks), alphabet)
	for i, w := range walks {
		if len(w) == 0 {
			continue
		}
		parent := index[Key(w[:len(w)-1])]
		last := w[len(w)-1]
		if last.In {
			b.MustAddArc(i, parent, last.Label)
		} else {
			b.MustAddArc(parent, i, last.Label)
		}
	}
	return b.Build(), walks, 0
}
