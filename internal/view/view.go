// Package view implements the view trees of Section 2.5 of the paper:
// the information available to a PO-algorithm at a node v of an
// L-digraph G is the radius-r truncation of the view T(G, v), the
// rooted tree whose vertices are the non-backtracking walks on G
// starting at v.
//
// Walks are words over the letters L ∪ L^{-1}; a Letter with In=false
// is ℓ (an arc traversed forwards) and with In=true is ℓ^{-1} (an arc
// traversed backwards). Proper labellings make views deterministic:
// a node has at most one neighbour per letter, so view trees have a
// trivial canonical form.
package view

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// Letter is an element of L ∪ L^{-1}.
type Letter struct {
	Label int
	// In marks the formal inverse ℓ^{-1}: the arc is traversed from
	// head to tail.
	In bool
}

// Inv returns the formal inverse of the letter.
func (l Letter) Inv() Letter { return Letter{Label: l.Label, In: !l.In} }

// Less orders letters by label, with ℓ before ℓ^{-1}.
func (l Letter) Less(m Letter) bool {
	if l.Label != m.Label {
		return l.Label < m.Label
	}
	return !l.In && m.In
}

// String renders the letter as e.g. "3" or "3'".
func (l Letter) String() string {
	s := strconv.Itoa(l.Label)
	if l.In {
		s += "'"
	}
	return s
}

// Key encodes a walk (a word over L ∪ L^{-1}) as a string usable as a
// map key. The empty walk (the root λ) encodes as "".
func Key(walk []Letter) string {
	var sb strings.Builder
	for i, l := range walk {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.String())
	}
	return sb.String()
}

// Tree is a (truncated) view tree. Children are keyed by the letter
// extending the walk; a nil map or empty map is a leaf.
type Tree struct {
	Children map[Letter]*Tree
}

// Build returns the radius-r truncation of the view T(g, root):
// τ(T(G, v)) in the paper's notation.
func Build[V comparable](g digraph.Implicit[V], root V, r int) *Tree {
	t, _ := BuildWithEndpoints(g, root, r)
	return t
}

// BuildWithEndpoints additionally returns the covering map ϕ restricted
// to the walk vertices: a map from walk key to the endpoint of the walk
// in g.
func BuildWithEndpoints[V comparable](g digraph.Implicit[V], root V, r int) (*Tree, map[string]V) {
	endpoints := make(map[string]V)
	var build func(at V, arrived Letter, hasArrived bool, depth int, walk []Letter) *Tree
	build = func(at V, arrived Letter, hasArrived bool, depth int, walk []Letter) *Tree {
		endpoints[Key(walk)] = at
		node := &Tree{}
		if depth == r {
			return node
		}
		node.Children = make(map[Letter]*Tree)
		expand := func(to V, l Letter) {
			if hasArrived && l == arrived.Inv() {
				return // non-backtracking
			}
			node.Children[l] = build(to, l, true, depth+1, append(walk, l))
		}
		for _, a := range g.Out(at) {
			expand(a.To, Letter{Label: a.Label})
		}
		for _, a := range g.In(at) {
			expand(a.To, Letter{Label: a.Label, In: true})
		}
		return node
	}
	return build(root, Letter{}, false, 0, nil), endpoints
}

// Complete returns the complete radius-r tree (T*, λ) over an alphabet
// of the given size: the root has an ℓ and an ℓ^{-1} child for every
// label ℓ, and every other internal node has all extensions except the
// inverse of its arrival letter.
func Complete(alphabet, r int) *Tree {
	var build func(arrived Letter, hasArrived bool, depth int) *Tree
	build = func(arrived Letter, hasArrived bool, depth int) *Tree {
		node := &Tree{}
		if depth == r {
			return node
		}
		node.Children = make(map[Letter]*Tree)
		for lbl := 0; lbl < alphabet; lbl++ {
			for _, in := range []bool{false, true} {
				l := Letter{Label: lbl, In: in}
				if hasArrived && l == arrived.Inv() {
					continue
				}
				node.Children[l] = build(l, true, depth+1)
			}
		}
		return node
	}
	return build(Letter{}, false, 0)
}

// Size returns the number of vertices (walks) in the tree.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// sortedLetters returns the child letters in canonical order.
func (t *Tree) sortedLetters() []Letter {
	ls := make([]Letter, 0, len(t.Children))
	for l := range t.Children {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Less(ls[j]) })
	return ls
}

// Encode returns a canonical string encoding of the tree: two truncated
// views are isomorphic as rooted L-labelled trees if and only if their
// encodings are equal.
func (t *Tree) Encode() string {
	var sb strings.Builder
	t.encode(&sb)
	return sb.String()
}

func (t *Tree) encode(sb *strings.Builder) {
	sb.WriteByte('(')
	for _, l := range t.sortedLetters() {
		sb.WriteString(l.String())
		t.Children[l].encode(sb)
	}
	sb.WriteByte(')')
}

// Equal reports whether two trees are equal (isomorphic as rooted
// labelled trees).
func Equal(a, b *Tree) bool {
	if len(a.Children) != len(b.Children) {
		return false
	}
	for l, ca := range a.Children {
		cb, ok := b.Children[l]
		if !ok || !Equal(ca, cb) {
			return false
		}
	}
	return true
}

// IsSubtreeOf reports whether t embeds into s as a rooted subtree: every
// walk of t is a walk of s. (The paper's W ⊆ V(T*) with
// (T*, λ) ↾ W = τ(T(G, v)).)
func (t *Tree) IsSubtreeOf(s *Tree) bool {
	for l, ct := range t.Children {
		cs, ok := s.Children[l]
		if !ok || !ct.IsSubtreeOf(cs) {
			return false
		}
	}
	return true
}

// Visit walks the tree in canonical (BFS, letter-sorted) order, calling
// fn with each vertex's walk and node. The root is visited first with
// an empty walk.
func (t *Tree) Visit(fn func(walk []Letter, node *Tree)) {
	type item struct {
		walk []Letter
		node *Tree
	}
	queue := []item{{walk: nil, node: t}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		fn(it.walk, it.node)
		for _, l := range it.node.sortedLetters() {
			w := make([]Letter, len(it.walk)+1)
			copy(w, it.walk)
			w[len(it.walk)] = l
			queue = append(queue, item{walk: w, node: it.node.Children[l]})
		}
	}
}

// Walks returns the walks of all vertices in canonical BFS order.
// The first entry is the empty walk (the root).
func (t *Tree) Walks() [][]Letter {
	var out [][]Letter
	t.Visit(func(walk []Letter, _ *Tree) {
		out = append(out, walk)
	})
	return out
}

// ToGraph returns the underlying undirected tree of the view, the walks
// naming its vertices (in canonical BFS order, root first), and the
// root's vertex index (always 0). This is the structure an OI-algorithm
// sees when a view is interpreted as an ordered graph.
func (t *Tree) ToGraph() (*graph.Graph, [][]Letter, int) {
	walks := t.Walks()
	index := make(map[string]int, len(walks))
	for i, w := range walks {
		index[Key(w)] = i
	}
	b := graph.NewBuilder(len(walks))
	for i, w := range walks {
		if len(w) == 0 {
			continue
		}
		parent := index[Key(w[:len(w)-1])]
		b.MustAddEdge(parent, i)
	}
	return b.Build(), walks, 0
}

// ToDigraph returns the view as a materialised L-digraph together with
// the walks naming its vertices (canonical BFS order, root = vertex 0).
// An ℓ-letter edge from walk w to walk wℓ becomes the arc w -> wℓ
// labelled ℓ; an ℓ^{-1}-letter edge becomes the arc wℓ^{-1} -> w.
func (t *Tree) ToDigraph(alphabet int) (*digraph.Digraph, [][]Letter, int) {
	walks := t.Walks()
	index := make(map[string]int, len(walks))
	for i, w := range walks {
		index[Key(w)] = i
	}
	b := digraph.NewBuilder(len(walks), alphabet)
	for i, w := range walks {
		if len(w) == 0 {
			continue
		}
		parent := index[Key(w[:len(w)-1])]
		last := w[len(w)-1]
		if last.In {
			b.MustAddArc(i, parent, last.Label)
		} else {
			b.MustAddArc(parent, i, last.Label)
		}
	}
	return b.Build(), walks, 0
}
