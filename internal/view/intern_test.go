package view

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// TestInternPointerIdentity pins the hash-consing contract: building
// the same view twice yields the same pointer, so == is isomorphism.
func TestInternPointerIdentity(t *testing.T) {
	d := directedCycle(12)
	for r := 0; r <= 3; r++ {
		a := Build[int](d, 0, r)
		b := Build[int](d, 5, r) // cycle views are isomorphic at every node
		if a != b {
			t.Fatalf("r=%d: isomorphic views are distinct pointers", r)
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("r=%d: equal trees, different hashes", r)
		}
	}
	p := digraph.FromPorts(graph.Petersen(), nil).D
	x := Build[int](p, 3, 2)
	y := Build[int](p, 3, 2)
	if x != y {
		t.Fatal("rebuilding the same view gave a new pointer")
	}
}

// TestInternDistinguishes checks that distinct views stay distinct.
func TestInternDistinguishes(t *testing.T) {
	b := digraph.NewBuilder(3, 1)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(1, 2, 0)
	d := b.Build()
	if Build[int](d, 0, 1) == Build[int](d, 1, 1) {
		t.Fatal("path endpoint and midpoint views interned to one node")
	}
}

// TestCrossInternerEqual: trees from separate interners never share
// pointers but still compare equal structurally.
func TestCrossInternerEqual(t *testing.T) {
	in1, in2 := NewInterner(), NewInterner()
	l := Letter{Label: 0}
	a := in1.Node([]Child{{L: l, T: in1.Leaf()}})
	b := in2.Node([]Child{{L: l, T: in2.Leaf()}})
	if a == b {
		t.Fatal("separate interners shared a node")
	}
	if !Equal(a, b) {
		t.Fatal("Equal must fall back to structure across interners")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("structural hash must not depend on the interner")
	}
}

// TestNewTreeSortsChildren: children may be handed over in any order.
func TestNewTreeSortsChildren(t *testing.T) {
	l0, l1 := Letter{Label: 0}, Letter{Label: 1, In: true}
	a := NewTree([]Child{{L: l1, T: Leaf()}, {L: l0, T: Leaf()}})
	b := NewTree([]Child{{L: l0, T: Leaf()}, {L: l1, T: Leaf()}})
	if a != b {
		t.Fatal("child order leaked into identity")
	}
	ls := a.Letters()
	if len(ls) != 2 || !ls[0].Less(ls[1]) {
		t.Fatalf("letters not sorted: %v", ls)
	}
}

// TestDuplicateLetterPanics: the proper-labelling invariant is
// enforced at construction.
func TestDuplicateLetterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate letter did not panic")
		}
	}()
	l := Letter{Label: 2}
	NewTree([]Child{{L: l, T: Leaf()}, {L: l, T: Leaf()}})
}

// TestSizeDepthPrecomputed cross-checks the O(1) Size/Depth against a
// recount over Children().
func TestSizeDepthPrecomputed(t *testing.T) {
	var recount func(tr *Tree) (int, int)
	recount = func(tr *Tree) (size, depth int) {
		size = 1
		for _, c := range tr.Children() {
			s, d := recount(c.T)
			size += s
			if d+1 > depth {
				depth = d + 1
			}
		}
		return size, depth
	}
	for _, tr := range []*Tree{
		Complete(2, 3),
		Build[int](directedCycle(7), 0, 3),
		Build[int](digraph.FromPorts(graph.Petersen(), nil).D, 0, 2),
	} {
		s, d := recount(tr)
		if tr.Size() != s || tr.Depth() != d {
			t.Fatalf("Size/Depth (%d,%d) != recount (%d,%d)", tr.Size(), tr.Depth(), s, d)
		}
	}
}

// TestChildLookup checks the binary-search child accessor.
func TestChildLookup(t *testing.T) {
	tr := Complete(3, 2)
	for _, c := range tr.Children() {
		got, ok := tr.Child(c.L)
		if !ok || got != c.T {
			t.Fatalf("Child(%v) lookup failed", c.L)
		}
	}
	if _, ok := tr.Child(Letter{Label: 99}); ok {
		t.Fatal("absent letter found")
	}
}

// TestNodeScratchConcurrentStress hammers a fresh interner's
// copy-on-write publish path: many goroutines interning overlapping
// node sets through their own scratch buffers, racing lock-free hit
// reads against concurrent bucket republishes (run under -race in
// CI). Every goroutine must converge on one representative per
// structure, and scratch buffers must stay caller-owned.
func TestNodeScratchConcurrentStress(t *testing.T) {
	in := NewInterner()
	const workers = 16
	reps := make([][]*Tree, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kids := make([]Child, 0, 4) // worker-owned scratch
			mine := make([]*Tree, 40)
			for round := 0; round < 200; round++ {
				label := (round + w) % len(mine)
				kids = append(kids[:0],
					Child{L: Letter{Label: label}, T: in.Leaf()},
					Child{L: Letter{Label: label, In: true}, T: in.Leaf()})
				got := in.NodeScratch(kids)
				if mine[label] == nil {
					mine[label] = got
				} else if mine[label] != got {
					t.Errorf("worker %d: label %d changed representative", w, label)
					return
				}
			}
			reps[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for k := range reps[0] {
			if reps[w][k] != nil && reps[0][k] != nil && reps[w][k] != reps[0][k] {
				t.Fatalf("workers 0 and %d disagree on label %d", w, k)
			}
		}
	}
}

// TestConcurrentInterning hammers one interner from many goroutines
// and checks that all of them receive identical pointers (run under
// -race in CI).
func TestConcurrentInterning(t *testing.T) {
	g := graph.RandomRegular(20, 3, rand.New(rand.NewSource(9)))
	d := digraph.FromPorts(g, nil).D
	ref := make([]*Tree, g.N())
	for v := range ref {
		ref[v] = Build[int](d, v, 2)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; v < g.N(); v++ {
				if Build[int](d, v, 2) != ref[v] {
					errs <- "concurrent build returned a fresh pointer"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
