package view

import (
	"testing"

	"repro/internal/digraph"
)

func scratchTestDigraph() *digraph.Digraph {
	b := digraph.NewBuilder(9, 2)
	for i := 0; i < 9; i++ {
		b.MustAddArc(i, (i+1)%9, 0)
	}
	for i := 0; i < 9; i += 3 {
		b.MustAddArc(i, (i+4)%9, 1)
	}
	return b.Build()
}

// TestBuildWithMatchesBuild reuses one scratch across all vertices and
// radii: interning makes equality pointer identity, so the scratch
// path must return the very same trees as the fresh path.
func TestBuildWithMatchesBuild(t *testing.T) {
	d := scratchTestDigraph()
	s := NewBuildScratch()
	for r := 0; r <= 3; r++ {
		for v := 0; v < d.N(); v++ {
			if got, want := BuildWith[int](s, d, v, r), Build[int](d, v, r); got != want {
				t.Fatalf("v=%d r=%d: BuildWith %p != Build %p", v, r, got, want)
			}
		}
	}
}

// TestNodeScratchCopyOnMiss pins the ownership contract: the interner
// only reads the caller's buffer, a miss copies it, and later mutation
// of the buffer cannot reach the interned tree.
func TestNodeScratchCopyOnMiss(t *testing.T) {
	in := NewInterner()
	buf := []Child{
		{L: Letter{Label: 1}, T: in.Leaf()},
		{L: Letter{Label: 0}, T: in.Leaf()},
	}
	a := in.NodeScratch(buf) // sorts in place, copies on miss
	if a.NumChildren() != 2 || !a.Children()[0].L.Less(a.Children()[1].L) {
		t.Fatalf("NodeScratch mis-assembled: %v", a.Encode())
	}
	hit := in.NodeScratch(buf)
	if hit != a {
		t.Fatalf("re-interning the same buffer missed: %p != %p", hit, a)
	}
	buf[0] = Child{L: Letter{Label: 7}, T: a} // clobber the caller buffer
	if a.Children()[0].L != (Letter{Label: 0}) || a.Children()[1].L != (Letter{Label: 1}) {
		t.Error("interned tree aliases the caller's scratch buffer")
	}
}

// TestBuildWithZeroAllocOnRepeat asserts the view-side steady state:
// rebuilding an already-interned view through a scratch allocates
// nothing.
func TestBuildWithZeroAllocOnRepeat(t *testing.T) {
	d := scratchTestDigraph()
	s := NewBuildScratch()
	for v := 0; v < d.N(); v++ {
		BuildWith[int](s, d, v, 2) // intern every view
	}
	v := 0
	allocs := testing.AllocsPerRun(100, func() {
		BuildWith[int](s, d, v, 2)
		v = (v + 1) % d.N()
	})
	if allocs != 0 {
		t.Errorf("repeat BuildWith allocates %v times, want 0", allocs)
	}
}
