package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// directedCycle returns the n-cycle directed around with a single label.
func directedCycle(n int) *digraph.Digraph {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	return b.Build()
}

func TestLetter(t *testing.T) {
	a := Letter{Label: 2}
	if a.Inv() != (Letter{Label: 2, In: true}) || a.Inv().Inv() != a {
		t.Error("Inv broken")
	}
	if a.String() != "2" || a.Inv().String() != "2'" {
		t.Error("String broken")
	}
	if !a.Less(a.Inv()) || a.Inv().Less(a) {
		t.Error("Less should put ℓ before ℓ^{-1}")
	}
	if !(Letter{Label: 1}).Less(Letter{Label: 2, In: true}) {
		t.Error("Less should order by label first")
	}
}

func TestKey(t *testing.T) {
	if Key(nil) != "" {
		t.Error("empty walk should have empty key")
	}
	w := []Letter{{Label: 0}, {Label: 1, In: true}}
	if Key(w) != "0,1'" {
		t.Errorf("Key = %q", Key(w))
	}
}

func TestViewOfDirectedCycle(t *testing.T) {
	// On a directed cycle with one label, the radius-r view is a path
	// of 2r+1 vertices: r forward steps, r backward steps.
	for r := 0; r <= 3; r++ {
		v := Build[int](directedCycle(20), 0, r)
		if got, want := v.Size(), 2*r+1; got != want {
			t.Errorf("r=%d: size %d, want %d", r, got, want)
		}
		if v.Depth() != r {
			t.Errorf("r=%d: depth %d", r, v.Depth())
		}
	}
}

func TestViewUnrollsShortCycle(t *testing.T) {
	// The view of the directed triangle at radius 3 is a path of 7
	// vertices: the view "unrolls" the cycle (it is the universal
	// cover), so it is strictly larger than the graph.
	v := Build[int](directedCycle(3), 0, 3)
	if v.Size() != 7 {
		t.Errorf("size %d, want 7", v.Size())
	}
}

func TestViewsOfCycleNodesAreIsomorphic(t *testing.T) {
	d := directedCycle(12)
	want := Build[int](d, 0, 3).Encode()
	for v := 1; v < 12; v++ {
		if got := Build[int](d, v, 3).Encode(); got != want {
			t.Fatalf("node %d has a different view", v)
		}
	}
}

func TestEndpointsAreCoveringMap(t *testing.T) {
	// Fig 4(c): ϕ maps each walk to its endpoint; in particular
	// consecutive walks differ by one arc of the host graph.
	d := directedCycle(5)
	tr, endpoints := BuildWithEndpoints[int](d, 2, 2)
	if endpoints[""] != 2 {
		t.Error("root endpoint should be the centre")
	}
	tr.Visit(func(walk []Letter, _ *Tree) {
		if len(walk) == 0 {
			return
		}
		parent := endpoints[Key(walk[:len(walk)-1])]
		child := endpoints[Key(walk)]
		l := walk[len(walk)-1]
		var want int
		if l.In {
			want = (parent + 4) % 5 // follow the arc backwards
		} else {
			want = (parent + 1) % 5
		}
		if child != want {
			t.Errorf("walk %s: endpoint %d, want %d", Key(walk), child, want)
		}
	})
}

func TestCompleteTree(t *testing.T) {
	// |T*| for alphabet L and radius r: root has 2|L| children, inner
	// nodes 2|L|-1. For L=2, r=2 (Fig. 5): 1 + 4 + 4*3 = 17.
	tests := []struct {
		alphabet, r, want int
	}{
		{1, 0, 1},
		{1, 1, 3},
		{1, 2, 5}, // path: the cycle's view shape
		{2, 1, 5},
		{2, 2, 17},
		{3, 2, 1 + 6 + 6*5},
	}
	for _, tc := range tests {
		got := Complete(tc.alphabet, tc.r).Size()
		if got != tc.want {
			t.Errorf("Complete(%d,%d).Size() = %d, want %d", tc.alphabet, tc.r, got, tc.want)
		}
	}
}

func TestViewIsSubtreeOfComplete(t *testing.T) {
	star := Complete(2, 3)
	d := directedCycle(9) // alphabet 1 ⊆ alphabet 2
	v := Build[int](d, 0, 3)
	if !v.IsSubtreeOf(star) {
		t.Error("cycle view should embed into T* with a larger alphabet")
	}
	if star.IsSubtreeOf(v) {
		t.Error("T* should not embed into the cycle view")
	}
	if !v.IsSubtreeOf(v) {
		t.Error("a tree embeds into itself")
	}
}

func TestEncodeDistinguishes(t *testing.T) {
	// A path digraph's endpoint view differs from its middle view.
	b := digraph.NewBuilder(3, 1)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(1, 2, 0)
	d := b.Build()
	if Build[int](d, 0, 1).Encode() == Build[int](d, 1, 1).Encode() {
		t.Error("distinct views got equal encodings")
	}
	if !Equal(Build[int](d, 0, 1), Build[int](d, 0, 1)) {
		t.Error("Equal false negative")
	}
	if Equal(Build[int](d, 0, 1), Build[int](d, 1, 1)) {
		t.Error("Equal false positive")
	}
}

func TestWalksAndVisitOrder(t *testing.T) {
	tr := Complete(1, 2)
	walks := tr.Walks()
	if len(walks) != tr.Size() {
		t.Fatalf("walks %d != size %d", len(walks), tr.Size())
	}
	if len(walks[0]) != 0 {
		t.Error("first walk should be the root")
	}
	// BFS order: lengths are non-decreasing.
	for i := 1; i < len(walks); i++ {
		if len(walks[i]) < len(walks[i-1]) {
			t.Error("walks not in BFS order")
		}
	}
}

func TestToGraph(t *testing.T) {
	tr := Complete(2, 2)
	g, walks, root := tr.ToGraph()
	if g.N() != 17 || g.M() != 16 {
		t.Fatalf("T*(2,2) graph: n=%d m=%d", g.N(), g.M())
	}
	if root != 0 || len(walks) != 17 {
		t.Error("root/walks wrong")
	}
	if g.Girth() != -1 {
		t.Error("a view's underlying graph must be a tree")
	}
	if !g.Connected() {
		t.Error("view graph must be connected")
	}
	if g.Degree(root) != 4 {
		t.Errorf("root degree %d, want 4", g.Degree(root))
	}
}

func TestToDigraph(t *testing.T) {
	d := directedCycle(9)
	tr := Build[int](d, 0, 2)
	vd, walks, root := tr.ToDigraph(1)
	if vd.N() != 5 || vd.Arcs() != 4 {
		t.Fatalf("view digraph wrong: %v", vd)
	}
	if root != 0 || len(walks) != 5 {
		t.Error("bookkeeping wrong")
	}
	// Rebuilding the view of the view's root gives the same view
	// (views are invariant under taking views of trees).
	again := Build[int](vd, root, 2)
	if !Equal(tr, again) {
		t.Error("view of view differs")
	}
}

// Property: the view tree of a port-numbered random regular graph at
// radius r has size at most that of the complete tree and embeds in it.
func TestQuickViewEmbedsInComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRegular(12, 3, rng)
		p := digraph.FromPorts(g, nil)
		r := 1 + rng.Intn(2)
		star := Complete(p.D.Alphabet(), r)
		v := Build[int](p.D, rng.Intn(g.N()), r)
		return v.Size() <= star.Size() && v.IsSubtreeOf(star)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: views are invariant under the covering map from a cycle of
// double length (a lift): the view of C_{2n} at any node equals the
// view of C_n at its image.
func TestQuickViewLiftInvariance(t *testing.T) {
	f := func(k uint8) bool {
		n := 3 + int(k)%10
		g1 := directedCycle(n)
		g2 := directedCycle(2 * n)
		r := 2
		for v := 0; v < 2*n; v++ {
			if Build[int](g2, v, r).Encode() != Build[int](g1, v%n, r).Encode() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
