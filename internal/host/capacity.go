package host

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// flatCapErr is the parse-time over-capacity diagnosis: a descriptor
// whose derived size cannot fit the int32 flat-CSR substrate fails
// here, before any build work, instead of wrapping ids deep inside a
// generator. The message names the families that can run without
// materialising (see shards.go).
func flatCapErr(what string, have int64) error {
	return fmt.Errorf("derived %s %d exceeds the flat-CSR int32 capacity %d: host exceeds flat-CSR capacity, use shards (shard-capable families: %s)",
		what, have, int64(graph.FlatCapacity), strings.Join(ShardFamilies(), ", "))
}

// checkFlat validates a family's derived node count and directed
// arc-slot count at parse time. Families call it after their own
// range checks, before constructing anything.
func checkFlat(nodes, arcs int64) error {
	if nodes > graph.FlatCapacity {
		return flatCapErr("node count", nodes)
	}
	if arcs > graph.FlatCapacity {
		return flatCapErr("arc count", arcs)
	}
	return nil
}

// mulNodes multiplies dimension factors in 64 bits, stopping with a
// capacity error the moment the running product leaves flat-CSR range
// (so torus:100000x100000 fails fast instead of overflowing).
func mulNodes(factors []int) (int64, error) {
	n := int64(1)
	for _, f := range factors {
		if int64(f) > graph.FlatCapacity {
			return 0, flatCapErr("node count", int64(f))
		}
		n *= int64(f)
		if n > graph.FlatCapacity {
			return 0, flatCapErr("node count", n)
		}
	}
	return n, nil
}
