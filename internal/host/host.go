// Package host is the unified registry of host-graph families: every
// experiment, example and CLI that runs on a parameterisable host
// resolves it here by descriptor instead of hand-building adjacency.
//
// A descriptor is
//
//	name[:arg,arg,...]
//
// where each arg is either positional ("torus:12x12") or a key=value
// pair ("random-regular:d=4,n=512,seed=7"). Composite families embed a
// base descriptor as their first positional argument
// ("lift:cycle:9,l=3"); a nested descriptor may therefore contain ':'
// but not ','. List-valued arguments use '+' ("circulant:24,1+3").
//
// The registry is populated by families.go at init time; callers may
// Register additional families (names are unique).
package host

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// Host is a resolved host graph. G is always set; D carries an
// L-digraph (port numbering and orientation) when the family
// constructs one — Cayley graphs and lifts come with their canonical
// labelling, plain graph families leave D nil and callers equip ports
// themselves.
type Host struct {
	// Desc is the descriptor the host was built from.
	Desc string
	// G is the underlying undirected simple graph.
	G *graph.Graph
	// D is the family's L-digraph, or nil for plain graph families.
	D *digraph.Digraph
}

// Family is a named, parameterised host-graph family.
type Family struct {
	// Name is the descriptor prefix (unique in the registry).
	Name string
	// Syntax documents the argument grammar, e.g. "torus:<s1>x<s2>[x<s3>...]".
	Syntax string
	// Doc is a one-line description.
	Doc string
	// Build constructs the host from parsed arguments.
	Build func(p *Params) (*Host, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Family{}
)

// Register adds a family to the registry; duplicate names panic.
func Register(f Family) {
	if f.Name == "" || f.Build == nil {
		panic("host: Register needs a name and a Build func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("host: family %q registered twice", f.Name))
	}
	registry[f.Name] = f
}

// Families returns the registered families sorted by name.
func Families() []Family {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Describe renders the registry as a usage listing — appended to
// unknown-descriptor errors so a mistyped -host flag is self-repairing.
func Describe() string {
	var sb strings.Builder
	sb.WriteString("registered host families:\n")
	for _, f := range Families() {
		fmt.Fprintf(&sb, "  %-44s %s\n", f.Syntax, f.Doc)
	}
	return sb.String()
}

// Parse resolves a descriptor into a Host.
func Parse(desc string) (*Host, error) {
	name, rest := desc, ""
	if i := strings.IndexByte(desc, ':'); i >= 0 {
		name, rest = desc[:i], desc[i+1:]
	}
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("host: unknown family %q in descriptor %q\n%s", name, desc, Describe())
	}
	p, err := parseParams(rest)
	if err != nil {
		return nil, fmt.Errorf("host: descriptor %q: %w", desc, err)
	}
	h, err := f.Build(p)
	if err != nil {
		return nil, fmt.Errorf("host: %s (syntax: %s): %w", desc, f.Syntax, err)
	}
	if err := p.unusedErr(); err != nil {
		return nil, fmt.Errorf("host: descriptor %q: %w", desc, err)
	}
	h.Desc = desc
	return h, nil
}

// MustParse is Parse that panics on error; for tests and goldens.
func MustParse(desc string) *Host {
	h, err := Parse(desc)
	if err != nil {
		panic(err)
	}
	return h
}

// Params holds the parsed argument list of a descriptor.
type Params struct {
	pos    []string
	kv     map[string]string
	usedKV map[string]bool
	posUse int
}

func parseParams(rest string) (*Params, error) {
	p := &Params{kv: map[string]string{}, usedKV: map[string]bool{}}
	if rest == "" {
		return p, nil
	}
	for _, item := range strings.Split(rest, ",") {
		if item == "" {
			return nil, fmt.Errorf("empty argument")
		}
		if i := strings.IndexByte(item, '='); i >= 0 {
			k, v := item[:i], item[i+1:]
			if k == "" || v == "" {
				return nil, fmt.Errorf("malformed argument %q", item)
			}
			if _, dup := p.kv[k]; dup {
				return nil, fmt.Errorf("duplicate argument %q", k)
			}
			p.kv[k] = v
		} else {
			p.pos = append(p.pos, item)
		}
	}
	return p, nil
}

// Pos consumes and returns the next positional argument, or "".
func (p *Params) Pos() string {
	if p.posUse >= len(p.pos) {
		return ""
	}
	s := p.pos[p.posUse]
	p.posUse++
	return s
}

// Str returns the named argument, falling back to the next positional
// argument, then to def.
func (p *Params) Str(name, def string) string {
	if v, ok := p.kv[name]; ok {
		p.usedKV[name] = true
		return v
	}
	if s := p.Pos(); s != "" {
		return s
	}
	return def
}

// Int is Str parsed as a decimal integer; parse failures are recorded
// and surfaced by Err.
func (p *Params) Int(name string, def int) (int, error) {
	s := p.Str(name, "")
	if s == "" {
		return def, nil
	}
	x, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("argument %s=%q is not an integer", name, s)
	}
	return x, nil
}

// Int64 is Int with 64-bit range (seeds).
func (p *Params) Int64(name string, def int64) (int64, error) {
	s := p.Str(name, "")
	if s == "" {
		return def, nil
	}
	x, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("argument %s=%q is not an integer", name, s)
	}
	return x, nil
}

// Dims parses an "AxBxC" dimension list from the named or positional
// argument; an empty argument yields def.
func (p *Params) Dims(name string, def []int) ([]int, error) {
	s := p.Str(name, "")
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, part := range parts {
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("argument %s=%q: %q is not an integer", name, s, part)
		}
		dims[i] = x
	}
	return dims, nil
}

// IntList parses a '+'-separated integer list ("1+3+5").
func (p *Params) IntList(name string, def []int) ([]int, error) {
	s := p.Str(name, "")
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, "+")
	out := make([]int, len(parts))
	for i, part := range parts {
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("argument %s=%q: %q is not an integer", name, s, part)
		}
		out[i] = x
	}
	return out, nil
}

// unusedErr reports arguments no Build consumed — typos like "ssed=7"
// fail loudly instead of being silently ignored.
func (p *Params) unusedErr() error {
	var bad []string
	for k := range p.kv {
		if !p.usedKV[k] {
			bad = append(bad, k)
		}
	}
	if p.posUse < len(p.pos) {
		bad = append(bad, p.pos[p.posUse:]...)
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("unused arguments %v", bad)
}
