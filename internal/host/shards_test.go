package host

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
)

// TestParseRejectsOverCapacity: descriptors whose derived size cannot
// fit the int32 flat-CSR substrate fail at parse time — fast, with no
// giant allocation — and the error points at the sharded escape
// hatch by name.
func TestParseRejectsOverCapacity(t *testing.T) {
	cases := []string{
		"torus:100000x100000",
		"grid:70000x70000",
		"grid3d:2000x2000x2000",
		"complete:100000",
		"cycle:3000000000",
		"dcycle:2200000000",
		"path:2147483648",
		"circulant:200000000,1+2+3+4+5+6",
		"random-regular:d=30,n=100000000,seed=1",
		"shift-regular:d=30,n=100000000,seed=1",
		"lift:cycle:2000000,l=2000",
	}
	for _, desc := range cases {
		_, err := Parse(desc)
		if err == nil {
			t.Errorf("Parse(%q): expected a flat-capacity error, got nil", desc)
			continue
		}
		for _, want := range []string{
			"exceeds the flat-CSR int32 capacity",
			"use shards",
			"shard-capable families:",
			"torus", // at least one real family must be named
		} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Parse(%q) error %q: missing %q", desc, err, want)
			}
		}
	}
}

// TestCheckFlatBoundary pins the exact capacity boundary without
// allocating anything.
func TestCheckFlatBoundary(t *testing.T) {
	if err := checkFlat(graph.FlatCapacity, graph.FlatCapacity); err != nil {
		t.Fatalf("checkFlat at capacity: %v", err)
	}
	if err := checkFlat(graph.FlatCapacity+1, 0); err == nil {
		t.Fatal("checkFlat(cap+1 nodes) accepted")
	}
	if err := checkFlat(0, graph.FlatCapacity+1); err == nil {
		t.Fatal("checkFlat(cap+1 arcs) accepted")
	}
}

// TestMulNodesOverflow: the dimension product stops at the first
// over-capacity prefix instead of overflowing int64.
func TestMulNodesOverflow(t *testing.T) {
	if n, err := mulNodes([]int{10, 20, 30}); err != nil || n != 6000 {
		t.Fatalf("mulNodes(10,20,30) = %d, %v", n, err)
	}
	for _, dims := range [][]int{
		{100000, 100000},
		{46341, 46341}, // 46341^2 = 2147488281, just past 2^31-1
		{1 << 20, 1 << 20, 1 << 20, 1 << 20}, // would overflow int64 without the prefix check
	} {
		if _, err := mulNodes(dims); err == nil {
			t.Errorf("mulNodes(%v) accepted", dims)
		}
	}
}

// TestShiftRegularFamily: the materialised shift-regular host is
// d-regular with a proper d/2-label orientation, and invalid
// parameters are rejected.
func TestShiftRegularFamily(t *testing.T) {
	h := MustParse("shift-regular:d=4,n=16,seed=7")
	if h.G.N() != 16 {
		t.Fatalf("n = %d", h.G.N())
	}
	for v := 0; v < h.G.N(); v++ {
		if h.G.Degree(v) != 4 {
			t.Fatalf("node %d has degree %d, want 4", v, h.G.Degree(v))
		}
		if len(h.D.Out(v)) != 2 || len(h.D.In(v)) != 2 {
			t.Fatalf("node %d has out/in %d/%d, want 2/2", v, len(h.D.Out(v)), len(h.D.In(v)))
		}
	}
	for _, bad := range []string{
		"shift-regular:d=3,n=16,seed=1", // odd degree
		"shift-regular:d=8,n=7,seed=1",  // d/2 > (n-1)/2
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestShardFamiliesAndParseShard: the implicit registry lists its
// families, resolves their descriptors and rejects the rest by
// pointing at what it can do.
func TestShardFamiliesAndParseShard(t *testing.T) {
	fams := ShardFamilies()
	for _, want := range []string{"cycle", "dcycle", "torus", "shift-regular"} {
		if !slices.Contains(fams, want) {
			t.Errorf("ShardFamilies() = %v: missing %q", fams, want)
		}
	}
	src, err := ParseShard("cycle:12")
	if err != nil {
		t.Fatalf("ParseShard(cycle:12): %v", err)
	}
	if src.N() != 12 || src.Alphabet() != 3 {
		t.Fatalf("cycle:12 source: n=%d alphabet=%d", src.N(), src.Alphabet())
	}
	if _, err := ParseShard("petersen"); err == nil ||
		!strings.Contains(err.Error(), "no implicit shard source") ||
		!strings.Contains(err.Error(), "shard-capable families:") {
		t.Fatalf("ParseShard(petersen) = %v", err)
	}
	if _, err := ParseShard("cycle:nope"); err == nil {
		t.Fatal("ParseShard(cycle:nope) accepted")
	}
	// The implicit grammar accepts sizes the flat registry cannot:
	// the whole point of the sources.
	big, err := ParseShard("dcycle:3000000000")
	if err != nil || big.N() != 3000000000 {
		t.Fatalf("ParseShard(dcycle:3000000000): n=%v err=%v", big, err)
	}
}

// sameDigraph asserts two labelled digraphs are arc-for-arc equal.
func sameDigraph(t *testing.T, name string, got, want *digraph.Digraph) {
	t.Helper()
	if got.N() != want.N() || got.Alphabet() != want.Alphabet() {
		t.Fatalf("%s: n/alphabet %d/%d, want %d/%d", name, got.N(), got.Alphabet(), want.N(), want.Alphabet())
	}
	for v := 0; v < want.N(); v++ {
		if !slices.Equal(got.Out(v), want.Out(v)) {
			t.Fatalf("%s: node %d out arcs %v, want %v", name, v, got.Out(v), want.Out(v))
		}
		if !slices.Equal(got.In(v), want.In(v)) {
			t.Fatalf("%s: node %d in arcs %v, want %v", name, v, got.In(v), want.In(v))
		}
	}
}

// TestCycleSourceMatchesFromPorts pins the cycle source's closed-form
// labelling to the canonical digraph.FromPorts(graph.Cycle(n), nil)
// labelling, arc for arc — the equality the source's comment promises.
func TestCycleSourceMatchesFromPorts(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 12, 33} {
		src, err := ParseShard(fmt.Sprintf("cycle:%d", n))
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.MaterializeSource(src)
		if err != nil {
			t.Fatalf("materialize cycle:%d: %v", n, err)
		}
		sameDigraph(t, fmt.Sprintf("cycle:%d", n), got.D, digraph.FromPorts(graph.Cycle(n), nil).D)
	}
}

// TestDcycleSourceMatchesRegistry: the implicit oriented cycle equals
// the materialised registry family.
func TestDcycleSourceMatchesRegistry(t *testing.T) {
	for _, n := range []int{3, 7, 12} {
		desc := fmt.Sprintf("dcycle:%d", n)
		src, err := ParseShard(desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.MaterializeSource(src)
		if err != nil {
			t.Fatal(err)
		}
		sameDigraph(t, desc, got.D, MustParse(desc).D)
	}
}

// TestShiftRegularSourceMatchesRegistry: one shift derivation feeds
// both registrations, so implicit and materialised shift-regular
// hosts agree arc for arc.
func TestShiftRegularSourceMatchesRegistry(t *testing.T) {
	for _, desc := range []string{
		"shift-regular:d=4,n=16,seed=7",
		"shift-regular:d=6,n=31,seed=3",
		"shift-regular:d=2,n=5,seed=1",
	} {
		src, err := ParseShard(desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.MaterializeSource(src)
		if err != nil {
			t.Fatal(err)
		}
		sameDigraph(t, desc, got.D, MustParse(desc).D)
	}
}

// TestTorusSourceUnderlyingMatchesRegistry: the implicit torus
// carries its own dimension-indexed labelling, but its underlying
// graph must be exactly the registry torus — same row-major ids,
// same edges.
func TestTorusSourceUnderlyingMatchesRegistry(t *testing.T) {
	for _, desc := range []string{"torus:4x4", "torus:3x4x5", "torus:3x3"} {
		src, err := ParseShard(desc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := model.MaterializeSource(src)
		if err != nil {
			t.Fatalf("materialize %s: %v", desc, err)
		}
		want := MustParse(desc).G
		if got.G.N() != want.N() {
			t.Fatalf("%s: n = %d, want %d", desc, got.G.N(), want.N())
		}
		for v := 0; v < want.N(); v++ {
			if !slices.Equal(got.G.Neighbors(v), want.Neighbors(v)) {
				t.Fatalf("%s: node %d neighbours %v, want %v", desc, v, got.G.Neighbors(v), want.Neighbors(v))
			}
		}
	}
}
