package host

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/order"
)

// refAdj rebuilds a slice-of-slices adjacency (the pre-CSR reference
// representation) from a host's edge list.
func refAdj(h *Host) [][]int {
	adj := make([][]int, h.G.N())
	for _, e := range h.G.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return adj
}

// refEncode is the reference canonical-ball encoding: the same format
// as order.Ball.Encode, rendered with fmt over the reference
// adjacency instead of the CSR rows.
func refEncode(adj [][]int, root int) string {
	s := fmt.Sprintf("n%d r%d:", len(adj), root)
	for u := range adj {
		for _, v := range adj[u] {
			if u < v {
				s += strconv.Itoa(u) + "-" + strconv.Itoa(v) + ";"
			}
		}
	}
	return s
}

// TestHostsCSRAgainstReference pins the CSR substrate on every pinned
// host family — including the Cayley families, which exercise
// digraph.Materialize and Underlying — against the slice-of-slices
// reference: identical adjacency, and byte-identical canonical-ball
// encodings at radii 1 and 2 under the identity order.
func TestHostsCSRAgainstReference(t *testing.T) {
	descs := []string{
		"petersen",
		"torus:6x6",
		"random-regular:d=4,n=20,seed=7",
		"cayley:W,level=2,k=2,seed=1",
		"cayley:H,level=2,m=4,k=2,seed=1",
		"grid3d:3x3x2",
		"margulis-expander:n=5",
		"lift:cycle:9,l=3",
	}
	for _, desc := range descs {
		t.Run(desc, func(t *testing.T) {
			h, err := Parse(desc)
			if err != nil {
				t.Fatal(err)
			}
			adj := refAdj(h)
			for v := 0; v < h.G.N(); v++ {
				row := h.G.Neighbors(v)
				if len(row) != len(adj[v]) {
					t.Fatalf("degree of %d: csr %d ref %d", v, len(row), len(adj[v]))
				}
				for i, w := range row {
					if int(w) != adj[v][i] {
						t.Fatalf("neighbor %d of %d: csr %d ref %d", i, v, w, adj[v][i])
					}
				}
			}
			rank := order.Identity(h.G.N())
			for _, r := range []int{1, 2} {
				for v := 0; v < h.G.N(); v++ {
					ball, verts := order.CanonicalBallVerts(h.G, rank, v, r)
					got := ball.Encode()
					// Rebuild the ball's reference adjacency through the
					// same vertex relabelling.
					idx := map[int]int{}
					for i, ov := range verts {
						idx[ov] = i
					}
					sub := make([][]int, len(verts))
					for i, ov := range verts {
						for _, w := range adj[ov] {
							if j, in := idx[w]; in {
								sub[i] = append(sub[i], j)
							}
						}
						sort.Ints(sub[i])
					}
					if want := refEncode(sub, ball.Root); got != want {
						t.Fatalf("Encode mismatch at v=%d r=%d:\ncsr %s\nref %s", v, r, got, want)
					}
				}
			}
		})
	}
}

// TestRegistryErrors exercises the descriptor grammar's failure modes.
func TestRegistryErrors(t *testing.T) {
	if _, err := Parse("moebius:7"); err == nil {
		t.Fatal("unknown family accepted")
	} else if got := err.Error(); !strings.Contains(got, "registered host families") || !strings.Contains(got, "torus:<s1>x<s2>") {
		t.Fatalf("unknown-family error does not list the registry:\n%s", got)
	}
	for _, bad := range []string{
		"torus:2x2",                       // side < 3
		"random-regular:d=5,n=5,seed=1",   // d >= n
		"random-regular:d=three,n=8",      // non-integer
		"cycle:12,bogus=1",                // unused argument
		"cayley:U,level=2,k=1,seed=1",     // infinite group
		"cayley:H,level=3,m=6,k=1,seed=1", // exceeds node cap
		"lift:",                           // missing base
		"circulant:10,4+9",                // offset out of range
		"hypercube:0",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("descriptor %q accepted", bad)
		}
	}
}

// TestFamilyProperties checks each family delivers its structural
// contract.
func TestFamilyProperties(t *testing.T) {
	if g := MustParse("torus:4x5x3").G; g.N() != 60 || !g.IsRegular(6) {
		t.Error("torus:4x5x3 wrong shape")
	}
	if g := MustParse("hypercube:5").G; g.N() != 32 || !g.IsRegular(5) {
		t.Error("hypercube:5 wrong shape")
	}
	if g := MustParse("grid3d:2x3x4").G; g.N() != 24 || g.M() != 46 {
		t.Errorf("grid3d:2x3x4 wrong shape: n=%d m=%d", g.N(), g.M())
	}
	if g := MustParse("random-regular:d=4,n=18,seed=3").G; !g.IsRegular(4) {
		t.Error("random-regular not regular")
	}
	if g := MustParse("margulis-expander:n=8").G; g.N() != 64 || g.MaxDegree() > 8 {
		t.Error("margulis-expander wrong shape")
	}
	if g := MustParse("circulant:12,1+2+6").G; g.N() != 12 || g.MaxDegree() != 5 {
		t.Errorf("circulant:12,1+2+6 wrong shape: Δ=%d", g.MaxDegree())
	}
	h := MustParse("lift:petersen,l=4,seed=9")
	if h.G.N() != 40 || !h.G.IsRegular(3) {
		t.Error("lift:petersen,l=4 is not a 3-regular 40-vertex graph")
	}
	if h.D == nil {
		t.Error("lift host should carry its digraph")
	}
	// cayley:H on k generators of infinite order is 2k-regular when no
	// generator is an involution; with involutions the collapse keeps
	// the degree at most 2k. Either way every vertex exists.
	ch := MustParse("cayley:H,level=2,m=4,k=2,seed=1")
	if ch.G.N() != 64 {
		t.Errorf("cayley:H level 2 m=4 has %d vertices, want 4^3", ch.G.N())
	}
	if d := ch.G.MaxDegree(); d > 4 {
		t.Errorf("cayley:H with k=2 has Δ=%d > 2k", d)
	}
	// Same seed, same graph: descriptors are reproducible.
	a := MustParse("random-regular:d=3,n=20,seed=5").G
	b := MustParse("random-regular:d=3,n=20,seed=5").G
	for v := 0; v < a.N(); v++ {
		ra, rb := a.Neighbors(v), b.Neighbors(v)
		if len(ra) != len(rb) {
			t.Fatal("same descriptor, different graphs")
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatal("same descriptor, different graphs")
			}
		}
	}
}
