package host

import (
	"fmt"
	"strings"
	"testing"
)

// familySamples maps every registered family to representative
// descriptors. TestRoundTripCoversRegistry fails when a family has no
// entry, so adding a family without extending this table is a test
// failure, not silent shrinkage of the round-trip net.
var familySamples = map[string][]string{
	"cycle":             {"cycle:12", "cycle:3"},
	"dcycle":            {"dcycle:12", "dcycle:3"},
	"path":              {"path:1", "path:9"},
	"complete":          {"complete:5"},
	"petersen":          {"petersen"},
	"grid":              {"grid:4x4", "grid:1x7"},
	"grid3d":            {"grid3d:3x3x3", "grid3d:2x3x4"},
	"torus":             {"torus:6x6", "torus:3x4x5"},
	"hypercube":         {"hypercube:4", "hypercube:1"},
	"circulant":         {"circulant:16,1+2", "circulant:9,1"},
	"random-regular":    {"random-regular:d=3,n=16,seed=7"},
	"shift-regular":     {"shift-regular:d=4,n=16,seed=7", "shift-regular:d=2,n=5,seed=1"},
	"margulis-expander": {"margulis-expander:n=8"},
	"cayley":            {"cayley:W,level=2,k=2,seed=1"},
	"lift":              {"lift:cycle:9,l=3", "lift:petersen,l=2,seed=5"},
}

// TestRoundTripCoversRegistry: every registered family has at least
// one sample descriptor above.
func TestRoundTripCoversRegistry(t *testing.T) {
	for _, f := range Families() {
		if len(familySamples[f.Name]) == 0 {
			t.Errorf("family %q has no round-trip sample descriptor; add one to familySamples", f.Name)
		}
	}
	for name := range familySamples {
		found := false
		for _, f := range Families() {
			if f.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("familySamples has stale entry %q: no such registered family", name)
		}
	}
}

// TestParseRoundTripFixpoint pins the descriptor grammar's fixpoint:
// parsing a descriptor stamps it verbatim into Host.Desc, and parsing
// that stamped string again yields a structurally identical host —
// same vertex count, same edge multiset, same digraph arc set. This
// is what makes Desc a stable cache key (the service layer keys its
// result cache on it) and what keeps error messages, logs and goldens
// replayable.
func TestParseRoundTripFixpoint(t *testing.T) {
	for name, descs := range familySamples {
		for _, desc := range descs {
			h1, err := Parse(desc)
			if err != nil {
				t.Errorf("%s: Parse(%q): %v", name, desc, err)
				continue
			}
			if h1.Desc != desc {
				t.Errorf("%s: Parse(%q) stamped Desc=%q, want the input verbatim", name, desc, h1.Desc)
				continue
			}
			h2, err := Parse(h1.Desc)
			if err != nil {
				t.Errorf("%s: re-Parse(%q): %v", name, h1.Desc, err)
				continue
			}
			if h2.Desc != h1.Desc {
				t.Errorf("%s: Desc drifted on re-parse: %q -> %q", name, h1.Desc, h2.Desc)
			}
			if err := sameHost(h1, h2); err != nil {
				t.Errorf("%s: %q re-parsed to a different host: %v", name, desc, err)
			}
		}
	}
}

// TestParseRejectsTrailingGarbage: the fixpoint property only holds
// because the grammar is strict — unused arguments are errors, so no
// two distinct descriptors silently alias one host.
func TestParseRejectsTrailingGarbage(t *testing.T) {
	for _, desc := range []string{
		"cycle:12,extra=1",
		"dcycle:12,9",
		"torus:6x6,seed=3",
		"petersen:5",
	} {
		if _, err := Parse(desc); err == nil || !strings.Contains(err.Error(), "unused arguments") {
			t.Errorf("Parse(%q) err=%v, want an unused-arguments error", desc, err)
		}
	}
}

// sameHost compares two hosts structurally: vertex count, undirected
// neighbour rows, digraph presence and arc rows.
func sameHost(a, b *Host) error {
	if a.G.N() != b.G.N() {
		return errf("N %d vs %d", a.G.N(), b.G.N())
	}
	for v := 0; v < a.G.N(); v++ {
		na, nb := a.G.Neighbors(v), b.G.Neighbors(v)
		if len(na) != len(nb) {
			return errf("vertex %d degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				return errf("vertex %d neighbour row differs at %d: %d vs %d", v, i, na[i], nb[i])
			}
		}
	}
	if (a.D == nil) != (b.D == nil) {
		return errf("digraph presence %v vs %v", a.D != nil, b.D != nil)
	}
	if a.D == nil {
		return nil
	}
	if a.D.N() != b.D.N() {
		return errf("digraph N %d vs %d", a.D.N(), b.D.N())
	}
	for v := 0; v < a.D.N(); v++ {
		oa, ob := a.D.Out(v), b.D.Out(v)
		if len(oa) != len(ob) {
			return errf("vertex %d out-degree %d vs %d", v, len(oa), len(ob))
		}
		for i := range oa {
			if oa[i] != ob[i] {
				return errf("vertex %d arc %d: %+v vs %+v", v, i, oa[i], ob[i])
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
