package host

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/digraph"
)

// This file is the implicit side of the registry: shard sources
// generate a family's host node by node under digraph.Source, so a
// 10^8-node host never materialises. Sources must agree with their
// materialised siblings — cycle and dcycle reproduce the canonical
// digraph.FromPorts / registry labelling exactly (pinned by
// differential tests); torus carries its own canonical
// dimension-indexed labelling (FromPorts compact labels depend on a
// global first-encounter order no local rule can reproduce), and
// shift-regular is registered in both forms from one shift
// derivation, so implicit and materialised agree arc for arc.

var (
	shardMu  sync.RWMutex
	shardReg = map[string]func(p *Params) (digraph.Source, error){}
)

// RegisterShard adds an implicit shard-source builder for a family
// name; duplicate names panic.
func RegisterShard(name string, build func(p *Params) (digraph.Source, error)) {
	if name == "" || build == nil {
		panic("host: RegisterShard needs a name and a build func")
	}
	shardMu.Lock()
	defer shardMu.Unlock()
	if _, dup := shardReg[name]; dup {
		panic(fmt.Sprintf("host: shard family %q registered twice", name))
	}
	shardReg[name] = build
}

// ShardFamilies returns the names of the families that can generate
// shard-locally, sorted — the escape hatch the flat-capacity errors
// point at.
func ShardFamilies() []string {
	shardMu.RLock()
	defer shardMu.RUnlock()
	out := make([]string, 0, len(shardReg))
	for name := range shardReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseShard resolves a descriptor into an implicit shard source.
// The grammar is exactly Parse's; only families with a registered
// source resolve (ShardFamilies lists them).
func ParseShard(desc string) (digraph.Source, error) {
	name, rest := desc, ""
	if i := strings.IndexByte(desc, ':'); i >= 0 {
		name, rest = desc[:i], desc[i+1:]
	}
	shardMu.RLock()
	build, ok := shardReg[name]
	shardMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("host: family %q has no implicit shard source (shard-capable families: %s)",
			name, strings.Join(ShardFamilies(), ", "))
	}
	p, err := parseParams(rest)
	if err != nil {
		return nil, fmt.Errorf("host: descriptor %q: %w", desc, err)
	}
	src, err := build(p)
	if err != nil {
		return nil, fmt.Errorf("host: %s: %w", desc, err)
	}
	if err := p.unusedErr(); err != nil {
		return nil, fmt.Errorf("host: descriptor %q: %w", desc, err)
	}
	return src, nil
}

func init() {
	RegisterShard("cycle", func(p *Params) (digraph.Source, error) {
		n, err := p.Int64("n", 12)
		if err != nil || n < 3 {
			return nil, orErr(err, "need n >= 3")
		}
		return cycleSource{n: n}, nil
	})
	RegisterShard("dcycle", func(p *Params) (digraph.Source, error) {
		n, err := p.Int64("n", 12)
		if err != nil || n < 3 {
			return nil, orErr(err, "need n >= 3")
		}
		return dcycleSource{n: n}, nil
	})
	RegisterShard("torus", func(p *Params) (digraph.Source, error) {
		dims, err := p.Dims("dims", []int{6, 6})
		if err != nil {
			return nil, err
		}
		for _, s := range dims {
			if s < 3 {
				return nil, fmt.Errorf("side %d < 3", s)
			}
		}
		return newTorusSource(dims), nil
	})
	RegisterShard("shift-regular", func(p *Params) (digraph.Source, error) {
		d, err := p.Int("d", 4)
		if err != nil {
			return nil, err
		}
		n, err := p.Int64("n", 16)
		if err != nil {
			return nil, err
		}
		seed, err := p.Int64("seed", 1)
		if err != nil {
			return nil, err
		}
		if n > int64(int(^uint(0)>>1)) {
			return nil, fmt.Errorf("n=%d out of range", n)
		}
		shifts, err := shiftRegularShifts(int(n), d, seed)
		if err != nil {
			return nil, err
		}
		s64 := make([]int64, len(shifts))
		for i, s := range shifts {
			s64[i] = int64(s)
		}
		return shiftSource{n: n, shifts: s64}, nil
	})
}

// cycleSource generates the undirected n-cycle with exactly the
// canonical labelling digraph.FromPorts(graph.Cycle(n), nil) assigns:
// compact labels in first-encounter order over the lexicographic edge
// sweep, which for a cycle closes to three labels — (1,1) on 0->1,
// (2,1) on every other forward arc and on 0->n-1, (2,2) on the last
// arc n-2 -> n-1. The equality is pinned by a differential test.
type cycleSource struct{ n int64 }

func (c cycleSource) N() int64      { return c.n }
func (c cycleSource) Alphabet() int { return 3 }

func (c cycleSource) Degree(v int64) (int, int) {
	switch v {
	case 0:
		return 2, 0
	case c.n - 1:
		return 0, 2
	default:
		return 1, 1
	}
}

func (c cycleSource) AppendArcs(v int64, out, in []digraph.SourceArc) ([]digraph.SourceArc, []digraph.SourceArc) {
	n := c.n
	switch {
	case v == 0:
		out = append(out, digraph.SourceArc{To: 1, Label: 0}, digraph.SourceArc{To: n - 1, Label: 1})
	case v == n-1:
		in = append(in, digraph.SourceArc{To: 0, Label: 1}, digraph.SourceArc{To: n - 2, Label: 2})
	default:
		lbl := 1
		if v == n-2 {
			lbl = 2
		}
		out = append(out, digraph.SourceArc{To: v + 1, Label: lbl})
		prev := 1
		if v == 1 {
			prev = 0
		}
		in = append(in, digraph.SourceArc{To: v - 1, Label: prev})
	}
	return out, in
}

// dcycleSource generates the consistently oriented directed n-cycle
// with the registry's labelling: every arc i -> i+1 mod n carries
// label 0.
type dcycleSource struct{ n int64 }

func (c dcycleSource) N() int64                { return c.n }
func (c dcycleSource) Alphabet() int           { return 1 }
func (c dcycleSource) Degree(int64) (int, int) { return 1, 1 }

func (c dcycleSource) AppendArcs(v int64, out, in []digraph.SourceArc) ([]digraph.SourceArc, []digraph.SourceArc) {
	out = append(out, digraph.SourceArc{To: (v + 1) % c.n, Label: 0})
	in = append(in, digraph.SourceArc{To: (v - 1 + c.n) % c.n, Label: 0})
	return out, in
}

// torusSource generates the k-dimensional torus (row-major node ids,
// matching graph.Torus) under its own canonical labelling: the +1
// step along dimension e is the out-arc labelled e, the -1 step the
// in-arc labelled e. This is a proper labelling (one out- and one
// in-label per dimension) but NOT the FromPorts compact labelling —
// the implicit torus is its own host family variant, and sharded
// runs compare against its materialised form via
// model.MaterializeSource.
type torusSource struct {
	dims   []int64
	stride []int64
	n      int64
}

func newTorusSource(dims []int) torusSource {
	k := len(dims)
	t := torusSource{dims: make([]int64, k), stride: make([]int64, k), n: 1}
	for i, s := range dims {
		t.dims[i] = int64(s)
		t.n *= int64(s)
	}
	st := int64(1)
	for e := k - 1; e >= 0; e-- {
		t.stride[e] = st
		st *= t.dims[e]
	}
	return t
}

func (t torusSource) N() int64      { return t.n }
func (t torusSource) Alphabet() int { return len(t.dims) }
func (t torusSource) Degree(int64) (int, int) {
	return len(t.dims), len(t.dims)
}

func (t torusSource) AppendArcs(v int64, out, in []digraph.SourceArc) ([]digraph.SourceArc, []digraph.SourceArc) {
	for e := range t.dims {
		s, st := t.dims[e], t.stride[e]
		c := (v / st) % s
		fwd := v + (((c+1)%s)-c)*st
		bwd := v + (((c-1+s)%s)-c)*st
		out = append(out, digraph.SourceArc{To: fwd, Label: e})
		in = append(in, digraph.SourceArc{To: bwd, Label: e})
	}
	return out, in
}

// shiftSource generates the shift-regular circulant implicitly: the
// out-arc labelled j goes to v + shifts[j] mod n, mirroring the
// materialised family's builder loop exactly.
type shiftSource struct {
	n      int64
	shifts []int64
}

func (c shiftSource) N() int64      { return c.n }
func (c shiftSource) Alphabet() int { return len(c.shifts) }
func (c shiftSource) Degree(int64) (int, int) {
	return len(c.shifts), len(c.shifts)
}

func (c shiftSource) AppendArcs(v int64, out, in []digraph.SourceArc) ([]digraph.SourceArc, []digraph.SourceArc) {
	for j, s := range c.shifts {
		out = append(out, digraph.SourceArc{To: (v + s) % c.n, Label: j})
		in = append(in, digraph.SourceArc{To: (v - s + c.n) % c.n, Label: j})
	}
	return out, in
}
