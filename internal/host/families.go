package host

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/lift"
)

// plain wraps a *graph.Graph-producing constructor as a Host builder.
func plain(build func(p *Params) (*graph.Graph, error)) func(p *Params) (*Host, error) {
	return func(p *Params) (*Host, error) {
		g, err := build(p)
		if err != nil {
			return nil, err
		}
		return &Host{G: g}, nil
	}
}

func init() {
	Register(Family{
		Name: "cycle", Syntax: "cycle:<n>", Doc: "the n-cycle (n >= 3)",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			n, err := p.Int("n", 12)
			if err != nil || n < 3 {
				return nil, orErr(err, "need n >= 3")
			}
			if err := checkFlat(int64(n), 2*int64(n)); err != nil {
				return nil, err
			}
			return graph.Cycle(n), nil
		}),
	})
	Register(Family{
		Name: "dcycle", Syntax: "dcycle:<n>", Doc: "the consistently oriented directed n-cycle (n >= 3)",
		Build: func(p *Params) (*Host, error) {
			n, err := p.Int("n", 12)
			if err != nil || n < 3 {
				return nil, orErr(err, "need n >= 3")
			}
			if err := checkFlat(int64(n), 2*int64(n)); err != nil {
				return nil, err
			}
			b := digraph.NewBuilder(n, 1)
			for i := 0; i < n; i++ {
				b.MustAddArc(i, (i+1)%n, 0)
			}
			d := b.Build()
			g, err := d.Underlying()
			if err != nil {
				return nil, err
			}
			return &Host{G: g, D: d}, nil
		},
	})
	Register(Family{
		Name: "path", Syntax: "path:<n>", Doc: "the path on n vertices",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			n, err := p.Int("n", 12)
			if err != nil || n < 1 {
				return nil, orErr(err, "need n >= 1")
			}
			if err := checkFlat(int64(n), 2*(int64(n)-1)); err != nil {
				return nil, err
			}
			return graph.Path(n), nil
		}),
	})
	Register(Family{
		Name: "complete", Syntax: "complete:<n>", Doc: "the complete graph K_n",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			n, err := p.Int("n", 5)
			if err != nil || n < 1 {
				return nil, orErr(err, "need n >= 1")
			}
			if err := checkFlat(int64(n), int64(n)*(int64(n)-1)); err != nil {
				return nil, err
			}
			return graph.Complete(n), nil
		}),
	})
	Register(Family{
		Name: "petersen", Syntax: "petersen", Doc: "the Petersen graph",
		Build: plain(func(p *Params) (*graph.Graph, error) { return graph.Petersen(), nil }),
	})
	Register(Family{
		Name: "grid", Syntax: "grid:<r>x<c>", Doc: "the r x c grid",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			dims, err := p.Dims("dims", []int{4, 4})
			if err != nil {
				return nil, err
			}
			if len(dims) != 2 || dims[0] < 1 || dims[1] < 1 {
				return nil, fmt.Errorf("need two positive dimensions")
			}
			n, err := mulNodes(dims)
			if err != nil {
				return nil, err
			}
			if err := checkFlat(n, 4*n); err != nil {
				return nil, err
			}
			return graph.Grid(dims[0], dims[1]), nil
		}),
	})
	Register(Family{
		Name: "grid3d", Syntax: "grid3d:<x>x<y>x<z>", Doc: "the three-dimensional grid",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			dims, err := p.Dims("dims", []int{3, 3, 3})
			if err != nil {
				return nil, err
			}
			if len(dims) != 3 || dims[0] < 1 || dims[1] < 1 || dims[2] < 1 {
				return nil, fmt.Errorf("need three positive dimensions")
			}
			n, err := mulNodes(dims)
			if err != nil {
				return nil, err
			}
			if err := checkFlat(n, 6*n); err != nil {
				return nil, err
			}
			return graph.Grid3D(dims[0], dims[1], dims[2]), nil
		}),
	})
	Register(Family{
		Name: "torus", Syntax: "torus:<s1>x<s2>[x<s3>...]", Doc: "toroidal grid, every side >= 3",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			dims, err := p.Dims("dims", []int{6, 6})
			if err != nil {
				return nil, err
			}
			for _, s := range dims {
				if s < 3 {
					return nil, fmt.Errorf("side %d < 3", s)
				}
			}
			n, err := mulNodes(dims)
			if err != nil {
				return nil, err
			}
			if err := checkFlat(n, 2*int64(len(dims))*n); err != nil {
				return nil, err
			}
			return graph.Torus(dims...), nil
		}),
	})
	Register(Family{
		Name: "hypercube", Syntax: "hypercube:<k>", Doc: "the k-dimensional hypercube",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			k, err := p.Int("k", 4)
			if err != nil || k < 1 || k > 20 {
				return nil, orErr(err, "need 1 <= k <= 20")
			}
			return graph.Hypercube(k), nil
		}),
	})
	Register(Family{
		Name: "circulant", Syntax: "circulant:<n>,<s1>+<s2>+...", Doc: "circulant C_n(S), offsets 0 < s <= n/2",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			n, err := p.Int("n", 16)
			if err != nil || n < 3 {
				return nil, orErr(err, "need n >= 3")
			}
			offs, err := p.IntList("s", []int{1, 2})
			if err != nil {
				return nil, err
			}
			for _, s := range offs {
				if s <= 0 || 2*s > n {
					return nil, fmt.Errorf("offset %d out of range for n=%d", s, n)
				}
			}
			if err := checkFlat(int64(n), 2*int64(len(offs))*int64(n)); err != nil {
				return nil, err
			}
			return graph.Circulant(n, offs...), nil
		}),
	})
	Register(Family{
		Name: "random-regular", Syntax: "random-regular:d=<d>,n=<n>,seed=<s>", Doc: "random d-regular graph (pairing model)",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			d, err := p.Int("d", 3)
			if err != nil {
				return nil, err
			}
			n, err := p.Int("n", 16)
			if err != nil {
				return nil, err
			}
			seed, err := p.Int64("seed", 1)
			if err != nil {
				return nil, err
			}
			if d < 1 || n <= d || n*d%2 != 0 {
				return nil, fmt.Errorf("need 1 <= d < n with n*d even")
			}
			if err := checkFlat(int64(n), int64(n)*int64(d)); err != nil {
				return nil, err
			}
			return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed))), nil
		}),
	})
	Register(Family{
		Name:   "shift-regular",
		Syntax: "shift-regular:d=<d>,n=<n>,seed=<s>",
		Doc:    "d-regular circulant on d/2 seeded distinct shifts (shard-generable stand-in for random-regular)",
		Build: func(p *Params) (*Host, error) {
			d, err := p.Int("d", 4)
			if err != nil {
				return nil, err
			}
			n, err := p.Int("n", 16)
			if err != nil {
				return nil, err
			}
			seed, err := p.Int64("seed", 1)
			if err != nil {
				return nil, err
			}
			if err := checkFlat(int64(n), int64(n)*int64(d)); err != nil {
				return nil, err
			}
			shifts, err := shiftRegularShifts(n, d, seed)
			if err != nil {
				return nil, err
			}
			b := digraph.NewBuilder(n, len(shifts))
			for v := 0; v < n; v++ {
				for j, s := range shifts {
					b.MustAddArc(v, (v+s)%n, j)
				}
			}
			dg := b.Build()
			g, err := dg.Underlying()
			if err != nil {
				return nil, err
			}
			return &Host{G: g, D: dg}, nil
		},
	})
	Register(Family{
		Name: "margulis-expander", Syntax: "margulis-expander:n=<n>", Doc: "Margulis/Gabber-Galil expander on Z_n x Z_n (degree <= 8)",
		Build: plain(func(p *Params) (*graph.Graph, error) {
			n, err := p.Int("n", 8)
			if err != nil || n < 2 || n > 1024 {
				return nil, orErr(err, "need 2 <= n <= 1024")
			}
			return graph.MargulisExpander(n), nil
		}),
	})
	Register(Family{
		Name:   "cayley",
		Syntax: "cayley:<W|H>,level=<i>,k=<k>,seed=<s>[,m=<m>][,max=<cap>]",
		Doc:    "Cayley graph of the paper's finite groups W_i or H_i(m) on k random generators",
		Build:  buildCayley,
	})
	Register(Family{
		Name:   "lift",
		Syntax: "lift:<base-descriptor>,l=<copies>[,seed=<s>]",
		Doc:    "cyclic l-lift of a base host (seed=0: single twisted arc; else random shifts)",
		Build:  buildLift,
	})
}

// shiftRegularShifts derives the d/2 distinct shifts of the
// shift-regular family from (n, d, seed): a splitmix64 stream with
// rejection over [1, (n-1)/2], sorted ascending so shift index j is
// the family's canonical arc label. The implicit shard source
// (shards.go) re-derives exactly the same shifts, so the materialised
// and generated hosts agree arc for arc.
func shiftRegularShifts(n, d int, seed int64) ([]int, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("need even d >= 2")
	}
	half := (n - 1) / 2
	if n < 3 || d/2 > half {
		return nil, fmt.Errorf("need d/2 <= (n-1)/2 distinct shifts, have d=%d n=%d", d, n)
	}
	shifts := make([]int, 0, d/2)
	seen := make(map[int]bool, d/2)
	x := uint64(seed)
	limit := 64*(d+16) + 8*half // coupon-collector slack even when d/2 == half
	for draws := 0; len(shifts) < d/2; draws++ {
		if draws > limit {
			return nil, fmt.Errorf("shift derivation for n=%d d=%d seed=%d did not converge", n, d, seed)
		}
		x = splitmix64(x)
		s := int(x%uint64(half)) + 1
		if seen[s] {
			continue
		}
		seen[s] = true
		shifts = append(shifts, s)
	}
	slices.Sort(shifts)
	return shifts, nil
}

// splitmix64 is the standard SplitMix64 finaliser, the same mixer the
// fault scheduler builds its coordinate hashes from.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// orErr returns err when non-nil, else a new error with the message.
func orErr(err error, msg string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("%s", msg)
}

// buildCayley materialises the Cayley graph C(G, S) of a finite group
// of the paper — W_level (coordinates mod 2) or H_level(m) — on k
// random distinct non-identity generators. The infinite U is rejected:
// only constant-radius balls of it exist (see homog.UCayley). When a
// generator is an involution the Cayley multigraph has parallel arc
// pairs; the underlying host graph collapses them, and D is left nil
// in that case (no proper simple labelling exists).
func buildCayley(p *Params) (*Host, error) {
	which := strings.ToUpper(p.Str("group", "W"))
	level, err := p.Int("level", 2)
	if err != nil {
		return nil, err
	}
	k, err := p.Int("k", 2)
	if err != nil {
		return nil, err
	}
	seed, err := p.Int64("seed", 1)
	if err != nil {
		return nil, err
	}
	m, err := p.Int("m", 4)
	if err != nil {
		return nil, err
	}
	maxNodes, err := p.Int("max", 1<<15)
	if err != nil {
		return nil, err
	}
	var fam group.Family
	var mod int
	switch which {
	case "W":
		if level < 1 {
			return nil, fmt.Errorf("need level >= 1")
		}
		fam, mod = group.W(level), 2
	case "H":
		fam, err = group.NewFamily(level, m)
		if err != nil {
			return nil, err
		}
		mod = m
	case "U":
		return nil, fmt.Errorf("U is infinite and cannot be materialised; use cayley:W or cayley:H")
	default:
		return nil, fmt.Errorf("unknown group %q (want W or H)", which)
	}
	total := fam.Order()
	if !total.IsInt64() || total.Int64() > int64(maxNodes) {
		return nil, fmt.Errorf("|%s_%d| = %v exceeds the %d-node cap (raise max=)", which, level, total, maxNodes)
	}
	n := int(total.Int64())
	if n <= k {
		return nil, fmt.Errorf("group of order %d cannot host %d distinct non-identity generators", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	gens, err := randomGenerators(fam, k, rng)
	if err != nil {
		return nil, err
	}
	cay, err := group.NewCayley(fam, gens)
	if err != nil {
		return nil, err
	}
	// Enumerate every element by odometer: S need not generate, so all
	// elements are materialisation starts (the graph may be disconnected).
	nodes := make([]string, n)
	e := make(group.Elem, fam.Dim())
	for i := 0; i < n; i++ {
		nodes[i] = cay.Node(e)
		for j := 0; j < len(e); j++ {
			e[j]++
			if e[j] < mod {
				break
			}
			e[j] = 0
		}
	}
	d, _, _, err := digraph.Materialize[string](cay, nodes, n)
	if err != nil {
		return nil, err
	}
	if g, err := d.Underlying(); err == nil {
		return &Host{G: g, D: d}, nil
	}
	g, err := collapseMultigraph(d)
	if err != nil {
		return nil, err
	}
	return &Host{G: g}, nil
}

// randomGenerators picks k distinct non-identity elements.
func randomGenerators(fam group.Family, k int, rng *rand.Rand) ([]group.Elem, error) {
	seen := map[string]bool{group.EncodeElem(fam.Identity()): true}
	var gens []group.Elem
	for guard := 0; len(gens) < k; guard++ {
		if guard > 200*k {
			return nil, fmt.Errorf("could not draw %d distinct non-identity generators", k)
		}
		e := fam.Rand(rng)
		key := group.EncodeElem(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		gens = append(gens, e)
	}
	return gens, nil
}

// collapseMultigraph builds the simple underlying graph of a digraph
// whose undirected form has parallel arcs (generator involutions),
// deduplicating each neighbour row.
func collapseMultigraph(d *digraph.Digraph) (*graph.Graph, error) {
	n := d.N()
	rows := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, a := range d.Out(u) {
			rows[u] = append(rows[u], int32(a.To))
			rows[a.To] = append(rows[a.To], int32(u))
		}
	}
	off := make([]int32, n+1)
	for v, row := range rows {
		slices.Sort(row)
		rows[v] = slices.Compact(row)
		off[v+1] = off[v] + int32(len(rows[v]))
	}
	nbr := make([]int32, off[n])
	for v, row := range rows {
		copy(nbr[off[v]:], row)
	}
	return graph.FromCSR(off, nbr)
}

// buildLift resolves the base descriptor recursively, equips it with
// the canonical port labelling when it carries none, and takes a
// cyclic l-lift: seed=0 twists a single arc by one (the connected-lift
// construction of Prop. 4.5), any other seed hashes every arc to a
// pseudo-random shift.
func buildLift(p *Params) (*Host, error) {
	baseDesc := p.Pos()
	if baseDesc == "" {
		return nil, fmt.Errorf("missing base descriptor (e.g. lift:cycle:9,l=3)")
	}
	base, err := Parse(baseDesc)
	if err != nil {
		return nil, err
	}
	l, err := p.Int("l", 2)
	if err != nil {
		return nil, err
	}
	if l < 1 {
		return nil, fmt.Errorf("need l >= 1")
	}
	if err := checkFlat(int64(base.G.N())*int64(l), 4*int64(base.G.M())*int64(l)); err != nil {
		return nil, err
	}
	seed, err := p.Int64("seed", 0)
	if err != nil {
		return nil, err
	}
	bd := base.D
	if bd == nil {
		bd = digraph.FromPorts(base.G, nil).D
	}
	var shift lift.ShiftFunc
	if seed == 0 {
		// Twist the first arc only: l copies of the base re-joined into
		// one cycle of copies along that arc's fibre.
		tu, ta, found := firstArc(bd)
		if !found {
			return nil, fmt.Errorf("base host has no arcs")
		}
		shift = func(u, v, label int) int {
			if u == tu && v == ta.To && label == ta.Label {
				return 1
			}
			return 0
		}
	} else {
		shift = func(u, v, label int) int {
			h := uint64(seed)
			for _, x := range [3]int{u, v, label} {
				h ^= uint64(x) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
			}
			return int(h % uint64(l))
		}
	}
	ld, _, err := lift.Cyclic(bd, l, shift)
	if err != nil {
		return nil, err
	}
	g, err := ld.Underlying()
	if err != nil {
		return nil, err
	}
	return &Host{G: g, D: ld}, nil
}

// firstArc returns the first out-arc of the lowest-numbered vertex
// that has one.
func firstArc(d *digraph.Digraph) (int, digraph.Arc, bool) {
	for v := 0; v < d.N(); v++ {
		if out := d.Out(v); len(out) > 0 {
			return v, out[0], true
		}
	}
	return 0, digraph.Arc{}, false
}
