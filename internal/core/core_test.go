package core

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/homog"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

// directedCycleK returns the n-cycle directed around, declared over an
// alphabet of size k (labels used: only 0).
func directedCycleK(t *testing.T, n, k int) *digraph.Digraph {
	t.Helper()
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	d, err := b.Build().WithAlphabet(k)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustConstruction(t *testing.T, k, r int) *homog.Construction {
	t.Helper()
	c, err := homog.Search(k, r, homog.SearchOptions{Seed: 42})
	if err != nil {
		t.Fatalf("homog.Search: %v", err)
	}
	return c
}

func TestOIToPORadiusCheck(t *testing.T) {
	c := mustConstruction(t, 1, 1)
	tau, err := c.TauStar()
	if err != nil {
		t.Fatal(err)
	}
	a := model.FuncOI{R: 5, Fn: func(*order.Ball) model.Output { return model.Output{} }}
	if _, err := OIToPO(a, tau); err == nil {
		t.Error("radius larger than τ* depth accepted")
	}
}

func TestTheorem41VertexProblem(t *testing.T) {
	// A = "join the cover unless locally minimal" (OI, radius 1).
	// Transfer it to PO via τ* and check the full pipeline on the
	// directed cycle: agreement ≥ TauFrac on the lift, B feasible on
	// the base, and B's ratio close to A's.
	c := mustConstruction(t, 1, 1)
	if c.Level > 2 {
		t.Skipf("construction level %d too large to materialise", c.Level)
	}
	base := directedCycleK(t, 9, c.K)
	m := 8
	rep, err := TransferOIToPO(c, base, algorithms.OILocalMinJoinsVC(), problems.MinVertexCover{}, m, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreementFrac < rep.TauFrac {
		t.Errorf("agreement %v below τ* fraction %v", rep.AgreementFrac, rep.TauFrac)
	}
	if !rep.BFeasibleOnBase {
		t.Error("B infeasible on base")
	}
	// RatioA is a lower bound via opt(lift) <= l·opt(base); it can dip
	// below 1 when the lift's optimum beats l·opt(base) (odd cycles
	// lifting to longer cycles), but it must be positive.
	if rep.RatioA <= 0 {
		t.Errorf("RatioA %v must be positive", rep.RatioA)
	}
	if rep.RatioB > 2.2 {
		t.Errorf("B's vertex-cover ratio %v unexpectedly bad on the cycle", rep.RatioB)
	}
}

func TestTheorem41EdgeProblem(t *testing.T) {
	// A = "select the edge to the smallest-ordered neighbour" (EDS).
	c := mustConstruction(t, 1, 1)
	if c.Level > 2 {
		t.Skipf("construction level %d too large", c.Level)
	}
	base := directedCycleK(t, 6, c.K)
	rep, err := TransferOIToPO(c, base, algorithms.OISmallestNeighborEDS(), problems.MinEdgeDominatingSet{}, 8, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreementFrac < rep.TauFrac {
		t.Errorf("agreement %v below τ* fraction %v", rep.AgreementFrac, rep.TauFrac)
	}
	if !rep.BFeasibleOnBase {
		t.Error("B infeasible on base")
	}
	// On a symmetric cycle, B must select every edge (its behaviour is
	// the same at every node and nonempty), so its ratio is n/⌈n/3⌉ = 3.
	if rep.RatioB != 3 {
		t.Errorf("B's EDS ratio on C6 = %v, want 3", rep.RatioB)
	}
}

func TestCertifyPOLowerBoundEDSOnCycle(t *testing.T) {
	// The certified PO bound for EDS on the directed 9-cycle is
	// exactly 3 = 4 − 2/Δ' (Theorem 1.6 with Δ = 2): the only feasible
	// radius-1 PO behaviours select all edges (ratio 9/3 = 3).
	base := directedCycleK(t, 9, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := CertifyPOLowerBound(h, problems.MinEdgeDominatingSet{}, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Types != 1 {
		t.Errorf("symmetric cycle should have one view type, got %d", lb.Types)
	}
	if lb.BestRatio != 3 {
		t.Errorf("certified EDS bound %v, want exactly 3", lb.BestRatio)
	}
	if lb.Optimum != 3 {
		t.Errorf("optimum %d, want 3", lb.Optimum)
	}
}

func TestCertifyPOLowerBoundVCOnCycle(t *testing.T) {
	// Vertex cover on the symmetric directed cycle: the only feasible
	// constant outputs select all nodes, ratio n/⌈n/2⌉ -> 2 − ε.
	base := directedCycleK(t, 10, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := CertifyPOLowerBound(h, problems.MinVertexCover{}, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if lb.BestRatio != 2 {
		t.Errorf("certified VC bound %v, want 2 (= 10/5)", lb.BestRatio)
	}
}

func TestCertifyPOLowerBoundMISInfeasible(t *testing.T) {
	// Maximum independent set on the symmetric cycle: the two constant
	// behaviours are "everyone" (infeasible) and "no one" (ratio +Inf):
	// no constant-factor PO approximation exists (Section 1.4).
	base := directedCycleK(t, 9, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := CertifyPOLowerBound(h, problems.MaxIndependentSet{}, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lb.BestRatio, 1) {
		t.Errorf("certified MIS bound %v, want +Inf", lb.BestRatio)
	}
	if lb.FeasibleCount == 0 {
		t.Error("the empty set is feasible; FeasibleCount should be positive")
	}
}

func TestCertifyPOLowerBoundBudget(t *testing.T) {
	base := digraph.FromPorts(graph.Petersen(), nil).D
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifyPOLowerBound(h, problems.MinVertexCover{}, 2, 4); err == nil {
		t.Error("budget overflow not detected")
	}
}

func TestIDToOIOnCycleCatalogue(t *testing.T) {
	// The parity-abusing dominating-set algorithm is not
	// order-invariant in general, but on a Ramsey-selected identifier
	// pool its behaviour is monochromatic.
	h := model.HostFromGraph(graph.Cycle(8))
	cat := BallCatalogue(h, order.Identity(8), 1)
	if len(cat) == 0 {
		t.Fatal("empty catalogue")
	}
	w, err := IDToOI(algorithms.IDParityDS(), cat, 40, 8+3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.J) != 11 {
		t.Errorf("witness size %d", len(w.J))
	}
	// Verify monochromaticity directly: any t-subset of J induces the
	// recorded behaviour.
	for _, b := range cat {
		want := w.Behaviour[b.Encode()]
		k := b.G.N()
		// Use a different t-subset than the first: the last k of J.
		ids := append([]int(nil), w.J[len(w.J)-k:]...)
		got := algorithms.IDParityDS().EvalID(&model.IDBall{G: b.G, Root: b.Root, IDs: ids})
		if got.Member != want.Member {
			t.Errorf("behaviour differs across t-subsets of J")
		}
	}
}

func TestIDToOIInducedAlgorithmRuns(t *testing.T) {
	h := model.HostFromGraph(graph.Cycle(8))
	rank := order.Identity(8)
	cat := BallCatalogue(h, rank, 1)
	w, err := IDToOI(algorithms.IDParityDS(), cat, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	oi := w.InducedOI(1)
	// Running the induced OI algorithm with ranks = the Ramsey ids
	// must equal running the ID algorithm with OrderRespectingIDs.
	ids, err := OrderRespectingIDs(rank, w.J)
	if err != nil {
		t.Fatal(err)
	}
	solOI, err := model.RunOI(h, rank, oi, model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	solID, err := model.RunID(h, ids, algorithms.IDParityDS(), model.VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		if solOI.Vertices[v] != solID.Vertices[v] {
			t.Fatalf("node %d: OI %v vs ID %v — Proposition 4.4 violated", v, solOI.Vertices[v], solID.Vertices[v])
		}
	}
}

func TestOrderRespectingIDs(t *testing.T) {
	rank := order.Rank{2, 0, 1}
	ids, err := OrderRespectingIDs(rank, []int{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{30, 10, 20}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := OrderRespectingIDs(rank, []int{1, 2}); err == nil {
		t.Error("short pool accepted")
	}
	if _, err := OrderRespectingIDs(rank, []int{3, 2, 1}); err == nil {
		t.Error("non-increasing pool accepted")
	}
}

func TestBuildHomogeneousLiftIsCovering(t *testing.T) {
	c := mustConstruction(t, 1, 1)
	if c.Level > 2 {
		t.Skipf("level %d too large", c.Level)
	}
	base := directedCycleK(t, 5, c.K)
	lr, err := BuildHomogeneousLift(c, base, 6, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := digraph.VerifyCovering(lr.Host.D, base, lr.Phi); err != nil {
		t.Errorf("lift is not a covering: %v", err)
	}
	if err := lr.Rank.Validate(lr.Host.G.N()); err != nil {
		t.Errorf("lift order invalid: %v", err)
	}
	if lr.TauFrac <= 0 || lr.TauFrac > 1 {
		t.Errorf("TauFrac %v out of range", lr.TauFrac)
	}
	// Girth inheritance: the lift has girth > 2R+1.
	u, err := lr.Host.D.Underlying()
	if err != nil {
		t.Fatal(err)
	}
	if g := u.Girth(); g != -1 && g <= 2*c.R+1 {
		t.Errorf("lift girth %d <= 2R+1", g)
	}
	if lr.TauFrac < c.InnerFraction(6) {
		t.Errorf("lift τ-fraction %v below analytic bound %v", lr.TauFrac, c.InnerFraction(6))
	}
}

func TestBuildHomogeneousLiftAlphabetMismatch(t *testing.T) {
	c := mustConstruction(t, 2, 1)
	base := directedCycleK(t, 5, 1)
	if _, err := BuildHomogeneousLift(c, base, 6, 1<<16); err == nil {
		t.Error("alphabet mismatch accepted")
	}
}

func TestBuildHomogeneousLiftBudget(t *testing.T) {
	c := mustConstruction(t, 1, 1)
	base := directedCycleK(t, 5, c.K)
	if _, err := BuildHomogeneousLift(c, base, 6, 10); err == nil {
		t.Error("budget overflow accepted")
	}
}
