package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/model"
	"repro/internal/problems"
	"repro/internal/view"
)

// Certification checkpoints. A certification run has two phases: an
// expensive parallel view-build that interns the instance's view types
// (the catalogue), and a long sequential enumeration of type-to-output
// assignments. CertifySnapshot captures the catalogue plus the
// enumeration cursor, so a resumed certification skips the view builds
// entirely and continues from the assignment it stopped at. The
// encoding is deterministic (type ids are assigned in vertex order, no
// maps or timestamps), so checkpoints taken after a resume are
// byte-identical to the uninterrupted run's — the property the durable
// job store relies on for idempotent crash recovery.

// CertifySnapshotKind tags certification checkpoints in the ckpt
// container format.
const CertifySnapshotKind = "certify"

const certifySnapshotVersion = 1

// CertifyOpts arms CertifyPOLowerBoundOpts with cancellation, progress
// reporting, periodic checkpoints, and resume.
type CertifyOpts struct {
	// Ctx, when non-nil, aborts the enumeration cooperatively; the
	// call returns ctx.Err().
	Ctx context.Context
	// Every > 0 checkpoints each time the cursor reaches a multiple of
	// Every. The cadence is anchored to absolute assignment indices,
	// so a resumed run emits the same checkpoint stream as an
	// uninterrupted one.
	Every int
	// Progress, when non-nil, is called after each checkpoint cadence
	// boundary (and once at completion) with the number of assignments
	// examined and the total.
	Progress func(done, total int)
	// Checkpoint, when non-nil, receives each periodic snapshot. An
	// error aborts the run.
	Checkpoint func(*CertifySnapshot) error
	// Resume, when non-nil, continues an interrupted certification:
	// the view-build phase is skipped and the enumeration starts at
	// the snapshot's cursor. The snapshot must match the (host,
	// problem, radius) of the call.
	Resume *CertifySnapshot
}

// CertifySnapshot is a resumable certification state: the interned
// type catalogue plus the enumeration cursor and running aggregates.
type CertifySnapshot struct {
	// Problem names the certified problem (problems.Problem.Name).
	Problem string
	// Radius is the locality radius of the certified class.
	Radius int
	// N is the host size the catalogue was built for.
	N int
	// Optimum is the instance optimum computed before enumeration.
	Optimum int
	// TypeOf maps each vertex to its view-type id.
	TypeOf []int32
	// RootLetters holds each type's root port alphabet, in type-id
	// order.
	RootLetters [][]view.Letter
	// Next is the first assignment index not yet examined.
	Next int
	// FeasibleCount and BestRatio are the aggregates over assignments
	// [0, Next).
	FeasibleCount int
	BestRatio     float64
}

// Encode serialises the snapshot deterministically.
func (s *CertifySnapshot) Encode() []byte {
	var w ckpt.Writer
	w.Uvarint(certifySnapshotVersion)
	w.String(s.Problem)
	w.Uvarint(uint64(s.Radius))
	w.Uvarint(uint64(s.N))
	w.Varint(int64(s.Optimum))
	for _, t := range s.TypeOf {
		w.Uvarint(uint64(t))
	}
	w.Uvarint(uint64(len(s.RootLetters)))
	for _, ls := range s.RootLetters {
		w.Uvarint(uint64(len(ls)))
		for _, l := range ls {
			w.Varint(int64(l.Label))
			w.Bool(l.In)
		}
	}
	w.Uvarint(uint64(s.Next))
	w.Uvarint(uint64(s.FeasibleCount))
	w.U64(math.Float64bits(s.BestRatio))
	return w.Bytes()
}

// DecodeCertifySnapshot parses an Encode payload, validating structure
// and ranges.
func DecodeCertifySnapshot(payload []byte) (*CertifySnapshot, error) {
	r := ckpt.NewReader(payload)
	if v := r.Uvarint(); r.Err() == nil && v != certifySnapshotVersion {
		return nil, fmt.Errorf("core: certify snapshot version %d (want %d)", v, certifySnapshotVersion)
	}
	s := &CertifySnapshot{
		Problem: r.String(),
		Radius:  int(r.Uvarint()),
		N:       int(r.Uvarint()),
		Optimum: int(r.Varint()),
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	const maxN = 1 << 28
	if s.N <= 0 || s.N > maxN || s.Radius < 0 || s.Radius > maxN {
		return nil, fmt.Errorf("core: certify snapshot geometry out of range (n=%d r=%d)", s.N, s.Radius)
	}
	s.TypeOf = make([]int32, s.N)
	for i := range s.TypeOf {
		s.TypeOf[i] = int32(r.Uvarint())
	}
	types := int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if types <= 0 || types > s.N {
		return nil, fmt.Errorf("core: certify snapshot has %d types for %d nodes", types, s.N)
	}
	for _, t := range s.TypeOf {
		if t < 0 || int(t) >= types {
			return nil, fmt.Errorf("core: certify snapshot type id %d out of range [0,%d)", t, types)
		}
	}
	s.RootLetters = make([][]view.Letter, types)
	for i := range s.RootLetters {
		k := int(r.Uvarint())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if k < 0 || k > 64 {
			return nil, fmt.Errorf("core: certify snapshot type %d has %d root letters", i, k)
		}
		ls := make([]view.Letter, k)
		for j := range ls {
			ls[j] = view.Letter{Label: int(r.Varint()), In: r.Bool()}
		}
		s.RootLetters[i] = ls
	}
	s.Next = int(r.Uvarint())
	s.FeasibleCount = int(r.Uvarint())
	s.BestRatio = math.Float64frombits(r.U64())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("core: certify snapshot has %d trailing bytes", r.Len())
	}
	if s.FeasibleCount < 0 || s.Next < 0 {
		return nil, fmt.Errorf("core: certify snapshot cursor out of range")
	}
	return s, nil
}

// snapshot captures the enumeration state with cursor next.
func (cat *certifyCatalogue) snapshot(p problems.Problem, r, next int, lb *LowerBound) *CertifySnapshot {
	return &CertifySnapshot{
		Problem:       p.Name(),
		Radius:        r,
		N:             len(cat.typeOf),
		Optimum:       cat.optimum,
		TypeOf:        cat.typeOf,
		RootLetters:   cat.rootLetters,
		Next:          next,
		FeasibleCount: lb.FeasibleCount,
		BestRatio:     lb.BestRatio,
	}
}

// catalogueFromSnapshot validates a resume snapshot against the call
// and reconstructs the catalogue without rebuilding views. The choice
// structure is recomputed from the stored root letters, re-enforcing
// the budget (so a snapshot cannot smuggle a larger space past a
// smaller cap).
func catalogueFromSnapshot(s *CertifySnapshot, h *model.Host, p problems.Problem, r, maxAlgorithms int) (*certifyCatalogue, error) {
	if s.Problem != p.Name() {
		return nil, fmt.Errorf("core: resume snapshot is for problem %q, not %q", s.Problem, p.Name())
	}
	if s.Radius != r {
		return nil, fmt.Errorf("core: resume snapshot has radius %d, not %d", s.Radius, r)
	}
	if s.N != h.G.N() {
		return nil, fmt.Errorf("core: resume snapshot has %d nodes, host has %d", s.N, h.G.N())
	}
	cat := &certifyCatalogue{typeOf: s.TypeOf, rootLetters: s.RootLetters, optimum: s.Optimum}
	if err := cat.sizeChoices(p, maxAlgorithms); err != nil {
		return nil, err
	}
	if s.Next > cat.total {
		return nil, fmt.Errorf("core: resume cursor %d exceeds space %d", s.Next, cat.total)
	}
	return cat, nil
}

// CertifyPOLowerBoundOpts is CertifyPOLowerBound with cancellation,
// progress, periodic checkpointing and resume. With zero opts it is
// exactly CertifyPOLowerBound.
func CertifyPOLowerBoundOpts(h *model.Host, p problems.Problem, r, maxAlgorithms int, opts CertifyOpts) (*LowerBound, error) {
	var cat *certifyCatalogue
	var err error
	start := 0
	lb := &LowerBound{Radius: r}
	if opts.Resume != nil {
		cat, err = catalogueFromSnapshot(opts.Resume, h, p, r, maxAlgorithms)
		if err != nil {
			return nil, err
		}
		start = opts.Resume.Next
		lb.FeasibleCount = opts.Resume.FeasibleCount
		lb.BestRatio = opts.Resume.BestRatio
	} else {
		cat, err = buildCatalogue(h, p, r, maxAlgorithms)
		if err != nil {
			return nil, err
		}
		lb.BestRatio = math.Inf(1)
	}
	lb.Types = len(cat.rootLetters)
	lb.Algorithms = cat.total
	lb.Optimum = cat.optimum

	// ctx polling cadence: cheap relative to an assignment evaluation,
	// tight enough that cancellation lands promptly.
	const pollEvery = 256
	assign := make([]int, lb.Types)
	for a := start; a < cat.total; a++ {
		if opts.Ctx != nil && a%pollEvery == 0 {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Checkpoint cadence is anchored to absolute indices and the
		// snapshot captures the state *before* assignment a runs, so
		// the stream a resumed run emits matches the control run's.
		if opts.Every > 0 && a > 0 && a%opts.Every == 0 {
			if opts.Checkpoint != nil {
				if err := opts.Checkpoint(cat.snapshot(p, r, a, lb)); err != nil {
					return nil, fmt.Errorf("core: certify checkpoint: %w", err)
				}
			}
			if opts.Progress != nil {
				opts.Progress(a, cat.total)
			}
		}
		cat.evalAssignment(h, p, a, assign, lb)
	}
	if opts.Progress != nil {
		opts.Progress(cat.total, cat.total)
	}
	return lb, nil
}
