package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/view"
)

// LowerBound is a machine-checked PO-model lower bound on one
// instance: since a radius-r PO algorithm's output at a node is a
// function of the node's view type alone, enumerating every assignment
// of outputs to the view types occurring on the instance covers the
// entire space of radius-r PO algorithms restricted to it. BestRatio
// is therefore a certified bound: no PO algorithm of radius r achieves
// a better approximation ratio on this instance.
type LowerBound struct {
	// Radius is the locality radius of the certified class.
	Radius int
	// Types is the number of distinct view types on the instance.
	Types int
	// Algorithms is the number of type-to-output assignments examined.
	Algorithms int
	// FeasibleCount is how many assignments produced feasible solutions.
	FeasibleCount int
	// BestRatio is the best (smallest) approximation ratio achievable
	// by a radius-r PO algorithm on the instance; +Inf if none is
	// feasible.
	BestRatio float64
	// Optimum is the instance's exact optimum.
	Optimum int
}

// CertifyPOLowerBound enumerates all radius-r PO algorithms restricted
// to the host and returns the certified bound. maxAlgorithms caps the
// enumeration (error when the space is larger). Vertex problems have
// 2^Types assignments; edge problems have ∏ 2^(root letters) over the
// types.
func CertifyPOLowerBound(h *model.Host, p problems.Problem, r, maxAlgorithms int) (*LowerBound, error) {
	n := h.G.N()
	opt, err := p.Optimum(h.G)
	if err != nil {
		return nil, err
	}
	// Classify nodes by view type. Views are hash-consed, so the type
	// map is keyed by interned *Tree — pointer identity, no Encode()
	// strings. The per-node view builds are data-parallel with
	// worker-local build scratch; type ids are assigned in vertex
	// order, so the numbering is deterministic.
	trees := make([]*view.Tree, n)
	par.ForScratch(n,
		view.NewBuildScratch,
		func(v int, s *view.BuildScratch) {
			trees[v] = view.BuildWith[int](s, h.D, v, r)
		})
	typeOf := make([]int, n)
	index := map[*view.Tree]int{}
	var rootLetters [][]view.Letter
	for v := 0; v < n; v++ {
		t := trees[v]
		id, ok := index[t]
		if !ok {
			id = len(index)
			index[t] = id
			rootLetters = append(rootLetters, t.Letters())
		}
		typeOf[v] = id
	}
	types := len(index)

	// Choices per type.
	choices := make([]int, types)
	total := 1
	for i := 0; i < types; i++ {
		if p.Kind() == model.VertexKind {
			choices[i] = 2
		} else {
			choices[i] = 1 << len(rootLetters[i])
		}
		if total > maxAlgorithms/choices[i] {
			return nil, fmt.Errorf("core: algorithm space exceeds budget %d", maxAlgorithms)
		}
		total *= choices[i]
	}

	lb := &LowerBound{Radius: r, Types: types, Algorithms: total, Optimum: opt, BestRatio: math.Inf(1)}
	assign := make([]int, types)
	for a := 0; a < total; a++ {
		x := a
		for i := 0; i < types; i++ {
			assign[i] = x % choices[i]
			x /= choices[i]
		}
		sol := model.NewSolution(p.Kind(), n)
		bad := false
		for v := 0; v < n && !bad; v++ {
			c := assign[typeOf[v]]
			if p.Kind() == model.VertexKind {
				sol.Vertices[v] = c == 1
				continue
			}
			for bi, l := range rootLetters[typeOf[v]] {
				if c&(1<<bi) == 0 {
					continue
				}
				var to int
				var ok bool
				if l.In {
					if arc, found := h.D.InArc(v, l.Label); found {
						to, ok = arc.To, true
					}
				} else {
					if arc, found := h.D.OutArc(v, l.Label); found {
						to, ok = arc.To, true
					}
				}
				if !ok {
					bad = true
					break
				}
				sol.Edges[graph.NewEdge(v, to)] = true
			}
		}
		if bad {
			continue
		}
		if p.Feasible(h.G, sol) != nil {
			continue
		}
		lb.FeasibleCount++
		ratio, err := problems.Ratio(p, h.G, sol)
		if err != nil {
			continue
		}
		if ratio < lb.BestRatio {
			lb.BestRatio = ratio
		}
	}
	return lb, nil
}
