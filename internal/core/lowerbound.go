package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/problems"
	"repro/internal/view"
)

// LowerBound is a machine-checked PO-model lower bound on one
// instance: since a radius-r PO algorithm's output at a node is a
// function of the node's view type alone, enumerating every assignment
// of outputs to the view types occurring on the instance covers the
// entire space of radius-r PO algorithms restricted to it. BestRatio
// is therefore a certified bound: no PO algorithm of radius r achieves
// a better approximation ratio on this instance.
type LowerBound struct {
	// Radius is the locality radius of the certified class.
	Radius int
	// Types is the number of distinct view types on the instance.
	Types int
	// Algorithms is the number of type-to-output assignments examined.
	Algorithms int
	// FeasibleCount is how many assignments produced feasible solutions.
	FeasibleCount int
	// BestRatio is the best (smallest) approximation ratio achievable
	// by a radius-r PO algorithm on the instance; +Inf if none is
	// feasible.
	BestRatio float64
	// Optimum is the instance's exact optimum.
	Optimum int
}

// CertifyPOLowerBound enumerates all radius-r PO algorithms restricted
// to the host and returns the certified bound. maxAlgorithms caps the
// enumeration (error when the space is larger). Vertex problems have
// 2^Types assignments; edge problems have ∏ 2^(root letters) over the
// types. For progress hooks, checkpointing and resume see
// CertifyPOLowerBoundOpts (certify_ckpt.go).
func CertifyPOLowerBound(h *model.Host, p problems.Problem, r, maxAlgorithms int) (*LowerBound, error) {
	return CertifyPOLowerBoundOpts(h, p, r, maxAlgorithms, CertifyOpts{})
}

// certifyCatalogue is the enumeration's precomputed context: the
// interned type classification of the instance (the expensive part —
// one view build per node) plus the mixed-radix choice structure of
// the algorithm space. It is exactly what CertifySnapshot serialises,
// so a resumed certification skips the view builds entirely.
type certifyCatalogue struct {
	typeOf      []int32
	rootLetters [][]view.Letter
	choices     []int
	total       int
	optimum     int
}

// buildCatalogue classifies nodes by view type and sizes the
// enumeration. Views are hash-consed, so the type map is keyed by
// interned *Tree — pointer identity, no Encode() strings. The
// per-node view builds are data-parallel with worker-local build
// scratch; type ids are assigned in vertex order, so the numbering
// (and hence every checkpoint byte) is deterministic.
func buildCatalogue(h *model.Host, p problems.Problem, r, maxAlgorithms int) (*certifyCatalogue, error) {
	n := h.G.N()
	opt, err := p.Optimum(h.G)
	if err != nil {
		return nil, err
	}
	trees := make([]*view.Tree, n)
	par.ForScratch(n,
		view.NewBuildScratch,
		func(v int, s *view.BuildScratch) {
			trees[v] = view.BuildWith[int](s, h.D, v, r)
		})
	cat := &certifyCatalogue{typeOf: make([]int32, n), optimum: opt}
	index := map[*view.Tree]int{}
	for v := 0; v < n; v++ {
		t := trees[v]
		id, ok := index[t]
		if !ok {
			id = len(index)
			index[t] = id
			cat.rootLetters = append(cat.rootLetters, t.Letters())
		}
		cat.typeOf[v] = int32(id)
	}
	if err := cat.sizeChoices(p, maxAlgorithms); err != nil {
		return nil, err
	}
	return cat, nil
}

// sizeChoices fills the per-type choice counts and the total space
// size, enforcing the enumeration budget.
func (cat *certifyCatalogue) sizeChoices(p problems.Problem, maxAlgorithms int) error {
	types := len(cat.rootLetters)
	cat.choices = make([]int, types)
	cat.total = 1
	for i := 0; i < types; i++ {
		if p.Kind() == model.VertexKind {
			cat.choices[i] = 2
		} else {
			cat.choices[i] = 1 << len(cat.rootLetters[i])
		}
		if cat.total > maxAlgorithms/cat.choices[i] {
			return fmt.Errorf("core: algorithm space exceeds budget %d", maxAlgorithms)
		}
		cat.total *= cat.choices[i]
	}
	return nil
}

// evalAssignment materialises assignment a as a solution and folds it
// into the running bound.
func (cat *certifyCatalogue) evalAssignment(h *model.Host, p problems.Problem, a int, assign []int, lb *LowerBound) {
	n := h.G.N()
	x := a
	for i := range assign {
		assign[i] = x % cat.choices[i]
		x /= cat.choices[i]
	}
	sol := model.NewSolution(p.Kind(), n)
	bad := false
	for v := 0; v < n && !bad; v++ {
		c := assign[cat.typeOf[v]]
		if p.Kind() == model.VertexKind {
			sol.Vertices[v] = c == 1
			continue
		}
		for bi, l := range cat.rootLetters[cat.typeOf[v]] {
			if c&(1<<bi) == 0 {
				continue
			}
			var to int
			var ok bool
			if l.In {
				if arc, found := h.D.InArc(v, l.Label); found {
					to, ok = arc.To, true
				}
			} else {
				if arc, found := h.D.OutArc(v, l.Label); found {
					to, ok = arc.To, true
				}
			}
			if !ok {
				bad = true
				break
			}
			sol.Edges[graph.NewEdge(v, to)] = true
		}
	}
	if bad {
		return
	}
	if p.Feasible(h.G, sol) != nil {
		return
	}
	lb.FeasibleCount++
	ratio, err := problems.Ratio(p, h.G, sol)
	if err != nil {
		return
	}
	if ratio < lb.BestRatio {
		lb.BestRatio = ratio
	}
}
