package core

import (
	"fmt"
	"sort"

	"repro/internal/homog"
	"repro/internal/model"
	"repro/internal/order"
)

// ComponentReport realises the averaging argument that closes the
// proofs of Theorem 3.3 and the connected main theorem (Theorem 1.4):
// if the whole lift has a 1−ε fraction of τ*-typed vertices, some
// connected component does too.
type ComponentReport struct {
	// Components is the number of connected components of the lift.
	Components int
	// Sizes are the component sizes in discovery order.
	Sizes []int
	// BestTauFrac is the τ*-typed fraction of the best component.
	BestTauFrac float64
	// OverallTauFrac is the whole lift's fraction (for comparison).
	OverallTauFrac float64
	// Host is the best component as a runnable host.
	Host *model.Host
	// Rank is the transferred order restricted to the component.
	Rank order.Rank
}

// BestComponent extracts the connected component of the lift with the
// highest τ*-typed vertex fraction. By averaging it is at least the
// overall fraction, so the connected version of the construction loses
// nothing.
func (lr *LiftResult) BestComponent(c *homog.Construction) (*ComponentReport, error) {
	hcay, err := c.HCayley(lr.M)
	if err != nil {
		return nil, err
	}
	// Distinct fibre coordinates, in first-appearance order.
	var coords []string
	seen := make(map[string]bool)
	for _, pr := range lr.Pairs {
		if !seen[pr.H] {
			seen[pr.H] = true
			coords = append(coords, pr.H)
		}
	}
	flags, err := c.ClassifyTau(hcay, coords)
	if err != nil {
		return nil, err
	}
	isTau := make(map[string]bool, len(coords))
	for i, h := range coords {
		isTau[h] = flags[i]
	}

	comps := lr.Host.G.Components()
	rep := &ComponentReport{Components: len(comps), OverallTauFrac: lr.TauFrac, BestTauFrac: -1}
	var best []int
	for _, comp := range comps {
		rep.Sizes = append(rep.Sizes, len(comp))
		tau := 0
		for _, v := range comp {
			if isTau[lr.Pairs[v].H] {
				tau++
			}
		}
		frac := float64(tau) / float64(len(comp))
		if frac > rep.BestTauFrac {
			rep.BestTauFrac = frac
			best = comp
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: lift has no components")
	}
	// Materialise the best component with its restricted order.
	sub, old := lr.Host.D.Induced(best)
	host, err := model.NewHost(sub)
	if err != nil {
		return nil, err
	}
	// Restrict the rank: order component vertices by their lift ranks.
	perm := make([]int, len(old))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return lr.Rank[old[perm[a]]] < lr.Rank[old[perm[b]]] })
	rank := make(order.Rank, len(old))
	for pos, i := range perm {
		rank[i] = pos
	}
	rep.Host = host
	rep.Rank = rank
	return rep, nil
}
