package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/digraph"
	"repro/internal/model"
	"repro/internal/problems"
)

// directedPath returns the n-path 0→1→…→n−1: its radius-r views are
// asymmetric (distance-to-end matters), so the type catalogue is
// nontrivial and the enumeration long enough to checkpoint.
func directedPath(t *testing.T, n int) *model.Host {
	t.Helper()
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n-1; i++ {
		b.MustAddArc(i, i+1, 0)
	}
	d, err := b.Build().WithAlphabet(1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := model.NewHost(d)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// collectCertify runs a checkpointed certification and returns the
// bound plus the encoded checkpoint stream keyed by cursor.
func collectCertify(t *testing.T, h *model.Host, p problems.Problem, r, every int, resume *CertifySnapshot) (*LowerBound, map[int][]byte) {
	t.Helper()
	stream := map[int][]byte{}
	lb, err := CertifyPOLowerBoundOpts(h, p, r, 1<<20, CertifyOpts{
		Every:  every,
		Resume: resume,
		Checkpoint: func(s *CertifySnapshot) error {
			stream[s.Next] = s.Encode()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lb, stream
}

func TestCertifyOptsMatchesPlain(t *testing.T) {
	h := directedPath(t, 16)
	p := problems.MinVertexCover{}
	plain, err := CertifyPOLowerBound(h, p, 2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Algorithms < 32 || plain.Types < 5 {
		t.Fatalf("path instance too small to exercise checkpoints: %+v", plain)
	}
	var calls, lastDone int
	lb, err := CertifyPOLowerBoundOpts(h, p, 2, 1<<20, CertifyOpts{
		Every:    5,
		Progress: func(done, total int) { calls++; lastDone = done },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, lb) {
		t.Fatalf("opts run differs from plain:\n  %+v\n  %+v", plain, lb)
	}
	if calls == 0 || lastDone != plain.Algorithms {
		t.Fatalf("progress calls=%d lastDone=%d (want final done=%d)", calls, lastDone, plain.Algorithms)
	}
}

// TestCertifyResumeEquality: resume from every checkpoint reproduces
// the uninterrupted bound, and the checkpoints a resumed run emits are
// byte-identical to the control run's from the resume point on.
func TestCertifyResumeEquality(t *testing.T) {
	h := directedPath(t, 16)
	p := problems.MinVertexCover{}
	const every = 5
	control, stream := collectCertify(t, h, p, 2, every, nil)
	if len(stream) == 0 {
		t.Fatal("control run produced no checkpoints")
	}
	for next, payload := range stream {
		snap, err := DecodeCertifySnapshot(payload)
		if err != nil {
			t.Fatalf("decode checkpoint at %d: %v", next, err)
		}
		resumed, rstream := collectCertify(t, h, p, 2, every, snap)
		if !reflect.DeepEqual(control, resumed) {
			t.Fatalf("resume from %d differs:\n  control %+v\n  resumed %+v", next, control, resumed)
		}
		for rn, rp := range rstream {
			if rn < next {
				t.Fatalf("resume from %d emitted earlier checkpoint %d", next, rn)
			}
			if !bytes.Equal(rp, stream[rn]) {
				t.Fatalf("resume from %d: checkpoint %d not byte-identical to control", next, rn)
			}
		}
	}
}

func TestCertifySnapshotRoundTrip(t *testing.T) {
	h := directedPath(t, 12)
	p := problems.MinVertexCover{}
	_, stream := collectCertify(t, h, p, 2, 7, nil)
	for next, payload := range stream {
		snap, err := DecodeCertifySnapshot(payload)
		if err != nil {
			t.Fatalf("decode at %d: %v", next, err)
		}
		if !bytes.Equal(snap.Encode(), payload) {
			t.Fatalf("re-encode at %d not byte-identical", next)
		}
		if snap.Next != next || snap.Problem != p.Name() || snap.Radius != 2 || snap.N != 12 {
			t.Fatalf("decoded header wrong: %+v", snap)
		}
	}
}

func TestCertifyCancel(t *testing.T) {
	h := directedPath(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CertifyPOLowerBoundOpts(h, problems.MinVertexCover{}, 2, 1<<20, CertifyOpts{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("cancelled certify returned %v", err)
	}
}

func TestCertifyResumeMismatch(t *testing.T) {
	h := directedPath(t, 16)
	p := problems.MinVertexCover{}
	_, stream := collectCertify(t, h, p, 2, 5, nil)
	var snap *CertifySnapshot
	for _, payload := range stream {
		s, err := DecodeCertifySnapshot(payload)
		if err != nil {
			t.Fatal(err)
		}
		snap = s
		break
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"wrong problem", func() error {
			_, err := CertifyPOLowerBoundOpts(h, problems.MinDominatingSet{}, 2, 1<<20, CertifyOpts{Resume: snap})
			return err
		}},
		{"wrong radius", func() error {
			_, err := CertifyPOLowerBoundOpts(h, p, 1, 1<<20, CertifyOpts{Resume: snap})
			return err
		}},
		{"wrong host size", func() error {
			_, err := CertifyPOLowerBoundOpts(directedPath(t, 10), p, 2, 1<<20, CertifyOpts{Resume: snap})
			return err
		}},
		{"budget re-enforced", func() error {
			_, err := CertifyPOLowerBoundOpts(h, p, 2, 4, CertifyOpts{Resume: snap})
			return err
		}},
	}
	for _, tc := range cases {
		if tc.run() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestCertifyDecodeCorrupt(t *testing.T) {
	h := directedPath(t, 12)
	_, stream := collectCertify(t, h, problems.MinVertexCover{}, 2, 7, nil)
	var payload []byte
	for _, p := range stream {
		payload = p
		break
	}
	if _, err := DecodeCertifySnapshot(payload[:len(payload)-3]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := DecodeCertifySnapshot(append(append([]byte{}, payload...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeCertifySnapshot([]byte{99}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := DecodeCertifySnapshot(nil); err == nil {
		t.Error("empty snapshot accepted")
	}
	// Cursor past the end of the space must be rejected at resume.
	snap, err := DecodeCertifySnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	snap.Next = 1 << 30
	if _, err := CertifyPOLowerBoundOpts(h, problems.MinVertexCover{}, 2, 1<<20, CertifyOpts{Resume: snap}); err == nil {
		t.Error("out-of-range resume cursor accepted")
	}
}
