package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/ramsey"
)

// RamseyWitness is the outcome of the Section 4.2 argument run
// constructively: a pool J of identifiers such that the ID algorithm's
// behaviour on every catalogued ball type depends only on the relative
// order of the identifiers drawn from J — i.e. the algorithm is
// order-invariant on J.
type RamseyWitness struct {
	// J is the monochromatic identifier pool (increasing).
	J []int
	// T is the subset size coloured (the largest catalogued ball).
	T int
	// Behaviour maps a canonical ball encoding to the induced output.
	Behaviour map[string]model.Output
}

// InducedOI returns the order-invariant algorithm the witness induces:
// on a catalogued ball it plays the monochromatic behaviour; on an
// uncatalogued ball it returns the zero output (and records the miss).
func (w *RamseyWitness) InducedOI(radius int) model.OI {
	return model.FuncOI{R: radius, Fn: func(b *order.Ball) model.Output {
		return w.Behaviour[b.Encode()]
	}}
}

// IDToOI runs the Ramsey argument of Section 4.2 for an ID algorithm
// over a catalogue of ordered ball types (the τ(G, <, v) arising in
// the family of interest). Identifier t-subsets S ⊆ {0..universe−1}
// are coloured by the algorithm's joint behaviour when the k smallest
// elements of S are used as the identifiers of each k-vertex ball (the
// paper's order-preserving injection f_{W,S}); a monochromatic
// m-subset J certifies order-invariance of the algorithm restricted to
// identifiers from J.
func IDToOI(a model.ID, catalogue []*order.Ball, universe, m int) (*RamseyWitness, error) {
	if len(catalogue) == 0 {
		return nil, fmt.Errorf("core: empty ball catalogue")
	}
	t := 0
	for _, b := range catalogue {
		if b.G.N() > t {
			t = b.G.N()
		}
	}
	if m < t {
		return nil, fmt.Errorf("core: m=%d smaller than ball size t=%d", m, t)
	}
	behave := func(s []int) []model.Output {
		outs := make([]model.Output, len(catalogue))
		for i, b := range catalogue {
			ids := make([]int, b.G.N())
			copy(ids, s[:b.G.N()])
			outs[i] = a.EvalID(&model.IDBall{G: b.G, Root: b.Root, IDs: ids})
		}
		return outs
	}
	color := func(s []int) string {
		var sb strings.Builder
		for _, o := range behave(s) {
			encodeOutput(&sb, o)
		}
		return sb.String()
	}
	j, _, ok := ramsey.FindMonochromatic(universe, t, m, color)
	if !ok {
		return nil, fmt.Errorf("core: no monochromatic %d-subset in universe %d (enlarge the universe)", m, universe)
	}
	outs := behave(j[:t])
	w := &RamseyWitness{J: j, T: t, Behaviour: make(map[string]model.Output, len(catalogue))}
	for i, b := range catalogue {
		w.Behaviour[b.Encode()] = outs[i]
	}
	return w, nil
}

// encodeOutput renders an output canonically for colouring.
func encodeOutput(sb *strings.Builder, o model.Output) {
	if o.Member {
		sb.WriteByte('1')
	} else {
		sb.WriteByte('0')
	}
	ns := append([]int(nil), o.Neighbors...)
	sort.Ints(ns)
	for _, x := range ns {
		fmt.Fprintf(sb, ",%d", x)
	}
	sb.WriteByte(';')
}

// BallCatalogue collects the distinct canonical ordered ball types of
// radius r occurring on the ordered host — the W-space of the Ramsey
// colouring. Deduplication is by interned pointer; the encodings are
// rendered once per distinct type, only to fix the catalogue order.
func BallCatalogue(h *model.Host, rank order.Rank, r int) []*order.Ball {
	sw, in := order.NewSweeper(), order.NewInterner()
	seen := map[*order.Ball]bool{}
	var out []*order.Ball
	for v := 0; v < h.G.N(); v++ {
		b := sw.CanonicalBall(h.G, rank, v, r, in)
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Encode() < out[j].Encode() })
	return out
}

// OrderRespectingIDs assigns identifiers that realise a given rank:
// the vertex of rank i receives the i-th element of pool (pool must be
// increasing and at least as long as the rank). With pool drawn from a
// Ramsey witness J, an ID algorithm behaves order-invariantly on the
// resulting instance (Proposition 4.4).
func OrderRespectingIDs(rank order.Rank, pool []int) ([]int, error) {
	if len(pool) < len(rank) {
		return nil, fmt.Errorf("core: pool of %d ids for %d nodes", len(pool), len(rank))
	}
	for i := 1; i < len(pool); i++ {
		if pool[i-1] >= pool[i] {
			return nil, fmt.Errorf("core: pool not increasing at %d", i)
		}
	}
	ids := make([]int, len(rank))
	for v, p := range rank {
		ids[v] = pool[p]
	}
	return ids, nil
}
