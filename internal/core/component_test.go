package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

func TestBestComponentAveraging(t *testing.T) {
	// The averaging argument of Theorem 3.3: the best connected
	// component's τ* fraction is at least the whole lift's.
	c := mustConstruction(t, 1, 1)
	if c.Level > 2 {
		t.Skipf("level %d too large", c.Level)
	}
	base := directedCycleK(t, 9, c.K)
	lr, err := BuildHomogeneousLift(c, base, 6, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lr.BestComponent(c)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Components < 1 {
		t.Fatal("no components")
	}
	if rep.BestTauFrac < rep.OverallTauFrac-1e-12 {
		t.Errorf("best component fraction %v below overall %v — averaging violated",
			rep.BestTauFrac, rep.OverallTauFrac)
	}
	total := 0
	for _, s := range rep.Sizes {
		total += s
	}
	if total != lr.Host.G.N() {
		t.Errorf("component sizes sum to %d, want %d", total, lr.Host.G.N())
	}
	if !rep.Host.G.Connected() {
		t.Error("best component host is not connected")
	}
	if err := rep.Rank.Validate(rep.Host.G.N()); err != nil {
		t.Errorf("restricted rank invalid: %v", err)
	}
}

func TestBestComponentStillRunnable(t *testing.T) {
	// The component host with its restricted order supports OI runs,
	// and the solution remains feasible — the connected main theorem's
	// instances are fully usable.
	c := mustConstruction(t, 1, 1)
	if c.Level > 2 {
		t.Skipf("level %d too large", c.Level)
	}
	base := directedCycleK(t, 6, c.K)
	lr, err := BuildHomogeneousLift(c, base, 4, 1<<17)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := lr.BestComponent(c)
	if err != nil {
		t.Fatal(err)
	}
	// Run an OI vertex-cover algorithm on the component.
	alg := localMinVC()
	sol, err := runOIVC(rep, alg)
	if err != nil {
		t.Fatal(err)
	}
	if err := (problems.MinVertexCover{}).Feasible(rep.Host.G, sol); err != nil {
		t.Errorf("component VC infeasible: %v", err)
	}
}

// localMinVC is the "join unless locally minimal" OI vertex cover.
func localMinVC() model.OI {
	return model.FuncOI{R: 1, Fn: func(b *order.Ball) model.Output {
		return model.Output{Member: b.Root != 0}
	}}
}

func runOIVC(rep *ComponentReport, alg model.OI) (*model.Solution, error) {
	return model.RunOI(rep.Host, rep.Rank, alg, model.VertexKind)
}
