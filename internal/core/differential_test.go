package core

import (
	"math/rand"
	"testing"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/problems"
)

// TestLowerBoundEnginesParallelInvariant runs both certified
// lower-bound engines at parallelism 1 and 8 on small hosts (a cycle
// and the Petersen graph) and requires identical certificates — the
// type classification is the only parallel stage, and its id
// assignment is in vertex order.
func TestLowerBoundEnginesParallelInvariant(t *testing.T) {
	hosts := map[string]*model.Host{}
	b := digraph.NewBuilder(9, 1)
	for i := 0; i < 9; i++ {
		b.MustAddArc(i, (i+1)%9, 0)
	}
	h, err := model.NewHost(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	hosts["cycle9"] = h
	hosts["petersen"] = model.HostFromGraph(graph.Petersen())
	_ = rand.Int // keep math/rand linked for future hosts

	for name, h := range hosts {
		// Vertex problems keep the enumeration at 2^types; the cycle's
		// edge problems are covered by the package's main tests.
		rank := order.Identity(h.G.N())
		old := par.Set(1)
		seqPO, errPO := CertifyPOLowerBound(h, problems.MinDominatingSet{}, 1, 1<<20)
		seqOI, errOI := CertifyOILowerBound(h, rank, problems.MinVertexCover{}, 1, 1<<20)
		par.Set(8)
		parPO, errPO2 := CertifyPOLowerBound(h, problems.MinDominatingSet{}, 1, 1<<20)
		parOI, errOI2 := CertifyOILowerBound(h, rank, problems.MinVertexCover{}, 1, 1<<20)
		par.Set(old)
		if errPO != nil || errPO2 != nil || errOI != nil || errOI2 != nil {
			t.Fatalf("%s: errors %v %v %v %v", name, errPO, errPO2, errOI, errOI2)
		}
		if *seqPO != *parPO {
			t.Fatalf("%s: PO certificate diverged: seq %+v par %+v", name, seqPO, parPO)
		}
		if *seqOI != *parOI {
			t.Fatalf("%s: OI certificate diverged: seq %+v par %+v", name, seqOI, parOI)
		}
	}
}
