package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

func TestCertifyOILowerBoundEDSOnOrderedCycle(t *testing.T) {
	// On the identity-ordered cycle, an OI algorithm sees 2r+1 ordered
	// ball types (interior + 2r seam types). The certified OI bound for
	// EDS is below the PO bound 3: the seam lets OI algorithms skip
	// edges near it — but only O(r) of them, so the bound approaches 3
	// as n grows. This is the quantitative content of "one seam does
	// not help" (Section 1.8).
	var prev float64
	for i, n := range []int{9, 15, 21} {
		base := directedCycleK(t, n, 1)
		h, err := model.NewHost(base)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := CertifyOILowerBound(h, order.Identity(n), problems.MinEdgeDominatingSet{}, 1, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if lb.Types != 3 {
			t.Errorf("n=%d: expected 3 ordered ball types (interior + 2 seam), got %d", n, lb.Types)
		}
		if lb.BestRatio > 3 {
			t.Errorf("n=%d: OI bound %v exceeds the PO bound 3", n, lb.BestRatio)
		}
		if lb.BestRatio < 2 {
			t.Errorf("n=%d: OI bound %v suspiciously low", n, lb.BestRatio)
		}
		if i > 0 && lb.BestRatio < prev-1e-9 {
			t.Errorf("n=%d: OI bound %v not approaching 3 (prev %v)", n, lb.BestRatio, prev)
		}
		prev = lb.BestRatio
	}
}

func TestCertifyOILowerBoundVCOnOrderedCycle(t *testing.T) {
	base := directedCycleK(t, 10, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := CertifyOILowerBound(h, order.Identity(10), problems.MinVertexCover{}, 1, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// The OI algorithm "everyone except local minima" yields n-1 here;
	// the true optimum on the ordered cycle: the certified bound must
	// lie in [1, 2].
	if lb.BestRatio < 1 || lb.BestRatio > 2 {
		t.Errorf("OI VC bound %v outside [1, 2]", lb.BestRatio)
	}
	if lb.FeasibleCount == 0 {
		t.Error("no feasible OI algorithm found")
	}
}

func TestCertifyOIBoundAtMostPOBound(t *testing.T) {
	// Every PO algorithm on a host induces outputs constant on view
	// types; OI algorithms are at least as expressive on ordered
	// instances whose order refines the view structure, so the
	// certified OI bound can only be lower or equal.
	for _, n := range []int{9, 12} {
		base := directedCycleK(t, n, 1)
		h, err := model.NewHost(base)
		if err != nil {
			t.Fatal(err)
		}
		p := problems.MinEdgeDominatingSet{}
		po, err := CertifyPOLowerBound(h, p, 1, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		oi, err := CertifyOILowerBound(h, order.Identity(n), p, 1, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if oi.BestRatio > po.BestRatio+1e-9 {
			t.Errorf("n=%d: OI bound %v exceeds PO bound %v", n, oi.BestRatio, po.BestRatio)
		}
	}
}

func TestCertifyOILowerBoundMISUnbounded(t *testing.T) {
	// Even with the seam, a constant-radius OI algorithm cannot
	// approximate maximum independent set on cycles to any constant
	// factor: the only feasible solutions it can produce on the
	// interior are empty there, and the optimum grows with n.
	base := directedCycleK(t, 15, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := CertifyOILowerBound(h, order.Identity(15), problems.MaxIndependentSet{}, 1, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// Best OI solution selects O(r) nodes near the seam: ratio >= opt/3.
	if !math.IsInf(lb.BestRatio, 1) && lb.BestRatio < float64(lb.Optimum)/3 {
		t.Errorf("OI MIS bound %v below opt/3 = %v", lb.BestRatio, float64(lb.Optimum)/3)
	}
}

func TestCertifyOILowerBoundValidation(t *testing.T) {
	base := directedCycleK(t, 6, 1)
	h, err := model.NewHost(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CertifyOILowerBound(h, order.Rank{0, 1}, problems.MinVertexCover{}, 1, 1<<20); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := CertifyOILowerBound(h, order.Identity(6), problems.MinEdgeDominatingSet{}, 2, 2); err == nil {
		t.Error("budget overflow accepted")
	}
}
