package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/problems"
)

// OILowerBound is the OI-model analogue of LowerBound: a radius-r OI
// algorithm's output at a node is a function of the node's canonical
// ordered ball type, so enumerating all type-to-output assignments on
// an ordered instance covers the whole space of radius-r OI algorithms
// restricted to it.
type OILowerBound struct {
	// Radius is the locality radius of the certified class.
	Radius int
	// Types is the number of distinct ordered ball types.
	Types int
	// Algorithms is the number of assignments examined.
	Algorithms int
	// FeasibleCount is how many assignments produced feasible solutions.
	FeasibleCount int
	// BestRatio is the best ratio achievable by a radius-r OI algorithm
	// on the ordered instance; +Inf if none is feasible.
	BestRatio float64
	// Optimum is the instance's exact optimum.
	Optimum int
}

// CertifyOILowerBound enumerates all radius-r OI algorithms restricted
// to the ordered host (h, rank) and returns the certified bound.
//
// Together with CertifyPOLowerBound this realises both halves of the
// paper's program on one instance: lower bounds proved against the
// weak anonymous model and against the order-invariant model can be
// compared directly, and Theorem 4.1 predicts they coincide on
// homogeneously ordered instances.
func CertifyOILowerBound(h *model.Host, rank order.Rank, p problems.Problem, r, maxAlgorithms int) (*OILowerBound, error) {
	n := h.G.N()
	if err := rank.Validate(n); err != nil {
		return nil, fmt.Errorf("core: CertifyOILowerBound: %w", err)
	}
	opt, err := p.Optimum(h.G)
	if err != nil {
		return nil, err
	}
	// Classify nodes by ordered ball type; remember each node's
	// ball-to-host vertex map for edge outputs. Balls are swept through
	// worker-local sweepers into one shared interner so the type map is
	// keyed by canonical *Ball; type ids are assigned in vertex order.
	// The vertex map is retained per node, so it is copied out of the
	// sweeper scratch.
	in := order.NewInterner()
	balls := make([]*order.Ball, n)
	verts := make([][]int, n)
	par.ForScratch(n,
		order.NewSweeper,
		func(v int, s *order.Sweeper) {
			ball, vs := s.CanonicalBallVerts(h.G, rank, v, r, in)
			balls[v] = ball
			verts[v] = append([]int(nil), vs...)
		})
	typeOf := make([]int, n)
	index := map[*order.Ball]int{}
	var rootNbrs [][]int // per type: ball indices adjacent to the root
	for v := 0; v < n; v++ {
		ball := balls[v]
		id, ok := index[ball]
		if !ok {
			id = len(index)
			index[ball] = id
			rootNbrs = append(rootNbrs, model.RootNeighbors(ball.G, ball.Root))
		}
		typeOf[v] = id
	}
	types := len(index)

	choices := make([]int, types)
	total := 1
	for i := 0; i < types; i++ {
		if p.Kind() == model.VertexKind {
			choices[i] = 2
		} else {
			choices[i] = 1 << len(rootNbrs[i])
		}
		if choices[i] == 0 || total > maxAlgorithms/choices[i] {
			return nil, fmt.Errorf("core: OI algorithm space exceeds budget %d", maxAlgorithms)
		}
		total *= choices[i]
	}

	lb := &OILowerBound{Radius: r, Types: types, Algorithms: total, Optimum: opt, BestRatio: math.Inf(1)}
	assign := make([]int, types)
	for a := 0; a < total; a++ {
		x := a
		for i := 0; i < types; i++ {
			assign[i] = x % choices[i]
			x /= choices[i]
		}
		sol := model.NewSolution(p.Kind(), n)
		for v := 0; v < n; v++ {
			c := assign[typeOf[v]]
			if p.Kind() == model.VertexKind {
				sol.Vertices[v] = c == 1
				continue
			}
			for bi, ballIdx := range rootNbrs[typeOf[v]] {
				if c&(1<<bi) == 0 {
					continue
				}
				sol.Edges[graph.NewEdge(v, verts[v][ballIdx])] = true
			}
		}
		if p.Feasible(h.G, sol) != nil {
			continue
		}
		lb.FeasibleCount++
		ratio, err := problems.Ratio(p, h.G, sol)
		if err != nil {
			continue
		}
		if ratio < lb.BestRatio {
			lb.BestRatio = ratio
		}
	}
	return lb, nil
}
