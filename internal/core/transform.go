// Package core implements the paper's primary contribution: the
// machinery proving ID = OI = PO for local approximation of simple
// PO-checkable problems.
//
//   - OIToPO (Theorem 4.1): from an order-invariant algorithm A and the
//     homogeneity type τ* it constructs the PO algorithm
//     B(W) := A((T*, <*, λ) ↾ W), which simulates A on all τ*-typed
//     nodes of a homogeneous lift (Fact 4.2) and therefore achieves
//     the same approximation ratio on the base graph.
//   - BuildHomogeneousLift (Theorem 3.3): materialises the
//     label-matching product of a finite homogeneous Cayley graph H(m)
//     with a base graph, together with the transferred linear order.
//   - IDToOI (Section 4.2): the Ramsey argument, run as an explicit
//     search for identifier sets on which an ID algorithm is
//     order-invariant.
//   - CertifyPOLowerBound: exhaustive enumeration of the (finite) space
//     of radius-r PO algorithms restricted to an instance, yielding
//     machine-checked PO-model lower bounds, which the transforms then
//     carry over to OI and ID — exactly the paper's program of
//     "prove it in PO, amplify to ID".
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/digraph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/lift"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
	"repro/internal/view"
)

// POFromOI is the PO algorithm B of Theorem 4.1.
type POFromOI struct {
	// A is the simulated OI algorithm.
	A model.OI
	// Tau is the homogeneity type τ* = (T*, <*, λ).
	Tau *order.OrderedTree

	mu      sync.Mutex
	firstEh error
}

var _ model.PO = (*POFromOI)(nil)

// OIToPO constructs B(W) := A((T*, <*, λ) ↾ W). The ordered tree must
// have depth at least the algorithm's radius.
func OIToPO(a model.OI, tau *order.OrderedTree) (*POFromOI, error) {
	if tau.Tree.Depth() < a.Radius() {
		return nil, fmt.Errorf("core: τ* depth %d < algorithm radius %d", tau.Tree.Depth(), a.Radius())
	}
	if err := tau.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid τ*: %w", err)
	}
	return &POFromOI{A: a, Tau: tau}, nil
}

// Radius implements model.PO.
func (b *POFromOI) Radius() int { return b.A.Radius() }

// EvalPO implements model.PO: embed the view into the ordered tree,
// hand the resulting ordered ball to A, and translate A's neighbour
// selections back into letters.
func (b *POFromOI) EvalPO(t *view.Tree) model.Output {
	ball, walks, err := b.Tau.BallOfSubtreeWalks(t)
	if err != nil {
		b.recordErr(err)
		return model.Output{}
	}
	out := b.A.EvalOI(ball)
	if len(out.Neighbors) == 0 {
		return model.Output{Member: out.Member}
	}
	trans := model.Output{Member: out.Member}
	for _, idx := range out.Neighbors {
		if idx < 0 || idx >= len(walks) || len(walks[idx]) != 1 {
			b.recordErr(fmt.Errorf("core: OI algorithm selected non-neighbour ball vertex %d", idx))
			continue
		}
		trans.Letters = append(trans.Letters, walks[idx][0])
	}
	return trans
}

func (b *POFromOI) recordErr(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.firstEh == nil {
		b.firstEh = err
	}
}

// Err returns the first structural error encountered during
// evaluation, if any. A non-nil value means some view did not embed
// into τ* — i.e. the host was outside the algorithm's family.
func (b *POFromOI) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.firstEh
}

// LiftResult is a materialised homogeneous lift (Theorem 3.3) of a
// base L-digraph: the lift as a runnable host, the transferred linear
// order, and the covering map onto the base.
type LiftResult struct {
	// Host is the lift, runnable in all three models.
	Host *model.Host
	// Rank is the transferred order <_C (by the H-coordinate under the
	// restricted U-order, ties within fibres broken by base index).
	Rank order.Rank
	// Phi is the covering map onto the base digraph.
	Phi digraph.FibreMap
	// Base is the base digraph.
	Base *digraph.Digraph
	// M is the homogeneous modulus used for H(m).
	M int
	// TauFrac is the fraction of lift nodes whose H-coordinate is
	// τ*-typed (the 1−ε of Theorem 3.3, measured exactly).
	TauFrac float64
	// Pairs names each lift vertex.
	Pairs []lift.Pair[string, int]
}

// BuildHomogeneousLift materialises H(m) × base for a construction of
// Theorem 3.2 whose alphabet matches the base's. |H(m)|·|base| must
// not exceed maxNodes.
func BuildHomogeneousLift(c *homog.Construction, base *digraph.Digraph, m, maxNodes int) (*LiftResult, error) {
	if base.Alphabet() != c.K {
		return nil, fmt.Errorf("core: base alphabet %d != construction k %d", base.Alphabet(), c.K)
	}
	fam, err := group.NewFamily(c.Level, m)
	if err != nil {
		return nil, err
	}
	total := fam.Order()
	if !total.IsInt64() || total.Int64()*int64(base.N()) > int64(maxNodes) {
		return nil, fmt.Errorf("core: lift of size %v × %d exceeds budget %d", total, base.N(), maxNodes)
	}
	hcay, err := c.HCayley(m)
	if err != nil {
		return nil, err
	}
	// Enumerate H(m) by odometer.
	nH := int(total.Int64())
	hs := make([]string, 0, nH)
	e := make(group.Elem, fam.Dim())
	for i := 0; i < nH; i++ {
		hs = append(hs, hcay.Node(e))
		for j := 0; j < len(e); j++ {
			e[j]++
			if e[j] < m {
				break
			}
			e[j] = 0
		}
	}
	gs := make([]int, base.N())
	for i := range gs {
		gs[i] = i
	}
	prod, err := lift.NewProduct[string, int](hcay, base)
	if err != nil {
		return nil, err
	}
	d, pairs, phi := lift.MaterializeFull(prod, hs, gs)
	host, err := model.NewHost(d)
	if err != nil {
		return nil, fmt.Errorf("core: lift host: %w", err)
	}
	// Transferred order: H-coordinate under the restricted U-order,
	// base index as the fibre tiebreak.
	less := prod.Less(c.NodeLess, func(a, b int) bool { return a < b })
	perm := make([]int, len(pairs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool { return less(pairs[perm[i]], pairs[perm[j]]) })
	rank := make(order.Rank, len(pairs))
	for pos, i := range perm {
		rank[i] = pos
	}
	// Count τ*-typed H-coordinates exactly.
	tauFlags, err := c.ClassifyTau(hcay, hs)
	if err != nil {
		return nil, err
	}
	isTau := make(map[string]bool, nH)
	for i, hnode := range hs {
		isTau[hnode] = tauFlags[i]
	}
	tau := 0
	for _, pr := range pairs {
		if isTau[pr.H] {
			tau++
		}
	}
	return &LiftResult{
		Host:    host,
		Rank:    rank,
		Phi:     phi,
		Base:    base,
		M:       m,
		TauFrac: float64(tau) / float64(len(pairs)),
		Pairs:   pairs,
	}, nil
}

// Agreement measures the fraction of host nodes on which the OI
// algorithm a (under rank) and the PO algorithm b produce identical
// normalised outputs — the empirical Fact 4.2.
func Agreement(h *model.Host, rank order.Rank, a model.OI, b model.PO, kind model.Kind) (float64, error) {
	oi, err := model.OIOutputs(h, rank, a, kind)
	if err != nil {
		return 0, err
	}
	po, err := model.POOutputs(h, b, kind)
	if err != nil {
		return 0, err
	}
	return model.Agreement(oi, po)
}

// TransferReport is the outcome of an end-to-end Theorem 4.1 run.
type TransferReport struct {
	// M is the homogeneous modulus used for the lift.
	M int
	// LiftN is the lift's order.
	LiftN int
	// TauFrac is the measured 1−ε of the lift.
	TauFrac float64
	// AgreementFrac is the measured Fact 4.2 agreement on the lift.
	AgreementFrac float64
	// RatioA bounds A's approximation ratio on the ordered lift from
	// below: |A(lift)| / (l·opt(base)) for minimisation problems (and
	// the reciprocal convention for maximisation). The denominator
	// uses the paper's own inequality opt(lift) <= l·opt(base) — the
	// preimage of a feasible base solution is feasible on the lift —
	// so exact optima never need to be computed on the (large) lift.
	RatioA float64
	// RatioB is B's approximation ratio on the base graph.
	RatioB float64
	// BFeasibleOnBase records that B's output passed the problem's
	// feasibility check on the base graph.
	BFeasibleOnBase bool
}

// TransferOIToPO runs the whole Theorem 4.1 pipeline: build τ* and the
// homogeneous lift, construct B from A, measure agreement on the lift,
// and compare approximation ratios of A (on the lift) and B (on the
// base).
func TransferOIToPO(c *homog.Construction, base *digraph.Digraph, a model.OI, p problems.Problem, m, maxNodes int) (*TransferReport, error) {
	tau, err := c.TauStar()
	if err != nil {
		return nil, err
	}
	b, err := OIToPO(a, tau)
	if err != nil {
		return nil, err
	}
	lr, err := BuildHomogeneousLift(c, base, m, maxNodes)
	if err != nil {
		return nil, err
	}
	rep := &TransferReport{M: m, LiftN: lr.Host.G.N(), TauFrac: lr.TauFrac}

	rep.AgreementFrac, err = Agreement(lr.Host, lr.Rank, a, b, p.Kind())
	if err != nil {
		return nil, err
	}
	solA, err := model.RunOI(lr.Host, lr.Rank, a, p.Kind())
	if err != nil {
		return nil, err
	}
	if err := p.Feasible(lr.Host.G, solA); err != nil {
		return nil, fmt.Errorf("core: A infeasible on the lift: %w", err)
	}
	baseHost, err := model.NewHost(base)
	if err != nil {
		return nil, err
	}
	baseOpt, err := p.Optimum(baseHost.G)
	if err != nil {
		return nil, err
	}
	l := lr.Host.G.N() / base.N() // uniform fibre size
	liftOptBound := float64(l * baseOpt)
	sizeA := float64(solA.Size())
	if p.Goal() == problems.Minimize {
		rep.RatioA = sizeA / liftOptBound
	} else if sizeA > 0 {
		rep.RatioA = liftOptBound / sizeA
	} else {
		rep.RatioA = math.Inf(1)
	}
	solB, err := model.RunPO(baseHost, b, p.Kind())
	if err != nil {
		return nil, err
	}
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("core: B hit a structural error: %w", err)
	}
	if err := p.Feasible(baseHost.G, solB); err != nil {
		return nil, fmt.Errorf("core: B infeasible on the base: %w", err)
	}
	rep.BFeasibleOnBase = true
	rep.RatioB, err = problems.Ratio(p, baseHost.G, solB)
	if err != nil {
		return nil, err
	}
	return rep, nil
}
