package order

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
)

// measureReference is the retained sequential reference for Measure:
// the pre-interner implementation, classifying vertices by Encode()
// strings. The interned/parallel Measure must agree with it exactly.
func measureReference(g *graph.Graph, rank Rank, r int) Homogeneity {
	counts := make(map[string]int)
	for v := 0; v < g.N(); v++ {
		counts[CanonicalBall(g, rank, v, r).Encode()]++
	}
	h := Homogeneity{N: g.N()}
	for typ, c := range counts {
		if c > h.Count || (c == h.Count && typ < h.Type) {
			h.Count = c
			h.Type = typ
		}
	}
	if g.N() > 0 {
		h.Alpha = float64(h.Count) / float64(g.N())
	}
	h.Counts = nil
	return h
}

func diffHosts() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"petersen":       graph.Petersen(),
		"torus6x6":       graph.Torus(6, 6),
		"randomregular":  graph.RandomRegular(18, 3, rand.New(rand.NewSource(11))),
		"randomregular4": graph.RandomRegular(16, 4, rand.New(rand.NewSource(5))),
	}
}

// TestMeasureMatchesReference runs the interned Measure both
// sequentially and in parallel and compares every field against the
// string-based reference, byte for byte.
func TestMeasureMatchesReference(t *testing.T) {
	for name, g := range diffHosts() {
		rank := Identity(g.N())
		for r := 0; r <= 2; r++ {
			want := measureReference(g, rank, r)
			for _, p := range []int{1, 8} {
				defer par.Set(par.Set(p))
				got := Measure(g, rank, r)
				if got.N != want.N || got.Count != want.Count || got.Alpha != want.Alpha {
					t.Fatalf("%s r=%d p=%d: got (n=%d c=%d a=%v) want (n=%d c=%d a=%v)",
						name, r, p, got.N, got.Count, got.Alpha, want.N, want.Count, want.Alpha)
				}
				if got.Type != want.Type {
					t.Fatalf("%s r=%d p=%d: majority type %q != reference %q", name, r, p, got.Type, want.Type)
				}
				// The count multiset must coincide with the reference's
				// (keyed by encoding).
				refCounts := make(map[string]int)
				for v := 0; v < g.N(); v++ {
					refCounts[CanonicalBall(g, rank, v, r).Encode()]++
				}
				if len(got.Counts) != len(refCounts) {
					t.Fatalf("%s r=%d p=%d: %d types, reference %d", name, r, p, len(got.Counts), len(refCounts))
				}
				for b, c := range got.Counts {
					if refCounts[b.Encode()] != c {
						t.Fatalf("%s r=%d p=%d: type %q count %d, reference %d",
							name, r, p, b.Encode(), c, refCounts[b.Encode()])
					}
				}
			}
		}
	}
}

// TestEncodeFormatStable pins the Ball.Encode wire format (the
// strconv rewrite must be byte-identical to the fmt original).
func TestEncodeFormatStable(t *testing.T) {
	g := graph.Cycle(4)
	b := CanonicalBall(g, Identity(4), 1, 1)
	if got := b.Encode(); got != "n3 r1:0-1;1-2;" {
		t.Fatalf("Encode() = %q", got)
	}
}

// TestInternerCanon checks pointer semantics: isomorphic balls
// canonicalise to one representative, distinct ones stay apart.
func TestInternerCanon(t *testing.T) {
	g := graph.Cycle(9)
	rank := Identity(9)
	in := NewInterner()
	a := in.Canon(CanonicalBall(g, rank, 2, 1))
	b := in.Canon(CanonicalBall(g, rank, 3, 1))
	if a != b {
		t.Fatal("isomorphic cycle balls not shared")
	}
	p := graph.Petersen()
	c := in.Canon(CanonicalBall(p, Identity(10), 0, 1))
	if c == a {
		t.Fatal("petersen ball collided with cycle ball")
	}
	if a.Encode() != b.Encode() || a.Encode() == c.Encode() {
		t.Fatal("interning disagrees with encodings")
	}
}
