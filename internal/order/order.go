// Package order implements ordered graphs (G, <) and the canonical
// isomorphism types of ordered radius-r neighbourhoods τ(G, <, v) used
// by the OI model, together with the homogeneity measure of
// Definition 3.1 of the paper.
//
// Because an isomorphism of linearly ordered structures must preserve
// the order, it is unique when it exists; sorting a ball's vertices by
// the order therefore yields a canonical form directly, with no
// graph-isomorphism search.
package order

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/par"
)

// Ball is the canonical form of an ordered radius-r neighbourhood
// τ(G, <, v): the ball's subgraph with vertices relabelled 0..k-1 in
// increasing order.
type Ball struct {
	// G is the ball subgraph; vertex i is the (i+1)-st smallest ball
	// vertex in the host order.
	G *graph.Graph
	// Root is the relabelled index of the centre vertex.
	Root int
}

// Encode returns a canonical string: two ordered neighbourhoods are
// isomorphic iff their encodings are equal. Digits are appended with
// strconv (no fmt machinery) and the adjacency is walked in place (no
// Edges() allocation); hot loops should prefer an Interner and pointer
// comparison, keeping Encode for display and goldens.
func (b *Ball) Encode() string {
	n := b.G.N()
	buf := make([]byte, 0, 16+8*b.G.M())
	buf = append(buf, 'n')
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, ' ', 'r')
	buf = strconv.AppendInt(buf, int64(b.Root), 10)
	buf = append(buf, ':')
	for u := 0; u < n; u++ {
		for _, v := range b.G.Neighbors(u) {
			if int32(u) < v {
				buf = strconv.AppendInt(buf, int64(u), 10)
				buf = append(buf, '-')
				buf = strconv.AppendInt(buf, int64(v), 10)
				buf = append(buf, ';')
			}
		}
	}
	return string(buf)
}

// Rank is a linear order on the vertices of a graph: Rank[v] is the
// position of v, and all positions are distinct.
type Rank []int

// Validate checks that the rank array is a permutation of 0..n-1.
func (r Rank) Validate(n int) error {
	if len(r) != n {
		return fmt.Errorf("order: rank has length %d, want %d", len(r), n)
	}
	seen := make([]bool, n)
	for v, p := range r {
		if p < 0 || p >= n {
			return fmt.Errorf("order: rank[%d]=%d out of range", v, p)
		}
		if seen[p] {
			return fmt.Errorf("order: duplicate rank %d", p)
		}
		seen[p] = true
	}
	return nil
}

// Identity returns the order in which vertex indices are the ranks.
func Identity(n int) Rank {
	r := make(Rank, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// FromIDs returns the order induced by numeric identifiers: the vertex
// with the smallest identifier has rank 0, and so on. Identifiers must
// be distinct.
func FromIDs(ids []int) (Rank, error) {
	n := len(ids)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
	r := make(Rank, n)
	for pos, v := range idx {
		if pos > 0 && ids[idx[pos-1]] == ids[v] {
			return nil, fmt.Errorf("order: duplicate identifier %d", ids[v])
		}
		r[v] = pos
	}
	return r, nil
}

// CanonicalBall returns the canonical ordered neighbourhood τ(g, <, v)
// of radius r.
func CanonicalBall(g *graph.Graph, rank Rank, v, r int) *Ball {
	b, _ := CanonicalBallVerts(g, rank, v, r)
	return b
}

// CanonicalBallVerts additionally returns the original vertex named by
// each canonical ball index (verts[i] is the host vertex of ball
// vertex i).
func CanonicalBallVerts(g *graph.Graph, rank Rank, v, r int) (*Ball, []int) {
	vs := g.Ball(v, r)
	sort.Slice(vs, func(i, j int) bool { return rank[vs[i]] < rank[vs[j]] })
	sub, idx := g.InducedSubgraph(vs)
	return &Ball{G: sub, Root: idx[v]}, vs
}

// Homogeneity is the result of measuring an ordered graph against
// Definition 3.1.
type Homogeneity struct {
	// Alpha is the largest fraction of vertices sharing one ordered
	// r-neighbourhood type; the graph is (Alpha, r)-homogeneous.
	Alpha float64
	// Type is the encoding of the majority type (for display; the
	// canonical ball itself is Majority).
	Type string
	// Majority is the canonical ball of the majority type.
	Majority *Ball
	// Count is the number of vertices of the majority type.
	Count int
	// N is the total number of vertices.
	N int
	// Counts maps each occurring canonical type to its frequency.
	Counts map[*Ball]int
}

// Measure computes the homogeneity of (g, rank) at radius r by
// scanning every vertex. It is the batched sweep SweepMeasure: each
// parallel worker canonicalises balls through its own Sweeper scratch
// into a shared interner and tallies into its own count map, and the
// per-worker counts are summed after the join (a commutative merge),
// so the result is independent of the parallelism level. Types are
// compared by interned pointer — no Encode() strings on the hot path;
// the single majority encoding is rendered at the end. For
// homogeneity at several radii at once, SweepMeasureAll measures
// radii 1..rmax in one layered whole-host pass.
func Measure(g *graph.Graph, rank Rank, r int) Homogeneity {
	return SweepMeasure(g, rank, r)
}

// MeasureReference is the retained per-vertex reference measurement:
// one independently allocated CanonicalBall per vertex, interned after
// the fact. It computes exactly what SweepMeasure computes — the
// differential tests hold the two to identical results — and exists as
// the plainly-auditable spelling of Definition 3.1; hot paths use
// Measure/SweepMeasure.
func MeasureReference(g *graph.Graph, rank Rank, r int) Homogeneity {
	return measureReferenceInto(NewInterner(), g, rank, r)
}

// measureReferenceInto is MeasureReference over a caller-supplied
// interner, so tests can compare interned pointers across measurement
// strategies.
func measureReferenceInto(in *Interner, g *graph.Graph, rank Rank, r int) Homogeneity {
	balls := par.Map(g.N(), func(v int) *Ball {
		return in.Canon(CanonicalBall(g, rank, v, r))
	})
	return tally(balls)
}

// CanonicalBallImplicit extracts the radius-r ball around v in an
// implicit digraph, forgets labels and directions, and canonicalises
// under the given vertex order. It fails if the ball's underlying
// structure has parallel edges (which cannot occur when the girth
// exceeds 2, as in all of the paper's constructions).
func CanonicalBallImplicit[V comparable](g digraph.Implicit[V], less func(a, b V) bool, v V, r int) (*Ball, error) {
	return CanonicalBallImplicitBy(g, func(v V) V { return v }, less, v, r)
}

// CanonicalBallImplicitBy is CanonicalBallImplicit with the host order
// evaluated on precomputed sort keys: key runs once per ball vertex
// instead of inside every comparison. The Cayley-graph scans use this
// to decode each node's group element a single time.
func CanonicalBallImplicitBy[V comparable, K any](g digraph.Implicit[V], key func(V) K, less func(a, b K) bool, v V, r int) (*Ball, error) {
	return CanonicalBallImplicitByWith(digraph.NewBallScratch[V](), g, key, less, v, r)
}

// CanonicalBallImplicitByWith is CanonicalBallImplicitBy over
// caller-owned ball-extraction scratch, for whole-host scans that
// extract one ball per vertex (each parallel worker reuses its own
// scratch via par.ForScratch).
func CanonicalBallImplicitByWith[V comparable, K any](bs *digraph.BallScratch[V], g digraph.Implicit[V], key func(V) K, less func(a, b K) bool, v V, r int) (*Ball, error) {
	ball := digraph.BallWith(bs, g, v, r)
	und, err := ball.D.Underlying()
	if err != nil {
		return nil, fmt.Errorf("order: ball at radius %d: %w", r, err)
	}
	keys := make([]K, len(ball.Nodes))
	for i, n := range ball.Nodes {
		keys[i] = key(n)
	}
	// Sort ball indices by the host order of their original vertices.
	perm := make([]int, und.N())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return less(keys[perm[a]], keys[perm[b]]) })
	sub, idx := und.InducedSubgraph(perm)
	return &Ball{G: sub, Root: idx[ball.Root]}, nil
}
