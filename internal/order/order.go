// Package order implements ordered graphs (G, <) and the canonical
// isomorphism types of ordered radius-r neighbourhoods τ(G, <, v) used
// by the OI model, together with the homogeneity measure of
// Definition 3.1 of the paper.
//
// Because an isomorphism of linearly ordered structures must preserve
// the order, it is unique when it exists; sorting a ball's vertices by
// the order therefore yields a canonical form directly, with no
// graph-isomorphism search.
package order

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/digraph"
	"repro/internal/graph"
)

// Ball is the canonical form of an ordered radius-r neighbourhood
// τ(G, <, v): the ball's subgraph with vertices relabelled 0..k-1 in
// increasing order.
type Ball struct {
	// G is the ball subgraph; vertex i is the (i+1)-st smallest ball
	// vertex in the host order.
	G *graph.Graph
	// Root is the relabelled index of the centre vertex.
	Root int
}

// Encode returns a canonical string: two ordered neighbourhoods are
// isomorphic iff their encodings are equal.
func (b *Ball) Encode() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n%d r%d:", b.G.N(), b.Root)
	for _, e := range b.G.Edges() {
		fmt.Fprintf(&sb, "%d-%d;", e.U, e.V)
	}
	return sb.String()
}

// Rank is a linear order on the vertices of a graph: Rank[v] is the
// position of v, and all positions are distinct.
type Rank []int

// Validate checks that the rank array is a permutation of 0..n-1.
func (r Rank) Validate(n int) error {
	if len(r) != n {
		return fmt.Errorf("order: rank has length %d, want %d", len(r), n)
	}
	seen := make([]bool, n)
	for v, p := range r {
		if p < 0 || p >= n {
			return fmt.Errorf("order: rank[%d]=%d out of range", v, p)
		}
		if seen[p] {
			return fmt.Errorf("order: duplicate rank %d", p)
		}
		seen[p] = true
	}
	return nil
}

// Identity returns the order in which vertex indices are the ranks.
func Identity(n int) Rank {
	r := make(Rank, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// FromIDs returns the order induced by numeric identifiers: the vertex
// with the smallest identifier has rank 0, and so on. Identifiers must
// be distinct.
func FromIDs(ids []int) (Rank, error) {
	n := len(ids)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ids[idx[a]] < ids[idx[b]] })
	r := make(Rank, n)
	for pos, v := range idx {
		if pos > 0 && ids[idx[pos-1]] == ids[v] {
			return nil, fmt.Errorf("order: duplicate identifier %d", ids[v])
		}
		r[v] = pos
	}
	return r, nil
}

// CanonicalBall returns the canonical ordered neighbourhood τ(g, <, v)
// of radius r.
func CanonicalBall(g *graph.Graph, rank Rank, v, r int) *Ball {
	b, _ := CanonicalBallVerts(g, rank, v, r)
	return b
}

// CanonicalBallVerts additionally returns the original vertex named by
// each canonical ball index (verts[i] is the host vertex of ball
// vertex i).
func CanonicalBallVerts(g *graph.Graph, rank Rank, v, r int) (*Ball, []int) {
	vs := g.Ball(v, r)
	sort.Slice(vs, func(i, j int) bool { return rank[vs[i]] < rank[vs[j]] })
	sub, idx := g.InducedSubgraph(vs)
	return &Ball{G: sub, Root: idx[v]}, vs
}

// Homogeneity is the result of measuring an ordered graph against
// Definition 3.1.
type Homogeneity struct {
	// Alpha is the largest fraction of vertices sharing one ordered
	// r-neighbourhood type; the graph is (Alpha, r)-homogeneous.
	Alpha float64
	// Type is the encoding of the majority type.
	Type string
	// Count is the number of vertices of the majority type.
	Count int
	// N is the total number of vertices.
	N int
	// Counts maps each occurring type to its frequency.
	Counts map[string]int
}

// Measure computes the homogeneity of (g, rank) at radius r by scanning
// every vertex.
func Measure(g *graph.Graph, rank Rank, r int) Homogeneity {
	counts := make(map[string]int)
	for v := 0; v < g.N(); v++ {
		counts[CanonicalBall(g, rank, v, r).Encode()]++
	}
	h := Homogeneity{N: g.N(), Counts: counts}
	for typ, c := range counts {
		if c > h.Count || (c == h.Count && typ < h.Type) {
			h.Count = c
			h.Type = typ
		}
	}
	if g.N() > 0 {
		h.Alpha = float64(h.Count) / float64(g.N())
	}
	return h
}

// CanonicalBallImplicit extracts the radius-r ball around v in an
// implicit digraph, forgets labels and directions, and canonicalises
// under the given vertex order. It fails if the ball's underlying
// structure has parallel edges (which cannot occur when the girth
// exceeds 2, as in all of the paper's constructions).
func CanonicalBallImplicit[V comparable](g digraph.Implicit[V], less func(a, b V) bool, v V, r int) (*Ball, error) {
	ball := digraph.Ball(g, v, r)
	und, err := ball.D.Underlying()
	if err != nil {
		return nil, fmt.Errorf("order: ball at radius %d: %w", r, err)
	}
	// Sort ball indices by the host order of their original vertices.
	perm := make([]int, und.N())
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return less(ball.Nodes[perm[a]], ball.Nodes[perm[b]]) })
	sub, idx := und.InducedSubgraph(perm)
	return &Ball{G: sub, Root: idx[ball.Root]}, nil
}
