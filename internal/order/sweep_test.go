package order

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/par"
)

// sweepHosts are the hosts the sweep engine is held to the reference
// measurement on: fixed small graphs, a torus, a random-regular graph
// and a materialised Cayley graph of the paper's groups.
func sweepHosts(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	hosts := map[string]*graph.Graph{
		"petersen": graph.Petersen(),
		"torus6":   graph.Torus(6, 6),
	}
	rng := rand.New(rand.NewSource(7))
	hosts["rr3-48"] = graph.RandomRegular(48, 3, rng)
	hosts["cayley"] = host.MustParse("cayley:H,level=2,m=4,k=2,seed=1").G
	return hosts
}

// TestSweepMeasureDifferential holds SweepMeasure to the retained
// per-vertex reference: identical Homogeneity and — through a shared
// interner — identical interned *Ball pointers, on every host and
// radius.
func TestSweepMeasureDifferential(t *testing.T) {
	for name, g := range sweepHosts(t) {
		rank := Identity(g.N())
		for r := 0; r <= 2; r++ {
			in := NewInterner()
			ref := measureReferenceInto(in, g, rank, r)
			got := SweepMeasureInto(in, g, rank, r)
			if got.Alpha != ref.Alpha || got.Count != ref.Count || got.N != ref.N {
				t.Errorf("%s r=%d: sweep (α=%v c=%d) != reference (α=%v c=%d)",
					name, r, got.Alpha, got.Count, ref.Alpha, ref.Count)
			}
			if got.Majority != ref.Majority {
				t.Errorf("%s r=%d: majority ball pointers differ", name, r)
			}
			if got.Type != ref.Type {
				t.Errorf("%s r=%d: majority type %q != %q", name, r, got.Type, ref.Type)
			}
			if len(got.Counts) != len(ref.Counts) {
				t.Fatalf("%s r=%d: %d types != %d types", name, r, len(got.Counts), len(ref.Counts))
			}
			for b, c := range ref.Counts {
				if got.Counts[b] != c {
					t.Errorf("%s r=%d: count of %p: %d != %d", name, r, b, got.Counts[b], c)
				}
			}
		}
	}
}

// TestSweeperMatchesCanonicalBall pins the per-vertex contract: a
// sweeper extraction is pointer-identical to interning the reference
// CanonicalBall, and the scratch verts slice names the same host
// vertices as CanonicalBallVerts.
func TestSweeperMatchesCanonicalBall(t *testing.T) {
	for name, g := range sweepHosts(t) {
		rank := Identity(g.N())
		in := NewInterner()
		s := NewSweeper()
		for r := 0; r <= 2; r++ {
			for v := 0; v < g.N(); v++ {
				refBall, refVerts := CanonicalBallVerts(g, rank, v, r)
				ref := in.Canon(refBall)
				got, verts := s.CanonicalBallVerts(g, rank, v, r, in)
				if got != ref {
					t.Fatalf("%s v=%d r=%d: sweeper ball %p != interned reference %p", name, v, r, got, ref)
				}
				if len(verts) != len(refVerts) {
					t.Fatalf("%s v=%d r=%d: %d verts != %d", name, v, r, len(verts), len(refVerts))
				}
				for i := range verts {
					if verts[i] != refVerts[i] {
						t.Fatalf("%s v=%d r=%d: verts[%d]=%d != %d", name, v, r, i, verts[i], refVerts[i])
					}
				}
			}
		}
	}
}

// TestSweepMeasureParallelism reuses one engine configuration across
// parallelism levels 1 and 8: results must be identical, and under
// -race the worker-local sweeper pool of par.ForScratch must be clean.
func TestSweepMeasureParallelism(t *testing.T) {
	g := graph.Torus(8, 8)
	rank := Identity(g.N())
	defer par.Set(par.Set(1))
	seq := SweepMeasure(g, rank, 2)
	par.Set(8)
	conc := SweepMeasure(g, rank, 2)
	if seq.Alpha != conc.Alpha || seq.Count != conc.Count || seq.Type != conc.Type || len(seq.Counts) != len(conc.Counts) {
		t.Errorf("parallelism changed the measurement: %+v vs %+v", seq, conc)
	}
	// One shared interner + one sweeper per worker, driven directly.
	in := NewInterner()
	balls := make([]*Ball, g.N())
	par.ForScratch(g.N(), NewSweeper, func(v int, s *Sweeper) {
		balls[v] = s.CanonicalBall(g, rank, v, 2, in)
	})
	for v, b := range balls {
		if b == nil {
			t.Fatalf("vertex %d: nil ball from pooled sweep", v)
		}
	}
}

// layeredHosts are the hosts the layered multi-radius sweep is held
// to the per-radius engine on: the sweepHosts set plus the 24×24
// torus the acceptance benchmark runs on.
func layeredHosts(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	hosts := sweepHosts(t)
	hosts["torus24"] = graph.Torus(24, 24)
	return hosts
}

// TestSweepMeasureAllDifferential holds the layered single-pass
// measurement to the per-radius engine: through a shared interner,
// SweepMeasureAll(g, rank, rmax)[r-1] must carry the pointer-identical
// majority *Ball and the identical count multiset (same interned
// keys) as SweepMeasure at radius r — on every host, at parallelism
// 1 and 8 (the latter exercising the worker-local tally merge and,
// under -race, the lock-free interner reads).
func TestSweepMeasureAllDifferential(t *testing.T) {
	const rmax = 3
	for name, g := range layeredHosts(t) {
		rank := Identity(g.N())
		for _, p := range []int{1, 8} {
			defer par.Set(par.Set(p))
			in := NewInterner()
			refs := make([]Homogeneity, rmax)
			for r := 1; r <= rmax; r++ {
				refs[r-1] = SweepMeasureInto(in, g, rank, r)
			}
			all := SweepMeasureAllInto(in, g, rank, rmax)
			if len(all) != rmax {
				t.Fatalf("%s p=%d: SweepMeasureAll returned %d radii, want %d", name, p, len(all), rmax)
			}
			for r := 1; r <= rmax; r++ {
				got, ref := all[r-1], refs[r-1]
				if got.Majority != ref.Majority {
					t.Errorf("%s p=%d r=%d: majority ball pointers differ", name, p, r)
				}
				if got.Alpha != ref.Alpha || got.Count != ref.Count || got.N != ref.N || got.Type != ref.Type {
					t.Errorf("%s p=%d r=%d: layered (α=%v c=%d %q) != per-radius (α=%v c=%d %q)",
						name, p, r, got.Alpha, got.Count, got.Type, ref.Alpha, ref.Count, ref.Type)
				}
				if len(got.Counts) != len(ref.Counts) {
					t.Fatalf("%s p=%d r=%d: %d types != %d types", name, p, r, len(got.Counts), len(ref.Counts))
				}
				for b, c := range ref.Counts {
					if got.Counts[b] != c {
						t.Errorf("%s p=%d r=%d: count of %p: %d != %d", name, p, r, b, got.Counts[b], c)
					}
				}
			}
		}
	}
}

// TestCanonicalBallsMatchesCanonicalBall pins the per-vertex layered
// contract: each layer of one CanonicalBalls extraction is
// pointer-identical to the corresponding single-radius CanonicalBall
// through a shared interner — including after the host changes under
// the same sweeper (the structural bundle cache must carry over
// safely) and for rmax exceeding the host's eccentricity.
func TestCanonicalBallsMatchesCanonicalBall(t *testing.T) {
	in := NewInterner()
	s := NewSweeper()
	single := NewSweeper()
	for name, g := range layeredHosts(t) {
		rank := Identity(g.N())
		for v := 0; v < g.N(); v++ {
			const rmax = 3
			balls := s.CanonicalBalls(g, rank, v, rmax, in)
			if len(balls) != rmax {
				t.Fatalf("%s v=%d: %d layers, want %d", name, v, len(balls), rmax)
			}
			for r := 1; r <= rmax; r++ {
				if ref := single.CanonicalBall(g, rank, v, r, in); balls[r-1] != ref {
					t.Fatalf("%s v=%d r=%d: layered ball %p != single-radius %p", name, v, r, balls[r-1], ref)
				}
			}
		}
	}
	// rmax beyond the eccentricity: layers stop growing but must stay
	// correct.
	g := graph.Petersen() // diameter 2
	rank := Identity(g.N())
	balls := s.CanonicalBalls(g, rank, 0, 5, in)
	for r := 1; r <= 5; r++ {
		if ref := single.CanonicalBall(g, rank, 0, r, in); balls[r-1] != ref {
			t.Fatalf("petersen r=%d beyond eccentricity: layered %p != single %p", r, balls[r-1], ref)
		}
	}
	if got := s.CanonicalBalls(g, rank, 0, 0, in); got != nil {
		t.Fatalf("rmax=0 should yield nil, got %d layers", len(got))
	}
}

// TestCanonicalBallsInternerSwitch: the worker-local bundle cache
// stores *Ball pointers belonging to one interner, so handing the
// same sweeper a different interner must not leak the old
// representatives.
func TestCanonicalBallsInternerSwitch(t *testing.T) {
	g := graph.Torus(6, 6)
	rank := Identity(g.N())
	s := NewSweeper()
	inA := NewInterner()
	a := s.CanonicalBalls(g, rank, 0, 2, inA)
	inB := NewInterner()
	b := s.CanonicalBalls(g, rank, 0, 2, inB)
	if a[0] == b[0] || a[1] == b[1] {
		t.Fatal("bundle cache leaked representatives across interners")
	}
	if ref := NewSweeper().CanonicalBall(g, rank, 0, 2, inB); b[1] != ref {
		t.Fatal("post-switch layered ball is not interned in the new interner")
	}
}

// TestCanonicalBallsZeroAllocOnHit: once every layered structure is
// in the worker-local bundle cache, a multi-radius extraction
// allocates nothing — the layered analogue of the single-radius
// zero-alloc promise.
func TestCanonicalBallsZeroAllocOnHit(t *testing.T) {
	g := graph.Torus(8, 8)
	rank := Identity(g.N())
	in := NewInterner()
	s := NewSweeper()
	for v := 0; v < g.N(); v++ {
		s.CanonicalBalls(g, rank, v, 3, in) // register every bundle
	}
	v := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.CanonicalBalls(g, rank, v, 3, in)
		v = (v + 1) % g.N()
	})
	if allocs != 0 {
		t.Errorf("bundle-hit layered extraction allocates %v times, want 0", allocs)
	}
}

// TestSweeperZeroAllocOnHit asserts the engine's core promise: an
// extraction that resolves to an already-interned type allocates
// nothing.
func TestSweeperZeroAllocOnHit(t *testing.T) {
	g := graph.Torus(8, 8)
	rank := Identity(g.N())
	in := NewInterner()
	s := NewSweeper()
	for v := 0; v < g.N(); v++ {
		s.CanonicalBall(g, rank, v, 2, in) // register every type
	}
	v := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.CanonicalBall(g, rank, v, 2, in)
		v = (v + 1) % g.N()
	})
	if allocs != 0 {
		t.Errorf("interner-hit extraction allocates %v times, want 0", allocs)
	}
}

// TestTypeHashIncremental pins the incremental hash (typeHashBegin /
// typeHashEdge, the during-assembly form the sweeper uses) to the
// whole-ball hashType spelling.
func TestTypeHashIncremental(t *testing.T) {
	g := graph.Torus(6, 6)
	rank := Identity(g.N())
	for v := 0; v < g.N(); v++ {
		b := CanonicalBall(g, rank, v, 2)
		h := typeHashBegin(b.G.N(), b.Root)
		for u := 0; u < b.G.N(); u++ {
			for _, w := range b.G.Neighbors(u) {
				if int32(u) < w {
					h = typeHashEdge(h, u, int(w))
				}
			}
		}
		if got := b.hashType(); got != h {
			t.Fatalf("v=%d: incremental hash %x != hashType %x", v, h, got)
		}
	}
}

// TestCanonScratchCollision forces two structurally distinct balls
// into the same hash bucket: the interner must keep them apart via the
// structural comparison (hash equal ⇒ sameType checked) and keep
// resolving each scratch form to its own representative.
func TestCanonScratchCollision(t *testing.T) {
	in := NewInterner()
	const h = uint64(0xdecafbadc0ffee) // same forced hash for both
	// The one-edge ball rooted at 0 and the same ball rooted at 1.
	off := []int32{0, 1, 2}
	nbr := []int32{1, 0}
	a := in.canonScratch(h, 0, off, nbr)
	b := in.canonScratch(h, 1, off, nbr)
	if a == b {
		t.Fatal("balls with different roots interned to one representative under a forced hash collision")
	}
	if a.Root != 0 || b.Root != 1 || a.G.N() != 2 || b.G.N() != 2 {
		t.Fatalf("copy-on-miss mangled the balls: a=%+v b=%+v", a, b)
	}
	if got := in.canonScratch(h, 0, off, nbr); got != a {
		t.Error("re-probing the first colliding ball lost its representative")
	}
	if got := in.canonScratch(h, 1, off, nbr); got != b {
		t.Error("re-probing the second colliding ball lost its representative")
	}
	// The representatives own copies: mutating the scratch afterwards
	// must not reach them.
	nbr[0], nbr[1] = 0, 1
	if a.G.Neighbors(0)[0] != 1 || a.G.Neighbors(1)[0] != 0 {
		t.Error("interned ball aliases caller scratch")
	}
}
