package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/view"
)

func TestRankValidate(t *testing.T) {
	if err := Identity(5).Validate(5); err != nil {
		t.Errorf("identity rank invalid: %v", err)
	}
	if err := (Rank{0, 0, 1}).Validate(3); err == nil {
		t.Error("duplicate rank accepted")
	}
	if err := (Rank{0, 5, 1}).Validate(3); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := (Rank{0, 1}).Validate(3); err == nil {
		t.Error("short rank accepted")
	}
}

func TestFromIDs(t *testing.T) {
	r, err := FromIDs([]int{50, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := Rank{2, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("FromIDs = %v, want %v", r, want)
		}
	}
	if _, err := FromIDs([]int{5, 5}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestCanonicalBallCycleSeam(t *testing.T) {
	// On (C_n, identity order) interior nodes share one type; the 2r
	// nodes whose ball crosses the "seam" between n-1 and 0 differ.
	g := graph.Cycle(10)
	rank := Identity(10)
	interior := CanonicalBall(g, rank, 5, 1).Encode()
	if got := CanonicalBall(g, rank, 4, 1).Encode(); got != interior {
		t.Error("two interior nodes should share a type")
	}
	if got := CanonicalBall(g, rank, 0, 1).Encode(); got == interior {
		t.Error("seam node should have a different type")
	}
	if got := CanonicalBall(g, rank, 9, 1).Encode(); got == interior {
		t.Error("seam node should have a different type")
	}
}

func TestMeasureCycle(t *testing.T) {
	// α = (n-2r)/n on the ordered cycle.
	for _, tc := range []struct{ n, r int }{{10, 1}, {10, 2}, {24, 3}} {
		g := graph.Cycle(tc.n)
		h := Measure(g, Identity(tc.n), tc.r)
		want := tc.n - 2*tc.r
		if h.Count != want {
			t.Errorf("n=%d r=%d: majority count %d, want %d", tc.n, tc.r, h.Count, want)
		}
		if h.N != tc.n {
			t.Error("N wrong")
		}
	}
}

func TestMeasureTorusFig6b(t *testing.T) {
	// Fig. 6(b): the 6x6 toroidal grid with the row-major
	// (lexicographic coordinate-wise) order is (4/9, 1)-homogeneous
	// and (1/9, 2)-homogeneous.
	g := graph.Torus(6, 6)
	rank := Identity(36)
	h1 := Measure(g, rank, 1)
	// The paper counts the 16 doubly-interior nodes; two corners
	// coincidentally share the same type (the type of a radius-1 star
	// is determined by the root's rank position, and corners (1,6) and
	// (6,1) also place the root at position 2), so the true maximum is
	// 18. Definition 3.1 is a "there exists U" lower bound, so both
	// 16/36 and 18/36 witness (4/9, 1)-homogeneity.
	if h1.Count != 18 {
		t.Errorf("radius 1: majority count %d, want 18 (≥ 16, the paper's bound)", h1.Count)
	}
	if h1.Count < 16 {
		t.Errorf("radius 1: paper's (4/9,1) bound violated: %d < 16", h1.Count)
	}
	h2 := Measure(g, rank, 2)
	if h2.Count < 4 {
		t.Errorf("radius 2: paper's (1/9,2) bound violated: %d < 4", h2.Count)
	}
	// At radius 2 the interior types are genuinely rare.
	if h2.Alpha > 0.5 {
		t.Errorf("radius 2: α=%v unexpectedly large", h2.Alpha)
	}
}

func TestMeasureCompleteGraph(t *testing.T) {
	// On K_n every ordered radius-1 ball is the whole graph and the
	// types are distinguished only by the root's rank: α = 1/n.
	h := Measure(graph.Complete(5), Identity(5), 1)
	if h.Count != 1 || len(h.Counts) != 5 {
		t.Errorf("K5: count=%d types=%d, want 1 and 5", h.Count, len(h.Counts))
	}
}

func TestCanonicalBallImplicitMatchesGraph(t *testing.T) {
	// The implicit-digraph canonicalisation agrees with the plain-graph
	// one on port-numbered graphs.
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomRegular(14, 3, rng)
	p := digraph.FromPorts(g, nil)
	rank := Identity(g.N())
	less := func(a, b int) bool { return rank[a] < rank[b] }
	for v := 0; v < g.N(); v++ {
		got, err := CanonicalBallImplicit[int](p.D, less, v, 2)
		if err != nil {
			t.Fatalf("implicit ball at %d: %v", v, err)
		}
		want := CanonicalBall(g, rank, v, 2)
		if got.Encode() != want.Encode() {
			t.Fatalf("node %d: implicit %q vs graph %q", v, got.Encode(), want.Encode())
		}
	}
}

// pathOrderedTree builds τ* for alphabet 1, radius r: a path, ordered
// along the path (backward walks first).
func pathOrderedTree(r int) *OrderedTree {
	tr := view.Complete(1, r)
	rank := make(map[string]int)
	// Walk keys: backward walks 0',0'0',... then λ, then forward.
	next := 0
	for i := r; i >= 1; i-- {
		w := make([]view.Letter, i)
		for j := range w {
			w[j] = view.Letter{Label: 0, In: true}
		}
		rank[view.Key(w)] = next
		next++
	}
	rank[""] = next
	next++
	for i := 1; i <= r; i++ {
		w := make([]view.Letter, i)
		for j := range w {
			w[j] = view.Letter{Label: 0}
		}
		rank[view.Key(w)] = next
		next++
	}
	return &OrderedTree{Tree: tr, RankOf: rank}
}

func TestOrderedTreeValidate(t *testing.T) {
	ot := pathOrderedTree(2)
	if err := ot.Validate(); err != nil {
		t.Errorf("valid ordered tree rejected: %v", err)
	}
	bad := &OrderedTree{Tree: ot.Tree, RankOf: map[string]int{"": 0}}
	if err := bad.Validate(); err == nil {
		t.Error("missing ranks accepted")
	}
	dup := &OrderedTree{Tree: view.Complete(1, 1), RankOf: map[string]int{"": 0, "0": 0, "0'": 1}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ranks accepted")
	}
}

func TestBallOfSubtreeMatchesCycleInterior(t *testing.T) {
	// The heart of Theorem 4.1: interpreting the cycle's view as an
	// ordered subtree of τ* gives exactly the ordered ball an
	// OI-algorithm would see at an interior node of the ordered cycle.
	r := 2
	ot := pathOrderedTree(r)
	// Directed cycle, radius-2 view at any node.
	b := digraph.NewBuilder(12, 1)
	for i := 0; i < 12; i++ {
		b.MustAddArc(i, (i+1)%12, 0)
	}
	v := view.Build[int](b.Build(), 0, r)
	got, err := ot.BallOfSubtree(v)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(12)
	want := CanonicalBall(g, Identity(12), 6, r)
	if got.Encode() != want.Encode() {
		t.Errorf("subtree ball %q, want interior cycle ball %q", got.Encode(), want.Encode())
	}
}

func TestBallOfSubtreeRejectsForeign(t *testing.T) {
	ot := pathOrderedTree(1)
	foreign := view.Complete(2, 1) // larger alphabet, not a subtree
	if _, err := ot.BallOfSubtree(foreign); err == nil {
		t.Error("foreign subtree accepted")
	}
}

// Property: Measure(α) is in (0, 1] and counts sum to n.
func TestQuickMeasureSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomGraph(2+rng.Intn(15), rng.Float64(), rng)
		perm := rng.Perm(g.N())
		h := Measure(g, Rank(perm), 1+rng.Intn(2))
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == g.N() && h.Alpha > 0 && h.Alpha <= 1 && h.Count >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: canonical encodings are invariant under relabelling vertices
// while preserving the order (the defining property of the OI model).
func TestQuickOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := graph.RandomGraph(n, 0.3, rng)
		perm := rng.Perm(n) // perm[v] = new name of v
		// Build the relabelled graph.
		b := graph.NewBuilder(n)
		for _, e := range g.Edges() {
			b.MustAddEdge(perm[e.U], perm[e.V])
		}
		h := b.Build()
		// Order: rank[v] on g; induced rank on h preserves relative order.
		rank := Rank(rng.Perm(n))
		hrank := make(Rank, n)
		for v := 0; v < n; v++ {
			hrank[perm[v]] = rank[v]
		}
		v := rng.Intn(n)
		r := 1 + rng.Intn(2)
		return CanonicalBall(g, rank, v, r).Encode() == CanonicalBall(h, hrank, perm[v], r).Encode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
