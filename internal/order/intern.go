package order

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/intern"
)

// Interner hash-conses canonical ordered balls: Canon maps every ball
// that is isomorphic as an ordered rooted graph (same size, same root
// position, same edge set over the rank-sorted vertices) to one
// representative *Ball. Equality of canonical types is then pointer
// identity and count maps are keyed by *Ball — no Encode() strings in
// the measurement hot loops. Collisions of the 64-bit structural hash
// are resolved by full comparison, so correctness does not depend on
// hash quality. Safe for concurrent use from the parallel scan layer.
//
// The hit path is lock-free: each shard (intern.Shard) publishes an
// immutable, hash-sorted entry slice through an atomic pointer, so a
// probe that finds its type already registered (the steady state of a
// homogeneous host) does a binary search and no locking at all. Only
// a miss takes the shard mutex, re-probes and republishes the slice
// copy-on-write — misses are as rare as genuinely new types, so the
// one-allocation copy is off the hot path by construction. Shards are
// cache-line padded so concurrent writers on adjacent shards do not
// false-share.
type Interner struct {
	shards [ballShards]intern.Shard[*Ball]
}

const ballShards = 64 // power of two

// NewInterner returns an empty ball interner.
func NewInterner() *Interner { return &Interner{} }

// Canon returns the canonical representative of b's isomorphism type,
// registering b if the type is new. A hit takes no lock.
func (in *Interner) Canon(b *Ball) *Ball {
	h := b.hashType()
	shard := &in.shards[h&(ballShards-1)]
	for _, e := range shard.Run(h) {
		if e.Val.sameType(b) {
			return e.Val
		}
	}
	shard.Lock()
	defer shard.Unlock()
	// Re-probe under the writer lock: another goroutine may have
	// registered the type between the lock-free miss and here.
	for _, e := range shard.Run(h) {
		if e.Val.sameType(b) {
			return e.Val
		}
	}
	shard.Publish(h, b)
	return b
}

// canonScratch probes the interner with a ball assembled in scratch
// CSR form (root position plus sorted adjacency rows): on a hit the
// existing representative is returned without locking or allocating;
// only on a miss is the scratch copied to the heap and registered —
// the copy-on-miss discipline of the sweep engine. h must be the
// ball's type hash, normally accumulated during assembly via
// typeHashBegin / typeHashEdge; taking it as a parameter keeps the
// probe single-pass and lets the collision tests force equal hashes
// for distinct balls.
func (in *Interner) canonScratch(h uint64, root int, off, nbr []int32) *Ball {
	shard := &in.shards[h&(ballShards-1)]
	for _, e := range shard.Run(h) {
		if e.Val.sameTypeCSR(root, off, nbr) {
			return e.Val
		}
	}
	shard.Lock()
	defer shard.Unlock()
	for _, e := range shard.Run(h) {
		if e.Val.sameTypeCSR(root, off, nbr) {
			return e.Val
		}
	}
	g, err := graph.FromCSR(
		append([]int32(nil), off...),
		append([]int32(nil), nbr...),
	)
	if err != nil {
		panic(fmt.Sprintf("order: scratch ball is not a valid canonical form: %v", err))
	}
	b := &Ball{G: g, Root: root}
	shard.Publish(h, b)
	return b
}

// typeHashBegin opens the incremental form of hashType: vertex count
// and root position first, then one typeHashEdge per edge u < v in
// u-major, neighbour-sorted order. The sweep engine hashes the
// candidate ball with these while assembling its scratch CSR, so no
// second pass over the finished form is needed; hashType remains the
// whole-ball spelling and the differential tests pin the two equal.
func typeHashBegin(n, root int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(n))
	return mix64(h ^ uint64(root))
}

// typeHashEdge folds the edge {u, v} (u < v) into an incremental type
// hash.
func typeHashEdge(h uint64, u, v int) uint64 {
	return mix64(h ^ (uint64(u)<<32 | uint64(v)))
}

// hashType hashes the canonical form: vertex count, root position and
// the edge set (adjacency is iterated in deterministic sorted order).
func (b *Ball) hashType() uint64 {
	n := b.G.N()
	h := typeHashBegin(n, b.Root)
	for u := 0; u < n; u++ {
		for _, v := range b.G.Neighbors(u) {
			if int32(u) < v {
				h = typeHashEdge(h, u, int(v))
			}
		}
	}
	return h
}

// sameTypeCSR reports whether the canonical ball equals a scratch CSR
// form: same order, same root, same adjacency rows.
func (b *Ball) sameTypeCSR(root int, off, nbr []int32) bool {
	n := len(off) - 1
	if b.G.N() != n || b.Root != root || 2*b.G.M() != len(nbr) {
		return false
	}
	for u := 0; u < n; u++ {
		bu, row := b.G.Neighbors(u), nbr[off[u]:off[u+1]]
		if len(bu) != len(row) {
			return false
		}
		for i := range bu {
			if bu[i] != row[i] {
				return false
			}
		}
	}
	return true
}

// sameType reports whether two canonical balls are identical: same
// order, same root, same adjacency.
func (b *Ball) sameType(o *Ball) bool {
	if b == o {
		return true
	}
	n := b.G.N()
	if n != o.G.N() || b.Root != o.Root || b.G.M() != o.G.M() {
		return false
	}
	for u := 0; u < n; u++ {
		bu, ou := b.G.Neighbors(u), o.G.Neighbors(u)
		if len(bu) != len(ou) {
			return false
		}
		for i := range bu {
			if bu[i] != ou[i] {
				return false
			}
		}
	}
	return true
}

// mix64 is the splitmix64 finaliser.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
