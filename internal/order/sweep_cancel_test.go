package order

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// TestSweepMeasureAllCtxCancelled: a dead context aborts the layered
// sweep with an error wrapping ctx.Err(), discards partial tallies,
// and leaves the par budget fully released.
func TestSweepMeasureAllCtxCancelled(t *testing.T) {
	defer par.Set(par.Set(4))
	g := graph.Torus(64, 64)
	rank := Identity(g.N())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := SweepMeasureAllCtx(ctx, g, rank, 3)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want wrapped context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("cancelled sweep returned partial results: %v", out)
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("par.InUse()=%d after cancelled sweep", got)
	}
}

// TestSweepMeasureAllCtxDeadline: an expiring deadline surfaces as a
// wrapped context.DeadlineExceeded.
func TestSweepMeasureAllCtxDeadline(t *testing.T) {
	g := graph.Torus(32, 32)
	rank := Identity(g.N())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SweepMeasureAllCtx(ctx, g, rank, 2)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestSweepMeasureAllCtxLiveMatchesPlain: with a live context the
// cancellable sweep is byte-identical to the uncancellable one — same
// counts and the same interned majority ball through a shared
// interner.
func TestSweepMeasureAllCtxLiveMatchesPlain(t *testing.T) {
	g := graph.Torus(12, 12)
	rank := Identity(g.N())
	in := NewInterner()
	want := SweepMeasureAllInto(in, g, rank, 3)
	got, err := SweepMeasureAllIntoCtx(context.Background(), in, g, rank, 3)
	if err != nil {
		t.Fatalf("live-context sweep failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for r := range want {
		if got[r].Majority != want[r].Majority || got[r].Count != want[r].Count || got[r].N != want[r].N {
			t.Fatalf("radius %d: ctx sweep diverged: got %+v want %+v", r+1, got[r], want[r])
		}
	}
}
