package order

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestInternerShardStress hammers a single shard from many goroutines:
// every probe carries the same forced hash, so all traffic — lock-free
// hit reads, copy-on-write publishes, the under-lock re-probe — lands
// on one bucket chain. Each goroutine alternates between a fixed pool
// of structurally distinct balls (forced hash collisions included) and
// checks that the representative it gets back is stable; under -race
// this pins the immutable-republish discipline of the lock-free read
// path.
func TestInternerShardStress(t *testing.T) {
	const (
		workers = 16
		rounds  = 400
		hash    = uint64(0xfeedface) // same shard, same bucket, for every probe
	)
	// pool[k] is the path P_{k+2} rooted at 0: structurally distinct
	// canonical forms that the forced hash crams into one bucket.
	type form struct {
		off, nbr []int32
	}
	pool := make([]form, 8)
	for k := range pool {
		n := k + 2
		var f form
		f.off = append(f.off, 0)
		for v := 0; v < n; v++ {
			if v > 0 {
				f.nbr = append(f.nbr, int32(v-1))
			}
			if v < n-1 {
				f.nbr = append(f.nbr, int32(v+1))
			}
			f.off = append(f.off, int32(len(f.nbr)))
		}
		pool[k] = f
	}
	in := NewInterner()
	reps := make([][]*Ball, workers) // worker -> per-form representative seen
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]*Ball, len(pool))
			for round := 0; round < rounds; round++ {
				k := (round + w) % len(pool)
				got := in.canonScratch(hash, 0, pool[k].off, pool[k].nbr)
				if mine[k] == nil {
					mine[k] = got
				} else if mine[k] != got {
					t.Errorf("worker %d: form %d changed representative", w, k)
					return
				}
			}
			reps[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// All workers must have converged on the same representative per
	// form, and distinct forms must have stayed apart.
	for w := 1; w < workers; w++ {
		for k := range pool {
			if reps[w][k] != reps[0][k] {
				t.Fatalf("workers 0 and %d disagree on form %d", w, k)
			}
		}
	}
	seen := map[*Ball]bool{}
	for k := range pool {
		b := reps[0][k]
		if seen[b] {
			t.Fatalf("two distinct forms share representative %p", b)
		}
		seen[b] = true
		if b.G.N() != k+2 {
			t.Fatalf("form %d: representative has %d vertices, want %d", k, b.G.N(), k+2)
		}
	}
}

// TestInternerCanonStress is the Canon-side stress: concurrent
// interning of freshly allocated but structurally identical balls
// (mixed with distinct ones across many shards) must converge on one
// representative per type.
func TestInternerCanonStress(t *testing.T) {
	const workers = 16
	mk := func(n int) *Ball {
		b := graph.NewBuilder(n)
		for v := 0; v+1 < n; v++ {
			b.MustAddEdge(v, v+1)
		}
		return &Ball{G: b.Build(), Root: 0}
	}
	in := NewInterner()
	reps := make([][]*Ball, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]*Ball, 6)
			for round := 0; round < 200; round++ {
				n := 2 + (round+w)%6
				got := in.Canon(mk(n)) // fresh allocation every time
				if mine[n-2] == nil {
					mine[n-2] = got
				} else if mine[n-2] != got {
					t.Errorf("worker %d: P_%d changed representative", w, n)
					return
				}
			}
			reps[w] = mine
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for k := range reps[0] {
			if reps[w][k] != reps[0][k] {
				t.Fatalf("workers 0 and %d disagree on P_%d", w, k+2)
			}
		}
	}
}
