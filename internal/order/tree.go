package order

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/view"
)

// OrderedTree is an ordered complete view tree: the homogeneity type
// τ* = (T*, <*, λ) of Theorem 3.2. RankOf assigns each walk (by key) a
// position in the linear order <*.
type OrderedTree struct {
	Tree   *view.Tree
	RankOf map[string]int
}

// Validate checks that every vertex of the tree has a rank and that
// ranks are distinct.
func (ot *OrderedTree) Validate() error {
	seen := make(map[int]string)
	n := 0
	var err error
	ot.Tree.Visit(func(walk []view.Letter, _ *view.Tree) {
		if err != nil {
			return
		}
		k := view.Key(walk)
		r, ok := ot.RankOf[k]
		if !ok {
			err = fmt.Errorf("order: walk %q has no rank", k)
			return
		}
		if prev, dup := seen[r]; dup {
			err = fmt.Errorf("order: walks %q and %q share rank %d", prev, k, r)
			return
		}
		seen[r] = k
		n++
	})
	return err
}

// BallOfSubtree interprets a subtree W of T* as the ordered graph
// (T*, <*, λ) ↾ W and returns its canonical ordered ball rooted at λ.
// This is precisely the structure handed to an OI-algorithm by the
// PO-algorithm B of Theorem 4.1: B(W) := A((T*, <*, λ) ↾ W).
func (ot *OrderedTree) BallOfSubtree(sub *view.Tree) (*Ball, error) {
	b, _, err := ot.BallOfSubtreeWalks(sub)
	return b, err
}

// BallOfSubtreeWalks additionally returns the walk naming each
// canonical ball vertex (walks[i] is the walk of the vertex with rank
// position i); a PO-algorithm built from an OI-algorithm uses this to
// translate selected ball neighbours back into letters.
func (ot *OrderedTree) BallOfSubtreeWalks(sub *view.Tree) (*Ball, [][]view.Letter, error) {
	if !sub.IsSubtreeOf(ot.Tree) {
		return nil, nil, fmt.Errorf("order: view is not a subtree of the ordered tree")
	}
	walks := sub.Walks()
	// Sort vertex indices by the τ* rank of their walks.
	perm := make([]int, len(walks))
	for i := range perm {
		perm[i] = i
	}
	ranks := make([]int, len(walks))
	for i, w := range walks {
		r, ok := ot.RankOf[view.Key(w)]
		if !ok {
			return nil, nil, fmt.Errorf("order: walk %q has no rank in τ*", view.Key(w))
		}
		ranks[i] = r
	}
	sort.Slice(perm, func(a, b int) bool { return ranks[perm[a]] < ranks[perm[b]] })
	pos := make([]int, len(walks)) // original index -> sorted position
	for p, i := range perm {
		pos[i] = p
	}
	// Tree edges: walk w to its parent w[:len-1].
	index := make(map[string]int, len(walks))
	for i, w := range walks {
		index[view.Key(w)] = i
	}
	b := graph.NewBuilder(len(walks))
	for i, w := range walks {
		if len(w) == 0 {
			continue
		}
		parent := index[view.Key(w[:len(w)-1])]
		b.MustAddEdge(pos[parent], pos[i])
	}
	sorted := make([][]view.Letter, len(walks))
	for p, i := range perm {
		sorted[p] = walks[i]
	}
	return &Ball{G: b.Build(), Root: pos[0]}, sorted, nil
}
