package order

import (
	"slices"

	"repro/internal/graph"
	"repro/internal/par"
)

// Sweeper is the worker-local scratch of the ball-sweep engine: the
// reusable state one goroutine needs to extract canonical ordered
// balls over a whole host. The visited set is an epoch-stamped array —
// reset is an epoch bump, not a clear — the BFS queue, rank-sorted
// vertex list and candidate CSR are grown once and reused, and the
// candidate is hashed during assembly and resolved against an
// Interner in scratch form. On an interner hit (the steady state of a
// homogeneous host, where few distinct types exist) an extraction
// performs no heap allocation at all; only a miss copies the ball out
// of the scratch and registers it.
//
// A Sweeper belongs to one goroutine. Whole-host scans hand each
// worker its own via par.ForScratch; see SweepMeasure.
type Sweeper struct {
	seen  graph.VisitStamp // visited set; slot = canonical ball index
	queue []int32          // ball vertices in BFS order (host ids)
	depth []int32          // parallel to queue: BFS distance from the centre
	verts []int32          // ball vertices sorted by rank (host ids)
	ints  []int            // verts as []int, for CanonicalBallVerts callers
	off   []int32          // candidate CSR row offsets
	nbr   []int32          // candidate CSR adjacency
}

// NewSweeper returns an empty sweeper; its buffers are sized on first
// use and grow to the largest host swept.
func NewSweeper() *Sweeper { return &Sweeper{} }

// CanonicalBall extracts the canonical ordered neighbourhood
// τ(g, <, v) of radius r into the sweeper's scratch and resolves it
// against the interner, returning the canonical representative. The
// result is pointer-identical to in.Canon(CanonicalBall(g, rank, v, r))
// and, on an interner hit, is produced without allocating.
func (s *Sweeper) CanonicalBall(g *graph.Graph, rank Rank, v, r int, in *Interner) *Ball {
	s.sweep(g, rank, v, r)
	root := int(s.seen.Slot(int32(v)))
	s.off = append(s.off[:0], 0)
	s.nbr = s.nbr[:0]
	h := typeHashBegin(len(s.verts), root)
	for i, u := range s.verts {
		start := len(s.nbr)
		for _, w := range g.Neighbors(int(u)) {
			if s.seen.Visited(w) {
				s.nbr = append(s.nbr, s.seen.Slot(w))
			}
		}
		row := s.nbr[start:]
		slices.Sort(row)
		for _, j := range row {
			if int32(i) < j {
				h = typeHashEdge(h, i, int(j))
			}
		}
		s.off = append(s.off, int32(len(s.nbr)))
	}
	return in.canonScratch(h, root, s.off, s.nbr)
}

// CanonicalBallVerts is CanonicalBall additionally returning the host
// vertex named by each canonical ball index (verts[i] is the host
// vertex of ball vertex i). The slice is the sweeper's scratch: it is
// valid until the next extraction on this sweeper and must be copied
// if retained.
func (s *Sweeper) CanonicalBallVerts(g *graph.Graph, rank Rank, v, r int, in *Interner) (*Ball, []int) {
	b := s.CanonicalBall(g, rank, v, r, in)
	s.ints = s.ints[:0]
	for _, u := range s.verts {
		s.ints = append(s.ints, int(u))
	}
	return b, s.ints
}

// sweep runs the radius-r BFS from v, leaving the ball's vertices
// rank-sorted in s.verts and each one's canonical index in the
// visited set's slot.
func (s *Sweeper) sweep(g *graph.Graph, rank Rank, v, r int) {
	s.seen.Reset(g.N())
	s.queue = append(s.queue[:0], int32(v))
	s.depth = append(s.depth[:0], 0)
	s.seen.Visit(int32(v), 0)
	for head := 0; head < len(s.queue); head++ {
		u, du := s.queue[head], s.depth[head]
		if int(du) == r {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if !s.seen.Visited(w) {
				s.seen.Visit(w, 0) // slot assigned after the sort
				s.queue = append(s.queue, w)
				s.depth = append(s.depth, du+1)
			}
		}
	}
	s.verts = append(s.verts[:0], s.queue...)
	slices.SortFunc(s.verts, func(a, b int32) int { return rank[a] - rank[b] })
	for i, u := range s.verts {
		s.seen.SetSlot(u, int32(i))
	}
}

// SweepMeasure computes the homogeneity of (g, rank) at radius r by a
// batched whole-host sweep: each parallel worker owns one Sweeper
// (par.ForScratch), every vertex's ball is assembled in scratch and
// resolved against one shared interner copy-on-miss, and the counts
// are merged in vertex order. The result is identical to the retained
// per-vertex reference MeasureReference at every parallelism level —
// a property the differential tests pin down — while the steady-state
// per-vertex allocation count is zero.
func SweepMeasure(g *graph.Graph, rank Rank, r int) Homogeneity {
	return sweepMeasureInto(NewInterner(), g, rank, r)
}

// sweepMeasureInto is SweepMeasure over a caller-supplied interner, so
// tests can compare interned pointers across measurement strategies.
func sweepMeasureInto(in *Interner, g *graph.Graph, rank Rank, r int) Homogeneity {
	n := g.N()
	balls := make([]*Ball, n)
	par.ForScratch(n,
		NewSweeper,
		func(v int, s *Sweeper) {
			balls[v] = s.CanonicalBall(g, rank, v, r, in)
		})
	return tally(balls)
}

// tally merges a vertex-ordered slice of canonical balls into the
// Homogeneity result (shared by the sweep engine and the reference
// measurement).
func tally(balls []*Ball) Homogeneity {
	n := len(balls)
	counts := make(map[*Ball]int)
	for _, b := range balls {
		counts[b]++
	}
	h := Homogeneity{N: n, Counts: counts}
	for b, c := range counts {
		if c > h.Count {
			h.Count = c
			h.Majority = b
		} else if c == h.Count && h.Majority != nil && b.Encode() < h.Majority.Encode() {
			// Deterministic tie-break on the canonical encoding (ties
			// are rare; both encodings are computed only then).
			h.Majority = b
		}
	}
	if h.Majority != nil {
		h.Type = h.Majority.Encode()
	}
	if n > 0 {
		h.Alpha = float64(h.Count) / float64(n)
	}
	return h
}
