package order

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Sweeper is the worker-local scratch of the ball-sweep engine: the
// reusable state one goroutine needs to extract canonical ordered
// balls over a whole host. The visited set is an epoch-stamped array —
// reset is an epoch bump, not a clear — the BFS queue, rank-sorted
// vertex list and candidate CSR are grown once and reused, and the
// candidate is hashed during assembly and resolved against an
// Interner in scratch form. On an interner hit (the steady state of a
// homogeneous host, where few distinct types exist) an extraction
// performs no heap allocation at all; only a miss copies the ball out
// of the scratch and registers it.
//
// A Sweeper belongs to one goroutine. Whole-host scans hand each
// worker its own via par.ForScratch; see SweepMeasure and
// SweepMeasureAll.
type Sweeper struct {
	seen  graph.VisitStamp // visited set; slot = canonical ball index
	queue []int32          // ball vertices in BFS order (host ids)
	depth []int32          // parallel to queue: BFS distance from the centre
	verts []int32          // ball vertices sorted by rank (host ids)
	ints  []int            // verts as []int, for CanonicalBallVerts callers
	off   []int32          // candidate CSR row offsets
	nbr   []int32          // candidate CSR adjacency

	// Layered-sweep scratch (CanonicalBalls). The outermost ball is
	// described in BFS space — depths, adjacency over BFS indices, and
	// the rank permutation of the BFS indices — which is enough to
	// determine the canonical ball at every radius, yet is assembled
	// without any per-row sorting (host rows arrive in a fixed order)
	// and with one packed-integer sort for the permutation.
	keys  []uint64 // packed (rank << 21 | BFS index) sort keys
	perm  []int32  // rank position -> BFS index
	pos   []int32  // BFS index -> rank position (miss path)
	boff  []int32  // BFS-space adjacency row offsets
	bnbr  []int32  // BFS-space adjacency
	dpt   []int32  // depth of rank position p (miss path)
	lslot []int32  // rank position -> layer slot (-1 = outside)
	loff  []int32  // layer CSR row offsets
	lnbr  []int32  // layer CSR adjacency

	// Worker-local bundle cache: the BFS-space structure plus the rank
	// permutation determines the canonical ball at every radius, so
	// repeated local structures — almost every vertex of a homogeneous
	// host — resolve all rmax layers with one probe of this
	// goroutine-private map, no interner traffic at all. The cache is
	// keyed on structure only, so it survives host and rank changes;
	// it is flushed when the interner or rmax changes, since the
	// cached *Ball pointers belong to one interner. Size is capped at
	// maxBundles: on a heterogeneous host where nearly every vertex
	// has a unique layered neighbourhood a full cache stops admitting
	// entries (extractions stay correct, they just canonicalise each
	// time), bounding memory at O(maxBundles × ball footprint)
	// instead of O(host).
	bundles map[uint64][]*ballBundle
	nbund   int
	bin     *Interner
	brmax   int
}

// maxBundles caps the worker-local bundle cache of CanonicalBalls.
const maxBundles = 1 << 12

// ballBundle is one cached layered structure (in BFS space, exactly
// the fields the probe compares) and its per-radius canonical balls
// (balls[r-1] is the radius-r representative).
type ballBundle struct {
	depth []int32
	boff  []int32
	bnbr  []int32
	perm  []int32
	balls []*Ball
}

// NewSweeper returns an empty sweeper; its buffers are sized on first
// use and grow to the largest host swept.
func NewSweeper() *Sweeper { return &Sweeper{} }

// CanonicalBall extracts the canonical ordered neighbourhood
// τ(g, <, v) of radius r into the sweeper's scratch and resolves it
// against the interner, returning the canonical representative. The
// result is pointer-identical to in.Canon(CanonicalBall(g, rank, v, r))
// and, on an interner hit, is produced without allocating.
func (s *Sweeper) CanonicalBall(g *graph.Graph, rank Rank, v, r int, in *Interner) *Ball {
	s.sweep(g, rank, v, r)
	root := int(s.seen.Slot(int32(v)))
	s.off = append(s.off[:0], 0)
	s.nbr = s.nbr[:0]
	h := typeHashBegin(len(s.verts), root)
	for i, u := range s.verts {
		start := len(s.nbr)
		for _, w := range g.Neighbors(int(u)) {
			if s.seen.Visited(w) {
				s.nbr = append(s.nbr, s.seen.Slot(w))
			}
		}
		row := s.nbr[start:]
		slices.Sort(row)
		for _, j := range row {
			if int32(i) < j {
				h = typeHashEdge(h, i, int(j))
			}
		}
		s.off = append(s.off, int32(len(s.nbr)))
	}
	return in.canonScratch(h, root, s.off, s.nbr)
}

// bundleFold is the cheap polynomial fold of the bundle hash (FNV
// prime); the bucket compare verifies the full structure, so hash
// quality only affects chain length, and the per-entry cost matters
// more than avalanche.
const bundleFold = 0x100000001b3

// maxBallBits bounds the BFS index in the packed rank-sort keys: a
// single ball may hold at most 2^21 vertices, far beyond any
// feasible whole-host sweep.
const maxBallBits = 21

// CanonicalBalls is the layered multi-radius extraction: ONE radius-
// rmax BFS from v, then the canonical ordered ball at every radius
// r = 1..rmax (result[r-1]), each pointer-identical to what
// CanonicalBall(g, rank, v, r, in) returns.
//
// The extraction describes the outermost ball in BFS space: the depth
// vector, the adjacency over BFS indices (host rows arrive in a fixed
// deterministic order, so no per-row sorting happens here), and the
// rank permutation of the BFS indices, obtained by one packed-integer
// sort with no comparator closure. That triple determines the
// canonical ball at every radius r — layer membership from the
// depths, vertex order from the permutation, edges from the adjacency
// — and is hashed during assembly and resolved against a worker-local
// bundle cache. A vertex whose layered neighbourhood was seen before
// (the steady state of a homogeneous host) therefore gets all rmax
// representatives back with one map probe: no locking, no interner
// traffic, no allocation, and none of the canonical-form sorting the
// single-radius path pays. Only a new structure converts to rank
// space and canonicalises its layers against the interner
// (copy-on-miss, as CanonicalBall).
//
// The returned slice is shared cache state: callers must not modify
// it, but unlike the sweeper's other outputs it remains valid across
// extractions. rmax must be >= 1.
func (s *Sweeper) CanonicalBalls(g *graph.Graph, rank Rank, v, rmax int, in *Interner) []*Ball {
	if rmax < 1 {
		return nil
	}
	if s.bundles == nil || s.bin != in || s.brmax != rmax {
		s.bundles = make(map[uint64][]*ballBundle)
		s.nbund = 0
		s.bin, s.brmax = in, rmax
	}
	// Radius-rmax BFS; the visit slot is the BFS index.
	s.seen.Reset(g.N())
	s.queue = append(s.queue[:0], int32(v))
	s.depth = append(s.depth[:0], 0)
	s.seen.Visit(int32(v), 0)
	for head := 0; head < len(s.queue); head++ {
		u, du := s.queue[head], s.depth[head]
		if int(du) == rmax {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if !s.seen.Visited(w) {
				s.seen.Visit(w, int32(len(s.queue)))
				s.queue = append(s.queue, w)
				s.depth = append(s.depth, du+1)
			}
		}
	}
	k := len(s.queue)
	h := uint64(k)*bundleFold + uint64(rmax)
	for _, d := range s.depth {
		h = h*bundleFold + uint64(d)
	}
	// BFS-space adjacency: row qi lists the BFS indices of the in-ball
	// neighbours of queue[qi], in host-row order.
	s.boff = append(s.boff[:0], 0)
	s.bnbr = s.bnbr[:0]
	for qi := 0; qi < k; qi++ {
		for _, w := range g.Neighbors(int(s.queue[qi])) {
			if s.seen.Visited(w) {
				j := s.seen.Slot(w)
				s.bnbr = append(s.bnbr, j)
				h = h*bundleFold + uint64(qi)<<32 + uint64(j)
			}
		}
		s.boff = append(s.boff, int32(len(s.bnbr)))
	}
	if k >= 1<<maxBallBits {
		// The packed sort key below would overflow silently; no
		// feasible whole-host sweep extracts 2M-vertex balls.
		panic("order: CanonicalBalls ball exceeds 2^21 vertices")
	}
	// Rank permutation of the BFS indices, by packed-integer sort.
	s.keys = s.keys[:0]
	for qi, u := range s.queue {
		s.keys = append(s.keys, uint64(rank[u])<<maxBallBits|uint64(qi))
	}
	slices.Sort(s.keys)
	s.perm = s.perm[:0]
	for _, key := range s.keys {
		qi := int32(key & (1<<maxBallBits - 1))
		s.perm = append(s.perm, qi)
		h = h*bundleFold + uint64(qi)
	}
	h = mix64(h)
	for _, b := range s.bundles[h] {
		if slices.Equal(b.depth, s.depth) && slices.Equal(b.boff, s.boff) &&
			slices.Equal(b.bnbr, s.bnbr) && slices.Equal(b.perm, s.perm) {
			return b.balls
		}
	}
	balls := s.layerBalls(in, rmax)
	if s.nbund < maxBundles {
		s.bundles[h] = append(s.bundles[h], &ballBundle{
			depth: slices.Clone(s.depth),
			boff:  slices.Clone(s.boff),
			bnbr:  slices.Clone(s.bnbr),
			perm:  slices.Clone(s.perm),
			balls: balls,
		})
		s.nbund++
	}
	return balls
}

// layerBalls converts the BFS-space structure to rank space (the
// canonical vertex order) and canonicalises every layer 1..rmax
// against the interner. This is the bundle-miss path — it runs once
// per distinct layered structure.
func (s *Sweeper) layerBalls(in *Interner, rmax int) []*Ball {
	k := len(s.queue)
	if cap(s.pos) < k {
		s.pos = make([]int32, k)
	}
	s.pos = s.pos[:k]
	for p, qi := range s.perm {
		s.pos[qi] = int32(p)
	}
	s.dpt = s.dpt[:0]
	s.off = append(s.off[:0], 0)
	s.nbr = s.nbr[:0]
	for p := 0; p < k; p++ {
		qi := s.perm[p]
		s.dpt = append(s.dpt, s.depth[qi])
		start := len(s.nbr)
		for _, j := range s.bnbr[s.boff[qi]:s.boff[qi+1]] {
			s.nbr = append(s.nbr, s.pos[j])
		}
		slices.Sort(s.nbr[start:])
		s.off = append(s.off, int32(len(s.nbr)))
	}
	root := int(s.pos[0])
	balls := make([]*Ball, rmax)
	for r := 1; r <= rmax; r++ {
		balls[r-1] = s.layerBall(in, root, r)
	}
	return balls
}

// layerBall canonicalises the depth<=r layer of the rank-space
// structure layerBalls assembled: rank positions are re-numbered
// monotonically (so rows stay sorted), the layer CSR is assembled in
// scratch with the incremental type hash, and the interner is probed
// in scratch form — exactly the spelling CanonicalBall uses, which is
// what makes the two paths pointer-identical.
func (s *Sweeper) layerBall(in *Interner, root, r int) *Ball {
	s.lslot = s.lslot[:0]
	n := 0
	for _, d := range s.dpt {
		if int(d) <= r {
			s.lslot = append(s.lslot, int32(n))
			n++
		} else {
			s.lslot = append(s.lslot, -1)
		}
	}
	lroot := int(s.lslot[root])
	h := typeHashBegin(n, lroot)
	s.loff = append(s.loff[:0], 0)
	s.lnbr = s.lnbr[:0]
	for i := range s.dpt {
		li := s.lslot[i]
		if li < 0 {
			continue
		}
		for _, j := range s.nbr[s.off[i]:s.off[i+1]] {
			lj := s.lslot[j]
			if lj < 0 {
				continue
			}
			s.lnbr = append(s.lnbr, lj)
			if li < lj {
				h = typeHashEdge(h, int(li), int(lj))
			}
		}
		s.loff = append(s.loff, int32(len(s.lnbr)))
	}
	return in.canonScratch(h, lroot, s.loff, s.lnbr)
}

// CanonicalBallVerts is CanonicalBall additionally returning the host
// vertex named by each canonical ball index (verts[i] is the host
// vertex of ball vertex i). The slice is the sweeper's scratch: it is
// valid until the next extraction on this sweeper and must be copied
// if retained.
func (s *Sweeper) CanonicalBallVerts(g *graph.Graph, rank Rank, v, r int, in *Interner) (*Ball, []int) {
	b := s.CanonicalBall(g, rank, v, r, in)
	s.ints = s.ints[:0]
	for _, u := range s.verts {
		s.ints = append(s.ints, int(u))
	}
	return b, s.ints
}

// sweep runs the radius-r BFS from v, leaving the ball's vertices
// rank-sorted in s.verts and each one's canonical index in the
// visited set's slot.
func (s *Sweeper) sweep(g *graph.Graph, rank Rank, v, r int) {
	s.seen.Reset(g.N())
	s.queue = append(s.queue[:0], int32(v))
	s.depth = append(s.depth[:0], 0)
	s.seen.Visit(int32(v), 0)
	for head := 0; head < len(s.queue); head++ {
		u, du := s.queue[head], s.depth[head]
		if int(du) == r {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if !s.seen.Visited(w) {
				s.seen.Visit(w, 0) // slot assigned after the sort
				s.queue = append(s.queue, w)
				s.depth = append(s.depth, du+1)
			}
		}
	}
	s.verts = append(s.verts[:0], s.queue...)
	slices.SortFunc(s.verts, func(a, b int32) int { return rank[a] - rank[b] })
	for i, u := range s.verts {
		s.seen.SetSlot(u, int32(i))
	}
}

// SweepMeasure computes the homogeneity of (g, rank) at radius r by a
// batched whole-host sweep: each parallel worker owns one Sweeper and
// one local count map (par.ForScratchMerge), every vertex's ball is
// assembled in scratch and resolved against one shared interner
// copy-on-miss, and the per-worker counts are merged after the join —
// no per-vertex result slots, no O(n) sequential tally pass. The
// result is identical to the retained per-vertex reference
// MeasureReference at every parallelism level — a property the
// differential tests pin down — while the steady-state per-vertex
// allocation count is zero.
func SweepMeasure(g *graph.Graph, rank Rank, r int) Homogeneity {
	return SweepMeasureInto(NewInterner(), g, rank, r)
}

// radiusTally is the worker-local tallying scratch of SweepMeasure:
// one sweeper and one count map per worker.
type radiusTally struct {
	sw     *Sweeper
	counts map[*Ball]int
}

// SweepMeasureInto is SweepMeasure over a caller-supplied interner, so
// callers (and tests) can compare interned pointers across measurement
// strategies — homog's exact scan counts its τ* ball this way.
func SweepMeasureInto(in *Interner, g *graph.Graph, rank Rank, r int) Homogeneity {
	n := g.N()
	merged := make(map[*Ball]int)
	par.ForScratchMerge(n,
		func() *radiusTally {
			return &radiusTally{sw: NewSweeper(), counts: make(map[*Ball]int)}
		},
		func(v int, t *radiusTally) {
			t.counts[t.sw.CanonicalBall(g, rank, v, r, in)]++
		},
		func(t *radiusTally) {
			for b, c := range t.counts {
				merged[b] += c
			}
		})
	return tallyCounts(n, merged)
}

// SweepMeasureAll computes the homogeneity of (g, rank) at every
// radius r = 1..rmax (result[r-1]) in a single whole-host pass: one
// BFS per vertex (Sweeper.CanonicalBalls), one shared interner, and
// worker-local count maps per radius merged after the join. Each
// entry is identical — same counts, and the same interned majority
// *Ball when probed through a shared interner — to a separate
// SweepMeasure call at that radius, which is what the differential
// tests pin down; the layered pass just stops paying for rmax
// redundant BFS traversals and rank sorts per vertex.
func SweepMeasureAll(g *graph.Graph, rank Rank, rmax int) []Homogeneity {
	return SweepMeasureAllInto(NewInterner(), g, rank, rmax)
}

// sweepTally is the worker-local tallying scratch of SweepMeasureAll:
// one sweeper and one count map per radius per worker, plus this
// worker's processed-vertex counter driving the cancellation poll.
type sweepTally struct {
	sw     *Sweeper
	counts []map[*Ball]int
	done   int
}

// sweepPollMask throttles the cancellation poll of cancellable
// sweeps: each worker checks ctx.Err() once per 64 vertices
// processed, so the poll never shows up next to the BFS cost of a
// single extraction.
const sweepPollMask = 63

// SweepMeasureAllInto is SweepMeasureAll over a caller-supplied
// interner (see SweepMeasureInto). rmax < 1 yields nil.
func SweepMeasureAllInto(in *Interner, g *graph.Graph, rank Rank, rmax int) []Homogeneity {
	out, _ := sweepMeasureAll(nil, in, g, rank, rmax)
	return out
}

// SweepMeasureAllCtx is SweepMeasureAll under cooperative
// cancellation: every sweep worker polls ctx.Err() once per 64
// vertices and a cancelled or deadline-expired context makes all
// workers stop claiming vertices, so the whole scan winds down within
// one poll interval per worker and its par slots return to the
// budget. On cancellation the partial tallies are discarded and the
// error wraps ctx.Err() (errors.Is-able against
// context.DeadlineExceeded). This is the service layer's deadline
// hook for homogeneity measurement, where a 10^6-node sweep must be
// abandonable mid-scan.
func SweepMeasureAllCtx(ctx context.Context, g *graph.Graph, rank Rank, rmax int) ([]Homogeneity, error) {
	return SweepMeasureAllIntoCtx(ctx, NewInterner(), g, rank, rmax)
}

// SweepMeasureAllIntoCtx is SweepMeasureAllCtx over a caller-supplied
// interner.
func SweepMeasureAllIntoCtx(ctx context.Context, in *Interner, g *graph.Graph, rank Rank, rmax int) ([]Homogeneity, error) {
	return sweepMeasureAll(ctx, in, g, rank, rmax)
}

// sweepMeasureAll is the shared core of the layered whole-host sweep.
// A nil ctx disarms cancellation entirely — the uncancellable
// entry points pay nothing for the hook but one nil check per vertex.
func sweepMeasureAll(ctx context.Context, in *Interner, g *graph.Graph, rank Rank, rmax int) ([]Homogeneity, error) {
	if rmax < 1 {
		return nil, nil
	}
	n := g.N()
	merged := make([]map[*Ball]int, rmax)
	for r := range merged {
		merged[r] = make(map[*Ball]int)
	}
	// stop is the shared kill switch: the first worker to observe a
	// dead context raises it, and every worker checks it before each
	// vertex, so cancellation propagates without any worker having to
	// touch the (mutex-guarded) context on the per-vertex fast path.
	var stop atomic.Bool
	par.ForScratchMerge(n,
		func() *sweepTally {
			t := &sweepTally{sw: NewSweeper(), counts: make([]map[*Ball]int, rmax)}
			for r := range t.counts {
				t.counts[r] = make(map[*Ball]int)
			}
			return t
		},
		func(v int, t *sweepTally) {
			if ctx != nil {
				if stop.Load() {
					return
				}
				if t.done&sweepPollMask == 0 && ctx.Err() != nil {
					stop.Store(true)
					return
				}
				t.done++
			}
			for r, b := range t.sw.CanonicalBalls(g, rank, v, rmax, in) {
				t.counts[r][b]++
			}
		},
		func(t *sweepTally) {
			for r, counts := range t.counts {
				for b, c := range counts {
					merged[r][b] += c
				}
			}
		})
	if stop.Load() {
		return nil, fmt.Errorf("order: sweep cancelled: %w", ctx.Err())
	}
	out := make([]Homogeneity, rmax)
	for r := range out {
		out[r] = tallyCounts(n, merged[r])
	}
	return out, nil
}

// tally merges a vertex-ordered slice of canonical balls into the
// Homogeneity result (the spelling the per-vertex reference
// measurement uses; the sweep entries tally worker-locally and merge).
func tally(balls []*Ball) Homogeneity {
	counts := make(map[*Ball]int)
	for _, b := range balls {
		counts[b]++
	}
	return tallyCounts(len(balls), counts)
}

// tallyCounts selects the majority type from a merged count map. Ties
// break deterministically on the canonical encoding; the running
// majority's encoding is cached across the scan, so each tie costs one
// Encode (the candidate's), not two, and the winning encoding is
// reused for the Type field instead of being rendered again.
func tallyCounts(n int, counts map[*Ball]int) Homogeneity {
	h := Homogeneity{N: n, Counts: counts}
	majEnc := ""
	for b, c := range counts {
		switch {
		case c > h.Count:
			h.Count, h.Majority, majEnc = c, b, ""
		case c == h.Count && h.Majority != nil:
			if majEnc == "" {
				majEnc = h.Majority.Encode()
			}
			if e := b.Encode(); e < majEnc {
				h.Majority, majEnc = b, e
			}
		}
	}
	if h.Majority != nil {
		if majEnc == "" {
			majEnc = h.Majority.Encode()
		}
		h.Type = majEnc
	}
	if n > 0 {
		h.Alpha = float64(h.Count) / float64(n)
	}
	return h
}
