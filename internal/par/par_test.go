package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	defer Set(Set(8))
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestForScratchMergeTallies pins the worker-local tallying contract:
// every index is counted exactly once across all merged scratches, at
// parallelism 1 and 8, and with p=1 exactly one scratch participates.
func TestForScratchMergeTallies(t *testing.T) {
	for _, p := range []int{1, 8} {
		defer Set(Set(p))
		for _, n := range []int{0, 1, 7, 500} {
			total := 0
			scratches := 0
			ForScratchMerge(n,
				func() *[]int { s := make([]int, 0, n); return &s },
				func(i int, s *[]int) { *s = append(*s, i) },
				func(s *[]int) {
					scratches++
					total += len(*s)
					seen := make(map[int]bool)
					for _, i := range *s {
						if i < 0 || i >= n || seen[i] {
							t.Fatalf("p=%d n=%d: bad or duplicate index %d in one scratch", p, n, i)
						}
						seen[i] = true
					}
				})
			if total != n {
				t.Fatalf("p=%d n=%d: merged %d indices", p, n, total)
			}
			if p == 1 && n > 0 && scratches != 1 {
				t.Fatalf("sequential fallback used %d scratches", scratches)
			}
		}
	}
}

func TestForSequentialFallback(t *testing.T) {
	defer Set(Set(1))
	// With parallelism 1 the indices must arrive in increasing order on
	// the calling goroutine.
	var got []int
	For(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", got)
		}
	}
}

func TestSetClamps(t *testing.T) {
	old := Set(3)
	defer Set(old)
	if N() != 3 {
		t.Fatalf("N=%d want 3", N())
	}
	Set(0) // resets to NumCPU
	if N() < 1 {
		t.Fatalf("N=%d after reset", N())
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer Set(Set(4))
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestMap(t *testing.T) {
	defer Set(Set(4))
	out := Map(10, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d]=%d", i, v)
		}
	}
}
