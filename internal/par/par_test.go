package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	defer Set(Set(8))
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForSequentialFallback(t *testing.T) {
	defer Set(Set(1))
	// With parallelism 1 the indices must arrive in increasing order on
	// the calling goroutine.
	var got []int
	For(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", got)
		}
	}
}

func TestSetClamps(t *testing.T) {
	old := Set(3)
	defer Set(old)
	if N() != 3 {
		t.Fatalf("N=%d want 3", N())
	}
	Set(0) // resets to NumCPU
	if N() < 1 {
		t.Fatalf("N=%d after reset", N())
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer Set(Set(4))
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestMap(t *testing.T) {
	defer Set(Set(4))
	out := Map(10, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d]=%d", i, v)
		}
	}
}
