package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	defer Set(Set(8))
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

// TestForScratchMergeTallies pins the worker-local tallying contract:
// every index is counted exactly once across all merged scratches, at
// parallelism 1 and 8, and with p=1 exactly one scratch participates.
func TestForScratchMergeTallies(t *testing.T) {
	for _, p := range []int{1, 8} {
		defer Set(Set(p))
		for _, n := range []int{0, 1, 7, 500} {
			total := 0
			scratches := 0
			ForScratchMerge(n,
				func() *[]int { s := make([]int, 0, n); return &s },
				func(i int, s *[]int) { *s = append(*s, i) },
				func(s *[]int) {
					scratches++
					total += len(*s)
					seen := make(map[int]bool)
					for _, i := range *s {
						if i < 0 || i >= n || seen[i] {
							t.Fatalf("p=%d n=%d: bad or duplicate index %d in one scratch", p, n, i)
						}
						seen[i] = true
					}
				})
			if total != n {
				t.Fatalf("p=%d n=%d: merged %d indices", p, n, total)
			}
			if p == 1 && n > 0 && scratches != 1 {
				t.Fatalf("sequential fallback used %d scratches", scratches)
			}
		}
	}
}

func TestForSequentialFallback(t *testing.T) {
	defer Set(Set(1))
	// With parallelism 1 the indices must arrive in increasing order on
	// the calling goroutine.
	var got []int
	For(5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential fallback out of order: %v", got)
		}
	}
}

func TestSetClamps(t *testing.T) {
	old := Set(3)
	defer Set(old)
	if N() != 3 {
		t.Fatalf("N=%d want 3", N())
	}
	Set(0) // resets to NumCPU
	if N() < 1 {
		t.Fatalf("N=%d after reset", N())
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer Set(Set(4))
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	For(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestMap(t *testing.T) {
	defer Set(Set(4))
	out := Map(10, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d]=%d", i, v)
		}
	}
}

// TestReserveReleaseRoundTrip pins budget accounting: Reserve claims
// at most N()-1 slots, InUse tracks them, and Release restores 0.
func TestReserveReleaseRoundTrip(t *testing.T) {
	defer Set(Set(4))
	if got := InUse(); got != 0 {
		t.Fatalf("InUse=%d before reserving", got)
	}
	got := Reserve(10)
	if got != 3 {
		t.Fatalf("Reserve(10)=%d with knob 4, want 3", got)
	}
	if InUse() != got {
		t.Fatalf("InUse=%d after Reserve(%d)", InUse(), got)
	}
	Release(got)
	if InUse() != 0 {
		t.Fatalf("InUse=%d after Release", InUse())
	}
}

// TestReleaseWithoutReserve pins the misuse hazard: handing back
// slots that were never reserved must panic with a diagnostic, not
// silently widen the budget.
func TestReleaseWithoutReserve(t *testing.T) {
	defer Set(Set(4))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Release without Reserve did not panic")
		}
		if msg, ok := r.(string); !ok || !containsAll(msg, "par: Release(1)", "double Release") {
			t.Fatalf("panic message %v lacks the diagnostic", r)
		}
	}()
	Release(1)
}

// TestDoubleRelease pins the other half of the hazard: releasing the
// same reservation twice trips the panic on the second call.
func TestDoubleRelease(t *testing.T) {
	defer Set(Set(4))
	got := Reserve(2)
	if got != 2 {
		t.Fatalf("Reserve(2)=%d", got)
	}
	Release(got)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	Release(got)
}

// TestReleaseZeroNoop: Release(0) and negative counts are no-ops, so
// engines that reserved nothing can release unconditionally.
func TestReleaseZeroNoop(t *testing.T) {
	Release(0)
	Release(-3)
	if InUse() != 0 {
		t.Fatalf("InUse=%d after no-op releases", InUse())
	}
}

// TestCatchConvertsWorkerPanic: a panic raised inside a parallel
// worker is re-raised on the caller and converted by Catch into a
// *PanicError carrying the value and a stack, with the budget intact.
func TestCatchConvertsWorkerPanic(t *testing.T) {
	defer Set(Set(4))
	err := Catch(func() {
		For(64, func(i int) {
			if i == 13 {
				panic("poisoned request")
			}
		})
	})
	var pe *PanicError
	if !errorsAs(err, &pe) {
		t.Fatalf("Catch returned %v, want *PanicError", err)
	}
	if pe.Val != "poisoned request" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError val=%v stack=%d bytes", pe.Val, len(pe.Stack))
	}
	if InUse() != 0 {
		t.Fatalf("InUse=%d after recovered panic", InUse())
	}
	if err := Catch(func() {}); err != nil {
		t.Fatalf("Catch of clean fn returned %v", err)
	}
}

// TestCatchPassesThroughPanicError: a *PanicError re-thrown through a
// nested Catch is returned as-is, not double-wrapped.
func TestCatchPassesThroughPanicError(t *testing.T) {
	inner := &PanicError{Val: "x"}
	err := Catch(func() { panic(inner) })
	if err != inner {
		t.Fatalf("got %v, want the inner *PanicError unchanged", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

func errorsAs(err error, target **PanicError) bool {
	return errors.As(err, target)
}
