// Package par is the repo-wide parallel execution layer: a single
// process-wide parallelism knob plus a small deterministic fork-join
// helper used by the embarrassingly parallel scans (homogeneity
// measurement, view gathering, lift classification, the experiment
// suite).
//
// Design rules, enforced by the callers:
//
//   - work is always indexed 0..n-1 and each index writes only its own
//     result slot, so the merge order is fixed by the index, never by
//     goroutine scheduling — parallel and sequential runs are
//     byte-identical;
//   - any randomness is drawn sequentially *before* the fork, so RNG
//     streams do not depend on the schedule;
//   - Set(1) is the sequential fallback: For degenerates to a plain
//     loop with no goroutines at all.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// limit is the current parallelism knob (number of workers For may
// spawn). It is process-wide: the library's scans are data-parallel
// over disjoint slots, so one global knob suffices.
var limit atomic.Int64

// extra counts worker goroutines currently alive across all For calls.
// For reserves extras from a process-wide budget of N()-1, so nested
// calls (an experiment scan inside the experiment-suite fan-out)
// degrade to inline execution instead of multiplying worker counts:
// the knob bounds total workers, not workers per call.
var extra atomic.Int64

func init() {
	limit.Store(int64(runtime.NumCPU()))
}

// Set sets the parallelism knob and returns the previous value.
// n <= 0 resets to runtime.NumCPU(); n == 1 forces the sequential
// fallback everywhere.
func Set(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return int(limit.Swap(int64(n)))
}

// N returns the current parallelism knob.
func N() int { return int(limit.Load()) }

// For runs fn(i) for every i in [0, n) on the calling goroutine plus
// up to N()-1 extra workers, reserved from a process-wide budget so
// that nested For calls never oversubscribe: total workers across all
// concurrent calls stay bounded by the knob, and a For issued from
// inside another For's worker runs inline. Indices are handed out
// dynamically (work stealing via a shared counter), so callers must
// make fn(i) touch only state owned by index i. With N() == 1, or
// n <= 1, or an exhausted budget, fn runs inline on the calling
// goroutine in increasing index order.
//
// A panic in any fn is re-raised on the calling goroutine after all
// workers have stopped.
func For(n int, fn func(i int)) {
	ForScratch(n,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) { fn(i) })
}

// ForScratch is For with worker-local scratch state: mk runs once on
// every participating goroutine (the caller included) and fn receives
// that goroutine's scratch value alongside the index. Expensive
// reusable buffers — ball sweepers, view-build scratch — are thereby
// allocated once per worker instead of once per index. The ownership
// rule extends naturally: fn(i, s) may touch s and state owned by
// index i, nothing else; a scratch value is never shared between two
// goroutines. Scheduling, the worker budget, determinism and panic
// propagation are exactly as in For.
func ForScratch[S any](n int, mk func() S, fn func(i int, s S)) {
	want := int(limit.Load()) - 1
	if want > n-1 {
		want = n - 1
	}
	spawn := reserve(want)
	if spawn <= 0 {
		s := mk()
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		return
	}
	defer extra.Add(-int64(spawn))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		s := mk()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i, s)
		}
	}
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the calling goroutine participates
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForScratchMerge is ForScratch with a post-join merge: after every
// index is done, merge runs once per scratch value that participated,
// sequentially on the calling goroutine. This is the worker-local
// tallying idiom of the sweep engine — each worker accumulates counts
// into its own scratch (no shared map, no locks on the scan path) and
// the small per-worker results are combined after the join, replacing
// an O(n) sequential pass over per-index result slots.
//
// Scratch values are merged in the order the workers registered,
// which depends on goroutine scheduling: merge must therefore be
// commutative and associative (count accumulation is) for the final
// result to be deterministic. With N() == 1 exactly one scratch is
// created and merged, so the sequential fallback is the plain loop
// plus one merge call.
func ForScratchMerge[S any](n int, mk func() S, fn func(i int, s S), merge func(s S)) {
	var (
		mu  sync.Mutex
		all []S
	)
	ForScratch(n,
		func() S {
			s := mk()
			mu.Lock()
			all = append(all, s)
			mu.Unlock()
			return s
		},
		fn)
	for _, s := range all {
		merge(s)
	}
}

// Reserve claims up to want extra-worker slots from the process-wide
// budget of N()-1 and returns how many it got; the caller must hand
// every claimed slot back with Release. It exists for engines that
// manage their own persistent workers (model.Engine keeps one
// goroutine per slot alive across a whole run instead of forking per
// round) while still respecting the global knob: For, ForScratch and
// Reserve all draw from the one budget, so nested use degrades to
// inline execution instead of oversubscribing.
func Reserve(want int) int {
	if want <= 0 {
		return 0
	}
	return reserve(want)
}

// Release returns n slots claimed by Reserve to the budget. Handing
// back more slots than are currently reserved — a double Release, or
// a Release without a matching Reserve — would silently widen the
// budget and let every later For/Reserve oversubscribe the knob, so
// it panics with a diagnostic instead. The check is process-global
// (the budget is), so it is best-effort: over-releasing while another
// caller still holds slots consumes theirs and trips the panic at
// their Release instead — but the corruption is always caught before
// the budget goes negative.
func Release(n int) {
	if n <= 0 {
		return
	}
	for {
		cur := extra.Load()
		if int64(n) > cur {
			panic(fmt.Sprintf(
				"par: Release(%d) with only %d extra-worker slots reserved — double Release or Release without Reserve",
				n, cur))
		}
		if extra.CompareAndSwap(cur, cur-int64(n)) {
			return
		}
	}
}

// InUse returns the number of extra-worker slots currently reserved
// across the whole process (by For/ForScratch calls in flight and by
// engines holding persistent workers). It is the worker-budget
// occupancy gauge of the service layer's metrics endpoint: a server
// at rest reports 0, and a cancelled run that failed to hand its
// workers back shows up as occupancy stuck above 0.
func InUse() int { return int(extra.Load()) }

// PanicError is a panic converted to an error by Catch: the recovered
// value plus the stack at the recovery point. It is the "stamped
// error" one poisoned request turns into in the service layer, where
// a handler must answer 500 and keep the process serving.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value and the captured stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.Val, e.Stack)
}

// Catch runs fn and converts a panic into a *PanicError instead of
// letting it unwind further. Because For, ForScratch and the round
// engine's persistent workers all re-raise worker panics on the
// calling goroutine after joining, wrapping the call site in Catch
// isolates a poisoned parallel computation completely: the workers
// have already stopped, the budget has been handed back by the
// callee's defers, and the caller gets an error where the process
// would have died. A *PanicError raised inside fn (e.g. re-thrown by
// a nested Catch) is returned as-is rather than double-wrapped.
func Catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// reserve claims up to want extra-worker slots from the global budget
// of N()-1 and returns how many it got.
func reserve(want int) int {
	got := 0
	for got < want {
		cur := extra.Load()
		free := limit.Load() - 1 - cur
		if free <= 0 {
			break
		}
		take := int64(want - got)
		if take > free {
			take = free
		}
		if extra.CompareAndSwap(cur, cur+take) {
			got += int(take)
		}
	}
	return got
}

// Map runs fn over [0, n) in parallel and collects the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}
