package digraph

import (
	"fmt"
	"strings"
)

// DOT renders the L-digraph in Graphviz format, labelling arcs with
// their labels. The optional name function may be nil (vertex indices
// are used).
func (d *Digraph) DOT(graphName string, name func(v int) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", graphName)
	for v := 0; v < d.n; v++ {
		if name != nil {
			fmt.Fprintf(&sb, "  %d [label=%q];\n", v, name(v))
		} else {
			fmt.Fprintf(&sb, "  %d;\n", v)
		}
	}
	for v := 0; v < d.n; v++ {
		for _, a := range d.Out(v) {
			fmt.Fprintf(&sb, "  %d -> %d [label=\"%d\"];\n", v, a.To, a.Label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
