package digraph

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

// As in graph's capacity regressions, over-capacity inputs are staged
// with aliased rows and synthetic offset arrays so no test allocates
// anywhere near 2^31 real entries.

func wantCapacityErr(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected flat-CSR capacity error, got nil", what)
	}
	msg := err.Error()
	if !strings.Contains(msg, "use shards") || !strings.Contains(msg, "flat-CSR capacity") {
		t.Fatalf("%s: error does not name the capacity bound and the shard escape hatch: %v", what, err)
	}
}

func TestNewBuilderVertexCapacity(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewBuilder: expected flat-CSR capacity panic, got none")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("NewBuilder: panic value is %T, want error: %v", r, r)
		}
		wantCapacityErr(t, err, "NewBuilder")
	}()
	NewBuilder(int(graph.FlatCapacity)+1, 2)
}

func TestFlattenArcsCapacity(t *testing.T) {
	shared := make([]Arc, 1<<21)
	rows := make([][]Arc, 1024) // 1024 x 2^21 = 2^31 logical arcs
	for i := range rows {
		rows[i] = shared
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("flattenArcs: expected flat-CSR capacity panic, got none")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("flattenArcs: panic value is %T, want error: %v", r, r)
		}
		wantCapacityErr(t, err, "flattenArcs")
	}()
	flattenArcs(rows)
}

func TestUnderlyingArcCapacity(t *testing.T) {
	// Synthetic offsets: each direction individually fits int32, but
	// the undirected CSR needs their sum, which does not. The guard
	// must fire before the arc arrays are touched (they are nil here).
	d := &Digraph{
		n:      2,
		outOff: []int32{0, 0, 1 << 30},
		inOff:  []int32{0, 0, 1 << 30},
	}
	_, err := d.Underlying()
	wantCapacityErr(t, err, "Underlying")
}
