package digraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBuilderProperLabelling(t *testing.T) {
	b := NewBuilder(3, 2)
	if err := b.AddArc(0, 1, 0); err != nil {
		t.Fatalf("valid arc rejected: %v", err)
	}
	if err := b.AddArc(0, 2, 0); err == nil {
		t.Error("duplicate out-label accepted")
	}
	if err := b.AddArc(2, 1, 0); err == nil {
		t.Error("duplicate in-label accepted")
	}
	if err := b.AddArc(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddArc(0, 1, 5); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := b.AddArc(0, 1, 1); err != nil {
		t.Errorf("second label on same pair should be allowed: %v", err)
	}
}

func TestDigraphAccessors(t *testing.T) {
	b := NewBuilder(3, 2)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(1, 2, 0)
	b.MustAddArc(2, 0, 1)
	d := b.Build()
	if d.N() != 3 || d.Alphabet() != 2 || d.Arcs() != 3 {
		t.Fatalf("bad accessors: %v", d)
	}
	if a, ok := d.OutArc(0, 0); !ok || a.To != 1 {
		t.Error("OutArc wrong")
	}
	if _, ok := d.OutArc(0, 1); ok {
		t.Error("phantom out arc")
	}
	if a, ok := d.InArc(0, 1); !ok || a.To != 2 {
		t.Error("InArc wrong")
	}
	if d.Degree(0) != 2 {
		t.Errorf("degree(0) = %d, want 2", d.Degree(0))
	}
	u, err := d.Underlying()
	if err != nil {
		t.Fatalf("underlying: %v", err)
	}
	if u.N() != 3 || u.M() != 3 {
		t.Error("underlying graph wrong")
	}
}

func TestUnderlyingRejectsParallel(t *testing.T) {
	b := NewBuilder(2, 2)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(0, 1, 1)
	if _, err := b.Build().Underlying(); err == nil {
		t.Error("parallel arcs should make Underlying fail")
	}
}

// directedCycle returns the n-cycle directed around, one label.
func directedCycle(n int) *Digraph {
	b := NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	return b.Build()
}

func TestFromPorts(t *testing.T) {
	g := graph.Cycle(4)
	p := FromPorts(g, nil)
	if p.D.N() != 4 || p.D.Arcs() != 4 {
		t.Fatalf("ported C4: %v", p.D)
	}
	u, err := p.D.Underlying()
	if err != nil {
		t.Fatalf("underlying: %v", err)
	}
	if u.M() != g.M() {
		t.Error("port numbering must preserve the edge set")
	}
	// Every arc label decodes to a valid port pair.
	for v := 0; v < p.D.N(); v++ {
		for _, a := range p.D.Out(v) {
			pl := p.Labels[a.Label]
			if int(g.Neighbors(v)[pl.I-1]) != a.To || int(g.Neighbors(a.To)[pl.J-1]) != v {
				t.Fatalf("label %v inconsistent for arc %d->%d", pl, v, a.To)
			}
		}
	}
}

func TestFromPortsProperOnVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*graph.Graph{
		graph.Cycle(9),
		graph.Complete(6),
		graph.Petersen(),
		graph.Torus(4, 4),
		graph.RandomRegular(12, 3, rng),
		graph.Star(5),
	}
	for _, g := range graphs {
		p := FromPorts(g, nil)
		u, err := p.D.Underlying()
		if err != nil {
			t.Fatalf("underlying: %v", err)
		}
		if u.M() != g.M() || u.N() != g.N() {
			t.Errorf("edge set not preserved for %v", g)
		}
	}
}

func TestEulerianOrientation(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(7),
		graph.Torus(4, 5),
		graph.Complete(5), // 4-regular
		graph.Circulant(11, 1, 2),
	} {
		orient, err := EulerianOrientation(g)
		if err != nil {
			t.Fatalf("EulerianOrientation(%v): %v", g, err)
		}
		outdeg := make([]int, g.N())
		indeg := make([]int, g.N())
		for _, e := range g.Edges() {
			if orient(e) {
				outdeg[e.U]++
				indeg[e.V]++
			} else {
				outdeg[e.V]++
				indeg[e.U]++
			}
		}
		for v := 0; v < g.N(); v++ {
			if outdeg[v] != indeg[v] {
				t.Errorf("%v: vertex %d has outdeg %d indeg %d", g, v, outdeg[v], indeg[v])
			}
		}
	}
	if _, err := EulerianOrientation(graph.Path(3)); err == nil {
		t.Error("odd-degree graph should be rejected")
	}
}

func TestVerifyCovering(t *testing.T) {
	// The 6-cycle covers the 3-cycle (directed, single label).
	h := directedCycle(6)
	g := directedCycle(3)
	phi := FibreMap{0, 1, 2, 0, 1, 2}
	if err := VerifyCovering(h, g, phi); err != nil {
		t.Errorf("C6 -> C3 should be a covering: %v", err)
	}
	// A wrong map is rejected.
	bad := FibreMap{0, 1, 2, 0, 2, 1}
	if err := VerifyCovering(h, g, bad); err == nil {
		t.Error("invalid covering accepted")
	}
	// Not onto is rejected: map C6 to C6 identity but claim target C3... use same-size case.
	if err := VerifyCovering(h, h, FibreMap{0, 1, 2, 3, 4, 5}); err != nil {
		t.Errorf("identity should be a covering: %v", err)
	}
	if err := VerifyCovering(h, h, FibreMap{0, 1, 2, 3, 4, 3}); err == nil {
		t.Error("non-onto non-homomorphism accepted")
	}
	fib := Fibres(3, phi)
	for i, f := range fib {
		if len(f) != 2 {
			t.Errorf("fibre %d has size %d, want 2", i, len(f))
		}
	}
}

func TestBallDirectedCycle(t *testing.T) {
	d := directedCycle(10)
	ball := Ball[int](d, 0, 2)
	if len(ball.Nodes) != 5 {
		t.Fatalf("|B(0,2)| = %d, want 5", len(ball.Nodes))
	}
	if ball.Root != 0 || ball.Nodes[0] != 0 {
		t.Error("root must be first")
	}
	if ball.D.Arcs() != 4 {
		t.Errorf("ball arcs = %d, want 4", ball.D.Arcs())
	}
	for i, v := range ball.Nodes {
		if ball.Index[v] != i {
			t.Error("Index inconsistent with Nodes")
		}
	}
	// Distances: 0,1,1,2,2 in BFS order.
	wantDist := map[int]int{0: 0, 1: 1, 9: 1, 2: 2, 8: 2}
	for i, v := range ball.Nodes {
		if ball.Dist[i] != wantDist[v] {
			t.Errorf("dist[%d (orig %d)] = %d, want %d", i, v, ball.Dist[i], wantDist[v])
		}
	}
}

func TestBallIncludesCrossArcs(t *testing.T) {
	// Directed triangle: radius-1 ball around 0 is the whole triangle,
	// including the arc 1->2 between two boundary nodes.
	d := directedCycle(3)
	ball := Ball[int](d, 0, 1)
	if len(ball.Nodes) != 3 {
		t.Fatalf("ball size %d", len(ball.Nodes))
	}
	if ball.D.Arcs() != 3 {
		t.Errorf("ball should keep all 3 arcs, got %d", ball.D.Arcs())
	}
}

func TestMaterialize(t *testing.T) {
	d := directedCycle(8)
	m, nodes, index, err := Materialize[int](d, []int{3}, 100)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if m.N() != 8 || m.Arcs() != 8 {
		t.Fatalf("materialised C8 wrong: %v", m)
	}
	if len(nodes) != 8 || index[3] != 0 {
		t.Error("node bookkeeping wrong")
	}
	if _, _, _, err := Materialize[int](d, []int{0}, 4); err == nil {
		t.Error("materialize should fail when exceeding maxNodes")
	}
}

func TestUndirectedGirth(t *testing.T) {
	if g := UndirectedGirth[int](directedCycle(5), []int{0}, 10); g != 5 {
		t.Errorf("C5 girth = %d, want 5", g)
	}
	if g := UndirectedGirth[int](directedCycle(4), []int{0}, 3); g != -1 {
		t.Errorf("C4 girth within maxLen 3 = %d, want -1", g)
	}
	// Parallel arcs u->v with different labels: girth 2.
	b := NewBuilder(2, 2)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(0, 1, 1)
	if g := UndirectedGirth[int](b.Build(), []int{0}, 5); g != 2 {
		t.Errorf("parallel arcs girth = %d, want 2", g)
	}
	// A single arc back and forth is backtracking, not a cycle.
	b2 := NewBuilder(2, 1)
	b2.MustAddArc(0, 1, 0)
	if g := UndirectedGirth[int](b2.Build(), []int{0}, 6); g != -1 {
		t.Errorf("single edge girth = %d, want -1", g)
	}
	// Two arcs in opposite directions with the same label: a 2-cycle.
	b3 := NewBuilder(2, 1)
	b3.MustAddArc(0, 1, 0)
	b3.MustAddArc(1, 0, 0)
	if g := UndirectedGirth[int](b3.Build(), []int{0}, 6); g != 2 {
		t.Errorf("anti-parallel arcs girth = %d, want 2", g)
	}
}

// Property: for port-numbered cycles, UndirectedGirth matches graph.Girth.
func TestQuickGirthAgreement(t *testing.T) {
	f := func(k uint8) bool {
		n := 3 + int(k)%20
		g := graph.Cycle(n)
		p := FromPorts(g, nil)
		return UndirectedGirth[int](p.D, []int{0}, n+1) == g.Girth()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: balls of ported random regular graphs have the same vertex
// set as balls in the underlying graph.
func TestQuickBallMatchesGraphBall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRegular(14, 3, rng)
		p := FromPorts(g, nil)
		v := rng.Intn(g.N())
		r := rng.Intn(3)
		ball := Ball[int](p.D, v, r)
		want := g.Ball(v, r)
		if len(ball.Nodes) != len(want) {
			return false
		}
		set := map[int]bool{}
		for _, u := range want {
			set[u] = true
		}
		for _, u := range ball.Nodes {
			if !set[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: FromPorts with an Eulerian orientation of an even-regular
// graph yields equal in- and out-degree at every node.
func TestQuickEulerianBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRegular(10+2*(int(seed%5+5)%5), 4, rng)
		orient, err := EulerianOrientation(g)
		if err != nil {
			return false
		}
		p := FromPorts(g, orient)
		return p.D.IsRegularDigraph(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestInduced(t *testing.T) {
	d := directedCycle(6)
	sub, old := d.Induced([]int{1, 2, 3})
	if sub.N() != 3 || sub.Arcs() != 2 {
		t.Fatalf("induced path: n=%d arcs=%d", sub.N(), sub.Arcs())
	}
	if len(old) != 3 || old[0] != 1 {
		t.Error("old-vertex map wrong")
	}
	if _, ok := sub.OutArc(0, 0); !ok {
		t.Error("arc 1->2 missing in induced subdigraph")
	}
	if _, ok := sub.OutArc(2, 0); ok {
		t.Error("phantom arc leaving the induced set")
	}
}

func TestWithAlphabet(t *testing.T) {
	d := directedCycle(4)
	big, err := d.WithAlphabet(3)
	if err != nil {
		t.Fatal(err)
	}
	if big.Alphabet() != 3 || big.Arcs() != 4 {
		t.Errorf("enlarged digraph wrong: %v", big)
	}
	if _, err := d.WithAlphabet(0); err == nil {
		t.Error("shrinking alphabet accepted")
	}
}

func TestDigraphDOT(t *testing.T) {
	d := directedCycle(3)
	s := d.DOT("c3", nil)
	for _, want := range []string{"digraph \"c3\"", "0 -> 1", "2 -> 0", "label=\"0\""} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	named := d.DOT("c3", func(v int) string { return "node" })
	if !strings.Contains(named, "label=\"node\"") {
		t.Error("custom names not rendered")
	}
}
