package digraph

// A Source generates a properly labelled digraph node by node,
// without ever materialising it — the substrate the sharded round
// engine partitions, letting host families past the int32 flat-CSR
// capacity exist as generators instead of arrays. Implementations
// must be deterministic, cheap per call and safe for concurrent use.
//
// The contract mirrors Digraph restricted to one node: out- and
// in-arc lists are label-sorted, out-labels are distinct among
// themselves and in-labels likewise (proper labelling), and arcs are
// reciprocal — the out-arc (v -> w, l) is seen from w as the in-arc
// (w <- v, l). Consumers verify reciprocity where they can and fail
// loudly on inconsistent sources.
type Source interface {
	// N returns the number of nodes; unlike a flat digraph it may
	// exceed the int32 capacity.
	N() int64
	// Alphabet returns the number of edge labels.
	Alphabet() int
	// Degree returns v's out- and in-degree (constant time).
	Degree(v int64) (out, in int)
	// AppendArcs appends v's label-sorted out- and in-arcs (SourceArc.To
	// is the target for out, the source for in) and returns the
	// extended slices.
	AppendArcs(v int64, out, in []SourceArc) ([]SourceArc, []SourceArc)
}

// SourceArc is one labelled arc of an implicitly generated digraph:
// the global id of the other endpoint plus the arc label.
type SourceArc struct {
	To    int64
	Label int
}
