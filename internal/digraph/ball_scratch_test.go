package digraph

import (
	"fmt"
	"testing"
)

// ringDigraph builds a labelled ring with a chord pattern so balls
// overlap and differ across centres.
func ringDigraph(n int) *Digraph {
	b := NewBuilder(n, 2)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	for i := 0; i < n; i += 3 {
		b.MustAddArc(i, (i+2)%n, 1)
	}
	return b.Build()
}

// TestBallWithMatchesBall holds the scratch-reusing extraction to the
// fresh-scratch one, reusing a single scratch across every centre and
// radius (the whole-host sweep pattern) on both the dense path and a
// generic Implicit wrapper.
func TestBallWithMatchesBall(t *testing.T) {
	d := ringDigraph(12)
	dense := NewBallScratch[int]()
	for r := 0; r <= 3; r++ {
		for v := 0; v < d.N(); v++ {
			want := Ball[int](d, v, r)
			got := BallWith(dense, d, v, r)
			compareBalls(t, fmt.Sprintf("dense v=%d r=%d", v, r), got, want)
		}
	}
	// The generic path: the same digraph behind an Implicit facade that
	// is not *Digraph.
	lazy := lazyWrap{d}
	gen := NewBallScratch[int]()
	for r := 0; r <= 3; r++ {
		for v := 0; v < d.N(); v++ {
			want := Ball[int](lazy, v, r)
			got := BallWith(gen, lazy, v, r)
			compareBalls(t, fmt.Sprintf("generic v=%d r=%d", v, r), got, want)
		}
	}
}

// TestBallsWithMatchesBall holds the layered extraction to the
// per-radius one: BallsWith(s, g, v, rmax)[r] must be structurally
// identical to Ball(g, v, r) at every radius, on both the dense path
// and the generic Implicit facade. (Index is shared across layers by
// contract, so it is checked only on the outermost layer.)
func TestBallsWithMatchesBall(t *testing.T) {
	d := ringDigraph(12)
	const rmax = 3
	dense := NewBallScratch[int]()
	lazy := lazyWrap{d}
	gen := NewBallScratch[int]()
	for v := 0; v < d.N(); v++ {
		layersD := BallsWith(dense, d, v, rmax)
		// Layers alias the scratch, so compare before the next
		// extraction; capture what the comparison needs first.
		for r := 0; r <= rmax; r++ {
			want := Ball[int](d, v, r)
			compareLayer(t, fmt.Sprintf("dense v=%d r=%d", v, r), layersD[r], want, r == rmax)
		}
		layersG := BallsWith(gen, lazy, v, rmax)
		for r := 0; r <= rmax; r++ {
			want := Ball[int](lazy, v, r)
			compareLayer(t, fmt.Sprintf("generic v=%d r=%d", v, r), layersG[r], want, r == rmax)
		}
	}
	if got := BallsWith(dense, d, 0, -1); got != nil {
		t.Fatalf("rmax=-1 should yield nil, got %d layers", len(got))
	}
}

// compareLayer is compareBalls without the Index check unless asked:
// layered balls share the outermost layer's Index by contract.
func compareLayer(t *testing.T, at string, got, want *BallOf[int], checkIndex bool) {
	t.Helper()
	if got.Root != want.Root || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: got %d nodes root %d, want %d nodes root %d",
			at, len(got.Nodes), got.Root, len(want.Nodes), want.Root)
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Dist[i] != want.Dist[i] {
			t.Fatalf("%s: node %d: (%d,d%d) != (%d,d%d)",
				at, i, got.Nodes[i], got.Dist[i], want.Nodes[i], want.Dist[i])
		}
		if checkIndex && got.Index[got.Nodes[i]] != i {
			t.Fatalf("%s: index of node %d is %d, want %d", at, got.Nodes[i], got.Index[got.Nodes[i]], i)
		}
	}
	if got.D.N() != want.D.N() || got.D.Arcs() != want.D.Arcs() {
		t.Fatalf("%s: ball digraph %v != %v", at, got.D, want.D)
	}
	for v := 0; v < got.D.N(); v++ {
		g, w := got.D.Out(v), want.D.Out(v)
		if len(g) != len(w) {
			t.Fatalf("%s: out-degree of %d: %d != %d", at, v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: arc %d of %d: %v != %v", at, i, v, g[i], w[i])
			}
		}
	}
}

func compareBalls(t *testing.T, at string, got, want *BallOf[int]) {
	t.Helper()
	if got.Root != want.Root || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: got %d nodes root %d, want %d nodes root %d",
			at, len(got.Nodes), got.Root, len(want.Nodes), want.Root)
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Dist[i] != want.Dist[i] {
			t.Fatalf("%s: node %d: (%d,d%d) != (%d,d%d)",
				at, i, got.Nodes[i], got.Dist[i], want.Nodes[i], want.Dist[i])
		}
		if got.Index[got.Nodes[i]] != i {
			t.Fatalf("%s: index of node %d is %d, want %d", at, got.Nodes[i], got.Index[got.Nodes[i]], i)
		}
	}
	if got.D.N() != want.D.N() || got.D.Arcs() != want.D.Arcs() {
		t.Fatalf("%s: ball digraph %v != %v", at, got.D, want.D)
	}
	for v := 0; v < got.D.N(); v++ {
		g, w := got.D.Out(v), want.D.Out(v)
		if len(g) != len(w) {
			t.Fatalf("%s: out-degree of %d: %d != %d", at, v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: arc %d of %d: %v != %v", at, i, v, g[i], w[i])
			}
		}
	}
}

// lazyWrap hides a *Digraph behind a distinct Implicit implementation,
// forcing the generic (non-dense) extraction path.
type lazyWrap struct{ d *Digraph }

func (l lazyWrap) Alphabet() int          { return l.d.Alphabet() }
func (l lazyWrap) Out(v int) []ArcTo[int] { return l.d.Out(v) }
func (l lazyWrap) In(v int) []ArcTo[int]  { return l.d.In(v) }
