package digraph

import (
	"fmt"
	"testing"
)

// ringDigraph builds a labelled ring with a chord pattern so balls
// overlap and differ across centres.
func ringDigraph(n int) *Digraph {
	b := NewBuilder(n, 2)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	for i := 0; i < n; i += 3 {
		b.MustAddArc(i, (i+2)%n, 1)
	}
	return b.Build()
}

// TestBallWithMatchesBall holds the scratch-reusing extraction to the
// fresh-scratch one, reusing a single scratch across every centre and
// radius (the whole-host sweep pattern) on both the dense path and a
// generic Implicit wrapper.
func TestBallWithMatchesBall(t *testing.T) {
	d := ringDigraph(12)
	dense := NewBallScratch[int]()
	for r := 0; r <= 3; r++ {
		for v := 0; v < d.N(); v++ {
			want := Ball[int](d, v, r)
			got := BallWith(dense, d, v, r)
			compareBalls(t, fmt.Sprintf("dense v=%d r=%d", v, r), got, want)
		}
	}
	// The generic path: the same digraph behind an Implicit facade that
	// is not *Digraph.
	lazy := lazyWrap{d}
	gen := NewBallScratch[int]()
	for r := 0; r <= 3; r++ {
		for v := 0; v < d.N(); v++ {
			want := Ball[int](lazy, v, r)
			got := BallWith(gen, lazy, v, r)
			compareBalls(t, fmt.Sprintf("generic v=%d r=%d", v, r), got, want)
		}
	}
}

func compareBalls(t *testing.T, at string, got, want *BallOf[int]) {
	t.Helper()
	if got.Root != want.Root || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: got %d nodes root %d, want %d nodes root %d",
			at, len(got.Nodes), got.Root, len(want.Nodes), want.Root)
	}
	for i := range got.Nodes {
		if got.Nodes[i] != want.Nodes[i] || got.Dist[i] != want.Dist[i] {
			t.Fatalf("%s: node %d: (%d,d%d) != (%d,d%d)",
				at, i, got.Nodes[i], got.Dist[i], want.Nodes[i], want.Dist[i])
		}
		if got.Index[got.Nodes[i]] != i {
			t.Fatalf("%s: index of node %d is %d, want %d", at, got.Nodes[i], got.Index[got.Nodes[i]], i)
		}
	}
	if got.D.N() != want.D.N() || got.D.Arcs() != want.D.Arcs() {
		t.Fatalf("%s: ball digraph %v != %v", at, got.D, want.D)
	}
	for v := 0; v < got.D.N(); v++ {
		g, w := got.D.Out(v), want.D.Out(v)
		if len(g) != len(w) {
			t.Fatalf("%s: out-degree of %d: %d != %d", at, v, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("%s: arc %d of %d: %v != %v", at, i, v, g[i], w[i])
			}
		}
	}
}

// lazyWrap hides a *Digraph behind a distinct Implicit implementation,
// forcing the generic (non-dense) extraction path.
type lazyWrap struct{ d *Digraph }

func (l lazyWrap) Alphabet() int          { return l.d.Alphabet() }
func (l lazyWrap) Out(v int) []ArcTo[int] { return l.d.Out(v) }
func (l lazyWrap) In(v int) []ArcTo[int]  { return l.d.In(v) }
