package digraph

import (
	"fmt"

	"repro/internal/graph"
)

// PortLabel is the pair (i, j) arising from a port numbering: the arc
// u -> v is labelled (i, j) when v is the i-th neighbour of u and u is
// the j-th neighbour of v (ports are 1-based, as in the paper).
type PortLabel struct{ I, J int }

// Ported is a digraph derived from a port numbering and orientation of
// an undirected graph, together with the meaning of its compact labels.
type Ported struct {
	D *Digraph
	// Labels maps compact label -> port pair.
	Labels []PortLabel
	// Host is the original undirected graph.
	Host *graph.Graph
}

// Orientation assigns a direction to each undirected edge: true means
// the edge {U, V} (with U < V) is directed U -> V.
type Orientation func(e graph.Edge) bool

// OrientBySmaller directs every edge from its smaller endpoint to its
// larger endpoint.
func OrientBySmaller(graph.Edge) bool { return true }

// FromPorts equips g with the canonical port numbering (the i-th
// neighbour of u is Neighbors(u)[i-1]) and the given orientation, and
// returns the resulting L-digraph with a compact label alphabet.
// If orient is nil, OrientBySmaller is used.
func FromPorts(g *graph.Graph, orient Orientation) *Ported {
	if orient == nil {
		orient = OrientBySmaller
	}
	type arcRec struct {
		u, v int
		pl   PortLabel
	}
	arcs := make([]arcRec, 0, g.M())
	labelIdx := make(map[PortLabel]int)
	var labels []PortLabel
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if !orient(e) {
			u, v = v, u
		}
		pl := PortLabel{I: g.NeighborIndex(u, v) + 1, J: g.NeighborIndex(v, u) + 1}
		if _, ok := labelIdx[pl]; !ok {
			labelIdx[pl] = len(labels)
			labels = append(labels, pl)
		}
		arcs = append(arcs, arcRec{u: u, v: v, pl: pl})
	}
	b := NewBuilder(g.N(), len(labels))
	for _, a := range arcs {
		b.MustAddArc(a.u, a.v, labelIdx[a.pl])
	}
	return &Ported{D: b.Build(), Labels: labels, Host: g}
}

// EulerianOrientation orients the edges of a graph whose vertices all
// have even degree along Eulerian circuits, so that every vertex has
// equal in- and out-degree. It returns an error if some degree is odd.
func EulerianOrientation(g *graph.Graph) (Orientation, error) {
	for v := 0; v < g.N(); v++ {
		if g.Degree(v)%2 != 0 {
			return nil, fmt.Errorf("digraph: vertex %d has odd degree %d", v, g.Degree(v))
		}
	}
	// Hierholzer on each component; record the traversal direction of
	// each edge.
	dir := make(map[graph.Edge]bool, g.M()) // true: U -> V
	used := make(map[graph.Edge]bool, g.M())
	next := make([]int, g.N()) // per-vertex scan position into Neighbors
	for s := 0; s < g.N(); s++ {
		for next[s] < g.Degree(s) {
			// Walk a closed trail from s using unused edges.
			v := s
			for {
				advanced := false
				for next[v] < g.Degree(v) {
					w := int(g.Neighbors(v)[next[v]])
					next[v]++
					e := graph.NewEdge(v, w)
					if used[e] {
						continue
					}
					used[e] = true
					dir[e] = v == e.U
					v = w
					advanced = true
					break
				}
				if !advanced {
					break
				}
				if v == s && next[s] >= g.Degree(s) {
					break
				}
			}
		}
	}
	return func(e graph.Edge) bool { return dir[e] }, nil
}

// FibreMap is a vertex map phi: V(H) -> V(G) claimed to be a covering.
type FibreMap []int

// VerifyCovering checks that phi is a covering map of L-digraphs from h
// onto g: it must be onto, preserve arcs and labels, and preserve
// out-/in-degrees (local bijectivity then follows from the proper
// labelling). It returns nil if phi is a covering map.
func VerifyCovering(h, g *Digraph, phi FibreMap) error {
	if len(phi) != h.N() {
		return fmt.Errorf("digraph: fibre map has length %d, want %d", len(phi), h.N())
	}
	if h.Alphabet() != g.Alphabet() {
		return fmt.Errorf("digraph: alphabet mismatch %d vs %d", h.Alphabet(), g.Alphabet())
	}
	hit := make([]bool, g.N())
	for v := 0; v < h.N(); v++ {
		pv := phi[v]
		if pv < 0 || pv >= g.N() {
			return fmt.Errorf("digraph: phi(%d)=%d out of range", v, pv)
		}
		hit[pv] = true
		if len(h.Out(v)) != len(g.Out(pv)) || len(h.In(v)) != len(g.In(pv)) {
			return fmt.Errorf("digraph: degree not preserved at %d", v)
		}
		for _, a := range h.Out(v) {
			ga, ok := g.OutArc(pv, a.Label)
			if !ok {
				return fmt.Errorf("digraph: out-arc label %d of %d missing at phi-image %d", a.Label, v, pv)
			}
			if ga.To != phi[a.To] {
				return fmt.Errorf("digraph: arc (%d,%d,label %d) maps to (%d,%d), want (%d,%d)",
					v, a.To, a.Label, pv, phi[a.To], pv, ga.To)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !hit[v] {
			return fmt.Errorf("digraph: phi is not onto: %d has empty fibre", v)
		}
	}
	return nil
}

// Fibres groups the vertices of the covering graph by their phi-image.
func Fibres(gN int, phi FibreMap) [][]int {
	out := make([][]int, gN)
	for v, pv := range phi {
		out[pv] = append(out[pv], v)
	}
	return out
}
