package digraph

import (
	"fmt"

	"repro/internal/graph"
)

// BallOf is a materialised radius-r ball around a centre vertex of an
// implicit digraph: the restriction of the digraph to the vertices at
// undirected distance at most r from the centre (the paper's
// τ(G, v) = (G, v) ↾ B_G(v, r)).
type BallOf[V comparable] struct {
	// D is the ball as a materialised digraph on vertices 0..k-1.
	D *Digraph
	// Root is the index of the centre (always 0).
	Root int
	// Nodes maps ball index -> original vertex, in BFS order.
	Nodes []V
	// Index maps original vertex -> ball index.
	Index map[V]int
	// Dist maps ball index -> undirected distance from the centre.
	Dist []int
}

// BallScratch is the reusable state of repeated Ball extractions: the
// BFS frontier, the per-node out-arc cache and the visited set, so
// whole-host scans (one ball per vertex — the Cayley and lift hosts of
// the homogeneity experiments) stop re-growing these slices from nil
// on every call. The materialised-digraph path uses the epoch-stamped
// dense visited set (reset by epoch bump, not clearing).
//
// A scratch belongs to one goroutine (par.ForScratch hands each
// worker its own). The BallOf returned by BallWith aliases scratch
// storage (Nodes, Index, Dist): it is valid until the next BallWith
// call on the same scratch and must be copied if retained.
type BallScratch[V comparable] struct {
	nodes []V
	dist  []int
	outs  [][]ArcTo[V]
	index map[V]int
	// Dense path (materialised digraphs): epoch-stamped visited set,
	// slot = ball index.
	seen graph.VisitStamp
}

// NewBallScratch returns an empty scratch; buffers are sized on first
// use and grow to the largest ball extracted.
func NewBallScratch[V comparable]() *BallScratch[V] {
	return &BallScratch[V]{index: make(map[V]int)}
}

// Ball extracts the radius-r ball around centre in g. BFS follows both
// out- and in-arcs (distance is undirected); all arcs with both
// endpoints inside the ball are kept.
//
// When g is a materialised *Digraph the BFS runs over a dense visited
// array instead of a map[V]int — the common case in the homogeneity
// and lower-bound scans, which extract a ball per vertex. Scans that
// extract many balls should reuse a BallScratch via BallWith.
func Ball[V comparable](g Implicit[V], centre V, r int) *BallOf[V] {
	return BallWith(NewBallScratch[V](), g, centre, r)
}

// BallWith is Ball over caller-owned scratch: visited set, frontier
// and out-arc cache are reused across calls. The returned BallOf
// aliases the scratch (see BallScratch) and is valid until the next
// call on the same scratch.
func BallWith[V comparable](s *BallScratch[V], g Implicit[V], centre V, r int) *BallOf[V] {
	if d, ok := any(g).(*Digraph); ok {
		si := any(s).(*BallScratch[int])
		bfsDense(si, d, any(centre).(int), r)
		return any(materialiseDense(si, d, len(si.nodes))).(*BallOf[V])
	}
	s.bfsGeneric(g, centre, r)
	return s.materialiseGeneric(g, len(s.nodes))
}

// BallsWith is the layered form of BallWith: ONE radius-rmax BFS from
// the centre, then the materialised ball at every radius r = 0..rmax
// (result[r]), each structurally identical to BallWith(s, g, centre, r).
// BFS order is by distance, so each inner ball is a prefix of the
// outermost one: layer r is the prefix of nodes at distance <= r, and
// only the per-layer arc materialisation is repeated — the traversal
// (group multiplications, on lazy Cayley hosts) runs once. The growth
// experiment's per-radius ball scan rides on this.
//
// All returned balls alias the scratch (valid until the next
// extraction on s) and share the outermost ball's Index map: entries
// with index >= len(Nodes) name vertices outside that layer.
func BallsWith[V comparable](s *BallScratch[V], g Implicit[V], centre V, rmax int) []*BallOf[V] {
	if rmax < 0 {
		return nil
	}
	if d, ok := any(g).(*Digraph); ok {
		si := any(s).(*BallScratch[int])
		bfsDense(si, d, any(centre).(int), rmax)
		out := make([]*BallOf[int], rmax+1)
		k := 0
		for r := 0; r <= rmax; r++ {
			for k < len(si.nodes) && si.dist[k] <= r {
				k++
			}
			out[r] = materialiseDense(si, d, k)
		}
		return any(out).([]*BallOf[V])
	}
	s.bfsGeneric(g, centre, rmax)
	out := make([]*BallOf[V], rmax+1)
	k := 0
	for r := 0; r <= rmax; r++ {
		for k < len(s.nodes) && s.dist[k] <= r {
			k++
		}
		out[r] = s.materialiseGeneric(g, k)
	}
	return out
}

// bfsGeneric runs the radius-r undirected BFS from centre over an
// implicit digraph, leaving the ball's vertices (BFS order), their
// distances, indices and cached out-arc rows in the scratch. Each
// vertex's out-arcs are fetched exactly once and kept for the
// arc-building pass: for lazily evaluated hosts (Cayley graphs,
// lifts) Out() is a group multiplication per neighbour, and the
// homogeneity scans extract one ball per vertex.
func (s *BallScratch[V]) bfsGeneric(g Implicit[V], centre V, r int) {
	clear(s.index)
	s.index[centre] = 0
	s.nodes = append(s.nodes[:0], centre)
	s.dist = append(s.dist[:0], 0)
	s.outs = s.outs[:0]
	for head := 0; head < len(s.nodes); head++ {
		v := s.nodes[head]
		out := g.Out(v)
		s.outs = append(s.outs, out)
		if s.dist[head] == r {
			continue
		}
		for _, a := range out {
			if _, seen := s.index[a.To]; !seen {
				s.index[a.To] = len(s.nodes)
				s.nodes = append(s.nodes, a.To)
				s.dist = append(s.dist, s.dist[head]+1)
			}
		}
		for _, a := range g.In(v) {
			if _, seen := s.index[a.To]; !seen {
				s.index[a.To] = len(s.nodes)
				s.nodes = append(s.nodes, a.To)
				s.dist = append(s.dist, s.dist[head]+1)
			}
		}
	}
}

// materialiseGeneric builds the digraph on the first k BFS vertices
// (a distance prefix), keeping every arc with both endpoints inside.
func (s *BallScratch[V]) materialiseGeneric(g Implicit[V], k int) *BallOf[V] {
	b := NewBuilder(k, g.Alphabet())
	for i := 0; i < k; i++ {
		for _, a := range s.outs[i] {
			if j, in := s.index[a.To]; in && j < k {
				b.MustAddArc(i, j, a.Label)
			}
		}
	}
	return &BallOf[V]{D: b.Build(), Root: 0, Nodes: s.nodes[:k], Index: s.index, Dist: s.dist[:k]}
}

// bfsDense is bfsGeneric specialised to materialised digraphs: the
// visited set is the scratch's epoch-stamped dense array, so repeated
// extractions touch only ball-sized state (no Θ(n) per-call clearing).
func bfsDense(s *BallScratch[int], d *Digraph, centre, r int) {
	s.seen.Reset(d.n)
	s.nodes = append(s.nodes[:0], centre)
	s.dist = append(s.dist[:0], 0)
	s.seen.Visit(int32(centre), 0)
	clear(s.index)
	for head := 0; head < len(s.nodes); head++ {
		v := s.nodes[head]
		if s.dist[head] == r {
			continue
		}
		visit := func(to int) {
			if !s.seen.Visited(int32(to)) {
				s.seen.Visit(int32(to), int32(len(s.nodes)))
				s.nodes = append(s.nodes, to)
				s.dist = append(s.dist, s.dist[head]+1)
			}
		}
		for _, a := range d.Out(v) {
			visit(a.To)
		}
		for _, a := range d.In(v) {
			visit(a.To)
		}
	}
}

// materialiseDense is materialiseGeneric over the dense visited set's
// slots (slot = BFS index, so slot < k is the prefix test).
func materialiseDense(s *BallScratch[int], d *Digraph, k int) *BallOf[int] {
	b := NewBuilder(k, d.alphabet)
	for i := 0; i < k; i++ {
		v := s.nodes[i]
		s.index[v] = i
		for _, a := range d.Out(v) {
			if s.seen.Visited(int32(a.To)) {
				if j := s.seen.Slot(int32(a.To)); int(j) < k {
					b.MustAddArc(i, int(j), a.Label)
				}
			}
		}
	}
	return &BallOf[int]{D: b.Build(), Root: 0, Nodes: s.nodes[:k], Index: s.index, Dist: s.dist[:k]}
}

// Materialize explores everything reachable (in the undirected sense)
// from the start vertices and builds a concrete Digraph. It fails if
// more than maxNodes vertices are found, which guards against
// accidentally expanding one of the paper's astronomically large
// implicit graphs.
func Materialize[V comparable](g Implicit[V], starts []V, maxNodes int) (*Digraph, []V, map[V]int, error) {
	if d, ok := any(g).(*Digraph); ok {
		md, nodes, index, err := materializeDense(d, any(starts).([]int), maxNodes)
		if err != nil {
			return nil, nil, nil, err
		}
		return md, any(nodes).([]V), any(index).(map[V]int), nil
	}
	index := make(map[V]int)
	var nodes []V
	push := func(v V) error {
		if _, seen := index[v]; seen {
			return nil
		}
		if len(nodes) >= maxNodes {
			return fmt.Errorf("digraph: materialisation exceeds %d nodes", maxNodes)
		}
		index[v] = len(nodes)
		nodes = append(nodes, v)
		return nil
	}
	for _, s := range starts {
		if err := push(s); err != nil {
			return nil, nil, nil, err
		}
	}
	for head := 0; head < len(nodes); head++ {
		v := nodes[head]
		for _, a := range g.Out(v) {
			if err := push(a.To); err != nil {
				return nil, nil, nil, err
			}
		}
		for _, a := range g.In(v) {
			if err := push(a.To); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	b := NewBuilder(len(nodes), g.Alphabet())
	for i, v := range nodes {
		for _, a := range g.Out(v) {
			b.MustAddArc(i, index[a.To], a.Label)
		}
	}
	return b.Build(), nodes, index, nil
}

// materializeDense is Materialize specialised to materialised
// digraphs, using a dense visited array for the reachability sweep.
func materializeDense(d *Digraph, starts []int, maxNodes int) (*Digraph, []int, map[int]int, error) {
	at := make([]int, d.n) // vertex -> new index + 1 (0 = unseen)
	var nodes []int
	push := func(v int) error {
		if at[v] != 0 {
			return nil
		}
		if len(nodes) >= maxNodes {
			return fmt.Errorf("digraph: materialisation exceeds %d nodes", maxNodes)
		}
		at[v] = len(nodes) + 1
		nodes = append(nodes, v)
		return nil
	}
	for _, s := range starts {
		if err := push(s); err != nil {
			return nil, nil, nil, err
		}
	}
	for head := 0; head < len(nodes); head++ {
		v := nodes[head]
		for _, a := range d.Out(v) {
			if err := push(a.To); err != nil {
				return nil, nil, nil, err
			}
		}
		for _, a := range d.In(v) {
			if err := push(a.To); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	b := NewBuilder(len(nodes), d.alphabet)
	index := make(map[int]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
		for _, a := range d.Out(v) {
			b.MustAddArc(i, at[a.To]-1, a.Label)
		}
	}
	return b.Build(), nodes, index, nil
}

// UndirectedGirth computes the girth of the underlying undirected
// multigraph of an implicit digraph by exploring non-backtracking walks
// of length up to maxLen from the given start vertices. A walk may not
// immediately reverse the arc it just traversed, but any other return
// to a visited vertex closes a cycle. It returns the shortest cycle
// length found, or -1 if no cycle of length <= maxLen exists through
// the start vertices.
//
// For vertex-transitive implicit graphs (Cayley graphs, lifts of a
// single-vertex digraph) a single start vertex suffices, because every
// cycle can be translated to pass through it.
func UndirectedGirth[V comparable](g Implicit[V], starts []V, maxLen int) int {
	best := -1
	var (
		onPath map[V]int
		dfs    func(cur, prev V, prevLabel int, prevOut bool, depth int)
	)
	dfs = func(cur, prev V, prevLabel int, prevOut bool, depth int) {
		if best != -1 && depth+1 >= best {
			return
		}
		try := func(to V, label int, out bool) {
			// Non-backtracking: never re-traverse the arc we just used
			// in the opposite direction. Parallel arcs (same endpoints,
			// different label or direction pattern) are distinct arcs
			// and may legitimately close a 2-cycle.
			if depth > 0 && to == prev && label == prevLabel && out != prevOut {
				return
			}
			if at, seen := onPath[to]; seen {
				c := depth + 1 - at
				if c >= 2 && (best == -1 || c < best) {
					best = c
				}
				return
			}
			if depth+1 >= maxLen {
				return
			}
			onPath[to] = depth + 1
			dfs(to, cur, label, out, depth+1)
			delete(onPath, to)
		}
		for _, a := range g.Out(cur) {
			try(a.To, a.Label, true)
		}
		for _, a := range g.In(cur) {
			try(a.To, a.Label, false)
		}
	}
	for _, s := range starts {
		onPath = map[V]int{s: 0}
		var zero V
		dfs(s, zero, -1, false, 0)
	}
	return best
}
