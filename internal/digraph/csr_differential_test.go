package digraph

import (
	"math/rand"
	"sort"
	"testing"
)

// refDigraph is the retained slice-of-slices reference: label-sorted
// per-vertex arc lists, the representation Digraph used before the
// CSR refactor.
type refDigraph struct {
	n, alphabet int
	out, in     [][]Arc
}

func buildRefDigraph(n, alphabet int, arcs [][3]int) *refDigraph {
	r := &refDigraph{n: n, alphabet: alphabet, out: make([][]Arc, n), in: make([][]Arc, n)}
	for _, a := range arcs {
		u, v, l := a[0], a[1], a[2]
		r.out[u] = append(r.out[u], Arc{To: v, Label: l})
		r.in[v] = append(r.in[v], Arc{To: u, Label: l})
	}
	for v := 0; v < n; v++ {
		sort.Slice(r.out[v], func(i, j int) bool { return r.out[v][i].Label < r.out[v][j].Label })
		sort.Slice(r.in[v], func(i, j int) bool { return r.in[v][i].Label < r.in[v][j].Label })
	}
	return r
}

func sameArcs(t *testing.T, got, want []Arc, what string, v int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s(%d): csr %v ref %v", what, v, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s(%d)[%d]: csr %v ref %v", what, v, i, got[i], want[i])
		}
	}
}

// TestDigraphCSRAgainstReference builds random properly-labelled
// digraphs and pins every CSR accessor — Out, In, OutArc, InArc,
// Degree, Arcs — against the reference arc lists.
func TestDigraphCSRAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		alphabet := 1 + rng.Intn(4)
		b := NewBuilder(n, alphabet)
		var accepted [][3]int
		for i := 0; i < 4*n; i++ {
			u, v, l := rng.Intn(n), rng.Intn(n), rng.Intn(alphabet)
			if b.AddArc(u, v, l) == nil {
				accepted = append(accepted, [3]int{u, v, l})
			}
		}
		d := b.Build()
		ref := buildRefDigraph(n, alphabet, accepted)
		if d.Arcs() != len(accepted) {
			t.Fatalf("arc count: csr %d ref %d", d.Arcs(), len(accepted))
		}
		for v := 0; v < n; v++ {
			sameArcs(t, d.Out(v), ref.out[v], "Out", v)
			sameArcs(t, d.In(v), ref.in[v], "In", v)
			if d.Degree(v) != len(ref.out[v])+len(ref.in[v]) {
				t.Fatalf("degree of %d: csr %d ref %d", v, d.Degree(v), len(ref.out[v])+len(ref.in[v]))
			}
			for l := 0; l < alphabet; l++ {
				ga, gok := d.OutArc(v, l)
				wa, wok := refArc(ref.out[v], l)
				if gok != wok || ga != wa {
					t.Fatalf("OutArc(%d,%d): csr %v,%v ref %v,%v", v, l, ga, gok, wa, wok)
				}
				ga, gok = d.InArc(v, l)
				wa, wok = refArc(ref.in[v], l)
				if gok != wok || ga != wa {
					t.Fatalf("InArc(%d,%d): csr %v,%v ref %v,%v", v, l, ga, gok, wa, wok)
				}
			}
		}
	}
}

func refArc(arcs []Arc, label int) (Arc, bool) {
	for _, a := range arcs {
		if a.Label == label {
			return a, true
		}
	}
	return Arc{}, false
}

// TestDigraphBuilderDeadAfterBuild pins the post-Build contract:
// AddArc and a second Build panic explicitly instead of silently
// mutating the built digraph.
func TestDigraphBuilderDeadAfterBuild(t *testing.T) {
	b := NewBuilder(3, 1)
	b.MustAddArc(0, 1, 0)
	d := b.Build()
	mustPanic(t, "AddArc after Build", func() { _ = b.AddArc(1, 2, 0) })
	mustPanic(t, "Build after Build", func() { b.Build() })
	if d.Arcs() != 1 {
		t.Fatal("built digraph mutated")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
