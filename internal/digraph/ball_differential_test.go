package digraph

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// generic wraps a *Digraph so the type switch in Ball/Materialize
// cannot see it — forcing the retained map-based reference path.
type generic struct{ d *Digraph }

func (g generic) Alphabet() int   { return g.d.Alphabet() }
func (g generic) Out(v int) []Arc { return g.d.Out(v) }
func (g generic) In(v int) []Arc  { return g.d.In(v) }

var _ Implicit[int] = generic{}

func diffDigraphs() map[string]*Digraph {
	out := map[string]*Digraph{
		"petersen": FromPorts(graph.Petersen(), nil).D,
		"torus6x6": FromPorts(graph.Torus(6, 6), nil).D,
		"random":   FromPorts(graph.RandomRegular(18, 3, rand.New(rand.NewSource(7))), nil).D,
	}
	b := NewBuilder(12, 1)
	for i := 0; i < 12; i++ {
		b.MustAddArc(i, (i+1)%12, 0)
	}
	out["cycle"] = b.Build()
	return out
}

func sameDigraph(a, b *Digraph) bool {
	if a.N() != b.N() || a.Alphabet() != b.Alphabet() || a.Arcs() != b.Arcs() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		ao, bo := a.Out(v), b.Out(v)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

// TestBallDenseMatchesGeneric: the []int fast path must reproduce the
// map-based reference field by field.
func TestBallDenseMatchesGeneric(t *testing.T) {
	for name, d := range diffDigraphs() {
		for r := 0; r <= 3; r++ {
			for v := 0; v < d.N(); v += 3 {
				fast := Ball[int](d, v, r)
				slow := Ball[int](generic{d}, v, r)
				if !sameDigraph(fast.D, slow.D) {
					t.Fatalf("%s v=%d r=%d: ball digraphs differ", name, v, r)
				}
				if fast.Root != slow.Root || len(fast.Nodes) != len(slow.Nodes) {
					t.Fatalf("%s v=%d r=%d: root/nodes differ", name, v, r)
				}
				for i := range fast.Nodes {
					if fast.Nodes[i] != slow.Nodes[i] || fast.Dist[i] != slow.Dist[i] {
						t.Fatalf("%s v=%d r=%d: node %d bookkeeping differs", name, v, r, i)
					}
					if fast.Index[fast.Nodes[i]] != i {
						t.Fatalf("%s v=%d r=%d: index map wrong", name, v, r)
					}
				}
			}
		}
	}
}

// TestMaterializeDenseMatchesGeneric compares the dense reachability
// sweep against the generic one.
func TestMaterializeDenseMatchesGeneric(t *testing.T) {
	for name, d := range diffDigraphs() {
		fastD, fastNodes, fastIdx, err := Materialize[int](d, []int{0}, 1<<12)
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		slowD, slowNodes, slowIdx, err := Materialize[int](generic{d}, []int{0}, 1<<12)
		if err != nil {
			t.Fatalf("%s: generic: %v", name, err)
		}
		if !sameDigraph(fastD, slowD) {
			t.Fatalf("%s: materialised digraphs differ", name)
		}
		if len(fastNodes) != len(slowNodes) {
			t.Fatalf("%s: node counts differ", name)
		}
		for i := range fastNodes {
			if fastNodes[i] != slowNodes[i] {
				t.Fatalf("%s: discovery order differs at %d", name, i)
			}
			if fastIdx[fastNodes[i]] != slowIdx[slowNodes[i]] {
				t.Fatalf("%s: index maps differ at %d", name, i)
			}
		}
	}
	// The budget error must still fire on the dense path.
	big := diffDigraphs()["torus6x6"]
	if _, _, _, err := Materialize[int](big, []int{0}, 5); err == nil {
		t.Fatal("dense Materialize ignored the node budget")
	}
}
