// Package digraph provides L-edge-labelled directed graphs (the
// "L-digraphs" of Section 2.5 of the paper), port numberings and
// orientations, covering-map verification, an interface for lazily
// evaluated (implicit) digraphs, and radius-r ball extraction.
//
// A proper labelling assigns the outgoing edges of each node distinct
// labels and the incoming edges of each node distinct labels; this is
// exactly the structure induced by a port numbering and orientation.
package digraph

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// ArcTo is a labelled arc to a node of type V in an implicit digraph.
type ArcTo[V comparable] struct {
	To    V
	Label int
}

// Arc is a labelled arc in a materialised digraph.
type Arc = ArcTo[int]

// Implicit is a lazily evaluated L-digraph. Implementations include
// materialised digraphs, Cayley graphs of the paper's groups, and the
// label-matching lift products — the latter two are far too large to
// materialise, but every construction in the paper only ever inspects
// a constant-radius neighbourhood, which Implicit supports.
type Implicit[V comparable] interface {
	// Alphabet returns |L|, the number of edge labels; labels are
	// 0..Alphabet()-1.
	Alphabet() int
	// Out returns the labelled out-arcs of v, with distinct labels.
	Out(v V) []ArcTo[V]
	// In returns the labelled in-arcs of v (ArcTo.To is the arc's
	// source), with distinct labels.
	In(v V) []ArcTo[V]
}

// Digraph is a materialised L-digraph with a proper labelling, stored
// in CSR form: the out-arcs of v are out[outOff[v]:outOff[v+1]] (and
// symmetrically for in), label-sorted within each row, so every arc
// scan walks one flat contiguous array. It implements Implicit[int].
type Digraph struct {
	n        int
	alphabet int
	outOff   []int32 // row offsets into out, len n+1
	inOff    []int32 // row offsets into in, len n+1
	out      []Arc   // flat out-arc array, label-sorted per row
	in       []Arc   // flat in-arc array, label-sorted per row
}

var _ Implicit[int] = (*Digraph)(nil)

// Builder accumulates arcs for a Digraph, enforcing proper labelling.
// Per-vertex rows are scaffolding; Build concatenates them into the
// final flat CSR arrays.
type Builder struct {
	n        int
	alphabet int
	built    bool
	out      [][]Arc
	in       [][]Arc
}

// NewBuilder returns a builder for an L-digraph on n vertices with the
// given alphabet size. Vertex ids and CSR offsets are int32, so n is
// capped at graph.FlatCapacity; larger hosts must stay implicit
// (host.ShardSource).
func NewBuilder(n, alphabet int) *Builder {
	if n < 0 || alphabet < 0 {
		panic("digraph: negative size")
	}
	if int64(n) > graph.FlatCapacity {
		panic(capacityErr("vertex count", int64(n)))
	}
	return &Builder{
		n:        n,
		alphabet: alphabet,
		out:      make([][]Arc, n),
		in:       make([][]Arc, n),
	}
}

// AddArc adds the arc u -> v with the given label. It returns an error
// if the arc would violate the proper-labelling condition: u must not
// already have an outgoing arc labelled label, and v must not already
// have an incoming arc labelled label. Self-loops are rejected.
//
// Arc lists are kept label-sorted as they grow, so the duplicate-label
// check is a binary search rather than a linear scan and Build needs
// no final sort.
func (b *Builder) AddArc(u, v, label int) error {
	if b.built {
		panic("digraph: AddArc on a Builder after Build")
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("digraph: arc (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("digraph: self-loop at %d", u)
	}
	if label < 0 || label >= b.alphabet {
		return fmt.Errorf("digraph: label %d out of range [0,%d)", label, b.alphabet)
	}
	oi, dup := searchLabel(b.out[u], label)
	if dup {
		return fmt.Errorf("digraph: node %d already has out-label %d", u, label)
	}
	ii, dup := searchLabel(b.in[v], label)
	if dup {
		return fmt.Errorf("digraph: node %d already has in-label %d", v, label)
	}
	b.out[u] = insertArc(b.out[u], oi, Arc{To: v, Label: label})
	b.in[v] = insertArc(b.in[v], ii, Arc{To: u, Label: label})
	return nil
}

// searchLabel returns the insertion position of label in the
// label-sorted arc slice and whether the label is already present.
func searchLabel(arcs []Arc, label int) (int, bool) {
	i := sort.Search(len(arcs), func(i int) bool { return arcs[i].Label >= label })
	return i, i < len(arcs) && arcs[i].Label == label
}

func insertArc(arcs []Arc, i int, a Arc) []Arc {
	arcs = append(arcs, Arc{})
	copy(arcs[i+1:], arcs[i:])
	arcs[i] = a
	return arcs
}

// MustAddArc is AddArc that panics on error.
func (b *Builder) MustAddArc(u, v, label int) {
	if err := b.AddArc(u, v, label); err != nil {
		panic(err)
	}
}

// Build finalises the digraph, concatenating the label-sorted arc
// rows (an invariant AddArc maintains incrementally) into the flat
// CSR arrays. The builder is dead afterwards: further AddArc panics.
func (b *Builder) Build() *Digraph {
	if b.built {
		panic("digraph: Build called twice")
	}
	b.built = true
	outOff, out := flattenArcs(b.out)
	inOff, in := flattenArcs(b.in)
	b.out, b.in = nil, nil
	return &Digraph{n: b.n, alphabet: b.alphabet, outOff: outOff, inOff: inOff, out: out, in: in}
}

// capacityErr mirrors graph's flat-capacity diagnostic for the
// digraph CSR arrays.
func capacityErr(what string, have int64) error {
	return fmt.Errorf("digraph: %s %d exceeds the flat-CSR int32 capacity %d: host exceeds flat-CSR capacity, use shards (model.ShardedEngine over a host.ShardSource)",
		what, have, int64(graph.FlatCapacity))
}

// flattenArcs concatenates per-vertex arc rows into one flat array
// with row offsets. Row totals are checked in 64 bits first: the
// int32 offset accumulation would wrap silently past 2^31 arcs.
func flattenArcs(rows [][]Arc) ([]int32, []Arc) {
	total := int64(0)
	for _, row := range rows {
		total += int64(len(row))
	}
	if total > graph.FlatCapacity {
		panic(capacityErr("arc count", total))
	}
	off := make([]int32, len(rows)+1)
	for v, row := range rows {
		off[v+1] = off[v] + int32(len(row))
	}
	flat := make([]Arc, off[len(rows)])
	for v, row := range rows {
		copy(flat[off[v]:], row)
	}
	return off, flat
}

// N returns the number of vertices.
func (d *Digraph) N() int { return d.n }

// Alphabet returns |L|.
func (d *Digraph) Alphabet() int { return d.alphabet }

// Out returns the out-arcs of v sorted by label: a subslice of the
// flat CSR arc array. Do not modify.
func (d *Digraph) Out(v int) []Arc { return d.out[d.outOff[v]:d.outOff[v+1]] }

// In returns the in-arcs of v sorted by label (Arc.To is the source).
// Do not modify.
func (d *Digraph) In(v int) []Arc { return d.in[d.inOff[v]:d.inOff[v+1]] }

// Degree returns the total number of arcs incident to v.
func (d *Digraph) Degree(v int) int {
	return int(d.outOff[v+1] - d.outOff[v] + d.inOff[v+1] - d.inOff[v])
}

// Arcs returns the number of arcs.
func (d *Digraph) Arcs() int { return len(d.out) }

// OutArc returns the out-arc of v with the given label, if any.
// Binary search over the label-sorted arc row.
func (d *Digraph) OutArc(v, label int) (Arc, bool) {
	row := d.Out(v)
	if i, ok := searchLabel(row, label); ok {
		return row[i], true
	}
	return Arc{}, false
}

// InArc returns the in-arc of v with the given label, if any.
// Binary search over the label-sorted arc row.
func (d *Digraph) InArc(v, label int) (Arc, bool) {
	row := d.In(v)
	if i, ok := searchLabel(row, label); ok {
		return row[i], true
	}
	return Arc{}, false
}

// Underlying returns the simple undirected graph obtained by forgetting
// directions and labels. It returns an error if two vertices are joined
// by more than one arc (the underlying structure would be a multigraph,
// which graph.Graph does not represent). The CSR arrays are assembled
// directly — every vertex's undirected degree is its out-degree plus
// in-degree, so the offsets are known up front and the fill is a
// single pass over the flat arc arrays. Underlying runs once per
// extracted ball in the homogeneity scans.
func (d *Digraph) Underlying() (*graph.Graph, error) {
	// out-arcs + in-arcs undirected slots can exceed int32 even when
	// each arc array fits; check before the int32 accumulation wraps.
	undirected := int64(d.outOff[d.n]) + int64(d.inOff[d.n])
	if undirected > graph.FlatCapacity {
		return nil, capacityErr("undirected arc count", undirected)
	}
	off := make([]int32, d.n+1)
	for v := 0; v < d.n; v++ {
		off[v+1] = off[v] + int32(d.Degree(v))
	}
	nbr := make([]int32, off[d.n])
	cur := append([]int32(nil), off[:d.n]...)
	for u := 0; u < d.n; u++ {
		for _, a := range d.Out(u) {
			nbr[cur[u]] = int32(a.To)
			cur[u]++
			nbr[cur[a.To]] = int32(u)
			cur[a.To]++
		}
	}
	g, err := graph.FromCSR(off, nbr)
	if err != nil {
		return nil, fmt.Errorf("digraph: underlying graph: parallel arcs or invalid structure: %w", err)
	}
	return g, nil
}

// IsRegularDigraph reports whether every vertex has out-degree and
// in-degree exactly k (so the digraph is 2k-regular as an undirected
// structure, the shape required of the homogeneous graphs H).
func (d *Digraph) IsRegularDigraph(k int) bool {
	for v := 0; v < d.n; v++ {
		if int(d.outOff[v+1]-d.outOff[v]) != k || int(d.inOff[v+1]-d.inOff[v]) != k {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary.
func (d *Digraph) String() string {
	return fmt.Sprintf("digraph{n=%d arcs=%d |L|=%d}", d.n, d.Arcs(), d.alphabet)
}

// Induced returns the subdigraph induced by the given vertices (arcs
// with both endpoints inside), together with the map from new index to
// old vertex.
func (d *Digraph) Induced(verts []int) (*Digraph, []int) {
	idx := make(map[int]int, len(verts))
	for i, v := range verts {
		idx[v] = i
	}
	b := NewBuilder(len(verts), d.alphabet)
	for i, v := range verts {
		for _, a := range d.Out(v) {
			if j, in := idx[a.To]; in {
				b.MustAddArc(i, j, a.Label)
			}
		}
	}
	old := append([]int(nil), verts...)
	return b.Build(), old
}

// WithAlphabet returns a copy of d whose declared alphabet is enlarged
// to k (labels keep their values); used to match a base graph to the
// alphabet of a homogeneous factor before forming a lift product.
func (d *Digraph) WithAlphabet(k int) (*Digraph, error) {
	if k < d.alphabet {
		return nil, fmt.Errorf("digraph: cannot shrink alphabet %d to %d", d.alphabet, k)
	}
	b := NewBuilder(d.n, k)
	for v := 0; v < d.n; v++ {
		for _, a := range d.Out(v) {
			if err := b.AddArc(v, a.To, a.Label); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(), nil
}
