package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriterReaderRoundTrip drives every field primitive through a
// write-then-read cycle, including the values that stress each
// encoding (max/min words, zigzag negatives, bitset lengths straddling
// the byte boundary).
func TestWriterReaderRoundTrip(t *testing.T) {
	bits7 := []bool{true, false, true, true, false, false, true}
	bits8 := append(append([]bool(nil), bits7...), true)
	bits9 := append(append([]bool(nil), bits8...), true)

	var w Writer
	w.U64(0)
	w.U64(^uint64(0))
	w.I64(-1)
	w.Uvarint(300)
	w.Varint(-300)
	w.Varint(0)
	w.Bool(true)
	w.Bool(false)
	w.Blob([]byte("blob"))
	w.Blob(nil)
	w.String("a string")
	w.String("")
	w.Bits(bits7)
	w.Bits(bits8)
	w.Bits(bits9)
	w.Bits(nil)

	r := NewReader(w.Bytes())
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 zero = %d", got)
	}
	if got := r.U64(); got != ^uint64(0) {
		t.Fatalf("U64 max = %d", got)
	}
	if got := r.I64(); got != -1 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -300 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Varint(); got != 0 {
		t.Fatalf("Varint zero = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip broke")
	}
	if got := r.Blob(); !bytes.Equal(got, []byte("blob")) {
		t.Fatalf("Blob = %q", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Fatalf("empty Blob = %q", got)
	}
	if got := r.String(); got != "a string" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	for _, want := range [][]bool{bits7, bits8, bits9} {
		got := r.Bits(len(want))
		if len(got) != len(want) {
			t.Fatalf("Bits(%d) returned %d bits", len(want), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Bits(%d)[%d] = %v, want %v", len(want), i, got[i], want[i])
			}
		}
	}
	if got := r.Bits(0); len(got) != 0 {
		t.Fatalf("Bits(0) = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("round trip error: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("trailing bytes: %d", r.Len())
	}
}

// TestReaderStickyError asserts the first malformed field latches the
// error, every later read returns a zero value, and the error names
// the field that failed.
func TestReaderStickyError(t *testing.T) {
	var w Writer
	w.Uvarint(7)
	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 7 || r.Err() != nil {
		t.Fatalf("valid prefix: %d %v", got, r.Err())
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 past end = %d", got)
	}
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "u64") {
		t.Fatalf("want a u64-labelled error, got %v", err)
	}
	// Later reads must not clear or replace the latched error.
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint after error = %d", got)
	}
	if got := r.Blob(); got != nil {
		t.Fatalf("Blob after error = %q", got)
	}
	if got := r.Bits(4); got != nil {
		t.Fatalf("Bits after error = %v", got)
	}
	if r.Err() != err {
		t.Fatalf("latched error replaced: %v", r.Err())
	}
}

// TestReaderTruncationPerField asserts each primitive fails cleanly on
// an empty buffer instead of panicking.
func TestReaderTruncationPerField(t *testing.T) {
	for name, read := range map[string]func(*Reader){
		"u64":     func(r *Reader) { r.U64() },
		"i64":     func(r *Reader) { r.I64() },
		"uvarint": func(r *Reader) { r.Uvarint() },
		"varint":  func(r *Reader) { r.Varint() },
		"bool":    func(r *Reader) { r.Bool() },
		"blob":    func(r *Reader) { r.Blob() },
		"string":  func(r *Reader) { _ = r.String() },
		"bits":    func(r *Reader) { r.Bits(3) },
	} {
		r := NewReader(nil)
		read(r)
		if r.Err() == nil {
			t.Fatalf("%s on empty buffer did not error", name)
		}
	}
	// A blob whose length prefix overruns the buffer must fail too.
	var w Writer
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.Blob(); got != nil || r.Err() == nil {
		t.Fatalf("oversized blob: %q %v", got, r.Err())
	}
}

// TestStoreDirAndEntries covers the remaining Store accessors: Dir
// echoes the directory, Entries lists in ascending sequence order with
// validity flags.
func TestStoreDirAndEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if s.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", s.Dir(), dir)
	}
	if _, err := s.Write(2, "k", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(1, "k", []byte("one")); err != nil {
		t.Fatal(err)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 1 || entries[1].Seq != 2 {
		t.Fatalf("Entries = %+v", entries)
	}
}
