package ckpt

import (
	"encoding/binary"
	"fmt"
)

// Writer and Reader are the byte-serialization primitives shared by
// every checkpoint payload in the repo (model.Snapshot,
// core.CertifySnapshot, the job manifests): append-only little-endian
// encoding on the Writer, a sticky-error cursor on the Reader, so a
// payload codec is a straight-line sequence of field calls with one
// error check at the end. The primitives are deliberately minimal —
// fixed-width words, varints, length-prefixed blobs, packed bitsets —
// because checkpoint byte-determinism is an acceptance criterion:
// nothing here depends on map order, pointers or time.

// Writer accumulates an encoded payload.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded payload built so far.
func (w *Writer) Bytes() []byte { return w.buf }

// U64 appends a fixed-width little-endian word.
func (w *Writer) U64(x uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }

// I64 appends a fixed-width little-endian signed word.
func (w *Writer) I64(x int64) { w.U64(uint64(x)) }

// Uvarint appends a varint-encoded unsigned integer.
func (w *Writer) Uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }

// Varint appends a zigzag varint-encoded signed integer.
func (w *Writer) Varint(x int64) { w.buf = binary.AppendVarint(w.buf, x) }

// Bool appends one byte, 0 or 1.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bits appends a bitset packed 8 bools per byte, no length prefix (the
// reader passes the known length back to Bits).
func (w *Writer) Bits(bs []bool) {
	var cur byte
	for i, b := range bs {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			w.buf = append(w.buf, cur)
			cur = 0
		}
	}
	if len(bs)&7 != 0 {
		w.buf = append(w.buf, cur)
	}
}

// Reader decodes a payload written by Writer. The first malformed
// field latches the error; subsequent reads return zero values, so a
// codec checks Err once after all fields.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err reports the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len reports how many bytes remain unread.
func (r *Reader) Len() int { return len(r.buf) }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: truncated or malformed payload at %s", what)
	}
}

// U64 reads a fixed-width little-endian word.
func (r *Reader) U64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail("u64")
		return 0
	}
	x := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return x
}

// I64 reads a fixed-width little-endian signed word.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Uvarint reads a varint-encoded unsigned integer.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return x
}

// Varint reads a zigzag varint-encoded signed integer.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.buf = r.buf[n:]
	return x
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil || len(r.buf) < 1 {
		r.fail("bool")
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b != 0
}

// Blob reads a length-prefixed byte string. The result aliases the
// reader's buffer.
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil || uint64(len(r.buf)) < n {
		r.fail("blob")
		return nil
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }

// Bits reads an n-bit bitset packed by Writer.Bits.
func (r *Reader) Bits(n int) []bool {
	nb := (n + 7) / 8
	if r.err != nil || len(r.buf) < nb {
		r.fail("bits")
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.buf[i>>3]&(1<<(i&7)) != 0
	}
	r.buf = r.buf[nb:]
	return out
}
