// Package ckpt is the durable checkpoint substrate of the repo: a
// content-addressed container format plus a sequence-numbered on-disk
// store, shared by the round engine's run snapshots (model.Snapshot),
// the lower-bound certifier's catalogue snapshots
// (core.CertifySnapshot) and the job subsystem's result files.
//
// Container. Every checkpoint is one self-verifying byte blob:
//
//	magic "LACKPT1\n" | uvarint kind-len | kind | uvarint payload-len |
//	payload | sha256 of everything before the digest
//
// Decode re-hashes and refuses blobs whose digest does not match, so a
// torn write, a truncated file or a flipped bit is detected — never
// silently resumed from. The digest also names the file on disk
// (content addressing): two runs checkpointing identical state write
// byte-identical files with identical names, which is what makes the
// snapshot-equality pins in the engine tests meaningful end to end.
//
// Store. A Store is a directory of "<prefix>-<seq>-<hash>.ck" files
// written atomically (temp file, fsync, rename). LatestValid scans
// from the highest sequence number down and returns the newest blob
// that still decodes — a corrupt or partial tail checkpoint is skipped
// back over, exactly the recovery the crash-recovery drills exercise.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies a ckpt container (and its format version).
const magic = "LACKPT1\n"

// digestLen is the length of the sha256 trailer.
const digestLen = sha256.Size

// Encode wraps a payload in the self-verifying container.
func Encode(kind string, payload []byte) []byte {
	b := make([]byte, 0, len(magic)+2*binary.MaxVarintLen64+len(kind)+len(payload)+digestLen)
	b = append(b, magic...)
	b = binary.AppendUvarint(b, uint64(len(kind)))
	b = append(b, kind...)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	b = append(b, payload...)
	sum := sha256.Sum256(b)
	return append(b, sum[:]...)
}

// Decode unwraps a container, verifying the magic and the digest. The
// returned payload aliases data.
func Decode(data []byte) (kind string, payload []byte, err error) {
	if len(data) < len(magic)+digestLen || string(data[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("ckpt: not a checkpoint container")
	}
	body, digest := data[:len(data)-digestLen], data[len(data)-digestLen:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(digest) {
		return "", nil, fmt.Errorf("ckpt: digest mismatch (corrupt or truncated checkpoint)")
	}
	rest := body[len(magic):]
	klen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < klen {
		return "", nil, fmt.Errorf("ckpt: malformed kind length")
	}
	kind, rest = string(rest[n:n+int(klen)]), rest[n+int(klen):]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) != plen {
		return "", nil, fmt.Errorf("ckpt: malformed payload length")
	}
	return kind, rest[n:], nil
}

// Sum returns the short content hash (first 12 hex digits of sha256)
// used in store filenames.
func Sum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:6])
}

// Store is a directory of sequence-numbered, content-addressed
// checkpoint files. The zero Store is not usable; use NewStore.
type Store struct {
	dir    string
	prefix string
}

// NewStore opens (creating if needed) a checkpoint store rooted at
// dir, naming files "<prefix>-<seq>-<hash>.ck".
func NewStore(dir, prefix string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir, prefix: prefix}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// name builds the content-addressed filename of a blob.
func (s *Store) name(seq uint64, blob []byte) string {
	return fmt.Sprintf("%s-%08d-%s.ck", s.prefix, seq, Sum(blob))
}

// Write encodes the payload and persists it atomically under the next
// name: temp file in the same directory, fsync, rename. It returns the
// final path.
func (s *Store) Write(seq uint64, kind string, payload []byte) (string, error) {
	blob := Encode(kind, payload)
	final := filepath.Join(s.dir, s.name(seq, blob))
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+s.prefix+"-*")
	if err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return "", fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	return final, nil
}

// Entry describes one file in the store.
type Entry struct {
	Seq  uint64
	Path string
}

// Entries lists the store's checkpoint files in increasing sequence
// order, without validating their contents. Files whose names do not
// parse are ignored.
func (s *Store) Entries() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []Entry
	want := s.prefix + "-"
	for _, de := range des {
		name := de.Name()
		if !strings.HasPrefix(name, want) || !strings.HasSuffix(name, ".ck") {
			continue
		}
		mid := strings.TrimSuffix(name[len(want):], ".ck")
		seqStr, _, ok := strings.Cut(mid, "-")
		if !ok {
			continue
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, Entry{Seq: seq, Path: filepath.Join(s.dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// LatestValid scans from the highest sequence number down and returns
// the newest checkpoint that decodes with a matching digest, skipping
// corrupt or truncated files (a torn final checkpoint falls back to
// the one before it). ok is false when no valid checkpoint exists.
func (s *Store) LatestValid(wantKind string) (seq uint64, payload []byte, ok bool, err error) {
	entries, err := s.Entries()
	if err != nil {
		return 0, nil, false, err
	}
	for i := len(entries) - 1; i >= 0; i-- {
		data, err := os.ReadFile(entries[i].Path)
		if err != nil {
			continue
		}
		kind, pay, derr := Decode(data)
		if derr != nil || kind != wantKind {
			continue
		}
		return entries[i].Seq, pay, true, nil
	}
	return 0, nil, false, nil
}

// NextSeq returns one past the highest sequence number present (0 for
// an empty store), so writers resume numbering across process
// restarts without overwriting older checkpoints.
func (s *Store) NextSeq() (uint64, error) {
	entries, err := s.Entries()
	if err != nil {
		return 0, err
	}
	if len(entries) == 0 {
		return 0, nil
	}
	return entries[len(entries)-1].Seq + 1, nil
}
