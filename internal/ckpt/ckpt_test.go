package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello checkpoint world")
	blob := Encode("engine-run", payload)
	kind, got, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if kind != "engine-run" || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: kind=%q payload=%q", kind, got)
	}
	// Empty payload and empty kind are legal.
	kind, got, err = Decode(Encode("", nil))
	if err != nil || kind != "" || len(got) != 0 {
		t.Fatalf("empty round trip: kind=%q payload=%q err=%v", kind, got, err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := Encode("k", []byte("payload bytes"))
	// Flip one bit anywhere: digest check must fail.
	for _, i := range []int{0, len(magic) + 1, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted corrupted byte at %d", i)
		}
	}
	// Truncation must fail.
	for _, n := range []int{0, 4, len(blob) - 1} {
		if _, _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("Decode accepted truncation to %d bytes", n)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := Encode("kind", []byte{1, 2, 3})
	b := Encode("kind", []byte{1, 2, 3})
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestStoreWriteAndLatestValid(t *testing.T) {
	s, err := NewStore(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.LatestValid("engine-run"); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for seq, body := range []string{"round-10", "round-20", "round-30"} {
		if _, err := s.Write(uint64(seq), "engine-run", []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	seq, pay, ok, err := s.LatestValid("engine-run")
	if err != nil || !ok || seq != 2 || string(pay) != "round-30" {
		t.Fatalf("LatestValid = %d %q %v %v", seq, pay, ok, err)
	}
	next, err := s.NextSeq()
	if err != nil || next != 3 {
		t.Fatalf("NextSeq = %d %v", next, err)
	}
}

func TestStoreSkipsCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(0, "engine-run", []byte("good")); err != nil {
		t.Fatal(err)
	}
	last, err := s.Write(1, "engine-run", []byte("torn"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest checkpoint in place (simulated torn write).
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	seq, pay, ok, err := s.LatestValid("engine-run")
	if err != nil || !ok || seq != 0 || string(pay) != "good" {
		t.Fatalf("LatestValid after corruption = %d %q %v %v", seq, pay, ok, err)
	}
	// NextSeq still counts the corrupt file's sequence number, so a new
	// checkpoint never collides with the torn one.
	next, err := s.NextSeq()
	if err != nil || next != 2 {
		t.Fatalf("NextSeq = %d %v", next, err)
	}
}

func TestStoreIgnoresWrongKindAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, "run")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(0, "engine-run", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(1, "certify", []byte("other-kind")); err != nil {
		t.Fatal(err)
	}
	// Foreign files in the directory are ignored by the scan.
	if err := os.WriteFile(filepath.Join(dir, "result.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run-notanumber-xx.ck"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, pay, ok, err := s.LatestValid("engine-run")
	if err != nil || !ok || seq != 0 || string(pay) != "mine" {
		t.Fatalf("LatestValid = %d %q %v %v", seq, pay, ok, err)
	}
}

func TestStoreFilenameIsContentAddressed(t *testing.T) {
	s, err := NewStore(t.TempDir(), "run")
	if err != nil {
		t.Fatal(err)
	}
	path, err := s.Write(7, "k", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	wantHash := Sum(Encode("k", []byte("abc")))
	if !strings.HasPrefix(base, "run-00000007-") || !strings.Contains(base, wantHash) {
		t.Fatalf("filename %q missing seq/hash (want hash %s)", base, wantHash)
	}
}
