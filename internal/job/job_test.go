package job

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// floodSpec is the standard long-horizon test job: lossy FloodMax on
// a 32-cycle, checkpointing every 8 rounds.
func floodSpec(rounds int) Spec {
	return Spec{Kind: "flood", Host: "cycle:32", Seed: 7, Faults: "lossy:p=0.1", Rounds: rounds, CheckpointEvery: 8}
}

func openTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// waitState polls until the job reaches want (or the deadline).
func waitState(t *testing.T, m *Manager, id, want string) *Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if (st.State == "failed" || st.State == "done") && st.State != want {
			t.Fatalf("job %s reached terminal %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := m.Get(id)
	t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
	return nil
}

// TestJobLifecycle: submit → progress → done → result; resubmission
// of the same spec is the same job.
func TestJobLifecycle(t *testing.T) {
	m := openTestManager(t, Config{})
	spec := floodSpec(64)
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != spec.ID() {
		t.Fatalf("status id %q, want %q", st.ID, spec.ID())
	}
	done := waitState(t, m, st.ID, "done")
	if done.Progress.Done == 0 || done.Progress.Total != 64 {
		t.Errorf("progress %+v, want done>0 total=64", done.Progress)
	}
	body, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res floodResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != "flood" || res.N != 32 || res.Faults == nil {
		t.Fatalf("unexpected result %+v", res)
	}
	// Idempotent resubmission: same id, done state, no new attempt.
	again, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID || again.State != "done" || again.Attempts != done.Attempts {
		t.Fatalf("resubmission not idempotent: %+v vs %+v", again, done)
	}
	if ls := m.List(); len(ls) != 1 || ls[0].ID != st.ID {
		t.Fatalf("List = %+v, want the one job", ls)
	}
}

// TestJobResultDeterministic: an interrupted-and-recovered job's
// result bytes equal an uninterrupted control run's — the invariant
// the CI kill drill asserts end to end.
func TestJobResultDeterministic(t *testing.T) {
	spec := floodSpec(96)

	control := openTestManager(t, Config{})
	cst, err := control.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, control, cst.ID, "done")
	want, err := control.Result(cst.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted path: drain mid-run (checkpoint + preempt), then
	// reopen the same dir — crash recovery resumes from the snapshot.
	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, "running")
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	m1.Drain(drainCtx)
	cancel()

	m2 := openTestManager(t, Config{Dir: dir})
	re, ok := m2.Get(st.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if re.State == "failed" {
		t.Fatalf("recovered job failed: %s", re.Error)
	}
	waitState(t, m2, st.ID, "done")
	got, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs from control:\n  control %s\n  resumed %s", want, got)
	}
}

// TestJobCancelFreesWorker: cancelling a running job releases its
// worker slot for the next job.
func TestJobCancelFreesWorker(t *testing.T) {
	m := openTestManager(t, Config{Workers: 1})
	big, err := m.Submit(floodSpec(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, big.ID, "running")
	small, err := m.Submit(floodSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Cancel(big.ID); st.State != "cancelled" {
		t.Fatalf("cancel state %q", st.State)
	}
	waitState(t, m, small.ID, "done")
	if _, err := m.Result(big.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("cancelled job result err = %v, want ErrNotDone", err)
	}
	// The marker survives restarts.
	if st, _ := m.Get(big.ID); st.State != "cancelled" {
		t.Fatalf("cancelled job state %q", st.State)
	}
}

// TestJobWatchdogReschedule: a job exceeding its soft deadline is
// checkpointed and rescheduled, not failed, and still completes with
// the control result.
func TestJobWatchdogReschedule(t *testing.T) {
	spec := floodSpec(512)
	control := openTestManager(t, Config{})
	cst, err := control.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, control, cst.ID, "done")
	want, _ := control.Result(cst.ID)

	m := openTestManager(t, Config{SoftDeadline: 20 * time.Millisecond})
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, st.ID, "done")
	got, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("watchdog-rescheduled result differs from control")
	}
	if done.Reschedules == 0 {
		t.Skip("run completed inside the soft deadline on this machine")
	}
	if done.Attempts != 1 {
		t.Errorf("reschedules must not consume retries: attempts %d", done.Attempts)
	}
}

// TestJobCorruptSnapshotFallback: a corrupted latest checkpoint is
// detected by the container hash and the job resumes from the
// previous one, still matching the control bytes.
func TestJobCorruptSnapshotFallback(t *testing.T) {
	spec := floodSpec(96)
	control := openTestManager(t, Config{})
	cst, _ := control.Submit(spec)
	waitState(t, control, cst.ID, "done")
	want, _ := control.Result(cst.ID)

	dir := t.TempDir()
	m1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, st.ID, "running")
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	m1.Drain(drainCtx)
	cancel()

	// Corrupt the newest checkpoint file (flip one payload byte).
	jobDir := filepath.Join(dir, st.ID)
	ents, err := os.ReadDir(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	var cks []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "ck-") && strings.HasSuffix(e.Name(), ".ck") {
			cks = append(cks, e.Name())
		}
	}
	if len(cks) < 2 {
		t.Skipf("only %d checkpoints written before drain", len(cks))
	}
	latest := cks[len(cks)-1]
	blob, err := os.ReadFile(filepath.Join(jobDir, latest))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(jobDir, latest), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := openTestManager(t, Config{Dir: dir})
	waitState(t, m2, st.ID, "done")
	got, err := m2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result after corrupt-snapshot fallback differs from control")
	}
}

// TestJobRetryBackoffThenFail: a job whose host points at a transient
// failure... there is no injectable transient failure in the runner,
// so exercise the terminal path: retries are counted and the job
// fails with the error recorded durably.
func TestJobRetryBackoffThenFail(t *testing.T) {
	dir := t.TempDir()
	m := openTestManager(t, Config{Dir: dir, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond, MaxRetries: 2})
	// A certify job whose algorithm space blows the budget fails at
	// run time (Validate cannot see the interaction of host, radius
	// and budget).
	spec := Spec{Kind: "certify", Host: "cycle:16", Problem: "min-vertex-cover", Radius: 2, MaxAlgorithms: 1}
	st, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, _ := m.Get(st.ID)
		if got.State == "failed" {
			if got.Attempts != 3 {
				t.Errorf("attempts = %d, want 3 (initial + 2 retries)", got.Attempts)
			}
			if !strings.Contains(got.Error, "budget") {
				t.Errorf("error %q does not mention the budget", got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The failure record survives a restart.
	m.Close()
	m2 := openTestManager(t, Config{Dir: dir})
	got, ok := m2.Get(st.ID)
	if !ok || got.State != "failed" || got.Attempts != 3 {
		t.Fatalf("failure not durable: %+v", got)
	}
	if counts := m2.StateCounts(); counts["failed"] != 1 {
		t.Errorf("state gauge %v, want failed=1", counts)
	}
}

// TestJobSubmitValidation: bad specs are rejected at submission.
func TestJobSubmitValidation(t *testing.T) {
	m := openTestManager(t, Config{})
	bad := []Spec{
		{Kind: "nope", Host: "cycle:8"},
		{Kind: "flood", Host: "cycle:8"},                     // no rounds
		{Kind: "flood", Host: "what:8", Rounds: 4},           // bad host
		{Kind: "run", Algo: "cole-vishkin", Host: "cycle:8"}, // undirected host
		{Kind: "run", Algo: "warp", Host: "cycle:8"},         // bad algo
		{Kind: "measure", Host: "cycle:8"},                   // no rmax
		{Kind: "certify", Host: "cycle:8", Problem: "nope", Radius: 1, MaxAlgorithms: 8},
		{Kind: "flood", Host: "cycle:8", Rounds: 4, Faults: "bogus:z=1"}, // bad profile
	}
	for _, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if _, ok := m.Get("jdeadbeef0000"); ok {
		t.Error("Get of unknown id succeeded")
	}
	if _, err := m.Cancel("jdeadbeef0000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v", err)
	}
	if _, err := m.Result("jdeadbeef0000"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Result unknown = %v", err)
	}
}

// TestJobKinds: each workload kind completes and renders its result
// shape (run workloads both clean and faulty).
func TestJobKinds(t *testing.T) {
	m := openTestManager(t, Config{Workers: 4})
	specs := []Spec{
		{Kind: "run", Algo: "cole-vishkin", Host: "dcycle:48", Seed: 3},
		{Kind: "run", Algo: "cole-vishkin", Host: "dcycle:48", Seed: 3, Faults: "crash:f=3,by=2"},
		{Kind: "run", Algo: "matching", Host: "cycle:24", Seed: 5},
		{Kind: "run", Algo: "gather", Host: "cycle:24", Rmax: 2},
		{Kind: "measure", Host: "cycle:24", Rmax: 3},
		{Kind: "certify", Host: "dcycle:9", Problem: "min-edge-dominating-set", Radius: 1, MaxAlgorithms: 1 << 20},
	}
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		waitState(t, m, id, "done")
		body, err := m.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		var head struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(body, &head); err != nil || head.Kind != specs[i].Kind {
			t.Errorf("result %d kind %q (err %v), want %q", i, head.Kind, err, specs[i].Kind)
		}
	}
	// The certified EDS bound on the directed 9-cycle is exactly 3.
	var cert certifyResult
	body, _ := m.Result(ids[5])
	if err := json.Unmarshal(body, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.BestRatio != "3" || cert.Optimum != 3 {
		t.Errorf("certify job result %+v, want ratio 3 / optimum 3", cert)
	}
}

// TestJobSaturation: beyond workers+queue pending jobs, Submit sheds
// with ErrSaturated.
func TestJobSaturation(t *testing.T) {
	m := openTestManager(t, Config{Workers: 1, Queue: 1})
	// One running + fill the channel (cap workers+queue = 2).
	var err error
	var sawSaturated bool
	for i := 0; i < 8; i++ {
		_, err = m.Submit(floodSpec(1 << 18 << i))
		if errors.Is(err, ErrSaturated) {
			sawSaturated = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawSaturated {
		t.Fatal("queue never saturated")
	}
	if m.QueueDepth() == 0 {
		t.Error("queue depth 0 at saturation")
	}
}
