// Package job is the durable asynchronous job layer of localapproxd:
// long-running measure/run/certify/flood workloads submitted over HTTP
// run on a bounded worker pool, checkpoint their progress into a
// content-addressed on-disk store (internal/ckpt), survive daemon
// crashes (incomplete jobs are re-enqueued on Open and resume from
// their latest valid snapshot), retry transient failures with
// exponential backoff and jitter, and are rescheduled — checkpoint
// first, then preempt — by a soft-deadline watchdog so one huge job
// cannot monopolise a worker forever.
//
// Durability leans entirely on determinism: a job is a pure function
// of its spec, the job id is the content hash of the canonical spec
// encoding, and every runner's result bytes are reproducible, so a
// resumed job's result is byte-identical to an uninterrupted run's —
// the property the CI kill-restart drill asserts.
package job

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/problems"
)

// State is a job's lifecycle position. Transitions: Pending → Running
// → {Done, Failed, Cancelled}, with Running → Checkpointed → Running
// loops for watchdog reschedules, retry backoff, and daemon restarts.
type State int32

const (
	// Pending jobs are queued for a worker (no checkpoint yet).
	Pending State = iota
	// Running jobs hold a worker slot.
	Running
	// Checkpointed jobs were preempted (soft deadline, drain, crash)
	// or are waiting out a retry backoff; they re-enter the queue and
	// resume from their latest valid snapshot.
	Checkpointed
	// Done jobs have result bytes on disk.
	Done
	// Failed jobs exhausted their retries; the error is on disk.
	Failed
	// Cancelled jobs were deleted by the client.
	Cancelled

	numStates = 6
)

var stateNames = [numStates]string{"pending", "running", "checkpointed", "done", "failed", "cancelled"}

func (s State) String() string {
	if s < 0 || int(s) >= numStates {
		return fmt.Sprintf("state(%d)", int32(s))
	}
	return stateNames[s]
}

// terminal reports whether the state admits no further transitions.
func (s State) terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Spec is a job submission: which workload to run and how durably.
// The zero value of every tuning field takes the manager default. The
// spec is the job's identity — the id is the hash of its canonical
// encoding — so two submissions of the same spec are one job.
type Spec struct {
	// Kind selects the workload: "run" (engine workloads, as
	// /v1/run), "measure" (homogeneity sweep, as /v1/measure),
	// "certify" (PO lower-bound enumeration), or "flood" (long-horizon
	// FloodMax, the crash-drill workload).
	Kind string `json:"kind"`
	// Host is a host-registry descriptor (host.Parse grammar).
	Host string `json:"host"`
	// Algo names the run workload (cole-vishkin, matching, gather).
	Algo string `json:"algo,omitempty"`
	// Seed derives all job randomness (ids, rng); default 1.
	Seed int64 `json:"seed,omitempty"`
	// Faults is a fault-profile descriptor; empty runs clean.
	Faults string `json:"faults,omitempty"`
	// Rounds is the flood horizon (flood only; >= 1).
	Rounds int `json:"rounds,omitempty"`
	// Rmax is the sweep/gather radius (measure, run:gather).
	Rmax int `json:"rmax,omitempty"`
	// Problem/Radius/MaxAlgorithms parameterise certify jobs.
	Problem       string `json:"problem,omitempty"`
	Radius        int    `json:"radius,omitempty"`
	MaxAlgorithms int    `json:"max_algorithms,omitempty"`
	// CheckpointEvery is the snapshot cadence in rounds (engine jobs)
	// or assignments (certify); 0 takes the manager default, < 0
	// disables checkpointing for this job.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// SoftDeadlineMS bounds one attempt's wall time before the
	// watchdog checkpoints and reschedules it; 0 takes the manager
	// default, < 0 disables the watchdog for this job.
	SoftDeadlineMS int64 `json:"soft_deadline_ms,omitempty"`
	// MaxRetries bounds transient-failure retries; 0 takes the
	// manager default, < 0 means no retries.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Validate checks the spec fully at submission time, so every error a
// runner hits later is transient by construction and safe to retry.
func (s *Spec) Validate() error {
	switch s.Kind {
	case "flood":
		if s.Rounds < 1 {
			return fmt.Errorf("job: flood needs rounds >= 1 (got %d)", s.Rounds)
		}
	case "run":
		switch s.Algo {
		case "cole-vishkin", "matching", "gather":
		default:
			return fmt.Errorf("job: unknown run workload %q (want cole-vishkin, matching or gather)", s.Algo)
		}
	case "measure":
		if s.Rmax < 1 {
			return fmt.Errorf("job: measure needs rmax >= 1 (got %d)", s.Rmax)
		}
	case "certify":
		if _, err := problems.ByName(s.Problem); err != nil {
			return fmt.Errorf("job: %w", err)
		}
		if s.Radius < 1 {
			return fmt.Errorf("job: certify needs radius >= 1 (got %d)", s.Radius)
		}
		if s.MaxAlgorithms < 1 {
			return fmt.Errorf("job: certify needs max_algorithms >= 1 (got %d)", s.MaxAlgorithms)
		}
	default:
		return fmt.Errorf("job: unknown kind %q (want run, measure, certify or flood)", s.Kind)
	}
	if s.Host == "" {
		return fmt.Errorf("job: missing host descriptor\n%s", host.Describe())
	}
	rh, err := host.Parse(s.Host)
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	if s.Kind == "run" && s.Algo == "cole-vishkin" && (rh.D == nil || !rh.D.IsRegularDigraph(1)) {
		return fmt.Errorf("job: cole-vishkin needs a consistently oriented cycle host (e.g. dcycle:<n>)")
	}
	if s.Faults != "" {
		if _, err := model.ParseProfile(s.Faults); err != nil {
			return fmt.Errorf("job: %w", err)
		}
	}
	return nil
}

// canonical is the hashed encoding: JSON with the struct's fixed field
// order and zero fields omitted, after normalising the seed default.
func (s *Spec) canonical() []byte {
	c := *s
	if c.Seed == 0 {
		c.Seed = 1
	}
	b, err := json.Marshal(&c)
	if err != nil {
		// Spec is a plain struct of strings and ints; Marshal cannot
		// fail on it.
		panic(err)
	}
	return b
}

// ID is the job's content-addressed identity: equal specs are the
// same job, so resubmission after a crash (or a duplicate click) is
// idempotent.
func (s *Spec) ID() string { return "j" + ckpt.Sum(s.canonical()) }

// Progress is a job's coarse completion state: checkpoint rounds for
// engine jobs, assignments for certify. Total may be 0 when the
// workload has no natural length (measure).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Status is the externally visible job record (the body of
// GET /v1/jobs/{id}).
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Spec  Spec   `json:"spec"`
	// Attempts counts started runs; Reschedules counts watchdog
	// preemptions (not failures).
	Attempts    int      `json:"attempts"`
	Reschedules int      `json:"reschedules"`
	Progress    Progress `json:"progress"`
	Error       string   `json:"error,omitempty"`
}
