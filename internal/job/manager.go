package job

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/par"
)

// Errors the HTTP layer maps onto status codes.
var (
	// ErrSaturated: the pending queue is full (429 + Retry-After).
	ErrSaturated = errors.New("job: queue full, retry later")
	// ErrDraining: the manager is shutting down (503).
	ErrDraining = errors.New("job: manager draining")
	// ErrNotFound: no such job id (404).
	ErrNotFound = errors.New("job: not found")
	// ErrNotDone: the job has no result yet (409).
	ErrNotDone = errors.New("job: not done")
)

// Config sizes the manager. Zero values take the defaults noted.
type Config struct {
	// Dir is the durable job root; each job owns Dir/<id>/ with its
	// spec, checkpoints, and terminal record. Required.
	Dir string
	// Workers bounds concurrently running jobs (default 2; each job's
	// engine additionally draws workers from par's process-wide
	// Reserve budget, so total goroutines stay bounded).
	Workers int
	// Queue bounds jobs waiting for a worker (default 16); beyond it,
	// Submit fails with ErrSaturated.
	Queue int
	// CheckpointEvery is the default snapshot cadence in rounds
	// (engine jobs) or assignments (certify); default 8.
	CheckpointEvery int
	// SoftDeadline is the default per-attempt wall-time bound before
	// the watchdog checkpoints and reschedules; default 0 (disabled).
	SoftDeadline time.Duration
	// MaxRetries is the default transient-failure retry budget;
	// default 2.
	MaxRetries int
	// Backoff and MaxBackoff shape the exponential retry delay
	// (defaults 50ms and 5s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logger receives structured job lifecycle events; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Terminal record filenames inside a job directory.
const (
	specFile      = "spec.json"
	resultFile    = "result.json"
	failedFile    = "failed.json"
	cancelledFile = "CANCELLED"
)

// jobRec is the in-memory job record; the durable truth is the job
// directory.
type jobRec struct {
	id    string
	dir   string
	store *ckpt.Store

	mu          sync.Mutex
	spec        Spec
	state       State
	attempts    int
	reschedules int
	done, total int
	errMsg      string
	result      []byte
	softFired   bool
	hasCkpt     bool
	cancel      context.CancelFunc
	att         *attempt
}

func (j *jobRec) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.mu.Unlock()
}

// statusLocked renders the record; j.mu must be held.
func (j *jobRec) statusLocked() *Status {
	return &Status{
		ID: j.id, State: j.state.String(), Spec: j.spec,
		Attempts: j.attempts, Reschedules: j.reschedules,
		Progress: Progress{Done: j.done, Total: j.total}, Error: j.errMsg,
	}
}

func (j *jobRec) status() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// Manager owns the durable job set: a bounded worker pool draining a
// bounded queue, the on-disk job directories, and the lifecycle
// machinery (watchdog, retry backoff, drain, crash recovery).
type Manager struct {
	cfg  Config
	log  *slog.Logger
	ctx  context.Context
	stop context.CancelFunc

	queue    chan *jobRec
	wg       sync.WaitGroup
	draining atomic.Bool
	counts   [numStates]atomic.Int64

	mu   sync.Mutex
	jobs map[string]*jobRec
}

// Open loads the job root, recovers incomplete jobs (crash recovery:
// anything without a terminal record is re-enqueued and resumes from
// its latest valid snapshot), and starts the worker pool.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("job: Config.Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	m := &Manager{
		cfg:   cfg,
		log:   cfg.Logger,
		queue: make(chan *jobRec, cfg.Workers+cfg.Queue),
		jobs:  map[string]*jobRec{},
	}
	m.ctx, m.stop = context.WithCancel(context.Background())
	if err := m.recover(); err != nil {
		m.stop()
		return nil, err
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover scans the job root. Unreadable or mismatched directories
// are logged and skipped, never fatal: one corrupt job must not take
// the daemon down.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return fmt.Errorf("job: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "j") {
			continue
		}
		id := ent.Name()
		dir := filepath.Join(m.cfg.Dir, id)
		raw, err := os.ReadFile(filepath.Join(dir, specFile))
		if err != nil {
			m.log.Warn("job recovery: unreadable spec, skipping", "job", id, "err", err)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(raw, &spec); err != nil {
			m.log.Warn("job recovery: malformed spec, skipping", "job", id, "err", err)
			continue
		}
		if err := spec.Validate(); err != nil {
			m.log.Warn("job recovery: invalid spec, skipping", "job", id, "err", err)
			continue
		}
		if spec.ID() != id {
			m.log.Warn("job recovery: spec hash mismatch, skipping", "job", id, "want", spec.ID())
			continue
		}
		j, err := m.newRec(id, dir, spec)
		if err != nil {
			m.log.Warn("job recovery: store open failed, skipping", "job", id, "err", err)
			continue
		}
		switch {
		case j.load(resultFile, func(b []byte) { j.result = b }):
			j.state = Done
		case j.load(failedFile, func(b []byte) {
			var rec struct {
				Error    string `json:"error"`
				Attempts int    `json:"attempts"`
			}
			if json.Unmarshal(b, &rec) == nil {
				j.errMsg, j.attempts = rec.Error, rec.Attempts
			}
		}):
			j.state = Failed
		case exists(filepath.Join(dir, cancelledFile)):
			j.state = Cancelled
		default:
			if es, err := j.store.Entries(); err == nil && len(es) > 0 {
				j.hasCkpt = true
				j.state = Checkpointed
			}
			m.queue <- j
			m.log.Info("job recovery: re-enqueued", "job", id, "kind", spec.Kind, "checkpointed", j.hasCkpt)
		}
		m.counts[j.state].Add(1)
		m.jobs[id] = j
	}
	return nil
}

// load reads a job file into fn, reporting whether it existed.
func (j *jobRec) load(name string, fn func([]byte)) bool {
	b, err := os.ReadFile(filepath.Join(j.dir, name))
	if err != nil {
		return false
	}
	fn(b)
	return true
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func (m *Manager) newRec(id, dir string, spec Spec) (*jobRec, error) {
	store, err := ckpt.NewStore(dir, "ck")
	if err != nil {
		return nil, err
	}
	return &jobRec{id: id, dir: dir, store: store, spec: spec, state: Pending}, nil
}

// setState moves j between states and keeps the gauge consistent;
// j.mu must be held.
func (m *Manager) setState(j *jobRec, s State) {
	m.counts[j.state].Add(-1)
	m.counts[s].Add(1)
	j.state = s
}

// Submit registers a job. Submission is idempotent: the id is the
// content hash of the spec, so resubmitting an existing spec returns
// the existing job whatever its state.
func (m *Manager) Submit(spec Spec) (*Status, error) {
	if m.draining.Load() {
		return nil, ErrDraining
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	id := spec.ID()
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		return j.status(), nil
	}
	if len(m.queue) >= cap(m.queue) {
		m.mu.Unlock()
		return nil, ErrSaturated
	}
	dir := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("job: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(dir, specFile), spec.canonical()); err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("job: %w", err)
	}
	j, err := m.newRec(id, dir, spec)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.jobs[id] = j
	m.counts[Pending].Add(1)
	m.mu.Unlock()
	m.queue <- j
	m.log.Info("job submitted", "job", id, "kind", spec.Kind, "host", spec.Host)
	return j.status(), nil
}

// Get returns a job's status.
func (m *Manager) Get(id string) (*Status, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.status(), true
}

// List returns every job's status, sorted by id (deterministic
// paging for clients).
func (m *Manager) List() []*Status {
	m.mu.Lock()
	recs := make([]*jobRec, 0, len(m.jobs))
	for _, j := range m.jobs {
		recs = append(recs, j)
	}
	m.mu.Unlock()
	sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
	out := make([]*Status, len(recs))
	for i, j := range recs {
		out[i] = j.status()
	}
	return out
}

// Result returns a done job's result bytes (ErrNotDone otherwise).
func (m *Manager) Result(id string) ([]byte, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Done {
		return nil, fmt.Errorf("%w (state %s)", ErrNotDone, j.state)
	}
	return j.result, nil
}

// Cancel moves a job to Cancelled, interrupts it if running, and
// frees its worker slot. Cancelling a terminal job is a no-op
// returning its status.
func (m *Manager) Cancel(id string) (*Status, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if j.state.terminal() {
		st := j.statusLocked()
		j.mu.Unlock()
		return st, nil
	}
	m.setState(j, Cancelled)
	cancel := j.cancel
	st := j.statusLocked()
	j.mu.Unlock()
	if err := writeFileAtomic(filepath.Join(j.dir, cancelledFile), []byte("cancelled\n")); err != nil {
		m.log.Warn("job cancel marker write failed", "job", id, "err", err)
	}
	if cancel != nil {
		cancel()
	}
	m.log.Info("job cancelled", "job", id)
	return st, nil
}

// QueueDepth gauges jobs currently enqueued (pending + rescheduled),
// the basis of the HTTP layer's Retry-After estimate.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Workers reports the pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// StateCounts samples the per-state job gauge for /metrics.
func (m *Manager) StateCounts() map[string]int64 {
	out := make(map[string]int64, numStates)
	for s := 0; s < numStates; s++ {
		out[State(s).String()] = m.counts[s].Load()
	}
	return out
}

// Drain checkpoints in-flight jobs at their next round barrier,
// cancels them, and stops the pool, waiting up to ctx. Interrupted
// jobs keep their Checkpointed state on disk and resume on the next
// Open — the SIGTERM half of crash recovery.
func (m *Manager) Drain(ctx context.Context) {
	m.draining.Store(true)
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.att != nil {
			j.att.checkpointNow()
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.log.Info("job manager drained")
	case <-ctx.Done():
		m.log.Warn("job manager drain timed out", "err", ctx.Err())
	}
}

// Close stops the pool without the checkpoint pass (tests; production
// uses Drain).
func (m *Manager) Close() {
	m.draining.Store(true)
	m.stop()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one attempt: arm the attempt (context, store,
// cadence, watchdog), run the workload under panic isolation, then
// classify the outcome — done, user-cancelled, watchdog reschedule,
// drain preemption, retry with backoff, or terminal failure.
func (m *Manager) runJob(j *jobRec) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	actx, cancel := context.WithCancel(m.ctx)
	att := &attempt{
		ctx:      actx,
		store:    j.store,
		every:    resolveEvery(j.spec, m.cfg),
		progress: j.setProgress,
		noteCkpt: func() {
			j.mu.Lock()
			j.hasCkpt = true
			j.mu.Unlock()
		},
	}
	j.cancel = cancel
	j.att = att
	j.softFired = false
	j.attempts++
	attemptNo := j.attempts
	m.setState(j, Running)
	spec := j.spec
	j.mu.Unlock()
	defer cancel()

	var watchdog *time.Timer
	if soft := resolveSoftDeadline(spec, m.cfg); soft > 0 {
		watchdog = time.AfterFunc(soft, func() {
			j.mu.Lock()
			j.softFired = true
			j.mu.Unlock()
			att.checkpointNow()
			cancel()
		})
	}
	m.log.Info("job attempt", "job", j.id, "kind", spec.Kind, "attempt", attemptNo)
	start := time.Now()
	var body []byte
	var err error
	if cerr := par.Catch(func() { body, err = runSpec(att, spec) }); cerr != nil {
		body, err = nil, cerr
	}
	if watchdog != nil {
		watchdog.Stop()
	}
	dur := time.Since(start)

	j.mu.Lock()
	j.cancel = nil
	j.att = nil
	if j.state == Cancelled {
		j.mu.Unlock()
		m.log.Info("job attempt ended by cancel", "job", j.id, "dur", dur)
		return
	}
	if err == nil {
		if werr := writeFileAtomic(filepath.Join(j.dir, resultFile), body); werr != nil {
			err = fmt.Errorf("job: result write: %w", werr)
		} else {
			j.result = body
			m.setState(j, Done)
			j.mu.Unlock()
			m.log.Info("job done", "job", j.id, "attempt", attemptNo, "dur", dur, "bytes", len(body))
			return
		}
	}
	interrupted := Pending
	if j.hasCkpt {
		interrupted = Checkpointed
	}
	switch {
	case j.softFired:
		// Watchdog preemption is not a failure: re-enqueue at the back
		// of the queue so other jobs get the worker.
		j.reschedules++
		j.attempts-- // the interrupted attempt does not consume a retry
		m.setState(j, interrupted)
		j.mu.Unlock()
		m.log.Info("job rescheduled by watchdog", "job", j.id, "dur", dur, "checkpointed", interrupted == Checkpointed)
		m.requeue(j)
	case m.ctx.Err() != nil:
		// Drain/shutdown: leave the job checkpointed on disk; the next
		// Open re-enqueues and resumes it.
		m.setState(j, interrupted)
		j.mu.Unlock()
		m.log.Info("job preempted by drain", "job", j.id, "dur", dur)
	case j.attempts >= resolveRetries(spec, m.cfg)+1:
		j.errMsg = err.Error()
		rec, _ := json.Marshal(map[string]any{"error": j.errMsg, "attempts": j.attempts})
		m.setState(j, Failed)
		j.mu.Unlock()
		if werr := writeFileAtomic(filepath.Join(j.dir, failedFile), rec); werr != nil {
			m.log.Warn("job failure record write failed", "job", j.id, "err", werr)
		}
		m.log.Error("job failed", "job", j.id, "attempts", attemptNo, "dur", dur, "err", err)
	default:
		m.setState(j, interrupted)
		attempts := j.attempts
		j.mu.Unlock()
		delay := backoffDelay(m.cfg, j.id, attempts)
		m.log.Warn("job retrying", "job", j.id, "attempt", attemptNo, "backoff", delay, "err", err)
		time.AfterFunc(delay, func() { m.requeue(j) })
	}
}

// requeue re-enqueues without ever blocking a worker on its own full
// queue: the rare overflow falls back to a goroutine that waits for a
// slot or for shutdown.
func (m *Manager) requeue(j *jobRec) {
	select {
	case m.queue <- j:
	case <-m.ctx.Done():
	default:
		go func() {
			select {
			case m.queue <- j:
			case <-m.ctx.Done():
			}
		}()
	}
}

// resolveEvery maps the spec cadence onto attempt semantics: > 0
// periodic, 0 RequestNow-only, < 0 disabled.
func resolveEvery(spec Spec, cfg Config) int {
	e := spec.CheckpointEvery
	if e == 0 {
		e = cfg.CheckpointEvery
	}
	if e < 0 {
		return -1
	}
	return e
}

func resolveSoftDeadline(spec Spec, cfg Config) time.Duration {
	if spec.SoftDeadlineMS < 0 {
		return 0
	}
	if spec.SoftDeadlineMS > 0 {
		return time.Duration(spec.SoftDeadlineMS) * time.Millisecond
	}
	return cfg.SoftDeadline
}

func resolveRetries(spec Spec, cfg Config) int {
	if spec.MaxRetries < 0 {
		return 0
	}
	if spec.MaxRetries > 0 {
		return spec.MaxRetries
	}
	return cfg.MaxRetries
}

// backoffDelay is exponential in the attempt number, capped, plus
// deterministic per-(job, attempt) jitter in [0, delay/2] — spread
// without a time or rand dependency, reproducible in tests.
func backoffDelay(cfg Config, id string, attempt int) time.Duration {
	d := cfg.Backoff
	for i := 1; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	return d + time.Duration(h%uint64(d/2+1))
}

// writeFileAtomic is temp-write + fsync + rename, the same discipline
// as the checkpoint store: a crash leaves either the old file or the
// new one, never a torn write.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
