package job

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"repro/internal/algorithms"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
	"repro/internal/view"
)

// This file is the workload layer of the job subsystem: each runner
// resolves a validated spec into the repo's engine entry points (the
// On variants, so the runner controls engine arming), wires the
// checkpoint cadence into the job's on-disk store, arms a resume
// snapshot when the store holds one, and renders a deterministic JSON
// result. Result bytes are a pure function of the spec — no
// timestamps, no attempt counters — so an interrupted-and-resumed job
// produces the same bytes as an uninterrupted control run.

// attempt is one execution of a job: the runner's handle to the
// cancellation context, the checkpoint store, and the
// progress/watchdog plumbing. every > 0 checkpoints periodically,
// every == 0 only on RequestNow (watchdog/drain), every < 0 disables
// checkpointing entirely.
type attempt struct {
	ctx      context.Context
	store    *ckpt.Store
	every    int
	progress func(done, total int)
	noteCkpt func()

	mu sync.Mutex
	ck *model.Checkpointer
}

func (a *attempt) arm(ck *model.Checkpointer) {
	a.mu.Lock()
	a.ck = ck
	a.mu.Unlock()
}

// checkpointNow asks the in-flight engine (if any) to snapshot at its
// next round barrier — the capture half of checkpoint-then-preempt.
// The caller cancels the attempt's context right after; the engine
// reaches the barrier, writes the snapshot, then observes the dead
// context at the next round boundary.
func (a *attempt) checkpointNow() {
	a.mu.Lock()
	ck := a.ck
	a.mu.Unlock()
	if ck != nil {
		ck.RequestNow()
	}
}

// engineCheckpointer builds the store-backed sink for engine jobs.
// The sequence number is the snapshot's next round, so a resumed run
// re-writes the same content-addressed file names it would have
// written uninterrupted (idempotent overwrite, byte-identical).
func (a *attempt) engineCheckpointer(total int) *model.Checkpointer {
	ck := &model.Checkpointer{Every: a.every, Sink: func(s *model.Snapshot) error {
		if _, err := a.store.Write(uint64(s.Round), model.SnapshotKind, s.Encode()); err != nil {
			return err
		}
		a.noteCkpt()
		a.progress(s.Round, total)
		return nil
	}}
	a.arm(ck)
	return ck
}

// wordEngine builds the context-armed word engine for an engine job,
// with checkpointing into the store and resume from the latest valid
// snapshot when one exists. Corrupt or truncated snapshot files fail
// the container hash and are skipped by LatestValid, falling back to
// the previous checkpoint (or a fresh start).
func (a *attempt) wordEngine(h *model.Host, total int) (*model.WordEngine, error) {
	e := model.TypedOn[uint64](model.NewEngine(h).WithContext(a.ctx))
	if a.every < 0 {
		return e, nil
	}
	e = e.WithCheckpoints(a.engineCheckpointer(total))
	_, payload, ok, err := a.store.LatestValid(model.SnapshotKind)
	if err != nil || !ok {
		return e, err
	}
	snap, err := model.DecodeSnapshot(payload)
	if err != nil {
		return nil, fmt.Errorf("job: checkpoint decode: %w", err)
	}
	return e.Resume(snap), nil
}

// resolveHost parses the descriptor into an engine host (identical to
// the synchronous /v1/run path).
func resolveHost(desc string) (*model.Host, string, error) {
	rh, err := host.Parse(desc)
	if err != nil {
		return nil, "", err
	}
	if rh.D != nil {
		return &model.Host{D: rh.D, G: rh.G}, rh.Desc, nil
	}
	return model.HostFromGraph(rh.G), rh.Desc, nil
}

// seed normalises the spec seed (0 means 1, matching canonical()).
func (s *Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// schedule builds the fault schedule, or nil for clean runs.
func (s *Spec) schedule(h *model.Host) (model.Schedule, string, error) {
	if s.Faults == "" {
		return nil, "", nil
	}
	prof, err := model.ParseProfile(s.Faults)
	if err != nil {
		return nil, "", err
	}
	return prof.New(h, s.seed()), prof.Desc, nil
}

// faultSummary is the fault block of job results (present only on
// faulty runs).
type faultSummary struct {
	Profile    string `json:"profile"`
	Crashed    int    `json:"crashed"`
	Dropped    int64  `json:"dropped"`
	Duplicated int64  `json:"duplicated"`
	Reordered  int64  `json:"reordered"`
	Violations int    `json:"violations,omitempty"`
	Uncovered  int    `json:"uncovered,omitempty"`
	Conflicts  int    `json:"conflicts,omitempty"`
}

func summarise(profile string, rep *model.FaultReport) *faultSummary {
	return &faultSummary{
		Profile: profile, Crashed: rep.NumCrashed,
		Dropped: rep.Dropped, Duplicated: rep.Duplicated, Reordered: rep.Reordered,
	}
}

// runSpec dispatches a validated spec to its workload runner.
func runSpec(a *attempt, spec Spec) ([]byte, error) {
	switch spec.Kind {
	case "flood":
		return runFlood(a, spec)
	case "run":
		return runEngineWorkload(a, spec)
	case "measure":
		return runMeasure(a, spec)
	case "certify":
		return runCertify(a, spec)
	}
	return nil, fmt.Errorf("job: unknown kind %q", spec.Kind)
}

// floodResult is the result body of flood jobs.
type floodResult struct {
	Kind      string        `json:"kind"`
	Host      string        `json:"host"`
	N         int           `json:"n"`
	Seed      int64         `json:"seed"`
	Horizon   int           `json:"horizon"`
	Rounds    int           `json:"rounds"`
	Leader    int           `json:"leader"`
	Converged int           `json:"converged"`
	Faults    *faultSummary `json:"faults,omitempty"`
}

// runFlood is the long-horizon crash-drill workload: FloodMax for the
// spec's horizon, checkpointing every cadence rounds.
func runFlood(a *attempt, spec Spec) ([]byte, error) {
	h, desc, err := resolveHost(spec.Host)
	if err != nil {
		return nil, err
	}
	n := h.G.N()
	ids := rand.New(rand.NewSource(spec.seed())).Perm(8 * n)[:n]
	sched, prof, err := spec.schedule(h)
	if err != nil {
		return nil, err
	}
	e, err := a.wordEngine(h, spec.Rounds)
	if err != nil {
		return nil, err
	}
	var res *algorithms.FloodMaxResult
	if sched != nil {
		res, err = algorithms.FloodMaxFaultyOn(e, h, ids, spec.Rounds, sched)
	} else {
		res, err = algorithms.FloodMaxOn(e, h, ids, spec.Rounds)
	}
	if err != nil {
		return nil, err
	}
	out := floodResult{
		Kind: "flood", Host: desc, N: n, Seed: spec.seed(), Horizon: spec.Rounds,
		Rounds: res.Rounds, Leader: res.Leader, Converged: res.Converged,
	}
	if res.Report != nil {
		out.Faults = summarise(prof, res.Report)
	}
	a.progress(spec.Rounds, spec.Rounds)
	return json.Marshal(&out)
}

// runResult is the result body of run jobs (mirrors /v1/run).
type runResult struct {
	Kind   string        `json:"kind"`
	Host   string        `json:"host"`
	Algo   string        `json:"algo"`
	N      int           `json:"n"`
	Seed   int64         `json:"seed"`
	Rounds int           `json:"rounds"`
	Size   int           `json:"size"`
	Faults *faultSummary `json:"faults,omitempty"`
}

// gatherFaultSlack mirrors the synchronous run path.
const gatherFaultSlack = 256

// runEngineWorkload runs the /v1/run workloads as durable jobs. The
// word-lane workloads (cole-vishkin, matching) checkpoint and resume
// through the engine's default uint64 codec; gather's untyped view
// state has no codec, so gather jobs restart from scratch after a
// crash instead of resuming.
func runEngineWorkload(a *attempt, spec Spec) ([]byte, error) {
	h, desc, err := resolveHost(spec.Host)
	if err != nil {
		return nil, err
	}
	n := h.G.N()
	rng := rand.New(rand.NewSource(spec.seed()))
	sched, prof, err := spec.schedule(h)
	if err != nil {
		return nil, err
	}
	out := runResult{Kind: "run", Host: desc, Algo: spec.Algo, N: n, Seed: spec.seed()}
	switch spec.Algo {
	case "cole-vishkin":
		ids := rng.Perm(8 * n)[:n]
		e, err := a.wordEngine(h, 0)
		if err != nil {
			return nil, err
		}
		if sched != nil {
			res, err := algorithms.ColeVishkinMISFaultyOn(e, h, ids, sched)
			if err != nil {
				return nil, err
			}
			out.Rounds, out.Size = res.Rounds, res.MIS.Size()
			out.Faults = summarise(prof, res.Report)
			out.Faults.Violations, out.Faults.Uncovered = res.Violations, res.Uncovered
		} else {
			res, err := algorithms.ColeVishkinMISOn(e, h, ids)
			if err != nil {
				return nil, err
			}
			out.Rounds, out.Size = res.Rounds, res.MIS.Size()
		}
	case "matching":
		e, err := a.wordEngine(h, 0)
		if err != nil {
			return nil, err
		}
		if sched != nil {
			res, err := algorithms.RandomizedMatchingFaultyOn(e, h, rng, sched)
			if err != nil {
				return nil, err
			}
			out.Rounds, out.Size = 2, res.Matching.Size()
			out.Faults = summarise(prof, res.Report)
			out.Faults.Conflicts = res.Conflicts
		} else {
			sol, err := algorithms.RandomizedMatchingOn(e, h, rng)
			if err != nil {
				return nil, err
			}
			out.Rounds, out.Size = 2, sol.Size()
		}
	case "gather":
		r := spec.Rmax
		if r < 1 {
			r = 2
		}
		types := map[*view.Tree]bool{}
		if sched != nil {
			states, rounds, rep, err := model.RunRoundsStatesFaultyCtx(a.ctx, h, nil, model.GatherViews(r), r+2+gatherFaultSlack, sched)
			if err != nil {
				return nil, err
			}
			for v, st := range states {
				if rep.CrashedNode(v) {
					continue
				}
				types[st.(*model.GatherState).Tree] = true
			}
			out.Rounds, out.Size = rounds, len(types)
			out.Faults = summarise(prof, rep)
		} else {
			states, rounds, err := model.RunRoundsStatesCtx(a.ctx, h, nil, model.GatherViews(r), r+2)
			if err != nil {
				return nil, err
			}
			for _, st := range states {
				types[st.(*model.GatherState).Tree] = true
			}
			out.Rounds, out.Size = rounds, len(types)
		}
	default:
		return nil, fmt.Errorf("job: unknown run workload %q", spec.Algo)
	}
	return json.Marshal(&out)
}

// measureResult is the result body of measure jobs (mirrors
// /v1/measure). Sweeps have no checkpoint support; crashed measure
// jobs restart from scratch.
type measureResult struct {
	Kind  string        `json:"kind"`
	Host  string        `json:"host"`
	N     int           `json:"n"`
	M     int           `json:"m"`
	Rmax  int           `json:"rmax"`
	Radii []radiusEntry `json:"radii"`
}

type radiusEntry struct {
	R        int     `json:"r"`
	Alpha    float64 `json:"alpha"`
	Types    int     `json:"types"`
	Majority int     `json:"majority"`
}

func runMeasure(a *attempt, spec Spec) ([]byte, error) {
	h, desc, err := resolveHost(spec.Host)
	if err != nil {
		return nil, err
	}
	homs, err := order.SweepMeasureAllCtx(a.ctx, h.G, order.Identity(h.G.N()), spec.Rmax)
	if err != nil {
		return nil, err
	}
	out := measureResult{Kind: "measure", Host: desc, N: h.G.N(), M: h.G.M(), Rmax: spec.Rmax}
	for r, hm := range homs {
		out.Radii = append(out.Radii, radiusEntry{R: r + 1, Alpha: hm.Alpha, Types: len(hm.Counts), Majority: hm.Count})
	}
	return json.Marshal(&out)
}

// certifyResult is the result body of certify jobs. BestRatio is a
// decimal string so +Inf (no feasible assignment) survives JSON.
type certifyResult struct {
	Kind          string `json:"kind"`
	Host          string `json:"host"`
	Problem       string `json:"problem"`
	Radius        int    `json:"radius"`
	Types         int    `json:"types"`
	Algorithms    int    `json:"algorithms"`
	FeasibleCount int    `json:"feasible"`
	BestRatio     string `json:"best_ratio"`
	Optimum       int    `json:"optimum"`
}

// runCertify enumerates the PO algorithm space with periodic
// interned-catalogue checkpoints, resuming the cursor from the latest
// valid snapshot instead of restarting the enumeration.
func runCertify(a *attempt, spec Spec) ([]byte, error) {
	h, desc, err := resolveHost(spec.Host)
	if err != nil {
		return nil, err
	}
	p, err := problems.ByName(spec.Problem)
	if err != nil {
		return nil, err
	}
	opts := core.CertifyOpts{Ctx: a.ctx, Progress: a.progress}
	if a.every >= 0 {
		opts.Every = a.every
		opts.Checkpoint = func(s *core.CertifySnapshot) error {
			if _, err := a.store.Write(uint64(s.Next), core.CertifySnapshotKind, s.Encode()); err != nil {
				return err
			}
			a.noteCkpt()
			return nil
		}
		if _, payload, ok, err := a.store.LatestValid(core.CertifySnapshotKind); err != nil {
			return nil, err
		} else if ok {
			snap, err := core.DecodeCertifySnapshot(payload)
			if err != nil {
				return nil, fmt.Errorf("job: checkpoint decode: %w", err)
			}
			opts.Resume = snap
		}
	}
	lb, err := core.CertifyPOLowerBoundOpts(h, p, spec.Radius, spec.MaxAlgorithms, opts)
	if err != nil {
		return nil, err
	}
	out := certifyResult{
		Kind: "certify", Host: desc, Problem: p.Name(), Radius: spec.Radius,
		Types: lb.Types, Algorithms: lb.Algorithms, FeasibleCount: lb.FeasibleCount,
		BestRatio: strconv.FormatFloat(lb.BestRatio, 'g', -1, 64), Optimum: lb.Optimum,
	}
	return json.Marshal(&out)
}
