package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refGraph is the retained slice-of-slices reference implementation:
// the representation the package used before the CSR refactor, built
// through a map-backed edge set. The CSR Graph is pinned against it
// edge for edge.
type refGraph struct {
	n   int
	adj [][]int
}

func buildRef(n int, edges [][2]int) (*refGraph, error) {
	set := map[[2]int]struct{}{}
	adj := make([][]int, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n || u == v {
			return nil, fmt.Errorf("ref: bad edge {%d,%d}", u, v)
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, dup := set[key]; dup {
			return nil, fmt.Errorf("ref: duplicate edge {%d,%d}", u, v)
		}
		set[key] = struct{}{}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return &refGraph{n: n, adj: adj}, nil
}

// refBall is the pre-CSR Ball: BFS over the reference adjacency.
func (r *refGraph) ball(v, rad int) []int {
	dist := make([]int, r.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	out := []int{v}
	for head := 0; head < len(out); head++ {
		u := out[head]
		if dist[u] == rad {
			continue
		}
		for _, w := range r.adj[u] {
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				out = append(out, w)
			}
		}
	}
	return out
}

// sameAdjacency checks CSR rows against the reference lists.
func sameAdjacency(t *testing.T, g *Graph, r *refGraph) {
	t.Helper()
	if g.N() != r.n {
		t.Fatalf("n: csr %d ref %d", g.N(), r.n)
	}
	m := 0
	for v := 0; v < r.n; v++ {
		m += len(r.adj[v])
		row := g.Neighbors(v)
		if len(row) != len(r.adj[v]) {
			t.Fatalf("degree of %d: csr %d ref %d", v, len(row), len(r.adj[v]))
		}
		for i, w := range row {
			if int(w) != r.adj[v][i] {
				t.Fatalf("neighbor %d of %d: csr %d ref %d", i, v, w, r.adj[v][i])
			}
		}
	}
	if g.M() != m/2 {
		t.Fatalf("m: csr %d ref %d", g.M(), m/2)
	}
}

// differentialHosts enumerates the pinned host families: Petersen,
// tori, random-regular (several seeds) and the generated expander /
// grid families. Cayley hosts are pinned in csr_hosts_test.go (they
// need the host registry, which imports this package).
func differentialHosts() map[string]*Graph {
	rng := rand.New(rand.NewSource(11))
	return map[string]*Graph{
		"petersen":     Petersen(),
		"torus6x6":     Torus(6, 6),
		"torus3x4x5":   Torus(3, 4, 5),
		"regular-d3":   RandomRegular(24, 3, rng),
		"regular-d4":   RandomRegular(30, 4, rng),
		"grid3d":       Grid3D(3, 4, 2),
		"margulis":     MargulisExpander(5),
		"hypercube4":   Hypercube(4),
		"circulant":    Circulant(17, 1, 3, 5),
		"complete-bip": CompleteBipartite(4, 5),
	}
}

func TestCSRAgainstReference(t *testing.T) {
	for name, g := range differentialHosts() {
		t.Run(name, func(t *testing.T) {
			edges := make([][2]int, 0, g.M())
			for _, e := range g.Edges() {
				edges = append(edges, [2]int{e.U, e.V})
			}
			ref, err := buildRef(g.N(), edges)
			if err != nil {
				t.Fatal(err)
			}
			sameAdjacency(t, g, ref)
			// Ball must visit the same vertices in the same BFS order.
			for v := 0; v < g.N(); v++ {
				for r := 0; r <= 3; r++ {
					got, want := g.Ball(v, r), ref.ball(v, r)
					if len(got) != len(want) {
						t.Fatalf("Ball(%d,%d): csr %v ref %v", v, r, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("Ball(%d,%d)[%d]: csr %d ref %d", v, r, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestCSRRandomEdgeSets drives the Builder with random edge sets,
// including rejected duplicates, and pins the result against the
// reference builder.
func TestCSRRandomEdgeSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		b := NewBuilder(n)
		var accepted [][2]int
		tries := rng.Intn(3 * n)
		for i := 0; i < tries; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			err := b.AddEdge(u, v)
			switch {
			case u == v:
				if err == nil {
					t.Fatalf("self-loop {%d,%d} accepted", u, v)
				}
			case containsEdge(accepted, u, v):
				if err == nil {
					t.Fatalf("duplicate {%d,%d} accepted", u, v)
				}
			default:
				if err != nil {
					t.Fatalf("fresh edge {%d,%d} rejected: %v", u, v, err)
				}
				accepted = append(accepted, [2]int{u, v})
			}
		}
		g := b.Build()
		ref, err := buildRef(n, accepted)
		if err != nil {
			t.Fatal(err)
		}
		sameAdjacency(t, g, ref)
	}
}

func containsEdge(edges [][2]int, u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == u && b == v {
			return true
		}
	}
	return false
}

// TestFromCSRRejectsBadOffsets pins the offset validation: layouts
// whose rows do not start at 0 (or run backwards) must fail instead
// of yielding phantom edge counts or panicking on first access.
func TestFromCSRRejectsBadOffsets(t *testing.T) {
	if _, err := FromCSR([]int32{2, 2, 2}, make([]int32, 2)); err == nil {
		t.Error("off[0] != 0 accepted")
	}
	if _, err := FromCSR([]int32{0, 2, 1, 2}, []int32{1, 2, 0}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	if _, err := FromCSR([]int32{0, 1, 2}, []int32{1, 0}); err != nil {
		t.Errorf("valid single-edge layout rejected: %v", err)
	}
}

// TestBallSparseParity crosses the dense/sparse visited-set threshold
// and pins the sparse BFS against the reference: same vertices, same
// order.
func TestBallSparseParity(t *testing.T) {
	n := denseBallThreshold + 100
	g := Circulant(n, 1, 7)
	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	ref, err := buildRef(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 77, n - 1, n / 2} {
		for r := 0; r <= 3; r++ {
			got, want := g.Ball(v, r), ref.ball(v, r)
			if len(got) != len(want) {
				t.Fatalf("Ball(%d,%d): sparse %d verts, ref %d", v, r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Ball(%d,%d)[%d]: sparse %d ref %d", v, r, i, got[i], want[i])
				}
			}
		}
	}
}

// FuzzBuilderCSR feeds arbitrary byte strings as edge lists: whatever
// subset of edges the Builder accepts must reproduce the reference
// adjacency exactly, and FromAdjacency on the reference lists must
// rebuild an identical graph.
func FuzzBuilderCSR(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})
	f.Add([]byte{0, 1, 0, 1, 3, 3})
	f.Add([]byte{9, 1, 4, 4, 200, 3, 7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 16
		b := NewBuilder(n)
		var accepted [][2]int
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if b.AddEdge(u, v) == nil {
				accepted = append(accepted, [2]int{u, v})
			}
		}
		g := b.Build()
		ref, err := buildRef(n, accepted)
		if err != nil {
			t.Fatalf("builder accepted what the reference rejects: %v", err)
		}
		sameAdjacency(t, g, ref)
		g2, err := FromAdjacency(ref.adj)
		if err != nil {
			t.Fatalf("FromAdjacency on reference lists: %v", err)
		}
		sameAdjacency(t, g2, ref)
	})
}
