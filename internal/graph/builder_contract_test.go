package graph

import (
	"strings"
	"testing"
)

// TestDuplicateEdgeErrorContext pins the duplicate-edge diagnostic:
// the error names the normalised offending edge and both insertion
// positions (which AddEdge call first added it, which call was
// rejected).
func TestDuplicateEdgeErrorContext(t *testing.T) {
	b := NewBuilder(6)
	b.MustAddEdge(0, 1) // edge #1
	b.MustAddEdge(5, 2) // edge #2
	b.MustAddEdge(3, 4) // edge #3
	err := b.AddEdge(2, 5)
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	msg := err.Error()
	for _, want := range []string{"{2,5}", "edge #2", "edge #4"} {
		if !strings.Contains(msg, want) {
			t.Errorf("duplicate error %q does not mention %s", msg, want)
		}
	}
	// The failed add must not count: the next edge is still #4.
	b.MustAddEdge(0, 2)
	if err := b.AddEdge(2, 0); err == nil || !strings.Contains(err.Error(), "edge #4") {
		t.Errorf("insertion ordinal drifted after rejected add: %v", err)
	}
}

// TestBuilderDeadAfterBuild pins the post-Build contract: AddEdge,
// HasEdge and a second Build panic explicitly instead of silently
// mutating (or misreporting) the built graph.
func TestBuilderDeadAfterBuild(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	g := b.Build()
	for what, fn := range map[string]func(){
		"AddEdge":     func() { _ = b.AddEdge(1, 2) },
		"MustAddEdge": func() { b.MustAddEdge(1, 2) },
		"HasEdge":     func() { b.HasEdge(0, 1) },
		"Build":       func() { b.Build() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Build did not panic", what)
				}
			}()
			fn()
		}()
	}
	if g.M() != 1 || !g.HasEdge(0, 1) {
		t.Fatal("built graph mutated")
	}
}
