package graph

import (
	"strings"
	"testing"
)

// The capacity regressions construct builders whose rows alias one
// shared backing slice, so 2^31 logical arcs cost a few megabytes of
// real memory — the guards must fire before any full-size CSR array
// would be allocated.

const aliasRowLen = 1 << 21 // 1024 rows x 2^21 entries = 2^31 logical arcs

func wantCapacityErr(t *testing.T, err error, what string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected flat-CSR capacity error, got nil", what)
	}
	msg := err.Error()
	if !strings.Contains(msg, "use shards") || !strings.Contains(msg, "flat-CSR capacity") {
		t.Fatalf("%s: error does not name the capacity bound and the shard escape hatch: %v", what, err)
	}
}

func wantCapacityPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected flat-CSR capacity panic, got none", what)
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("%s: panic value is %T, want error: %v", what, r, r)
		}
		wantCapacityErr(t, err, what)
	}()
	fn()
}

func TestNewBuilderVertexCapacity(t *testing.T) {
	wantCapacityPanic(t, "NewBuilder", func() {
		NewBuilder(FlatCapacity + 1)
	})
}

func TestAddEdgeArcCapacity(t *testing.T) {
	b := NewBuilder(4)
	// One edge below the 2m = 2^31-2 boundary is still accepted...
	b.m = FlatCapacity/2 - 1
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge at 2m=%d: unexpected error %v", 2*b.m, err)
	}
	// ...and the next one, which would push 2m past int32, is not.
	// (This also protects the int32 insertion-ordinal cast.)
	err := b.AddEdge(2, 3)
	wantCapacityErr(t, err, "AddEdge")
}

func TestBuildArcCapacity(t *testing.T) {
	shared := make([]int32, aliasRowLen)
	rows := make([][]int32, 1024)
	for i := range rows {
		rows[i] = shared
	}
	b := &Builder{n: len(rows), adj: rows}
	wantCapacityPanic(t, "Build", func() { b.Build() })
}

func TestFromAdjacencyArcCapacity(t *testing.T) {
	shared := make([]int, aliasRowLen)
	adj := make([][]int, 1024)
	for i := range adj {
		adj[i] = shared
	}
	_, err := FromAdjacency(adj)
	wantCapacityErr(t, err, "FromAdjacency")
}

func TestCapacityBoundaryStillBuilds(t *testing.T) {
	// Sanity: the guards reject over-capacity inputs, not ordinary ones.
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	g := b.Build()
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("small graph corrupted by capacity guards: %v", g)
	}
}
