package graph

// BFS returns the distance from root to every vertex (-1 if unreachable)
// and the BFS parent of every vertex (-1 for the root and unreachables).
func (g *Graph) BFS(root int) (dist, parent []int) {
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.row(u) {
			if v := int(w); dist[v] == -1 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// Dist returns the distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	d, _ := g.BFS(u)
	return d[v]
}

// denseBallThreshold bounds the graphs whose Ball visited set is a
// dense per-call array. Above it, the Θ(n) initialisation would
// dominate the (bounded-degree, hence small) ball itself — the
// per-vertex scans call Ball once per vertex, turning dense scratch
// into quadratic total work on the registry's largest hosts — so big
// graphs fall back to a map keyed by visited vertices only.
const denseBallThreshold = 1 << 14

// Ball returns the vertices at distance at most r from v, in BFS order.
// The visited set is a dense array for the paper-scale graphs (faster
// and allocation-lighter than a map) and a sparse map above
// denseBallThreshold; both paths produce the identical BFS order.
func (g *Graph) Ball(v, r int) []int {
	if g.n > denseBallThreshold {
		return g.ballSparse(v, r)
	}
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	out := []int{v}
	for head := 0; head < len(out); head++ {
		u := out[head]
		if dist[u] == r {
			continue
		}
		for _, x := range g.row(u) {
			if w := int(x); dist[w] == -1 {
				dist[w] = dist[u] + 1
				out = append(out, w)
			}
		}
	}
	return out
}

// BallSizes returns |B(v, r)| for every radius r = 0..rmax from a
// single radius-rmax BFS: sizes[r] == len(Ball(v, r)) for every r,
// without re-running the traversal per radius. The layered growth
// scans (E12 and its host-parameterised variant) use this in place of
// one Ball call per radius.
func (g *Graph) BallSizes(v, rmax int) []int {
	sizes := make([]int, rmax+1)
	var dist map[int]int
	var dense []int
	if g.n > denseBallThreshold {
		dist = map[int]int{v: 0}
	} else {
		dense = make([]int, g.n)
		for i := range dense {
			dense[i] = -1
		}
		dense[v] = 0
	}
	at := func(u int) int {
		if dense != nil {
			return dense[u]
		}
		if d, ok := dist[u]; ok {
			return d
		}
		return -1
	}
	set := func(u, d int) {
		if dense != nil {
			dense[u] = d
		} else {
			dist[u] = d
		}
	}
	queue := []int{v}
	sizes[0] = 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := at(u)
		if du == rmax {
			continue
		}
		for _, x := range g.row(u) {
			if w := int(x); at(w) == -1 {
				set(w, du+1)
				sizes[du+1]++
				queue = append(queue, w)
			}
		}
	}
	for r := 1; r <= rmax; r++ {
		sizes[r] += sizes[r-1]
	}
	return sizes
}

// ballSparse is Ball with a map visited set: work proportional to the
// ball, not to n.
func (g *Graph) ballSparse(v, r int) []int {
	dist := map[int]int{v: 0}
	out := []int{v}
	for head := 0; head < len(out); head++ {
		u := out[head]
		du := dist[u]
		if du == r {
			continue
		}
		for _, x := range g.row(u) {
			if w := int(x); dist[w] == 0 && w != v {
				dist[w] = du + 1
				out = append(out, w)
			}
		}
	}
	return out
}

// Connected reports whether g is connected. The empty graph and the
// one-vertex graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	d, _ := g.BFS(0)
	for _, x := range d {
		if x == -1 {
			return false
		}
	}
	return true
}

// Components returns the vertex sets of the connected components, each in
// BFS order, ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, w := range g.row(u) {
				if v := int(w); !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Diameter returns the maximum eccentricity, or -1 if g is disconnected
// or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		d, _ := g.BFS(v)
		for _, x := range d {
			if x == -1 {
				return -1
			}
			if x > diam {
				diam = x
			}
		}
	}
	return diam
}

// Girth returns the length of a shortest cycle, or -1 if g is acyclic.
//
// It runs a BFS from every vertex; when a non-tree edge closes a cycle
// through the root's BFS tree, the cycle length dist[u]+dist[w]+1 is an
// upper bound, and the minimum over all roots is exact for unweighted
// undirected graphs.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int, g.n)
	parent := make([]int, g.n)
	for root := 0; root < g.n; root++ {
		for i := range dist {
			dist[i] = -1
			parent[i] = -1
		}
		dist[root] = 0
		queue := []int{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			if best != -1 && 2*dist[u] >= best {
				continue
			}
			for _, x := range g.row(u) {
				w := int(x)
				if dist[w] == -1 {
					dist[w] = dist[u] + 1
					parent[w] = u
					queue = append(queue, w)
				} else if w != parent[u] && parent[w] != u {
					c := dist[u] + dist[w] + 1
					if best == -1 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// IsBipartite reports whether g is 2-colourable and returns a witness
// colouring when it is.
func (g *Graph) IsBipartite() (bool, []int) {
	color := make([]int, g.n)
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.row(u) {
				v := int(w)
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}
