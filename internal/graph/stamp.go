package graph

// VisitStamp is an epoch-stamped visited set over vertices 0..n-1
// with an int32 payload slot per visited vertex: the scratch idiom of
// the sweep engines (order.Sweeper, digraph's dense ball path), where
// one scratch is reused across many BFS extractions and resetting
// must not cost Θ(n). A vertex is visited iff its stamp equals the
// current epoch, so Reset is an epoch bump; the backing arrays are
// cleared only on the ~never-taken uint32 wraparound, where stale
// stamps from 2^32 extractions ago could otherwise alias the new
// epoch.
//
// The zero value is ready to use. A VisitStamp belongs to one
// goroutine.
type VisitStamp struct {
	epoch uint32
	stamp []uint32 // vertex -> epoch of last visit
	slot  []int32  // vertex -> payload, valid iff stamped
}

// Reset prepares the set for a new extraction over vertices 0..n-1:
// all vertices become unvisited in O(1) (amortised — growth and the
// wraparound clear are the exceptions).
func (s *VisitStamp) Reset(n int) {
	if len(s.stamp) < n {
		s.stamp = append(s.stamp, make([]uint32, n-len(s.stamp))...)
		s.slot = append(s.slot, make([]int32, n-len(s.slot))...)
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
}

// Visited reports whether v has been visited since the last Reset.
func (s *VisitStamp) Visited(v int32) bool { return s.stamp[v] == s.epoch }

// Visit marks v visited with the given payload slot.
func (s *VisitStamp) Visit(v, slot int32) {
	s.stamp[v] = s.epoch
	s.slot[v] = slot
}

// SetSlot rewrites the payload of a visited vertex.
func (s *VisitStamp) SetSlot(v, slot int32) { s.slot[v] = slot }

// Slot returns the payload of a visited vertex (undefined when
// !Visited(v)).
func (s *VisitStamp) Slot(v int32) int32 { return s.slot[v] }
