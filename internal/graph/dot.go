package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format. The optional label function
// may be nil, in which case vertex indices are used.
func (g *Graph) DOT(name string, label func(v int) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", name)
	for v := 0; v < g.n; v++ {
		if label != nil {
			fmt.Fprintf(&sb, "  %d [label=%q];\n", v, label(v))
		} else {
			fmt.Fprintf(&sb, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %d -- %d;\n", e.U, e.V)
	}
	sb.WriteString("}\n")
	return sb.String()
}
