// Package graph provides undirected simple graphs of bounded degree,
// generators for the graph families used throughout the paper
// (cycles, tori, regular graphs, circulants, ...), and structural
// queries (girth, distances, components, regularity).
//
// Vertices are integers 0..n-1. Graphs are immutable once built;
// use Builder to construct them.
//
// Storage is compressed sparse row (CSR): one flat []int32 neighbour
// array plus []int32 row offsets. Every per-vertex scan (canonical
// balls, view gathering, the lower-bound engines) walks contiguous
// memory, and Neighbors returns a subslice with no allocation.
package graph

import (
	"fmt"
	"math"
	"slices"
)

// FlatCapacity is the largest entry count the int32 CSR substrate can
// address: offsets and vertex ids are []int32, so a flat graph can
// hold at most 2^31-1 vertices and 2^31-1 directed arc slots (2m).
// Hosts past this bound must be sharded instead of materialised —
// see model.ShardedEngine and host.ShardSource.
const FlatCapacity = math.MaxInt32

// capacityErr renders the uniform over-capacity diagnosis. Before the
// guards existed the int32 casts silently wrapped, corrupting offsets
// for any host past 2^31 arcs; now the failure is loud and names the
// way out.
func capacityErr(what string, have int64) error {
	return fmt.Errorf("graph: %s %d exceeds the flat-CSR int32 capacity %d: host exceeds flat-CSR capacity, use shards (model.ShardedEngine over a host.ShardSource)",
		what, have, int64(FlatCapacity))
}

// Graph is an immutable undirected simple graph on vertices 0..n-1 in
// CSR form: the neighbours of v are nbr[off[v]:off[v+1]], sorted
// ascending. The zero value is the empty graph on zero vertices.
type Graph struct {
	n   int
	m   int
	off []int32 // row offsets, len n+1 (nil for the zero value)
	nbr []int32 // flat neighbour array, len 2m
}

// Builder accumulates edges for a Graph. Neighbour rows are kept
// sorted as they grow (binary-search duplicate checks, no edge map),
// and Build concatenates them into the final CSR arrays.
type Builder struct {
	n     int
	m     int
	built bool
	adj   [][]int32 // per-vertex sorted neighbour rows
	seq   [][]int32 // parallel to adj: 1-based insertion ordinal of the edge
}

// NewBuilder returns a builder for a graph on n vertices. Vertex ids
// are stored as int32 in the CSR arrays, so n is capped at
// FlatCapacity; larger hosts must stay implicit (host.ShardSource).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if int64(n) > FlatCapacity {
		panic(capacityErr("vertex count", int64(n)))
	}
	return &Builder{n: n, adj: make([][]int32, n), seq: make([][]int32, n)}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error; a duplicate reports both the
// offending edge and when each copy was inserted. Calling AddEdge on a
// finished builder panics.
func (b *Builder) AddEdge(u, v int) error {
	if b.built {
		panic("graph: AddEdge on a Builder after Build")
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	// Each edge occupies two directed CSR slots and one int32 insertion
	// ordinal; past FlatCapacity both would silently wrap.
	if 2*(int64(b.m)+1) > FlatCapacity {
		return capacityErr("arc count", 2*(int64(b.m)+1))
	}
	i, dup := searchRow(b.adj[u], int32(v))
	if dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}: first added as edge #%d, rejected as edge #%d",
			min(u, v), max(u, v), b.seq[u][i], b.m+1)
	}
	j, _ := searchRow(b.adj[v], int32(u))
	b.m++
	b.adj[u] = insertInt32(b.adj[u], i, int32(v))
	b.seq[u] = insertInt32(b.seq[u], i, int32(b.m))
	b.adj[v] = insertInt32(b.adj[v], j, int32(u))
	b.seq[v] = insertInt32(b.seq[v], j, int32(b.m))
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators
// whose inputs are known valid.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} has been added. Panics on a finished
// builder (the rows have been handed to the built graph).
func (b *Builder) HasEdge(u, v int) bool {
	if b.built {
		panic("graph: HasEdge on a Builder after Build")
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false
	}
	_, ok := searchRow(b.adj[u], int32(v))
	return ok
}

// Build finalises the graph, concatenating the sorted neighbour rows
// into the flat CSR arrays. The builder is dead afterwards: any
// further AddEdge/HasEdge/Build panics.
func (b *Builder) Build() *Graph {
	if b.built {
		panic("graph: Build called twice")
	}
	b.built = true
	// Total the rows in 64 bits first: the int32 offset accumulation
	// below would wrap silently past 2^31 directed arcs.
	total := int64(0)
	for _, row := range b.adj {
		total += int64(len(row))
	}
	if total > FlatCapacity {
		panic(capacityErr("arc count", total))
	}
	off := make([]int32, b.n+1)
	for v, row := range b.adj {
		off[v+1] = off[v] + int32(len(row))
	}
	nbr := make([]int32, off[b.n])
	for v, row := range b.adj {
		copy(nbr[off[v]:], row)
	}
	b.adj, b.seq = nil, nil
	return &Graph{n: b.n, m: b.m, off: off, nbr: nbr}
}

// searchRow returns the insertion position of x in the sorted row and
// whether x is already present.
func searchRow(row []int32, x int32) (int, bool) {
	i, ok := slices.BinarySearch(row, x)
	return i, ok
}

func insertInt32(row []int32, i int, x int32) []int32 {
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = x
	return row
}

// FromAdjacency builds a graph directly from neighbour lists — the
// wholesale path for callers that assemble adjacency as [][]int. The
// lists are flattened into CSR, sorted and validated: self-loops,
// duplicate edges (parallel arcs) and asymmetric entries are rejected.
func FromAdjacency(adj [][]int) (*Graph, error) {
	n := len(adj)
	if int64(n) > FlatCapacity {
		return nil, capacityErr("vertex count", int64(n))
	}
	total := int64(0)
	for _, l := range adj {
		total += int64(len(l))
	}
	if total > FlatCapacity {
		return nil, capacityErr("arc count", total)
	}
	off := make([]int32, n+1)
	for v, l := range adj {
		off[v+1] = off[v] + int32(len(l))
	}
	nbr := make([]int32, off[n])
	for v, l := range adj {
		row := nbr[off[v]:off[v+1]]
		for i, w := range l {
			if w < 0 || w >= n {
				return nil, fmt.Errorf("graph: neighbour %d of %d out of range [0,%d)", w, v, n)
			}
			row[i] = int32(w)
		}
	}
	return FromCSR(off, nbr)
}

// FromCSR builds a graph from a prepared CSR layout: off has n+1
// entries and nbr[off[v]:off[v+1]] lists the neighbours of v. The rows
// are sorted in place and validated (range, self-loops, duplicates,
// mirror symmetry). The slices are owned by the graph afterwards.
// This is the zero-copy path for digraph.Underlying and the ball
// extractors, which sit inside the per-vertex scan loops.
func FromCSR(off, nbr []int32) (*Graph, error) {
	n := len(off) - 1
	if n < 0 {
		return nil, fmt.Errorf("graph: empty offset array")
	}
	if int64(n) > FlatCapacity {
		return nil, capacityErr("vertex count", int64(n))
	}
	if int64(len(nbr)) > FlatCapacity {
		return nil, capacityErr("arc count", int64(len(nbr)))
	}
	if off[0] != 0 {
		return nil, fmt.Errorf("graph: offsets start at %d, want 0", off[0])
	}
	if int(off[n]) != len(nbr) {
		return nil, fmt.Errorf("graph: offsets end at %d, want %d", off[n], len(nbr))
	}
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		row := nbr[off[v]:off[v+1]]
		slices.Sort(row)
		for i, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: neighbour %d of %d out of range [0,%d)", w, v, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && row[i-1] == w {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, w)
			}
		}
	}
	if len(nbr)%2 != 0 {
		return nil, fmt.Errorf("graph: adjacency is not symmetric")
	}
	g := &Graph{n: n, m: len(nbr) / 2, off: off, nbr: nbr}
	for v := 0; v < n; v++ {
		for _, w := range g.row(v) {
			if !g.HasEdge(int(w), v) {
				return nil, fmt.Errorf("graph: edge {%d,%d} missing its mirror", v, w)
			}
		}
	}
	return g, nil
}

// row returns the sorted neighbour row of v (internal form of
// Neighbors, shared by the metrics and subgraph code).
func (g *Graph) row(v int) []int32 { return g.nbr[g.off[v]:g.off[v+1]] }

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbour row of v: a subslice of the
// flat CSR array. The returned slice must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.row(v) }

// AppendNeighbors appends the neighbours of v to dst as ints and
// returns the extended slice — for callers that want an []int copy of
// a row (the CSR row itself is []int32 and must not be modified).
func (g *Graph) AppendNeighbors(dst []int, v int) []int {
	for _, w := range g.row(v) {
		dst = append(dst, int(w))
	}
	return dst
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := searchRow(g.row(u), int32(v))
	return ok
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// NewEdge returns the normalised edge {u, v} with U < V.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Edges returns all edges in lexicographic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, w := range g.row(u) {
			if v := int(w); u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if dv := g.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if dv := g.Degree(v); dv < d {
			d = dv
		}
	}
	return d
}

// IsRegular reports whether all vertices have degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.n; v++ {
		if g.Degree(v) != d {
			return false
		}
	}
	return true
}

// NeighborIndex returns i such that Neighbors(u)[i] == v, or -1.
func (g *Graph) NeighborIndex(u, v int) int {
	if i, ok := searchRow(g.row(u), int32(v)); ok {
		return i
	}
	return -1
}

// InducedSubgraph returns the subgraph induced by the given vertices and
// a mapping old-vertex -> new-vertex (missing vertices map to -1).
// The CSR arrays are assembled directly in two passes (count, fill):
// this sits inside the canonical-ball hot loop.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	idx := make([]int, g.n)
	for i := range idx {
		idx[i] = -1
	}
	for i, v := range vs {
		idx[v] = i
	}
	k := len(vs)
	off := make([]int32, k+1)
	for i, v := range vs {
		d := int32(0)
		for _, w := range g.row(v) {
			if idx[w] >= 0 {
				d++
			}
		}
		off[i+1] = off[i] + d
	}
	nbr := make([]int32, off[k])
	m := 0
	for i, v := range vs {
		row := nbr[off[i]:off[i]]
		for _, w := range g.row(v) {
			if j := idx[w]; j >= 0 {
				row = append(row, int32(j))
				if j > i {
					m++
				}
			}
		}
		slices.Sort(row)
	}
	return &Graph{n: k, m: m, off: off, nbr: nbr}, idx
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	return &Graph{
		n:   g.n,
		m:   g.m,
		off: append([]int32(nil), g.off...),
		nbr: append([]int32(nil), g.nbr...),
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, g.m, g.MaxDegree())
}
