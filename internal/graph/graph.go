// Package graph provides undirected simple graphs of bounded degree,
// generators for the graph families used throughout the paper
// (cycles, tori, regular graphs, circulants, ...), and structural
// queries (girth, distances, components, regularity).
//
// Vertices are integers 0..n-1. Graphs are immutable once built;
// use Builder to construct them.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph on vertices 0..n-1.
// The zero value is the empty graph on zero vertices.
type Graph struct {
	n   int
	m   int
	adj [][]int // sorted neighbour lists
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n     int
	edges map[[2]int]struct{}
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, edges: make(map[[2]int]struct{})}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicate
// edges are rejected with an error.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if _, dup := b.edges[key]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	b.edges[key] = struct{}{}
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators
// whose inputs are known valid.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := b.edges[[2]int{u, v}]
	return ok
}

// Build finalises the graph.
func (b *Builder) Build() *Graph {
	adj := make([][]int, b.n)
	for e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	return &Graph{n: b.n, m: len(b.edges), adj: adj}
}

// FromAdjacency builds a graph directly from neighbour lists,
// bypassing the Builder's edge map — the fast path for callers that
// assemble adjacency wholesale (ball extraction, underlying graphs of
// digraphs). The lists are sorted in place and validated: self-loops,
// duplicate edges (parallel arcs) and asymmetric entries are rejected.
func FromAdjacency(adj [][]int) (*Graph, error) {
	n := len(adj)
	m := 0
	for u, l := range adj {
		sort.Ints(l)
		for i, v := range l {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph: neighbour %d of %d out of range [0,%d)", v, u, n)
			}
			if v == u {
				return nil, fmt.Errorf("graph: self-loop at %d", u)
			}
			if i > 0 && l[i-1] == v {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
			}
		}
		m += len(l)
	}
	if m%2 != 0 {
		return nil, fmt.Errorf("graph: adjacency is not symmetric")
	}
	for u, l := range adj {
		for _, v := range l {
			w := adj[v]
			i := sort.SearchInts(w, u)
			if i >= len(w) || w[i] != u {
				return nil, fmt.Errorf("graph: edge {%d,%d} missing its mirror", u, v)
			}
		}
	}
	return &Graph{n: n, m: m / 2, adj: adj}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbour list of v. The returned slice
// must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	l := g.adj[u]
	i := sort.SearchInts(l, v)
	return i < len(l) && l[i] == v
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// NewEdge returns the normalised edge {u, v} with U < V.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Edges returns all edges in lexicographic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for v := 1; v < g.n; v++ {
		if len(g.adj[v]) < d {
			d = len(g.adj[v])
		}
	}
	return d
}

// IsRegular reports whether all vertices have degree d.
func (g *Graph) IsRegular(d int) bool {
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) != d {
			return false
		}
	}
	return true
}

// NeighborIndex returns i such that Neighbors(u)[i] == v, or -1.
func (g *Graph) NeighborIndex(u, v int) int {
	l := g.adj[u]
	i := sort.SearchInts(l, v)
	if i < len(l) && l[i] == v {
		return i
	}
	return -1
}

// InducedSubgraph returns the subgraph induced by the given vertices and
// a mapping old-vertex -> new-vertex (missing vertices map to -1).
// The adjacency lists are assembled directly (no Builder edge map):
// this sits inside the canonical-ball hot loop.
func (g *Graph) InducedSubgraph(vs []int) (*Graph, []int) {
	idx := make([]int, g.n)
	for i := range idx {
		idx[i] = -1
	}
	for i, v := range vs {
		idx[v] = i
	}
	adj := make([][]int, len(vs))
	m := 0
	for i, v := range vs {
		for _, w := range g.adj[v] {
			if j := idx[w]; j >= 0 {
				adj[i] = append(adj[i], j)
				if j > i {
					m++
				}
			}
		}
		sort.Ints(adj[i])
	}
	return &Graph{n: len(vs), m: m, adj: adj}, idx
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, g.n)
	for v := range adj {
		adj[v] = append([]int(nil), g.adj[v]...)
	}
	return &Graph{n: g.n, m: g.m, adj: adj}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.n, g.m, g.MaxDegree())
}
