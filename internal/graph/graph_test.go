package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 1); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestBasicAccessors(t *testing.T) {
	g := Cycle(5)
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("C5: got n=%d m=%d", g.N(), g.M())
	}
	if !g.IsRegular(2) {
		t.Error("C5 should be 2-regular")
	}
	if !g.HasEdge(0, 4) || g.HasEdge(0, 2) {
		t.Error("C5 adjacency wrong")
	}
	if g.NeighborIndex(0, 1) != 0 || g.NeighborIndex(0, 4) != 1 {
		t.Error("neighbor index wrong")
	}
	if g.NeighborIndex(0, 2) != -1 {
		t.Error("expected -1 for non-neighbour")
	}
	if got := len(g.Edges()); got != 5 {
		t.Errorf("Edges() returned %d edges", got)
	}
}

func TestNewEdgeNormalises(t *testing.T) {
	if NewEdge(3, 1) != (Edge{U: 1, V: 3}) {
		t.Error("NewEdge does not normalise")
	}
}

func TestGenerators(t *testing.T) {
	tests := []struct {
		name    string
		g       *Graph
		n, m    int
		regular int // -1 if not regular
	}{
		{"C3", Cycle(3), 3, 3, 2},
		{"C10", Cycle(10), 10, 10, 2},
		{"P1", Path(1), 1, 0, 0},
		{"P5", Path(5), 5, 4, -1},
		{"K4", Complete(4), 4, 6, 3},
		{"K23", CompleteBipartite(2, 3), 5, 6, -1},
		{"K33", CompleteBipartite(3, 3), 6, 9, 3},
		{"Star4", Star(4), 5, 4, -1},
		{"Grid23", Grid(2, 3), 6, 7, -1},
		{"Torus33", Torus(3, 3), 9, 18, 4},
		{"Torus66", Torus(6, 6), 36, 72, 4},
		{"Q3", Hypercube(3), 8, 12, 3},
		{"Petersen", Petersen(), 10, 15, 3},
		{"C13(1,5)", Circulant(13, 1, 5), 13, 26, 4},
		{"Tree3", CompleteBinaryTree(3), 7, 6, -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("got n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if tc.regular >= 0 && !tc.g.IsRegular(tc.regular) {
				t.Errorf("expected %d-regular", tc.regular)
			}
			if !tc.g.Connected() {
				t.Error("generator output should be connected")
			}
		})
	}
}

func TestGirth(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"P5 acyclic", Path(5), -1},
		{"Tree acyclic", CompleteBinaryTree(4), -1},
		{"C3", Cycle(3), 3},
		{"C4", Cycle(4), 4},
		{"C17", Cycle(17), 17},
		{"K4", Complete(4), 3},
		{"K33", CompleteBipartite(3, 3), 4},
		{"Q4", Hypercube(4), 4},
		{"Petersen", Petersen(), 5},
		{"Torus55", Torus(5, 5), 4},
		{"Torus333", Torus(3, 3, 3), 3},
		// Circulants on two generators always contain the commutator
		// 4-cycle v, v+1, v+6, v+5.
		{"C13(1,5)", Circulant(13, 1, 5), 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Girth(); got != tc.want {
				t.Errorf("girth = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestBFSAndDist(t *testing.T) {
	g := Cycle(8)
	d, parent := g.BFS(0)
	if d[4] != 4 || d[1] != 1 || d[7] != 1 {
		t.Errorf("C8 BFS distances wrong: %v", d)
	}
	if parent[0] != -1 {
		t.Error("root parent should be -1")
	}
	if g.Dist(0, 4) != 4 {
		t.Error("Dist wrong")
	}
	two := Disjoint(Cycle(3), Cycle(3))
	if two.Dist(0, 5) != -1 {
		t.Error("distance across components should be -1")
	}
}

func TestBall(t *testing.T) {
	g := Cycle(10)
	b := g.Ball(0, 2)
	if len(b) != 5 {
		t.Fatalf("|B(0,2)| in C10 = %d, want 5", len(b))
	}
	if b[0] != 0 {
		t.Error("ball must start at the centre")
	}
	seen := map[int]bool{}
	for _, v := range b {
		seen[v] = true
	}
	for _, v := range []int{0, 1, 2, 8, 9} {
		if !seen[v] {
			t.Errorf("ball missing %d", v)
		}
	}
	if got := len(Complete(6).Ball(2, 1)); got != 6 {
		t.Errorf("K6 radius-1 ball size %d, want 6", got)
	}
}

// TestBallSizesMatchesBall holds the one-BFS layered size profile to
// per-radius Ball calls, on the dense path and (via a circulant above
// the threshold) the sparse-map path.
func TestBallSizesMatchesBall(t *testing.T) {
	hosts := []*Graph{Cycle(10), Petersen(), Torus(6, 6), Complete(6), Circulant(denseBallThreshold+100, 1, 7)}
	for gi, g := range hosts {
		verts := []int{0, 1, g.N() - 1}
		for _, v := range verts {
			sizes := g.BallSizes(v, 4)
			if len(sizes) != 5 {
				t.Fatalf("host %d: BallSizes returned %d entries, want 5", gi, len(sizes))
			}
			for r := 0; r <= 4; r++ {
				if want := len(g.Ball(v, r)); sizes[r] != want {
					t.Fatalf("host %d v=%d r=%d: BallSizes %d != |Ball| %d", gi, v, r, sizes[r], want)
				}
			}
		}
	}
}

func TestComponentsAndConnected(t *testing.T) {
	g := Disjoint(Cycle(3), Path(2), Complete(4))
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if g.Connected() {
		t.Error("disjoint union should not be connected")
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	want := []int{3, 2, 4}
	for i := range sizes {
		if sizes[i] != want[i] {
			t.Errorf("component %d size %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestDiameter(t *testing.T) {
	if d := Cycle(8).Diameter(); d != 4 {
		t.Errorf("C8 diameter %d, want 4", d)
	}
	if d := Path(5).Diameter(); d != 4 {
		t.Errorf("P5 diameter %d, want 4", d)
	}
	if d := Disjoint(Cycle(3), Cycle(3)).Diameter(); d != -1 {
		t.Errorf("disconnected diameter %d, want -1", d)
	}
	if d := Petersen().Diameter(); d != 2 {
		t.Errorf("Petersen diameter %d, want 2", d)
	}
}

func TestIsBipartite(t *testing.T) {
	if ok, _ := Cycle(6).IsBipartite(); !ok {
		t.Error("C6 is bipartite")
	}
	if ok, _ := Cycle(5).IsBipartite(); ok {
		t.Error("C5 is not bipartite")
	}
	ok, col := CompleteBipartite(3, 4).IsBipartite()
	if !ok {
		t.Fatal("K34 is bipartite")
	}
	g := CompleteBipartite(3, 4)
	for _, e := range g.Edges() {
		if col[e.U] == col[e.V] {
			t.Fatal("invalid bipartition witness")
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, idx := g.InducedSubgraph([]int{0, 2, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.N(), sub.M())
	}
	if idx[0] != 0 || idx[2] != 1 || idx[4] != 2 || idx[1] != -1 {
		t.Errorf("index map wrong: %v", idx)
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}, {30, 2}} {
		g := RandomRegular(tc.n, tc.d, rng)
		if !g.IsRegular(tc.d) {
			t.Errorf("RandomRegular(%d,%d) not %d-regular", tc.n, tc.d, tc.d)
		}
		if g.N() != tc.n {
			t.Errorf("wrong order")
		}
	}
}

func TestRandomGraphEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomGraph(50, 0.0, rng)
	if g.M() != 0 {
		t.Error("p=0 should give no edges")
	}
	g = RandomGraph(20, 1.0, rng)
	if g.M() != 190 {
		t.Errorf("p=1 should give K20, got m=%d", g.M())
	}
}

func TestTorusCoord(t *testing.T) {
	sides := []int{6, 6}
	if TorusCoord(sides, 2, 3) != 15 {
		t.Errorf("TorusCoord wrong: %d", TorusCoord(sides, 2, 3))
	}
	if TorusCoord(sides, -1, 7) != TorusCoord(sides, 5, 1) {
		t.Error("TorusCoord should wrap negatives")
	}
	g := Torus(sides...)
	u := TorusCoord(sides, 1, 1)
	v := TorusCoord(sides, 1, 2)
	if !g.HasEdge(u, v) {
		t.Error("torus adjacency mismatch with TorusCoord")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(4)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone differs")
	}
	c.nbr[0] = 99
	if g.nbr[0] == 99 {
		t.Error("clone shares adjacency storage")
	}
}

func TestDOT(t *testing.T) {
	s := Cycle(3).DOT("c3", nil)
	if len(s) == 0 {
		t.Fatal("empty DOT output")
	}
	for _, want := range []string{"graph \"c3\"", "0 -- 1", "1 -- 2", "0 -- 2"} {
		if !contains(s, want) {
			t.Errorf("DOT missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Property: handshake lemma — the sum of degrees is twice the edge count.
func TestQuickHandshake(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(1+rng.Intn(30), rng.Float64(), rng)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges.
func TestQuickBFSTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(2+rng.Intn(25), 0.2+0.5*rng.Float64(), rng)
		d, _ := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := d[e.U], d[e.V]
			if du == -1 != (dv == -1) {
				return false // an edge cannot cross reachability
			}
			if du != -1 && abs(du-dv) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: girth of C_n is n.
func TestQuickCycleGirth(t *testing.T) {
	f := func(k uint8) bool {
		n := 3 + int(k)%40
		return Cycle(n).Girth() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ball sizes are monotone in the radius and bounded by n.
func TestQuickBallMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomGraph(1+rng.Intn(20), rng.Float64(), rng)
		v := rng.Intn(g.N())
		prev := 0
		for r := 0; r <= 5; r++ {
			size := len(g.Ball(v, r))
			if size < prev || size > g.N() {
				return false
			}
			prev = size
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
