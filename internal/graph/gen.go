package graph

import (
	"fmt"
	"math/rand"
)

// Cycle returns the n-cycle, n >= 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle(%d): need n >= 3", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Path returns the path on n vertices (n-1 edges).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.MustAddEdge(i, i+1)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge(i, j)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	bu := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bu.MustAddEdge(i, a+j)
		}
	}
	return bu.Build()
}

// Star returns the star K_{1,k} with centre 0.
func Star(k int) *Graph {
	b := NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.MustAddEdge(0, i)
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph. Vertex (i, j) is i*cols+j.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.MustAddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < rows {
				b.MustAddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return b.Build()
}

// Grid3D returns the nx x ny x nz three-dimensional grid graph
// (no wrap-around; the wrapped form is Torus(nx, ny, nz)). Vertex
// (i, j, k) is (i*ny+j)*nz+k.
func Grid3D(nx, ny, nz int) *Graph {
	b := NewBuilder(nx * ny * nz)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				if i+1 < nx {
					b.MustAddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < ny {
					b.MustAddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < nz {
					b.MustAddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// MargulisExpander returns the Margulis-type expander on Z_n x Z_n in
// its Gabber–Galil form: (x, y) is joined to (x±2y, y), (x±(2y+1), y),
// (x, y±2x) and (x, y±(2x+1)), all mod n. The underlying simple graph
// has maximum degree 8; coincident images (small n, fixed points) are
// deduplicated, so low-degree vertices can occur. Spectral expansion
// of the family is classical; here it serves as a constant-degree
// host with girth and growth behaviour unlike the paper's tori.
func MargulisExpander(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: MargulisExpander(%d): need n >= 2", n))
	}
	b := NewBuilder(n * n)
	id := func(x, y int) int { return x*n + y }
	mod := func(x int) int {
		x %= n
		if x < 0 {
			x += n
		}
		return x
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			v := id(x, y)
			for _, u := range []int{
				id(mod(x+2*y), y),
				id(mod(x+2*y+1), y),
				id(x, mod(y+2*x)),
				id(x, mod(y+2*x+1)),
			} {
				if u != v && !b.HasEdge(v, u) {
					b.MustAddEdge(v, u)
				}
			}
		}
	}
	return b.Build()
}

// Torus returns the cartesian product of cycles with the given side
// lengths: the k-dimensional toroidal grid of Section 3.2. Every side
// must be at least 3 so the result is simple. Vertex coordinates are
// mixed-radix encoded with the last dimension fastest.
func Torus(sides ...int) *Graph {
	n := 1
	for _, s := range sides {
		if s < 3 {
			panic(fmt.Sprintf("graph: Torus side %d < 3", s))
		}
		n *= s
	}
	b := NewBuilder(n)
	coord := make([]int, len(sides))
	for v := 0; v < n; v++ {
		// Decode v into coordinates.
		x := v
		for d := len(sides) - 1; d >= 0; d-- {
			coord[d] = x % sides[d]
			x /= sides[d]
		}
		// +1 step in every dimension.
		for d := range sides {
			old := coord[d]
			coord[d] = (old + 1) % sides[d]
			u := 0
			for e := 0; e < len(sides); e++ {
				u = u*sides[e] + coord[e]
			}
			coord[d] = old
			if !b.HasEdge(v, u) {
				b.MustAddEdge(v, u)
			}
		}
	}
	return b.Build()
}

// TorusCoord returns the vertex index of the given coordinates in
// Torus(sides...).
func TorusCoord(sides []int, coord ...int) int {
	if len(coord) != len(sides) {
		panic("graph: TorusCoord dimension mismatch")
	}
	v := 0
	for d := range sides {
		c := coord[d] % sides[d]
		if c < 0 {
			c += sides[d]
		}
		v = v*sides[d] + c
	}
	return v
}

// Hypercube returns the k-dimensional hypercube graph on 2^k vertices.
func Hypercube(k int) *Graph {
	n := 1 << k
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < k; d++ {
			u := v ^ (1 << d)
			if u > v {
				b.MustAddEdge(v, u)
			}
		}
	}
	return b.Build()
}

// Petersen returns the Petersen graph (3-regular, girth 5, 10 vertices).
func Petersen() *Graph {
	b := NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(i, (i+1)%5)     // outer 5-cycle
		b.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.MustAddEdge(i, 5+i)         // spokes
	}
	return b.Build()
}

// Circulant returns the circulant graph C_n(S): vertices Z_n, with v
// adjacent to v±s for each s in offsets. Offsets must satisfy
// 0 < s <= n/2; an offset equal to n/2 contributes a single edge.
func Circulant(n int, offsets ...int) *Graph {
	b := NewBuilder(n)
	for _, s := range offsets {
		if s <= 0 || 2*s > n {
			panic(fmt.Sprintf("graph: Circulant offset %d out of range for n=%d", s, n))
		}
		for v := 0; v < n; v++ {
			u := (v + s) % n
			if !b.HasEdge(v, u) {
				b.MustAddEdge(v, u)
			}
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree with the given
// number of levels (level 1 is a single root).
func CompleteBinaryTree(levels int) *Graph {
	n := 1<<levels - 1
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(v, (v-1)/2)
	}
	return b.Build()
}

// RandomRegular returns a random d-regular graph on n vertices generated
// by the pairing model with restarts (n*d must be even, d < n). The
// result is simple; generation retries until a simple matching of
// half-edge stubs is found.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d): n*d must be even", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d): need d < n", n, d))
	}
	stubs := make([]int, 0, n*d)
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			panic("graph: RandomRegular: too many restarts")
		}
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		b := NewBuilder(n)
		ok := true
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || b.HasEdge(u, v) {
				ok = false
				break
			}
			b.MustAddEdge(u, v)
		}
		if ok {
			return b.Build()
		}
	}
}

// RandomGraph returns a G(n, p) Erdős–Rényi graph.
func RandomGraph(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// Disjoint returns the disjoint union of the given graphs, with vertex
// blocks in argument order.
func Disjoint(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			b.MustAddEdge(off+e.U, off+e.V)
		}
		off += g.N()
	}
	return b.Build()
}
