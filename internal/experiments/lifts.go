package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/homog"
	"repro/internal/lift"
)

// Lifts regenerates Theorem 3.3 and Fig. 3/7: homogeneous lifts of a
// base graph (covering map verified, girth inherited, τ*-typed node
// fraction measured) and the cyclic lifts of Fig. 3 / Prop. 4.5.
func Lifts() (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "lifts: homogeneous products H(m) × G and cyclic l-lifts",
		Ref:   "Thm 3.3, Fig. 3, Fig. 7, Prop. 4.5",
		Columns: []string{
			"lift", "base", "lift n", "fibre", "covering", "girth", "τ* fraction", "bound",
		},
	}
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		return nil, err
	}
	if c.Level <= 2 {
		for _, m := range []int{4, 6, 8} {
			baseHost, err := directedCycle(9)
			if err != nil {
				return nil, err
			}
			lr, err := core.BuildHomogeneousLift(c, baseHost.D, m, 1<<17)
			if err != nil {
				return nil, err
			}
			covErr := digraph.VerifyCovering(lr.Host.D, baseHost.D, lr.Phi)
			u, err := lr.Host.D.Underlying()
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("H(%d) × C9", m), "C9", lr.Host.G.N(),
				lr.Host.G.N()/9, yn(covErr == nil), u.Girth(), lr.TauFrac, c.InnerFraction(m),
			)
		}
	}

	// Fig. 3: the cyclic 2-lift (disjoint copies) and the connected
	// variant of Prop. 4.5.
	baseHost, err := directedCycle(4)
	if err != nil {
		return nil, err
	}
	twoLift, phi2, err := lift.Cyclic(baseHost.D, 2, nil)
	if err != nil {
		return nil, err
	}
	fib, err := lift.VerifyLift(twoLift, baseHost.D, phi2)
	if err != nil {
		return nil, err
	}
	u2, err := twoLift.Underlying()
	if err != nil {
		return nil, err
	}
	t.AddRow("2-lift (Fig. 3)", "C4", twoLift.N(), fib, "yes", u2.Girth(), "-", "-")

	conn, phiC, err := lift.ConnectedCyclic(baseHost.D, 3, 0, 1, 0)
	if err != nil {
		return nil, err
	}
	fibC, err := lift.VerifyLift(conn, baseHost.D, phiC)
	if err != nil {
		return nil, err
	}
	uC, err := conn.Underlying()
	if err != nil {
		return nil, err
	}
	t.AddRow("connected 3-lift (Prop 4.5)", "C4", conn.N(), fibC, "yes", uC.Girth(), "-", "-")

	t.Notes = append(t.Notes,
		"τ* fractions exceed the analytic interior bound and approach 1 as m grows — the measured 1−ε of Theorem 3.3",
		"girth of the homogeneous lift exceeds 2r+1 because the projection onto H is a graph homomorphism (cycles project to cycles)",
	)
	return t, nil
}
