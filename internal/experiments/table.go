// Package experiments regenerates every figure and theorem-as-table of
// the paper as an empirical experiment (the index lives in DESIGN.md):
//
//	E1  Fig. 1       the three models on one concrete graph
//	E2  Fig. 2       MIS on cycles: ID O(log* n) vs OI/PO impossibility
//	E3  §1.4         local approximability table with certified PO bounds
//	E4  Thm 3.2      homogeneous-graph construction sweep
//	E5  Fig. 6(b)    torus homogeneity values
//	E6  Fig. 6(a)    full homogeneity of the ordered U
//	E7  Thm 3.3      homogeneous lifts + Fig. 3 cyclic lifts
//	E8  Thm 4.1      OI→PO simulation with measured agreement
//	E9  §4.2         Ramsey ID→OI witnesses
//	E10 Thm 1.6      edge dominating set lower-bound transfer
//	E11 Thm 5.1      girth search statistics
//	E12 §5           polynomial vs exponential ball growth
//	E13 §6.1         PO vs PN: orientations matter
//	E14 Fig. 4/5     view trees and |T*|
//	E15 §6.5         determinism vs randomness (matching)
//	E16 Fig. 2, §6.5 million-node operational rounds (engine)
//	E17 Fig. 2, §6.5 approximation degradation under fault schedules
//
// Each experiment returns a Table that cmd/experiments prints and that
// EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/par"
)

// Table is one experiment's result in paper-style tabular form.
type Table struct {
	// ID is the experiment identifier (e.g. "E10").
	ID string
	// Title is a one-line description.
	Title string
	// Ref is the paper reference (figure/theorem/section).
	Ref string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows.
	Rows [][]string
	// Notes are free-form remarks (substitutions, caveats).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s [%s]\n", t.ID, t.Title, t.Ref)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n*Paper reference: %s*\n\n", t.ID, t.Title, t.Ref)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note: %s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// Experiment is a named experiment runner.
type Experiment struct {
	ID   string
	Run  func() (*Table, error)
	Name string
}

// Result is one experiment's outcome in a RunAll sweep.
type Result struct {
	Experiment
	Table *Table
	Err   error
}

// RunAll executes the full suite, fanning the independent experiments
// out over the parallel layer (internal/par) and returning results in
// suite order. Each experiment owns its RNGs and hosts, so the tables
// are identical to a sequential run; par.Set(1) is the sequential
// fallback.
func RunAll() []Result {
	exps := All()
	res := make([]Result, len(exps))
	par.For(len(exps), func(i int) {
		res[i].Experiment = exps[i]
		res[i].Table, res[i].Err = exps[i].Run()
	})
	return res
}

// All returns the full experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Name: "three models", Run: Models},
		{ID: "E2", Name: "MIS separation on cycles", Run: Separation},
		{ID: "E3", Name: "approximability table", Run: Approximability},
		{ID: "E4", Name: "homogeneous graphs", Run: HomogeneousGraphs},
		{ID: "E5", Name: "torus homogeneity", Run: TorusHomogeneity},
		{ID: "E6", Name: "ordered U homogeneity", Run: UHomogeneity},
		{ID: "E7", Name: "homogeneous lifts", Run: Lifts},
		{ID: "E8", Name: "OI to PO transfer", Run: Transfer},
		{ID: "E9", Name: "Ramsey ID to OI", Run: RamseyIDOI},
		{ID: "E10", Name: "edge dominating set bound", Run: EDSLowerBound},
		{ID: "E11", Name: "girth search", Run: GirthSearch},
		{ID: "E12", Name: "ball growth", Run: Growth},
		{ID: "E13", Name: "PO vs PN separation", Run: PNSeparation},
		{ID: "E14", Name: "views and T*", Run: Views},
		{ID: "E15", Name: "determinism vs randomness", Run: Randomized},
		{ID: "E16", Name: "million-node operational rounds", Run: ScaleRounds},
		{ID: "E17", Name: "degradation under fault schedules", Run: Degradation},
	}
}
