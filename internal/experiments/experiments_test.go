package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/host"
)

// runExp runs one experiment and does generic sanity checks.
func runExp(t *testing.T, e Experiment) *Table {
	t.Helper()
	tbl, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	if tbl.ID != e.ID {
		t.Errorf("table id %q != %q", tbl.ID, e.ID)
	}
	if len(tbl.Columns) == 0 {
		t.Error("no columns")
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
		}
	}
	if s := tbl.String(); !strings.Contains(s, tbl.ID) {
		t.Error("String() missing id")
	}
	if md := tbl.Markdown(); !strings.Contains(md, "|") {
		t.Error("Markdown() malformed")
	}
	return tbl
}

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Columns) {
		t.Fatalf("cell (%d,%d) out of range", row, col)
	}
	return tbl.Rows[row][col]
}

func cellFloat(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tbl, row, col), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float", row, col, cell(t, tbl, row, col))
	}
	return v
}

func TestModels(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E1", Run: Models})
	if len(tbl.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tbl.Rows))
	}
	// Radius-1 balls on C4 have 3 vertices; with ids 3,5,2,8 both
	// nodes 0 (id 3) and 2 (id 2) are local minima, in ID and OI alike.
	idYes, oiYes := 0, 0
	for i := range tbl.Rows {
		if cell(t, tbl, i, 4) == "yes" {
			idYes++
		}
		if cell(t, tbl, i, 5) == "yes" {
			oiYes++
		}
	}
	if idYes != 2 || oiYes != 2 {
		t.Errorf("local minima: ID %d, OI %d; want 2 and 2", idYes, oiYes)
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, 4) != cell(t, tbl, i, 5) {
			t.Errorf("row %d: ID and OI disagree on an order-invariant probe", i)
		}
	}
}

func TestSeparation(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E2", Run: Separation})
	if len(tbl.Rows) < 4 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
	// CV rounds must be tiny and essentially flat while n grows 128x.
	first := cellFloat(t, tbl, 0, 1)
	last := cellFloat(t, tbl, len(tbl.Rows)-1, 1)
	if last-first > 4 {
		t.Errorf("CV rounds grew from %v to %v — not log*", first, last)
	}
	if last > 20 {
		t.Errorf("CV rounds %v unreasonably large", last)
	}
	// OI and PO verdicts: impossible on every row.
	for i := range tbl.Rows {
		for _, col := range []int{3, 4, 5} {
			if cell(t, tbl, i, col) != "no" {
				t.Errorf("row %d col %d: MIS should be impossible, got %q", i, col, cell(t, tbl, i, col))
			}
		}
	}
}

func TestApproximability(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E3", Run: Approximability})
	if len(tbl.Rows) != 6 {
		t.Fatalf("expected 6 problem rows, got %d", len(tbl.Rows))
	}
	// Measured ratios within the paper's bounds (column 3), for the
	// rows where they are numeric.
	bounds := map[string]float64{
		"min vertex cover":        2,
		"min edge cover":          2,
		"min dominating set":      3,
		"min edge dominating set": 3,
	}
	for i := range tbl.Rows {
		name := cell(t, tbl, i, 0)
		b, ok := bounds[name]
		if !ok {
			continue
		}
		if r := cellFloat(t, tbl, i, 3); r > b+1e-9 {
			t.Errorf("%s: measured ratio %v exceeds paper bound %v", name, r, b)
		}
	}
	// Unbounded problems: certified ∞.
	for i := range tbl.Rows {
		name := cell(t, tbl, i, 0)
		if name == "max independent set" || name == "max matching" {
			if !strings.Contains(cell(t, tbl, i, 4), "∞") {
				t.Errorf("%s: certified bound should be ∞", name)
			}
		}
	}
}

func TestHomogeneousGraphs(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E4", Run: HomogeneousGraphs})
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 parameter rows, got %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		alpha := cellFloat(t, tbl, i, 5)
		bound := cellFloat(t, tbl, i, 6)
		if alpha+0.25 < bound { // sampling slack
			t.Errorf("row %d: α=%v far below bound %v", i, alpha, bound)
		}
		if alpha <= 0 || alpha > 1 {
			t.Errorf("row %d: α=%v out of range", i, alpha)
		}
	}
}

func TestTorusHomogeneity(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E5", Run: TorusHomogeneity})
	// 6×6 torus r=1: measured max α = 18/36 = 0.5 >= 4/9.
	if a := cellFloat(t, tbl, 0, 3); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("6×6 r=1 α=%v, want 0.5", a)
	}
	// Cells carry 4 significant digits; allow formatting slack.
	if a := cellFloat(t, tbl, 1, 3); a < 1.0/9-1e-3 {
		t.Errorf("6×6 r=2 α=%v below 1/9", a)
	}
	if a := cellFloat(t, tbl, 2, 3); a < 0.64-1e-3 {
		t.Errorf("10×10 r=1 α=%v below 0.64", a)
	}
}

func TestUHomogeneity(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E6", Run: UHomogeneity})
	for i := range tbl.Rows {
		if f := cellFloat(t, tbl, i, 3); f != 1.0 {
			t.Errorf("row %d: τ* fraction %v, want 1.0 — Section 5.2 falsified", i, f)
		}
	}
}

func TestLifts(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E7", Run: Lifts})
	for i := range tbl.Rows {
		if cell(t, tbl, i, 4) != "yes" {
			t.Errorf("row %d: covering verification failed", i)
		}
	}
	if len(tbl.Rows) < 2 {
		t.Error("expected at least the Fig. 3 rows")
	}
}

func TestTransfer(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E8", Run: Transfer})
	for i := range tbl.Rows {
		tau := cellFloat(t, tbl, i, 4)
		agree := cellFloat(t, tbl, i, 5)
		if agree < tau {
			t.Errorf("row %d: agreement %v below τ* fraction %v (Fact 4.2)", i, agree, tau)
		}
		if cell(t, tbl, i, 7) != "yes" {
			t.Errorf("row %d: B infeasible", i)
		}
	}
}

func TestRamseyIDOI(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E9", Run: RamseyIDOI})
	for i := range tbl.Rows {
		if a := cellFloat(t, tbl, i, 6); a != 1.0 {
			t.Errorf("row %d: ID/OI agreement %v, want 1.0 (Prop 4.4)", i, a)
		}
	}
}

func TestEDSLowerBound(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E10", Run: EDSLowerBound})
	if len(tbl.Rows) < 4 {
		t.Fatalf("too few rows: %d", len(tbl.Rows))
	}
	// Δ'=2 rows: certified bound exactly 3 and PO algorithm achieves it;
	// adversarial ids force the greedy ID algorithm to >= certified.
	for i := 0; i < 3; i++ {
		cert := cellFloat(t, tbl, i, 3)
		if cert != 3 {
			t.Errorf("row %d: certified bound %v, want 3", i, cert)
		}
		if po := cellFloat(t, tbl, i, 4); po > 3+1e-9 {
			t.Errorf("row %d: PO ratio %v exceeds 3", i, po)
		}
		// Adversarial order-respecting ids force (n−1)/⌈n/3⌉: the greedy
		// ID algorithm saves exactly one edge at the order's single
		// "seam", and the ratio approaches the certified bound 3 as n
		// grows (the paper's ε-fraction of exceptional nodes).
		adv := cellFloat(t, tbl, i, 6)
		if adv < cert-0.4 {
			t.Errorf("row %d: adversarial-ids ratio %v far below certified bound %v", i, adv, cert)
		}
		if i > 0 {
			prev := cellFloat(t, tbl, i-1, 6)
			if adv < prev-1e-9 {
				t.Errorf("row %d: adversarial ratio %v not approaching the bound (prev %v)", i, adv, prev)
			}
		}
	}
	// Lift rows (3 and 4): the ID adversary on genuine Prop. 4.5
	// instances; the ratio grows towards 3 as m (and hence 1−ε) grows.
	liftSmall := cellFloat(t, tbl, 3, 6)
	liftBig := cellFloat(t, tbl, 4, 6)
	if liftSmall < 2 || liftBig < liftSmall {
		t.Errorf("lift adversary ratios %v -> %v should be >= 2 and non-decreasing in m", liftSmall, liftBig)
	}
	if liftBig > 3+1e-9 {
		t.Errorf("lift adversary ratio %v exceeds the PO bound 3", liftBig)
	}
	// Δ'=4 circulant row (index 5): certified bound in (2, 3.5].
	if b := cellFloat(t, tbl, 5, 3); b <= 2 || b > 3.5+1e-9 {
		t.Errorf("Δ'=4 certified bound %v out of expected (2, 3.5]", b)
	}
	// Non-abelian Δ'=4 row (last): a girth >= 5 instance with a
	// ">= x (girth g)" bound; x must be in (2, 3.5].
	last := len(tbl.Rows) - 1
	cellVal := cell(t, tbl, last, 3)
	if !strings.HasPrefix(cellVal, ">= ") {
		t.Fatalf("non-abelian row bound %q missing '>= ' prefix", cellVal)
	}
	var x float64
	var g int
	if _, err := fmt.Sscanf(cellVal, ">= %g (girth %d)", &x, &g); err != nil {
		t.Fatalf("cannot parse %q: %v", cellVal, err)
	}
	if x <= 2 || x > 3.5+1e-9 {
		t.Errorf("non-abelian bound %v out of (2, 3.5]", x)
	}
	if g < 5 {
		t.Errorf("non-abelian instance girth %d < 5", g)
	}
}

func TestGirthSearch(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E11", Run: GirthSearch})
	for i := range tbl.Rows {
		if cell(t, tbl, i, 5) != "yes" {
			t.Errorf("row %d: girth certificate failed", i)
		}
		if a := cellFloat(t, tbl, i, 4); a < 1 {
			t.Errorf("row %d: attempts %v < 1", i, a)
		}
	}
}

func TestGrowth(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E12", Run: Growth})
	for i := range tbl.Rows {
		ball := cellFloat(t, tbl, i, 2)
		cube := cellFloat(t, tbl, i, 3)
		if ball > cube {
			t.Errorf("row %d: ball %v exceeds polynomial cube bound %v — eq. (2) falsified", i, ball, cube)
		}
	}
}

func TestViews(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E14", Run: Views})
	// T*(2,2) row: 17 vertices.
	found := false
	for i := range tbl.Rows {
		if cell(t, tbl, i, 0) == "T*" && cell(t, tbl, i, 1) == "2" && cell(t, tbl, i, 2) == "2" {
			if cell(t, tbl, i, 3) != "17" {
				t.Errorf("|T*(2,2)| = %s, want 17", cell(t, tbl, i, 3))
			}
			found = true
		}
	}
	if !found {
		t.Error("T*(2,2) row missing")
	}
}

func TestPNSeparation(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E13", Run: PNSeparation})
	if len(tbl.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(tbl.Rows))
	}
	if cell(t, tbl, 0, 1) != "1" {
		t.Errorf("PN should realise a single view type, got %s", cell(t, tbl, 0, 1))
	}
	pn := cellFloat(t, tbl, 0, 2)
	po := cellFloat(t, tbl, 1, 2)
	if po >= pn {
		t.Errorf("PO bound %v should beat PN bound %v", po, pn)
	}
	if pn != 3 || po != 1.5 {
		t.Errorf("expected PN 3 and PO 1.5, got %v and %v", pn, po)
	}
}

func TestRandomized(t *testing.T) {
	tbl := runExp(t, Experiment{ID: "E15", Run: Randomized})
	for i := range tbl.Rows {
		if cell(t, tbl, i, 1) != "∞" {
			t.Errorf("row %d: deterministic bound should be ∞", i)
		}
		avg := cellFloat(t, tbl, i, 2)
		if avg <= 0 {
			t.Errorf("row %d: randomised matching found nothing", i)
		}
		ratio := cellFloat(t, tbl, i, 4)
		// E|M| >= n/(2d) = n/4 on cycles; ν = n/2: expected ratio ~ 2,
		// allow generous sampling slack.
		if ratio > 4 {
			t.Errorf("row %d: expected ratio %v too large for Δ=2", i, ratio)
		}
	}
}

func TestScaleRounds(t *testing.T) {
	// The full E16 ladder reaches 10^6 nodes; the test runs the same
	// code small. Fractions: an MIS on a cycle has between n/3 and n/2
	// vertices; a matching selects at most n/2 edges.
	tbl, err := scaleRounds([]int{64, 256}, []string{"cycle:128", "torus:8x8"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E16" {
		t.Errorf("table id %q", tbl.ID)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, 6) != "yes" {
			t.Errorf("row %d: solution infeasible", i)
		}
		frac := cellFloat(t, tbl, i, 5)
		if frac <= 0 || frac > 0.5+1e-9 {
			t.Errorf("row %d: selected/n = %v out of (0, 1/2]", i, frac)
		}
		if r := cellFloat(t, tbl, i, 3); r < 1 || r > 25 {
			t.Errorf("row %d: %v rounds — not log*-flat", i, r)
		}
	}
	for i := 0; i < 2; i++ {
		if f := cellFloat(t, tbl, i, 5); f < 1.0/3-1e-9 {
			t.Errorf("CV row %d: MIS fraction %v below 1/3", i, f)
		}
	}
}

func TestDegradation(t *testing.T) {
	// The full E17 grid runs at 10^5 nodes; the test runs the same code
	// small: one clean baseline plus a lossy and a crashing profile per
	// workload.
	tbl, err := degradation(256,
		[]string{"clean", "lossy:p=0.1", "crash:f=8,by=4"},
		[]string{"cycle:128", "torus:8x8"},
		[]string{"clean", "lossy:p=0.2", "churn:p=0.2,window=1"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E17" {
		t.Errorf("table id %q", tbl.ID)
	}
	if len(tbl.Rows) != 3+2*3 {
		t.Fatalf("expected 9 rows, got %d", len(tbl.Rows))
	}
	// Clean rows: no faults, safe, and identical selected counts to a
	// rerun (determinism is asserted in bulk below).
	for _, i := range []int{0, 3, 6} {
		if cell(t, tbl, i, 2) != "clean" {
			t.Fatalf("row %d: expected clean profile, got %q", i, cell(t, tbl, i, 2))
		}
		if cell(t, tbl, i, 9) != "yes" {
			t.Errorf("clean row %d not safe", i)
		}
		if d := cellFloat(t, tbl, i, 6); d != 0 {
			t.Errorf("clean row %d dropped %v messages", i, d)
		}
	}
	// The lossy CV row must actually drop messages; the crash row must
	// actually crash nodes; matching stays a matching under every
	// profile.
	if d := cellFloat(t, tbl, 1, 6); d <= 0 {
		t.Errorf("lossy CV row dropped %v messages", d)
	}
	if c := cellFloat(t, tbl, 2, 5); c != 8 {
		t.Errorf("crash CV row crashed %v nodes, want 8", c)
	}
	for i := 3; i < 9; i++ {
		if cell(t, tbl, i, 9) != "yes" {
			t.Errorf("matching row %d: conflicts under %s", i, cell(t, tbl, i, 2))
		}
	}
	// Full-table determinism: the same seeds and profiles reproduce
	// every cell.
	again, err := degradation(256,
		[]string{"clean", "lossy:p=0.1", "crash:f=8,by=4"},
		[]string{"cycle:128", "torus:8x8"},
		[]string{"clean", "lossy:p=0.2", "churn:p=0.2,window=1"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.String() != again.String() {
		t.Errorf("E17 not reproducible from its seeds")
	}
}

func TestRoundsOnHosted(t *testing.T) {
	// A plain family host runs matching only; a consistently oriented
	// cycle additionally runs Cole–Vishkin.
	tbl, err := RunHosted("E16", host.MustParse("torus:6x6"), DefaultRmax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || cell(t, tbl, 0, 0) != "randomized matching" {
		t.Fatalf("torus rows: %v", tbl.Rows)
	}
	mh, err := directedCycle(12)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err = RoundsOn(&host.Host{Desc: "dcycle:12", G: mh.G, D: mh.D}, DefaultRmax)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || cell(t, tbl, 0, 0) != "Cole–Vishkin MIS (ID)" {
		t.Fatalf("directed-cycle rows: %v", tbl.Rows)
	}
}

func TestAllRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 17 {
		t.Errorf("expected 17 experiments, got %d", len(seen))
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Every experiment uses fixed seeds; EXPERIMENTS.md is regenerable
	// bit-for-bit. Check a representative subset twice.
	for _, e := range All() {
		switch e.ID {
		case "E1", "E5", "E9", "E13", "E15":
			a, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			b, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if a.String() != b.String() {
				t.Errorf("%s: output differs between runs", e.ID)
			}
		}
	}
}
