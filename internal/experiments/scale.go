package experiments

import (
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/host"
	"repro/internal/problems"
)

// ScaleRounds regenerates E16: the operational layer at production
// scale. The separations of the paper are claims about synchronous
// message-passing algorithms, so this experiment runs two of them
// end-to-end through the batched round engine on hosts up to 10^6
// nodes — Cole–Vishkin MIS on directed cycles (the ID upper bound of
// Fig. 2, whose round count stays log*-flat across five orders of
// magnitude) and the one-round randomized mutual-proposal matching of
// §6.5 across registry host families. Every solution is checked
// feasible; exact optima are skipped (they are the only super-linear
// step at this size).
func ScaleRounds() (*Table, error) {
	return scaleRounds([]int{10_000, 100_000, 1_000_000},
		[]string{"cycle:1000000", "torus:1000x1000", "random-regular:d=3,n=100000,seed=7"})
}

// scaleRounds is ScaleRounds with the Cole–Vishkin size ladder and the
// matching host descriptors pluggable, so tests run it small.
func scaleRounds(cvSizes []int, matchHosts []string) (*Table, error) {
	t := &Table{
		ID:    "E16",
		Title: "million-node operational rounds through the message-plane engine",
		Ref:   "Fig. 2, §6.5 (operational, at scale)",
		Columns: []string{
			"workload", "host", "n", "rounds", "selected", "selected/n", "feasible",
		},
	}
	rng := rand.New(rand.NewSource(16))
	for _, n := range cvSizes {
		h, err := directedCycle(n)
		if err != nil {
			return nil, err
		}
		ids := rng.Perm(8 * n)[:n]
		res, err := algorithms.ColeVishkinMIS(h, ids)
		if err != nil {
			return nil, err
		}
		feas := problems.MaxIndependentSet{}.Feasible(h.G, res.MIS) == nil
		t.AddRow("Cole–Vishkin MIS (ID)", "dcycle", n, res.Rounds,
			res.MIS.Size(), float64(res.MIS.Size())/float64(n), yn(feas))
	}
	for _, desc := range matchHosts {
		rh, err := host.Parse(desc)
		if err != nil {
			return nil, err
		}
		mh := modelHost(rh)
		n := mh.G.N()
		sol := algorithms.RandomizedMatching(mh, rng)
		feas := problems.MaxMatching{}.Feasible(mh.G, sol) == nil
		t.AddRow("randomized matching", rh.Desc, n, 2,
			sol.Size(), float64(sol.Size())/float64(n), yn(feas))
	}
	t.Notes = append(t.Notes,
		"Cole–Vishkin rounds stay log*-flat while n grows 100x: the measured count is the colour-reduction horizon of the 8n identifier space plus the constant cleanup",
		"matching rows are one engine trial each (seeded); on d-regular hosts E[selected]/n = 1/(2d) — the §6.5 guarantee at 10^6 nodes",
		"both workloads execute worker-parallel on the batched message plane (model.Engine); exact optima are skipped at this scale, feasibility is verified in full",
	)
	return t, nil
}
