package experiments

import (
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/host"
	"repro/internal/model"
)

// Degradation regenerates E17: how the paper's operational algorithms
// degrade when the execution itself turns adversarial. The clean
// engine realises the synchronous schedule the theory assumes; this
// experiment re-runs Cole–Vishkin MIS and the §6.5 randomized
// matching under the canned fault profiles of internal/model — lossy,
// duplicating/reordering, crashing, churning and degree-targeted
// adversarial schedules — at engine scale, and reports the output
// quality curve as the fault rate rises. Every row is reproducible
// from the experiment seed and the profile descriptor in the row.
func Degradation() (*Table, error) {
	return degradation(
		100_000,
		[]string{
			"clean",
			"lossy:p=0.01",
			"lossy:p=0.05",
			"lossy:p=0.2",
			"crash:f=100,by=8",
			"adversarial:p=0.05,f=100,by=8",
		},
		[]string{"cycle:100000", "torus:400x250", "random-regular:d=3,n=100000,seed=7"},
		[]string{
			"clean",
			"lossy:p=0.05",
			"lossy:p=0.2",
			"dup+reorder",
			"churn:p=0.1,window=1",
		},
	)
}

// degradation is Degradation with the Cole–Vishkin cycle size and the
// host/profile grids pluggable, so tests run it small.
func degradation(cvN int, cvProfiles []string, matchHosts, matchProfiles []string) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "approximation degradation under fault schedules",
		Ref:   "Fig. 2, §6.5 (operational, adversarial schedules)",
		Columns: []string{
			"workload", "host", "profile", "n", "rounds",
			"crashed", "dropped", "selected", "selected/n", "safe",
		},
	}
	seed := int64(17)
	h, err := directedCycle(cvN)
	if err != nil {
		return nil, err
	}
	ids := rand.New(rand.NewSource(seed)).Perm(8 * cvN)[:cvN]
	for _, desc := range cvProfiles {
		prof, err := model.ParseProfile(desc)
		if err != nil {
			return nil, err
		}
		res, err := algorithms.ColeVishkinMISFaulty(h, ids, prof.New(h, seed))
		if err != nil {
			return nil, err
		}
		rep := res.Report
		survivors := rep.Survivors(cvN)
		t.AddRow("Cole–Vishkin MIS (ID)", "dcycle", desc, cvN, res.Rounds,
			rep.NumCrashed, rep.Dropped, res.MIS.Size(),
			float64(res.MIS.Size())/float64(survivors),
			yn(res.Violations == 0 && res.Uncovered == 0))
	}
	for _, hostDesc := range matchHosts {
		rh, err := host.Parse(hostDesc)
		if err != nil {
			return nil, err
		}
		mh := modelHost(rh)
		n := mh.G.N()
		for _, desc := range matchProfiles {
			prof, err := model.ParseProfile(desc)
			if err != nil {
				return nil, err
			}
			// One rng per (host, profile) cell: the proposals are
			// identical across the profile column, so the degradation is
			// purely the schedule's doing.
			rng := rand.New(rand.NewSource(seed))
			res, err := algorithms.RandomizedMatchingFaulty(mh, rng, prof.New(mh, seed))
			if err != nil {
				return nil, err
			}
			rep := res.Report
			t.AddRow("randomized matching", rh.Desc, desc, n, 2,
				rep.NumCrashed, rep.Dropped, res.Matching.Size(),
				float64(res.Matching.Size())/float64(rep.Survivors(n)),
				yn(res.Conflicts == 0))
		}
	}
	t.Notes = append(t.Notes,
		"every row reproduces from (host, ids/rng seed, experiment seed 17, profile descriptor): fault decisions are pure hashes of (seed, round, slot/node), independent of worker schedule",
		"Cole–Vishkin 'safe' checks the survivor-induced MIS (independence + maximality among non-crashed nodes); under loss the desynchronised colour reduction loses both, which is the separation-relevant failure mode",
		"matching 'safe' checks the no-conflict matching property, which the mutual-proposal protocol keeps under every schedule — losses only shrink selected/n (each dropped direction costs at most one edge)",
		"selected/n is normalised by survivors, so crash rows measure quality on the nodes still present; the adversarial profile concentrates loss on the highest-degree, most recently active nodes",
	)
	return t, nil
}
