package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
)

// Approximability regenerates the Section 1.4 table: for each of the
// six problems, the tight local approximation factor claimed by the
// paper (identical across ID, OI, PO), the measured worst-case ratio
// of our PO upper-bound algorithm over a test family, and the
// machine-certified PO lower bound on a symmetric instance.
func Approximability() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "local approximability of the six problems (Δ = 2 instances)",
		Ref:   "§1.4, §1.5",
		Columns: []string{
			"problem", "paper bound", "algorithm", "measured ratio", "certified PO bound", "instance",
		},
	}

	// --- minimum vertex cover: bound 2, edge-packing algorithm ---
	vcWorst := 0.0
	rng := rand.New(rand.NewSource(23))
	for _, g := range []*graph.Graph{graph.Cycle(10), graph.Cycle(13), graph.Petersen(), graph.RandomRegular(14, 3, rng)} {
		h := model.HostFromGraph(g)
		res, err := algorithms.VCEdgePacking(h)
		if err != nil {
			return nil, err
		}
		r, err := problems.Ratio(problems.MinVertexCover{}, g, res.Cover)
		if err != nil {
			return nil, err
		}
		vcWorst = math.Max(vcWorst, r)
	}
	vcLB, err := certifyOnDirectedCycle(problems.MinVertexCover{}, 10, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("min vertex cover", "2", "edge packing", vcWorst, vcLB, "C10")

	// --- minimum edge cover: bound 2, one-edge algorithm ---
	ecWorst := 0.0
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Cycle(12), graph.Petersen()} {
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, algorithms.ECOneEdge(), model.EdgeKind)
		if err != nil {
			return nil, err
		}
		r, err := problems.Ratio(problems.MinEdgeCover{}, g, sol)
		if err != nil {
			return nil, err
		}
		ecWorst = math.Max(ecWorst, r)
	}
	ecLB, err := certifyOnDirectedCycle(problems.MinEdgeCover{}, 12, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("min edge cover", "2", "one incident edge", ecWorst, ecLB, "C12")

	// --- minimum dominating set: bound Δ'+1 (= 3 for Δ = 2) ---
	dsWorst := 0.0
	for _, g := range []*graph.Graph{graph.Cycle(9), graph.Cycle(12)} {
		h := model.HostFromGraph(g)
		sol, err := model.RunPO(h, algorithms.DSAll(), model.VertexKind)
		if err != nil {
			return nil, err
		}
		r, err := problems.Ratio(problems.MinDominatingSet{}, g, sol)
		if err != nil {
			return nil, err
		}
		dsWorst = math.Max(dsWorst, r)
	}
	dsLB, err := certifyOnDirectedCycle(problems.MinDominatingSet{}, 9, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("min dominating set", "Δ'+1 = 3", "everyone joins", dsWorst, dsLB, "C9")

	// --- max independent set / max matching: no constant factor ---
	misLB, err := certifyOnDirectedCycle(problems.MaxIndependentSet{}, 9, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("max independent set", "unbounded", "empty set", "∞", misLB, "C9")
	mmLB, err := certifyOnDirectedCycle(problems.MaxMatching{}, 9, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("max matching", "unbounded", "empty set", "∞", mmLB, "C9")

	// --- min edge dominating set: bound 4 − 2/Δ' = 3 for Δ = 2 ---
	edsWorst := 0.0
	for _, n := range []int{9, 12, 15} {
		g := graph.Cycle(n)
		orient, err := digraph.EulerianOrientation(g)
		if err != nil {
			return nil, err
		}
		h, err := model.NewHost(digraph.FromPorts(g, orient).D)
		if err != nil {
			return nil, err
		}
		sol, err := model.RunPO(h, algorithms.EDSOneOut(), model.EdgeKind)
		if err != nil {
			return nil, err
		}
		r, err := problems.Ratio(problems.MinEdgeDominatingSet{}, g, sol)
		if err != nil {
			return nil, err
		}
		edsWorst = math.Max(edsWorst, r)
	}
	edsLB, err := certifyOnDirectedCycle(problems.MinEdgeDominatingSet{}, 9, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("min edge dominating set", "4−2/Δ' = 3", "one out-edge", edsWorst, edsLB, "C9")

	t.Notes = append(t.Notes,
		"certified PO bounds exhaust every radius-1 PO algorithm on the symmetric directed cycle; Theorems 1.3/1.4 transfer them verbatim to OI and ID",
		"measured ratios are worst cases over the listed instance families; finite-n bounds like n/⌈n/2⌉ approach the asymptotic constants from below",
	)
	return t, nil
}

// certifyOnDirectedCycle runs the certified PO lower-bound engine on
// the symmetric directed n-cycle and formats the result.
func certifyOnDirectedCycle(p problems.Problem, n, r int) (string, error) {
	h, err := directedCycle(n)
	if err != nil {
		return "", err
	}
	lb, err := core.CertifyPOLowerBound(h, p, r, 1<<22)
	if err != nil {
		return "", err
	}
	if math.IsInf(lb.BestRatio, 1) {
		return "∞ (no feasible PO algorithm beats it)", nil
	}
	return fmt.Sprintf("%.4g (over %d algs)", lb.BestRatio, lb.Algorithms), nil
}
