package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/problems"
	"repro/internal/solve"
)

// Randomized regenerates the Section 6.5 discussion: randomness
// strictly increases the power of local algorithms. On symmetric
// directed cycles every deterministic PO/OI/ID algorithm outputs the
// empty matching (certified ∞), while one round of random mutual
// proposals finds a constant fraction of a maximum matching in
// expectation.
func Randomized() (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "determinism vs randomness: maximum matching on cycles",
		Ref:   "§6.5, §1.4",
		Columns: []string{
			"n", "deterministic PO bound", "E|M| measured (200 trials)", "ν(G)", "expected ratio",
		},
	}
	rng := rand.New(rand.NewSource(65))
	for _, n := range []int{12, 24, 48} {
		h, err := directedCycle(n)
		if err != nil {
			return nil, err
		}
		lb, err := core.CertifyPOLowerBound(h, problems.MaxMatching{}, 1, 1<<20)
		if err != nil {
			return nil, err
		}
		det := "∞"
		if !math.IsInf(lb.BestRatio, 1) {
			det = fmt.Sprintf("%.3g", lb.BestRatio)
		}
		avg := algorithms.RandomizedMatchingTrials(h, 200, rng)
		nu := solve.MaxMatchingSize(h.G)
		t.AddRow(n, det, avg, nu, float64(nu)/avg)
	}
	t.Notes = append(t.Notes,
		"in the presence of randomness ID, OI and PO coincide trivially (random bits simulate identifiers w.h.p.); the interesting boundary is deterministic vs randomised",
		"expected ratio stays bounded (≈ Δ = 2 ⋅ something small) while the deterministic bound is infinite — Section 6.5's separation, measured",
	)
	return t, nil
}
