package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/order"
)

// HomogeneousGraphs regenerates Theorem 3.2 as a parameter sweep: for
// each (k, r), the level and generators found by the search, the
// certified girth floor, and the measured homogeneity of the finite
// graph (exact full scan when |H| is small, Monte-Carlo otherwise) —
// all four properties (P1)-(P4) of Section 3.2 at once.
func HomogeneousGraphs() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "(1−ε, r)-homogeneous 2k-regular graphs of girth > 2r+1",
		Ref:   "Thm 3.2, §5",
		Columns: []string{
			"k", "r", "level i", "|H| (m)", "girth floor", "α measured", "α bound ((m−2r)/m)^d", "method",
		},
	}
	rng := rand.New(rand.NewSource(7))
	for _, kr := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		k, r := kr[0], kr[1]
		c, err := homog.Search(k, r, homog.SearchOptions{Seed: 42})
		if err != nil {
			return nil, err
		}
		floor, err := c.CertifiedGirthFloor()
		if err != nil {
			return nil, err
		}
		m := c.MForEpsilon(0.5)
		if m < 2*r+2 {
			m = 2*r + 2
		}
		fam, err := group.NewFamily(c.Level, m)
		if err != nil {
			return nil, err
		}
		size := fam.Order()
		if size.IsInt64() && size.Int64() <= 5000 {
			rep, err := c.HomogeneityExact(m, 5000)
			if err != nil {
				return nil, err
			}
			t.AddRow(k, r, c.Level, fmt.Sprintf("%d (m=%d)", rep.N, m),
				fmt.Sprintf(">= %d", floor), rep.Alpha, rep.InnerBound, "exact scan")
		} else {
			rep, err := c.HomogeneitySample(m, 50, rng)
			if err != nil {
				return nil, err
			}
			t.AddRow(k, r, c.Level, fmt.Sprintf("%s (m=%d)", size.String(), m),
				fmt.Sprintf(">= %d", floor), rep.Alpha, rep.InnerBound,
				fmt.Sprintf("%d samples (lazy)", rep.Samples))
		}
	}
	t.Notes = append(t.Notes,
		"girth floors are certified by exhausting reduced words in W_i; relations in H and U would project onto W (mod-2 homomorphism)",
		"the paper's graphs are of size m^(2^i−1) — astronomically large for k=2; laziness (substitution table in DESIGN.md) evaluates them locally without materialisation",
	)
	return t, nil
}

// TorusHomogeneity regenerates Fig. 6(b): the 6×6 toroidal grid under
// the row-major order.
func TorusHomogeneity() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "toroidal grid homogeneity under the lexicographic order",
		Ref:     "Fig. 6(b)",
		Columns: []string{"graph", "r", "paper α", "measured max α", "types"},
	}
	// Both radii of the 6×6 torus come from one layered sweep: a
	// single BFS per vertex, canonicalised at each layer boundary.
	g := graph.Torus(6, 6)
	rank := order.Identity(36)
	hs := order.SweepMeasureAll(g, rank, 2)
	h1, h2 := hs[0], hs[1]
	t.AddRow("6×6 torus", 1, "4/9 ≈ 0.444", h1.Alpha, len(h1.Counts))
	t.AddRow("6×6 torus", 2, "1/9 ≈ 0.111", h2.Alpha, len(h2.Counts))
	big := graph.Torus(10, 10)
	bigRank := order.Identity(100)
	b1 := order.SweepMeasureAll(big, bigRank, 1)[0]
	t.AddRow("10×10 torus", 1, "(8/10)² = 0.64", b1.Alpha, len(b1.Counts))
	t.Notes = append(t.Notes,
		"measured α can exceed the paper's interior count: two corners of the 6×6 torus coincidentally share the interior type (Def. 3.1 is a lower-bound statement)",
		"tori satisfy (P1),(P2),(P4) but have girth 4 — the paper's algebraic construction exists precisely to add (P3)",
	)
	return t, nil
}

// UHomogeneity regenerates Fig. 6(a): the ordered U (an infinite
// locally tree-like graph) is (1, r)-homogeneous — every sampled
// element has ordered neighbourhood type τ*.
func UHomogeneity() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "(1, r)-homogeneity of the ordered infinite graph U",
		Ref:     "Fig. 6(a), §5.2",
		Columns: []string{"k", "r", "samples", "fraction with type τ*"},
	}
	rng := rand.New(rand.NewSource(3))
	for _, kr := range [][2]int{{1, 1}, {2, 1}, {1, 2}} {
		c, err := homog.Search(kr[0], kr[1], homog.SearchOptions{Seed: 42})
		if err != nil {
			return nil, err
		}
		tau, err := c.TauStarBall()
		if err != nil {
			return nil, err
		}
		in := order.NewInterner()
		tau = in.Canon(tau)
		u := group.U(c.Level)
		samples := 25
		match := 0
		for i := 0; i < samples; i++ {
			e := u.RandSmall(rng, 30)
			b, err := c.BallAt(0, e)
			if err != nil {
				return nil, err
			}
			if in.Canon(b) == tau {
				match++
			}
		}
		t.AddRow(kr[0], kr[1], samples, float64(match)/float64(samples))
	}
	t.Notes = append(t.Notes,
		"left-invariance of the positive-cone order makes every element's ordered neighbourhood isomorphic to τ* — fractions below 1.0 would falsify Section 5.2",
	)
	return t, nil
}
