package experiments

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/homog"
	"repro/internal/model"
	"repro/internal/problems"
)

// Transfer regenerates Theorem 4.1 (and Fact 4.2) end to end: an OI
// algorithm A is transformed into the PO algorithm
// B(W) = A((T*, <*, λ) ↾ W); on homogeneous lifts the two agree on at
// least the τ*-typed fraction of nodes, and B achieves a comparable
// approximation ratio on the base graph with no order at all.
func Transfer() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "OI → PO simulation on homogeneous lifts",
		Ref:   "Thm 4.1, Fact 4.2",
		Columns: []string{
			"problem", "A (OI)", "m", "lift n", "1−ε (τ* frac)", "agreement", "B ratio on base", "B feasible",
		},
	}
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		return nil, err
	}
	if c.Level > 2 {
		t.Notes = append(t.Notes, "construction level too large to materialise lifts; see E4 for lazy evaluation")
		return t, nil
	}
	type caseT struct {
		name string
		alg  model.OI
		prob problems.Problem
	}
	cases := []caseT{
		{"non-minimum joins", algorithms.OILocalMinJoinsVC(), problems.MinVertexCover{}},
		{"smallest-neighbour edge", algorithms.OISmallestNeighborEDS(), problems.MinEdgeDominatingSet{}},
	}
	for _, cs := range cases {
		for _, m := range []int{4, 8} {
			baseHost, err := directedCycle(9)
			if err != nil {
				return nil, err
			}
			rep, err := core.TransferOIToPO(c, baseHost.D, cs.alg, cs.prob, m, 1<<17)
			if err != nil {
				return nil, err
			}
			t.AddRow(cs.prob.Name(), cs.name, m, rep.LiftN,
				rep.TauFrac, rep.AgreementFrac, rep.RatioB, yn(rep.BFeasibleOnBase))
		}
	}
	t.Notes = append(t.Notes,
		"agreement ≥ 1−ε on every row is the empirical Fact 4.2; growing m drives both towards 1",
		"B's ratio on the base is what Theorem 4.1 promises: the OI ratio carries over to anonymous networks",
		fmt.Sprintf("construction: level %d, k=%d, r=%d, certified girth > %d", c.Level, c.K, c.R, 2*c.R+1),
	)
	return t, nil
}
