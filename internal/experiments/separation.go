package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/problems"
)

// Separation regenerates Fig. 2 / Section 1.1: maximal independent set
// on cycles separates the three models once the run time may grow.
//
//   - ID: Cole–Vishkin finds an MIS in O(log* n) rounds — measured.
//   - OI: certified impossible at constant radius (enumeration over all
//     radius-r OI behaviours on the ordered cycle finds no MIS).
//   - PO: certified impossible at constant radius (same enumeration
//     over view types on the symmetric cycle).
func Separation() (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "MIS on cycles: ID in O(log* n); OI and PO impossible at r=O(1)",
		Ref:   "Fig. 2, §1.1",
		Columns: []string{
			"n", "CV rounds (measured)", "CV rounds (predicted)",
			"OI r=1 MIS?", "PO r=1 MIS?", "PO r=2 MIS?",
		},
	}
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{8, 16, 64, 256, 1024} {
		h, err := directedCycle(n)
		if err != nil {
			return nil, err
		}
		ids := rng.Perm(8 * n)[:n]
		maxID := 0
		for _, id := range ids {
			if id > maxID {
				maxID = id
			}
		}
		res, err := algorithms.ColeVishkinMIS(h, ids)
		if err != nil {
			return nil, err
		}
		oiOK, err := misPossibleOI(n, 1)
		if err != nil {
			return nil, err
		}
		po1, err := misPossiblePO(n, 1)
		if err != nil {
			return nil, err
		}
		po2, err := misPossiblePO(n, 2)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, res.Rounds, algorithms.CVRounds(maxID), yn(oiOK), yn(po1), yn(po2))
	}
	t.Notes = append(t.Notes,
		"measured Cole–Vishkin rounds grow like log* of the identifier space: flat across three orders of magnitude of n",
		"OI/PO verdicts are certified by exhausting every radius-r behaviour on the instance (maximality ⟺ the independent set also dominates)",
	)
	return t, nil
}

// misPossiblePO reports whether any radius-r PO algorithm outputs a
// maximal independent set on the directed n-cycle, by exhausting all
// view-type-to-output assignments.
func misPossiblePO(n, r int) (bool, error) {
	h, err := directedCycle(n)
	if err != nil {
		return false, err
	}
	// On the symmetric directed cycle there is a single view type, so a
	// PO algorithm has exactly two behaviours.
	for _, member := range []bool{false, true} {
		sol := model.NewSolution(model.VertexKind, n)
		for v := range sol.Vertices {
			sol.Vertices[v] = member
		}
		if isMaximalIS(h, sol) {
			return true, nil
		}
	}
	return false, nil
}

// misPossibleOI reports whether any radius-r OI algorithm outputs a
// maximal independent set on the identity-ordered n-cycle: assignments
// of membership to the 2r+1 ordered ball types are exhausted.
func misPossibleOI(n, r int) (bool, error) {
	h, err := directedCycle(n)
	if err != nil {
		return false, err
	}
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	cat := core.BallCatalogue(h, rank, r)
	types := len(cat)
	if types > 20 {
		return false, fmt.Errorf("experiments: too many types (%d)", types)
	}
	// Canonicalise the catalogue in an interner so the per-evaluation
	// type lookup is a hash probe on the interned pointer, not a string
	// encoding.
	in := order.NewInterner()
	typeIdx := make(map[*order.Ball]int, types)
	for i, b := range cat {
		typeIdx[in.Canon(b)] = i
	}
	for mask := 0; mask < 1<<types; mask++ {
		alg := model.FuncOI{R: r, Fn: func(b *order.Ball) model.Output {
			return model.Output{Member: mask&(1<<typeIdx[in.Canon(b)]) != 0}
		}}
		sol, err := model.RunOI(h, rank, alg, model.VertexKind)
		if err != nil {
			return false, err
		}
		if isMaximalIS(h, sol) {
			return true, nil
		}
	}
	return false, nil
}

// isMaximalIS checks independence and maximality (equivalently,
// independent + dominating).
func isMaximalIS(h *model.Host, sol *model.Solution) bool {
	if (problems.MaxIndependentSet{}).Feasible(h.G, sol) != nil {
		return false
	}
	return (problems.MinDominatingSet{}).Feasible(h.G, sol) == nil
}
