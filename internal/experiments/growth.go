package experiments

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/view"
)

// GirthSearch regenerates the Theorem 5.1 ingredient: statistics of
// the randomised search for generator sets S ⊆ W_i whose Cayley graph
// has girth > 2r+1 — the constructive stand-in for Gamburd et al.'s
// probabilistic girth theorem.
func GirthSearch() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "random generator sets of large girth in W_i",
		Ref:     "Thm 5.1 (Gamburd et al.), §5.2",
		Columns: []string{"k", "r (need girth >)", "level i", "|W_i|", "attempts", "certified"},
	}
	for _, kr := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}} {
		c, err := homog.Search(kr[0], kr[1], homog.SearchOptions{Seed: 42})
		if err != nil {
			return nil, err
		}
		_, err = c.CertifiedGirthFloor()
		t.AddRow(kr[0], 2*kr[1]+1, c.Level, group.W(c.Level).Order().String(),
			c.Attempts, yn(err == nil))
	}
	t.Notes = append(t.Notes,
		"girth is certified exactly by enumerating reduced words up to length 2r+1 in W_i, so the probabilistic theorem is only used as an existence heuristic",
	)
	return t, nil
}

// Growth regenerates the Section 5 design argument: the soluble groups
// U_i have polynomial growth (balls fit inside [−r, r]^d), while the
// free group — the view tree T* — grows exponentially. Polynomial
// growth is what allows cutting U down to a finite graph while keeping
// the boundary fraction below ε.
func Growth() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "ball growth: soluble U_i vs the free-group bound",
		Ref:     "§5.2 (Gromov / polynomial growth)",
		Columns: []string{"k", "r", "|B_U(1,r)| measured", "[−r,r]^d bound", "|T*| (free bound)"},
	}
	for _, k := range []int{1, 2} {
		c, err := homog.Search(k, 1, homog.SearchOptions{Seed: 42})
		if err != nil {
			return nil, err
		}
		u := group.U(c.Level)
		cay := c.UCayley()
		d := u.Dim()
		// One layered BFS (group multiplications run once) yields all
		// four radii; layer r is the distance-<=r prefix.
		balls := digraph.BallsWith(digraph.NewBallScratch[string](), cay, cay.Node(u.Identity()), 4)
		for _, r := range []int{1, 2, 3, 4} {
			cube := pow(2*r+1, d)
			free := view.Complete(k, r).Size()
			t.AddRow(k, r, len(balls[r].Nodes), cube, free)
		}
	}
	t.Notes = append(t.Notes,
		"eq. (2) of the paper: B_U(v, r) ⊆ v + [−r, r]^d — measured ball sizes always respect the polynomial cube bound",
		"for k=1 the free bound 2r+1 is tiny; for k >= 2 it grows as (2k)(2k−1)^{r−1} while U's growth stays polynomial in r — the reason soluble groups are used",
	)
	return t, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Views regenerates Fig. 4/5: view trees of a concrete graph and the
// complete trees T*.
func Views() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "view trees and the complete tree T*",
		Ref:     "Fig. 4, Fig. 5, §2.5",
		Columns: []string{"object", "|L|", "r", "vertices", "note"},
	}
	for _, lr := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 2}} {
		l, r := lr[0], lr[1]
		size := view.Complete(l, r).Size()
		t.AddRow("T*", l, r, size, "complete: root 2|L| children, inner 2|L|−1")
	}
	// The directed triangle's radius-3 view: the unrolled universal
	// cover is larger than the graph.
	bs := view.NewBuildScratch()
	h, err := directedCycle(3)
	if err != nil {
		return nil, err
	}
	v := view.BuildWith[int](bs, h.D, 0, 3)
	t.AddRow("T(C3,v) truncated", 1, 3, v.Size(), "unrolls the cycle: 7 > |C3| = 3")
	// Fig. 4: views of all nodes of a cycle coincide.
	h9, err := directedCycle(9)
	if err != nil {
		return nil, err
	}
	ref := view.BuildWith[int](bs, h9.D, 0, 2)
	same := true
	for w := 1; w < 9; w++ {
		if view.BuildWith[int](bs, h9.D, w, 2) != ref {
			same = false
		}
	}
	t.AddRow("T(C9,·) radius 2", 1, 2, view.BuildWith[int](bs, h9.D, 0, 2).Size(),
		fmt.Sprintf("all 9 views isomorphic: %v", same))
	t.Notes = append(t.Notes,
		"a PO algorithm is a function of these trees (eq. B(G,v) = B(τ(T(G,v)))); their isomorphism across nodes is exactly what lower bounds exploit",
	)
	return t, nil
}
