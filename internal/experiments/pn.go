package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/problems"
	"repro/internal/view"
)

// PNSeparation regenerates Section 6.1: the main theorem cannot be
// extended below PO to the port-numbering model PN (no orientation).
//
// Witness family: 3-regular 3-edge-colourable graphs (here K3,3) with
// ports assigned by the edge colouring. In PN every node's view is
// isomorphic, so any PN algorithm outputs a constant and the best
// dominating set it can produce is the trivial "everyone" — certified
// by enumeration. One orientation later (PO), the bipartition sides
// become distinguishable and a PO algorithm takes one side: strictly
// better. PN is modelled as PO over the symmetrised digraph (each
// edge as two anti-parallel arcs carrying the same port label), which
// is informationally equivalent to the classical PN view.
func PNSeparation() (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "PO vs PN: orientations matter (dominating set on K3,3)",
		Ref:   "§6.1",
		Columns: []string{
			"model", "view types", "best certified DS ratio", "witness",
		},
	}
	p := problems.MinDominatingSet{}

	// PN: symmetrised edge-coloured K3,3.
	pn, err := pnK33()
	if err != nil {
		return nil, err
	}
	pnTypes := countViewTypes(pn, 2)
	pnLB, err := core.CertifyPOLowerBound(pn, p, 2, 1<<20)
	if err != nil {
		return nil, err
	}
	t.AddRow("PN (no orientation)", pnTypes, ratioStr(pnLB.BestRatio), "constant output: everyone joins")

	// PO: the same ports, oriented left -> right.
	po, err := poK33()
	if err != nil {
		return nil, err
	}
	poTypes := countViewTypes(po, 2)
	poLB, err := core.CertifyPOLowerBound(po, p, 2, 1<<20)
	if err != nil {
		return nil, err
	}
	t.AddRow("PO (oriented)", poTypes, ratioStr(poLB.BestRatio), "one bipartition side suffices")

	if poLB.BestRatio >= pnLB.BestRatio {
		return nil, fmt.Errorf("experiments: PO bound %v not better than PN bound %v — §6.1 separation failed",
			poLB.BestRatio, pnLB.BestRatio)
	}
	t.Notes = append(t.Notes,
		"in PN the edge-colouring port assignment makes all views isomorphic: no nontrivial dominating set is expressible, certified by exhausting all behaviours",
		"the main theorem therefore stops at PO: orientations provide real symmetry-breaking power that ID does not add to",
	)
	return t, nil
}

// pnK33 builds the symmetrised (orientation-free) edge-coloured K3,3:
// left vertices 0..2, right 3..5, colour c joins u to 3+((u+c) mod 3);
// each edge becomes two anti-parallel arcs labelled c.
func pnK33() (*model.Host, error) {
	b := digraph.NewBuilder(6, 3)
	for u := 0; u < 3; u++ {
		for c := 0; c < 3; c++ {
			v := 3 + (u+c)%3
			b.MustAddArc(u, v, c)
			b.MustAddArc(v, u, c)
		}
	}
	d := b.Build()
	return &model.Host{D: d, G: graph.CompleteBipartite(3, 3)}, nil
}

// poK33 is the same edge-colouring with the left-to-right orientation.
func poK33() (*model.Host, error) {
	b := digraph.NewBuilder(6, 3)
	for u := 0; u < 3; u++ {
		for c := 0; c < 3; c++ {
			b.MustAddArc(u, 3+(u+c)%3, c)
		}
	}
	return model.NewHost(b.Build())
}

// countViewTypes counts the distinct radius-r view types on the host.
// Views are hash-consed, so distinctness is pointer distinctness; one
// build scratch is reused across the whole scan.
func countViewTypes(h *model.Host, r int) int {
	bs := view.NewBuildScratch()
	types := map[*view.Tree]bool{}
	for v := 0; v < h.G.N(); v++ {
		types[view.BuildWith[int](bs, h.D, v, r)] = true
	}
	return len(types)
}

func ratioStr(x float64) string {
	if math.IsInf(x, 1) {
		return "∞"
	}
	return fmt.Sprintf("%.4g", x)
}
