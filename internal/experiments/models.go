package experiments

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/view"
)

// Models regenerates Fig. 1: the same 4-cycle under the three
// information regimes. The probe question is "am I the unique local
// minimum of my radius-1 neighbourhood?" — answerable in ID and OI,
// and provably constant across nodes in PO (all views coincide).
func Models() (*Table, error) {
	g := graph.Cycle(4)
	ids := []int{3, 5, 2, 8} // the identifiers drawn in Fig. 1
	rank, err := order.FromIDs(ids)
	if err != nil {
		return nil, err
	}
	h := model.HostFromGraph(g)

	idAlg := model.FuncID{R: 1, Fn: func(b *model.IDBall) model.Output {
		return model.Output{Member: b.Root == 0}
	}}
	oiAlg := model.FuncOI{R: 1, Fn: func(b *order.Ball) model.Output {
		return model.Output{Member: b.Root == 0}
	}}

	solID, err := model.RunID(h, ids, idAlg, model.VertexKind)
	if err != nil {
		return nil, err
	}
	solOI, err := model.RunOI(h, rank, oiAlg, model.VertexKind)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E1",
		Title:   "three models of distributed computing on C4",
		Ref:     "Fig. 1",
		Columns: []string{"node", "ID label", "OI rank", "PO view type", "ID: local min", "OI: local min", "PO possible?"},
	}
	bs := view.NewBuildScratch()
	types := map[*view.Tree]int{}
	for v := 0; v < g.N(); v++ {
		tree := view.BuildWith[int](bs, h.D, v, 1)
		if _, ok := types[tree]; !ok {
			types[tree] = len(types)
		}
		t.AddRow(v, ids[v], rank[v], fmt.Sprintf("t%d", types[tree]),
			yn(solID.Vertices[v]), yn(solOI.Vertices[v]), "no (symmetric)")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the PO host realises %d distinct view type(s); with the smaller-endpoint orientation the symmetry is broken only where the orientation breaks it", len(types)),
		"ID and OI agree here because the probe is order-invariant; E9 exhibits an ID algorithm that is not")
	return t, nil
}

// directedCycle builds the consistently oriented n-cycle host.
func directedCycle(n int) (*model.Host, error) {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	return model.NewHost(b.Build())
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
