package experiments

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
)

// RamseyIDOI regenerates Section 4.2: the Ramsey argument forcing an
// ID algorithm to behave order-invariantly. The parity-abusing
// dominating-set algorithm genuinely depends on numeric identifier
// values; a monochromatic identifier pool J is found by search, and on
// J-drawn order-respecting assignments the algorithm's run coincides
// node-for-node with its induced OI algorithm (Proposition 4.4).
func RamseyIDOI() (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Ramsey witnesses: forcing ID algorithms to be order-invariant",
		Ref:   "§4.2, Prop. 4.4",
		Columns: []string{
			"instance", "ball types", "t", "universe", "|J|", "witness J", "ID=OI agreement",
		},
	}
	for _, n := range []int{6, 8, 10} {
		g := graph.Cycle(n)
		h := model.HostFromGraph(g)
		rank := order.Identity(n)
		cat := core.BallCatalogue(h, rank, 1)
		m := 3 + n // need at least max-ball-size; take slack for the demo
		w, err := core.IDToOI(algorithms.IDParityDS(), cat, 60, m)
		if err != nil {
			return nil, err
		}
		ids, err := core.OrderRespectingIDs(rank, w.J)
		if err != nil {
			return nil, err
		}
		solID, err := model.RunID(h, ids, algorithms.IDParityDS(), model.VertexKind)
		if err != nil {
			return nil, err
		}
		solOI, err := model.RunOI(h, rank, w.InducedOI(1), model.VertexKind)
		if err != nil {
			return nil, err
		}
		agree := 0
		for v := 0; v < n; v++ {
			if solID.Vertices[v] == solOI.Vertices[v] {
				agree++
			}
		}
		t.AddRow(fmt.Sprintf("C%d", n), len(cat), w.T, 60, len(w.J),
			fmt.Sprint(w.J), float64(agree)/float64(n))
	}
	t.Notes = append(t.Notes,
		"with arbitrary identifiers the parity algorithm's output differs between, e.g., pools of even and odd numbers; on every t-subset of J it is constant",
		"agreement 1.0 is Proposition 4.4 realised: identifiers drawn order-respectingly from J make A behave exactly like the induced OI algorithm B",
	)
	return t, nil
}
