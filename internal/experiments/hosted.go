package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/digraph"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
)

// HostExperiment is an experiment re-runnable on any registered host
// family (the -host flag of cmd/experiments). The host variants are
// summary tables — hosts can be large, so they aggregate per-type
// instead of printing one row per node like their fixed-host originals.
// Run receives the -rmax radius ceiling; experiments without a radius
// sweep ignore it, the homogeneity measurement (E5) emits one row per
// radius 1..rmax from a single layered pass.
type HostExperiment struct {
	ID   string
	Name string
	Run  func(h *host.Host, rmax int) (*Table, error)
}

// DefaultRmax is the radius ceiling the host experiments use when the
// caller does not pick one (-rmax of cmd/experiments).
const DefaultRmax = 2

// HostExperiments returns the host-parameterisable experiments: the
// model comparison (E1), homogeneity measurement (E5), ball growth
// (E12), PN-vs-PO symmetry breaking (E13) and operational round
// workloads (E16).
func HostExperiments() []HostExperiment {
	return []HostExperiment{
		{ID: "E1", Name: "three models", Run: ModelsOn},
		{ID: "E5", Name: "host homogeneity", Run: HomogeneityOn},
		{ID: "E12", Name: "ball growth", Run: GrowthOn},
		{ID: "E13", Name: "PO vs PN separation", Run: PNSeparationOn},
		{ID: "E16", Name: "operational rounds", Run: RoundsOn},
	}
}

// RunHosted runs one host experiment by id on the given host.
func RunHosted(id string, h *host.Host, rmax int) (*Table, error) {
	for _, e := range HostExperiments() {
		if e.ID == id {
			return e.Run(h, rmax)
		}
	}
	return nil, fmt.Errorf("experiment %q is not host-parameterisable (available: E1, E5, E12, E13, E16)", id)
}

// modelHost equips a registry host with ports when its family did not
// provide a labelling.
func modelHost(h *host.Host) *model.Host {
	if h.D != nil {
		return &model.Host{D: h.D, G: h.G}
	}
	return model.HostFromGraph(h.G)
}

// ModelsOn is E1 generalised to an arbitrary host: the "unique local
// minimum of the radius-1 neighbourhood" probe under identifiers drawn
// from a fixed seed, the same probe order-invariantly, and the number
// of PO view types (a PO algorithm cannot distinguish nodes of one
// type, so its outputs are constant on each class).
func ModelsOn(h *host.Host, _ int) (*Table, error) {
	mh := modelHost(h)
	n := mh.G.N()
	rng := rand.New(rand.NewSource(1))
	ids := rng.Perm(8 * n)[:n]
	rank, err := order.FromIDs(ids)
	if err != nil {
		return nil, err
	}
	idAlg := model.FuncID{R: 1, Fn: func(b *model.IDBall) model.Output {
		return model.Output{Member: b.Root == 0}
	}}
	oiAlg := model.FuncOI{R: 1, Fn: func(b *order.Ball) model.Output {
		return model.Output{Member: b.Root == 0}
	}}
	solID, err := model.RunID(mh, ids, idAlg, model.VertexKind)
	if err != nil {
		return nil, err
	}
	solOI, err := model.RunOI(mh, rank, oiAlg, model.VertexKind)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("three models on %s (n=%d, m=%d)", h.Desc, n, mh.G.M()),
		Ref:     "Fig. 1 (host-parameterised)",
		Columns: []string{"model", "distinct local types", "local minima selected"},
	}
	t.AddRow("ID", fmt.Sprint(n), solID.Size())
	t.AddRow("OI", countBallTypes(mh, rank, 1), solOI.Size())
	t.AddRow("PO", countViewTypes(mh, 1), "constant per type")
	t.Notes = append(t.Notes,
		"identifiers are a seed-1 permutation; ID and OI agree on this order-invariant probe, PO outputs are constant on each view-type class",
	)
	return t, nil
}

// countBallTypes counts distinct canonical ordered ball types at
// radius r (interned: distinctness is pointer distinctness; one
// sweeper is reused across the whole scan).
func countBallTypes(mh *model.Host, rank order.Rank, r int) int {
	sw, in := order.NewSweeper(), order.NewInterner()
	types := map[*order.Ball]bool{}
	for v := 0; v < mh.G.N(); v++ {
		types[sw.CanonicalBall(mh.G, rank, v, r, in)] = true
	}
	return len(types)
}

// HomogeneityOn is E5 generalised: the homogeneity (Def. 3.1) of the
// host under the identity (vertex-index) order, at every radius
// 1..rmax (rmax <= 0 means DefaultRmax) from ONE layered sweep —
// SweepMeasureAll runs a single BFS per vertex and canonicalises at
// each layer boundary. This is a full scan — every vertex's ball is
// canonicalised — and is intended for hosts up to roughly 10^5
// vertices.
func HomogeneityOn(h *host.Host, rmax int) (*Table, error) {
	if rmax <= 0 {
		rmax = DefaultRmax
	}
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("homogeneity of %s under the vertex-index order", h.Desc),
		Ref:     "Fig. 6(b), Def. 3.1 (host-parameterised)",
		Columns: []string{"host", "r", "measured max α", "types"},
	}
	rank := order.Identity(h.G.N())
	for r, hm := range order.SweepMeasureAll(h.G, rank, rmax) {
		t.AddRow(h.Desc, r+1, hm.Alpha, len(hm.Counts))
	}
	t.Notes = append(t.Notes,
		"α is the largest fraction of vertices sharing one ordered r-neighbourhood type; the paper's construction drives α → 1 with girth > 2r+1",
	)
	return t, nil
}

// GrowthOn is E12 generalised: measured ball growth of the host
// against the degree-Δ tree bound (the finite analogue of the free
// bound that motivates polynomial-growth groups in §5.2). All four
// radii come from one layered BFS per vertex (graph.BallSizes), not
// one traversal per (vertex, radius) pair.
func GrowthOn(h *host.Host, _ int) (*Table, error) {
	g := h.G
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("ball growth on %s (n=%d, Δ=%d)", h.Desc, g.N(), g.MaxDegree()),
		Ref:     "§5.2 (host-parameterised)",
		Columns: []string{"r", "max |B(v,r)|", "mean |B(v,r)|", "Δ-regular tree bound"},
	}
	delta := g.MaxDegree()
	const rmax = 4
	maxB, sum := make([]int, rmax+1), make([]int, rmax+1)
	for v := 0; v < g.N(); v++ {
		for r, s := range g.BallSizes(v, rmax) {
			sum[r] += s
			if s > maxB[r] {
				maxB[r] = s
			}
		}
	}
	for r := 1; r <= rmax; r++ {
		mean := 0.0
		if g.N() > 0 {
			mean = float64(sum[r]) / float64(g.N())
		}
		t.AddRow(r, maxB[r], mean, treeBound(delta, r))
	}
	t.Notes = append(t.Notes,
		"hosts with polynomial ball growth (tori, grids) stay far below the tree bound; expanders and random regular graphs track it until they saturate at n",
	)
	return t, nil
}

// treeBound is the ball size of the infinite Δ-regular tree:
// 1 + Δ((Δ−1)^r − 1)/(Δ−2), degenerating to 2r+1 for Δ = 2.
func treeBound(delta, r int) int {
	switch {
	case delta <= 1:
		return delta + 1
	case delta == 2:
		return 2*r + 1
	default:
		pow := 1
		for i := 0; i < r; i++ {
			pow *= delta - 1
		}
		return 1 + delta*(pow-1)/(delta-2)
	}
}

// PNSeparationOn is E13 generalised: the host's radius-2 view types
// under PO (ported, oriented) against PN (the symmetrised digraph:
// each arc mirrored with the transposed port pair, which carries
// exactly the classical orientation-free PN view). Fewer PN types
// means less symmetry-breaking power — on vertex-transitive hosts PN
// collapses to a single type while an orientation keeps classes apart.
func PNSeparationOn(h *host.Host, _ int) (*Table, error) {
	// Both sides are built from the same canonical port numbering of
	// the underlying graph (not the family's own labelling, which the
	// PN side cannot reproduce): the comparison isolates the effect of
	// the orientation alone.
	po := model.HostFromGraph(h.G)
	pn, err := symmetrised(po)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E13",
		Title:   fmt.Sprintf("PO vs PN view types on %s", h.Desc),
		Ref:     "§6.1 (host-parameterised)",
		Columns: []string{"model", "radius-2 view types"},
	}
	pnTypes := countViewTypes(pn, 2)
	poTypes := countViewTypes(po, 2)
	t.AddRow("PN (no orientation)", pnTypes)
	t.AddRow("PO (oriented)", poTypes)
	if poTypes > pnTypes {
		t.Notes = append(t.Notes, "the orientation strictly refines the PN types: §6.1's extra symmetry-breaking power is visible on this host")
	} else {
		t.Notes = append(t.Notes, "the orientation does not refine the PN types on this host")
	}
	return t, nil
}

// RoundsOn is E16 generalised: the engine's operational workloads on
// an arbitrary registry host. The randomized mutual-proposal matching
// (§6.5) runs on every host; the Cole–Vishkin MIS additionally runs
// when the family's own labelling is a consistently oriented cycle
// (out- and in-degree 1 everywhere) — the shape the ID upper bound of
// Fig. 2 needs.
func RoundsOn(h *host.Host, _ int) (*Table, error) {
	mh := modelHost(h)
	n := mh.G.N()
	t := &Table{
		ID:      "E16",
		Title:   fmt.Sprintf("operational rounds on %s (n=%d)", h.Desc, n),
		Ref:     "Fig. 2, §6.5 (host-parameterised, engine)",
		Columns: []string{"workload", "rounds", "selected", "selected/n"},
	}
	rng := rand.New(rand.NewSource(16))
	if h.D != nil && h.D.IsRegularDigraph(1) {
		ids := rng.Perm(8 * n)[:n]
		res, err := algorithms.ColeVishkinMIS(mh, ids)
		if err != nil {
			return nil, err
		}
		t.AddRow("Cole–Vishkin MIS (ID)", res.Rounds, res.MIS.Size(),
			float64(res.MIS.Size())/float64(n))
	}
	sol := algorithms.RandomizedMatching(mh, rng)
	t.AddRow("randomized matching", 2, sol.Size(), float64(sol.Size())/float64(n))
	t.Notes = append(t.Notes,
		"one seeded engine trial per workload; Cole–Vishkin appears only when the host's own labelling is a consistently oriented cycle",
	)
	return t, nil
}

// symmetrised models PN over a ported host: every arc u -> v with
// port pair (i, j) gains the mirror arc v -> u labelled (j, i).
func symmetrised(mh *model.Host) (*model.Host, error) {
	p := digraph.FromPorts(mh.G, nil)
	type pair struct{ i, j int }
	idx := map[pair]int{}
	for l, pl := range p.Labels {
		idx[pair{pl.I, pl.J}] = l
	}
	labels := append([]digraph.PortLabel(nil), p.Labels...)
	for _, pl := range p.Labels {
		if _, ok := idx[pair{pl.J, pl.I}]; !ok {
			idx[pair{pl.J, pl.I}] = len(labels)
			labels = append(labels, digraph.PortLabel{I: pl.J, J: pl.I})
		}
	}
	b := digraph.NewBuilder(mh.G.N(), len(labels))
	for v := 0; v < p.D.N(); v++ {
		for _, a := range p.D.Out(v) {
			pl := p.Labels[a.Label]
			if err := b.AddArc(v, a.To, idx[pair{pl.I, pl.J}]); err != nil {
				return nil, err
			}
			if err := b.AddArc(a.To, v, idx[pair{pl.J, pl.I}]); err != nil {
				return nil, err
			}
		}
	}
	return &model.Host{D: b.Build(), G: mh.G}, nil
}
