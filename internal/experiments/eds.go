package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/homog"
	"repro/internal/model"
	"repro/internal/problems"
	"repro/internal/solve"
)

// EDSLowerBound regenerates Theorem 1.6: the local approximability of
// minimum edge dominating set is exactly α0 = 4 − 2/Δ' in all three
// models.
//
// For Δ' = 2 the story is complete and machine-checked: the certified
// PO bound on directed cycles is exactly 3, the one-out-edge PO
// algorithm achieves 3, and an ID algorithm that genuinely exploits
// identifiers (IDGreedyEDS) beats 3 on random identifier assignments —
// but on adversarial, order-respecting identifier assignments (the
// ones Theorem 1.4's machinery constructs) it is forced back to
// ratio 3.
//
// For Δ' = 4 (α0 = 3.5) a search over small 4-regular circulant G0
// candidates reports the best certified PO bound our exact solver can
// reach; girth-4 commutator cycles keep small circulants slightly
// below the asymptotic 3.5, and the shape (bound grows from 3 towards
// 3.5 with Δ') is preserved.
func EDSLowerBound() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "minimum edge dominating set: α0 = 4 − 2/Δ' transfer",
		Ref:   "Thm 1.6, §1.7",
		Columns: []string{
			"instance", "Δ'", "α0 = 4−2/Δ'", "certified PO bound",
			"PO alg ratio", "ID greedy (random ids)", "ID greedy (adversarial ids)",
		},
	}
	rng := rand.New(rand.NewSource(31))
	p := problems.MinEdgeDominatingSet{}

	for _, n := range []int{9, 12, 15} {
		h, err := directedCycle(n)
		if err != nil {
			return nil, err
		}
		lb, err := core.CertifyPOLowerBound(h, p, 1, 1<<20)
		if err != nil {
			return nil, err
		}
		solPO, err := model.RunPO(h, algorithms.EDSOneOut(), model.EdgeKind)
		if err != nil {
			return nil, err
		}
		rPO, err := problems.Ratio(p, h.G, solPO)
		if err != nil {
			return nil, err
		}
		// Random identifiers: the greedy ID algorithm coordinates.
		randIDs := rng.Perm(10 * n)[:n]
		solRand, err := model.RunID(h, randIDs, algorithms.IDGreedyEDS(), model.EdgeKind)
		if err != nil {
			return nil, err
		}
		rRand, err := problems.Ratio(p, h.G, solRand)
		if err != nil {
			return nil, err
		}
		// Adversarial identifiers: increasing along the cycle — the
		// order a homogeneous lift transfers (every interior node sees
		// the same ordered neighbourhood, exactly Theorem 3.3's
		// situation).
		advIDs := make([]int, n)
		for i := range advIDs {
			advIDs[i] = i + 1
		}
		solAdv, err := model.RunID(h, advIDs, algorithms.IDGreedyEDS(), model.EdgeKind)
		if err != nil {
			return nil, err
		}
		rAdv, err := problems.Ratio(p, h.G, solAdv)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("C%d", n), 2, 3.0, lb.BestRatio, rPO, rRand, rAdv)
	}

	// The full Theorem 1.4/Prop. 4.5 instance: a homogeneous lift of C9
	// with order-respecting identifiers drawn from the transferred
	// linear order. The ID algorithm sees a large instance with genuine
	// O(log n)-bit identifiers, yet its ratio stays near the PO bound.
	for _, m := range []int{6, 10} {
		row, err := liftAdversary(m)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Δ' = 4: best certified bound over small 4-regular circulants with
	// the Cayley orientation (a single view type, so the PO space is
	// the 16 subsets of {a±, b±}).
	bestBound, bestName := 0.0, ""
	for _, cand := range [][3]int{{9, 1, 2}, {11, 1, 3}, {13, 1, 5}, {14, 1, 4}, {15, 1, 4}} {
		n, a, b := cand[0], cand[1], cand[2]
		h, err := cayleyCirculant(n, a, b)
		if err != nil {
			return nil, err
		}
		lb, err := core.CertifyPOLowerBound(h, p, 1, 1<<20)
		if err != nil {
			return nil, err
		}
		if !math.IsInf(lb.BestRatio, 1) && lb.BestRatio > bestBound {
			bestBound = lb.BestRatio
			bestName = fmt.Sprintf("C%d(%d,%d)", n, a, b)
		}
	}
	t.AddRow(bestName, 4, 3.5, bestBound, "-", "-", "-")

	// Non-abelian G0 candidates: Cayley graphs of H_2(m) with two
	// generators can reach girth 5 (circulants cannot — commutator
	// 4-cycles), pushing the certified bound closer to the asymptotic
	// 3.5. The certified ratio on a vertex-transitive labelled digraph
	// is n/γ' (the only feasible PO behaviours select whole generator
	// classes); γ' is upper-bounded by the greedy solver, so the
	// reported value is a safe lower bound on the certified ratio.
	if name, bound, girth, err := nonabelianG0(rng); err != nil {
		return nil, err
	} else if name != "" {
		t.AddRow(name, 4, 3.5, fmt.Sprintf(">= %.4g (girth %d)", bound, girth), "-", "-", "-")
	}

	t.Notes = append(t.Notes,
		"the Δ'=2 row chain is the full Theorem 1.6 pipeline: PO bound certified, upper bound matches, adversarial identifiers collapse the ID advantage to the PO value",
		"adversarial (order-respecting) identifiers yield (n−1)/⌈n/3⌉: the ID algorithm saves exactly one edge at the order's seam and the ratio tends to α0 = 3 — the paper's ε-fraction of exceptional nodes made visible",
		"Δ'=4 circulants have girth 4 (abelian commutators), so small instances certify slightly below the asymptotic 3.5; Suomela [2010]'s G0 achieves it in the limit",
	)
	return t, nil
}

// liftAdversary runs IDGreedyEDS on a materialised homogeneous lift of
// C9 with identifiers respecting the transferred order — the instance
// Proposition 4.5 constructs. The lift of a cycle is a disjoint union
// of cycles, so the optimum is Σ ⌈len/3⌉ over components.
func liftAdversary(m int) ([]string, error) {
	c, err := homog.Search(1, 1, homog.SearchOptions{Seed: 42})
	if err != nil {
		return nil, err
	}
	if c.Level > 2 {
		return []string{fmt.Sprintf("lift of C9 (m=%d)", m), "2", "3", "-", "-", "-", "construction level too large"}, nil
	}
	baseHost, err := directedCycle(9)
	if err != nil {
		return nil, err
	}
	lr, err := core.BuildHomogeneousLift(c, baseHost.D, m, 1<<17)
	if err != nil {
		return nil, err
	}
	ids := make([]int, lr.Host.G.N())
	for v, r := range lr.Rank {
		ids[v] = r + 1
	}
	sol, err := model.RunID(lr.Host, ids, algorithms.IDGreedyEDS(), model.EdgeKind)
	if err != nil {
		return nil, err
	}
	p := problems.MinEdgeDominatingSet{}
	if err := p.Feasible(lr.Host.G, sol); err != nil {
		return nil, fmt.Errorf("experiments: lift adversary infeasible: %w", err)
	}
	opt, err := cycleUnionEDSOpt(lr.Host.G)
	if err != nil {
		return nil, err
	}
	ratio := float64(sol.Size()) / float64(opt)
	return []string{
		fmt.Sprintf("H(%d)×C9 lift (n=%d)", m, lr.Host.G.N()),
		"2", "3", "3 (inherited: PO-invariant under lifts)", "-", "-",
		fmt.Sprintf("%.4g", ratio),
	}, nil
}

// cycleUnionEDSOpt computes γ' of a disjoint union of cycles exactly:
// Σ ⌈len/3⌉. It errors if the graph is not 2-regular.
func cycleUnionEDSOpt(g *graph.Graph) (int, error) {
	if !g.IsRegular(2) {
		return 0, fmt.Errorf("experiments: not a union of cycles")
	}
	opt := 0
	for _, comp := range g.Components() {
		opt += (len(comp) + 2) / 3
	}
	return opt, nil
}

// nonabelianG0 searches small non-abelian Cayley graphs C(H_2(m), S),
// |S| = 2, for girth >= 5 instances and returns the best lower bound
// n/|greedy γ'| on the certified PO ratio, with the instance's girth.
func nonabelianG0(rng *rand.Rand) (string, float64, int, error) {
	fam := group.H(2, 6)
	bestName, bestBound, bestGirth := "", 0.0, 0
	for try := 0; try < 40; try++ {
		s1, s2 := fam.Rand(rng), fam.Rand(rng)
		if fam.IsIdentity(s1) || fam.IsIdentity(s2) || s1.Equal(s2) {
			continue
		}
		gens := []group.Elem{s1, s2}
		if g := fam.GirthUpTo(gens, 4); g != -1 {
			continue // a relation of length <= 4 exists
		}
		cay, err := group.NewCayley(fam, gens)
		if err != nil {
			continue
		}
		mat, _, _, err := digraph.Materialize[string](cay, []string{cay.Node(fam.Identity())}, 1<<11)
		if err != nil {
			continue
		}
		host, err := model.NewHost(mat)
		if err != nil {
			continue
		}
		if !host.G.IsRegular(4) {
			continue
		}
		girth := host.G.Girth()
		greedy := solve.GreedyEdgeDominatingSet(host.G)
		if len(greedy) == 0 {
			continue
		}
		bound := float64(host.G.N()) / float64(len(greedy))
		if bound > bestBound {
			bestBound = bound
			bestGirth = girth
			bestName = fmt.Sprintf("C(H_2(6),S) n=%d", host.G.N())
		}
	}
	return bestName, bestBound, bestGirth, nil
}

// cayleyCirculant builds the directed Cayley circulant of Z_n with
// generators {a, b} as a host: every node has out-arcs labelled 0 (+a)
// and 1 (+b) — one view type everywhere.
func cayleyCirculant(n, a, b int) (*model.Host, error) {
	bl := digraph.NewBuilder(n, 2)
	for v := 0; v < n; v++ {
		bl.MustAddArc(v, (v+a)%n, 0)
		bl.MustAddArc(v, (v+b)%n, 1)
	}
	return model.NewHost(bl.Build())
}

// EDSOptimaOnCycles is a helper used by tests and docs: γ'(C_n) values.
func EDSOptimaOnCycles(ns []int) map[int]int {
	out := make(map[int]int, len(ns))
	for _, n := range ns {
		out[n] = solve.MinEdgeDominatingSetSize(graph.Cycle(n))
	}
	return out
}
