package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/job"
)

// jobServer builds a Server with an attached job manager over a fresh
// temp dir.
func jobServer(t *testing.T) *Server {
	t.Helper()
	m, err := job.Open(job.Config{Dir: t.TempDir(), Workers: 2, Queue: 4})
	if err != nil {
		t.Fatalf("job.Open: %v", err)
	}
	t.Cleanup(m.Close)
	s := New(Config{})
	s.AttachJobs(m)
	return s
}

// doReq drives an arbitrary-method request through the handler.
func doReq(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(method, target, rd))
	return rr
}

func decodeStatus(t *testing.T, body []byte) job.Status {
	t.Helper()
	var st job.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding job status %s: %v", body, err)
	}
	return st
}

// TestJobsEndpointLifecycle walks the whole HTTP surface: submit,
// idempotent resubmit, status poll, result retrieval, list, cancel.
func TestJobsEndpointLifecycle(t *testing.T) {
	s := jobServer(t)

	spec := `{"kind": "flood", "host": "cycle:24", "rounds": 24, "seed": 3}`
	rr := doReq(t, s, http.MethodPost, "/v1/jobs", spec)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: want 202, got %d (%s)", rr.Code, rr.Body.String())
	}
	st := decodeStatus(t, rr.Body.Bytes())
	if st.ID == "" {
		t.Fatalf("submit returned no id: %s", rr.Body.String())
	}

	// Resubmitting the identical spec is the same job (content-addressed
	// id), not a second one.
	rr = doReq(t, s, http.MethodPost, "/v1/jobs", spec)
	if rr.Code != http.StatusAccepted || decodeStatus(t, rr.Body.Bytes()).ID != st.ID {
		t.Fatalf("resubmit: want 202 with same id %s, got %d (%s)", st.ID, rr.Code, rr.Body.String())
	}

	// Result is 409 until done, then 200 with the deterministic body.
	for {
		rr = doReq(t, s, http.MethodGet, "/v1/jobs/"+st.ID+"/result", "")
		if rr.Code == http.StatusOK {
			break
		}
		if rr.Code != http.StatusConflict {
			t.Fatalf("result while running: want 409 or 200, got %d (%s)", rr.Code, rr.Body.String())
		}
	}
	var res struct {
		Kind      string `json:"kind"`
		Leader    uint64 `json:"leader"`
		Converged int    `json:"converged"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &res); err != nil || res.Kind != "flood" || res.Converged < 1 {
		t.Fatalf("flood result body = %s (err %v)", rr.Body.String(), err)
	}

	rr = doReq(t, s, http.MethodGet, "/v1/jobs/"+st.ID, "")
	if rr.Code != 200 || decodeStatus(t, rr.Body.Bytes()).State != "done" {
		t.Fatalf("status after completion: %d (%s)", rr.Code, rr.Body.String())
	}

	rr = doReq(t, s, http.MethodGet, "/v1/jobs", "")
	if rr.Code != 200 {
		t.Fatalf("list: %d", rr.Code)
	}
	var list struct {
		Jobs   []job.Status     `json:"jobs"`
		States map[string]int64 `json:"states"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil || len(list.Jobs) != 1 || list.States["done"] != 1 {
		t.Fatalf("list body = %s (err %v)", rr.Body.String(), err)
	}

	// Cancel on a terminal job is a no-op 200; DELETE on a missing job
	// is 404.
	if rr = doReq(t, s, http.MethodDelete, "/v1/jobs/"+st.ID, ""); rr.Code != 200 {
		t.Fatalf("cancel done job: %d", rr.Code)
	}
	if rr = doReq(t, s, http.MethodDelete, "/v1/jobs/jmissing", ""); rr.Code != 404 {
		t.Fatalf("cancel missing job: want 404, got %d", rr.Code)
	}
}

// TestJobsEndpointErrors covers the JSON error surface: disabled
// subsystem, malformed and invalid specs, unknown ids and methods.
func TestJobsEndpointErrors(t *testing.T) {
	bare := New(Config{})
	if rr := doReq(t, bare, http.MethodGet, "/v1/jobs", ""); rr.Code != 404 || !strings.Contains(rr.Body.String(), "not enabled") {
		t.Fatalf("jobs without manager: want 404 'not enabled', got %d (%s)", rr.Code, rr.Body.String())
	}

	s := jobServer(t)
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/v1/jobs", `{not json`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"kind": "flood", "host": "cycle:8", "rounds": 8, "bogus": 1}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"kind": "warp", "host": "cycle:8"}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"kind": "flood", "host": "cycle:8"}`, http.StatusBadRequest},
		{http.MethodGet, "/v1/jobs/junknown", "", http.StatusNotFound},
		{http.MethodGet, "/v1/jobs/junknown/result", "", http.StatusNotFound},
		{http.MethodPut, "/v1/jobs", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/jobs/jx", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/jobs/jx/result", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/jobs/jx/bogus", "", http.StatusNotFound},
	} {
		rr := doReq(t, s, tc.method, tc.path, tc.body)
		if rr.Code != tc.want {
			t.Fatalf("%s %s: want %d, got %d (%s)", tc.method, tc.path, tc.want, rr.Code, rr.Body.String())
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s %s: jobs errors must be JSON, got Content-Type %q", tc.method, tc.path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s %s: body %q is not {error: ...}", tc.method, tc.path, rr.Body.String())
		}
	}
}

// TestJobsEndpointSaturation asserts a full job queue answers 429 with
// a depth-derived Retry-After, mirroring the synchronous path's shed.
func TestJobsEndpointSaturation(t *testing.T) {
	m, err := job.Open(job.Config{Dir: t.TempDir(), Workers: 1, Queue: 1})
	if err != nil {
		t.Fatalf("job.Open: %v", err)
	}
	t.Cleanup(m.Close)
	s := New(Config{})
	s.AttachJobs(m)

	// Long flood jobs occupy the single worker and the queue; keep
	// submitting distinct specs until one sheds.
	sawShed := false
	for n := 0; n < 64 && !sawShed; n++ {
		body := `{"kind": "flood", "host": "cycle:512", "rounds": 500000, "seed": ` + strconv.Itoa(n+1) + `}`
		rr := doReq(t, s, http.MethodPost, "/v1/jobs", body)
		switch rr.Code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			sawShed = true
			if ra := rr.Header().Get("Retry-After"); ra == "" || ra == "0" {
				t.Fatalf("shed without usable Retry-After: %v", rr.Header())
			}
			var e struct {
				Error      string `json:"error"`
				RetryAfter int    `json:"retry_after_s"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.RetryAfter < 1 {
				t.Fatalf("shed body = %s (err %v)", rr.Body.String(), err)
			}
		default:
			t.Fatalf("submit %d: unexpected status %d (%s)", n, rr.Code, rr.Body.String())
		}
	}
	if !sawShed {
		t.Fatal("never saturated the job queue")
	}
}

// TestMetricsJobsBlock asserts /metrics carries the job-state gauge and
// per-endpoint latency histograms once jobs are attached.
func TestMetricsJobsBlock(t *testing.T) {
	s := jobServer(t)
	doReq(t, s, http.MethodGet, "/v1/jobs", "")
	rr := doReq(t, s, http.MethodGet, "/metrics", "")
	if rr.Code != 200 {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	var m struct {
		Jobs struct {
			States  map[string]int64 `json:"states"`
			Workers int              `json:"workers"`
		} `json:"jobs"`
		Latency map[string]struct {
			Count     int64            `json:"count"`
			BucketsLE map[string]int64 `json:"buckets_le"`
		} `json:"latency_by_endpoint"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics body: %v\n%s", err, rr.Body.String())
	}
	if m.Jobs.Workers != 2 {
		t.Fatalf("jobs.workers = %d, want 2", m.Jobs.Workers)
	}
	if _, ok := m.Jobs.States["pending"]; !ok {
		t.Fatalf("jobs.states missing pending gauge: %s", rr.Body.String())
	}
	h, ok := m.Latency["/v1/jobs"]
	if !ok || h.Count < 1 {
		t.Fatalf("latency_by_endpoint missing /v1/jobs: %s", rr.Body.String())
	}
	if inf, ok := h.BucketsLE["+Inf"]; !ok || inf != h.Count {
		t.Fatalf("+Inf bucket %d should equal count %d", inf, h.Count)
	}
}
