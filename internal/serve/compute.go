package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/algorithms"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/view"
)

// This file is the server's workload layer: each compute function
// resolves the validated request into the repo's engine entry points
// (always the Ctx variants, so the per-request deadline reaches the
// round loop and the sweep loop) and renders the result as the JSON
// body that the cache stores verbatim. Every computation is
// deterministic in its canonical tuple, which is what makes the
// bodies cacheable forever.

// workloads is the run-endpoint registry, mirroring cmd/localsim's
// scale mode; unknown algo values list it (self-repairing errors,
// like the host and profile grammars).
var workloads = []struct{ Name, Doc string }{
	{"cole-vishkin", "ID-model MIS on a directed cycle (typed word-lane engine)"},
	{"matching", "one round of randomized mutual proposals (typed word-lane engine)"},
	{"gather", "full-information view gathering, radius rmax (default 2)"},
}

func describeWorkloads() string {
	s := "workloads:\n"
	for _, w := range workloads {
		s += fmt.Sprintf("  %-14s %s\n", w.Name, w.Doc)
	}
	return s
}

func knownWorkload(name string) bool {
	for _, w := range workloads {
		if w.Name == name {
			return true
		}
	}
	return false
}

// measureResponse is the body of /v1/measure.
type measureResponse struct {
	Host  string         `json:"host"`
	N     int            `json:"n"`
	M     int            `json:"m"`
	Rmax  int            `json:"rmax"`
	Radii []radiusResult `json:"radii"`
}

type radiusResult struct {
	R        int     `json:"r"`
	Alpha    float64 `json:"alpha"`
	Types    int     `json:"types"`
	Majority int     `json:"majority"`
}

// computeMeasure resolves the host and runs the layered homogeneity
// sweep under the request deadline (vertex-index rank, as the CLIs
// measure).
func computeMeasure(ctx context.Context, hostDesc string, rmax int) ([]byte, error) {
	rh, err := host.Parse(hostDesc)
	if err != nil {
		return nil, err
	}
	homs, err := order.SweepMeasureAllCtx(ctx, rh.G, order.Identity(rh.G.N()), rmax)
	if err != nil {
		return nil, err
	}
	resp := measureResponse{Host: rh.Desc, N: rh.G.N(), M: rh.G.M(), Rmax: rmax}
	for r, hm := range homs {
		resp.Radii = append(resp.Radii, radiusResult{R: r + 1, Alpha: hm.Alpha, Types: len(hm.Counts), Majority: hm.Count})
	}
	return json.Marshal(resp)
}

// runResponse is the body of /v1/run. Fault fields are present only
// on faulty runs (pointers stay nil on clean runs and are omitted).
type runResponse struct {
	Host   string `json:"host"`
	Algo   string `json:"algo"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`
	Rounds int    `json:"rounds"`
	// Size is the solution size: |MIS|, |M|, or distinct view types.
	Size   int          `json:"size"`
	Faults *faultResult `json:"faults,omitempty"`
	// Sharded is present only on shards= runs.
	Sharded *shardedResult `json:"sharded,omitempty"`
}

// shardedResult summarises a sharded run's exchange plane: shard
// count, resident cross-shard arcs and total words exchanged (the
// per-shard breakdown is on /metrics).
type shardedResult struct {
	P              int   `json:"p"`
	CrossArcs      int64 `json:"cross_arcs"`
	ExchangedWords int64 `json:"exchanged_words"`
}

type faultResult struct {
	Profile    string `json:"profile"`
	Crashed    int    `json:"crashed"`
	Dropped    int64  `json:"dropped"`
	Duplicated int64  `json:"duplicated"`
	Reordered  int64  `json:"reordered"`
	// Violations/Uncovered are Cole–Vishkin survivor-safety counts;
	// Conflicts is the matching's (all 0 for gather).
	Violations int `json:"violations"`
	Uncovered  int `json:"uncovered"`
	Conflicts  int `json:"conflicts"`
}

// gatherFaultSlack mirrors cmd/localsim: headroom beyond the clean
// horizon for nodes transiently down at their halting round.
const gatherFaultSlack = 256

// computeRun resolves the host (or the synthesized n-node default:
// the directed cycle for cole-vishkin, the port-numbered cycle
// otherwise), arms the engine with the request context, and runs the
// named workload clean or under the fault profile.
func computeRun(ctx context.Context, hostDesc, algo string, seed int64, faults string, rmax int) ([]byte, error) {
	rh, err := host.Parse(hostDesc)
	if err != nil {
		return nil, err
	}
	var h *model.Host
	if rh.D != nil {
		h = &model.Host{D: rh.D, G: rh.G}
	} else {
		h = model.HostFromGraph(rh.G)
	}
	n := h.G.N()
	var sched model.Schedule
	var profDesc string
	if faults != "" {
		prof, err := model.ParseProfile(faults)
		if err != nil {
			return nil, err
		}
		sched = prof.New(h, seed)
		profDesc = prof.Desc
	}
	rng := rand.New(rand.NewSource(seed))
	resp := runResponse{Host: rh.Desc, Algo: algo, N: n, Seed: seed}
	switch algo {
	case "cole-vishkin":
		if h.D == nil || !h.D.IsRegularDigraph(1) {
			return nil, fmt.Errorf("cole-vishkin needs a consistently oriented cycle host (e.g. dcycle:<n>)")
		}
		ids := rng.Perm(8 * n)[:n]
		if sched != nil {
			res, err := algorithms.ColeVishkinMISFaultyCtx(ctx, h, ids, sched)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = res.Rounds, res.MIS.Size()
			resp.Faults = &faultResult{
				Profile: profDesc, Crashed: res.Report.NumCrashed,
				Dropped: res.Report.Dropped, Duplicated: res.Report.Duplicated,
				Reordered:  res.Report.Reordered,
				Violations: res.Violations, Uncovered: res.Uncovered,
			}
		} else {
			res, err := algorithms.ColeVishkinMISCtx(ctx, h, ids)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = res.Rounds, res.MIS.Size()
		}
	case "matching":
		if sched != nil {
			res, err := algorithms.RandomizedMatchingFaultyCtx(ctx, h, rng, sched)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = 2, res.Matching.Size()
			resp.Faults = &faultResult{
				Profile: profDesc, Crashed: res.Report.NumCrashed,
				Dropped: res.Report.Dropped, Duplicated: res.Report.Duplicated,
				Reordered: res.Report.Reordered, Conflicts: res.Conflicts,
			}
		} else {
			sol, err := algorithms.RandomizedMatchingCtx(ctx, h, rng)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = 2, sol.Size()
		}
	case "gather":
		r := 2
		if rmax >= 1 {
			r = rmax
		}
		if sched != nil {
			states, rounds, rep, err := model.RunRoundsStatesFaultyCtx(ctx, h, nil, model.GatherViews(r), r+2+gatherFaultSlack, sched)
			if err != nil {
				return nil, err
			}
			types := map[*view.Tree]bool{}
			for v, st := range states {
				if rep.CrashedNode(v) {
					continue
				}
				types[st.(*model.GatherState).Tree] = true
			}
			resp.Rounds, resp.Size = rounds, len(types)
			resp.Faults = &faultResult{
				Profile: profDesc, Crashed: rep.NumCrashed,
				Dropped: rep.Dropped, Duplicated: rep.Duplicated,
				Reordered: rep.Reordered,
			}
		} else {
			states, rounds, err := model.RunRoundsStatesCtx(ctx, h, nil, model.GatherViews(r), r+2)
			if err != nil {
				return nil, err
			}
			types := map[*view.Tree]bool{}
			for _, st := range states {
				types[st.(*model.GatherState).Tree] = true
			}
			resp.Rounds, resp.Size = rounds, len(types)
		}
	default:
		return nil, fmt.Errorf("unknown workload %q\n%s", algo, describeWorkloads())
	}
	return json.Marshal(resp)
}

// computeRunSharded is the shards= path of /v1/run: cole-vishkin and
// matching on model.ShardedEngine, generated shard-locally when the
// family has an implicit source (so descriptors past the flat int32
// capacity run in bounded resident memory) and adapted from the
// materialised host otherwise. The engine registers with the server's
// shard gauges, so /metrics shows per-shard occupancy and exchange
// volume while the run is in flight and a final snapshot after.
func (s *Server) computeRunSharded(ctx context.Context, hostDesc, algo string, seed int64, faults string, shards int) ([]byte, error) {
	desc := hostDesc
	src, err := host.ParseShard(hostDesc)
	if err != nil {
		rh, perr := host.Parse(hostDesc)
		if perr != nil {
			return nil, fmt.Errorf("%w\n(no implicit shard source either: %v)", perr, err)
		}
		var h *model.Host
		if rh.D != nil {
			h = &model.Host{D: rh.D, G: rh.G}
		} else {
			h = model.HostFromGraph(rh.G)
		}
		src, desc = model.SourceOf(h), rh.Desc
	}
	var sched model.Schedule
	var profDesc string
	if faults != "" {
		prof, err := model.ParseProfile(faults)
		if err != nil {
			return nil, err
		}
		mh, err := model.MaterializeSource(src)
		if err != nil {
			return nil, fmt.Errorf("faults with shards need a materialisable host (schedules hash global coordinates from a flat host): %w", err)
		}
		sched = prof.New(mh, seed)
		profDesc = prof.Desc
	}
	se, err := model.NewShardedEngine(src, shards)
	if err != nil {
		return nil, err
	}
	se.WithContext(ctx)
	s.shard.track(se, desc)
	completed := false
	defer func() { s.shard.finish(se, desc, completed) }()
	n := src.N()
	resp := runResponse{Host: desc, Algo: algo, N: int(n), Seed: seed}
	switch algo {
	case "cole-vishkin":
		idf := model.SeededIDs(n, seed)
		if sched != nil {
			res, err := algorithms.ColeVishkinMISShardedFaulty(se, idf, int(n-1), sched)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = res.Rounds, int(res.MISSize)
			resp.Faults = &faultResult{
				Profile: profDesc, Crashed: res.Report.NumCrashed,
				Dropped: res.Report.Dropped, Duplicated: res.Report.Duplicated,
				Reordered:  res.Report.Reordered,
				Violations: int(res.Violations), Uncovered: int(res.Uncovered),
			}
		} else {
			res, err := algorithms.ColeVishkinMISSharded(se, idf, int(n-1))
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = res.Rounds, int(res.MISSize)
		}
	case "matching":
		rng := rand.New(rand.NewSource(seed))
		if sched != nil {
			res, err := algorithms.RandomizedMatchingShardedFaulty(se, rng, sched)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = 2, int(res.Matched)
			resp.Faults = &faultResult{
				Profile: profDesc, Crashed: res.Report.NumCrashed,
				Dropped: res.Report.Dropped, Duplicated: res.Report.Duplicated,
				Reordered: res.Report.Reordered, Conflicts: int(res.Conflicts),
			}
		} else {
			res, err := algorithms.RandomizedMatchingSharded(se, rng)
			if err != nil {
				return nil, err
			}
			resp.Rounds, resp.Size = 2, int(res.Matched)
		}
	default:
		return nil, fmt.Errorf("shards supports the cole-vishkin and matching workloads only")
	}
	completed = true
	var arcs, words int64
	for _, st := range se.Stats() {
		arcs += st.ExchangeOut
		words += st.Exchanged
	}
	resp.Sharded = &shardedResult{P: shards, CrossArcs: arcs, ExchangedWords: words}
	return json.Marshal(resp)
}
