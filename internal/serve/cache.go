package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/intern"
)

// The result cache is content-addressed on the canonical request
// tuple — (operation, host descriptor, rank, radius, algo, seed,
// fault profile) serialised with 0x1f separators — and built on
// internal/intern's copy-on-write shards: a cache hit is one FNV-64a
// hash, one lock-free shard probe and one no-alloc string comparison,
// which is what makes the end-to-end hit path 0 allocs/op
// (BenchmarkServeCachedRequest pins this). Every workload the server
// runs is deterministic in that tuple, so a cached body never goes
// stale; entries are therefore immortal, and capacity is enforced by
// ceasing to admit new entries once the cap is reached (extractions
// stay correct, repeats just recompute) rather than by eviction.
//
// Errors are NEVER cached — the shards are append-only, and a
// transient failure (deadline, shed, panic) must not poison the tuple
// forever — so the in-flight singleflight table below is a separate
// mutex-guarded map, not a shard resident.

// cacheShards spreads write locking; hits never lock at all.
const cacheShards = 64

// keySep separates tuple fields in the canonical cache key. 0x1f (US,
// unit separator) cannot appear in a descriptor, so the serialisation
// is injective.
const keySep = 0x1f

type cacheEntry struct {
	key  string
	body []byte
}

// flight is one in-flight computation: the leader fills body/err and
// closes done; waiters with the same key block on done and share the
// outcome, success or failure (shared fate: if the leader's run is
// cancelled or panics, every collapsed waiter sees that error).
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

type cache struct {
	shards  [cacheShards]intern.Shard[*cacheEntry]
	cap     int64
	entries atomic.Int64

	mu       sync.Mutex
	inflight map[string]*flight
}

func newCache(capacity int) *cache {
	return &cache{cap: int64(capacity), inflight: map[string]*flight{}}
}

// fnv64a of the key bytes.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func hashKey(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// get probes the cache for the key (still in its scratch buffer: the
// comparison converts without allocating). nil means miss.
func (c *cache) get(h uint64, key []byte) []byte {
	for _, e := range c.shards[h%cacheShards].Run(h) {
		if e.Val.key == string(key) {
			return e.Val.body
		}
	}
	return nil
}

// put registers a successful response body under the key, unless the
// entry cap is reached (then the body is simply not cached) or
// another leader won the race.
func (c *cache) put(h uint64, key string, body []byte) {
	if c.entries.Load() >= c.cap {
		return
	}
	sh := &c.shards[h%cacheShards]
	sh.Lock()
	defer sh.Unlock()
	for _, e := range sh.Run(h) {
		if e.Val.key == key {
			return
		}
	}
	sh.Publish(h, &cacheEntry{key: key, body: body})
	c.entries.Add(1)
}

// join enters the singleflight for key: the first caller becomes the
// leader (second result true) and must call finish exactly once;
// later callers get the leader's flight to wait on.
func (c *cache) join(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.inflight[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	return fl, true
}

// finish publishes the leader's outcome to every waiter and retires
// the flight. New requests arriving after this point start a fresh
// flight (or hit the cache, if the outcome was a success that put).
func (c *cache) finish(key string, fl *flight, body []byte, err error) {
	fl.body, fl.err = body, err
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
}
