package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed is the admission controller's fast-fail: the worker budget
// is saturated and the bounded queue is full, so the request is
// refused (429 with Retry-After) instead of piling up an unbounded
// goroutine backlog.
var errShed = errors.New("serve: worker budget saturated and admission queue full")

// admission is the bounded-concurrency gate in front of every
// computation: at most `workers` requests compute at once (each
// computation additionally draws engine workers from par's global
// budget, which Reserve bounds process-wide), and at most `queue`
// more may wait for a slot. Beyond that, acquire fails immediately
// with errShed — saturation degrades to fast 429s, never to memory
// growth. The zero of both bounds is normalised by newAdmission.
type admission struct {
	sem    chan struct{}
	queued atomic.Int64
	queue  int64
}

func newAdmission(workers, queue int) *admission {
	return &admission{sem: make(chan struct{}, workers), queue: int64(queue)}
}

// acquire claims a worker slot: immediately when one is free,
// after a bounded wait when the queue has room, errShed when it does
// not, and ctx.Err() when the caller's deadline dies while queued —
// a queued request that blows its deadline frees its queue slot
// without ever computing.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.queue {
		a.queued.Add(-1)
		return errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release hands the worker slot back.
func (a *admission) release() { <-a.sem }

// busy gauges currently held worker slots.
func (a *admission) busy() int { return len(a.sem) }

// depth gauges the current queue occupancy.
func (a *admission) depth() int64 { return a.queued.Load() }
