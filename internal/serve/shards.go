package serve

import (
	"sync"

	"repro/internal/model"
)

// shardGauges is the /metrics observability of sharded runs (DESIGN.md
// §12): engines currently running register themselves so per-shard
// occupancy and exchange volume are readable mid-run, and completed
// runs fold their exchange totals into the counters and leave a final
// per-shard snapshot behind.
type shardGauges struct {
	mu   sync.Mutex
	runs int64
	// exchanged accumulates cross-shard words delivered over all
	// completed sharded runs.
	exchanged int64
	live      map[*model.ShardedEngine]string
	last      map[string]any
}

// track registers a running sharded engine under its host descriptor.
func (g *shardGauges) track(se *model.ShardedEngine, host string) {
	g.mu.Lock()
	if g.live == nil {
		g.live = map[*model.ShardedEngine]string{}
	}
	g.live[se] = host
	g.mu.Unlock()
}

// finish deregisters the engine; a completed run also folds its
// exchange volume into the totals and becomes the last-run snapshot.
func (g *shardGauges) finish(se *model.ShardedEngine, host string, completed bool) {
	g.mu.Lock()
	delete(g.live, se)
	if completed {
		st := se.Stats()
		for _, sh := range st {
			g.exchanged += sh.Exchanged
		}
		g.runs++
		g.last = shardBlock(host, st)
	}
	g.mu.Unlock()
}

// render snapshots the gauges for /metrics. Live engines are sampled
// in place — ShardStats counters are safe to read during a run.
func (g *shardGauges) render() map[string]any {
	g.mu.Lock()
	defer g.mu.Unlock()
	live := []map[string]any{}
	for se, host := range g.live {
		live = append(live, shardBlock(host, se.Stats()))
	}
	return map[string]any{
		"runs":                  g.runs,
		"exchanged_words_total": g.exchanged,
		"live":                  live,
		"last_run":              g.last,
	}
}

// shardBlock renders one engine's per-shard occupancy and exchange
// counters plus their totals.
func shardBlock(host string, st []model.ShardStats) map[string]any {
	per := make([]map[string]int64, len(st))
	var arcs, words int64
	for i, sh := range st {
		per[i] = map[string]int64{
			"shard":        int64(sh.Shard),
			"lo":           sh.Lo,
			"hi":           sh.Hi,
			"slots":        sh.Slots,
			"exchange_out": sh.ExchangeOut,
			"active":       sh.Active,
			"exchanged":    sh.Exchanged,
		}
		arcs += sh.ExchangeOut
		words += sh.Exchanged
	}
	return map[string]any{
		"host":            host,
		"shards":          int64(len(st)),
		"cross_arcs":      arcs,
		"exchanged_words": words,
		"per_shard":       per,
	}
}
