package serve

import (
	"net/url"
	"strings"
)

// queryParams is the manually parsed query string of a request. The
// fields are substrings of RawQuery (no map, no slice-of-pairs), so
// parsing allocates nothing on the cache-hit fast path; a value is
// unescaped — which allocates — only when it actually contains a
// %-escape or '+', which canonical descriptors never do.
type queryParams struct {
	host     string
	algo     string
	faults   string
	n        string
	seed     string
	rmax     string
	shards   string
	deadline string
	// unknown is the first unrecognised parameter name, for the strict
	// 400 (the descriptor grammars fail loudly on unused arguments;
	// the query grammar does too).
	unknown string
}

func parseQuery(raw string) queryParams {
	var q queryParams
	for len(raw) > 0 {
		var kv string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			kv, raw = raw[:i], raw[i+1:]
		} else {
			kv, raw = raw, ""
		}
		if kv == "" {
			continue
		}
		k, v := kv, ""
		if i := strings.IndexByte(kv, '='); i >= 0 {
			k, v = kv[:i], kv[i+1:]
		}
		v = unescape(v)
		switch k {
		case "host":
			q.host = v
		case "algo":
			q.algo = v
		case "faults":
			q.faults = v
		case "n":
			q.n = v
		case "seed":
			q.seed = v
		case "rmax":
			q.rmax = v
		case "shards":
			q.shards = v
		case "deadline_ms":
			q.deadline = v
		default:
			if q.unknown == "" {
				q.unknown = k
			}
		}
	}
	return q
}

// unescape decodes %-escapes and '+' only when present; the common
// case returns the input substring unchanged.
func unescape(s string) string {
	if strings.IndexByte(s, '%') < 0 && strings.IndexByte(s, '+') < 0 {
		return s
	}
	u, err := url.QueryUnescape(s)
	if err != nil {
		return s
	}
	return u
}

// atoiQ parses a non-negative decimal without allocating; ok is false
// on empty, non-digit or overflowing input.
func atoiQ(s string) (int, bool) {
	if s == "" || len(s) > 10 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// atoi64Q is atoiQ for seeds: 64-bit, optional leading '-'.
func atoi64Q(s string) (int64, bool) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	if s == "" || len(s) > 18 {
		return 0, false
	}
	var n int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}
