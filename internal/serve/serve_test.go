package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/par"
)

// do drives one request through the full handler stack (no network).
func do(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, target, nil))
	return rr
}

// poll spins until cond holds or the deadline dies.
func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealthReadyAndDrainFlag(t *testing.T) {
	s := New(Config{})
	if rr := do(t, s, "/healthz"); rr.Code != 200 || rr.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rr.Code, rr.Body.String())
	}
	if rr := do(t, s, "/readyz"); rr.Code != 200 {
		t.Fatalf("readyz before drain: %d", rr.Code)
	}
	s.BeginDrain()
	if rr := do(t, s, "/readyz"); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: want 503, got %d", rr.Code)
	}
	if rr := do(t, s, "/healthz"); rr.Code != 200 {
		t.Fatalf("healthz while draining: want 200, got %d", rr.Code)
	}
}

func TestRegistryEndpoints(t *testing.T) {
	s := New(Config{})
	for _, tc := range []struct{ path, want string }{
		{"/v1/hosts", "dcycle"},
		{"/v1/profiles", "lossy"},
		{"/v1/workloads", "cole-vishkin"},
		{"/metrics", "requests"},
	} {
		rr := do(t, s, tc.path)
		if rr.Code != 200 {
			t.Fatalf("%s: status %d", tc.path, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", tc.path, ct)
		}
		if !json.Valid(rr.Body.Bytes()) {
			t.Fatalf("%s: body is not valid JSON: %s", tc.path, rr.Body.String())
		}
		if !strings.Contains(rr.Body.String(), tc.want) {
			t.Fatalf("%s: body missing %q: %s", tc.path, tc.want, rr.Body.String())
		}
	}
	if rr := do(t, s, "/nope"); rr.Code != 404 || !strings.Contains(rr.Body.String(), "endpoints:") {
		t.Fatalf("404 should list endpoints: %d %s", rr.Code, rr.Body.String())
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: want 405, got %d", rr.Code)
	}
}

func TestMeasureCacheHit(t *testing.T) {
	s := New(Config{})
	rr := do(t, s, "/v1/measure?host=cycle:24&rmax=2")
	if rr.Code != 200 {
		t.Fatalf("measure: %d %s", rr.Code, rr.Body.String())
	}
	if xc := rr.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("first request: X-Cache %q, want miss", xc)
	}
	var resp measureResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Host != "cycle:24" || resp.N != 24 || len(resp.Radii) != 2 {
		t.Fatalf("bad body: %+v", resp)
	}
	// Identity rank on the cycle: all but the wrap-around nodes share
	// one order type (22 of 24 at radius 1).
	if resp.Radii[0].Majority != 22 || resp.Radii[0].Types != 3 {
		t.Fatalf("cycle homogeneity: %+v", resp.Radii[0])
	}
	rr2 := do(t, s, "/v1/measure?host=cycle:24&rmax=2")
	if rr2.Code != 200 || rr2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: %d X-Cache %q", rr2.Code, rr2.Header().Get("X-Cache"))
	}
	if rr2.Body.String() != rr.Body.String() {
		t.Fatal("cached body differs from computed body")
	}
	if hits, misses := s.met.hits.Load(), s.met.misses.Load(); hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestRunWorkloads(t *testing.T) {
	s := New(Config{})
	for _, tc := range []struct {
		target string
		check  func(r runResponse) error
	}{
		{"/v1/run?algo=matching&n=12", func(r runResponse) error {
			if r.Host != "cycle:12" || r.Rounds != 2 || r.Size < 1 || r.Faults != nil {
				return fmt.Errorf("matching: %+v", r)
			}
			return nil
		}},
		{"/v1/run?algo=cole-vishkin&n=12&seed=7", func(r runResponse) error {
			if r.Host != "dcycle:12" || r.Size < 4 || r.Faults != nil {
				return fmt.Errorf("cole-vishkin: %+v", r)
			}
			return nil
		}},
		{"/v1/run?algo=gather&host=petersen&rmax=2", func(r runResponse) error {
			// Distinct IDs make every radius-2 view distinct: 10 types.
			if r.N != 10 || r.Size != 10 || r.Rounds != 3 {
				return fmt.Errorf("gather: %+v", r)
			}
			return nil
		}},
		{"/v1/run?algo=matching&host=cycle:16&faults=lossy:p=0.5&seed=3", func(r runResponse) error {
			if r.Faults == nil || r.Faults.Profile != "lossy:p=0.5" {
				return fmt.Errorf("faulty matching: %+v", r)
			}
			return nil
		}},
		{"/v1/run?algo=cole-vishkin&host=dcycle:32&faults=crash:f=2,by=1&seed=5", func(r runResponse) error {
			if r.Faults == nil || r.Faults.Crashed != 2 || r.Faults.Violations != 0 {
				return fmt.Errorf("faulty cole-vishkin: %+v", r)
			}
			return nil
		}},
	} {
		rr := do(t, s, tc.target)
		if rr.Code != 200 {
			t.Fatalf("%s: %d %s", tc.target, rr.Code, rr.Body.String())
		}
		var r runResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &r); err != nil {
			t.Fatalf("%s: decode: %v", tc.target, err)
		}
		if err := tc.check(r); err != nil {
			t.Fatalf("%s: %v", tc.target, err)
		}
	}
}

// The n= and host= spellings of the same workload share one cache
// entry: the key is built from the canonical synthesized descriptor.
func TestRunKeyCanonicalization(t *testing.T) {
	s := New(Config{})
	if rr := do(t, s, "/v1/run?algo=matching&n=12"); rr.Code != 200 || rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("seed request: %d %q", rr.Code, rr.Header().Get("X-Cache"))
	}
	rr := do(t, s, "/v1/run?algo=matching&host=cycle:12")
	if rr.Code != 200 || rr.Header().Get("X-Cache") != "hit" {
		t.Fatalf("host= spelling should hit the n= entry: %d X-Cache %q", rr.Code, rr.Header().Get("X-Cache"))
	}
	if rr := do(t, s, "/v1/run?algo=matching&n=12&seed=2"); rr.Header().Get("X-Cache") != "miss" {
		t.Fatal("different seed must not share a cache entry")
	}
}

// Strict validation: every malformed request gets a 400 carrying the
// relevant grammar listing, before any computation is admitted.
func TestStrict400s(t *testing.T) {
	s := New(Config{})
	for _, tc := range []struct{ target, want string }{
		{"/v1/measure?host=cycle:12&rmax=2&bogus=1", "unknown parameter"},
		{"/v1/measure?rmax=2", "host families"},
		{"/v1/measure?host=cycle:12&rmax=99", "1..8"},
		{"/v1/measure?host=cycle:12&rmax=0", "1..8"},
		{"/v1/measure?host=nosuch:3&rmax=1", "host families"},
		{"/v1/measure?host=cycle:12&rmax=1&deadline_ms=-5", "deadline_ms"},
		{"/v1/run?algo=nosuch&n=12", "workloads:"},
		{"/v1/run?algo=matching", "exactly one of"},
		{"/v1/run?algo=matching&n=12&host=cycle:12", "exactly one of"},
		{"/v1/run?algo=matching&n=2", "n \"2\" out of range"},
		{"/v1/run?algo=matching&n=12&rmax=2", "only applies to the gather"},
		{"/v1/run?algo=matching&n=12&seed=zzz", "seed"},
		{"/v1/run?algo=matching&n=12&faults=nosuch:p=1", "fault profiles"},
		{"/v1/run?algo=cole-vishkin&host=petersen", "dcycle"},
	} {
		rr := do(t, s, tc.target)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d (%s)", tc.target, rr.Code, rr.Body.String())
			continue
		}
		if !strings.Contains(rr.Body.String(), tc.want) {
			t.Errorf("%s: body missing %q:\n%s", tc.target, tc.want, rr.Body.String())
		}
	}
	if s.met.badRequests.Load() == 0 {
		t.Fatal("bad_requests counter never incremented")
	}
}

// Drill (b): a panicking computation becomes a stamped 500, the
// process keeps serving, and the failure is never cached — the next
// identical request recomputes and succeeds.
func TestPanicIsolationAndErrorNotCached(t *testing.T) {
	s := New(Config{})
	s.testHook = func(key string) {
		if strings.Contains(key, "petersen") {
			panic("injected workload panic")
		}
	}
	rr := do(t, s, "/v1/measure?host=petersen&rmax=1")
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: want 500, got %d (%s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "injected workload panic") {
		t.Fatalf("500 body not stamped with the panic: %s", rr.Body.String())
	}
	if s.met.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", s.met.panics.Load())
	}
	// The server keeps serving after the panic.
	if rr := do(t, s, "/v1/measure?host=cycle:12&rmax=1"); rr.Code != 200 {
		t.Fatalf("request after panic: %d %s", rr.Code, rr.Body.String())
	}
	// The panic outcome was not cached: disarm the hook and retry.
	s.testHook = nil
	rr = do(t, s, "/v1/measure?host=petersen&rmax=1")
	if rr.Code != 200 || rr.Header().Get("X-Cache") != "miss" {
		t.Fatalf("retry after panic: %d X-Cache %q", rr.Code, rr.Header().Get("X-Cache"))
	}
	if rr := do(t, s, "/v1/measure?host=petersen&rmax=1"); rr.Header().Get("X-Cache") != "hit" {
		t.Fatal("successful retry should now be cached")
	}
	// A handler-layer panic (outside par.Catch) is also contained.
	s.met.panics.Store(0)
	s.testHook = nil
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("handler panic escaped ServeHTTP: %v", rec)
			}
		}()
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/run?algo=matching&n=12", nil))
		_ = rr
	}()
}

// Drill (c): a short-deadline request on a 10^6-node host returns 504
// via cooperative cancellation, and the worker budget drains back to
// zero — the engine does not keep grinding after the response.
func TestDeadlineCancelsLargeSweep(t *testing.T) {
	s := New(Config{})
	rr := do(t, s, "/v1/measure?host=torus:1000x1000&rmax=4&deadline_ms=1")
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d (%s)", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "deadline exceeded") {
		t.Fatalf("504 body: %s", rr.Body.String())
	}
	if s.met.timeouts.Load() == 0 {
		t.Fatal("timeouts counter never incremented")
	}
	poll(t, "worker budget to drain", func() bool {
		return par.InUse() == 0 && s.adm.busy() == 0
	})
}

// Drill (d): concurrent identical requests collapse onto a single
// computation — one miss, N-1 collapsed waiters sharing the body —
// and repeats are O(1) cache hits.
func TestSingleflightCollapse(t *testing.T) {
	const N = 8
	s := New(Config{})
	gate := make(chan struct{})
	s.testHook = func(key string) { <-gate }
	type result struct {
		code int
		xc   string
		body string
	}
	results := make(chan result, N)
	for i := 0; i < N; i++ {
		go func() {
			rr := do(t, s, "/v1/measure?host=grid:9x9&rmax=2")
			results <- result{rr.Code, rr.Header().Get("X-Cache"), rr.Body.String()}
		}()
	}
	// Wait until the leader holds a worker slot and the other N-1 have
	// collapsed onto its flight, then release the computation.
	poll(t, "leader to start and waiters to collapse", func() bool {
		return s.met.inflight.Load() == 1 && s.met.collapsed.Load() == N-1
	})
	close(gate)
	var first string
	for i := 0; i < N; i++ {
		r := <-results
		if r.code != 200 {
			t.Fatalf("collapsed request failed: %d %s", r.code, r.body)
		}
		if first == "" {
			first = r.body
		} else if r.body != first {
			t.Fatal("collapsed requests returned different bodies")
		}
		_ = r.xc
	}
	if m, c := s.met.misses.Load(), s.met.collapsed.Load(); m != 1 || c != N-1 {
		t.Fatalf("misses=%d collapsed=%d, want 1/%d", m, c, N-1)
	}
	if rr := do(t, s, "/v1/measure?host=grid:9x9&rmax=2"); rr.Header().Get("X-Cache") != "hit" {
		t.Fatal("repeat after collapse should be a cache hit")
	}
}

// Drill (e): saturating the admission queue sheds with 429 +
// Retry-After instead of queuing unboundedly, and a request whose
// deadline dies while queued frees its slot without computing.
func TestAdmissionShedAndQueueDeadline(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1})
	gate := make(chan struct{})
	s.testHook = func(key string) { <-gate }
	codes := make(chan int, 2)
	go func() { codes <- do(t, s, "/v1/measure?host=cycle:12&rmax=1").Code }()
	poll(t, "first request to hold the worker", func() bool { return s.met.inflight.Load() == 1 })
	// Second request (distinct key, so no singleflight) fills the queue
	// and then dies there: its 30ms deadline fires before a slot frees.
	go func() { codes <- do(t, s, "/v1/measure?host=cycle:13&rmax=1&deadline_ms=30").Code }()
	poll(t, "second request to queue", func() bool { return s.adm.depth() == 1 })
	// Third request: worker busy, queue full -> immediate shed.
	rr := do(t, s, "/v1/measure?host=cycle:14&rmax=1")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated: want 429, got %d (%s)", rr.Code, rr.Body.String())
	}
	// Retry-After is computed from live queue depth (1 queued here, so
	// at least 2 seconds); assert it is a positive integer.
	if ra, err := strconv.Atoi(rr.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 wants a positive integer Retry-After: %v", rr.Header())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("429 body should be JSON, got Content-Type %q", ct)
	}
	var shedBody struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_s"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &shedBody); err != nil || shedBody.Error == "" || shedBody.RetryAfter < 1 {
		t.Fatalf("429 body = %q, want JSON {error, retry_after_s}", rr.Body.String())
	}
	if s.met.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.met.shed.Load())
	}
	// The queued request times out with 504 and vacates the queue.
	if code := <-codes; code != http.StatusGatewayTimeout {
		t.Fatalf("queued request: want 504, got %d", code)
	}
	poll(t, "queue to drain", func() bool { return s.adm.depth() == 0 })
	close(gate)
	if code := <-codes; code != 200 {
		t.Fatalf("blocked request after release: want 200, got %d", code)
	}
	poll(t, "worker to free", func() bool { return s.adm.busy() == 0 })
}

// Drill (a): graceful shutdown over a real listener — BeginDrain
// flips readiness, http.Server.Shutdown drains the in-flight request
// to a 200, and Shutdown returns nil well inside the drain deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{})
	gate := make(chan struct{})
	s.testHook = func(key string) { <-gate }
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	get := func(path string) (*http.Response, error) { return http.Get(base + path) }
	resp, err := get("/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz over the wire: %v %v", err, resp)
	}
	resp.Body.Close()

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := get("/v1/measure?host=cycle:40&rmax=1")
		if err != nil {
			inflightDone <- -1
			return
		}
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	poll(t, "in-flight request to start computing", func() bool { return s.met.inflight.Load() == 1 })

	s.BeginDrain()
	resp, err = get("/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %v %v", err, resp)
	}
	resp.Body.Close()

	shutDone := make(chan error, 1)
	go func() { shutDone <- hs.Shutdown(t.Context()) }()
	time.Sleep(10 * time.Millisecond) // let Shutdown begin waiting on the open conn
	close(gate)
	if code := <-inflightDone; code != 200 {
		t.Fatalf("in-flight request during drain: want 200, got %d", code)
	}
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
}
