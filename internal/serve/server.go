// Package serve is the hardened HTTP/JSON service layer of the repo:
// a long-running localapproxd process exposing the host-descriptor
// grammar over HTTP — measure homogeneity, run engine workloads clean
// or under fault profiles, enumerate the registries — built to
// degrade gracefully rather than fall over:
//
//   - admission control: a bounded worker budget (on top of par's
//     process-wide reservation budget) with a bounded wait queue;
//     saturation fast-fails with 429 + Retry-After instead of
//     unbounded goroutines, and every admitted slot is released on
//     every exit path (success, error, panic, cancellation).
//   - per-request deadlines: a context derived from the request
//     deadline reaches the engine round loop and the sweep loop
//     (cooperative cancellation), so a 10^6-node request that blows
//     its budget returns 504 and frees its workers mid-run.
//   - panic isolation: a recovering handler wrapper plus par.Catch
//     around every computation convert a poisoned request into a
//     stamped 500 while the process keeps serving.
//   - content-addressed result cache: responses are keyed on the
//     canonical descriptor tuple and stored in copy-on-write intern
//     shards; a repeat request is one hash, one lock-free probe and
//     zero allocations, and concurrent identical requests collapse
//     onto one computation (singleflight, shared fate). Errors are
//     never cached.
//   - observability and lifecycle: /healthz, /readyz (503 once
//     draining), /metrics (counters, cache stats, worker-budget
//     occupancy), and a drain hook for SIGTERM graceful shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/host"
	"repro/internal/job"
	"repro/internal/model"
	"repro/internal/par"
)

// Config sizes the server. Zero values take the defaults noted.
type Config struct {
	// Workers bounds concurrently computing requests (default 2; each
	// computation additionally draws engine workers from par's global
	// budget, so total goroutines stay bounded).
	Workers int
	// Queue bounds requests waiting for a worker slot (default 8);
	// beyond it, requests shed with 429.
	Queue int
	// DefaultDeadline applies when a request carries no deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps deadline_ms from above (default 2m).
	MaxDeadline time.Duration
	// CacheEntries caps the result cache (default 4096 entries); at
	// the cap the cache stops admitting, it never evicts.
	CacheEntries int
	// MaxRmax caps sweep/gather radii (default 8, as the CLIs cap).
	MaxRmax int
	// Logger, when non-nil, logs one structured line per request
	// (request id, method, path, status, duration). Nil keeps the
	// cache-hit path allocation-free; production passes a slog.Logger
	// with the flag-selected handler.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.MaxRmax <= 0 {
		c.MaxRmax = 8
	}
	return c
}

// Server implements http.Handler. Create with New; safe for
// concurrent use by any number of connections.
type Server struct {
	cfg      Config
	adm      *admission
	cache    *cache
	met      metrics
	shard    shardGauges
	log      *slog.Logger
	jobs     *job.Manager
	reqID    atomic.Int64
	draining atomic.Bool

	// testHook, when set, runs inside every admitted computation
	// (after the worker slot is held, before the workload). Tests use
	// it to block computations and to inject panics.
	testHook func(key string)
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Workers, cfg.Queue),
		cache: newCache(cfg.CacheEntries),
		log:   cfg.Logger,
	}
}

// AttachJobs enables the durable jobs API (/v1/jobs), backed by m.
// The manager's lifecycle (Open, Drain) belongs to the caller.
func (s *Server) AttachJobs(m *job.Manager) { s.jobs = m }

// BeginDrain flips the server to draining: /readyz answers 503 so
// load balancers stop routing here, while in-flight and already-
// accepted requests complete normally. The caller pairs it with
// http.Server.Shutdown for the actual connection drain.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shared header value slices: assigning an existing slice into the
// header map allocates nothing, which keeps the cache-hit path at
// zero allocs (Header().Set would allocate a fresh 1-element slice
// per call).
var (
	hdrJSON = []string{"application/json"}
	hdrText = []string{"text/plain; charset=utf-8"}
	hdrHit  = []string{"hit"}
	hdrMiss = []string{"miss"}
)

// keyPool recycles cache-key scratch buffers across requests.
var keyPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// loggingWriter captures the response status for the request log. It
// is only allocated when a Logger is configured, so the logger-less
// cache-hit path stays at zero allocations.
type loggingWriter struct {
	http.ResponseWriter
	status int
}

func (lw *loggingWriter) WriteHeader(code int) {
	lw.status = code
	lw.ResponseWriter.WriteHeader(code)
}

// ServeHTTP is the outermost handler: request counting, latency
// accounting (aggregate + per-endpoint histogram), optional
// structured request logging, and the recovering wrapper that
// converts a handler panic into a stamped 500 with the process still
// serving (workload panics are already converted to errors by
// par.Catch deeper down; this layer catches everything else).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	start := time.Now()
	ep := endpointIndex(r.URL.Path)
	var lw *loggingWriter
	var rid int64
	if s.log != nil {
		rid = s.reqID.Add(1)
		lw = &loggingWriter{ResponseWriter: w, status: http.StatusOK}
		w = lw
	}
	defer func() {
		micros := time.Since(start).Microseconds()
		s.met.latencyMicros.Add(micros)
		s.met.latencyCount.Add(1)
		s.met.endpoints[ep].observe(micros)
		if rec := recover(); rec != nil {
			s.met.panics.Add(1)
			w.Header()["Content-Type"] = hdrText
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintf(w, "internal error: panic: %v\n", rec)
		}
		if lw != nil {
			s.log.Info("request",
				"rid", rid, "method", r.Method, "path", r.URL.Path,
				"status", lw.status, "micros", micros)
		}
	}()
	s.route(w, r)
}

// endpoints is the 404 listing (and the README of the service).
const endpoints = `endpoints:
  GET    /healthz                          liveness
  GET    /readyz                           readiness (503 once draining)
  GET    /metrics                          counters, cache stats, latency histograms, job gauge (JSON)
  GET    /v1/hosts                         host-family registry (JSON)
  GET    /v1/profiles                      fault-profile grammar (JSON)
  GET    /v1/workloads                     run-endpoint workload registry (JSON)
  GET    /v1/measure?host=D&rmax=R         layered homogeneity sweep [deadline_ms=N]
  GET    /v1/run?algo=A&host=D|n=N         engine workload [seed=S] [faults=P] [rmax=R] [shards=K] [deadline_ms=N]
  POST   /v1/jobs                          submit a durable job (JSON spec body)
  GET    /v1/jobs                          list jobs + state gauge
  GET    /v1/jobs/{id}                     job status and progress
  GET    /v1/jobs/{id}/result              result bytes of a done job
  DELETE /v1/jobs/{id}                     cancel a job
`

// route dispatches by literal path — no ServeMux, no per-request
// pattern allocation, so routing costs nothing on the hit path. The
// jobs subtree carries its own method handling (POST/DELETE); every
// other endpoint is GET/HEAD only.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if p := r.URL.Path; len(p) >= len("/v1/jobs") && p[:len("/v1/jobs")] == "/v1/jobs" {
		s.routeJobs(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.met.badRequests.Add(1)
		http.Error(w, "method not allowed (GET only)", http.StatusMethodNotAllowed)
		return
	}
	switch r.URL.Path {
	case "/healthz":
		w.Header()["Content-Type"] = hdrText
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	case "/readyz":
		w.Header()["Content-Type"] = hdrText
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	case "/metrics":
		s.handleMetrics(w)
	case "/v1/hosts":
		s.handleHosts(w)
	case "/v1/profiles":
		s.writeJSONValue(w, map[string]string{"grammar": model.DescribeProfiles()})
	case "/v1/workloads":
		s.writeJSONValue(w, workloads)
	case "/v1/measure":
		s.handleMeasure(w, r)
	case "/v1/run":
		s.handleRun(w, r)
	default:
		http.Error(w, "unknown endpoint "+r.URL.Path+"\n"+endpoints, http.StatusNotFound)
	}
}

// handleMetrics renders the counter block plus sampled gauges,
// per-endpoint latency histograms, and (when jobs are attached) the
// job-state gauge.
func (s *Server) handleMetrics(w http.ResponseWriter) {
	m := &s.met
	hists := make(map[string]any, numEndpoints)
	for i := range m.endpoints {
		if m.endpoints[i].count.Load() > 0 {
			hists[endpointNames[i]] = m.endpoints[i].render()
		}
	}
	var jobsBlock map[string]any
	if s.jobs != nil {
		jobsBlock = map[string]any{
			"states":      s.jobs.StateCounts(),
			"queue_depth": s.jobs.QueueDepth(),
			"workers":     s.jobs.Workers(),
		}
	}
	s.writeJSONValue(w, map[string]any{
		"latency_by_endpoint": hists,
		"jobs":                jobsBlock,
		"requests":            m.requests.Load(),
		"shed":                m.shed.Load(),
		"timeouts":            m.timeouts.Load(),
		"panics":              m.panics.Load(),
		"bad_requests":        m.badRequests.Load(),
		"cache": map[string]int64{
			"hits":      m.hits.Load(),
			"misses":    m.misses.Load(),
			"collapsed": m.collapsed.Load(),
			"entries":   s.cache.entries.Load(),
		},
		"workers": map[string]int64{
			"limit":      int64(s.cfg.Workers),
			"busy":       int64(s.adm.busy()),
			"queued":     s.adm.depth(),
			"inflight":   m.inflight.Load(),
			"par_in_use": int64(par.InUse()),
			"par_knob":   int64(par.N()),
		},
		"latency": map[string]int64{
			"count":        m.latencyCount.Load(),
			"total_micros": m.latencyMicros.Load(),
		},
		"sharded":  s.shard.render(),
		"draining": s.draining.Load(),
	})
}

// handleHosts renders the host-family registry.
func (s *Server) handleHosts(w http.ResponseWriter) {
	type fam struct{ Name, Syntax, Doc string }
	fams := host.Families()
	out := make([]fam, len(fams))
	for i, f := range fams {
		out[i] = fam{f.Name, f.Syntax, f.Doc}
	}
	s.writeJSONValue(w, out)
}

// handleMeasure serves /v1/measure: validate, probe the cache, and
// only on a miss parse the host and run the cancellable sweep.
func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	q := parseQuery(r.URL.RawQuery)
	if q.unknown != "" || q.algo != "" || q.n != "" || q.seed != "" || q.faults != "" || q.shards != "" {
		bad := q.unknown
		if bad == "" {
			bad = "algo/n/seed/faults/shards"
		}
		s.badRequest(w, "unknown parameter %q (measure takes host, rmax, deadline_ms)", bad)
		return
	}
	if q.host == "" {
		s.badRequest(w, "missing host descriptor\n%s", host.Describe())
		return
	}
	rmax, ok := atoiQ(q.rmax)
	if !ok || rmax < 1 || rmax > s.cfg.MaxRmax {
		s.badRequest(w, "rmax %q out of range (valid radii: 1..%d)", q.rmax, s.cfg.MaxRmax)
		return
	}
	deadline, ok := s.parseDeadline(q.deadline)
	if !ok {
		s.badRequest(w, "deadline_ms %q is not a positive integer", q.deadline)
		return
	}
	// Canonical tuple: op, host, rank, radius, algo, seed, profile.
	bp := keyPool.Get().(*[]byte)
	b := append((*bp)[:0], "measure"...)
	b = append(b, keySep)
	b = append(b, q.host...)
	b = append(b, keySep)
	b = append(b, "identity"...)
	b = append(b, keySep)
	b = strconv.AppendInt(b, int64(rmax), 10)
	b = append(b, keySep, keySep, keySep)
	h := hashKey(b)
	if body := s.cache.get(h, b); body != nil {
		*bp = b
		keyPool.Put(bp)
		s.met.hits.Add(1)
		s.writeBody(w, body, hdrHit)
		return
	}
	key := string(b)
	*bp = b
	keyPool.Put(bp)
	hostDesc := q.host
	s.compute(w, r, h, key, deadline, func(ctx context.Context) ([]byte, error) {
		return computeMeasure(ctx, hostDesc, rmax)
	})
}

// handleRun serves /v1/run. The host is either an explicit
// descriptor or synthesized from n= (the directed cycle for
// cole-vishkin — its natural host — and the port-numbered cycle
// otherwise), matching cmd/localsim's scale mode.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	q := parseQuery(r.URL.RawQuery)
	if q.unknown != "" {
		s.badRequest(w, "unknown parameter %q (run takes algo, host, n, seed, faults, rmax, deadline_ms)", q.unknown)
		return
	}
	if !knownWorkload(q.algo) {
		s.badRequest(w, "unknown workload %q\n%s", q.algo, describeWorkloads())
		return
	}
	if (q.host == "") == (q.n == "") {
		s.badRequest(w, "pass exactly one of host= (a registry descriptor) or n= (a synthesized cycle host)\n%s", host.Describe())
		return
	}
	n := 0
	if q.n != "" {
		var ok bool
		n, ok = atoiQ(q.n)
		if !ok || n < 3 {
			s.badRequest(w, "n %q out of range (need an integer >= 3)", q.n)
			return
		}
	}
	seed := int64(1)
	if q.seed != "" {
		var ok bool
		seed, ok = atoi64Q(q.seed)
		if !ok {
			s.badRequest(w, "seed %q is not an integer", q.seed)
			return
		}
	}
	rmax := 0
	if q.rmax != "" {
		if q.algo != "gather" {
			s.badRequest(w, "rmax only applies to the gather workload")
			return
		}
		var ok bool
		rmax, ok = atoiQ(q.rmax)
		if !ok || rmax < 1 || rmax > s.cfg.MaxRmax {
			s.badRequest(w, "rmax %q out of range (valid radii: 1..%d)", q.rmax, s.cfg.MaxRmax)
			return
		}
	}
	shards := 0
	if q.shards != "" {
		if q.algo != "cole-vishkin" && q.algo != "matching" {
			s.badRequest(w, "shards supports the cole-vishkin and matching workloads only")
			return
		}
		var ok bool
		shards, ok = atoiQ(q.shards)
		if !ok || shards < 1 {
			s.badRequest(w, "shards %q out of range (need an integer >= 1)", q.shards)
			return
		}
	}
	deadline, ok := s.parseDeadline(q.deadline)
	if !ok {
		s.badRequest(w, "deadline_ms %q is not a positive integer", q.deadline)
		return
	}
	// Canonical tuple: op, host, rank(-), radius, algo, seed, profile.
	// The synthesized descriptor is appended digit-wise, so the n= and
	// host= spellings of the same host share one cache entry.
	bp := keyPool.Get().(*[]byte)
	b := append((*bp)[:0], "run"...)
	b = append(b, keySep)
	if q.host != "" {
		b = append(b, q.host...)
	} else if q.algo == "cole-vishkin" {
		b = append(b, "dcycle:"...)
		b = strconv.AppendInt(b, int64(n), 10)
	} else {
		b = append(b, "cycle:"...)
		b = strconv.AppendInt(b, int64(n), 10)
	}
	hostEnd := len(b)
	b = append(b, keySep, keySep)
	b = strconv.AppendInt(b, int64(rmax), 10)
	b = append(b, keySep)
	b = append(b, q.algo...)
	b = append(b, keySep)
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, keySep)
	b = append(b, q.faults...)
	if shards > 0 {
		// Sharded responses carry a shards block, so they key
		// separately from the flat spelling of the same tuple.
		b = append(b, keySep)
		b = strconv.AppendInt(b, int64(shards), 10)
	}
	h := hashKey(b)
	if body := s.cache.get(h, b); body != nil {
		*bp = b
		keyPool.Put(bp)
		s.met.hits.Add(1)
		s.writeBody(w, body, hdrHit)
		return
	}
	key := string(b)
	hostDesc := key[len("run")+1 : hostEnd]
	*bp = b
	keyPool.Put(bp)
	algo, faults := q.algo, q.faults
	s.compute(w, r, h, key, deadline, func(ctx context.Context) ([]byte, error) {
		if shards > 0 {
			return s.computeRunSharded(ctx, hostDesc, algo, seed, faults, shards)
		}
		return computeRun(ctx, hostDesc, algo, seed, faults, rmax)
	})
}

// parseDeadline resolves deadline_ms against the config: empty takes
// the default, anything else must be a positive integer, and the
// result is clamped to MaxDeadline.
func (s *Server) parseDeadline(raw string) (time.Duration, bool) {
	if raw == "" {
		return s.cfg.DefaultDeadline, true
	}
	ms, ok := atoiQ(raw)
	if !ok || ms < 1 {
		return 0, false
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, true
}

// compute is the miss path shared by the cacheable endpoints:
// singleflight join, admission, deadline arming, panic conversion,
// cache publication, and the response status mapping. The worker
// slot and the singleflight entry are released on every exit path.
func (s *Server) compute(w http.ResponseWriter, r *http.Request, h uint64, key string, deadline time.Duration, fn func(ctx context.Context) ([]byte, error)) {
	fl, leader := s.cache.join(key)
	if !leader {
		// Collapse onto the identical in-flight computation and share
		// its fate — but never outlive this request's own context.
		s.met.collapsed.Add(1)
		select {
		case <-fl.done:
			s.respond(w, fl.body, fl.err)
		case <-r.Context().Done():
			s.met.timeouts.Add(1)
			http.Error(w, "request cancelled while awaiting an identical in-flight computation", http.StatusGatewayTimeout)
		}
		return
	}
	s.met.misses.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	var body []byte
	var err error
	if aerr := s.adm.acquire(ctx); aerr != nil {
		err = aerr
	} else {
		s.met.inflight.Add(1)
		cerr := par.Catch(func() {
			if s.testHook != nil {
				s.testHook(key)
			}
			body, err = fn(ctx)
		})
		s.met.inflight.Add(-1)
		s.adm.release()
		if cerr != nil {
			body, err = nil, cerr
		}
	}
	if err == nil {
		s.cache.put(h, key, body)
	}
	s.cache.finish(key, fl, body, err)
	s.respond(w, body, err)
}

// respond maps a computation outcome onto the wire: 200 on success,
// 429 + Retry-After when shed, 504 on a dead deadline, 500 with the
// stamped panic, 400 (with the self-repairing grammar listing the
// error carries) for everything else.
func (s *Server) respond(w http.ResponseWriter, body []byte, err error) {
	if err == nil {
		s.writeBody(w, body, hdrMiss)
		return
	}
	var pe *par.PanicError
	switch {
	case errors.Is(err, errShed):
		// Retry-After reflects the actual backlog: one second per
		// queued request ahead, floor 1 — an honest hint instead of a
		// constant.
		s.met.shed.Add(1)
		s.shedJSON(w, err.Error(), 1+int(s.adm.depth()))
	case errors.As(err, &pe):
		s.met.panics.Add(1)
		http.Error(w, "computation panicked: "+pe.Error(), http.StatusInternalServerError)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.met.timeouts.Add(1)
		http.Error(w, "deadline exceeded: "+err.Error(), http.StatusGatewayTimeout)
	default:
		s.met.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// writeBody writes a JSON body with the cache-state header; on the
// hit path every header value is a shared slice, so the whole
// response costs zero allocations.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, cacheState []string) {
	hdr := w.Header()
	hdr["Content-Type"] = hdrJSON
	hdr["X-Cache"] = cacheState
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// shedJSON answers 429 with a machine-readable JSON body and a
// backlog-derived Retry-After header (shared by the run/measure
// admission gate and the jobs queue).
func (s *Server) shedJSON(w http.ResponseWriter, msg string, retryAfter int) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	hdr := w.Header()
	hdr["Retry-After"] = []string{strconv.Itoa(retryAfter)}
	hdr["Content-Type"] = hdrJSON
	w.WriteHeader(http.StatusTooManyRequests)
	body, _ := json.Marshal(map[string]any{"error": msg, "retry_after_s": retryAfter})
	w.Write(body)
}

// badRequest answers 400 with a formatted message (and bumps the
// counter).
func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.met.badRequests.Add(1)
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}

// writeJSONValue marshals v (registry and metrics endpoints; not on
// the hit path, allocation is fine here).
func (s *Server) writeJSONValue(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header()["Content-Type"] = hdrJSON
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
