package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSharded: the shards= path of /v1/run answers with the sharded
// block, caches like any other run, degrades under fault profiles, and
// validates its parameters strictly.
func TestRunSharded(t *testing.T) {
	s := New(Config{})
	rr := do(t, s, "/v1/run?algo=cole-vishkin&n=64&seed=7&shards=4")
	if rr.Code != 200 {
		t.Fatalf("sharded run: %d %s", rr.Code, rr.Body.String())
	}
	var r runResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Host != "dcycle:64" || r.Size < 16 || r.Sharded == nil {
		t.Fatalf("sharded cole-vishkin: %+v", r)
	}
	if r.Sharded.P != 4 || r.Sharded.CrossArcs != 8 || r.Sharded.ExchangedWords < 1 {
		t.Fatalf("sharded block: %+v", r.Sharded)
	}
	// A repeat is a cache hit; the flat spelling of the same tuple is
	// a separate entry (different ids, different body shape).
	if rr2 := do(t, s, "/v1/run?algo=cole-vishkin&n=64&seed=7&shards=4"); rr2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat sharded run: X-Cache %q", rr2.Header().Get("X-Cache"))
	}
	if rr3 := do(t, s, "/v1/run?algo=cole-vishkin&n=64&seed=7"); rr3.Header().Get("X-Cache") != "miss" {
		t.Fatalf("flat spelling aliased the sharded entry")
	}

	// Faulty sharded matching: fault block and sharded block together.
	rr = do(t, s, "/v1/run?algo=matching&host=torus:4x4&seed=3&faults=lossy:p=0.4&shards=2")
	if rr.Code != 200 {
		t.Fatalf("faulty sharded run: %d %s", rr.Code, rr.Body.String())
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Faults == nil || r.Faults.Profile != "lossy:p=0.4" || r.Sharded == nil || r.Sharded.P != 2 {
		t.Fatalf("faulty sharded matching: %+v (sharded %+v)", r, r.Sharded)
	}

	// Strict validation.
	for _, target := range []string{
		"/v1/run?algo=gather&host=petersen&shards=2", // unsupported workload
		"/v1/run?algo=matching&n=12&shards=0",        // out of range
		"/v1/run?algo=matching&n=12&shards=x",        // not an integer
	} {
		if rr := do(t, s, target); rr.Code != 400 {
			t.Fatalf("%s: want 400, got %d %s", target, rr.Code, rr.Body.String())
		}
	}
	if rr := do(t, s, "/v1/measure?host=cycle:24&rmax=2&shards=2"); rr.Code != 400 {
		t.Fatalf("measure with shards: want 400, got %d", rr.Code)
	}
}

// TestMetricsShardedBlock: /metrics serves the per-shard occupancy and
// exchange-volume gauges after a sharded run.
func TestMetricsShardedBlock(t *testing.T) {
	s := New(Config{})
	if rr := do(t, s, "/v1/run?algo=matching&n=40&seed=2&shards=4"); rr.Code != 200 {
		t.Fatalf("sharded run: %d %s", rr.Code, rr.Body.String())
	}
	rr := do(t, s, "/metrics")
	if rr.Code != 200 {
		t.Fatalf("metrics: %d", rr.Code)
	}
	var m struct {
		Sharded struct {
			Runs           int64            `json:"runs"`
			ExchangedTotal int64            `json:"exchanged_words_total"`
			Live           []map[string]any `json:"live"`
			LastRun        struct {
				Host     string `json:"host"`
				Shards   int64  `json:"shards"`
				PerShard []struct {
					Shard       int64 `json:"shard"`
					Lo          int64 `json:"lo"`
					Hi          int64 `json:"hi"`
					Slots       int64 `json:"slots"`
					ExchangeOut int64 `json:"exchange_out"`
					Exchanged   int64 `json:"exchanged"`
				} `json:"per_shard"`
			} `json:"last_run"`
		} `json:"sharded"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &m); err != nil {
		t.Fatalf("decode metrics: %v\n%s", err, rr.Body.String())
	}
	sh := m.Sharded
	if sh.Runs != 1 || sh.ExchangedTotal < 1 || len(sh.Live) != 0 {
		t.Fatalf("sharded gauges: %+v", sh)
	}
	if sh.LastRun.Host != "cycle:40" || sh.LastRun.Shards != 4 || len(sh.LastRun.PerShard) != 4 {
		t.Fatalf("last run: %+v", sh.LastRun)
	}
	var lo int64
	for i, ps := range sh.LastRun.PerShard {
		if ps.Shard != int64(i) || ps.Lo != lo || ps.Hi <= ps.Lo || ps.Slots < 1 {
			t.Fatalf("per-shard %d: %+v", i, ps)
		}
		lo = ps.Hi
	}
	if lo != 40 {
		t.Fatalf("shard ranges cover %d nodes, want 40", lo)
	}
	if !strings.Contains(rr.Body.String(), "exchange_out") {
		t.Fatal("metrics body missing exchange_out")
	}
}
