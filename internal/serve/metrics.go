package serve

import (
	"sync/atomic"
)

// metrics is the server's counter block: plain atomics bumped on the
// request path (no locks, no allocation — the cache-hit fast path
// stays at zero allocs) and rendered as one JSON document by the
// /metrics endpoint. Gauges that the server does not own — worker-
// budget occupancy, admission queue depth — are sampled at render
// time instead of being tracked here.
type metrics struct {
	// requests counts every request routed, whatever its outcome.
	requests atomic.Int64
	// shed counts admissions refused with 429 (queue full).
	shed atomic.Int64
	// timeouts counts requests answered 504 (deadline or client
	// cancellation, mid-run or while queued/awaiting a flight).
	timeouts atomic.Int64
	// panics counts computations converted from a panic to a 500.
	panics atomic.Int64
	// badRequests counts 400s (grammar and validation failures).
	badRequests atomic.Int64
	// hits/misses/collapsed split cacheable requests: served from the
	// cache, computed fresh (singleflight leaders), and collapsed onto
	// an identical in-flight computation (waiters).
	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	// inflight gauges computations currently holding a worker slot.
	inflight atomic.Int64
	// latencyMicros/latencyCount accumulate request wall time.
	latencyMicros atomic.Int64
	latencyCount  atomic.Int64
}
