package serve

import (
	"strconv"
	"sync/atomic"
)

// metrics is the server's counter block: plain atomics bumped on the
// request path (no locks, no allocation — the cache-hit fast path
// stays at zero allocs) and rendered as one JSON document by the
// /metrics endpoint. Gauges that the server does not own — worker-
// budget occupancy, admission queue depth, job states — are sampled
// at render time instead of being tracked here.
type metrics struct {
	// requests counts every request routed, whatever its outcome.
	requests atomic.Int64
	// shed counts admissions refused with 429 (queue full).
	shed atomic.Int64
	// timeouts counts requests answered 504 (deadline or client
	// cancellation, mid-run or while queued/awaiting a flight).
	timeouts atomic.Int64
	// panics counts computations converted from a panic to a 500.
	panics atomic.Int64
	// badRequests counts 400s (grammar and validation failures).
	badRequests atomic.Int64
	// hits/misses/collapsed split cacheable requests: served from the
	// cache, computed fresh (singleflight leaders), and collapsed onto
	// an identical in-flight computation (waiters).
	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	// inflight gauges computations currently holding a worker slot.
	inflight atomic.Int64
	// latencyMicros/latencyCount accumulate request wall time.
	latencyMicros atomic.Int64
	latencyCount  atomic.Int64
	// endpoints holds one latency histogram per endpoint.
	endpoints [numEndpoints]histogram
}

// Endpoint indices for the per-endpoint latency histograms; epOther
// absorbs 404s and unknown paths.
const (
	epHealthz = iota
	epReadyz
	epMetrics
	epHosts
	epProfiles
	epWorkloads
	epMeasure
	epRun
	epJobs
	epOther
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"/healthz", "/readyz", "/metrics", "/v1/hosts", "/v1/profiles",
	"/v1/workloads", "/v1/measure", "/v1/run", "/v1/jobs", "other",
}

// endpointIndex classifies a request path. Literal switch plus one
// prefix check — no allocation on the hot path.
func endpointIndex(path string) int {
	switch path {
	case "/healthz":
		return epHealthz
	case "/readyz":
		return epReadyz
	case "/metrics":
		return epMetrics
	case "/v1/hosts":
		return epHosts
	case "/v1/profiles":
		return epProfiles
	case "/v1/workloads":
		return epWorkloads
	case "/v1/measure":
		return epMeasure
	case "/v1/run":
		return epRun
	}
	if len(path) >= len("/v1/jobs") && path[:len("/v1/jobs")] == "/v1/jobs" {
		return epJobs
	}
	return epOther
}

// latencyBucketsMicros are the fixed histogram bucket upper bounds
// (microseconds); the last implicit bucket is +Inf. Spanning 50µs to
// 5s covers everything from a cache hit to a deadline-bounded run.
var latencyBucketsMicros = [...]int64{
	50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
}

// histogram is a fixed-bucket latency histogram: atomics only, so
// observe is wait-free and allocation-free on the request path.
type histogram struct {
	buckets [len(latencyBucketsMicros) + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func (h *histogram) observe(micros int64) {
	i := 0
	for i < len(latencyBucketsMicros) && micros > latencyBucketsMicros[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(micros)
}

// render emits the histogram as cumulative {le: count} pairs plus
// count and sum — the conventional shape scrapers expect. Buckets
// are keyed by their upper bound in microseconds ("+Inf" last).
func (h *histogram) render() map[string]any {
	cum := int64(0)
	buckets := make(map[string]int64, len(h.buckets))
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(latencyBucketsMicros) {
			le = strconv.FormatInt(latencyBucketsMicros[i], 10)
		}
		buckets[le] = cum
	}
	return map[string]any{
		"count":        h.count.Load(),
		"total_micros": h.sum.Load(),
		"buckets_le":   buckets,
	}
}
