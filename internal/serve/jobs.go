package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/job"
)

// The jobs API: asynchronous, durable counterparts of the synchronous
// compute endpoints. Unlike the cacheable GET endpoints (which keep
// their terse text error bodies), everything under /v1/jobs speaks
// JSON both ways — machine-submitted, machine-polled.
//
//	POST   /v1/jobs             submit (spec JSON body) → 202 + status
//	GET    /v1/jobs             list + state gauge
//	GET    /v1/jobs/{id}        status and progress
//	GET    /v1/jobs/{id}/result result bytes (409 until done)
//	DELETE /v1/jobs/{id}        cancel

// maxJobBody bounds a job submission body.
const maxJobBody = 1 << 20

// routeJobs dispatches the /v1/jobs subtree.
func (s *Server) routeJobs(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		s.jobError(w, http.StatusNotFound, "jobs are not enabled on this server (start localapproxd with -jobs)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs")
	rest = strings.TrimPrefix(rest, "/")
	if rest == "" {
		switch r.Method {
		case http.MethodPost:
			s.handleJobSubmit(w, r)
		case http.MethodGet, http.MethodHead:
			s.handleJobList(w)
		default:
			s.jobError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/jobs (POST to submit, GET to list)", r.Method)
		}
		return
	}
	id, sub, _ := strings.Cut(rest, "/")
	switch {
	case sub == "" && (r.Method == http.MethodGet || r.Method == http.MethodHead):
		s.handleJobStatus(w, id)
	case sub == "" && r.Method == http.MethodDelete:
		s.handleJobCancel(w, id)
	case sub == "result" && (r.Method == http.MethodGet || r.Method == http.MethodHead):
		s.handleJobResult(w, id)
	case sub == "result":
		s.jobError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/jobs/{id}/result (GET only)", r.Method)
	case sub != "":
		s.jobError(w, http.StatusNotFound, "unknown jobs endpoint %q", r.URL.Path)
	default:
		s.jobError(w, http.StatusMethodNotAllowed, "method %s not allowed on /v1/jobs/{id} (GET for status, DELETE to cancel)", r.Method)
	}
}

// handleJobSubmit decodes the spec and registers the job. Submission
// is idempotent (content-addressed ids), so a retried POST is safe.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
	dec.DisallowUnknownFields()
	var spec job.Spec
	if err := dec.Decode(&spec); err != nil {
		s.met.badRequests.Add(1)
		s.jobError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	st, err := s.jobs.Submit(spec)
	switch {
	case err == nil:
		s.writeJobJSON(w, http.StatusAccepted, st)
	case errors.Is(err, job.ErrSaturated):
		s.met.shed.Add(1)
		s.shedJSON(w, err.Error(), 1+s.jobs.QueueDepth()/s.jobs.Workers())
	case errors.Is(err, job.ErrDraining):
		s.jobError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.met.badRequests.Add(1)
		s.jobError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleJobList renders every job plus the state gauge.
func (s *Server) handleJobList(w http.ResponseWriter) {
	s.writeJobJSON(w, http.StatusOK, map[string]any{
		"jobs":        s.jobs.List(),
		"states":      s.jobs.StateCounts(),
		"queue_depth": s.jobs.QueueDepth(),
	})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, id string) {
	st, ok := s.jobs.Get(id)
	if !ok {
		s.jobError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.writeJobJSON(w, http.StatusOK, st)
}

// handleJobResult serves the stored result bytes verbatim (they are
// already canonical JSON, byte-deterministic in the spec).
func (s *Server) handleJobResult(w http.ResponseWriter, id string) {
	body, err := s.jobs.Result(id)
	switch {
	case err == nil:
		w.Header()["Content-Type"] = hdrJSON
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case errors.Is(err, job.ErrNotFound):
		s.jobError(w, http.StatusNotFound, "no job %q", id)
	case errors.Is(err, job.ErrNotDone):
		s.jobError(w, http.StatusConflict, "%v", err)
	default:
		s.jobError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, id string) {
	st, err := s.jobs.Cancel(id)
	if errors.Is(err, job.ErrNotFound) {
		s.jobError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	s.writeJobJSON(w, http.StatusOK, st)
}

// jobError answers with the jobs API's JSON error shape.
func (s *Server) jobError(w http.ResponseWriter, code int, format string, args ...any) {
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Header()["Content-Type"] = hdrJSON
	w.WriteHeader(code)
	w.Write(body)
}

func (s *Server) writeJobJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.jobError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header()["Content-Type"] = hdrJSON
	w.WriteHeader(code)
	w.Write(body)
}
