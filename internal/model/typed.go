package model

import (
	"encoding/binary"
	"fmt"

	"repro/internal/view"
)

// This file is the typed columnar path of the round engine: states
// live in a contiguous []S column owned by the TypedEngine (no
// interface boxing, no per-node pointer chase) and message payloads
// travel in the Engine's fixed-width uint64 word lane, parallel to the
// any-payload arenas and sharing their slots, stamps, routing,
// letter-sort order, worklist and fault hashing. Msg.Data remains the
// supported slow path for unbounded payloads (GatherViews); the typed
// gather below shows how a pointer-shaped payload rides the word lane
// anyway, as a column handle.

// WordMsg is one inbox entry of the typed message plane: the payload
// word plus the receiver-local incident-slot index of the arrival arc
// (the position of the arc in the receiver's letter-sorted slot row —
// the typed analogue of Msg.L; the letter itself is info.Letters[Slot]
// under the typed Init contract). 16 bytes, pointer-free: compacting a
// typed inbox is a flat copy the garbage collector never scans.
type WordMsg struct {
	// W is the payload word.
	W uint64
	// Slot is the receiver-local incident-slot index (letter order).
	Slot int32
}

// TypedAlgo is the typed engine-native form of a round algorithm.
// Contract deltas from EngineAlgo, all in service of the columnar
// layout:
//
//   - Init receives the node index v (so columnar algorithms can index
//     pre-drawn per-node tables directly) and info.Letters in the
//     letter-sorted slot order of the message plane — local slot i is
//     named by info.Letters[i], and sends address slots, not letters.
//   - Step mutates the state in place through *S and returns only the
//     halt flag. The inbox aliases per-worker scratch and is valid
//     only during the call.
//   - Sends go through Outbox.SendWord (one slot, checked like Send)
//     or Outbox.BroadcastWord (whole slot row, unchecked overwrite).
type TypedAlgo[S any] struct {
	// Init returns node v's initial state; called sequentially in
	// increasing node order, so pre-drawn randomness stays
	// deterministic exactly as on the untyped path.
	Init func(v int, info NodeInfo) S
	// Step consumes the inbox (receiver letter order) and returns
	// whether the node halts.
	Step func(state *S, round int, inbox []WordMsg, out *Outbox) bool
	// Out extracts the final output from a state.
	Out func(state *S) Output

	// Optional checkpoint codecs (snapshot.go): EncodeState appends a
	// self-delimiting encoding of a state and DecodeState consumes one
	// from the front of src, returning the remainder. Required only
	// for checkpointed or resumed runs; uint64 states (WordAlgo) fall
	// back to a fixed-width little-endian default, so every packed
	// word workload is checkpointable with no codec at all. Payloads
	// need no codec on the typed plane — they are the word lane.
	EncodeState func(dst []byte, state *S) []byte
	DecodeState func(src []byte, state *S) (rest []byte, err error)
}

// WordAlgo is the fully packed fixed-width instantiation: the whole
// node state is one uint64 (the Cole–Vishkin colour pipeline and the
// matching proposal protocol both fit), so a run touches exactly two
// contiguous uint64 columns — the state column and the word lane.
type WordAlgo = TypedAlgo[uint64]

// TypedEngine couples an Engine's message plane with a columnar state
// array. The plane is shared: one Engine may alternate typed and
// untyped runs (the monotone stamp discipline keeps them from ever
// reading each other's messages), but, exactly like the Engine
// itself, a TypedEngine must not execute two runs concurrently.
type TypedEngine[S any] struct {
	e   *Engine
	col []S
}

// WordEngine is the uint64-state instantiation of TypedEngine.
type WordEngine = TypedEngine[uint64]

// NewTypedEngine sizes a typed engine (plane plus state column) for
// the host.
func NewTypedEngine[S any](h *Host) *TypedEngine[S] { return TypedOn[S](NewEngine(h)) }

// NewWordEngine sizes a fixed-width typed engine for the host.
func NewWordEngine(h *Host) *WordEngine { return NewTypedEngine[uint64](h) }

// TypedOn attaches a columnar state array to an existing engine,
// sharing its message plane, worklists and stamps. The word lane is
// allocated on the first attachment; purely untyped engines never pay
// for it.
func TypedOn[S any](e *Engine) *TypedEngine[S] {
	e.ensureWordLane()
	return &TypedEngine[S]{e: e, col: make([]S, e.n)}
}

// Engine returns the underlying engine, e.g. to alternate typed and
// untyped runs on one warmed-up plane.
func (te *TypedEngine[S]) Engine() *Engine { return te.e }

// Run executes a typed algorithm and extracts the per-node outputs.
func (te *TypedEngine[S]) Run(ids []int, algo TypedAlgo[S], maxRounds int) ([]Output, int, error) {
	states, rounds, err := te.RunStates(ids, algo, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	outs := make([]Output, len(states))
	for v := range states {
		outs[v] = algo.Out(&states[v])
	}
	return outs, rounds, nil
}

// RunStates executes a typed algorithm and returns the final state
// column and the number of rounds, failing if some node has not
// halted after maxRounds. The column is owned by the typed engine and
// overwritten by its next run.
func (te *TypedEngine[S]) RunStates(ids []int, algo TypedAlgo[S], maxRounds int) ([]S, int, error) {
	col, rounds, _, err := te.runStates(ids, algo, maxRounds, nil)
	return col, rounds, err
}

// RunStatesFaulty is RunStates under a fault schedule, with exactly
// the semantics of Engine.RunStatesFaulty: fates are drawn per
// (round, slot) from the same hashes, so a typed run degrades
// identically to the untyped run of the same algorithm.
func (te *TypedEngine[S]) RunStatesFaulty(ids []int, algo TypedAlgo[S], maxRounds int, sched Schedule) ([]S, int, *FaultReport, error) {
	col, rounds, rep, err := te.runStates(ids, algo, maxRounds, sched)
	if err != nil {
		return nil, 0, nil, err
	}
	if rep == nil {
		rep = &FaultReport{Profile: "clean"}
	}
	return col, rounds, rep, nil
}

// runStates initialises the state column and dispatches the typed
// clean or faulty step path into the shared round-loop core.
func (te *TypedEngine[S]) runStates(ids []int, algo TypedAlgo[S], maxRounds int, sched Schedule) ([]S, int, *FaultReport, error) {
	e := te.e
	if ids != nil && len(ids) != e.n {
		return nil, 0, nil, fmt.Errorf("model: RunRounds: %d ids for %d nodes", len(ids), e.n)
	}
	for v := 0; v < e.n; v++ {
		// Typed NodeInfo letters are the letter-sorted slot row itself
		// (shared, read-only): local slot i is info.Letters[i].
		info := NodeInfo{ID: -1, Letters: e.letters[e.off[v]:e.off[v+1]:e.off[v+1]]}
		if ids != nil {
			info.ID = ids[v]
		}
		te.col[v] = algo.Init(v, info)
		e.halted[v] = false
		e.errs[v] = nil
	}
	if e.ck != nil {
		enc, err := te.encStates(algo)
		if err != nil {
			return nil, 0, nil, err
		}
		e.ckTyped = true
		e.ckEncStates = enc
		e.ckEncData = nil
	}
	if snap := e.resume; snap != nil {
		e.resume = nil
		if err := te.restoreTyped(snap, algo, sched != nil); err != nil {
			e.failedResume(snap)
			return nil, 0, nil, err
		}
	}
	step := te.stepTyped(algo)
	prep := func(ob *Outbox) { ob.wdense = make([]WordMsg, e.maxSlots) }
	if sched != nil {
		step = te.stepTypedFaulty(algo, sched)
		prep = func(ob *Outbox) { ob.fwdense = make([]WordMsg, 2*int(e.maxSlots)) }
	}
	rounds, rep, err := e.runCore(step, prep, sched, maxRounds)
	if err != nil {
		return nil, 0, nil, err
	}
	return te.col, rounds, rep, nil
}

// encStates builds the state-column encoder for a checkpointed typed
// run: the algorithm's EncodeState per node, or the fixed-width
// little-endian default when the column is []uint64 (WordAlgo).
func (te *TypedEngine[S]) encStates(algo TypedAlgo[S]) (func(dst []byte) []byte, error) {
	if algo.EncodeState != nil {
		return func(dst []byte) []byte {
			for v := range te.col {
				dst = algo.EncodeState(dst, &te.col[v])
			}
			return dst
		}, nil
	}
	wcol, ok := any(te.col).([]uint64)
	if !ok {
		return nil, fmt.Errorf("model: checkpointing armed but typed algorithm has no EncodeState codec")
	}
	return func(dst []byte) []byte {
		for _, w := range wcol {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		return dst
	}, nil
}

// restoreTyped restores a typed run from snap: the shared plane state,
// the state column through the algorithm's codec (or the uint64
// default), and the pending word-lane payloads.
func (te *TypedEngine[S]) restoreTyped(snap *Snapshot, algo TypedAlgo[S], faulty bool) error {
	e := te.e
	if algo.DecodeState == nil {
		if _, ok := any(te.col).([]uint64); !ok {
			return fmt.Errorf("model: resume: typed algorithm has no DecodeState codec")
		}
	}
	if err := e.restoreCommon(snap, true, faulty); err != nil {
		return err
	}
	if algo.DecodeState != nil {
		src := snap.States
		for v := 0; v < e.n; v++ {
			rest, err := algo.DecodeState(src, &te.col[v])
			if err != nil {
				return fmt.Errorf("model: resume: state of node %d: %w", v, err)
			}
			src = rest
		}
		if len(src) != 0 {
			return fmt.Errorf("model: resume: %d trailing state bytes", len(src))
		}
	} else {
		wcol := any(te.col).([]uint64)
		if len(snap.States) != 8*e.n {
			return fmt.Errorf("model: resume: state column is %d bytes (want %d)", len(snap.States), 8*e.n)
		}
		for v := range wcol {
			wcol[v] = binary.LittleEndian.Uint64(snap.States[8*v:])
		}
	}
	if len(snap.Words) != len(snap.Pending) {
		return fmt.Errorf("model: resume: %d payload words for %d pending slots", len(snap.Words), len(snap.Pending))
	}
	arena := snap.Round & 1
	for i, s := range snap.Pending {
		e.wbuf[arena][s] = snap.Words[i]
	}
	return nil
}

// stepTyped is the clean typed step: compact the node's live word
// slots into the worker's scratch (tagged with their local slot
// indices), then Step against the state column in place.
func (te *TypedEngine[S]) stepTyped(algo TypedAlgo[S]) func(int, *Outbox) {
	e := te.e
	return func(v int, ob *Outbox) {
		lo, hi := e.off[v], e.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := e.stamp[cur]
		wb := e.wbuf[cur]
		wd := ob.wdense
		k := 0
		for s := lo; s < hi; s++ {
			if st[s] == want {
				wd[k] = WordMsg{W: wb[s], Slot: s - lo}
				k++
			}
		}
		ob.v = int32(v)
		e.halted[v] = algo.Step(&te.col[v], ob.round, wd[:k], ob)
	}
}

// stepTypedFaulty is stepTyped with the fault schedule interposed:
// liveness gating and per-(round, slot) fates are drawn from exactly
// the hashes the untyped faulty path draws, so typed and untyped runs
// of one algorithm under one schedule see the same delivered,
// duplicated and reordered messages.
func (te *TypedEngine[S]) stepTypedFaulty(algo TypedAlgo[S], sched Schedule) func(int, *Outbox) {
	e := te.e
	return func(v int, ob *Outbox) {
		round := ob.round
		switch sched.State(round, int32(v)) {
		case StateDown:
			ob.downSteps++
			return
		case StateCrashed:
			return
		}
		lo, hi := e.off[v], e.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := e.stamp[cur]
		wb := e.wbuf[cur]
		fd := ob.fwdense
		k := 0
		for s := lo; s < hi; s++ {
			if st[s] != want {
				continue
			}
			switch sched.Fate(round, s) {
			case Drop:
				ob.dropped++
				continue
			case Duplicate:
				ob.duped++
				fd[k] = WordMsg{W: wb[s], Slot: s - lo}
				k++
			}
			fd[k] = WordMsg{W: wb[s], Slot: s - lo}
			k++
		}
		inbox := fd[:k]
		if seed := sched.Reorder(round, int32(v)); seed != 0 && len(inbox) > 1 {
			shuffleWordMsgs(inbox, seed)
			ob.reordered++
		}
		ob.v = int32(v)
		e.halted[v] = algo.Step(&te.col[v], round, inbox, ob)
	}
}

// RunRoundsTyped executes a typed round algorithm on the host — the
// typed twin of RunRounds. Pass ids for the ID model, nil for
// anonymous execution.
func RunRoundsTyped[S any](h *Host, ids []int, algo TypedAlgo[S], maxRounds int) ([]Output, int, error) {
	return NewTypedEngine[S](h).Run(ids, algo, maxRounds)
}

// RunRoundsStatesTyped is RunRoundsTyped exposing the final state
// column instead of outputs.
func RunRoundsStatesTyped[S any](h *Host, ids []int, algo TypedAlgo[S], maxRounds int) ([]S, int, error) {
	return NewTypedEngine[S](h).RunStates(ids, algo, maxRounds)
}

// RunRoundsTypedFaulty is RunRoundsTyped under a fault schedule — the
// typed twin of RunRoundsFaulty (nil schedule runs clean; crashed
// nodes' outputs are extracted from the last state they reached).
func RunRoundsTypedFaulty[S any](h *Host, ids []int, algo TypedAlgo[S], maxRounds int, sched Schedule) ([]Output, int, *FaultReport, error) {
	col, rounds, rep, err := NewTypedEngine[S](h).RunStatesFaulty(ids, algo, maxRounds, sched)
	if err != nil {
		return nil, 0, nil, err
	}
	outs := make([]Output, len(col))
	for v := range col {
		outs[v] = algo.Out(&col[v])
	}
	return outs, rounds, rep, nil
}

// RunRoundsStatesTypedFaulty is RunRoundsTypedFaulty exposing the
// final state column instead of outputs.
func RunRoundsStatesTypedFaulty[S any](h *Host, ids []int, algo TypedAlgo[S], maxRounds int, sched Schedule) ([]S, int, *FaultReport, error) {
	return NewTypedEngine[S](h).RunStatesFaulty(ids, algo, maxRounds, sched)
}

// gatherTypedState is the per-node state of the typed gather: the
// node's column index and its letter-sorted slot letters. The view
// trees themselves live in the run's tree columns (see
// gatherViewsTyped), not in the state.
type gatherTypedState struct {
	v       int32
	letters []view.Letter
}

// gatherViewsTyped is GatherViews on the typed plane, demonstrating
// how a pointer-shaped payload rides the fixed-width word lane: the
// lane carries column handles — each message word is the sender's
// node index — and the hash-consed trees live in two round-parity
// columns (the round-r assembly reads trees[r&1], which round r-1's
// senders wrote, and publishes into trees[(r+1)&1]; distinct parities
// keep same-round reads and writes on different arrays, so workers
// never race). final[v] tracks node v's latest assembled view for
// extraction after the run. Assembly order, duplicate-letter dedup
// and the starved-inbox stale-view rule mirror GatherViews exactly,
// which the differential tests pin down.
func gatherViewsTyped(n, r int) (TypedAlgo[gatherTypedState], []*view.Tree) {
	var trees [2][]*view.Tree
	trees[0] = make([]*view.Tree, n)
	trees[1] = make([]*view.Tree, n)
	final := make([]*view.Tree, n)
	algo := TypedAlgo[gatherTypedState]{
		Init: func(v int, info NodeInfo) gatherTypedState {
			final[v] = view.Leaf()
			return gatherTypedState{v: int32(v), letters: info.Letters}
		},
		Step: func(st *gatherTypedState, round int, inbox []WordMsg, out *Outbox) bool {
			t := final[st.v]
			if round > 0 && len(inbox) > 0 {
				cur := trees[round&1]
				children := make([]view.Child, 0, len(inbox))
				for _, m := range inbox {
					// Duplicated deliveries repeat a slot; keep the first.
					dup := false
					for _, c := range children {
						if c.L == st.letters[m.Slot] {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					l := st.letters[m.Slot]
					children = append(children, view.Child{L: l, T: pruneChild(cur[m.W], l.Inv())})
				}
				t = view.NewTree(children)
				final[st.v] = t
			}
			if round >= r {
				return true
			}
			trees[(round+1)&1][st.v] = t
			out.BroadcastWord(uint64(st.v))
			return false
		},
		Out: func(*gatherTypedState) Output { return Output{} },
	}
	return algo, final
}

// SimulatePORoundsTyped is SimulatePORounds driven through the typed
// message plane: the radius-r views are gathered by word-lane message
// passing (column handles to hash-consed trees) and the algorithm's
// view function is applied to the final views. By equation (1) the
// result coincides with RunPO, SimulatePO and SimulatePORounds.
func SimulatePORoundsTyped(h *Host, alg PO, kind Kind) (*Solution, error) {
	r := alg.Radius()
	n := h.G.N()
	algo, final := gatherViewsTyped(n, r)
	if _, _, err := NewTypedEngine[gatherTypedState](h).RunStates(nil, algo, r+2); err != nil {
		return nil, err
	}
	sol := NewSolution(kind, n)
	for v, t := range final {
		if err := applyPOOut(sol, h, v, alg.EvalPO(t)); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// SimulatePORoundsTypedFaulty is SimulatePORoundsTyped under a fault
// schedule, with the semantics of SimulatePORoundsFaulty: views are
// whatever fragments survived the schedule and crashed nodes produce
// no output. maxRounds bounds the run (pass slack beyond Radius()+2
// when the schedule can keep nodes transiently down).
func SimulatePORoundsTypedFaulty(h *Host, alg PO, kind Kind, sched Schedule, maxRounds int) (*Solution, *FaultReport, error) {
	r := alg.Radius()
	n := h.G.N()
	algo, final := gatherViewsTyped(n, r)
	_, _, rep, err := NewTypedEngine[gatherTypedState](h).RunStatesFaulty(nil, algo, maxRounds, sched)
	if err != nil {
		return nil, nil, err
	}
	sol := NewSolution(kind, n)
	for v, t := range final {
		if rep.CrashedNode(v) {
			continue
		}
		if err := applyPOOut(sol, h, v, alg.EvalPO(t)); err != nil {
			return nil, nil, err
		}
	}
	return sol, rep, nil
}
