// Package model implements the three models of distributed computing
// of Section 2 of the paper — ID (unique identifiers), OI
// (order-invariant), and PO (port numbering and orientation) — as
// executable algorithm interfaces, together with runners that execute
// an algorithm on every node of a host graph, and a synchronous
// round-based message-passing simulator whose equivalence with the
// ball/view formulation is established by tests.
//
// All three models run over the same host: an undirected graph with a
// port numbering and orientation (an L-digraph). The models differ in
// the information an algorithm may use:
//
//   - a PO algorithm sees the truncated view τ(T(G, v));
//   - an OI algorithm sees the isomorphism type of the ordered ball
//     τ(G, <, v);
//   - an ID algorithm sees the ball with numeric identifiers.
package model

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/view"
)

// Kind distinguishes vertex-subset problems from edge-subset problems.
type Kind int

const (
	// VertexKind solutions are sets of vertices (Ω = {0,1}).
	VertexKind Kind = iota + 1
	// EdgeKind solutions are sets of edges (Ω = {0,1}^Δ, one bit per
	// incident edge).
	EdgeKind
)

// Output is the local output of an algorithm at one node.
type Output struct {
	// Member is the vertex-problem membership bit.
	Member bool
	// Letters selects incident arcs by letter; used by PO algorithms
	// for edge problems.
	Letters []view.Letter
	// Neighbors selects incident edges by the canonical-ball index of
	// the opposite endpoint; used by OI and ID algorithms for edge
	// problems.
	Neighbors []int
}

// PO is a deterministic local algorithm in the port-numbering-and-
// orientation model: a function of the truncated view.
type PO interface {
	// Radius is the constant running time r.
	Radius() int
	// EvalPO maps the radius-r view at a node to its local output.
	EvalPO(t *view.Tree) Output
}

// OI is an order-invariant local algorithm: a function of the
// isomorphism type of the ordered radius-r ball. Order-invariance is
// guaranteed by construction, because the canonical ball exposes only
// relative order.
type OI interface {
	Radius() int
	// EvalOI maps the canonical ordered ball at a node to its output.
	EvalOI(b *order.Ball) Output
}

// IDBall is the radius-r ball around a node together with the numeric
// identifiers of its vertices. Vertices are in increasing-identifier
// order (so an ID algorithm that ignores the numeric values of IDs is
// exactly an OI algorithm).
type IDBall struct {
	// G is the ball subgraph; vertex i has identifier IDs[i], and
	// IDs is strictly increasing.
	G *graph.Graph
	// Root is the centre's index.
	Root int
	// IDs are the numeric identifiers.
	IDs []int
}

// ID is a local algorithm in the LOCAL model: a function of the ball
// with unique identifiers.
type ID interface {
	Radius() int
	// EvalID maps the identified radius-r ball at a node to its output.
	EvalID(b *IDBall) Output
}

// Host is a graph instance shared by the three models: an undirected
// graph with a port numbering and orientation.
type Host struct {
	// D is the L-digraph carrying the port numbering and orientation.
	D *digraph.Digraph
	// G is the underlying undirected simple graph.
	G *graph.Graph
}

// NewHost wraps a digraph and computes its underlying graph.
func NewHost(d *digraph.Digraph) (*Host, error) {
	g, err := d.Underlying()
	if err != nil {
		return nil, fmt.Errorf("model: host: %w", err)
	}
	return &Host{D: d, G: g}, nil
}

// HostFromGraph equips g with the canonical port numbering and the
// smaller-endpoint orientation.
func HostFromGraph(g *graph.Graph) *Host {
	p := digraph.FromPorts(g, nil)
	return &Host{D: p.D, G: g}
}

// Solution is a subset of vertices or edges of the host graph.
type Solution struct {
	Kind     Kind
	Vertices []bool
	Edges    map[graph.Edge]bool
}

// NewSolution returns an empty solution of the given kind for a host
// with n vertices.
func NewSolution(kind Kind, n int) *Solution {
	s := &Solution{Kind: kind}
	if kind == VertexKind {
		s.Vertices = make([]bool, n)
	} else {
		s.Edges = make(map[graph.Edge]bool)
	}
	return s
}

// Size returns the number of selected vertices or edges.
func (s *Solution) Size() int {
	if s.Kind == VertexKind {
		n := 0
		for _, b := range s.Vertices {
			if b {
				n++
			}
		}
		return n
	}
	return len(s.Edges)
}

// VertexSet returns the selected vertices in increasing order.
func (s *Solution) VertexSet() []int {
	var out []int
	for v, b := range s.Vertices {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// EdgeSet returns the selected edges in lexicographic order.
func (s *Solution) EdgeSet() []graph.Edge {
	out := make([]graph.Edge, 0, len(s.Edges))
	for e := range s.Edges {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(es []graph.Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j-1], es[j]
			if a.U < b.U || (a.U == b.U && a.V <= b.V) {
				break
			}
			es[j-1], es[j] = b, a
		}
	}
}
