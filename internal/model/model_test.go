package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/view"
)

// cycleHost returns the n-cycle with canonical ports.
func cycleHost(n int) *Host {
	return HostFromGraph(graph.Cycle(n))
}

// selectAllPO selects every incident arc of the root at radius r.
func selectAllPO(r int) PO {
	return FuncPO{R: r, Fn: func(t *view.Tree) Output {
		return Output{Member: true, Letters: t.Letters()}
	}}
}

func TestSolutionBasics(t *testing.T) {
	s := NewSolution(VertexKind, 4)
	s.Vertices[1] = true
	s.Vertices[3] = true
	if s.Size() != 2 {
		t.Errorf("size %d", s.Size())
	}
	vs := s.VertexSet()
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Errorf("vertex set %v", vs)
	}
	e := NewSolution(EdgeKind, 4)
	e.Edges[graph.NewEdge(2, 0)] = true
	e.Edges[graph.NewEdge(0, 1)] = true
	es := e.EdgeSet()
	if len(es) != 2 || es[0] != (graph.Edge{U: 0, V: 1}) || es[1] != (graph.Edge{U: 0, V: 2}) {
		t.Errorf("edge set %v", es)
	}
}

func TestHostFromGraph(t *testing.T) {
	h := cycleHost(6)
	if h.G.N() != 6 || h.D.N() != 6 || h.D.Arcs() != 6 {
		t.Fatalf("host wrong: %v %v", h.G, h.D)
	}
	if _, err := NewHost(h.D); err != nil {
		t.Errorf("NewHost: %v", err)
	}
}

func TestRunPOVertex(t *testing.T) {
	h := cycleHost(5)
	sol, err := RunPO(h, selectAllPO(1), VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != 5 {
		t.Errorf("all nodes should be members, got %d", sol.Size())
	}
}

func TestRunPOEdges(t *testing.T) {
	h := cycleHost(7)
	sol, err := RunPO(h, selectAllPO(1), EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != 7 {
		t.Errorf("selecting every letter should select every edge, got %d", sol.Size())
	}
}

func TestRunPOAbsentLetter(t *testing.T) {
	h := cycleHost(4)
	bad := FuncPO{R: 1, Fn: func(*view.Tree) Output {
		return Output{Letters: []view.Letter{{Label: 99}}}
	}}
	if _, err := RunPO(h, bad, EdgeKind); err == nil {
		t.Error("absent letter accepted")
	}
}

// localMinOI: member iff the root has the smallest order rank in its
// radius-1 ball.
var localMinOI = FuncOI{R: 1, Fn: func(b *order.Ball) Output {
	return Output{Member: b.Root == 0}
}}

func TestRunOILocalMinima(t *testing.T) {
	h := cycleHost(6)
	rank := order.Identity(6)
	sol, err := RunOI(h, rank, localMinOI, VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	// On the identity-ordered cycle only vertex 0 is a local minimum.
	if sol.Size() != 1 || !sol.Vertices[0] {
		t.Errorf("local minima = %v", sol.VertexSet())
	}
}

func TestRunOIEdgeSelection(t *testing.T) {
	// Each node selects its smallest-ranked neighbour: on the cycle the
	// union has n-1 or so edges; just validate well-formedness and
	// determinism.
	alg := FuncOI{R: 1, Fn: func(b *order.Ball) Output {
		ns := RootNeighbors(b.G, b.Root)
		if len(ns) == 0 {
			return Output{}
		}
		return Output{Neighbors: ns[:1]}
	}}
	h := cycleHost(8)
	sol, err := RunOI(h, order.Identity(8), alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() == 0 || sol.Size() > 8 {
		t.Errorf("unexpected edge count %d", sol.Size())
	}
	sol2, err := RunOI(h, order.Identity(8), alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != sol2.Size() {
		t.Error("nondeterministic")
	}
}

func TestRunOIBadNeighbor(t *testing.T) {
	bad := FuncOI{R: 1, Fn: func(b *order.Ball) Output {
		return Output{Neighbors: []int{b.Root}} // the root is not its own neighbour
	}}
	if _, err := RunOI(cycleHost(4), order.Identity(4), bad, EdgeKind); err == nil {
		t.Error("self-selection accepted")
	}
}

func TestRunID(t *testing.T) {
	h := cycleHost(5)
	ids := []int{10, 3, 77, 42, 8}
	evenID := FuncID{R: 0, Fn: func(b *IDBall) Output {
		return Output{Member: b.IDs[b.Root]%2 == 0}
	}}
	sol, err := RunID(h, ids, evenID, VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, true, true}
	for v, w := range want {
		if sol.Vertices[v] != w {
			t.Errorf("vertex %d: got %v want %v", v, sol.Vertices[v], w)
		}
	}
	if _, err := RunID(h, []int{1, 2}, evenID, VertexKind); err == nil {
		t.Error("short id list accepted")
	}
	if _, err := RunID(h, []int{1, 1, 2, 3, 4}, evenID, VertexKind); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestIDBallSeesSortedIDs(t *testing.T) {
	h := cycleHost(5)
	ids := []int{50, 10, 40, 20, 30}
	probe := FuncID{R: 1, Fn: func(b *IDBall) Output {
		for i := 1; i < len(b.IDs); i++ {
			if b.IDs[i-1] >= b.IDs[i] {
				return Output{Member: false}
			}
		}
		return Output{Member: true}
	}}
	sol, err := RunID(h, ids, probe, VertexKind)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Size() != 5 {
		t.Error("IDs should be strictly increasing in every ball")
	}
}

func TestAgreement(t *testing.T) {
	a := &LocalOutputs{Kind: VertexKind, Member: []bool{true, false, true, false}}
	b := &LocalOutputs{Kind: VertexKind, Member: []bool{true, true, true, false}}
	frac, err := Agreement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0.75 {
		t.Errorf("agreement %v, want 0.75", frac)
	}
	if _, err := Agreement(a, &LocalOutputs{Kind: EdgeKind}); err == nil {
		t.Error("kind mismatch accepted")
	}
	e1 := &LocalOutputs{Kind: EdgeKind, EdgeSel: []map[graph.Edge]bool{
		{graph.NewEdge(0, 1): true}, {},
	}}
	e2 := &LocalOutputs{Kind: EdgeKind, EdgeSel: []map[graph.Edge]bool{
		{graph.NewEdge(0, 1): true}, {graph.NewEdge(1, 2): true},
	}}
	frac, err = Agreement(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0.5 {
		t.Errorf("edge agreement %v, want 0.5", frac)
	}
}

func TestPOOutputsMatchesRunPO(t *testing.T) {
	h := cycleHost(9)
	alg := selectAllPO(1)
	lo, err := POOutputs(h, alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := RunPO(h, alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	union := make(map[graph.Edge]bool)
	for _, sel := range lo.EdgeSel {
		for e := range sel {
			union[e] = true
		}
	}
	if len(union) != sol.Size() {
		t.Errorf("per-node union %d != solution %d", len(union), sol.Size())
	}
}

// --- round simulator ---

func TestGatheredTreesMatchBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hosts := []*Host{
		cycleHost(8),
		HostFromGraph(graph.Petersen()),
		HostFromGraph(graph.RandomRegular(12, 3, rng)),
		HostFromGraph(graph.Star(4)),
	}
	for _, h := range hosts {
		for r := 0; r <= 3; r++ {
			trees, err := GatheredTrees(h, r)
			if err != nil {
				t.Fatalf("r=%d: %v", r, err)
			}
			for v := 0; v < h.G.N(); v++ {
				want := view.Build[int](h.D, v, r)
				if !view.Equal(trees[v], want) {
					t.Fatalf("r=%d node %d: gathered view differs from ball formulation", r, v)
				}
			}
		}
	}
}

// TestGatheredTreesAllLayers: every level of the one-pass layered
// gather is pointer-identical (default interner) to the single-radius
// gather at that radius.
func TestGatheredTreesAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hosts := []*Host{
		cycleHost(9),
		HostFromGraph(graph.Petersen()),
		HostFromGraph(graph.RandomRegular(12, 3, rng)),
	}
	const rmax = 3
	for _, h := range hosts {
		levels, err := GatheredTreesAll(h, rmax)
		if err != nil {
			t.Fatal(err)
		}
		if len(levels) != rmax+1 {
			t.Fatalf("%d levels, want %d", len(levels), rmax+1)
		}
		for r := 0; r <= rmax; r++ {
			single, err := GatheredTrees(h, r)
			if err != nil {
				t.Fatalf("r=%d: %v", r, err)
			}
			for v := 0; v < h.G.N(); v++ {
				if levels[r][v] != single[v] {
					t.Fatalf("r=%d node %d: layered level differs from single-radius gather", r, v)
				}
			}
		}
	}
}

func TestSimulatePOMatchesRunPO(t *testing.T) {
	h := HostFromGraph(graph.Petersen())
	alg := selectAllPO(2)
	a, err := RunPO(h, alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePO(h, alg, EdgeKind)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("solutions differ: %d vs %d", a.Size(), b.Size())
	}
	for e := range a.Edges {
		if !b.Edges[e] {
			t.Fatalf("edge %v missing from simulated run", e)
		}
	}
}

func TestRunRoundsHaltFailure(t *testing.T) {
	never := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) { return st, nil, false },
		Out:  func(any) Output { return Output{} },
	}
	if _, _, err := RunRounds(cycleHost(3), nil, never, 5); err == nil {
		t.Error("non-halting algorithm accepted")
	}
}

func TestRunRoundsIDsDelivered(t *testing.T) {
	// Each node learns its neighbours' ids in one round and reports
	// whether it is a local maximum.
	algo := RoundAlgo{
		Init: func(info NodeInfo) any {
			return map[string]any{"id": info.ID, "letters": info.Letters, "max": false}
		},
		Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) {
			s := state.(map[string]any)
			if round == 0 {
				var out []Msg
				for _, l := range s["letters"].([]view.Letter) {
					out = append(out, Msg{L: l, Data: s["id"].(int)})
				}
				return s, out, false
			}
			mx := true
			for _, m := range inbox {
				if m.Data.(int) > s["id"].(int) {
					mx = false
				}
			}
			s["max"] = mx
			return s, nil, true
		},
		Out: func(state any) Output {
			return Output{Member: state.(map[string]any)["max"].(bool)}
		},
	}
	h := cycleHost(6)
	ids := []int{5, 9, 1, 7, 3, 8}
	outs, rounds, err := RunRounds(h, ids, algo, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
	// Local maxima of 5,9,1,7,3,8 on the cycle: 9 (beats 5,1), 7
	// (beats 1,3), 8 (beats 3,5).
	want := []bool{false, true, false, true, false, true}
	for v := range want {
		if outs[v].Member != want[v] {
			t.Errorf("node %d: member=%v want %v", v, outs[v].Member, want[v])
		}
	}
}

// Property: OI algorithms are invariant under order-preserving
// relabelling of identifiers — running an OI algorithm via RunID with
// any ids inducing the same rank gives the same solution.
func TestQuickOIInvariantUnderIDs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		h := cycleHost(n)
		// ids: random strictly increasing transformation of a random permutation.
		perm := rng.Perm(n)
		ids1 := make([]int, n)
		ids2 := make([]int, n)
		for v := 0; v < n; v++ {
			ids1[v] = perm[v]*3 + 7
			ids2[v] = perm[v]*perm[v]*5 + perm[v] + 100
		}
		asID := FuncID{R: 1, Fn: func(b *IDBall) Output {
			return Output{Member: b.Root == 0} // order-invariant: uses position only
		}}
		s1, err1 := RunID(h, ids1, asID, VertexKind)
		s2, err2 := RunID(h, ids2, asID, VertexKind)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if s1.Vertices[v] != s2.Vertices[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: PO solutions are invariant under lifts (the fundamental
// invariance the whole paper rests on): running a PO algorithm on a
// 2-lift selects the lift of the base solution.
func TestQuickPOLiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		base := digraph.FromPorts(graph.Cycle(n), nil).D
		// Double cover: cyclic 2-lift with shift 1 on one arc.
		lifted := digraph.NewBuilder(2*n, base.Alphabet())
		for u := 0; u < n; u++ {
			for _, a := range base.Out(u) {
				s := 0
				if u == 0 && a.To == 1 {
					s = 1
				}
				for i := 0; i < 2; i++ {
					lifted.MustAddArc(u+i*n, a.To+((i+s)%2)*n, a.Label)
				}
			}
		}
		hBase, err := NewHost(base)
		if err != nil {
			return false
		}
		hLift, err := NewHost(lifted.Build())
		if err != nil {
			return false
		}
		alg := selectAllPO(2)
		sb, err1 := RunPO(hBase, alg, VertexKind)
		sl, err2 := RunPO(hLift, alg, VertexKind)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := 0; v < 2*n; v++ {
			if sl.Vertices[v] != sb.Vertices[v%n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
