package model

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/view"
)

// floodTypedState mirrors floodMaxAlgo's boxed state as a typed
// column entry (a non-trivial S exercising the generic path).
type floodTypedState struct {
	id    int32
	best  int32
	ticks int32
}

// floodTypedAlgo is floodMaxAlgo on the typed plane: same staggered
// halting, same flood-the-best-id traffic, with the id riding the
// word lane. Outputs must match the untyped algorithm byte for byte.
func floodTypedAlgo() TypedAlgo[floodTypedState] {
	return TypedAlgo[floodTypedState]{
		Init: func(v int, info NodeInfo) floodTypedState {
			id := int32(info.ID)
			return floodTypedState{id: id, best: id, ticks: 1 + id%4}
		},
		Step: func(s *floodTypedState, round int, inbox []WordMsg, out *Outbox) bool {
			for _, m := range inbox {
				if v := int32(m.W); v > s.best {
					s.best = v
				}
			}
			if s.ticks == 0 {
				return true
			}
			s.ticks--
			out.BroadcastWord(uint64(s.best))
			return false
		},
		Out: func(s *floodTypedState) Output {
			return Output{Member: s.best > s.id}
		},
	}
}

// TestTypedDifferentialFlood pins the typed engine against both the
// untyped engine and the sequential reference: identical outputs and
// round counts on every differential host, at parallelism 1 and 8.
func TestTypedDifferentialFlood(t *testing.T) {
	for name, h := range engineHosts(t) {
		n := h.G.N()
		ids := rand.New(rand.NewSource(int64(n))).Perm(4 * n)[:n]
		refStates, refRounds, err := RunRoundsReference(h, ids, floodMaxAlgo(), 16)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refOuts := make([]Output, n)
		for v, st := range refStates {
			refOuts[v] = floodMaxAlgo().Out(st)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			outs, rounds, err := RunRoundsTyped(h, ids, floodTypedAlgo(), 16)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: typed: %v", name, p, err)
			}
			if rounds != refRounds {
				t.Fatalf("%s p=%d: %d rounds, reference %d", name, p, rounds, refRounds)
			}
			if !reflect.DeepEqual(outs, refOuts) {
				t.Fatalf("%s p=%d: typed outputs differ from reference", name, p)
			}
		}
	}
}

// TestTypedFaultyMatchesUntyped: under every profile family, the typed
// run degrades exactly like the untyped run of the same algorithm —
// same outputs, same round count, same fault report — because fates
// are hashes of (seed, round, slot) coordinates shared by both lanes.
func TestTypedFaultyMatchesUntyped(t *testing.T) {
	for _, desc := range []string{"lossy:p=0.2", "dup+reorder", "crash:f=6,by=4", "churn:p=0.3,window=2", "adversarial:p=0.1,f=3"} {
		h := HostFromGraph(graph.Torus(8, 8))
		n := h.G.N()
		ids := rand.New(rand.NewSource(1)).Perm(4 * n)[:n]
		sched := MustParseProfile(desc).New(h, 99)
		uOuts, uRounds, uRep, err := RunRoundsFaulty(h, ids, floodMaxAlgo(), 300, sched)
		if err != nil {
			t.Fatalf("%s: untyped: %v", desc, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			tOuts, tRounds, tRep, err := RunRoundsTypedFaulty(h, ids, floodTypedAlgo(), 300, sched)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: typed: %v", desc, p, err)
			}
			if tRounds != uRounds || !reflect.DeepEqual(tOuts, uOuts) {
				t.Errorf("%s p=%d: typed faulty run differs from untyped (reproducer: seed=99)", desc, p)
			}
			if !reflect.DeepEqual(tRep, uRep) {
				t.Errorf("%s p=%d: reports differ: typed %+v untyped %+v", desc, p, tRep, uRep)
			}
		}
	}
}

// TestTypedCleanFaultyPins: a nil schedule through the typed faulty
// entry takes the exact clean path, with the all-zero "clean" report.
func TestTypedCleanFaultyPins(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	n := h.G.N()
	ids := rand.New(rand.NewSource(2)).Perm(4 * n)[:n]
	want, wantRounds, err := RunRoundsTyped(h, ids, floodTypedAlgo(), 16)
	if err != nil {
		t.Fatal(err)
	}
	outs, rounds, rep, err := RunRoundsTypedFaulty(h, ids, floodTypedAlgo(), 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != wantRounds || !reflect.DeepEqual(outs, want) {
		t.Fatal("clean typed faulty run differs from typed clean run")
	}
	if rep.Profile != "clean" || rep.Dropped != 0 || rep.Duplicated != 0 ||
		rep.Reordered != 0 || rep.DownSteps != 0 || rep.NumCrashed != 0 || rep.Crashed != nil {
		t.Fatalf("clean report not all-zero: %+v", rep)
	}
}

// TestTypedInboxSlotRouting: typed inboxes arrive in strictly
// increasing slot order whatever the worker schedule, every slot
// index names the letter the typed Init contract promises, and the
// payload proves the routing — each word is the sender's index, and
// the slot's letter at the receiver must resolve back to exactly that
// sender.
func TestTypedInboxSlotRouting(t *testing.T) {
	defer par.Set(par.Set(8))
	h := HostFromGraph(graph.Torus(6, 6))
	type st struct {
		v       int32
		letters []view.Letter
	}
	algo := TypedAlgo[st]{
		Init: func(v int, info NodeInfo) st {
			for i := 1; i < len(info.Letters); i++ {
				if !info.Letters[i-1].Less(info.Letters[i]) {
					t.Errorf("node %d: typed info letters not letter-sorted at %d", v, i)
				}
			}
			return st{v: int32(v), letters: info.Letters}
		},
		Step: func(s *st, round int, inbox []WordMsg, out *Outbox) bool {
			if round == 1 {
				for i, m := range inbox {
					if i > 0 && inbox[i-1].Slot >= m.Slot {
						t.Errorf("node %d: inbox out of slot order", s.v)
					}
					from, ok := resolveLetter(h, int(s.v), s.letters[m.Slot])
					if !ok || uint64(from) != m.W {
						t.Errorf("node %d slot %d: word %d, letter resolves to %d", s.v, m.Slot, m.W, from)
					}
				}
				return true
			}
			out.BroadcastWord(uint64(s.v))
			return false
		},
		Out: func(*st) Output { return Output{} },
	}
	if _, _, err := RunRoundsTyped(h, nil, algo, 4); err != nil {
		t.Fatal(err)
	}
}

// TestTypedErrorFormats: the typed send contract fails with the same
// shaped errors as the untyped one — round-stamped, profile-suffixed
// on faulty runs — plus the ids-length check.
func TestTypedErrorFormats(t *testing.T) {
	h := HostFromGraph(graph.Cycle(5))
	badAt := func(round int) WordAlgo {
		return WordAlgo{
			Init: func(int, NodeInfo) uint64 { return 0 },
			Step: func(st *uint64, r int, inbox []WordMsg, out *Outbox) bool {
				if r == round {
					out.SendWord(99, 7)
					return false
				}
				out.BroadcastWord(uint64(r))
				return false
			},
			Out: func(*uint64) Output { return Output{} },
		}
	}
	_, _, err := RunRoundsTyped(h, nil, badAt(2), 6)
	want := "model: round 2: node 0 sent on absent slot 99 (node has 2)"
	if err == nil || err.Error() != want {
		t.Errorf("clean absent-slot error = %v, want %q", err, want)
	}
	sched := MustParseProfile("lossy:p=0").New(h, 1)
	_, _, _, err = RunRoundsTypedFaulty(h, nil, badAt(2), 6, sched)
	want = "model: round 2 [lossy:p=0]: node 0 sent on absent slot 99 (node has 2)"
	if err == nil || err.Error() != want {
		t.Errorf("faulty absent-slot error = %v, want %q", err, want)
	}

	dup := WordAlgo{
		Init: func(int, NodeInfo) uint64 { return 0 },
		Step: func(st *uint64, r int, inbox []WordMsg, out *Outbox) bool {
			out.SendWord(0, 1)
			out.SendWord(0, 2)
			return false
		},
		Out: func(*uint64) Output { return Output{} },
	}
	_, _, err = RunRoundsTyped(h, nil, dup, 3)
	if err == nil || !strings.HasPrefix(err.Error(), "model: round 0: node ") ||
		!strings.Contains(err.Error(), "sent twice on slot 0") {
		t.Errorf("typed double-send error lacks round prefix: %v", err)
	}

	never := WordAlgo{
		Init: func(int, NodeInfo) uint64 { return 0 },
		Step: func(*uint64, int, []WordMsg, *Outbox) bool { return false },
		Out:  func(*uint64) Output { return Output{} },
	}
	_, _, err = RunRoundsTyped(h, nil, never, 4)
	want = "model: node 0 did not halt within 4 rounds"
	if err == nil || err.Error() != want {
		t.Errorf("typed non-halt error = %v, want %q", err, want)
	}

	if _, _, err := RunRoundsTyped(h, []int{1, 2}, never, 4); err == nil ||
		!strings.Contains(err.Error(), "2 ids for 5 nodes") {
		t.Errorf("typed ids-length error = %v", err)
	}
}

// TestScratchPreSized: the per-worker compaction scratch bound. The
// plane's maxSlots must equal the widest slot row, and a schedule
// that duplicates every delivery (the worst case the 2x fault scratch
// is sized for) must run without growing anything — pinned both by
// the run completing and by the typed/untyped agreement under it.
func TestScratchPreSized(t *testing.T) {
	for name, h := range engineHosts(t) {
		e := NewEngine(h)
		want := int32(0)
		for v := 0; v < h.G.N(); v++ {
			if w := int32(len(h.D.Out(v)) + len(h.D.In(v))); w > want {
				want = w
			}
		}
		if e.maxSlots != want {
			t.Errorf("%s: maxSlots = %d, want %d", name, e.maxSlots, want)
		}
	}

	// dup+reorder:p=1 duplicates every delivered message: inboxes hit
	// exactly 2x the in-degree, the fault scratch's sized bound.
	h := HostFromGraph(graph.Torus(8, 8))
	n := h.G.N()
	ids := rand.New(rand.NewSource(4)).Perm(4 * n)[:n]
	sched := MustParseProfile("dup+reorder:p=1").New(h, 7)
	uOuts, _, uRep, err := RunRoundsFaulty(h, ids, floodMaxAlgo(), 300, sched)
	if err != nil {
		t.Fatalf("untyped all-duplicate run: %v", err)
	}
	if uRep.Duplicated == 0 {
		t.Fatal("p=1 duplication schedule duplicated nothing")
	}
	tOuts, _, tRep, err := RunRoundsTypedFaulty(h, ids, floodTypedAlgo(), 300, sched)
	if err != nil {
		t.Fatalf("typed all-duplicate run: %v", err)
	}
	if !reflect.DeepEqual(tOuts, uOuts) || !reflect.DeepEqual(tRep, uRep) {
		t.Fatal("typed and untyped all-duplicate runs disagree")
	}
}

// typedPulseAlgo is the typed steady-state workload: the remaining
// round count is the whole state.
func typedPulseAlgo(rounds int) WordAlgo {
	return WordAlgo{
		Init: func(int, NodeInfo) uint64 { return uint64(rounds) },
		Step: func(st *uint64, round int, inbox []WordMsg, out *Outbox) bool {
			if *st == 0 {
				return true
			}
			*st--
			out.BroadcastWord(*st)
			return false
		},
		Out: func(*uint64) Output { return Output{} },
	}
}

// TestTypedSteadyStateAllocs: a steady-state typed round allocates
// nothing, on the clean and the faulty path alike. Measured as the
// long-run minus short-run allocation difference on one engine
// (per-run setup — closures, per-worker scratch — cancels exactly).
func TestTypedSteadyStateAllocs(t *testing.T) {
	defer par.Set(par.Set(1))
	h := HostFromGraph(graph.Cycle(512))
	te := NewWordEngine(h)
	sched := MustParseProfile("lossy:p=0.05").New(h, 11)
	for _, c := range []struct {
		name   string
		runFor func(rounds int) func()
	}{
		{"clean", func(rounds int) func() {
			return func() {
				if _, _, err := te.RunStates(nil, typedPulseAlgo(rounds), rounds+2); err != nil {
					t.Fatal(err)
				}
			}
		}},
		{"faulty", func(rounds int) func() {
			return func() {
				if _, _, _, err := te.RunStatesFaulty(nil, typedPulseAlgo(rounds), rounds+2, sched); err != nil {
					t.Fatal(err)
				}
			}
		}},
	} {
		c.runFor(8)() // warm-up
		short := testing.AllocsPerRun(3, c.runFor(8))
		long := testing.AllocsPerRun(3, c.runFor(264))
		if perRound := (long - short) / 256; perRound > 0.01 {
			t.Errorf("%s: steady-state typed round allocates: %.3f allocs/round (short %.0f, long %.0f)", c.name, perRound, short, long)
		}
	}
}

// TestTypedUntypedPlaneSharing: typed and untyped runs alternate on
// ONE message plane — the monotone stamp discipline keeps the lanes
// from ever reading each other's leftovers, so every run matches a
// fresh engine byte for byte.
func TestTypedUntypedPlaneSharing(t *testing.T) {
	h := HostFromGraph(graph.Petersen())
	e := NewEngine(h)
	te := TypedOn[floodTypedState](e)
	rng := rand.New(rand.NewSource(3))
	ids := rng.Perm(40)[:10]
	wantU, wantRounds, err := RunRounds(h, ids, floodMaxAlgo(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		outsU, roundsU, err := e.Run(ids, floodMaxAlgo().engine(), 16)
		if err != nil {
			t.Fatalf("iteration %d untyped: %v", i, err)
		}
		outsT, roundsT, err := te.Run(ids, floodTypedAlgo(), 16)
		if err != nil {
			t.Fatalf("iteration %d typed: %v", i, err)
		}
		if roundsU != wantRounds || roundsT != wantRounds ||
			!reflect.DeepEqual(outsU, wantU) || !reflect.DeepEqual(outsT, wantU) {
			t.Fatalf("iteration %d: alternating lanes diverged from fresh run", i)
		}
	}
}

// TestTypedReuseAfterError: a typed run failing mid-way (absent slot,
// non-halt) must not poison the shared plane for later typed runs.
func TestTypedReuseAfterError(t *testing.T) {
	h := HostFromGraph(graph.Cycle(6))
	te := NewWordEngine(h)
	bad := WordAlgo{
		Init: func(int, NodeInfo) uint64 { return 0 },
		Step: func(st *uint64, r int, inbox []WordMsg, out *Outbox) bool {
			out.SendWord(99, 1)
			return false
		},
		Out: func(*uint64) Output { return Output{} },
	}
	never := WordAlgo{
		Init: func(int, NodeInfo) uint64 { return 0 },
		Step: func(st *uint64, r int, inbox []WordMsg, out *Outbox) bool {
			out.BroadcastWord(uint64(r))
			return false
		},
		Out: func(*uint64) Output { return Output{} },
	}
	h2 := HostFromGraph(graph.Cycle(6))
	want, _, err := NewWordEngine(h2).RunStates(nil, typedPulseAlgo(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := te.RunStates(nil, bad, 4); err == nil {
			t.Fatal("absent slot accepted")
		}
		if _, _, err := te.RunStates(nil, never, 4); err == nil {
			t.Fatal("non-halting typed run accepted")
		}
		col, _, err := te.RunStates(nil, typedPulseAlgo(5), 8)
		if err != nil {
			t.Fatalf("typed run after errors: %v", err)
		}
		if !reflect.DeepEqual(col, want) {
			t.Fatalf("iteration %d: typed results diverge after failed runs", i)
		}
	}
}

// TestSimulatePORoundsTypedDifferential: the typed word-lane gather
// coincides with RunPO and the untyped SimulatePORounds on every
// differential host — the column-handle encoding of tree payloads is
// semantically invisible.
func TestSimulatePORoundsTypedDifferential(t *testing.T) {
	alg := FuncPO{R: 1, Fn: func(tr *view.Tree) Output {
		return Output{Member: tr.NumChildren()%2 == 0, Letters: tr.Letters()}
	}}
	for name, h := range engineHosts(t) {
		direct, err := RunPO(h, alg, EdgeKind)
		if err != nil {
			t.Fatalf("%s: RunPO: %v", name, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			sim, err := SimulatePORoundsTyped(h, alg, EdgeKind)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: SimulatePORoundsTyped: %v", name, p, err)
			}
			if !reflect.DeepEqual(direct.EdgeSet(), sim.EdgeSet()) {
				t.Fatalf("%s p=%d: typed gather edge sets differ", name, p)
			}
		}
	}
}

// TestSimulatePORoundsTypedFaulty: under a fault schedule the typed
// gather degrades exactly like the untyped one — same solution, same
// report — at parallelism 1 and 8.
func TestSimulatePORoundsTypedFaulty(t *testing.T) {
	alg := FuncPO{R: 2, Fn: func(tr *view.Tree) Output {
		return Output{Member: tr.NumChildren()%2 == 0}
	}}
	for _, desc := range []string{"lossy:p=0.15", "crash:f=5,by=2", "dup+reorder:p=0.3"} {
		h := HostFromGraph(graph.Torus(6, 6))
		sched := MustParseProfile(desc).New(h, 13)
		uSol, uRep, err := SimulatePORoundsFaulty(h, alg, VertexKind, sched, 300)
		if err != nil {
			t.Fatalf("%s: untyped: %v", desc, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			tSol, tRep, err := SimulatePORoundsTypedFaulty(h, alg, VertexKind, sched, 300)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: typed: %v", desc, p, err)
			}
			if !reflect.DeepEqual(tSol.Vertices, uSol.Vertices) {
				t.Errorf("%s p=%d: typed faulty gather solution differs (reproducer: seed=13)", desc, p)
			}
			if !reflect.DeepEqual(tRep, uRep) {
				t.Errorf("%s p=%d: reports differ", desc, p)
			}
		}
	}
}

// TestShuffleWordMsgsMatches: the typed reorder permutes a same-length
// inbox exactly like the untyped reorder for every seed.
func TestShuffleWordMsgsMatches(t *testing.T) {
	for seed := uint64(1); seed <= 64; seed++ {
		n := 1 + int(seed)%9
		ms := make([]Msg, n)
		ws := make([]WordMsg, n)
		for i := 0; i < n; i++ {
			ms[i] = Msg{Data: i}
			ws[i] = WordMsg{W: uint64(i)}
		}
		shuffleMsgs(ms, seed)
		shuffleWordMsgs(ws, seed)
		for i := range ms {
			if ms[i].Data.(int) != int(ws[i].W) {
				t.Fatalf("seed %d: permutations diverge at %d", seed, i)
			}
		}
	}
}
