package model

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the fault-injection scheduler layer of the round
// engine: a Schedule interposed between Outbox.Send and inbox
// compaction that can drop, duplicate and adversarially reorder
// messages per (arc, round), crash nodes permanently (crash-stop) or
// transiently (crash-recover), and churn nodes in and out of the
// active set.
//
// Every decision is a pure function of a splittable seeded RNG and
// the (round, slot/node) coordinates — never of a shared mutable
// stream — so a faulty execution is deterministic and reproducible
// from (host, algorithm, seed, profile descriptor) at any worker
// count: the reproducer of a failing property test is just that
// tuple. Profiles are parsed from a descriptor grammar mirroring the
// host registry's ("lossy:p=0.05", "crash:f=8,by=16,recover=4", ...);
// an unknown descriptor lists the grammar.

// Fate is the delivery fate of one message on the plane.
type Fate uint8

const (
	// Deliver delivers the message exactly once (the clean semantics).
	Deliver Fate = iota
	// Drop loses the message.
	Drop
	// Duplicate delivers the message twice.
	Duplicate
)

// NodeState is a node's liveness during one round.
type NodeState uint8

const (
	// StateUp: the node steps and sends normally.
	StateUp NodeState = iota
	// StateDown: the node is transiently out this round (crash-recover
	// window or churned out); it neither steps nor sends, and messages
	// addressed to it expire with the round's stamp.
	StateDown
	// StateCrashed: the node is permanently out from this round on; the
	// engine removes it from the worklist and reports it crashed.
	StateCrashed
)

// Schedule decides the faults of one execution. Implementations must
// be pure functions of their seed and the query coordinates — safe
// for concurrent use and independent of call order — so that faulty
// runs stay byte-identical across worker counts and reruns. A nil
// Schedule is the clean profile: the engine takes its unmodified hot
// path.
type Schedule interface {
	// String returns the profile descriptor the schedule was built
	// from; it appears in error strings and FaultReport.Profile.
	String() string
	// Fate decides the fate of the message delivered in round r on
	// plane slot s (a slot is owned by its receiving node, so targeted
	// profiles can weight by receiver).
	Fate(round int, slot int32) Fate
	// State reports node v's liveness in round r. Once State returns
	// StateCrashed for (r, v) it must do so for every r' >= r.
	State(round int, v int32) NodeState
	// Reorder returns a nonzero permutation seed to adversarially
	// shuffle v's round-r inbox, or 0 to keep letter-order delivery.
	Reorder(round int, v int32) uint64
}

// FaultReport summarises the faults one run actually experienced.
type FaultReport struct {
	// Profile is the schedule's descriptor ("clean" for a nil schedule).
	Profile string
	// Dropped, Duplicated and Reordered count message-plane events
	// (Reordered counts permuted inboxes).
	Dropped, Duplicated, Reordered int64
	// DownSteps counts node-rounds skipped while transiently down.
	DownSteps int64
	// NumCrashed is the number of permanently crashed nodes.
	NumCrashed int
	// Crashed marks the crashed nodes (nil for a clean run).
	Crashed []bool
}

// CrashedNode reports whether v crashed during the run; false for
// clean runs and nil reports.
func (r *FaultReport) CrashedNode(v int) bool {
	return r != nil && r.Crashed != nil && r.Crashed[v]
}

// Survivors returns the number of non-crashed nodes among n.
func (r *FaultReport) Survivors(n int) int {
	if r == nil || r.Crashed == nil {
		return n
	}
	return n - r.NumCrashed
}

// Profile is a parsed fault profile: a schedule family bound to its
// arguments but not yet to a host or seed, so one parse serves many
// runs.
type Profile struct {
	// Desc is the descriptor the profile was parsed from.
	Desc string
	// New binds the profile to a host and seed. It returns nil for the
	// clean profile — the engine's unmodified synchronous semantics.
	New func(h *Host, seed int64) Schedule
}

// mix is the splittable RNG of the fault layer: a splitmix64-style
// hash of a (sub-)seed and two coordinates. Decisions are drawn by
// coordinates, not from a shared stream, so they are independent of
// worker scheduling and of how many other decisions were drawn.
func mix(seed, a, b uint64) uint64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// split derives an independent sub-stream of a profile seed; tags keep
// fate, liveness, duplication and reordering decisions uncorrelated.
func split(seed uint64, tag uint64) uint64 { return mix(seed, tag, 0x9E3779B97F4A7C15) }

const (
	tagFate = 1 + iota
	tagDup
	tagState
	tagPerm
	tagCrash
)

// thr53 converts a probability to the 53-bit threshold below compares
// hashes against.
func thr53(p float64) uint64 { return uint64(math.Round(p * (1 << 53))) }

func below(h, thr uint64) bool { return thr != 0 && (h>>11) < thr }

// schedule is the one implementation behind every canned profile.
type schedule struct {
	desc string
	// Split sub-seeds (see split).
	fateSeed, dupSeed, stateSeed, permSeed uint64

	// Message-plane faults. dropAll is the uniform drop threshold;
	// dropPer, when set, overrides it per delivery slot (targeted
	// profiles). ramp scales the drop threshold up in later rounds —
	// the adversary leaning on the nodes still active late in the run.
	dropAll uint64
	dropPer []uint64
	dupThr  uint64
	shuffle bool
	ramp    bool

	// Node liveness. crashAt[v] is v's crash round (-1 = never);
	// downFor > 0 turns a crash into a crash-recover window of that
	// many rounds. churnThr/churnW take each node out independently
	// for whole windows of churnW rounds.
	crashAt  []int32
	downFor  int32
	churnThr uint64
	churnW   int32
}

func (s *schedule) String() string { return s.desc }

func (s *schedule) Fate(round int, slot int32) Fate {
	thr := s.dropAll
	if s.dropPer != nil {
		thr = s.dropPer[slot]
	}
	if s.ramp && thr != 0 {
		// Double the drop rate linearly over the first 8 rounds, then
		// hold: late (most recently active) traffic suffers the most.
		r := round
		if r > 8 {
			r = 8
		}
		thr += thr * uint64(r) / 8
	}
	if below(mix(s.fateSeed, uint64(round), uint64(slot)), thr) {
		return Drop
	}
	if s.dupThr != 0 && below(mix(s.dupSeed, uint64(round), uint64(slot)), s.dupThr) {
		return Duplicate
	}
	return Deliver
}

func (s *schedule) State(round int, v int32) NodeState {
	if s.crashAt != nil {
		if c := s.crashAt[v]; c >= 0 && int32(round) >= c {
			if s.downFor == 0 {
				return StateCrashed
			}
			if int32(round) < c+s.downFor {
				return StateDown
			}
		}
	}
	if s.churnThr != 0 {
		w := int32(round) / s.churnW
		if below(mix(s.stateSeed, uint64(w), uint64(v)), s.churnThr) {
			return StateDown
		}
	}
	return StateUp
}

func (s *schedule) Reorder(round int, v int32) uint64 {
	if !s.shuffle {
		return 0
	}
	h := mix(s.permSeed, uint64(round), uint64(v))
	if h == 0 {
		h = 1
	}
	return h
}

// newSchedule seeds the shared sub-streams.
func newSchedule(desc string, seed int64) *schedule {
	u := uint64(seed)
	return &schedule{
		desc:      desc,
		fateSeed:  split(u, tagFate),
		dupSeed:   split(u, tagDup),
		stateSeed: split(u, tagState),
		permSeed:  split(u, tagPerm),
	}
}

// planeSlots recomputes the engine's slot layout boundaries: slot rows
// follow h.D's incident (arc, direction) pairs exactly as
// NewEngine lays them out, so receiver-targeted thresholds line up
// with the plane.
func planeSlots(h *Host) []int32 {
	n := h.G.N()
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(len(h.D.Out(v))+len(h.D.In(v)))
	}
	return off
}

// crashRounds assigns crash rounds to the given nodes: each crashes at
// a seeded round in [0, by).
func crashRounds(n int, victims []int32, seed uint64, by int) []int32 {
	at := make([]int32, n)
	for v := range at {
		at[v] = -1
	}
	if by < 1 {
		by = 1
	}
	for _, v := range victims {
		at[v] = int32(mix(seed, uint64(v), 7) % uint64(by))
	}
	return at
}

// seededVictims picks f distinct nodes by hash rank (ties impossible:
// ranks are (hash, v) pairs).
func seededVictims(n, f int, seed uint64) []int32 {
	if f > n {
		f = n
	}
	idx := make([]int32, n)
	for v := range idx {
		idx[v] = int32(v)
	}
	sort.Slice(idx, func(i, j int) bool {
		hi, hj := mix(seed, uint64(idx[i]), 3), mix(seed, uint64(idx[j]), 3)
		if hi != hj {
			return hi < hj
		}
		return idx[i] < idx[j]
	})
	return idx[:f]
}

// degreeVictims picks the f highest-degree nodes (ties to the smaller
// index) — the adversary's crash targets.
func degreeVictims(h *Host, f int) []int32 {
	n := h.G.N()
	if f > n {
		f = n
	}
	idx := make([]int32, n)
	for v := range idx {
		idx[v] = int32(v)
	}
	sort.Slice(idx, func(i, j int) bool {
		di, dj := h.G.Degree(int(idx[i])), h.G.Degree(int(idx[j]))
		if di != dj {
			return di > dj
		}
		return idx[i] < idx[j]
	})
	return idx[:f]
}

// profileFamily is one entry of the profile registry.
type profileFamily struct {
	name, syntax, doc string
	build             func(p *fparams) (func(h *Host, seed int64) Schedule, error)
}

// profileFamilies returns the canned profiles in listing order.
func profileFamilies() []profileFamily {
	return []profileFamily{
		{
			name: "clean", syntax: "clean",
			doc: "no faults: the engine's exact synchronous semantics",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				return func(*Host, int64) Schedule { return nil }, nil
			},
		},
		{
			name: "lossy", syntax: "lossy[:p=<prob>]",
			doc: "each delivery independently dropped with probability p (default 0.05)",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				pr, err := p.prob("p", 0.05)
				if err != nil {
					return nil, err
				}
				return func(h *Host, seed int64) Schedule {
					s := newSchedule(p.desc, seed)
					s.dropAll = thr53(pr)
					return s
				}, nil
			},
		},
		{
			name: "dup+reorder", syntax: "dup+reorder[:p=<prob>]",
			doc: "each delivery duplicated with probability p (default 0.25); every inbox adversarially permuted",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				pr, err := p.prob("p", 0.25)
				if err != nil {
					return nil, err
				}
				return func(h *Host, seed int64) Schedule {
					s := newSchedule(p.desc, seed)
					s.dupThr = thr53(pr)
					s.shuffle = true
					return s
				}, nil
			},
		},
		{
			name: "crash", syntax: "crash:f=<count>[,by=<round>][,recover=<rounds>]",
			doc: "f seeded nodes fail at rounds in [0,by) (default by=8): crash-stop, or down for <recover> rounds then back",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				f, err := p.count("f", -1)
				if err != nil {
					return nil, err
				}
				if f < 0 {
					return nil, fmt.Errorf("crash needs f=<count>")
				}
				by, err := p.count("by", 8)
				if err != nil {
					return nil, err
				}
				rec, err := p.count("recover", 0)
				if err != nil {
					return nil, err
				}
				return func(h *Host, seed int64) Schedule {
					s := newSchedule(p.desc, seed)
					crashSeed := split(uint64(seed), tagCrash)
					s.crashAt = crashRounds(h.G.N(), seededVictims(h.G.N(), f, crashSeed), crashSeed, by)
					s.downFor = int32(rec)
					return s
				}, nil
			},
		},
		{
			name: "churn", syntax: "churn[:p=<prob>][,window=<rounds>]",
			doc: "each node independently out for each whole window of rounds with probability p (defaults p=0.1, window=4)",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				pr, err := p.prob("p", 0.1)
				if err != nil {
					return nil, err
				}
				w, err := p.count("window", 4)
				if err != nil {
					return nil, err
				}
				if w < 1 {
					return nil, fmt.Errorf("window must be >= 1")
				}
				return func(h *Host, seed int64) Schedule {
					s := newSchedule(p.desc, seed)
					s.churnThr = thr53(pr)
					s.churnW = int32(w)
					return s
				}, nil
			},
		},
		{
			name: "adversarial", syntax: "adversarial[:p=<prob>][,f=<count>][,by=<round>]",
			doc: "targeted: drops ramp up to 4p into the highest-degree receivers and double in later rounds; the f highest-degree nodes crash-stop at rounds in [0,by)",
			build: func(p *fparams) (func(*Host, int64) Schedule, error) {
				pr, err := p.prob("p", 0.05)
				if err != nil {
					return nil, err
				}
				f, err := p.count("f", 0)
				if err != nil {
					return nil, err
				}
				by, err := p.count("by", 8)
				if err != nil {
					return nil, err
				}
				return func(h *Host, seed int64) Schedule {
					s := newSchedule(p.desc, seed)
					s.ramp = true
					// Per-slot thresholds: a message into receiver v is
					// dropped with probability between p and 4p, scaled
					// by v's degree relative to the maximum.
					off := planeSlots(h)
					maxDeg := h.G.MaxDegree()
					if maxDeg == 0 {
						maxDeg = 1
					}
					per := make([]uint64, off[h.G.N()])
					for v := 0; v < h.G.N(); v++ {
						pv := pr * (1 + 3*float64(h.G.Degree(v))/float64(maxDeg))
						if pv > 1 {
							pv = 1
						}
						t := thr53(pv)
						for sl := off[v]; sl < off[v+1]; sl++ {
							per[sl] = t
						}
					}
					s.dropPer = per
					if f > 0 {
						s.crashAt = crashRounds(h.G.N(), degreeVictims(h, f), split(uint64(seed), tagCrash), by)
					}
					return s
				}, nil
			},
		},
	}
}

// DescribeProfiles renders the profile grammar as a usage listing —
// appended to unknown-descriptor errors so a mistyped -faults flag is
// self-repairing, exactly like the host registry's Describe.
func DescribeProfiles() string {
	var sb strings.Builder
	sb.WriteString("fault profiles:\n")
	for _, f := range profileFamilies() {
		fmt.Fprintf(&sb, "  %-52s %s\n", f.syntax, f.doc)
	}
	return sb.String()
}

// ParseProfile resolves a fault-profile descriptor. The grammar is the
// host registry's: name[:arg,arg,...] with key=value arguments;
// unknown families and unused arguments fail loudly with the listing.
func ParseProfile(desc string) (*Profile, error) {
	name, rest := desc, ""
	if i := strings.IndexByte(desc, ':'); i >= 0 {
		name, rest = desc[:i], desc[i+1:]
	}
	var fam *profileFamily
	for _, f := range profileFamilies() {
		if f.name == name {
			fam = &f
			break
		}
	}
	if fam == nil {
		return nil, fmt.Errorf("model: unknown fault profile %q in descriptor %q\n%s", name, desc, DescribeProfiles())
	}
	p, err := parseFParams(desc, rest)
	if err != nil {
		return nil, fmt.Errorf("model: fault descriptor %q: %w", desc, err)
	}
	build, err := fam.build(p)
	if err != nil {
		return nil, fmt.Errorf("model: fault profile %s (syntax: %s): %w", desc, fam.syntax, err)
	}
	if err := p.unusedErr(); err != nil {
		return nil, fmt.Errorf("model: fault descriptor %q: %w", desc, err)
	}
	return &Profile{Desc: desc, New: build}, nil
}

// MustParseProfile is ParseProfile that panics on error; for tests.
func MustParseProfile(desc string) *Profile {
	p, err := ParseProfile(desc)
	if err != nil {
		panic(err)
	}
	return p
}

// fparams parses a profile argument list (key=value pairs only — the
// profiles have no positional arguments).
type fparams struct {
	desc string
	kv   map[string]string
	used map[string]bool
}

func parseFParams(desc, rest string) (*fparams, error) {
	p := &fparams{desc: desc, kv: map[string]string{}, used: map[string]bool{}}
	if rest == "" {
		return p, nil
	}
	for _, item := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(item, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed argument %q (want key=value)", item)
		}
		if _, dup := p.kv[k]; dup {
			return nil, fmt.Errorf("duplicate argument %q", k)
		}
		p.kv[k] = v
	}
	return p, nil
}

// prob reads a probability argument in [0, 1].
func (p *fparams) prob(name string, def float64) (float64, error) {
	s, ok := p.kv[name]
	if !ok {
		return def, nil
	}
	p.used[name] = true
	x, err := strconv.ParseFloat(s, 64)
	if err != nil || x < 0 || x > 1 {
		return 0, fmt.Errorf("argument %s=%q is not a probability in [0,1]", name, s)
	}
	return x, nil
}

// count reads a non-negative integer argument.
func (p *fparams) count(name string, def int) (int, error) {
	s, ok := p.kv[name]
	if !ok {
		return def, nil
	}
	p.used[name] = true
	x, err := strconv.Atoi(s)
	if err != nil || x < 0 {
		return 0, fmt.Errorf("argument %s=%q is not a non-negative integer", name, s)
	}
	return x, nil
}

func (p *fparams) unusedErr() error {
	var bad []string
	for k := range p.kv {
		if !p.used[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("unused arguments %v", bad)
}

// shuffleMsgs applies the seeded Fisher–Yates permutation — the
// adversarial reordering — in place.
func shuffleMsgs(ms []Msg, seed uint64) {
	x := seed
	for i := len(ms) - 1; i > 0; i-- {
		x = mix(x, uint64(i), 0)
		ms[i], ms[x%uint64(i+1)] = ms[x%uint64(i+1)], ms[i]
	}
}

// shuffleWordMsgs is shuffleMsgs for the typed word lane: the same
// seed permutes a same-length inbox identically, so typed and untyped
// runs see their messages in the same adversarial order.
func shuffleWordMsgs(ms []WordMsg, seed uint64) {
	x := seed
	for i := len(ms) - 1; i > 0; i-- {
		x = mix(x, uint64(i), 0)
		ms[i], ms[x%uint64(i+1)] = ms[x%uint64(i+1)], ms[i]
	}
}
