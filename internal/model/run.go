package model

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/view"
)

// RunPO executes a PO algorithm on every node of the host and collects
// the solution. For edge problems, a node's letter selections are
// resolved through its incident arcs, and the solution is the union
// over all nodes (the paper's Ω = {0,1}^Δ convention).
func RunPO(h *Host, alg PO, kind Kind) (*Solution, error) {
	bs := view.NewBuildScratch()
	sol := NewSolution(kind, h.G.N())
	for v := 0; v < h.G.N(); v++ {
		t := view.BuildWith[int](bs, h.D, v, alg.Radius())
		out := alg.EvalPO(t)
		if kind == VertexKind {
			sol.Vertices[v] = out.Member
			continue
		}
		for _, l := range out.Letters {
			to, ok := resolveLetter(h, v, l)
			if !ok {
				return nil, fmt.Errorf("model: node %d selected absent letter %v", v, l)
			}
			sol.Edges[graph.NewEdge(v, to)] = true
		}
	}
	return sol, nil
}

// RunOI executes an OI algorithm on every node of the ordered host
// (h.G, rank). Balls are extracted through one sweeper and interned,
// so the algorithm sees each canonical type as one stable *Ball and
// repeated types cost no allocation.
func RunOI(h *Host, rank order.Rank, alg OI, kind Kind) (*Solution, error) {
	if err := rank.Validate(h.G.N()); err != nil {
		return nil, fmt.Errorf("model: RunOI: %w", err)
	}
	sw, in := order.NewSweeper(), order.NewInterner()
	sol := NewSolution(kind, h.G.N())
	for v := 0; v < h.G.N(); v++ {
		ball, verts := sw.CanonicalBallVerts(h.G, rank, v, alg.Radius(), in)
		out := alg.EvalOI(ball)
		if err := applyLocal(sol, v, ball.G, ball.Root, verts, out); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// RunID executes an ID algorithm on every node; ids assigns each vertex
// its unique identifier.
func RunID(h *Host, ids []int, alg ID, kind Kind) (*Solution, error) {
	if len(ids) != h.G.N() {
		return nil, fmt.Errorf("model: RunID: %d ids for %d nodes", len(ids), h.G.N())
	}
	rank, err := order.FromIDs(ids)
	if err != nil {
		return nil, fmt.Errorf("model: RunID: %w", err)
	}
	sw, in := order.NewSweeper(), order.NewInterner()
	sol := NewSolution(kind, h.G.N())
	for v := 0; v < h.G.N(); v++ {
		ball, verts := sw.CanonicalBallVerts(h.G, rank, v, alg.Radius(), in)
		// ballIDs is handed to the algorithm, which may retain it, so
		// it is a fresh slice rather than sweeper scratch.
		ballIDs := make([]int, len(verts))
		for i, u := range verts {
			ballIDs[i] = ids[u]
		}
		out := alg.EvalID(&IDBall{G: ball.G, Root: ball.Root, IDs: ballIDs})
		if err := applyLocal(sol, v, ball.G, ball.Root, verts, out); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// resolveLetter finds the opposite endpoint of the arc at v addressed
// by the letter l.
func resolveLetter(h *Host, v int, l view.Letter) (int, bool) {
	if l.In {
		if arc, found := h.D.InArc(v, l.Label); found {
			return arc.To, true
		}
		return 0, false
	}
	if arc, found := h.D.OutArc(v, l.Label); found {
		return arc.To, true
	}
	return 0, false
}

// applyLocal merges one node's OI/ID output into the solution.
func applyLocal(sol *Solution, v int, ballG *graph.Graph, root int, verts []int, out Output) error {
	if sol.Kind == VertexKind {
		sol.Vertices[v] = out.Member
		return nil
	}
	for _, idx := range out.Neighbors {
		if idx < 0 || idx >= len(verts) {
			return fmt.Errorf("model: node %d selected ball index %d out of range", v, idx)
		}
		if !ballG.HasEdge(root, idx) {
			return fmt.Errorf("model: node %d selected non-neighbour ball index %d", v, idx)
		}
		sol.Edges[graph.NewEdge(v, verts[idx])] = true
	}
	return nil
}

// LocalOutputs runs an algorithm and returns the per-node outputs
// normalised to sets of global edges (for edge problems) or membership
// bits; used to measure the node-by-node agreement of two algorithms
// (Fact 4.2).
type LocalOutputs struct {
	Kind    Kind
	Member  []bool
	EdgeSel []map[graph.Edge]bool
}

// POOutputs collects normalised per-node outputs of a PO algorithm.
func POOutputs(h *Host, alg PO, kind Kind) (*LocalOutputs, error) {
	bs := view.NewBuildScratch()
	lo := newLocalOutputs(kind, h.G.N())
	for v := 0; v < h.G.N(); v++ {
		t := view.BuildWith[int](bs, h.D, v, alg.Radius())
		out := alg.EvalPO(t)
		if kind == VertexKind {
			lo.Member[v] = out.Member
			continue
		}
		sel := make(map[graph.Edge]bool)
		for _, l := range out.Letters {
			to, ok := resolveLetter(h, v, l)
			if !ok {
				return nil, fmt.Errorf("model: node %d selected absent letter %v", v, l)
			}
			sel[graph.NewEdge(v, to)] = true
		}
		lo.EdgeSel[v] = sel
	}
	return lo, nil
}

// OIOutputs collects normalised per-node outputs of an OI algorithm.
func OIOutputs(h *Host, rank order.Rank, alg OI, kind Kind) (*LocalOutputs, error) {
	sw, in := order.NewSweeper(), order.NewInterner()
	lo := newLocalOutputs(kind, h.G.N())
	for v := 0; v < h.G.N(); v++ {
		ball, verts := sw.CanonicalBallVerts(h.G, rank, v, alg.Radius(), in)
		out := alg.EvalOI(ball)
		if kind == VertexKind {
			lo.Member[v] = out.Member
			continue
		}
		sel := make(map[graph.Edge]bool)
		for _, idx := range out.Neighbors {
			if idx < 0 || idx >= len(verts) || !ball.G.HasEdge(ball.Root, idx) {
				return nil, fmt.Errorf("model: node %d: bad neighbour selection %d", v, idx)
			}
			sel[graph.NewEdge(v, verts[idx])] = true
		}
		lo.EdgeSel[v] = sel
	}
	return lo, nil
}

func newLocalOutputs(kind Kind, n int) *LocalOutputs {
	lo := &LocalOutputs{Kind: kind}
	if kind == VertexKind {
		lo.Member = make([]bool, n)
	} else {
		lo.EdgeSel = make([]map[graph.Edge]bool, n)
	}
	return lo
}

// Agreement returns the fraction of nodes on which the two output
// collections coincide.
func Agreement(a, b *LocalOutputs) (float64, error) {
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("model: kind mismatch")
	}
	var n, same int
	if a.Kind == VertexKind {
		if len(a.Member) != len(b.Member) {
			return 0, fmt.Errorf("model: size mismatch")
		}
		n = len(a.Member)
		for v := 0; v < n; v++ {
			if a.Member[v] == b.Member[v] {
				same++
			}
		}
	} else {
		if len(a.EdgeSel) != len(b.EdgeSel) {
			return 0, fmt.Errorf("model: size mismatch")
		}
		n = len(a.EdgeSel)
		for v := 0; v < n; v++ {
			if equalEdgeSets(a.EdgeSel[v], b.EdgeSel[v]) {
				same++
			}
		}
	}
	if n == 0 {
		return 1, nil
	}
	return float64(same) / float64(n), nil
}

func equalEdgeSets(a, b map[graph.Edge]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// FuncPO adapts a function to the PO interface.
type FuncPO struct {
	R  int
	Fn func(t *view.Tree) Output
}

// Radius implements PO.
func (f FuncPO) Radius() int { return f.R }

// EvalPO implements PO.
func (f FuncPO) EvalPO(t *view.Tree) Output { return f.Fn(t) }

// FuncOI adapts a function to the OI interface.
type FuncOI struct {
	R  int
	Fn func(b *order.Ball) Output
}

// Radius implements OI.
func (f FuncOI) Radius() int { return f.R }

// EvalOI implements OI.
func (f FuncOI) EvalOI(b *order.Ball) Output { return f.Fn(b) }

// FuncID adapts a function to the ID interface.
type FuncID struct {
	R  int
	Fn func(b *IDBall) Output
}

// Radius implements ID.
func (f FuncID) Radius() int { return f.R }

// EvalID implements ID.
func (f FuncID) EvalID(b *IDBall) Output { return f.Fn(b) }

var (
	_ PO = FuncPO{}
	_ OI = FuncOI{}
	_ ID = FuncID{}
)

// RootNeighbors returns the ball indices adjacent to the root in
// increasing order — the canonical way an OI/ID algorithm addresses
// the root's incident edges. CSR rows are already sorted, so this is
// a straight copy.
func RootNeighbors(ballG *graph.Graph, root int) []int {
	return ballG.AppendNeighbors(make([]int, 0, ballG.Degree(root)), root)
}
