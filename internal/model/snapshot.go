package model

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ckpt"
)

// This file is the engine's durability layer: Snapshot captures a
// run's complete resumable state at a round barrier — the next round
// number, the state column, the pending message plane, the halt and
// crash bitsets, and the accumulated fault counters — and Resume
// replays it into a fresh (or reused) engine so the remainder of the
// run is byte-identical to the uninterrupted run.
//
// Why barriers, and why it is exact. Between rounds the engine's whole
// dynamic state is: the per-node states, which nodes have halted or
// crashed, and the messages written for the next round (arena
// (round)&1 stamped base+round+1, where base is the run's tick). All
// fault decisions (Fate/State/Reorder) are pure hashes of the
// schedule's seed and *absolute* coordinates (round, slot/node), so a
// resumed run that keeps absolute round numbering replays the exact
// fate sequence of the original; and the worklist is always the
// increasing-vertex-order filter of the halt/crash bitsets (round-0
// construction and every compaction preserve order), so it is
// reconstructed rather than stored. Stamps are re-based on the
// resuming engine's own tick; stale stamps from that engine's earlier
// runs are strictly below its tick, so a restored message can never
// be confused with a leftover one.
//
// Codecs. The engine cannot serialise arbitrary any-typed states or
// payloads, so checkpointable untyped algorithms carry self-delimiting
// EncodeState/DecodeState (and EncodeData/DecodeData when they send
// payloads) on their EngineAlgo; typed algorithms either provide
// EncodeState/DecodeState on their TypedAlgo or — for the uint64 word
// instantiation that every packed workload uses — get the fixed-width
// little-endian default for free.

// SnapshotKind is the ckpt container kind of an encoded engine
// Snapshot.
const SnapshotKind = "engine-run"

// snapshotVersion is bumped on any change to the Snapshot encoding.
const snapshotVersion = 1

// Snapshot is a run's resumable state at a round barrier. It is
// produced by a Checkpointer sink, serialised with Encode, and
// consumed (once) by Engine.Resume or TypedEngine.Resume. All fields
// are deterministic functions of the run's state — no timestamps, no
// map order — so equal run states encode to equal bytes.
type Snapshot struct {
	// Typed records which plane the run used (word lane vs any lane).
	Typed bool
	// Faulty records whether the run executed under a fault schedule.
	Faulty bool
	// N and Slots pin the plane geometry the snapshot belongs to.
	N     int
	Slots int
	// Round is the next round to execute (the snapshot was taken at
	// the barrier after round Round-1).
	Round int
	// Halted and Crashed are the per-node bitsets at the barrier
	// (Crashed is nil on clean runs).
	Halted  []bool
	Crashed []bool
	// Accumulated fault counters at the barrier; they seed the resumed
	// run's FaultReport so the final report equals the uninterrupted
	// run's.
	Dropped    int64
	Duplicated int64
	Reordered  int64
	DownSteps  int64
	// Pending lists the plane slots holding messages for round Round,
	// in increasing slot order; Words carries their payloads on typed
	// runs, Data the concatenated self-delimiting encodings on untyped
	// runs.
	Pending []int32
	Words   []uint64
	Data    []byte
	// States is the encoded state column (per-node encodings
	// concatenated in increasing node order).
	States []byte

	// consumed rejects resuming one in-memory snapshot twice: the
	// second resume would replay messages into an engine whose tick
	// has already moved past them.
	consumed bool
}

// Encode serialises the snapshot payload (wrap with ckpt.Encode /
// store with ckpt.Store under SnapshotKind for the on-disk container).
func (s *Snapshot) Encode() []byte {
	var w ckpt.Writer
	w.Uvarint(snapshotVersion)
	w.Bool(s.Typed)
	w.Bool(s.Faulty)
	w.Uvarint(uint64(s.N))
	w.Uvarint(uint64(s.Slots))
	w.Uvarint(uint64(s.Round))
	w.Bits(s.Halted)
	if s.Faulty {
		w.Bits(s.Crashed)
		w.I64(s.Dropped)
		w.I64(s.Duplicated)
		w.I64(s.Reordered)
		w.I64(s.DownSteps)
	}
	w.Uvarint(uint64(len(s.Pending)))
	prev := int32(0)
	for _, p := range s.Pending {
		w.Uvarint(uint64(p - prev)) // increasing order: deltas are non-negative
		prev = p
	}
	if s.Typed {
		for _, wd := range s.Words {
			w.U64(wd)
		}
	} else {
		w.Blob(s.Data)
	}
	w.Blob(s.States)
	return w.Bytes()
}

// DecodeSnapshot parses an encoded snapshot payload.
func DecodeSnapshot(payload []byte) (*Snapshot, error) {
	r := ckpt.NewReader(payload)
	if v := r.Uvarint(); v != snapshotVersion {
		if r.Err() == nil {
			return nil, fmt.Errorf("model: snapshot version %d (want %d)", v, snapshotVersion)
		}
		return nil, r.Err()
	}
	s := &Snapshot{}
	s.Typed = r.Bool()
	s.Faulty = r.Bool()
	s.N = int(r.Uvarint())
	s.Slots = int(r.Uvarint())
	s.Round = int(r.Uvarint())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if s.N < 0 || s.N > 1<<31 || s.Slots < 0 || s.Slots > 1<<31 {
		return nil, fmt.Errorf("model: snapshot geometry out of range (n=%d slots=%d)", s.N, s.Slots)
	}
	s.Halted = r.Bits(s.N)
	if s.Faulty {
		s.Crashed = r.Bits(s.N)
		s.Dropped = r.I64()
		s.Duplicated = r.I64()
		s.Reordered = r.I64()
		s.DownSteps = r.I64()
	}
	np := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if np > uint64(s.Slots) {
		return nil, fmt.Errorf("model: snapshot pending count %d exceeds %d slots", np, s.Slots)
	}
	s.Pending = make([]int32, np)
	prev := int64(0)
	for i := range s.Pending {
		prev += int64(r.Uvarint())
		if prev >= int64(s.Slots) {
			return nil, fmt.Errorf("model: snapshot pending slot %d out of range", prev)
		}
		s.Pending[i] = int32(prev)
	}
	if s.Typed {
		s.Words = make([]uint64, np)
		for i := range s.Words {
			s.Words[i] = r.U64()
		}
	} else {
		s.Data = r.Blob()
	}
	s.States = r.Blob()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("model: snapshot has %d trailing bytes", r.Len())
	}
	return s, nil
}

// Checkpointer arms barrier checkpointing on an engine (see
// Engine.WithCheckpoints). At each round barrier where a checkpoint is
// due — every Every rounds, or once after RequestNow — the engine
// builds a Snapshot and hands it to Sink; a Sink error aborts the run.
// The idle cost (a barrier where no checkpoint is due) is one nil/int
// check, which is what keeps the steady-state round at 0 allocs/op.
type Checkpointer struct {
	// Every takes a checkpoint at every barrier whose next-round
	// number is a positive multiple of Every; 0 checkpoints only on
	// request.
	Every int
	// Sink receives each snapshot. The pointer is not retained by the
	// engine; the sink may serialise and discard it.
	Sink func(*Snapshot) error

	reqNow atomic.Bool
}

// RequestNow asks for one checkpoint at the next round barrier. It is
// safe to call from any goroutine (the watchdog calls it immediately
// before cancelling a job's context, so the barrier checkpoint runs
// before the loop-top cancellation poll).
func (ck *Checkpointer) RequestNow() { ck.reqNow.Store(true) }

// due reports whether a checkpoint should be taken at the barrier
// entering nextRound, consuming a pending RequestNow.
func (ck *Checkpointer) due(nextRound int) bool {
	if ck.reqNow.CompareAndSwap(true, false) {
		return true
	}
	return ck.Every > 0 && nextRound%ck.Every == 0
}

// WithCheckpoints arms barrier checkpointing for this engine's
// subsequent runs (typed, untyped, clean and faulty alike — the hook
// lives in runCore). The run errors up front if the algorithm lacks
// the codecs checkpointing needs. A nil ck disarms. Returns e for
// chaining.
func (e *Engine) WithCheckpoints(ck *Checkpointer) *Engine {
	e.ck = ck
	return e
}

// Resume arms the engine to resume its next run from snap instead of
// starting at round 0: the run's Init pass executes as usual (so
// callers regenerate ids and pre-drawn randomness exactly as the
// original run did), then states, halt/crash bitsets, pending
// messages and fault counters are restored from the snapshot and the
// round loop starts at snap.Round. The snapshot must match the run it
// is applied to (plane geometry, typed/untyped, clean/faulty) and is
// consumed: resuming one snapshot twice is rejected. Returns e for
// chaining.
func (e *Engine) Resume(snap *Snapshot) *Engine {
	e.resume = snap
	return e
}

// Resume is Engine.Resume for a typed engine's next run. Returns te
// for chaining.
func (te *TypedEngine[S]) Resume(snap *Snapshot) *TypedEngine[S] {
	te.e.resume = snap
	return te
}

// WithCheckpoints is Engine.WithCheckpoints for a typed engine.
// Returns te for chaining.
func (te *TypedEngine[S]) WithCheckpoints(ck *Checkpointer) *TypedEngine[S] {
	te.e.ck = ck
	return te
}

// snapshotAt builds the Snapshot for the barrier entering nextRound
// and hands it to the checkpointer's sink. It runs on the master
// goroutine between rounds (after the barrier's wg.Wait and worklist
// compaction), so every field it reads is quiescent.
func (e *Engine) snapshotAt(nextRound int, base int64, sched Schedule, obs []*Outbox) error {
	snap := &Snapshot{
		Typed:  e.ckTyped,
		Faulty: sched != nil,
		N:      e.n,
		Slots:  len(e.letters),
		Round:  nextRound,
		Halted: append([]bool(nil), e.halted...),
	}
	if sched != nil {
		snap.Crashed = append([]bool(nil), e.crashed...)
		snap.Dropped = e.repBase.Dropped
		snap.Duplicated = e.repBase.Duplicated
		snap.Reordered = e.repBase.Reordered
		snap.DownSteps = e.repBase.DownSteps
		for _, ob := range obs {
			snap.Dropped += ob.dropped
			snap.Duplicated += ob.duped
			snap.Reordered += ob.reordered
			snap.DownSteps += ob.downSteps
		}
	}
	// Messages for round nextRound live in arena nextRound&1, stamped
	// base+nextRound+1 (the writing round's want was curWant+1).
	arena := nextRound & 1
	want := base + int64(nextRound) + 1
	st := e.stamp[arena]
	for s := range st {
		if st[s] != want {
			continue
		}
		snap.Pending = append(snap.Pending, int32(s))
		if e.ckTyped {
			snap.Words = append(snap.Words, e.wbuf[arena][s])
		} else {
			if e.ckEncData == nil {
				return fmt.Errorf("model: checkpoint at round %d: algorithm has pending messages but no EncodeData codec", nextRound)
			}
			snap.Data = e.ckEncData(snap.Data, e.buf[arena][s].Data)
		}
	}
	snap.States = e.ckEncStates(nil)
	if e.ck.Sink == nil {
		return nil
	}
	if err := e.ck.Sink(snap); err != nil {
		return fmt.Errorf("model: checkpoint at round %d: %w", nextRound, err)
	}
	return nil
}

// restoreCommon validates a snapshot against the run being started and
// restores the plane-level state every path shares: halt/crash
// bitsets, pending-slot stamps (re-based on this engine's tick), the
// resume round and the fault-counter bases. Payload and state-column
// restoration stay with the typed/untyped callers.
func (e *Engine) restoreCommon(snap *Snapshot, typed, faulty bool) error {
	if snap.consumed {
		return fmt.Errorf("model: resume: snapshot already resumed (double resume rejected)")
	}
	if snap.Typed != typed {
		return fmt.Errorf("model: resume: snapshot is for the %s plane", planeName(snap.Typed))
	}
	if snap.Faulty != faulty {
		if snap.Faulty {
			return fmt.Errorf("model: resume: snapshot is from a faulty run; pass the same schedule")
		}
		return fmt.Errorf("model: resume: snapshot is from a clean run; drop the schedule")
	}
	if snap.N != e.n || snap.Slots != len(e.letters) {
		return fmt.Errorf("model: resume: snapshot geometry (n=%d slots=%d) does not match host (n=%d slots=%d)",
			snap.N, snap.Slots, e.n, len(e.letters))
	}
	if len(snap.Halted) != e.n || (snap.Faulty && len(snap.Crashed) != e.n) {
		return fmt.Errorf("model: resume: snapshot bitset length mismatch")
	}
	snap.consumed = true
	copy(e.halted, snap.Halted)
	if snap.Faulty {
		if e.crashed == nil {
			e.crashed = make([]bool, e.n)
		}
		copy(e.crashed, snap.Crashed)
	}
	arena := snap.Round & 1
	want := e.tick + int64(snap.Round) + 1
	for _, s := range snap.Pending {
		e.stamp[arena][s] = want
	}
	e.resumeFrom = snap.Round
	e.repBase = FaultReport{
		Dropped:    snap.Dropped,
		Duplicated: snap.Duplicated,
		Reordered:  snap.Reordered,
		DownSteps:  snap.DownSteps,
	}
	return nil
}

func planeName(typed bool) string {
	if typed {
		return "typed"
	}
	return "untyped"
}

// failedResume rolls back a partially applied restore so the engine
// is safe for ordinary runs again: the resume cursor and report bases
// are cleared and any restored stamps are zeroed (0 is never a live
// want, which is base+round+1 >= 1).
func (e *Engine) failedResume(snap *Snapshot) {
	e.resumeFrom = -1
	e.repBase = FaultReport{}
	arena := snap.Round & 1
	st := e.stamp[arena]
	for _, s := range snap.Pending {
		if int(s) < len(st) {
			st[s] = 0
		}
	}
}

// restoreUntyped restores an untyped run from snap: the shared plane
// state, then the state column and pending payloads through the
// algorithm's codecs.
func (e *Engine) restoreUntyped(snap *Snapshot, algo EngineAlgo, faulty bool) error {
	if algo.DecodeState == nil {
		return fmt.Errorf("model: resume: algorithm has no DecodeState codec")
	}
	if err := e.restoreCommon(snap, false, faulty); err != nil {
		return err
	}
	src := snap.States
	for v := 0; v < e.n; v++ {
		st, rest, err := algo.DecodeState(src, e.states[v])
		if err != nil {
			return fmt.Errorf("model: resume: state of node %d: %w", v, err)
		}
		e.states[v] = st
		src = rest
	}
	if len(src) != 0 {
		return fmt.Errorf("model: resume: %d trailing state bytes", len(src))
	}
	if len(snap.Pending) > 0 {
		if algo.DecodeData == nil {
			return fmt.Errorf("model: resume: snapshot has pending messages but algorithm has no DecodeData codec")
		}
		arena := snap.Round & 1
		data := snap.Data
		for _, s := range snap.Pending {
			d, rest, err := algo.DecodeData(data)
			if err != nil {
				return fmt.Errorf("model: resume: payload for slot %d: %w", s, err)
			}
			e.buf[arena][s].Data = d
			data = rest
		}
		if len(data) != 0 {
			return fmt.Errorf("model: resume: %d trailing payload bytes", len(data))
		}
	}
	return nil
}
