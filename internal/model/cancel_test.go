package model

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// neverHalt is a minimal non-halting round algorithm: nodes stay on
// the active worklist forever, so a run only ends via maxRounds or
// cancellation.
var neverHalt = RoundAlgo{
	Init: func(info NodeInfo) any { return 0 },
	Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) { return state, nil, false },
	Out:  func(state any) Output { return Output{} },
}

// TestRunCancelledByDeadline pins the cooperative-cancellation
// contract: a run whose context deadline expires aborts between
// rounds with an error wrapping context.DeadlineExceeded, and every
// reserved worker slot is handed back to the par budget.
func TestRunCancelledByDeadline(t *testing.T) {
	defer par.Set(par.Set(4))
	h := HostFromGraph(graph.Torus(16, 16))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := RunRoundsStatesCtx(ctx, h, nil, neverHalt, 1<<30)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "model: round ") || !strings.Contains(err.Error(), "run cancelled") {
		t.Fatalf("error %q lacks the round-stamped cancellation format", err)
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("par.InUse()=%d after cancelled run, want 0 (workers not re-admitted)", got)
	}
}

// TestRunCancelledFaultyCarriesProfile: the faulty path's
// cancellation error is stamped with the profile descriptor, like
// every other faulty-run error.
func TestRunCancelledFaultyCarriesProfile(t *testing.T) {
	h := HostFromGraph(graph.Torus(8, 8))
	prof := MustParseProfile("lossy:p=0.05")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort before round 0
	_, _, _, err := RunRoundsStatesFaultyCtx(ctx, h, nil, neverHalt, 64, prof.New(h, 7))
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "[lossy:p=0.05]") {
		t.Fatalf("faulty cancellation error %q lacks the profile stamp", err)
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("par.InUse()=%d after cancelled faulty run", got)
	}
}

// TestWithContextNilDisarms: a nil context leaves the clean path
// untouched — runs complete normally and reuse works.
func TestWithContextNilDisarms(t *testing.T) {
	h := HostFromGraph(graph.Cycle(12))
	e := NewEngine(h).WithContext(nil)
	halt := RoundAlgo{
		Init: func(info NodeInfo) any { return 0 },
		Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) { return state, nil, true },
		Out:  func(state any) Output { return Output{} },
	}
	if _, _, err := e.RunStates(nil, halt.engine(), 4); err != nil {
		t.Fatalf("nil-ctx run failed: %v", err)
	}
}

// TestWithContextTypedPath: cancellation reaches the typed word-lane
// engine through the shared round-loop core.
func TestWithContextTypedPath(t *testing.T) {
	h := HostFromGraph(graph.Torus(8, 8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	te := TypedOn[uint64](NewEngine(h).WithContext(ctx))
	stall := WordAlgo{
		Init: func(v int, info NodeInfo) uint64 { return 0 },
		Step: func(state *uint64, round int, inbox []WordMsg, out *Outbox) bool {
			return false
		},
		Out: func(state *uint64) Output { return Output{} },
	}
	_, _, err := te.RunStates(nil, stall, 64)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("typed cancelled run: err=%v", err)
	}
	if got := par.InUse(); got != 0 {
		t.Fatalf("par.InUse()=%d after cancelled typed run", got)
	}
}
