package model

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/digraph"
	"repro/internal/par"
	"repro/internal/view"
)

// This file is the sharded giant-host round engine: the typed word
// lane of the Engine (see typed.go) partitioned into P shards so that
// hosts past the int32 flat-CSR capacity — or simply past what one
// contiguous plane should hold — run with per-shard bounded memory.
//
// Each shard owns a contiguous global node range, its own slot plane
// (off/dest/arenas/stamps, exactly the Engine layout restricted to the
// range) and its own state column. Arcs whose endpoints live in
// different shards are resolved at construction into a compact
// exchange buffer: the sender's dest entry is the complement (^xi) of
// an index into its shard's staging arrays, and at the round barrier
// each destination shard drains every staging range aimed at it —
// the same CONS/GOSSIP boundary shape cometbft draws between the
// consensus state machine and the gossip plane.
//
// Determinism. Slot numbering concatenates the per-node letter-sorted
// slot rows in global node order, so a node's slots, its inbox order
// and the global (round, slot) fault coordinates are all identical to
// the unsharded Engine's — with P=1 the sharded plane IS the Engine
// plane, and the differential tests pin clean and faulty runs
// byte-identical at every P. Cross-shard staging cannot disturb this:
// every staging entry targets a unique destination slot, and inboxes
// are compacted in slot (letter) order at the receiver regardless of
// which shard, worker or drain pass wrote them.

// ShardArc is one labelled arc of an implicitly generated host: the
// global id of the other endpoint plus the arc label. It aliases
// digraph.SourceArc so source implementations live below the model.
type ShardArc = digraph.SourceArc

// ShardSource generates a properly labelled host digraph node by
// node, without ever materialising it — digraph.Source, under the
// name the engine API uses. Construction verifies reciprocity for
// every cross-shard arc and fails loudly on inconsistent sources.
type ShardSource = digraph.Source

// hostSource adapts a materialised host to the ShardSource contract,
// so any registry host can be sharded — the differential tests run
// Petersen and random-regular through exactly this adapter.
type hostSource struct{ h *Host }

// SourceOf wraps a materialised host as a ShardSource. The host must
// carry an L-digraph (equip plain graphs with digraph.FromPorts
// first, as every engine workload does).
func SourceOf(h *Host) ShardSource {
	if h.D == nil {
		panic("model: SourceOf needs a host with an L-digraph (use digraph.FromPorts)")
	}
	return hostSource{h: h}
}

func (s hostSource) N() int64      { return int64(s.h.G.N()) }
func (s hostSource) Alphabet() int { return s.h.D.Alphabet() }
func (s hostSource) Degree(v int64) (int, int) {
	return len(s.h.D.Out(int(v))), len(s.h.D.In(int(v)))
}
func (s hostSource) AppendArcs(v int64, out, in []ShardArc) ([]ShardArc, []ShardArc) {
	for _, a := range s.h.D.Out(int(v)) {
		out = append(out, ShardArc{To: int64(a.To), Label: a.Label})
	}
	for _, a := range s.h.D.In(int(v)) {
		in = append(in, ShardArc{To: int64(a.To), Label: a.Label})
	}
	return out, in
}

// WordSender is the send surface shared by the unsharded Outbox and
// the sharded outbox, so one packed-word algorithm core drives both
// planes. *Outbox and *ShardOutbox both satisfy it.
type WordSender interface {
	// SendWord emits w on the sender's local incident slot (checked:
	// absent slots and double sends are run errors).
	SendWord(slot int, w uint64)
	// BroadcastWord emits w on every incident slot (unchecked
	// overwrite).
	BroadcastWord(w uint64)
}

var (
	_ WordSender = (*Outbox)(nil)
	_ WordSender = (*ShardOutbox)(nil)
)

// ShardedWordAlgo is the packed fixed-width round algorithm of the
// sharded plane — WordAlgo with 64-bit node indices and the send
// surface abstracted to WordSender. Contract deltas from TypedAlgo:
// info.Letters passed to Init aliases per-engine scratch and is valid
// only during the call (states are uint64, so nothing can retain it
// anyway), and Init remains sequential in increasing global node
// order across all shards, so pre-drawn randomness is exactly as
// deterministic as on the flat plane.
type ShardedWordAlgo struct {
	// Init returns node v's initial state; v is the global node id.
	Init func(v int64, info NodeInfo) uint64
	// Step consumes the inbox (receiver letter order) and returns
	// whether the node halts.
	Step func(state *uint64, round int, inbox []WordMsg, out WordSender) bool
	// Out extracts the final output from a state.
	Out func(state *uint64) Output
}

// shard is one partition of the sharded plane: a contiguous global
// node range with its own CSR slot layout, double-buffered word
// arenas, state column, worklist and outgoing exchange staging.
type shard struct {
	lo, hi   int64 // global node range [lo, hi)
	n        int32 // hi - lo
	slotBase int64 // global index of local slot 0

	off  []int32 // local slot offsets, len n+1
	dest []int32 // >= 0: local destination slot; < 0: ^x staging index

	wbuf  [2][]uint64
	stamp [2][]int64

	col    []uint64
	halted []bool
	active []int32
	spare  []int32

	// Exchange staging, grouped by destination shard: entries
	// xoff[d]:xoff[d+1] go to shard d. xdst holds destination-local
	// slot indices; xw/xstamp carry the staged word and its round
	// stamp (monotone, like the arenas — never cleared).
	xoff   []int32
	xdst   []int32
	xw     []uint64
	xstamp []int64

	// crashed marks permanently crashed nodes on faulty runs (lazily
	// allocated, as on the flat plane).
	crashed []bool

	// First send error of the smallest failing local node this round.
	errMu sync.Mutex
	errV  int32
	err   error

	// Observability: activeN is the worklist length after the last
	// barrier, exchanged counts cross-shard words delivered into this
	// shard since construction. Both read live by /metrics.
	activeN   atomic.Int64
	exchanged atomic.Int64
}

// ShardedEngine runs packed-word round algorithms over P shards. Like
// the Engine it may be reused for any number of runs (arenas warm up
// once, stamps stay monotone), but must not execute two runs
// concurrently.
type ShardedEngine struct {
	src    ShardSource
	shards []*shard
	nTotal int64
	slots  int64
	// maxSlots is the widest slot row of any node — per-worker inbox
	// scratch is sized from it, and the Init letter scratch too.
	maxSlots int32
	tick     int64
	errFlag  atomic.Bool
	ctx      context.Context
}

// NewShardedEngine partitions the source into p contiguous shards and
// resolves every cross-shard arc into the exchange buffers. It fails
// if any single shard's slot count would overflow the int32 per-shard
// plane (raise p) or if the source is inconsistent.
func NewShardedEngine(src ShardSource, p int) (*ShardedEngine, error) {
	n := src.N()
	if n <= 0 {
		return nil, fmt.Errorf("model: sharded engine needs a non-empty host, have n=%d", n)
	}
	if p < 1 {
		return nil, fmt.Errorf("model: need at least one shard, have %d", p)
	}
	if int64(p) > n {
		p = int(n)
	}
	se := &ShardedEngine{src: src, nTotal: n, shards: make([]*shard, p)}

	// Pass 1: ranges, degrees, per-shard slot offsets.
	slotBase := int64(0)
	for i := 0; i < p; i++ {
		lo := int64(i) * n / int64(p)
		hi := int64(i+1) * n / int64(p)
		sh := &shard{lo: lo, hi: hi, n: int32(hi - lo), slotBase: slotBase, errV: -1}
		sh.off = make([]int32, sh.n+1)
		slots := int64(0)
		for v := int32(0); v < sh.n; v++ {
			out, in := src.Degree(lo + int64(v))
			row := int64(out + in)
			slots += row
			if slots > math.MaxInt32 {
				return nil, fmt.Errorf("model: shard %d/%d needs %d+ slots, exceeding the int32 per-shard plane capacity %d: raise the shard count",
					i, p, slots, int64(math.MaxInt32))
			}
			sh.off[v+1] = sh.off[v] + int32(row)
			if int32(row) > se.maxSlots {
				se.maxSlots = int32(row)
			}
		}
		slotBase += slots
		se.slots += slots
		se.shards[i] = sh
	}

	// Pass 2: routing. For each slot, locate the peer's slot for the
	// inverse letter; local peers route directly, remote peers get a
	// staging entry. Staging entries are discovered in slot order and
	// then bucketed by destination shard (counting sort), so xoff
	// ranges are contiguous and construction is deterministic.
	var outS, inS, pOut, pIn []ShardArc
	letters := make([]view.Letter, 0, se.maxSlots)
	targets := make([]int64, 0, se.maxSlots)
	type xent struct {
		dshard int32
		dslot  int32
		slot   int32
	}
	for i, sh := range se.shards {
		total := int(sh.off[sh.n])
		sh.dest = make([]int32, total)
		var cross []xent
		for v := int32(0); v < sh.n; v++ {
			gv := sh.lo + int64(v)
			outS, inS = se.src.AppendArcs(gv, outS[:0], inS[:0])
			letters, targets = mergeLetters(letters[:0], targets[:0], outS, inS)
			for k, l := range letters {
				s := sh.off[v] + int32(k)
				u := targets[k]
				uj := se.shardOf(u)
				ush := se.shards[uj]
				pOut, pIn = se.src.AppendArcs(u, pOut[:0], pIn[:0])
				ds, err := peerSlot(pOut, pIn, l.Inv(), gv)
				if err != nil {
					return nil, fmt.Errorf("model: shard source inconsistent at arc (%d,%d) letter %v: %w", gv, u, l, err)
				}
				uv := int32(u - ush.lo)
				dslot := ush.off[uv] + ds
				if uj == i {
					sh.dest[s] = dslot
				} else {
					cross = append(cross, xent{dshard: int32(uj), dslot: dslot, slot: s})
				}
			}
		}
		// Bucket the staging entries by destination shard.
		sh.xoff = make([]int32, p+1)
		for _, x := range cross {
			sh.xoff[x.dshard+1]++
		}
		for d := 0; d < p; d++ {
			sh.xoff[d+1] += sh.xoff[d]
		}
		sh.xdst = make([]int32, len(cross))
		sh.xw = make([]uint64, len(cross))
		sh.xstamp = make([]int64, len(cross))
		fill := make([]int32, p)
		copy(fill, sh.xoff[:p])
		for _, x := range cross {
			xi := fill[x.dshard]
			fill[x.dshard]++
			sh.xdst[xi] = x.dslot
			sh.dest[x.slot] = ^xi
		}
		for a := 0; a < 2; a++ {
			sh.wbuf[a] = make([]uint64, total)
			sh.stamp[a] = make([]int64, total)
		}
		sh.col = make([]uint64, sh.n)
		sh.halted = make([]bool, sh.n)
		sh.active = make([]int32, 0, sh.n)
		sh.spare = make([]int32, 0, sh.n)
	}
	return se, nil
}

// mergeLetters merges label-sorted out- and in-arc rows into the
// letter-sorted slot row (out before in on equal labels — exactly the
// Engine's merge), recording each slot's letter and peer.
func mergeLetters(ls []view.Letter, ts []int64, out, in []ShardArc) ([]view.Letter, []int64) {
	i, j := 0, 0
	for i < len(out) || j < len(in) {
		if i < len(out) && (j >= len(in) || out[i].Label <= in[j].Label) {
			ls = append(ls, view.Letter{Label: out[i].Label})
			ts = append(ts, out[i].To)
			i++
		} else {
			ls = append(ls, view.Letter{Label: in[j].Label, In: true})
			ts = append(ts, in[j].To)
			j++
		}
	}
	return ls, ts
}

// peerSlot returns the local slot index of letter l at a node with
// the given arc rows, verifying the arc at that letter really leads
// back to the expected endpoint.
func peerSlot(out, in []ShardArc, l view.Letter, back int64) (int32, error) {
	idx := int32(0)
	if l.In {
		for _, a := range out {
			if a.Label <= l.Label {
				idx++
			} else {
				break
			}
		}
		for _, a := range in {
			if a.Label < l.Label {
				idx++
				continue
			}
			if a.Label == l.Label {
				if a.To != back {
					return 0, fmt.Errorf("in-arc labelled %d comes from %d, not %d", l.Label, a.To, back)
				}
				return idx, nil
			}
			break
		}
		return 0, fmt.Errorf("no in-arc labelled %d", l.Label)
	}
	for _, a := range out {
		if a.Label < l.Label {
			idx++
			continue
		}
		if a.Label == l.Label {
			for _, b := range in {
				if b.Label < l.Label {
					idx++
				} else {
					break
				}
			}
			if a.To != back {
				return 0, fmt.Errorf("out-arc labelled %d goes to %d, not %d", l.Label, a.To, back)
			}
			return idx, nil
		}
		break
	}
	return 0, fmt.Errorf("no out-arc labelled %d", l.Label)
}

// shardOf returns the shard index owning global node v. Ranges are
// lo_i = floor(i*n/P), so the arithmetic estimate is off by at most
// one; the loops correct it.
func (se *ShardedEngine) shardOf(v int64) int {
	p := len(se.shards)
	i := int(v * int64(p) / se.nTotal)
	if i >= p {
		i = p - 1
	}
	for i > 0 && v < se.shards[i].lo {
		i--
	}
	for i+1 < p && v >= se.shards[i+1].lo {
		i++
	}
	return i
}

// N returns the total node count.
func (se *ShardedEngine) N() int64 { return se.nTotal }

// Source returns the shard source the engine was built over, so
// algorithm wrappers can validate host structure and re-derive arcs
// at extraction time without holding their own reference.
func (se *ShardedEngine) Source() ShardSource { return se.src }

// StateAt returns node v's current state word — random access for
// checkers that cross shard boundaries (VisitStates is the bulk
// path). Only meaningful between runs.
func (se *ShardedEngine) StateAt(v int64) uint64 {
	sh := se.shards[se.shardOf(v)]
	return sh.col[int32(v-sh.lo)]
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// WithContext arms cooperative cancellation exactly as on the flat
// engine: the round loop polls ctx.Err() once per round barrier.
func (se *ShardedEngine) WithContext(ctx context.Context) *ShardedEngine {
	se.ctx = ctx
	return se
}

// ShardStats is one shard's observability snapshot, served by
// /metrics on sharded jobs.
type ShardStats struct {
	// Shard is the shard index; Lo/Hi its global node range.
	Shard int
	Lo    int64
	Hi    int64
	// Slots is the shard's plane width, ExchangeOut its outgoing
	// staging capacity (resident cross-shard arcs).
	Slots       int64
	ExchangeOut int64
	// Active is the worklist occupancy at the last round barrier;
	// Exchanged counts cross-shard words delivered into the shard
	// since construction. Both are safe to read during a run.
	Active    int64
	Exchanged int64
}

// Stats snapshots every shard's occupancy and exchange counters.
func (se *ShardedEngine) Stats() []ShardStats {
	out := make([]ShardStats, len(se.shards))
	for i, sh := range se.shards {
		out[i] = ShardStats{
			Shard:       i,
			Lo:          sh.lo,
			Hi:          sh.hi,
			Slots:       int64(sh.off[sh.n]),
			ExchangeOut: int64(len(sh.xdst)),
			Active:      sh.activeN.Load(),
			Exchanged:   sh.exchanged.Load(),
		}
	}
	return out
}

// VisitStates calls fn for every node in increasing global order with
// the node's final state — the extraction path that never builds a
// full-length column (10^8-node results are consumed streaming).
func (se *ShardedEngine) VisitStates(fn func(v int64, state uint64)) {
	for _, sh := range se.shards {
		for v := int32(0); v < sh.n; v++ {
			fn(sh.lo+int64(v), sh.col[v])
		}
	}
}

// ShardOutbox routes one node's outgoing words into the next round's
// arena (local destinations) or the shard's exchange staging (remote
// destinations). Each worker owns one for the whole run; the engine
// repoints it at the current shard and node.
type ShardOutbox struct {
	se   *ShardedEngine
	sh   *shard
	v    int32
	nxt  int
	want int64

	round int
	prof  string

	dropped   int64
	duped     int64
	reordered int64
	downSteps int64

	wdense  []WordMsg
	fwdense []WordMsg
}

func (ob *ShardOutbox) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if ob.prof != "" {
		return fmt.Errorf("model: round %d [%s]: %s", ob.round, ob.prof, msg)
	}
	return fmt.Errorf("model: round %d: %s", ob.round, msg)
}

// fail records the error of the smallest failing node in the shard;
// the run surfaces the globally smallest one after the barrier.
func (sh *shard) fail(se *ShardedEngine, v int32, err error) {
	sh.errMu.Lock()
	if sh.errV < 0 || v < sh.errV {
		sh.errV, sh.err = v, err
	}
	sh.errMu.Unlock()
	se.errFlag.Store(true)
}

// SendWord is Outbox.SendWord on the sharded plane: same checks, same
// error strings (with global node ids), remote slots staged instead
// of written.
func (ob *ShardOutbox) SendWord(slot int, w uint64) {
	sh := ob.sh
	v := ob.v
	lo, hi := sh.off[v], sh.off[v+1]
	if slot < 0 || int32(slot) >= hi-lo {
		sh.fail(ob.se, v, ob.errf("node %d sent on absent slot %d (node has %d)", sh.lo+int64(v), slot, hi-lo))
		return
	}
	d := sh.dest[lo+int32(slot)]
	if d >= 0 {
		st := sh.stamp[ob.nxt]
		if st[d] == ob.want {
			sh.fail(ob.se, v, ob.errf("node %d sent twice on slot %d", sh.lo+int64(v), slot))
			return
		}
		sh.wbuf[ob.nxt][d] = w
		st[d] = ob.want
		return
	}
	xi := ^d
	if sh.xstamp[xi] == ob.want {
		sh.fail(ob.se, v, ob.errf("node %d sent twice on slot %d", sh.lo+int64(v), slot))
		return
	}
	sh.xw[xi] = w
	sh.xstamp[xi] = ob.want
}

// BroadcastWord is Outbox.BroadcastWord on the sharded plane: one
// pass over the slot row, unchecked overwrite.
func (ob *ShardOutbox) BroadcastWord(w uint64) {
	sh := ob.sh
	want := ob.want
	nb := sh.wbuf[ob.nxt]
	st := sh.stamp[ob.nxt]
	for s := sh.off[ob.v]; s < sh.off[ob.v+1]; s++ {
		if d := sh.dest[s]; d >= 0 {
			nb[d] = w
			st[d] = want
		} else {
			xi := ^d
			sh.xw[xi] = w
			sh.xstamp[xi] = want
		}
	}
}

// IDFunc assigns the global id NodeInfo.ID carries for node v; nil
// runs anonymously (ID = -1). See SeededIDs for a giant-host id
// assignment that needs no materialised table.
type IDFunc func(v int64) int

// Run executes a sharded word algorithm and streams no outputs:
// consume results with VisitStates (or Outputs for small hosts).
func (se *ShardedEngine) Run(ids IDFunc, algo ShardedWordAlgo, maxRounds int) (int, error) {
	rounds, _, err := se.run(ids, algo, maxRounds, nil)
	return rounds, err
}

// RunFaulty is Run under a fault schedule with the flat engine's
// exact semantics: fates, liveness and reorder draws use the global
// (round, slot) and (round, node) coordinates, so a sharded faulty
// run degrades identically to the unsharded run of the same
// algorithm. Faulty runs require the global node and slot counts to
// fit int32 (the Schedule coordinate width); clean runs do not.
func (se *ShardedEngine) RunFaulty(ids IDFunc, algo ShardedWordAlgo, maxRounds int, sched Schedule) (int, *FaultReport, error) {
	rounds, rep, err := se.run(ids, algo, maxRounds, sched)
	if err != nil {
		return 0, nil, err
	}
	if rep == nil {
		rep = &FaultReport{Profile: "clean"}
	}
	return rounds, rep, nil
}

// Outputs extracts every node's output into a slice — small hosts
// and differential tests only (it materialises n entries).
func (se *ShardedEngine) Outputs(algo ShardedWordAlgo) []Output {
	outs := make([]Output, se.nTotal)
	se.VisitStates(func(v int64, st uint64) {
		outs[int(v)] = algo.Out(&st)
	})
	return outs
}

// run is the sharded round-loop core: sequential global-order Init,
// then per round a step phase (workers claim whole shards; each
// shard's active sweep is sequential within it) and a barrier phase
// (exchange drain + worklist compaction, again shard-parallel), with
// error surfacing between them.
func (se *ShardedEngine) run(ids IDFunc, algo ShardedWordAlgo, maxRounds int, sched Schedule) (int, *FaultReport, error) {
	p := len(se.shards)
	if sched != nil {
		if se.nTotal > math.MaxInt32 || se.slots > math.MaxInt32 {
			return 0, nil, fmt.Errorf("model: faulty sharded runs need n and slot count within int32 fault coordinates (n=%d slots=%d)", se.nTotal, se.slots)
		}
	}
	prof := ""
	if sched != nil {
		prof = sched.String()
	}

	// Sequential Init in increasing global node order, letters built
	// into one reusable scratch row.
	letters := make([]view.Letter, 0, se.maxSlots)
	targets := make([]int64, 0, se.maxSlots)
	var outS, inS []ShardArc
	for _, sh := range se.shards {
		for v := int32(0); v < sh.n; v++ {
			gv := sh.lo + int64(v)
			outS, inS = se.src.AppendArcs(gv, outS[:0], inS[:0])
			letters, targets = mergeLetters(letters[:0], targets[:0], outS, inS)
			info := NodeInfo{ID: -1, Letters: letters}
			if ids != nil {
				info.ID = ids(gv)
			}
			sh.col[v] = algo.Init(gv, info)
			sh.halted[v] = false
		}
		sh.errV, sh.err = -1, nil
	}
	se.errFlag.Store(false)

	// Worklists (schedule-aware, as on the flat plane).
	for _, sh := range se.shards {
		if sched != nil {
			if sh.crashed == nil {
				sh.crashed = make([]bool, sh.n)
			} else {
				for v := range sh.crashed {
					sh.crashed[v] = false
				}
			}
		}
		active := sh.active[:0]
		for v := int32(0); v < sh.n; v++ {
			if sched != nil && sched.State(0, int32(sh.lo+int64(v))) == StateCrashed {
				sh.crashed[v] = true
				continue
			}
			active = append(active, v)
		}
		sh.active = active
		sh.activeN.Store(int64(len(active)))
	}

	base := se.tick
	var (
		round    int
		curArena int
		curWant  int64
		phase    int // 0: step, 1: drain+compact
		cursor   atomic.Int64

		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	defer func() {
		se.tick = base + int64(round) + 2
	}()

	step := se.stepClean(algo)
	if sched != nil {
		step = se.stepFaulty(algo, sched)
	}

	phaseWork := func(ob *ShardOutbox) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for {
			i := cursor.Add(1) - 1
			if i >= int64(p) {
				return
			}
			sh := se.shards[i]
			if phase == 0 {
				ob.sh = sh
				for _, v := range sh.active {
					step(sh, v, ob)
				}
			} else {
				se.drainAndCompact(int(i), round, curArena, curWant, sched)
			}
		}
	}

	workers := 0
	if p > 1 {
		workers = par.Reserve(min(par.N()-1, p-1))
	}
	defer par.Release(workers)
	obs := make([]*ShardOutbox, workers+1)
	for w := range obs {
		obs[w] = &ShardOutbox{se: se, prof: prof, wdense: make([]WordMsg, se.maxSlots)}
		if sched != nil {
			obs[w].fwdense = make([]WordMsg, 2*int(se.maxSlots))
		}
	}
	start := make([]chan struct{}, workers)
	for w := range start {
		start[w] = make(chan struct{}, 1)
		go func(ch chan struct{}, ob *ShardOutbox) {
			for range ch {
				ob.nxt = curArena ^ 1
				ob.want = curWant + 1
				ob.round = round
				phaseWork(ob)
				wg.Done()
			}
		}(start[w], obs[w])
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()
	masterOb := obs[workers]

	runPhase := func(ph int) {
		phase = ph
		cursor.Store(0)
		wg.Add(workers)
		for _, ch := range start {
			ch <- struct{}{}
		}
		masterOb.nxt = curArena ^ 1
		masterOb.want = curWant + 1
		masterOb.round = round
		phaseWork(masterOb)
		wg.Wait()
	}

	totalActive := se.nTotal
	if sched != nil {
		totalActive = 0
		for _, sh := range se.shards {
			totalActive += int64(len(sh.active))
		}
	}

	for ; round < maxRounds && totalActive > 0; round++ {
		if se.ctx != nil {
			if err := se.ctx.Err(); err != nil {
				if prof != "" {
					return 0, nil, fmt.Errorf("model: round %d [%s]: run cancelled: %w", round, prof, err)
				}
				return 0, nil, fmt.Errorf("model: round %d: run cancelled: %w", round, err)
			}
		}
		curArena = round & 1
		curWant = base + int64(round) + 1

		runPhase(0)
		if panicked != nil {
			panic(panicked)
		}
		if se.errFlag.Load() {
			for _, sh := range se.shards {
				sh.errMu.Lock()
				err := sh.err
				sh.errMu.Unlock()
				if err != nil {
					return 0, nil, err
				}
			}
		}
		runPhase(1)
		if panicked != nil {
			panic(panicked)
		}
		totalActive = 0
		for _, sh := range se.shards {
			totalActive += int64(len(sh.active))
		}
	}
	if totalActive > 0 {
		for _, sh := range se.shards {
			if len(sh.active) > 0 {
				v := sh.lo + int64(sh.active[0])
				if prof != "" {
					return 0, nil, fmt.Errorf("model: node %d did not halt within %d rounds [%s]", v, maxRounds, prof)
				}
				return 0, nil, fmt.Errorf("model: node %d did not halt within %d rounds", v, maxRounds)
			}
		}
	}
	var rep *FaultReport
	if sched != nil {
		rep = &FaultReport{Profile: prof}
		for _, ob := range obs {
			rep.Dropped += ob.dropped
			rep.Duplicated += ob.duped
			rep.Reordered += ob.reordered
			rep.DownSteps += ob.downSteps
		}
		rep.Crashed = make([]bool, se.nTotal)
		for _, sh := range se.shards {
			copy(rep.Crashed[sh.lo:sh.hi], sh.crashed)
		}
		for _, c := range rep.Crashed {
			if c {
				rep.NumCrashed++
			}
		}
	}
	return round, rep, nil
}

// stepClean is the clean sharded step: compact the node's live slots
// into the worker's scratch in slot (letter) order, then Step.
func (se *ShardedEngine) stepClean(algo ShardedWordAlgo) func(*shard, int32, *ShardOutbox) {
	return func(sh *shard, v int32, ob *ShardOutbox) {
		lo, hi := sh.off[v], sh.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := sh.stamp[cur]
		wb := sh.wbuf[cur]
		wd := ob.wdense
		k := 0
		for s := lo; s < hi; s++ {
			if st[s] == want {
				wd[k] = WordMsg{W: wb[s], Slot: s - lo}
				k++
			}
		}
		ob.v = v
		sh.halted[v] = algo.Step(&sh.col[v], ob.round, wd[:k], ob)
	}
}

// stepFaulty interposes the schedule with global coordinates: node
// states and reorders by global node id, per-delivery fates by global
// slot index — bit-for-bit the hashes the flat faulty path draws.
func (se *ShardedEngine) stepFaulty(algo ShardedWordAlgo, sched Schedule) func(*shard, int32, *ShardOutbox) {
	return func(sh *shard, v int32, ob *ShardOutbox) {
		round := ob.round
		gv := int32(sh.lo + int64(v))
		switch sched.State(round, gv) {
		case StateDown:
			ob.downSteps++
			return
		case StateCrashed:
			return
		}
		lo, hi := sh.off[v], sh.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := sh.stamp[cur]
		wb := sh.wbuf[cur]
		fd := ob.fwdense
		k := 0
		for s := lo; s < hi; s++ {
			if st[s] != want {
				continue
			}
			switch sched.Fate(round, int32(sh.slotBase+int64(s))) {
			case Drop:
				ob.dropped++
				continue
			case Duplicate:
				ob.duped++
				fd[k] = WordMsg{W: wb[s], Slot: s - lo}
				k++
			}
			fd[k] = WordMsg{W: wb[s], Slot: s - lo}
			k++
		}
		inbox := fd[:k]
		if seed := sched.Reorder(round, gv); seed != 0 && len(inbox) > 1 {
			shuffleWordMsgs(inbox, seed)
			ob.reordered++
		}
		ob.v = v
		sh.halted[v] = algo.Step(&sh.col[v], round, inbox, ob)
	}
}

// drainAndCompact is the barrier phase for destination shard d: pull
// every staged word aimed at d out of the source shards' exchange
// buffers into d's next-round arena, then compact d's worklist
// (halted nodes leave; on faulty runs nodes whose crash round arrived
// leave for good). Each destination slot is written by exactly one
// staging entry, so destination-parallel draining is race-free.
func (se *ShardedEngine) drainAndCompact(d, round, curArena int, curWant int64, sched Schedule) {
	dst := se.shards[d]
	nxt := curArena ^ 1
	want := curWant + 1
	wb := dst.wbuf[nxt]
	st := dst.stamp[nxt]
	delivered := int64(0)
	for _, src := range se.shards {
		xs, xe := src.xoff[d], src.xoff[d+1]
		for xi := xs; xi < xe; xi++ {
			if src.xstamp[xi] != want {
				continue
			}
			ds := src.xdst[xi]
			wb[ds] = src.xw[xi]
			st[ds] = want
			delivered++
		}
	}
	if delivered > 0 {
		dst.exchanged.Add(delivered)
	}
	nxtList := dst.spare[:0]
	if sched != nil {
		for _, v := range dst.active {
			if dst.halted[v] {
				continue
			}
			if sched.State(round+1, int32(dst.lo+int64(v))) == StateCrashed {
				dst.crashed[v] = true
				continue
			}
			nxtList = append(nxtList, v)
		}
	} else {
		for _, v := range dst.active {
			if !dst.halted[v] {
				nxtList = append(nxtList, v)
			}
		}
	}
	dst.spare = dst.active[:0]
	dst.active = nxtList
	dst.activeN.Store(int64(len(nxtList)))
}

// SeededIDs returns an IDFunc computing a seeded permutation of
// [0, n) without materialising a table: a 4-round Feistel permutation
// over the smallest even-bit-width domain covering n, cycle-walked
// back into range (every walk terminates because the start is already
// in range, so its cycle re-enters [0, n)). Ids are distinct and the
// maximum id is n-1 — exactly what Cole–Vishkin's id-space check
// wants at 10^8 nodes.
func SeededIDs(n int64, seed int64) IDFunc {
	bits := 2
	for int64(1)<<bits < n {
		bits += 2
	}
	half := uint(bits / 2)
	mask := uint64(1)<<half - 1
	perm := func(x uint64) uint64 {
		l, r := x>>half, x&mask
		for i := 0; i < 4; i++ {
			l, r = r, l^(splitmixModel(r+uint64(seed)+uint64(i)*0x9e3779b97f4a7c15)&mask)
		}
		return l<<half | r
	}
	return func(v int64) int {
		x := uint64(v)
		for {
			x = perm(x)
			if int64(x) < n {
				return int(x)
			}
		}
	}
}

// splitmixModel is the SplitMix64 finaliser (the fault scheduler's
// mixer, duplicated here to keep faults.go's hashes untouched).
func splitmixModel(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sortShardArcs label-sorts an arc row in place — for ShardSource
// implementations whose natural generation order is not label order.
func sortShardArcs(arcs []ShardArc) {
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].Label < arcs[j].Label })
}

// MaterializeSource builds the flat host a ShardSource generates —
// the bridge the implicit-vs-materialised differential tests and the
// unsharded comparison runs use. Only hosts within the int32 flat
// capacity can come back out; giant sources stay implicit.
func MaterializeSource(src ShardSource) (*Host, error) {
	n := src.N()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("model: source has %d nodes, past the flat-CSR capacity %d: host exceeds flat-CSR capacity, use shards", n, int64(math.MaxInt32))
	}
	b := digraph.NewBuilder(int(n), src.Alphabet())
	var out, in []ShardArc
	for v := int64(0); v < n; v++ {
		out, in = src.AppendArcs(v, out[:0], in[:0])
		for _, a := range out {
			if err := b.AddArc(int(v), int(a.To), a.Label); err != nil {
				return nil, fmt.Errorf("model: materialize: %w", err)
			}
		}
	}
	d := b.Build()
	g, err := d.Underlying()
	if err != nil {
		return nil, fmt.Errorf("model: materialize: %w", err)
	}
	return &Host{G: g, D: d}, nil
}
