package model

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/digraph"
	"repro/internal/host"
	"repro/internal/par"
)

// The sharded differential suite: for every workload the sharded
// plane must be byte-identical to the flat typed engine — same final
// states, same round counts, same fault reports, same error strings —
// at P=1 (where the sharded plane IS the flat plane) and at P=2 and
// P=8 (where cross-shard staging and the exchange drain carry a large
// fraction of the traffic). Runs repeat at par 1 and par 8 to cover
// both the master-only and the worker-pool paths.

// mustShardDiffHost resolves a registry descriptor into an
// engine-ready host, equipping plain graph families with the
// canonical port labelling.
func mustShardDiffHost(desc string) *Host {
	hh := host.MustParse(desc)
	if hh.D != nil {
		return &Host{D: hh.D, G: hh.G}
	}
	return HostFromGraph(hh.G)
}

// shardDiffHosts are the materialised differential workloads;
// implicit sources get their own test below.
func shardDiffHosts() map[string]*Host {
	out := map[string]*Host{}
	for _, desc := range []string{
		"petersen",
		"torus:4x4",
		"random-regular:d=3,n=16,seed=7",
		"dcycle:12",
		"shift-regular:d=4,n=18,seed=9",
	} {
		out[desc] = mustShardDiffHost(desc)
	}
	return out
}

// mixWordStep is an order-sensitive accumulator over the inbox: any
// difference in inbox order, content or timing changes every later
// state, so state equality pins the whole message history. The low 48
// bits mix; the high 16 carry the node's degree so the step can
// target slots without out-of-band tables.
const mixMask = uint64(1)<<48 - 1

func mixWordInit(id int, letters int) uint64 {
	return uint64(letters)<<48 | uint64(id+1)&mixMask
}

func mixWordStep(rounds int) func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
	return func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
		s := *state
		acc := s & mixMask
		for _, m := range inbox {
			acc = (acc*0x100000001b3 + m.W&mixMask + uint64(m.Slot) + 1) & mixMask
		}
		s = s&^mixMask | acc
		*state = s
		if round >= rounds {
			return true
		}
		deg := int(s >> 48)
		// Alternate a broadcast with a targeted send, so both send
		// paths cross shards.
		if round%2 == 0 {
			out.BroadcastWord(s)
		} else {
			out.SendWord(round%deg, s)
		}
		return false
	}
}

func flatMixAlgo(rounds int) WordAlgo {
	step := mixWordStep(rounds)
	return WordAlgo{
		Init: func(v int, info NodeInfo) uint64 { return mixWordInit(info.ID, len(info.Letters)) },
		Step: func(state *uint64, round int, inbox []WordMsg, out *Outbox) bool {
			return step(state, round, inbox, out)
		},
		Out: func(state *uint64) Output { return Output{} },
	}
}

func shardedMixAlgo(rounds int) ShardedWordAlgo {
	return ShardedWordAlgo{
		Init: func(v int64, info NodeInfo) uint64 { return mixWordInit(info.ID, len(info.Letters)) },
		Step: mixWordStep(rounds),
		Out:  func(state *uint64) Output { return Output{} },
	}
}

// diffIDs is a fixed non-monotone id assignment exercising the id
// path on both planes.
func diffIDs(n int) ([]int, IDFunc) {
	ids := make([]int, n)
	for v := 0; v < n; v++ {
		ids[v] = (v*7 + 3) % n
	}
	return ids, func(v int64) int { return int(ids[v]) }
}

var diffProfiles = []string{
	"clean",
	"lossy:p=0.3",
	"dup+reorder:p=0.25",
	"crash:f=4,by=3",
	"crash:f=3,by=2,recover=4",
}

// TestShardedByteIdentical is the tentpole differential: every
// workload × profile × P × par combination must reproduce the flat
// run exactly.
func TestShardedByteIdentical(t *testing.T) {
	const rounds = 9
	for desc, h := range shardDiffHosts() {
		n := h.G.N()
		ids, idf := diffIDs(n)
		for _, prof := range diffProfiles {
			p := MustParseProfile(prof)
			var wantCol []uint64
			var wantRounds int
			var wantRep *FaultReport
			{
				e := NewWordEngine(h)
				var err error
				wantCol, wantRounds, wantRep, err = e.RunStatesFaulty(ids, flatMixAlgo(rounds), 300, p.New(h, 42))
				if err != nil {
					t.Fatalf("%s/%s flat: %v", desc, prof, err)
				}
			}
			for _, shards := range []int{1, 2, 8} {
				for _, workers := range []int{1, 8} {
					name := fmt.Sprintf("%s/%s/P=%d/par=%d", desc, prof, shards, workers)
					old := par.Set(workers)
					se, err := NewShardedEngine(SourceOf(h), shards)
					if err != nil {
						par.Set(old)
						t.Fatalf("%s: %v", name, err)
					}
					gotRounds, gotRep, err := se.RunFaulty(idf, shardedMixAlgo(rounds), 300, p.New(h, 42))
					par.Set(old)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if gotRounds != wantRounds {
						t.Fatalf("%s: rounds %d, want %d", name, gotRounds, wantRounds)
					}
					se.VisitStates(func(v int64, st uint64) {
						if st != wantCol[v] {
							t.Fatalf("%s: node %d state %#x, want %#x", name, v, st, wantCol[v])
						}
					})
					if wantRep == nil {
						wantRep = &FaultReport{Profile: "clean"}
					}
					if gotRep.Dropped != wantRep.Dropped || gotRep.Duplicated != wantRep.Duplicated ||
						gotRep.Reordered != wantRep.Reordered || gotRep.DownSteps != wantRep.DownSteps ||
						gotRep.NumCrashed != wantRep.NumCrashed {
						t.Fatalf("%s: report %+v, want %+v", name, gotRep, wantRep)
					}
				}
			}
		}
	}
}

// TestShardedImplicitMatchesMaterialised runs the differential over
// implicit sources: the sharded run over ParseShard must equal the
// flat run over the materialised same source.
func TestShardedImplicitMatchesMaterialised(t *testing.T) {
	const rounds = 7
	for _, desc := range []string{"cycle:25", "dcycle:25", "torus:5x5", "shift-regular:d=4,n=26,seed=3"} {
		src, err := host.ParseShard(desc)
		if err != nil {
			t.Fatal(err)
		}
		h, err := MaterializeSource(src)
		if err != nil {
			t.Fatal(err)
		}
		n := h.G.N()
		ids, idf := diffIDs(n)
		e := NewWordEngine(h)
		wantCol, wantRounds, err := e.RunStates(ids, flatMixAlgo(rounds), 300)
		if err != nil {
			t.Fatalf("%s flat: %v", desc, err)
		}
		for _, shards := range []int{1, 3, 8} {
			se, err := NewShardedEngine(src, shards)
			if err != nil {
				t.Fatalf("%s P=%d: %v", desc, shards, err)
			}
			gotRounds, err := se.Run(idf, shardedMixAlgo(rounds), 300)
			if err != nil {
				t.Fatalf("%s P=%d: %v", desc, shards, err)
			}
			if gotRounds != wantRounds {
				t.Fatalf("%s P=%d: rounds %d, want %d", desc, shards, gotRounds, wantRounds)
			}
			se.VisitStates(func(v int64, st uint64) {
				if st != wantCol[v] {
					t.Fatalf("%s P=%d: node %d state %#x, want %#x", desc, shards, v, st, wantCol[v])
				}
			})
		}
	}
}

// TestShardedExchangeLetterOrder pins the exchange-buffer guarantee:
// however many source shards feed a node, its inbox is compacted in
// slot (letter) order with each slot carrying exactly its arc peer's
// word. Every node broadcasts its own id+1 in round 0; in round 1
// each node checks its inbox against the expected peer table.
func TestShardedExchangeLetterOrder(t *testing.T) {
	for _, desc := range []string{"cycle:24", "torus:4x6"} {
		src, err := host.ParseShard(desc)
		if err != nil {
			t.Fatal(err)
		}
		// Expected peer per (node, slot), derived from the source.
		n := int(src.N())
		expect := make([][]uint64, n)
		var out, in []digraph.SourceArc
		for v := 0; v < n; v++ {
			out, in = src.AppendArcs(int64(v), out[:0], in[:0])
			i, j := 0, 0
			for i < len(out) || j < len(in) {
				if i < len(out) && (j >= len(in) || out[i].Label <= in[j].Label) {
					expect[v] = append(expect[v], uint64(out[i].To)+1)
					i++
				} else {
					expect[v] = append(expect[v], uint64(in[j].To)+1)
					j++
				}
			}
		}
		for _, shards := range []int{2, 5, 8} {
			se, err := NewShardedEngine(src, shards)
			if err != nil {
				t.Fatal(err)
			}
			fail := make(chan string, 1)
			algo := ShardedWordAlgo{
				Init: func(v int64, info NodeInfo) uint64 { return uint64(v) },
				Step: func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
					v := *state
					if round == 0 {
						out.BroadcastWord(v + 1)
						return false
					}
					want := expect[v]
					if len(inbox) != len(want) {
						select {
						case fail <- fmt.Sprintf("node %d: %d msgs, want %d", v, len(inbox), len(want)):
						default:
						}
						return true
					}
					for k, m := range inbox {
						if int(m.Slot) != k || m.W != want[k] {
							select {
							case fail <- fmt.Sprintf("node %d slot %d: got (slot=%d w=%d), want (slot=%d w=%d)",
								v, k, m.Slot, m.W, k, want[k]):
							default:
							}
						}
					}
					return true
				},
				Out: func(state *uint64) Output { return Output{} },
			}
			if _, err := se.Run(nil, algo, 4); err != nil {
				t.Fatalf("%s P=%d: %v", desc, shards, err)
			}
			select {
			case msg := <-fail:
				t.Fatalf("%s P=%d: %s", desc, shards, msg)
			default:
			}
		}
	}
}

// TestShardedErrorParity: protocol violations surface with the flat
// engine's exact error strings and node selection, at every P.
func TestShardedErrorParity(t *testing.T) {
	h := mustShardDiffHost("torus:4x4")
	src := SourceOf(h)

	flatErr := func(algo WordAlgo) string {
		e := NewWordEngine(h)
		_, _, err := e.RunStates(nil, algo, 8)
		if err == nil {
			return ""
		}
		return err.Error()
	}
	shardedErr := func(p int, algo ShardedWordAlgo) string {
		se, err := NewShardedEngine(src, p)
		if err != nil {
			t.Fatal(err)
		}
		_, err = se.Run(nil, algo, 8)
		if err == nil {
			return ""
		}
		return err.Error()
	}

	cases := []struct {
		name    string
		flat    func(state *uint64, round int, inbox []WordMsg, out WordSender) bool
		substrs []string
	}{
		{
			name: "absent slot",
			flat: func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
				out.SendWord(99, 1)
				return true
			},
			substrs: []string{"absent slot 99"},
		},
		{
			name: "double send",
			flat: func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
				out.SendWord(0, 1)
				out.SendWord(0, 2)
				return true
			},
			substrs: []string{"sent twice on slot 0"},
		},
		{
			name: "no halt",
			flat: func(state *uint64, round int, inbox []WordMsg, out WordSender) bool {
				return false
			},
			substrs: []string{"did not halt within 8 rounds"},
		},
	}
	for _, tc := range cases {
		want := flatErr(WordAlgo{
			Init: func(v int, info NodeInfo) uint64 { return 0 },
			Step: func(state *uint64, round int, inbox []WordMsg, out *Outbox) bool {
				return tc.flat(state, round, inbox, out)
			},
			Out: func(state *uint64) Output { return Output{} },
		})
		if want == "" {
			t.Fatalf("%s: flat run did not fail", tc.name)
		}
		for _, sub := range tc.substrs {
			if !strings.Contains(want, sub) {
				t.Fatalf("%s: flat error %q missing %q", tc.name, want, sub)
			}
		}
		for _, p := range []int{1, 2, 8} {
			got := shardedErr(p, ShardedWordAlgo{
				Init: func(v int64, info NodeInfo) uint64 { return 0 },
				Step: tc.flat,
				Out:  func(state *uint64) Output { return Output{} },
			})
			if got != want {
				t.Errorf("%s P=%d: error %q, want %q", tc.name, p, got, want)
			}
		}
	}
}

// TestShardedEngineReuse: like the flat engine, one sharded engine
// serves many runs with monotone stamps — a second run must see no
// ghost of the first.
func TestShardedEngineReuse(t *testing.T) {
	src, err := host.ParseShard("cycle:30")
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := MaterializeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ids, idf := diffIDs(h.G.N())
	e := NewWordEngine(h)
	for trial := 0; trial < 3; trial++ {
		rounds := 5 + trial
		wantCol, _, err := e.RunStates(ids, flatMixAlgo(rounds), 300)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := se.Run(idf, shardedMixAlgo(rounds), 300); err != nil {
			t.Fatal(err)
		}
		se.VisitStates(func(v int64, st uint64) {
			if st != wantCol[v] {
				t.Fatalf("trial %d: node %d state %#x, want %#x", trial, v, st, wantCol[v])
			}
		})
	}
}

// TestShardedStats: construction-time stats are exact on a host whose
// cross-shard arc count is known in closed form, and run counters
// move.
func TestShardedStats(t *testing.T) {
	src, err := host.ParseShard("dcycle:40")
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardedEngine(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	stats := se.Stats()
	if len(stats) != 4 {
		t.Fatalf("stats for %d shards", len(stats))
	}
	var slots, xout int64
	for i, s := range stats {
		if s.Shard != i || s.Hi-s.Lo != 10 || s.Slots != 20 {
			t.Fatalf("shard %d stats %+v", i, s)
		}
		slots += s.Slots
		xout += s.ExchangeOut
	}
	if slots != 80 {
		t.Fatalf("total slots %d, want 80", slots)
	}
	// A 4-sharded directed cycle has 4 boundary edges, each
	// contributing two cross-shard arc directions (the forward message
	// and the backward one live in different shards' staging).
	if xout != 8 {
		t.Fatalf("total exchange slots %d, want 8", xout)
	}
	if _, err := se.Run(nil, shardedMixAlgo(3), 300); err != nil {
		t.Fatal(err)
	}
	exchanged := int64(0)
	for _, s := range se.Stats() {
		exchanged += s.Exchanged
	}
	if exchanged == 0 {
		t.Fatal("no exchange traffic recorded on a sharded cycle")
	}
}

// TestShardedConstructionGuards: invalid shapes fail loudly.
func TestShardedConstructionGuards(t *testing.T) {
	h := mustShardDiffHost("petersen")
	if _, err := NewShardedEngine(SourceOf(h), 0); err == nil {
		t.Fatal("P=0 accepted")
	}
	// More shards than nodes clamps rather than fails.
	se, err := NewShardedEngine(SourceOf(h), 64)
	if err != nil {
		t.Fatal(err)
	}
	if se.Shards() != 10 {
		t.Fatalf("clamped shards = %d, want 10", se.Shards())
	}
	// Faulty runs on over-int32 hosts are rejected (coordinates).
	big, err := host.ParseShard("dcycle:3000000000")
	if err != nil {
		t.Fatal(err)
	}
	_ = big
}

// badSource is deliberately non-reciprocal: node 0 claims an out-arc
// to 1, node 1 claims its in-arc comes from 2.
type badSource struct{}

func (badSource) N() int64      { return 3 }
func (badSource) Alphabet() int { return 1 }
func (badSource) Degree(v int64) (out, in int) {
	switch v {
	case 0:
		return 1, 0
	case 1:
		return 0, 1
	default:
		return 0, 0
	}
}
func (badSource) AppendArcs(v int64, out, in []digraph.SourceArc) ([]digraph.SourceArc, []digraph.SourceArc) {
	switch v {
	case 0:
		out = append(out, digraph.SourceArc{To: 1, Label: 0})
	case 1:
		in = append(in, digraph.SourceArc{To: 2, Label: 0})
	}
	return out, in
}

// TestShardedRejectsInconsistentSource: reciprocity is verified at
// construction, not discovered as corruption mid-run.
func TestShardedRejectsInconsistentSource(t *testing.T) {
	if _, err := NewShardedEngine(badSource{}, 2); err == nil ||
		!strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("inconsistent source: %v", err)
	}
}
