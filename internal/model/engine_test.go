package model

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/par"
	"repro/internal/view"
)

// engineHosts is the differential host set: the fixed hosts of the
// paper plus a registry Cayley host (which carries its own labelling).
func engineHosts(t *testing.T) map[string]*Host {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	hosts := map[string]*Host{
		"petersen":      HostFromGraph(graph.Petersen()),
		"torus6x6":      HostFromGraph(graph.Torus(6, 6)),
		"randomregular": HostFromGraph(graph.RandomRegular(18, 3, rng)),
	}
	ch := host.MustParse("cayley:H,level=2,m=4,k=2,seed=1")
	hosts["cayley"] = &Host{D: ch.D, G: ch.G}
	return hosts
}

// floodMaxAlgo is a multi-round RoundAlgo exercising ids, letters and
// staggered halting: every node floods the largest id it has heard for
// a node-dependent number of rounds, then reports whether it ever
// heard an id larger than its own.
func floodMaxAlgo() RoundAlgo {
	type st struct {
		letters []view.Letter
		id      int
		best    int
		ticks   int
	}
	return RoundAlgo{
		Init: func(info NodeInfo) any {
			return &st{letters: info.Letters, id: info.ID, best: info.ID, ticks: 1 + info.ID%4}
		},
		Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) {
			s := state.(*st)
			for _, m := range inbox {
				if v := m.Data.(int); v > s.best {
					s.best = v
				}
			}
			if s.ticks == 0 {
				return s, nil, true
			}
			s.ticks--
			out := make([]Msg, 0, len(s.letters))
			for _, l := range s.letters {
				out = append(out, Msg{L: l, Data: s.best})
			}
			return s, out, false
		},
		Out: func(state any) Output {
			s := state.(*st)
			return Output{Member: s.best > s.id}
		},
	}
}

// TestEngineDifferentialFlood pins RunRounds (engine) against
// RunRoundsReference: outputs and round counts byte-identical on every
// differential host, at parallelism 1 and 8.
func TestEngineDifferentialFlood(t *testing.T) {
	for name, h := range engineHosts(t) {
		n := h.G.N()
		rng := rand.New(rand.NewSource(int64(n)))
		ids := rng.Perm(4 * n)[:n]
		refStates, refRounds, err := RunRoundsReference(h, ids, floodMaxAlgo(), 16)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refOuts := make([]Output, n)
		for v, st := range refStates {
			refOuts[v] = floodMaxAlgo().Out(st)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			outs, rounds, err := RunRounds(h, ids, floodMaxAlgo(), 16)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: engine: %v", name, p, err)
			}
			if rounds != refRounds {
				t.Fatalf("%s p=%d: %d rounds, reference %d", name, p, rounds, refRounds)
			}
			if !reflect.DeepEqual(outs, refOuts) {
				t.Fatalf("%s p=%d: outputs differ from reference", name, p)
			}
		}
	}
}

// TestEngineDifferentialGather pins the engine against the reference
// on GatherViews: identical interned trees (pointer equality) and
// identical round counts, across radii and parallelism.
func TestEngineDifferentialGather(t *testing.T) {
	for name, h := range engineHosts(t) {
		for r := 0; r <= 2; r++ {
			refStates, refRounds, err := RunRoundsReference(h, nil, GatherViews(r), r+2)
			if err != nil {
				t.Fatalf("%s r=%d: reference: %v", name, r, err)
			}
			for _, p := range []int{1, 8} {
				old := par.Set(p)
				states, rounds, err := RunRoundsStates(h, nil, GatherViews(r), r+2)
				par.Set(old)
				if err != nil {
					t.Fatalf("%s r=%d p=%d: engine: %v", name, r, p, err)
				}
				if rounds != refRounds {
					t.Fatalf("%s r=%d p=%d: %d rounds, reference %d", name, r, p, rounds, refRounds)
				}
				for v := range states {
					if states[v].(*GatherState).Tree != refStates[v].(*GatherState).Tree {
						t.Fatalf("%s r=%d p=%d node %d: gathered tree differs", name, r, p, v)
					}
				}
			}
		}
	}
}

// TestSimulatePORoundsDifferential: the engine-driven operational PO
// path coincides with SimulatePO and RunPO on every differential host.
func TestSimulatePORoundsDifferential(t *testing.T) {
	alg := FuncPO{R: 1, Fn: func(tr *view.Tree) Output {
		return Output{Member: tr.NumChildren()%2 == 0, Letters: tr.Letters()}
	}}
	for name, h := range engineHosts(t) {
		direct, err := RunPO(h, alg, EdgeKind)
		if err != nil {
			t.Fatalf("%s: RunPO: %v", name, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			sim, err := SimulatePORounds(h, alg, EdgeKind)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: SimulatePORounds: %v", name, p, err)
			}
			a, b := direct.EdgeSet(), sim.EdgeSet()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s p=%d: edge sets differ", name, p)
			}
		}
	}
}

// TestEngineInboxLetterOrder: inboxes arrive sorted by the receiver's
// letter order whatever the worker schedule.
func TestEngineInboxLetterOrder(t *testing.T) {
	defer par.Set(par.Set(8))
	h := HostFromGraph(graph.Torus(6, 6))
	ordered := RoundAlgo{
		Init: func(info NodeInfo) any { ls := info.Letters; return &ls },
		Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) {
			if round == 1 {
				for i := 1; i < len(inbox); i++ {
					if !inbox[i-1].L.Less(inbox[i].L) {
						panic(fmt.Sprintf("inbox out of letter order: %v after %v", inbox[i].L, inbox[i-1].L))
					}
				}
				return state, nil, true
			}
			out := make([]Msg, 0, 4)
			for _, l := range *state.(*[]view.Letter) {
				out = append(out, Msg{L: l, Data: round})
			}
			return state, out, false
		},
		Out: func(any) Output { return Output{} },
	}
	if _, _, err := RunRounds(h, nil, ordered, 4); err != nil {
		t.Fatal(err)
	}
}

// TestEngineErrorsMatchReference: the error paths produce the
// reference's exact messages, deterministically.
func TestEngineErrorsMatchReference(t *testing.T) {
	h := HostFromGraph(graph.Cycle(5))
	badLetter := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			return st, []Msg{{L: view.Letter{Label: 99}}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	_, _, errE := RunRounds(h, nil, badLetter, 3)
	_, _, errR := RunRoundsReference(h, nil, badLetter, 3)
	if errE == nil || errR == nil || errE.Error() != errR.Error() {
		t.Errorf("absent-letter errors differ: %v vs %v", errE, errR)
	}

	never := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) { return st, nil, false },
		Out:  func(any) Output { return Output{} },
	}
	_, _, errE = RunRounds(h, nil, never, 4)
	_, _, errR = RunRoundsReference(h, nil, never, 4)
	if errE == nil || errR == nil || errE.Error() != errR.Error() {
		t.Errorf("non-halt errors differ: %v vs %v", errE, errR)
	}
}

// TestEngineDuplicateSend: the engine's one-message-per-letter
// contract is enforced with a clear error.
func TestEngineDuplicateSend(t *testing.T) {
	h := HostFromGraph(graph.Cycle(4))
	dup := RoundAlgo{
		Init: func(info NodeInfo) any { return info.Letters[0] },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			l := st.(view.Letter)
			return st, []Msg{{L: l, Data: 1}, {L: l, Data: 2}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	if _, _, err := RunRounds(h, nil, dup, 3); err == nil {
		t.Error("duplicate send accepted")
	}
}

// pulseAlgo is the zero-allocation steady-state workload: every node
// broadcasts a pre-boxed payload on all its letters for a fixed
// number of rounds. States are pre-allocated and handed out by the
// sequential Init, so steady-state rounds allocate nothing.
type pulseState struct {
	letters []view.Letter
	left    int
}

func pulseAlgo(states []pulseState, rounds int) (EngineAlgo, func()) {
	next := 0
	reset := func() {
		next = 0
		for i := range states {
			states[i].left = rounds
		}
	}
	algo := EngineAlgo{
		Init: func(info NodeInfo) any {
			s := &states[next]
			next++
			s.letters = info.Letters
			return s
		},
		Step: func(state any, round int, inbox []Msg, out *Outbox) (any, bool) {
			s := state.(*pulseState)
			if s.left == 0 {
				return s, true
			}
			s.left--
			for _, l := range s.letters {
				out.Send(l, s)
			}
			return s, false
		},
		Out: func(any) Output { return Output{} },
	}
	return algo, reset
}

// TestEngineSteadyStateAllocs: after arena warm-up, a steady-state
// round allocates nothing. Measured as the allocation difference
// between a long run and a short run on one engine (per-run setup —
// Init, letter slices — cancels exactly).
func TestEngineSteadyStateAllocs(t *testing.T) {
	defer par.Set(par.Set(1))
	h := HostFromGraph(graph.Cycle(512))
	e := NewEngine(h)
	states := make([]pulseState, h.G.N())
	runFor := func(rounds int) func() {
		return func() {
			algo, reset := pulseAlgo(states, rounds)
			reset()
			if _, _, err := e.RunStates(nil, algo, rounds+2); err != nil {
				t.Fatal(err)
			}
		}
	}
	runFor(8)() // warm-up
	short := testing.AllocsPerRun(3, runFor(8))
	long := testing.AllocsPerRun(3, runFor(264))
	if perRound := (long - short) / 256; perRound > 0.01 {
		t.Errorf("steady-state round allocates: %.3f allocs/round (short run %.0f, long run %.0f)", perRound, short, long)
	}
}

// TestEngineReuseAfterError: a run that fails mid-way (absent letter,
// non-halt) must not poison the plane — the tick advances past every
// stamp the failed run wrote, so the next run on the same engine
// reads no stale messages.
func TestEngineReuseAfterError(t *testing.T) {
	h := HostFromGraph(graph.Cycle(6))
	e := NewEngine(h)
	bad := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			return st, []Msg{{L: view.Letter{Label: 99}}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	never := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			return st, []Msg{{L: view.Letter{Label: 0}}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	rng := rand.New(rand.NewSource(9))
	ids := rng.Perm(24)[:6]
	want, wantRounds, err := RunRounds(h, ids, floodMaxAlgo(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := e.RunStates(ids, bad.engine(), 4); err == nil {
			t.Fatal("absent letter accepted")
		}
		if _, _, err := e.RunStates(ids, never.engine(), 4); err == nil {
			t.Fatal("non-halting run accepted")
		}
		outs, rounds, err := e.Run(ids, floodMaxAlgo().engine(), 16)
		if err != nil {
			t.Fatalf("run after errors: %v", err)
		}
		if rounds != wantRounds || !reflect.DeepEqual(outs, want) {
			t.Fatalf("iteration %d: results diverge after failed runs", i)
		}
	}
}

// TestEngineReuse: one engine executes many runs (stamps are monotone,
// arenas are never cleared) with results identical to fresh engines.
func TestEngineReuse(t *testing.T) {
	h := HostFromGraph(graph.Petersen())
	e := NewEngine(h)
	rng := rand.New(rand.NewSource(3))
	ids := rng.Perm(40)[:10]
	var first []Output
	for i := 0; i < 5; i++ {
		outs, rounds, err := e.Run(ids, floodMaxAlgo().engine(), 16)
		if err != nil {
			t.Fatal(err)
		}
		fresh, freshRounds, err := RunRounds(h, ids, floodMaxAlgo(), 16)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != freshRounds || !reflect.DeepEqual(outs, fresh) {
			t.Fatalf("run %d on reused engine differs from fresh engine", i)
		}
		if i == 0 {
			first = append([]Output(nil), outs...)
		} else if !reflect.DeepEqual(outs, first) {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}
