package model

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/view"
)

// TestParseProfile: the descriptor grammar accepts the canned
// families and rejects everything else with the full listing, exactly
// like the host registry.
func TestParseProfile(t *testing.T) {
	for _, desc := range []string{
		"clean",
		"lossy",
		"lossy:p=0.5",
		"dup+reorder",
		"dup+reorder:p=0.1",
		"crash:f=3",
		"crash:f=3,by=4,recover=2",
		"churn",
		"churn:p=0.2,window=2",
		"adversarial",
		"adversarial:p=0.1,f=2,by=4",
	} {
		p, err := ParseProfile(desc)
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", desc, err)
			continue
		}
		if p.Desc != desc {
			t.Errorf("ParseProfile(%q).Desc = %q", desc, p.Desc)
		}
	}
	if s := MustParseProfile("clean").New(nil, 1); s != nil {
		t.Errorf("clean profile built a non-nil schedule %v", s)
	}

	for _, bad := range []string{
		"nosuch",
		"nosuch:p=0.1",
		"lossy:p=1.5",
		"lossy:p=x",
		"lossy:q=0.1",     // unused argument
		"lossy:p=0.1,p=1", // duplicate argument
		"crash",           // missing f
		"crash:f=-1",
		"churn:window=0",
		"lossy:p",
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
	_, err := ParseProfile("nosuch:p=0.1")
	if err == nil || !strings.Contains(err.Error(), "fault profiles:") ||
		!strings.Contains(err.Error(), "lossy[:p=<prob>]") {
		t.Errorf("unknown-profile error does not list the grammar: %v", err)
	}
}

// TestScheduleDeterminism: every Schedule decision is a pure function
// of (seed, coordinates) — two bindings of the same profile agree
// everywhere, and the crash/churn state is monotone where promised.
func TestScheduleDeterminism(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	for _, desc := range []string{"lossy:p=0.3", "dup+reorder", "crash:f=5,by=6", "churn:p=0.3,window=2", "adversarial:p=0.2,f=3"} {
		a := MustParseProfile(desc).New(h, 42)
		b := MustParseProfile(desc).New(h, 42)
		other := MustParseProfile(desc).New(h, 43)
		differs := false
		for round := 0; round < 8; round++ {
			for s := int32(0); s < 144; s++ {
				if a.Fate(round, s) != b.Fate(round, s) {
					t.Fatalf("%s: Fate(%d,%d) differs between identical bindings", desc, round, s)
				}
				if a.Fate(round, s) != other.Fate(round, s) {
					differs = true
				}
			}
			for v := int32(0); v < 36; v++ {
				if a.State(round, v) != b.State(round, v) {
					t.Fatalf("%s: State(%d,%d) differs between identical bindings", desc, round, v)
				}
				if a.Reorder(round, v) != b.Reorder(round, v) {
					t.Fatalf("%s: Reorder(%d,%d) differs between identical bindings", desc, round, v)
				}
			}
		}
		if desc == "lossy:p=0.3" && !differs {
			t.Errorf("%s: seeds 42 and 43 drew identical fates everywhere", desc)
		}
	}
	// Crash-stop is monotone: once crashed, crashed forever.
	s := MustParseProfile("crash:f=10,by=4").New(h, 7)
	for v := int32(0); v < 36; v++ {
		crashed := false
		for round := 0; round < 12; round++ {
			st := s.State(round, v)
			if crashed && st != StateCrashed {
				t.Fatalf("node %d un-crashed at round %d", v, round)
			}
			crashed = crashed || st == StateCrashed
		}
	}
}

// TestCleanFaultyPinsReference is the satellite differential pin: a
// RunStatesFaulty run with a nil (clean) schedule produces outputs,
// round counts and error strings byte-identical to
// RunRoundsReference, and its report is all-zero.
func TestCleanFaultyPinsReference(t *testing.T) {
	for name, h := range engineHosts(t) {
		n := h.G.N()
		ids := rand.New(rand.NewSource(int64(n))).Perm(4 * n)[:n]
		refStates, refRounds, err := RunRoundsReference(h, ids, floodMaxAlgo(), 16)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		refOuts := make([]Output, n)
		for v, st := range refStates {
			refOuts[v] = floodMaxAlgo().Out(st)
		}
		outs, rounds, rep, err := RunRoundsFaulty(h, ids, floodMaxAlgo(), 16, nil)
		if err != nil {
			t.Fatalf("%s: faulty-clean: %v", name, err)
		}
		if rounds != refRounds || !reflect.DeepEqual(outs, refOuts) {
			t.Fatalf("%s: clean faulty run differs from reference", name)
		}
		if rep.Profile != "clean" || rep.Dropped != 0 || rep.Duplicated != 0 ||
			rep.Reordered != 0 || rep.DownSteps != 0 || rep.NumCrashed != 0 || rep.Crashed != nil {
			t.Fatalf("%s: clean report not all-zero: %+v", name, rep)
		}
	}

	// Error strings: engine (clean schedule) == reference, byte for byte.
	h := HostFromGraph(graph.Cycle(5))
	badLetter := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			return st, []Msg{{L: view.Letter{Label: 99}}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	_, _, _, errF := RunRoundsFaulty(h, nil, badLetter, 3, nil)
	_, _, errR := RunRoundsReference(h, nil, badLetter, 3)
	if errF == nil || errR == nil || errF.Error() != errR.Error() {
		t.Errorf("absent-letter errors differ: %v vs %v", errF, errR)
	}
}

// TestErrorFormats asserts the exact error formats: every engine error
// names the round, and faulty runs append the profile descriptor.
func TestErrorFormats(t *testing.T) {
	h := HostFromGraph(graph.Cycle(5))
	badAt := func(round int) RoundAlgo {
		return RoundAlgo{
			Init: func(info NodeInfo) any { ls := info.Letters; return &ls },
			Step: func(st any, r int, inbox []Msg) (any, []Msg, bool) {
				if r == round {
					return st, []Msg{{L: view.Letter{Label: 99}}}, false
				}
				return st, []Msg{{L: (*st.(*[]view.Letter))[0], Data: r}}, false
			},
			Out: func(any) Output { return Output{} },
		}
	}
	_, _, err := RunRounds(h, nil, badAt(2), 6)
	want := "model: round 2: node 0 sent on absent letter 99"
	if err == nil || err.Error() != want {
		t.Errorf("clean absent-letter error = %v, want %q", err, want)
	}
	sched := MustParseProfile("lossy:p=0").New(h, 1)
	_, _, _, err = RunRoundsFaulty(h, nil, badAt(2), 6, sched)
	want = "model: round 2 [lossy:p=0]: node 0 sent on absent letter 99"
	if err == nil || err.Error() != want {
		t.Errorf("faulty absent-letter error = %v, want %q", err, want)
	}

	never := RoundAlgo{
		Init: func(NodeInfo) any { return nil },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) { return st, nil, false },
		Out:  func(any) Output { return Output{} },
	}
	_, _, err = RunRounds(h, nil, never, 4)
	want = "model: node 0 did not halt within 4 rounds"
	if err == nil || err.Error() != want {
		t.Errorf("clean non-halt error = %v, want %q", err, want)
	}
	_, _, _, err = RunRoundsFaulty(h, nil, never, 4, sched)
	want = "model: node 0 did not halt within 4 rounds [lossy:p=0]"
	if err == nil || err.Error() != want {
		t.Errorf("faulty non-halt error = %v, want %q", err, want)
	}

	dup := RoundAlgo{
		Init: func(info NodeInfo) any { return info.Letters[0] },
		Step: func(st any, round int, inbox []Msg) (any, []Msg, bool) {
			l := st.(view.Letter)
			return st, []Msg{{L: l, Data: 1}, {L: l, Data: 2}}, false
		},
		Out: func(any) Output { return Output{} },
	}
	_, _, err = RunRounds(h, nil, dup, 3)
	if err == nil || !strings.HasPrefix(err.Error(), "model: round 0: node ") ||
		!strings.Contains(err.Error(), "sent twice on letter") {
		t.Errorf("double-send error lacks round prefix: %v", err)
	}
}

// TestFaultyDeterministicAcrossWorkers: a faulty run is byte-identical
// at parallelism 1 and 8 — fates are hashes of coordinates, not draws
// from a shared stream.
func TestFaultyDeterministicAcrossWorkers(t *testing.T) {
	for _, desc := range []string{"lossy:p=0.2", "dup+reorder", "crash:f=6,by=4", "churn:p=0.3,window=2", "adversarial:p=0.1,f=3"} {
		h := HostFromGraph(graph.Torus(8, 8))
		n := h.G.N()
		ids := rand.New(rand.NewSource(1)).Perm(4 * n)[:n]
		sched := MustParseProfile(desc).New(h, 99)
		type result struct {
			outs   []Output
			rounds int
			rep    FaultReport
		}
		var results [2]result
		for i, p := range []int{1, 8} {
			old := par.Set(p)
			outs, rounds, rep, err := RunRoundsFaulty(h, ids, floodMaxAlgo(), 300, sched)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: %v (reproducer: seed=99, profile=%s)", desc, p, err, desc)
			}
			results[i] = result{outs: append([]Output(nil), outs...), rounds: rounds, rep: *rep}
		}
		if results[0].rounds != results[1].rounds ||
			!reflect.DeepEqual(results[0].outs, results[1].outs) ||
			!reflect.DeepEqual(results[0].rep, results[1].rep) {
			t.Errorf("%s: parallel run differs from sequential (reproducer: seed=99, profile=%s)", desc, desc)
		}
	}
}

// TestCrashProfiles: crash-stop removes exactly f nodes permanently;
// crash-recover brings them back (no crashes, down-steps instead).
func TestCrashProfiles(t *testing.T) {
	h := HostFromGraph(graph.Cycle(64))
	ids := rand.New(rand.NewSource(5)).Perm(256)[:64]
	_, _, rep, err := RunRoundsFaulty(h, ids, floodMaxAlgo(), 300, MustParseProfile("crash:f=7,by=3").New(h, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumCrashed != 7 {
		t.Errorf("crash-stop crashed %d nodes, want 7", rep.NumCrashed)
	}
	count := 0
	for v := range rep.Crashed {
		if rep.CrashedNode(v) {
			count++
		}
	}
	if count != 7 {
		t.Errorf("Crashed marks %d nodes, want 7", count)
	}

	_, _, rep, err = RunRoundsFaulty(h, ids, floodMaxAlgo(), 300, MustParseProfile("crash:f=7,by=3,recover=2").New(h, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumCrashed != 0 {
		t.Errorf("crash-recover crashed %d nodes permanently", rep.NumCrashed)
	}
	if rep.DownSteps == 0 {
		t.Error("crash-recover run recorded no down-steps")
	}
	if rep.Survivors(64) != 64 {
		t.Errorf("Survivors = %d, want 64", rep.Survivors(64))
	}
}

// TestFaultCounters: each profile's report shows the faults it is
// supposed to inject — and only those.
func TestFaultCounters(t *testing.T) {
	h := HostFromGraph(graph.Torus(8, 8))
	run := func(desc string) *FaultReport {
		t.Helper()
		sched := MustParseProfile(desc).New(h, 11)
		_, _, rep, err := RunRoundsFaulty(h, nil, GatherViews(3), 300, sched)
		if err != nil {
			t.Fatalf("%s: %v (reproducer: seed=11, profile=%s)", desc, err, desc)
		}
		return rep
	}
	if rep := run("lossy:p=0.3"); rep.Dropped == 0 || rep.Duplicated != 0 || rep.Reordered != 0 {
		t.Errorf("lossy report: %+v", rep)
	}
	if rep := run("dup+reorder"); rep.Duplicated == 0 || rep.Reordered == 0 || rep.Dropped != 0 {
		t.Errorf("dup+reorder report: %+v", rep)
	}
	if rep := run("churn:p=0.4,window=1"); rep.DownSteps == 0 || rep.NumCrashed != 0 {
		t.Errorf("churn report: %+v", rep)
	}
	if rep := run("adversarial:p=0.3,f=4,by=2"); rep.Dropped == 0 || rep.NumCrashed != 4 {
		t.Errorf("adversarial report: %+v", rep)
	}
}

// TestSimulatePORoundsFaulty: the clean schedule reproduces
// SimulatePORounds exactly; dup+reorder survives the view assembly
// (duplicate letters deduplicated, permuted inboxes re-sorted by
// NewTree) and still reproduces the clean solution, because view
// assembly is order-insensitive and duplication-idempotent.
func TestSimulatePORoundsFaulty(t *testing.T) {
	alg := FuncPO{R: 2, Fn: func(tr *view.Tree) Output {
		return Output{Member: tr.NumChildren()%2 == 0}
	}}
	for name, h := range engineHosts(t) {
		want, err := SimulatePORounds(h, alg, VertexKind)
		if err != nil {
			t.Fatalf("%s: clean: %v", name, err)
		}
		got, rep, err := SimulatePORoundsFaulty(h, alg, VertexKind, nil, 300)
		if err != nil {
			t.Fatalf("%s: faulty-nil: %v", name, err)
		}
		if rep.Profile != "clean" || !reflect.DeepEqual(want.Vertices, got.Vertices) {
			t.Fatalf("%s: clean faulty PO differs from SimulatePORounds", name)
		}
		sched := MustParseProfile("dup+reorder").New(h, 21)
		got, rep, err = SimulatePORoundsFaulty(h, alg, VertexKind, sched, 300)
		if err != nil {
			t.Fatalf("%s: dup+reorder: %v (reproducer: seed=21)", name, err)
		}
		if rep.Duplicated == 0 {
			t.Errorf("%s: dup+reorder duplicated nothing", name)
		}
		if !reflect.DeepEqual(want.Vertices, got.Vertices) {
			t.Errorf("%s: dup+reorder changed the gathered views (assembly should be idempotent)", name)
		}
	}
}

// TestLossyGatherDegrades: under heavy loss the gathered views are
// degraded but the run still completes, deterministically in the
// seed.
func TestLossyGatherDegrades(t *testing.T) {
	h := HostFromGraph(graph.Torus(8, 8))
	sched := MustParseProfile("lossy:p=0.5").New(h, 2)
	states, _, _, err := NewEngine(h).RunStatesFaulty(nil, GatherViews(2).engine(), 300, sched)
	if err != nil {
		t.Fatalf("lossy gather: %v", err)
	}
	clean, _, err := RunRoundsStates(h, nil, GatherViews(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for v := range states {
		if states[v].(*GatherState).Tree != clean[v].(*GatherState).Tree {
			degraded++
		}
	}
	if degraded == 0 {
		t.Error("p=0.5 loss degraded no view at all")
	}
	again, _, _, err2 := NewEngine(h).RunStatesFaulty(nil, GatherViews(2).engine(), 300, MustParseProfile("lossy:p=0.5").New(h, 2))
	if err2 != nil {
		t.Fatal(err2)
	}
	for v := range states {
		if states[v].(*GatherState).Tree != again[v].(*GatherState).Tree {
			t.Fatalf("node %d: lossy gather not reproducible from seed", v)
		}
	}
}

// TestEngineSteadyStateAllocsFaultyClean: the scheduler hook is now
// always installed; a clean-profile run through RunStatesFaulty still
// allocates nothing per steady-state round.
func TestEngineSteadyStateAllocsFaultyClean(t *testing.T) {
	defer par.Set(par.Set(1))
	h := HostFromGraph(graph.Cycle(512))
	e := NewEngine(h)
	states := make([]pulseState, h.G.N())
	runFor := func(rounds int) func() {
		return func() {
			algo, reset := pulseAlgo(states, rounds)
			reset()
			if _, _, _, err := e.RunStatesFaulty(nil, algo, rounds+2, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	runFor(8)() // warm-up
	short := testing.AllocsPerRun(3, runFor(8))
	long := testing.AllocsPerRun(3, runFor(264))
	if perRound := (long - short) / 256; perRound > 0.01 {
		t.Errorf("steady-state round allocates: %.3f allocs/round (short run %.0f, long run %.0f)", perRound, short, long)
	}
}

// TestFaultyEngineReuse: one engine alternates clean and faulty runs
// without cross-contamination — the clean results stay byte-identical
// to a never-faulted engine.
func TestFaultyEngineReuse(t *testing.T) {
	h := HostFromGraph(graph.Petersen())
	e := NewEngine(h)
	ids := rand.New(rand.NewSource(3)).Perm(40)[:10]
	want, wantRounds, err := RunRounds(h, ids, floodMaxAlgo(), 16)
	if err != nil {
		t.Fatal(err)
	}
	sched := MustParseProfile("lossy:p=0.4").New(h, 8)
	for i := 0; i < 4; i++ {
		if _, _, _, err := e.RunStatesFaulty(ids, floodMaxAlgo().engine(), 300, sched); err != nil {
			t.Fatalf("faulty run %d: %v", i, err)
		}
		outs, rounds, err := e.Run(ids, floodMaxAlgo().engine(), 16)
		if err != nil {
			t.Fatalf("clean run %d: %v", i, err)
		}
		if rounds != wantRounds || !reflect.DeepEqual(outs, want) {
			t.Fatalf("clean run %d contaminated by interleaved faulty runs", i)
		}
	}
}

// TestShuffleMsgs: the seeded permutation is deterministic and
// actually permutes.
func TestShuffleMsgs(t *testing.T) {
	mk := func() []Msg {
		ms := make([]Msg, 8)
		for i := range ms {
			ms[i].Data = i
		}
		return ms
	}
	a, b := mk(), mk()
	shuffleMsgs(a, 12345)
	shuffleMsgs(b, 12345)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed shuffled differently")
	}
	moved := false
	for i := range a {
		if a[i].Data.(int) != i {
			moved = true
		}
	}
	if !moved {
		t.Error("shuffle was the identity for seed 12345")
	}
	seen := map[int]bool{}
	for _, m := range a {
		seen[m.Data.(int)] = true
	}
	if len(seen) != 8 {
		t.Errorf("shuffle lost elements: %v", a)
	}
}
