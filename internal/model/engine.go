package model

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/view"
)

// Engine is the batched worker-parallel round simulator behind
// RunRounds: the operational analogue of the sweep engine. It sizes a
// CSR message plane once from the host's arc structure and then
// executes synchronous rounds with no per-round slice churn at all.
//
// Layout. Every incident (arc, direction) pair of every node is one
// slot: node v's slots are off[v]:off[v+1], ordered by the letter
// naming the arc at v (view.Letter.Less), so an inbox is always
// delivered in the receiver's letter order regardless of worker
// schedule. dest[s] maps a send on slot s's letter to the slot naming
// the same arc by the inverse letter at the other endpoint.
//
// Double buffering. Messages for round r live in arena r&1 and the
// outboxes of round r are written into arena (r+1)&1, so a slot is
// written by exactly one sender and read by exactly one receiver and
// no round ever races with the next. Slots carry monotone int64
// stamps instead of being cleared: a slot holds a live message for
// round r iff its stamp equals the run's base tick + r + 1, so
// neither arena is ever zeroed, not even between runs.
//
// Payload lanes. The any-payload arenas (buf) are the general plane;
// typed runs (see TypedEngine) carry fixed-width payloads in a
// parallel uint64 word lane (wbuf) that shares the same slots, stamps,
// routing and letter order — allocated lazily on the first typed
// attachment, so purely untyped engines never pay for it.
//
// Worklist. Halted nodes leave the active list and cost nothing: each
// round is a worker-sharded sweep of the active list only (dynamic
// chunk handoff over a shared cursor, par.ForScratch-style), and the
// workers are persistent for the whole run — spawned once against
// par's global budget (par.Reserve), released at the end — so a
// steady-state round performs no allocation and no goroutine churn.
//
// Determinism. Each node's Step writes only that node's state slot,
// halt flag, dense-inbox region and outgoing message slots, so
// parallel and sequential runs are byte-identical; any randomness
// must be drawn before the run (Init is invoked sequentially in
// increasing node order for exactly this reason).
//
// An Engine may be reused for any number of runs on its host (arenas
// warm up once), and typed and untyped runs may alternate on one
// plane (the monotone stamps keep them from ever reading each other's
// messages), but a single Engine must not execute two runs
// concurrently.
type Engine struct {
	h *Host
	n int

	// Slot layout (see above).
	off     []int32
	letters []view.Letter
	dest    []int32
	// maxSlots is the widest slot row (the plane's maximum in-degree):
	// the bound every per-worker inbox-compaction scratch is pre-sized
	// from (2x for fault scratch, so duplicated deliveries fit).
	maxSlots int32
	// info holds every node's NodeInfo letters (out-arcs then in-arcs,
	// as lettersOf produces) in one flat arena, sliced per node at
	// Init time so a run performs no per-node letter allocation.
	// Handed-out slices are shared: algorithms must treat them as
	// read-only, which every RoundAlgo/EngineAlgo in the repo does.
	info []view.Letter

	// Message plane: double-buffered arenas with monotone stamps. wbuf
	// is the typed word lane (parallel to buf, stamps shared), nil
	// until the first TypedOn attachment.
	buf   [2][]Msg
	wbuf  [2][]uint64
	stamp [2][]int64
	tick  int64

	// Run state, reused across runs.
	states  []any
	halted  []bool
	active  []int32
	spare   []int32
	dense   []Msg
	errs    []error
	errFlag atomic.Bool

	// crashed marks permanently crashed nodes on faulty runs; lazily
	// allocated on the first faulty run so clean engines pay nothing.
	crashed []bool

	// ctx, when non-nil, arms cooperative cancellation: runCore polls
	// ctx.Err() at every round barrier and aborts the run with a
	// wrapped context error. See WithContext.
	ctx context.Context

	// Durability (snapshot.go). ck arms barrier checkpointing; the
	// ckEnc* closures and ckTyped flag are installed per run by
	// runStates (they capture the run's codecs and column). resume
	// holds a snapshot armed for the next run; resumeFrom (-1 when
	// disarmed) and repBase carry the restored round cursor and
	// fault-counter bases into runCore.
	ck          *Checkpointer
	ckTyped     bool
	ckEncStates func(dst []byte) []byte
	ckEncData   func(dst []byte, data any) []byte
	resume      *Snapshot
	resumeFrom  int
	repBase     FaultReport
}

// WithContext arms cooperative cancellation for this engine's
// subsequent runs (typed, untyped, clean and faulty alike — they all
// share runCore): the round loop polls ctx.Err() once per round
// barrier, and a cancelled or deadline-expired context aborts the run
// between rounds with an error wrapping ctx.Err() (so callers can
// errors.Is against context.DeadlineExceeded). The persistent workers
// are released and the message-plane tick advanced on that exit path
// exactly as on any other, so a cancelled run hands its whole worker
// reservation back mid-run — this is what makes a long-running
// service able to kill a 10^6-node request that blew its deadline.
// The poll is one atomic-ish Err call per round, so the steady-state
// round stays allocation-free. A nil ctx (the default) disarms the
// check. Returns e for chaining.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// EngineAlgo is the engine-native form of a round algorithm: Step
// writes its outbox through the Outbox instead of returning a slice,
// so a non-allocating Step makes the whole round allocation-free.
// The inbox slice is valid only for the duration of the Step call
// (it aliases the engine's dense arena); Step must not retain it.
// At most one message may be sent per letter per round.
type EngineAlgo struct {
	// Init returns the initial state. It is called sequentially in
	// increasing node order, so it may consume a shared RNG or a
	// pre-drawn per-node table deterministically.
	Init func(info NodeInfo) any
	// Step consumes the inbox (in receiver letter order), emits
	// messages for the next round through out, and returns the new
	// state and whether the node halts.
	Step func(state any, round int, inbox []Msg, out *Outbox) (any, bool)
	// Out extracts the final output from a state.
	Out func(state any) Output

	// Optional checkpoint codecs (snapshot.go): EncodeState appends a
	// self-delimiting encoding of a state's dynamic fields and
	// DecodeState consumes one from the front of src — it receives the
	// state Init just produced (so static per-node context like letter
	// slices survives a resume without being serialised) and returns
	// the state to run with, usually the same one mutated in place.
	// EncodeData and DecodeData do the same for message payloads.
	// Required only for checkpointed or resumed runs (the Data pair
	// only when messages are in flight at a barrier).
	EncodeState func(dst []byte, state any) []byte
	DecodeState func(src []byte, state any) (dec any, rest []byte, err error)
	EncodeData  func(dst []byte, data any) []byte
	DecodeData  func(src []byte) (data any, rest []byte, err error)
}

// engine adapts the classical slice-returning RoundAlgo form.
func (a RoundAlgo) engine() EngineAlgo {
	return EngineAlgo{
		Init: a.Init,
		Step: func(state any, round int, inbox []Msg, out *Outbox) (any, bool) {
			st, msgs, done := a.Step(state, round, inbox)
			for _, m := range msgs {
				out.Send(m.L, m.Data)
			}
			return st, done
		},
		Out: a.Out,
	}
}

// NewEngine sizes a message plane for the host: one slot per incident
// (arc, direction) pair, plus the dense-inbox arena, state, halt and
// worklist arrays. Everything is allocated here; runs reuse it all.
func NewEngine(h *Host) *Engine {
	n := h.G.N()
	e := &Engine{h: h, n: n}
	e.off = make([]int32, n+1)
	slots := int64(0)
	for v := 0; v < n; v++ {
		slots += int64(len(h.D.Out(v)) + len(h.D.In(v)))
		if slots > math.MaxInt32 {
			panic(fmt.Errorf("model: message plane needs %d+ slots, exceeding the int32 flat-plane capacity %d: host exceeds flat-CSR capacity, use shards (NewShardedEngine)",
				slots, int64(math.MaxInt32)))
		}
		e.off[v+1] = e.off[v] + int32(len(h.D.Out(v))+len(h.D.In(v)))
		if w := e.off[v+1] - e.off[v]; w > e.maxSlots {
			e.maxSlots = w
		}
	}
	total := int(e.off[n])
	e.letters = make([]view.Letter, total)
	e.dest = make([]int32, total)
	for v := 0; v < n; v++ {
		// Merge the label-sorted out- and in-rows into letter order.
		outs, ins := h.D.Out(v), h.D.In(v)
		i, j := 0, 0
		for s := e.off[v]; s < e.off[v+1]; s++ {
			takeOut := i < len(outs) &&
				(j >= len(ins) || outs[i].Label <= ins[j].Label)
			if takeOut {
				e.letters[s] = view.Letter{Label: outs[i].Label}
				i++
			} else {
				e.letters[s] = view.Letter{Label: ins[j].Label, In: true}
				j++
			}
		}
	}
	for v := 0; v < n; v++ {
		for s := e.off[v]; s < e.off[v+1]; s++ {
			l := e.letters[s]
			u, _ := resolveLetter(h, v, l)
			e.dest[s] = e.slot(u, l.Inv())
		}
	}
	e.info = make([]view.Letter, total)
	for v := 0; v < n; v++ {
		s := e.off[v]
		for _, a := range h.D.Out(v) {
			e.info[s] = view.Letter{Label: a.Label}
			s++
		}
		for _, a := range h.D.In(v) {
			e.info[s] = view.Letter{Label: a.Label, In: true}
			s++
		}
	}
	for a := 0; a < 2; a++ {
		e.buf[a] = make([]Msg, total)
		e.stamp[a] = make([]int64, total)
		for s := range e.buf[a] {
			// A slot's arrival letter never changes; senders only
			// write Data and the stamp.
			e.buf[a][s].L = e.letters[s]
		}
	}
	e.dense = make([]Msg, total)
	e.states = make([]any, n)
	e.halted = make([]bool, n)
	e.active = make([]int32, 0, n)
	e.spare = make([]int32, 0, n)
	e.errs = make([]error, n)
	e.resumeFrom = -1
	return e
}

// ensureWordLane allocates the typed payload lanes (8 bytes per slot;
// stamps, routing and letter order are shared with the any lane) on
// the first typed attachment.
func (e *Engine) ensureWordLane() {
	if e.wbuf[0] == nil {
		total := len(e.letters)
		e.wbuf[0] = make([]uint64, total)
		e.wbuf[1] = make([]uint64, total)
	}
}

// slot returns the index of v's slot for letter l, or off[v+1] when v
// has no such letter (binary search over the letter-sorted slot row).
func (e *Engine) slot(v int, l view.Letter) int32 {
	lo, hi := e.off[v], e.off[v+1]
	end := hi
	for lo < hi {
		mid := (lo + hi) >> 1
		if e.letters[mid].Less(l) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && e.letters[lo] == l {
		return lo
	}
	return end
}

// fail records v's first send error; the run surfaces the error of
// the smallest failing node after the round's barrier.
func (e *Engine) fail(v int, err error) {
	if e.errs[v] == nil {
		e.errs[v] = err
		e.errFlag.Store(true)
	}
}

// Outbox routes one node's outgoing messages straight into the next
// round's arena. Each worker owns one Outbox for the whole run; the
// engine repoints it at the current node before every Step.
type Outbox struct {
	e    *Engine
	v    int32
	nxt  int   // arena written this round
	want int64 // stamp marking next-round messages

	// round and prof contextualise error strings (prof is "" on clean
	// runs; see errf), and the counters accumulate this worker's
	// fault events for the run's FaultReport.
	round     int
	prof      string
	dropped   int64
	duped     int64
	reordered int64
	downSteps int64

	// Per-worker inbox-compaction scratch, pre-sized by the run from
	// the plane's max in-degree (fault scratch at twice that, so every
	// delivery duplicating still fits): wdense serves the typed clean
	// path, fdense/fwdense the untyped/typed faulty paths. The clean
	// untyped path compacts into the engine's global dense arena
	// instead (its per-node regions are disjoint by construction).
	wdense  []WordMsg
	fdense  []Msg
	fwdense []WordMsg
}

// errf builds a run error carrying the round number and, on faulty
// runs, the fault-profile descriptor.
func (ob *Outbox) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if ob.prof != "" {
		return fmt.Errorf("model: round %d [%s]: %s", ob.round, ob.prof, msg)
	}
	return fmt.Errorf("model: round %d: %s", ob.round, msg)
}

// Send emits a message on the arc named l at the sending node, to be
// delivered next round. Sends on absent letters and second sends on
// one letter in the same round are errors (reported by the run).
func (ob *Outbox) Send(l view.Letter, data any) {
	e := ob.e
	v := int(ob.v)
	s := e.slot(v, l)
	if s == e.off[v+1] {
		e.fail(v, ob.errf("node %d sent on absent letter %v", v, l))
		return
	}
	d := ob.e.dest[s]
	st := e.stamp[ob.nxt]
	if st[d] == ob.want {
		e.fail(v, ob.errf("node %d sent twice on letter %v", v, l))
		return
	}
	e.buf[ob.nxt][d].Data = data
	st[d] = ob.want
}

// SendWord emits the payload word w on the sender's local incident
// slot (the letter-sorted index: typed info.Letters[slot] names the
// arc) — the typed lane's analogue of Send, with the same contract:
// sends on absent slots and second sends on one slot in the same
// round are errors reported by the run. Unlike Send there is no
// letter lookup at all; the slot index addresses the plane directly.
func (ob *Outbox) SendWord(slot int, w uint64) {
	e := ob.e
	v := int(ob.v)
	lo, hi := e.off[v], e.off[v+1]
	if slot < 0 || int32(slot) >= hi-lo {
		e.fail(v, ob.errf("node %d sent on absent slot %d (node has %d)", v, slot, hi-lo))
		return
	}
	d := e.dest[lo+int32(slot)]
	st := e.stamp[ob.nxt]
	if st[d] == ob.want {
		e.fail(v, ob.errf("node %d sent twice on slot %d", v, slot))
		return
	}
	e.wbuf[ob.nxt][d] = w
	st[d] = ob.want
}

// BroadcastWord emits w on every incident slot of the sending node —
// the whole-row fast path of the typed lane: one pass over the
// sender's slot row, no per-letter lookup and no double-send
// bookkeeping (it overwrites anything already sent this round on
// those slots; a second BroadcastWord in one Step simply wins).
func (ob *Outbox) BroadcastWord(w uint64) {
	e := ob.e
	v := int(ob.v)
	nb := e.wbuf[ob.nxt]
	st := e.stamp[ob.nxt]
	want := ob.want
	for s := e.off[v]; s < e.off[v+1]; s++ {
		d := e.dest[s]
		nb[d] = w
		st[d] = want
	}
}

// Run executes an engine algorithm and extracts the per-node outputs.
func (e *Engine) Run(ids []int, algo EngineAlgo, maxRounds int) ([]Output, int, error) {
	states, rounds, err := e.RunStates(ids, algo, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	outs := make([]Output, len(states))
	for v, st := range states {
		outs[v] = algo.Out(st)
	}
	return outs, rounds, nil
}

// RunStates executes an engine algorithm on the host and returns the
// final per-node states and the number of rounds, failing if some
// node has not halted after maxRounds. The returned slice is owned by
// the engine and is overwritten by its next run.
func (e *Engine) RunStates(ids []int, algo EngineAlgo, maxRounds int) ([]any, int, error) {
	states, rounds, _, err := e.runStates(ids, algo, maxRounds, nil)
	return states, rounds, err
}

// RunStatesFaulty is RunStates executing under a fault schedule: the
// schedule's Fate is applied to every delivery at inbox-compaction
// time (so drops, duplicates and reorderings happen between
// Outbox.Send and the receiver's Step), its State gates which nodes
// step each round (down nodes skip the round silently; crashed nodes
// leave the worklist for good), and the returned FaultReport counts
// what actually happened. A nil schedule is the clean profile: the
// run takes the engine's exact clean path and the report is all-zero.
// Crashed nodes keep the last state they reached; callers decide how
// to treat their outputs (FaultReport.CrashedNode).
func (e *Engine) RunStatesFaulty(ids []int, algo EngineAlgo, maxRounds int, sched Schedule) ([]any, int, *FaultReport, error) {
	states, rounds, rep, err := e.runStates(ids, algo, maxRounds, sched)
	if err != nil {
		return nil, 0, nil, err
	}
	if rep == nil {
		rep = &FaultReport{Profile: "clean"}
	}
	return states, rounds, rep, nil
}

// runStates initialises the untyped state column and dispatches the
// clean or faulty step path into the shared round-loop core.
func (e *Engine) runStates(ids []int, algo EngineAlgo, maxRounds int, sched Schedule) ([]any, int, *FaultReport, error) {
	if ids != nil && len(ids) != e.n {
		return nil, 0, nil, fmt.Errorf("model: RunRounds: %d ids for %d nodes", len(ids), e.n)
	}
	for v := 0; v < e.n; v++ {
		info := NodeInfo{ID: -1, Letters: e.info[e.off[v]:e.off[v+1]:e.off[v+1]]}
		if ids != nil {
			info.ID = ids[v]
		}
		e.states[v] = algo.Init(info)
		e.halted[v] = false
		e.errs[v] = nil
	}
	if e.ck != nil {
		if algo.EncodeState == nil {
			return nil, 0, nil, fmt.Errorf("model: checkpointing armed but algorithm has no EncodeState codec")
		}
		e.ckTyped = false
		e.ckEncStates = func(dst []byte) []byte {
			for v := 0; v < e.n; v++ {
				dst = algo.EncodeState(dst, e.states[v])
			}
			return dst
		}
		e.ckEncData = algo.EncodeData
	}
	if snap := e.resume; snap != nil {
		e.resume = nil
		if err := e.restoreUntyped(snap, algo, sched != nil); err != nil {
			e.failedResume(snap)
			return nil, 0, nil, err
		}
	}
	step, prep := e.stepAny(algo), noScratch
	if sched != nil {
		step = e.stepAnyFaulty(algo, sched)
		prep = func(ob *Outbox) { ob.fdense = make([]Msg, 2*int(e.maxSlots)) }
	}
	rounds, rep, err := e.runCore(step, prep, sched, maxRounds)
	if err != nil {
		return nil, 0, nil, err
	}
	return e.states, rounds, rep, nil
}

// noScratch is the prep hook of paths that need no per-worker
// compaction scratch (the clean untyped path compacts into the
// engine's global dense arena).
func noScratch(*Outbox) {}

// stepAny is the clean untyped step: compact the node's live slots
// into its disjoint region of the global dense arena, then Step. The
// current round's arena and stamp are recovered from the Outbox (the
// next-round arena is nxt^1 and next-round stamps are want, so this
// round reads arena nxt^1 at stamp want-1).
func (e *Engine) stepAny(algo EngineAlgo) func(int, *Outbox) {
	return func(v int, ob *Outbox) {
		lo, hi := e.off[v], e.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := e.stamp[cur]
		buf := e.buf[cur]
		k := lo
		for s := lo; s < hi; s++ {
			if st[s] == want {
				e.dense[k] = buf[s]
				k++
			}
		}
		ob.v = int32(v)
		ns, done := algo.Step(e.states[v], ob.round, e.dense[lo:k], ob)
		e.states[v] = ns
		e.halted[v] = done
	}
}

// stepAnyFaulty is stepAny with the schedule interposed between the
// plane and the receiver: liveness gating, per-delivery fates
// (compacted into the worker's double-width fdense scratch so
// duplicates fit), and adversarial inbox permutation.
func (e *Engine) stepAnyFaulty(algo EngineAlgo, sched Schedule) func(int, *Outbox) {
	return func(v int, ob *Outbox) {
		round := ob.round
		switch sched.State(round, int32(v)) {
		case StateDown:
			ob.downSteps++
			return
		case StateCrashed:
			return
		}
		lo, hi := e.off[v], e.off[v+1]
		cur, want := ob.nxt^1, ob.want-1
		st := e.stamp[cur]
		buf := e.buf[cur]
		k := 0
		for s := lo; s < hi; s++ {
			if st[s] != want {
				continue
			}
			switch sched.Fate(round, s) {
			case Drop:
				ob.dropped++
				continue
			case Duplicate:
				ob.duped++
				ob.fdense[k] = buf[s]
				k++
			}
			ob.fdense[k] = buf[s]
			k++
		}
		inbox := ob.fdense[:k]
		if seed := sched.Reorder(round, int32(v)); seed != 0 && len(inbox) > 1 {
			shuffleMsgs(inbox, seed)
			ob.reordered++
		}
		ob.v = int32(v)
		ns, done := algo.Step(e.states[v], round, inbox, ob)
		e.states[v] = ns
		e.halted[v] = done
	}
}

// runCore is the round-loop machinery shared by the untyped and typed
// paths: active-worklist management (including schedule-driven crash
// removal), persistent workers with dynamic chunk handoff, the
// per-round barrier, error surfacing, and fault-report assembly. step
// performs one node's round (compaction, fate draws and the
// algorithm's Step all live in the caller's closure); prep pre-sizes
// each Outbox's per-worker scratch before the first round.
func (e *Engine) runCore(step func(int, *Outbox), prep func(*Outbox), sched Schedule, maxRounds int) (int, *FaultReport, error) {
	// A restored snapshot (snapshot.go) shifts the start round and
	// seeds the fault counters; the worklist is then rebuilt from the
	// restored bitsets instead of the schedule's round-0 fates, and
	// e.crashed must survive as restored rather than be cleared.
	startRound, resumed := 0, e.resumeFrom >= 0
	if resumed {
		startRound = e.resumeFrom
	}
	defer func() {
		e.resumeFrom = -1
		e.repBase = FaultReport{}
	}()
	prof := ""
	if sched != nil {
		prof = sched.String()
		if e.crashed == nil {
			e.crashed = make([]bool, e.n)
		} else if !resumed {
			for v := range e.crashed {
				e.crashed[v] = false
			}
		}
	}
	e.errFlag.Store(false)
	active := e.active[:0]
	for v := 0; v < e.n; v++ {
		if resumed {
			if e.halted[v] || (sched != nil && e.crashed[v]) {
				continue
			}
		} else if sched != nil && sched.State(0, int32(v)) == StateCrashed {
			e.crashed[v] = true
			continue
		}
		active = append(active, int32(v))
	}
	base := e.tick

	// Per-round fields shared with the workers. Writes happen between
	// rounds on this goroutine; the start-channel send publishes them
	// to the workers and wg.Wait closes the round barrier.
	var (
		curArena int
		curWant  int64
		round    int
		chunk    int64
		cursor   atomic.Int64

		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	// Advance the tick past every stamp this run can have written, on
	// every exit path (including errors and re-raised panics): a
	// reused engine must never mistake a stale stamp for a live one.
	defer func() {
		e.tick = base + int64(round) + 2
	}()

	roundWork := func(ob *Outbox) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for {
			hi := cursor.Add(chunk)
			lo := hi - chunk
			if lo >= int64(len(active)) {
				return
			}
			if hi > int64(len(active)) {
				hi = int64(len(active))
			}
			for _, v := range active[lo:hi] {
				step(int(v), ob)
			}
		}
	}

	// Persistent workers: spawned once against par's global budget,
	// released after the last round; each owns one Outbox for the run.
	workers := 0
	if e.n > 1 {
		workers = par.Reserve(min(par.N()-1, e.n-1))
	}
	defer par.Release(workers)
	// Outboxes live outside the goroutines (master's is last) so the
	// per-worker fault counters are collectable after the run.
	obs := make([]*Outbox, workers+1)
	for w := range obs {
		obs[w] = &Outbox{e: e, prof: prof}
		prep(obs[w])
	}
	start := make([]chan struct{}, workers)
	for w := range start {
		start[w] = make(chan struct{}, 1)
		go func(ch chan struct{}, ob *Outbox) {
			for range ch {
				ob.nxt = curArena ^ 1
				ob.want = curWant + 1
				ob.round = round
				roundWork(ob)
				wg.Done()
			}
		}(start[w], obs[w])
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()
	masterOb := obs[workers]

	round = startRound
	for ; round < maxRounds && len(active) > 0; round++ {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				if prof != "" {
					return 0, nil, fmt.Errorf("model: round %d [%s]: run cancelled: %w", round, prof, err)
				}
				return 0, nil, fmt.Errorf("model: round %d: run cancelled: %w", round, err)
			}
		}
		curArena = round & 1
		curWant = base + int64(round) + 1
		chunk = int64(len(active)/((workers+1)*4)) + 1
		cursor.Store(0)
		wg.Add(workers)
		for _, ch := range start {
			ch <- struct{}{}
		}
		masterOb.nxt = curArena ^ 1
		masterOb.want = curWant + 1
		masterOb.round = round
		roundWork(masterOb)
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		if e.errFlag.Load() {
			for _, v := range active {
				if err := e.errs[v]; err != nil {
					return 0, nil, err
				}
			}
		}
		// Compact the active worklist; the spare buffer flips roles so
		// neither list is reallocated. On the faulty path nodes whose
		// crash round has arrived leave the worklist permanently.
		nxt := e.spare[:0]
		if sched != nil {
			for _, v := range active {
				if e.halted[v] {
					continue
				}
				if sched.State(round+1, v) == StateCrashed {
					e.crashed[v] = true
					continue
				}
				nxt = append(nxt, v)
			}
		} else {
			for _, v := range active {
				if !e.halted[v] {
					nxt = append(nxt, v)
				}
			}
		}
		e.spare = active[:0]
		active = nxt
		// Barrier checkpoint: after compaction (so crashes landing at
		// round+1 are in the bitsets) and before the next round's
		// cancellation poll (so RequestNow-then-cancel captures state
		// right at the cancellation point). The idle cost is one nil
		// check; a finished run (empty worklist) never checkpoints.
		if e.ck != nil && len(active) > 0 && e.ck.due(round+1) {
			if err := e.snapshotAt(round+1, base, sched, obs); err != nil {
				return 0, nil, err
			}
		}
	}
	e.active = active[:0]
	if len(active) > 0 {
		if prof != "" {
			return 0, nil, fmt.Errorf("model: node %d did not halt within %d rounds [%s]", active[0], maxRounds, prof)
		}
		return 0, nil, fmt.Errorf("model: node %d did not halt within %d rounds", active[0], maxRounds)
	}
	var rep *FaultReport
	if sched != nil {
		rep = &FaultReport{
			Profile:    prof,
			Dropped:    e.repBase.Dropped,
			Duplicated: e.repBase.Duplicated,
			Reordered:  e.repBase.Reordered,
			DownSteps:  e.repBase.DownSteps,
		}
		for _, ob := range obs {
			rep.Dropped += ob.dropped
			rep.Duplicated += ob.duped
			rep.Reordered += ob.reordered
			rep.DownSteps += ob.downSteps
		}
		rep.Crashed = append([]bool(nil), e.crashed...)
		for _, c := range rep.Crashed {
			if c {
				rep.NumCrashed++
			}
		}
	}
	return round, rep, nil
}
