package model

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/view"
)

func diffHosts(t *testing.T) map[string]*Host {
	t.Helper()
	return map[string]*Host{
		"petersen":      HostFromGraph(graph.Petersen()),
		"torus6x6":      HostFromGraph(graph.Torus(6, 6)),
		"randomregular": HostFromGraph(graph.RandomRegular(18, 3, rand.New(rand.NewSource(11)))),
	}
}

// TestGatheredTreesDifferential pins the three formulations of view
// gathering against each other on Petersen, torus and random-regular
// hosts: the parallel level-synchronous assembly, the sequential
// fallback, the message-passing simulation (GatherViews), and direct
// per-node view construction. All four must produce identical interned
// trees (and hence byte-identical encodings).
func TestGatheredTreesDifferential(t *testing.T) {
	for name, h := range diffHosts(t) {
		for r := 0; r <= 2; r++ {
			direct := make([]*view.Tree, h.G.N())
			for v := range direct {
				direct[v] = view.Build[int](h.D, v, r)
			}

			for _, p := range []int{1, 8} {
				old := par.Set(p)
				gathered, err := GatheredTrees(h, r)
				par.Set(old)
				if err != nil {
					t.Fatalf("%s r=%d p=%d: %v", name, r, p, err)
				}
				for v := range direct {
					if gathered[v] != direct[v] {
						t.Fatalf("%s r=%d p=%d node %d: gathered view differs from direct build:\n%s\nvs\n%s",
							name, r, p, v, gathered[v].Encode(), direct[v].Encode())
					}
				}
			}

			// Message-passing simulation (the operational reference).
			states, _, err := RunRoundsStates(h, nil, GatherViews(r), r+1)
			if err != nil {
				t.Fatalf("%s r=%d: sim: %v", name, r, err)
			}
			for v, st := range states {
				if st.(*GatherState).Tree != direct[v] {
					t.Fatalf("%s r=%d node %d: simulated gather differs from direct build", name, r, v)
				}
			}
		}
	}
}

// TestSimulatePODifferential re-pins equation (1) through the new
// parallel gather on all differential hosts: simulation and direct
// evaluation coincide.
func TestSimulatePODifferential(t *testing.T) {
	defer par.Set(par.Set(8))
	for name, h := range diffHosts(t) {
		alg := FuncPO{R: 1, Fn: func(tr *view.Tree) Output {
			return Output{Member: tr.NumChildren()%2 == 0, Letters: tr.Letters()}
		}}
		a, err := RunPO(h, alg, EdgeKind)
		if err != nil {
			t.Fatalf("%s: RunPO: %v", name, err)
		}
		b, err := SimulatePO(h, alg, EdgeKind)
		if err != nil {
			t.Fatalf("%s: SimulatePO: %v", name, err)
		}
		ae, be := a.EdgeSet(), b.EdgeSet()
		if len(ae) != len(be) {
			t.Fatalf("%s: %d vs %d edges", name, len(ae), len(be))
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("%s: edge sets differ at %d", name, i)
			}
		}
	}
}
