package model

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/view"
)

// Msg is a message travelling along one incident arc, addressed by the
// letter naming the arc at the sending/receiving node.
type Msg struct {
	// L names the arc: at the sender it is the arc the message leaves
	// on; in an inbox it is the arc the message arrived on.
	L view.Letter
	// Data is the payload.
	Data any
}

// NodeInfo is the initial knowledge of a node.
type NodeInfo struct {
	// ID is the node's unique identifier, or -1 in anonymous models.
	ID int
	// Letters names the node's incident arcs: one letter per out-arc
	// (In=false) and per in-arc (In=true).
	Letters []view.Letter
}

// RoundAlgo is a synchronous message-passing algorithm: the classical
// operational formulation of the LOCAL/PO models. Each round every
// node updates its state on the messages received, emits messages for
// the next round, and may halt. A halted node keeps its state and
// sends nothing further.
type RoundAlgo struct {
	// Init returns the initial state.
	Init func(info NodeInfo) any
	// Step consumes the inbox and returns the new state, the outbox,
	// and whether the node halts.
	Step func(state any, round int, inbox []Msg) (any, []Msg, bool)
	// Out extracts the final output from a state.
	Out func(state any) Output
}

// RunRounds executes a round algorithm on the host. In the ID model
// pass per-node identifiers; pass nil for anonymous (PO) execution.
// It returns the per-node outputs and the number of rounds executed,
// failing if some node has not halted after maxRounds.
//
// Execution goes through the batched message-plane Engine (worker-
// parallel, active-set worklist); outputs and round counts are
// byte-identical to RunRoundsReference, which the differential tests
// pin down. Two engine-contract differences from the reference loop:
// the inbox slice handed to Step is only valid during the call, and a
// node may send at most one message per letter per round.
func RunRounds(h *Host, ids []int, algo RoundAlgo, maxRounds int) ([]Output, int, error) {
	states, rounds, err := RunRoundsStates(h, ids, algo, maxRounds)
	if err != nil {
		return nil, 0, err
	}
	outs := make([]Output, len(states))
	for v, st := range states {
		outs[v] = algo.Out(st)
	}
	return outs, rounds, nil
}

// RunRoundsStates is RunRounds exposing the final per-node states
// instead of outputs.
func RunRoundsStates(h *Host, ids []int, algo RoundAlgo, maxRounds int) ([]any, int, error) {
	return NewEngine(h).RunStates(ids, algo.engine(), maxRounds)
}

// RunRoundsStatesCtx is RunRoundsStates under cooperative
// cancellation (Engine.WithContext): the run aborts between rounds
// once ctx is cancelled or past its deadline, returning an error that
// wraps ctx.Err() and handing every reserved worker back to the
// par budget. This is the service layer's deadline hook.
func RunRoundsStatesCtx(ctx context.Context, h *Host, ids []int, algo RoundAlgo, maxRounds int) ([]any, int, error) {
	return NewEngine(h).WithContext(ctx).RunStates(ids, algo.engine(), maxRounds)
}

// RunRoundsStatesFaultyCtx is RunRoundsStatesFaulty under cooperative
// cancellation; see RunRoundsStatesCtx.
func RunRoundsStatesFaultyCtx(ctx context.Context, h *Host, ids []int, algo RoundAlgo, maxRounds int, sched Schedule) ([]any, int, *FaultReport, error) {
	return NewEngine(h).WithContext(ctx).RunStatesFaulty(ids, algo.engine(), maxRounds, sched)
}

// RunRoundsFaulty is RunRounds executing under a fault schedule (see
// Schedule and ParseProfile): messages are dropped, duplicated and
// reordered and nodes crashed or churned exactly as the schedule
// decides, deterministically in (host, algo, seed, profile). The
// FaultReport summarises the injected faults; crashed nodes'
// outputs are extracted from the last state they reached, and
// FaultReport.CrashedNode says which those are. A nil schedule runs
// clean.
func RunRoundsFaulty(h *Host, ids []int, algo RoundAlgo, maxRounds int, sched Schedule) ([]Output, int, *FaultReport, error) {
	states, rounds, rep, err := NewEngine(h).RunStatesFaulty(ids, algo.engine(), maxRounds, sched)
	if err != nil {
		return nil, 0, nil, err
	}
	outs := make([]Output, len(states))
	for v, st := range states {
		outs[v] = algo.Out(st)
	}
	return outs, rounds, rep, nil
}

// RunRoundsStatesFaulty is RunRoundsFaulty exposing the final
// per-node states instead of outputs.
func RunRoundsStatesFaulty(h *Host, ids []int, algo RoundAlgo, maxRounds int, sched Schedule) ([]any, int, *FaultReport, error) {
	return NewEngine(h).RunStatesFaulty(ids, algo.engine(), maxRounds, sched)
}

// RunRoundsReference is the retained sequential reference loop: per-
// round append-built inboxes, every node visited every round. It is
// the executable specification the Engine is differentially tested
// against (and, unlike the engine, it permits duplicate sends on one
// letter and hands out retainable inbox slices).
func RunRoundsReference(h *Host, ids []int, algo RoundAlgo, maxRounds int) ([]any, int, error) {
	n := h.G.N()
	if ids != nil && len(ids) != n {
		return nil, 0, fmt.Errorf("model: RunRounds: %d ids for %d nodes", len(ids), n)
	}
	states := make([]any, n)
	halted := make([]bool, n)
	for v := 0; v < n; v++ {
		info := NodeInfo{ID: -1, Letters: lettersOf(h, v)}
		if ids != nil {
			info.ID = ids[v]
		}
		states[v] = algo.Init(info)
	}
	inboxes := make([][]Msg, n)
	outboxes := make([][]Msg, n)
	round := 0
	for ; round < maxRounds; round++ {
		allHalted := true
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			allHalted = false
			st, out, done := algo.Step(states[v], round, inboxes[v])
			states[v] = st
			outboxes[v] = out
			halted[v] = done
		}
		if allHalted {
			break
		}
		for v := range inboxes {
			inboxes[v] = nil
		}
		for v := 0; v < n; v++ {
			for _, m := range outboxes[v] {
				to, ok := resolveLetter(h, v, m.L)
				if !ok {
					return nil, 0, fmt.Errorf("model: round %d: node %d sent on absent letter %v", round, v, m.L)
				}
				// The receiver names the same arc by the inverse letter.
				inboxes[to] = append(inboxes[to], Msg{L: m.L.Inv(), Data: m.Data})
			}
			outboxes[v] = nil
		}
	}
	for v := 0; v < n; v++ {
		if !halted[v] {
			return nil, 0, fmt.Errorf("model: node %d did not halt within %d rounds", v, maxRounds)
		}
	}
	return states, round, nil
}

// lettersOf enumerates the letters naming v's incident arcs.
func lettersOf(h *Host, v int) []view.Letter {
	var ls []view.Letter
	for _, a := range h.D.Out(v) {
		ls = append(ls, view.Letter{Label: a.Label})
	}
	for _, a := range h.D.In(v) {
		ls = append(ls, view.Letter{Label: a.Label, In: true})
	}
	return ls
}

// GatherState is the state of the GatherViews full-information
// algorithm; after t rounds Tree is the node's depth-t view.
type GatherState struct {
	letters []view.Letter
	// Tree is the view gathered so far.
	Tree *view.Tree
}

// GatherViews is the canonical full-information algorithm: after r
// rounds each node's state holds exactly its radius-r view tree. It
// witnesses the equivalence of the round-based formulation with the
// ball/view formulation of Section 2.2 (equation (1)): any r-round
// message-passing algorithm can be simulated by gathering the view and
// post-processing it locally.
func GatherViews(r int) RoundAlgo {
	return RoundAlgo{
		Init: func(info NodeInfo) any {
			return &GatherState{letters: info.Letters, Tree: view.Leaf()}
		},
		Step: func(state any, round int, inbox []Msg) (any, []Msg, bool) {
			s := state.(*GatherState)
			if round > 0 && len(inbox) > 0 {
				// Assemble the depth-(round) view from the neighbours'
				// depth-(round-1) views. A message that arrived on the
				// arc we name L was sent by a neighbour that names the
				// same arc L.Inv(); the neighbour's walk back across
				// this arc starts with letter L.Inv() at the
				// neighbour, so that child is pruned (non-backtracking).
				// Faulty schedules may duplicate deliveries, so repeat
				// letters keep only their first message (NewTree
				// requires distinct letters); a fully starved inbox
				// keeps the stale view instead of collapsing to a leaf.
				// On a clean run neither case arises and the assembly
				// is the classical one.
				children := make([]view.Child, 0, len(inbox))
				for _, m := range inbox {
					dup := false
					for _, c := range children {
						if c.L == m.L {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					children = append(children, view.Child{L: m.L, T: pruneChild(m.Data.(*view.Tree), m.L.Inv())})
				}
				s.Tree = view.NewTree(children)
			}
			if round >= r {
				return s, nil, true
			}
			out := make([]Msg, 0, len(s.letters))
			for _, l := range s.letters {
				out = append(out, Msg{L: l, Data: s.Tree})
			}
			return s, out, false
		},
		Out: func(state any) Output { return Output{} },
	}
}

// pruneChild returns t without its child labelled drop (t itself when
// the letter is absent).
func pruneChild(t *view.Tree, drop view.Letter) *view.Tree {
	if _, ok := t.Child(drop); !ok {
		return t
	}
	kids := make([]view.Child, 0, t.NumChildren()-1)
	for _, c := range t.Children() {
		if c.L == drop {
			continue
		}
		kids = append(kids, c)
	}
	return view.NewTree(kids)
}

// gatherScratch is the worker-local assembly state of GatheredTrees:
// one buffer for the node under assembly and one for the pruned
// neighbour views, both interned copy-on-miss so repeated view types
// cost no allocation.
type gatherScratch struct {
	kids   []view.Child
	pruned []view.Child
}

// GatheredTrees returns each node's radius-r view tree, computed by
// the level-synchronous assembly that GatherViews performs by message
// passing: after round t every node's tree is assembled from its
// neighbours' round-(t-1) trees with the backtracking child pruned.
// Rounds are barriers; within a round the per-node assembly is
// data-parallel with worker-local scratch (each node writes only its
// own slot, and the interned constructors are concurrency-safe), so
// the result is byte-identical to the sequential simulation — a
// property the differential tests pin down against both
// RunRoundsStates and per-node view.Build.
func GatheredTrees(h *Host, r int) ([]*view.Tree, error) {
	levels, err := GatheredTreesAll(h, r)
	if err != nil {
		return nil, err
	}
	return levels[r], nil
}

// GatheredTreesAll is the layered form of GatheredTrees: every node's
// view tree at every radius t = 0..rmax (result[t][v]), from the one
// level-synchronous pass. The per-round levels are exactly the
// intermediate states of the gathering algorithm, so the multi-radius
// gather costs the same single pass the deepest radius alone does —
// the view-side analogue of order.SweepMeasureAll.
func GatheredTreesAll(h *Host, rmax int) ([][]*view.Tree, error) {
	n := h.G.N()
	cur := make([]*view.Tree, n)
	for v := range cur {
		cur[v] = view.Leaf()
	}
	levels := make([][]*view.Tree, rmax+1)
	levels[0] = cur
	for round := 1; round <= rmax; round++ {
		nxt := make([]*view.Tree, n)
		par.ForScratch(n,
			func() *gatherScratch { return &gatherScratch{} },
			func(v int, s *gatherScratch) {
				kids := s.kids[:0]
				for _, a := range h.D.Out(v) {
					l := view.Letter{Label: a.Label}
					kids = append(kids, view.Child{L: l, T: pruneChildWith(s, cur[a.To], l.Inv())})
				}
				for _, a := range h.D.In(v) {
					l := view.Letter{Label: a.Label, In: true}
					kids = append(kids, view.Child{L: l, T: pruneChildWith(s, cur[a.To], l.Inv())})
				}
				s.kids = kids
				nxt[v] = view.NewTreeScratch(kids)
			})
		levels[round] = nxt
		cur = nxt
	}
	return levels, nil
}

// pruneChildWith is pruneChild assembling into the worker's scratch
// buffer (interned copy-on-miss).
func pruneChildWith(s *gatherScratch, t *view.Tree, drop view.Letter) *view.Tree {
	if _, ok := t.Child(drop); !ok {
		return t
	}
	kids := s.pruned[:0]
	for _, c := range t.Children() {
		if c.L != drop {
			kids = append(kids, c)
		}
	}
	s.pruned = kids
	return view.NewTreeScratch(kids)
}

// SimulatePO runs any PO algorithm operationally: gather the radius-r
// view by message passing, then apply the algorithm's view function.
// By equation (1) this is semantically identical to RunPO.
func SimulatePO(h *Host, alg PO, kind Kind) (*Solution, error) {
	trees, err := GatheredTrees(h, alg.Radius())
	if err != nil {
		return nil, err
	}
	sol := NewSolution(kind, h.G.N())
	for v, t := range trees {
		if err := applyPOOut(sol, h, v, alg.EvalPO(t)); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// SimulatePORounds is SimulatePO driven end-to-end through the round
// engine: the radius-r view is gathered by actual message passing
// (GatherViews executing on the Engine's message plane) and the
// algorithm's view function is applied to the final states. By
// equation (1) the result coincides with RunPO and SimulatePO — the
// operational PO path at engine speed, differentially tested against
// both.
func SimulatePORounds(h *Host, alg PO, kind Kind) (*Solution, error) {
	r := alg.Radius()
	states, _, err := RunRoundsStates(h, nil, GatherViews(r), r+2)
	if err != nil {
		return nil, err
	}
	sol := NewSolution(kind, h.G.N())
	for v, st := range states {
		if err := applyPOOut(sol, h, v, alg.EvalPO(st.(*GatherState).Tree)); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// SimulatePORoundsFaulty is SimulatePORounds under a fault schedule:
// the gathering rounds run on the faulty message plane, so each
// node's "view" is whatever fragments survived the schedule, and the
// algorithm's view function is applied to those degraded views.
// Crashed nodes produce no output (their vertices and incident-edge
// selections are simply absent from the solution). maxRounds bounds
// the run — pass slack beyond Radius()+2 when the schedule can keep
// nodes transiently down, since a down node halts only at its first
// up round at or after the gathering radius.
func SimulatePORoundsFaulty(h *Host, alg PO, kind Kind, sched Schedule, maxRounds int) (*Solution, *FaultReport, error) {
	r := alg.Radius()
	states, _, rep, err := NewEngine(h).RunStatesFaulty(nil, GatherViews(r).engine(), maxRounds, sched)
	if err != nil {
		return nil, nil, err
	}
	sol := NewSolution(kind, h.G.N())
	for v, st := range states {
		if rep.CrashedNode(v) {
			continue
		}
		if err := applyPOOut(sol, h, v, alg.EvalPO(st.(*GatherState).Tree)); err != nil {
			return nil, nil, err
		}
	}
	return sol, rep, nil
}

// applyPOOut merges one node's PO output into the solution.
func applyPOOut(sol *Solution, h *Host, v int, out Output) error {
	if sol.Kind == VertexKind {
		sol.Vertices[v] = out.Member
		return nil
	}
	for _, l := range out.Letters {
		to, ok := resolveLetter(h, v, l)
		if !ok {
			return fmt.Errorf("model: node %d selected absent letter %v", v, l)
		}
		sol.Edges[graph.NewEdge(v, to)] = true
	}
	return nil
}
