package model

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/view"
)

// snapFloodState is the untyped checkpointable flood state: letters
// and id are static context reconstructed by Init on resume; best and
// ticks are the dynamic fields the codec carries.
type snapFloodState struct {
	letters []view.Letter
	id      int
	best    int
	ticks   int
}

// snapFloodAlgo is floodMaxAlgo in engine-native form with the full
// checkpoint codec: states carry two varints, messages carry one.
func snapFloodAlgo() EngineAlgo {
	return EngineAlgo{
		Init: func(info NodeInfo) any {
			return &snapFloodState{letters: info.Letters, id: info.ID, best: info.ID, ticks: 1 + info.ID%4}
		},
		Step: func(state any, round int, inbox []Msg, out *Outbox) (any, bool) {
			s := state.(*snapFloodState)
			for _, m := range inbox {
				if v := m.Data.(int); v > s.best {
					s.best = v
				}
			}
			if s.ticks == 0 {
				return s, true
			}
			s.ticks--
			for _, l := range s.letters {
				out.Send(l, s.best)
			}
			return s, false
		},
		Out: func(state any) Output {
			s := state.(*snapFloodState)
			return Output{Member: s.best > s.id}
		},
		EncodeState: func(dst []byte, state any) []byte {
			s := state.(*snapFloodState)
			dst = binary.AppendVarint(dst, int64(s.best))
			return binary.AppendVarint(dst, int64(s.ticks))
		},
		DecodeState: func(src []byte, state any) (any, []byte, error) {
			s := state.(*snapFloodState)
			best, n := binary.Varint(src)
			if n <= 0 {
				return nil, nil, fmt.Errorf("bad best")
			}
			ticks, m := binary.Varint(src[n:])
			if m <= 0 {
				return nil, nil, fmt.Errorf("bad ticks")
			}
			s.best, s.ticks = int(best), int(ticks)
			return s, src[n+m:], nil
		},
		EncodeData: func(dst []byte, data any) []byte {
			return binary.AppendVarint(dst, int64(data.(int)))
		},
		DecodeData: func(src []byte) (any, []byte, error) {
			v, n := binary.Varint(src)
			if n <= 0 {
				return nil, nil, fmt.Errorf("bad payload")
			}
			return int(v), src[n:], nil
		},
	}
}

// snapWordAlgo is the typed flood twin: state packs best<<8 | ticks
// in one word (so the default uint64 codec applies), messages carry
// the packed state.
func snapWordAlgo() WordAlgo {
	return WordAlgo{
		Init: func(v int, info NodeInfo) uint64 {
			return uint64(info.ID)<<8 | uint64(1+info.ID%4)
		},
		Step: func(state *uint64, round int, inbox []WordMsg, out *Outbox) bool {
			best, ticks := *state>>8, *state&0xff
			for _, m := range inbox {
				if b := m.W >> 8; b > best {
					best = b
				}
			}
			*state = best<<8 | ticks
			if ticks == 0 {
				return true
			}
			*state = best<<8 | (ticks - 1)
			out.BroadcastWord(*state)
			return false
		},
		Out: func(state *uint64) Output { return Output{Member: *state>>8 > 0} },
	}
}

// snapHosts is the snapshot differential host set (a subset of
// engineHosts: one regular, one irregular).
func snapHosts() map[string]*Host {
	rng := rand.New(rand.NewSource(7))
	return map[string]*Host{
		"torus6x6":      HostFromGraph(graph.Torus(6, 6)),
		"randomregular": HostFromGraph(graph.RandomRegular(20, 3, rng)),
	}
}

// snapSink collects every snapshot's encoded payload by round.
func snapSink(dst map[int][]byte) *Checkpointer {
	return &Checkpointer{Every: 1, Sink: func(s *Snapshot) error {
		dst[s.Round] = s.Encode()
		return nil
	}}
}

// untypedSummary extracts the dynamic fields for comparison.
func untypedSummary(states []any) [][2]int {
	out := make([][2]int, len(states))
	for v, st := range states {
		s := st.(*snapFloodState)
		out[v] = [2]int{s.best, s.ticks}
	}
	return out
}

// TestSnapshotResumeUntyped pins the untyped resume byte-identical:
// for every host, clean and under two fault profiles, resuming from
// each checkpoint round reproduces the uninterrupted run's final
// states, round count, fault report AND every later checkpoint's
// encoded bytes (content addressing makes that last check equivalent
// to whole-state equality at every subsequent barrier).
func TestSnapshotResumeUntyped(t *testing.T) {
	defer par.Set(par.Set(4))
	for _, prof := range []string{"", "lossy:p=0.2", "crash:f=5,by=2"} {
		for name, h := range snapHosts() {
			n := h.G.N()
			ids := rand.New(rand.NewSource(int64(n))).Perm(4 * n)[:n]
			var sched Schedule
			if prof != "" {
				sched = MustParseProfile(prof).New(h, 99)
			}
			control := map[int][]byte{}
			e1 := NewEngine(h).WithCheckpoints(snapSink(control))
			states1, rounds1, rep1, err := e1.RunStatesFaulty(ids, snapFloodAlgo(), 64, sched)
			if err != nil {
				t.Fatalf("%s/%s: control: %v", name, prof, err)
			}
			sum1 := untypedSummary(states1)
			if len(control) == 0 {
				t.Fatalf("%s/%s: control run took no checkpoints", name, prof)
			}
			for k, payload := range control {
				snap, err := DecodeSnapshot(payload)
				if err != nil {
					t.Fatalf("%s/%s: decode round %d: %v", name, prof, k, err)
				}
				resumed := map[int][]byte{}
				e2 := NewEngine(h).WithCheckpoints(snapSink(resumed)).Resume(snap)
				states2, rounds2, rep2, err := e2.RunStatesFaulty(ids, snapFloodAlgo(), 64, sched)
				if err != nil {
					t.Fatalf("%s/%s: resume from %d: %v", name, prof, k, err)
				}
				if rounds2 != rounds1 {
					t.Errorf("%s/%s: resume from %d: %d rounds (control %d)", name, prof, k, rounds2, rounds1)
				}
				if !reflect.DeepEqual(untypedSummary(states2), sum1) {
					t.Errorf("%s/%s: resume from %d: final states differ", name, prof, k)
				}
				if !reflect.DeepEqual(rep1, rep2) {
					t.Errorf("%s/%s: resume from %d: fault report differs:\n  control %+v\n  resumed %+v", name, prof, k, rep1, rep2)
				}
				for j, want := range control {
					if j <= k {
						continue
					}
					if got, ok := resumed[j]; !ok || string(got) != string(want) {
						t.Errorf("%s/%s: resume from %d: checkpoint at %d not byte-identical to control (present=%v)", name, prof, k, j, ok)
					}
				}
			}
		}
	}
}

// TestSnapshotResumeTyped is the typed twin, exercising the default
// uint64 state codec and the word-lane payload path.
func TestSnapshotResumeTyped(t *testing.T) {
	defer par.Set(par.Set(4))
	for _, prof := range []string{"", "lossy:p=0.2", "crash:f=5,by=2"} {
		for name, h := range snapHosts() {
			n := h.G.N()
			ids := rand.New(rand.NewSource(int64(n))).Perm(4 * n)[:n]
			var sched Schedule
			if prof != "" {
				sched = MustParseProfile(prof).New(h, 99)
			}
			control := map[int][]byte{}
			e1 := NewWordEngine(h).WithCheckpoints(snapSink(control))
			col1, rounds1, rep1, err := e1.RunStatesFaulty(ids, snapWordAlgo(), 64, sched)
			if err != nil {
				t.Fatalf("%s/%s: control: %v", name, prof, err)
			}
			final1 := append([]uint64(nil), col1...)
			if len(control) == 0 {
				t.Fatalf("%s/%s: control run took no checkpoints", name, prof)
			}
			for k, payload := range control {
				snap, err := DecodeSnapshot(payload)
				if err != nil {
					t.Fatalf("%s/%s: decode round %d: %v", name, prof, k, err)
				}
				resumed := map[int][]byte{}
				e2 := NewWordEngine(h).WithCheckpoints(snapSink(resumed)).Resume(snap)
				col2, rounds2, rep2, err := e2.RunStatesFaulty(ids, snapWordAlgo(), 64, sched)
				if err != nil {
					t.Fatalf("%s/%s: resume from %d: %v", name, prof, k, err)
				}
				if rounds2 != rounds1 || !reflect.DeepEqual(col2, final1) {
					t.Errorf("%s/%s: resume from %d: rounds/column differ", name, prof, k)
				}
				if !reflect.DeepEqual(rep1, rep2) {
					t.Errorf("%s/%s: resume from %d: fault report differs", name, prof, k)
				}
				for j, want := range control {
					if j <= k {
						continue
					}
					if got, ok := resumed[j]; !ok || string(got) != string(want) {
						t.Errorf("%s/%s: resume from %d: checkpoint at %d not byte-identical", name, prof, k, j)
					}
				}
			}
		}
	}
}

// TestSnapshotRequestNowCancel is the watchdog pattern: RequestNow
// then cancel captures a checkpoint at the very barrier the
// cancellation lands on, and resuming it completes with the control
// run's exact result.
func TestSnapshotRequestNowCancel(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	n := h.G.N()
	ids := rand.New(rand.NewSource(5)).Perm(4 * n)[:n]

	e1 := NewWordEngine(h)
	col1, rounds1, err := e1.RunStates(ids, snapWordAlgo(), 64)
	if err != nil {
		t.Fatal(err)
	}
	final1 := append([]uint64(nil), col1...)

	// Interrupted run: on the round-2 barrier the sink fires (due to
	// RequestNow pre-armed via Every=0 + explicit request below) and
	// the context is cancelled before the next round.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Snapshot
	ck := &Checkpointer{Sink: func(s *Snapshot) error {
		last = s
		cancel()
		return nil
	}}
	e2 := NewWordEngine(h)
	e2.Engine().WithContext(ctx)
	e2.WithCheckpoints(ck)
	ck.RequestNow()
	if _, _, err := e2.RunStates(ids, snapWordAlgo(), 64); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if last == nil {
		t.Fatal("no checkpoint captured before cancellation")
	}

	// Round-trip through bytes, resume on a fresh engine.
	snap, err := DecodeSnapshot(last.Encode())
	if err != nil {
		t.Fatal(err)
	}
	e3 := NewWordEngine(h).Resume(snap)
	col3, rounds3, err := e3.RunStates(ids, snapWordAlgo(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if rounds3 != rounds1 || !reflect.DeepEqual(col3, final1) {
		t.Fatalf("resume after cancel: rounds=%d (control %d), column equal=%v", rounds3, rounds1, reflect.DeepEqual(col3, final1))
	}
}

// TestSnapshotDoubleResumeRejected: one in-memory snapshot resumes
// exactly once; the second resume fails without running.
func TestSnapshotDoubleResumeRejected(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	n := h.G.N()
	ids := rand.New(rand.NewSource(5)).Perm(4 * n)[:n]
	var snaps []*Snapshot
	ck := &Checkpointer{Every: 2, Sink: func(s *Snapshot) error { snaps = append(snaps, s); return nil }}
	if _, _, err := NewWordEngine(h).WithCheckpoints(ck).RunStates(ids, snapWordAlgo(), 64); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no checkpoints")
	}
	snap := snaps[0]
	if _, _, err := NewWordEngine(h).Resume(snap).RunStates(ids, snapWordAlgo(), 64); err != nil {
		t.Fatalf("first resume: %v", err)
	}
	if _, _, err := NewWordEngine(h).Resume(snap).RunStates(ids, snapWordAlgo(), 64); err == nil {
		t.Fatal("second resume of one snapshot accepted")
	}
}

// TestSnapshotMismatchRejected: a snapshot only resumes the run shape
// it was taken from — plane kind, schedule presence and host geometry
// are all validated.
func TestSnapshotMismatchRejected(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	n := h.G.N()
	ids := rand.New(rand.NewSource(5)).Perm(4 * n)[:n]
	grab := func() *Snapshot {
		var snaps []*Snapshot
		ck := &Checkpointer{Every: 2, Sink: func(s *Snapshot) error { snaps = append(snaps, s); return nil }}
		if _, _, err := NewWordEngine(h).WithCheckpoints(ck).RunStates(ids, snapWordAlgo(), 64); err != nil {
			t.Fatal(err)
		}
		return snaps[0]
	}

	// Typed snapshot into an untyped run.
	if _, _, err := NewEngine(h).Resume(grab()).RunStates(ids, snapFloodAlgo(), 64); err == nil {
		t.Error("typed snapshot accepted by untyped run")
	}
	// Clean snapshot into a faulty run.
	sched := MustParseProfile("lossy:p=0.2").New(h, 99)
	if _, _, _, err := NewWordEngine(h).Resume(grab()).RunStatesFaulty(ids, snapWordAlgo(), 64, sched); err == nil {
		t.Error("clean snapshot accepted by faulty run")
	}
	// Wrong host geometry.
	h2 := HostFromGraph(graph.Torus(8, 8))
	n2 := h2.G.N()
	ids2 := rand.New(rand.NewSource(5)).Perm(4 * n2)[:n2]
	if _, _, err := NewWordEngine(h2).Resume(grab()).RunStates(ids2, snapWordAlgo(), 64); err == nil {
		t.Error("snapshot accepted by mismatched host")
	}
	// A failed resume must not poison the engine for an ordinary run.
	e := NewWordEngine(h2)
	if _, _, err := e.Resume(grab()).RunStates(ids2, snapWordAlgo(), 64); err == nil {
		t.Fatal("mismatched resume accepted")
	}
	if _, _, err := e.RunStates(ids2, snapWordAlgo(), 64); err != nil {
		t.Errorf("fresh run after failed resume: %v", err)
	}
}

// TestSnapshotDecodeCorrupt: truncations and bit flips never decode.
func TestSnapshotDecodeCorrupt(t *testing.T) {
	h := HostFromGraph(graph.Torus(6, 6))
	n := h.G.N()
	ids := rand.New(rand.NewSource(5)).Perm(4 * n)[:n]
	var payload []byte
	ck := &Checkpointer{Every: 2, Sink: func(s *Snapshot) error { payload = s.Encode(); return nil }}
	if _, _, err := NewWordEngine(h).WithCheckpoints(ck).RunStates(ids, snapWordAlgo(), 64); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(payload); err != nil {
		t.Fatalf("intact payload rejected: %v", err)
	}
	for _, cut := range []int{0, 1, len(payload) / 2, len(payload) - 1} {
		if _, err := DecodeSnapshot(payload[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded", cut)
		}
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 0xff // version byte
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("wrong version decoded")
	}
}

// TestSnapshotCheckpointIdleAllocs: an armed checkpointer whose
// cadence never fires must keep the steady-state round at 0
// allocs/op (the acceptance criterion behind the benchdelta gate).
func TestSnapshotCheckpointIdleAllocs(t *testing.T) {
	defer par.Set(par.Set(1))
	h := HostFromGraph(graph.Cycle(512))
	e := NewEngine(h)
	e.WithCheckpoints(&Checkpointer{Every: 1 << 30})
	states := make([]pulseState, h.G.N())
	runFor := func(rounds int) func() {
		return func() {
			algo, reset := pulseAlgo(states, rounds)
			algo.EncodeState = func(dst []byte, _ any) []byte { return dst }
			algo.DecodeState = func(src []byte, st any) (any, []byte, error) { return st, src, nil }
			reset()
			if _, _, err := e.RunStates(nil, algo, rounds+2); err != nil {
				t.Fatal(err)
			}
		}
	}
	runFor(8)() // warm-up
	short := testing.AllocsPerRun(3, runFor(8))
	long := testing.AllocsPerRun(3, runFor(264))
	if perRound := (long - short) / 256; perRound > 0.01 {
		t.Errorf("idle-checkpoint round allocates: %.3f allocs/round (short %.0f, long %.0f)", perRound, short, long)
	}
}

// TestSnapshotEncodeDecodeRoundTrip covers the payload codec field by
// field, including the faulty counter block.
func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	s := &Snapshot{
		Typed:   true,
		Faulty:  true,
		N:       5,
		Slots:   12,
		Round:   9,
		Halted:  []bool{true, false, true, false, true},
		Crashed: []bool{false, true, false, false, false},
		Dropped: 3, Duplicated: 1, Reordered: 4, DownSteps: 1,
		Pending: []int32{0, 3, 11},
		Words:   []uint64{7, 8, 9},
		States:  []byte{1, 2, 3, 4},
	}
	got, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", s, got)
	}
	u := &Snapshot{
		N: 3, Slots: 6, Round: 2,
		Halted:  []bool{false, false, true},
		Pending: []int32{2, 5},
		Data:    []byte{9, 9},
		States:  []byte{1},
	}
	got, err = DecodeSnapshot(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("untyped round trip mismatch:\n  in  %+v\n  out %+v", u, got)
	}
}
