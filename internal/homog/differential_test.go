package homog

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

// TestHomogeneityScansParallelInvariant pins the parallel homogeneity
// scans against the sequential fallback: identical reports at every
// parallelism level, including the RNG-driven sampler (samples are
// drawn before the fork, so the stream is schedule-independent).
func TestHomogeneityScansParallelInvariant(t *testing.T) {
	c, err := Search(1, 1, SearchOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m := c.MForEpsilon(0.5)
	if m < 4 {
		m = 4
	}

	old := par.Set(1)
	defer par.Set(old)
	seqExact, err := c.HomogeneityExact(m, 5000)
	if err != nil {
		t.Fatal(err)
	}
	seqSample, err := c.HomogeneitySample(m, 40, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}

	par.Set(8)
	parExact, err := c.HomogeneityExact(m, 5000)
	if err != nil {
		t.Fatal(err)
	}
	parSample, err := c.HomogeneitySample(m, 40, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}

	if *seqExact != *parExact {
		t.Fatalf("exact scan diverged: seq %+v par %+v", seqExact, parExact)
	}
	if *seqSample != *parSample {
		t.Fatalf("sampler diverged: seq %+v par %+v", seqSample, parSample)
	}
}

// TestSearchParallelInvariant: the blocked-parallel generator search
// must return the same construction (level, generators, attempt count)
// as the sequential scan.
func TestSearchParallelInvariant(t *testing.T) {
	// searchUncached bypasses the memo so the parallel run really
	// re-executes the blocked scan.
	old := par.Set(1)
	defer par.Set(old)
	seq, err := searchUncached(2, 1, SearchOptions{Seed: 42}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	par.Set(8)
	parc, err := searchUncached(2, 1, SearchOptions{Seed: 42}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Level != parc.Level || seq.Attempts != parc.Attempts || len(seq.Gens) != len(parc.Gens) {
		t.Fatalf("search diverged: seq %+v par %+v", seq, parc)
	}
	for i := range seq.Gens {
		if !seq.Gens[i].Equal(parc.Gens[i]) {
			t.Fatalf("generator %d differs", i)
		}
	}
}
