package homog

import (
	"math/rand"
	"testing"

	"repro/internal/digraph"
	"repro/internal/group"
	"repro/internal/view"
)

// mustSearch finds a construction or fails the test.
func mustSearch(t *testing.T, k, r int) *Construction {
	t.Helper()
	c, err := Search(k, r, SearchOptions{Seed: 42})
	if err != nil {
		t.Fatalf("Search(k=%d, r=%d): %v", k, r, err)
	}
	return c
}

func TestSearchFindsConstruction(t *testing.T) {
	for _, tc := range []struct{ k, r int }{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}} {
		c, err := Search(tc.k, tc.r, SearchOptions{Seed: 1})
		if err != nil {
			t.Errorf("k=%d r=%d: %v", tc.k, tc.r, err)
			continue
		}
		if len(c.Gens) != tc.k {
			t.Errorf("k=%d r=%d: got %d generators", tc.k, tc.r, len(c.Gens))
		}
		if _, err := c.CertifiedGirthFloor(); err != nil {
			t.Errorf("k=%d r=%d: certificate: %v", tc.k, tc.r, err)
		}
	}
}

func TestSearchRejectsBadParams(t *testing.T) {
	if _, err := Search(0, 1, SearchOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Search(1, -1, SearchOptions{}); err == nil {
		t.Error("r=-1 accepted")
	}
}

func TestTauStarIsCompleteOrderedTree(t *testing.T) {
	c := mustSearch(t, 2, 2)
	ot, err := c.TauStar()
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(ot.Tree, view.Complete(2, 2)) {
		t.Error("τ* tree is not T*(2,2)")
	}
	if err := ot.Validate(); err != nil {
		t.Errorf("τ* order invalid: %v", err)
	}
	if got, want := ot.Tree.Size(), 17; got != want {
		t.Errorf("|T*| = %d, want %d", got, want)
	}
}

func TestTauStarIndependentOfM(t *testing.T) {
	// Theorem 3.2(1): the homogeneity type does not depend on ε (hence
	// not on m): interior vertices of H(m) have type τ* for every
	// admissible m.
	c := mustSearch(t, 2, 1)
	tau, err := c.TauStarBallEncoding()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{6, 8, 10} {
		// The all-(m/2) vertex is interior for m >= 2R+2.
		e := make(group.Elem, group.U(c.Level).Dim())
		for i := range e {
			e[i] = m / 2
		}
		typ, err := c.TypeAt(m, e)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if typ != tau {
			t.Errorf("m=%d: interior type differs from τ*", m)
		}
	}
}

func TestUIsFullyHomogeneous(t *testing.T) {
	// Property (P1)-(P3): (U, <) is (1, r)-homogeneous — every element
	// has ordered type τ* (left-invariance + vertex-transitivity).
	c := mustSearch(t, 2, 1)
	tau, err := c.TauStarBallEncoding()
	if err != nil {
		t.Fatal(err)
	}
	u := group.U(c.Level)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		e := u.RandSmall(rng, 20)
		typ, err := c.TypeAt(0, e)
		if err != nil {
			t.Fatal(err)
		}
		if typ != tau {
			t.Errorf("element %v of U has type != τ*", e)
		}
	}
}

func TestInnerFractionAndMForEpsilon(t *testing.T) {
	c := mustSearch(t, 1, 1)
	if f := c.InnerFraction(2); f != 0 {
		t.Errorf("m <= 2R should give 0, got %v", f)
	}
	m := c.MForEpsilon(0.5)
	if m%2 != 0 {
		t.Error("m must be even")
	}
	if c.InnerFraction(m) < 0.5 {
		t.Error("MForEpsilon does not satisfy its own bound")
	}
	if m > 2 && c.InnerFraction(m-2) >= 0.5 {
		t.Error("MForEpsilon is not minimal")
	}
}

func TestHomogeneityExactSmall(t *testing.T) {
	// Full-scan verification of Theorem 3.2 on a materialisable
	// instance: every vertex classified, α must meet the analytic
	// interior bound, girth must exceed 2R+1, and the graph must be
	// 2k-regular (automatic for Cayley graphs; checked via arcs).
	c := mustSearch(t, 2, 1)
	if c.Level > 2 {
		t.Skipf("level %d too large for the exact scan test", c.Level)
	}
	m := 8
	rep, err := c.HomogeneityExact(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != pow(m, group.U(c.Level).Dim()) {
		t.Errorf("N = %d", rep.N)
	}
	if rep.Alpha < rep.InnerBound {
		t.Errorf("measured α=%v below analytic bound %v", rep.Alpha, rep.InnerBound)
	}
	if rep.Girth != -1 && rep.Girth <= 2*c.R+1 {
		t.Errorf("girth %d <= 2R+1", rep.Girth)
	}
	if rep.TauCount <= 0 || rep.TauCount > rep.N {
		t.Errorf("τ count %d out of range", rep.TauCount)
	}
}

func TestHomogeneityExactAlphaImprovesWithM(t *testing.T) {
	c := mustSearch(t, 1, 1)
	if c.Level > 3 {
		t.Skipf("level %d too large", c.Level)
	}
	var prev float64 = -1
	for _, m := range []int{4, 8, 16} {
		rep, err := c.HomogeneityExact(m, 1<<21)
		if err != nil {
			t.Skipf("scan too large at m=%d: %v", m, err)
		}
		if rep.Alpha < prev-0.05 {
			t.Errorf("α decreased sharply: m=%d α=%v prev=%v", m, rep.Alpha, prev)
		}
		prev = rep.Alpha
	}
}

func TestHomogeneitySample(t *testing.T) {
	c := mustSearch(t, 2, 2)
	rng := rand.New(rand.NewSource(3))
	m := c.MForEpsilon(0.25)
	rep, err := c.HomogeneitySample(m, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InteriorAllTau {
		t.Error("an interior vertex had type != τ* — contradicts Section 5.2")
	}
	// The estimate should be in the right ballpark of the bound; allow
	// generous sampling slack.
	if rep.Alpha < rep.InnerBound-0.3 {
		t.Errorf("sampled α=%v far below bound %v", rep.Alpha, rep.InnerBound)
	}
}

func TestHCayleyGirthInheritance(t *testing.T) {
	// Girth of C(H(m), S) through the identity must exceed 2R+1 — the
	// homomorphism argument in code.
	c := mustSearch(t, 2, 2)
	cay, err := c.HCayley(c.MForEpsilon(0.5))
	if err != nil {
		t.Fatal(err)
	}
	id := cay.Node(group.H(c.Level, c.MForEpsilon(0.5)).Identity())
	if g := digraph.UndirectedGirth[string](cay, []string{id}, 2*c.R+1); g != -1 {
		t.Errorf("found cycle of length %d <= 2R+1 in C(H, S)", g)
	}
}

func TestHomogeneityExactRejectsHuge(t *testing.T) {
	c := mustSearch(t, 2, 1)
	if _, err := c.HomogeneityExact(100, 1000); err == nil {
		t.Error("oversized scan accepted")
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestTauStarLevelFour(t *testing.T) {
	// k=2, r=2 lands at level 4 (tuples of 15 coordinates); τ* is still
	// cheap to extract because only the radius-2 ball of U is touched.
	c := mustSearch(t, 2, 2)
	ot, err := c.TauStar()
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(ot.Tree, view.Complete(2, 2)) {
		t.Error("τ* tree is not T*(2,2)")
	}
	if got, want := ot.Tree.Size(), 17; got != want {
		t.Errorf("|T*| = %d, want %d", got, want)
	}
	if err := ot.Validate(); err != nil {
		t.Errorf("τ* order invalid: %v", err)
	}
}

func TestGensAreDistinctAcrossReductions(t *testing.T) {
	// Generators found in W must stay distinct when reinterpreted in
	// H(m) for every even m (otherwise the Cayley graph would degenerate).
	c := mustSearch(t, 2, 1)
	for _, m := range []int{2, 4, 6} {
		if _, err := c.HCayley(m); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}
