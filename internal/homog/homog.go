// Package homog implements the homogeneous-graph construction of
// Theorem 3.2 of the paper: for every k, r and ε > 0, a finite
// 2k-regular (1−ε, r)-homogeneous graph (H, <) of girth > 2r+1.
//
// The pipeline follows Section 5 exactly:
//
//  1. Search for a level i and a k-subset S ⊆ W_i such that the Cayley
//     graph C(W_i, S) has girth > 2r+1 (our constructive stand-in for
//     the probabilistic result of Gamburd et al.); girth is certified
//     by enumerating reduced words.
//  2. Interpret S inside U_i and H_i(m). Since reduction mod 2 is a
//     homomorphism, any short relation in U or H would project to one
//     in W, so C(U_i, S) and C(H_i(m), S) inherit the girth bound.
//  3. Order U by its left-invariant positive-cone order; the radius-r
//     ball of the identity in C(U_i, S) is the ordered complete tree
//     τ* = (T*, <*, λ) — the homogeneity type, independent of ε.
//  4. Restrict the order of U to the finite set Z_m^d underlying
//     H_i(m). Interior elements (coordinates in [r, m−1−r]) have
//     r-neighbourhood type τ*, so choosing m with
//     ((m−2r)/m)^d ≥ 1−ε yields (1−ε, r)-homogeneity.
package homog

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/digraph"
	"repro/internal/group"
	"repro/internal/order"
	"repro/internal/par"
	"repro/internal/view"
)

// Construction is a certified choice of level and generators realising
// Theorem 3.2 for the parameters K and R.
type Construction struct {
	// K is the number of generators; the graphs are 2K-regular.
	K int
	// R is the locality radius; girth is certified to exceed 2R+1.
	R int
	// Level is the index i of the groups W_i, H_i, U_i.
	Level int
	// Gens are the generators: 0/1 tuples, elements of W_Level that are
	// reinterpreted inside H and U.
	Gens []group.Elem
	// Attempts is the number of random generator sets examined by the
	// search before this one was certified.
	Attempts int
}

// SearchOptions bound the randomised generator search.
type SearchOptions struct {
	// MaxLevel is the largest group level to try (default 9).
	MaxLevel int
	// TriesPerLevel is the number of random k-subsets per level
	// (default 400).
	TriesPerLevel int
	// Seed seeds the search's private RNG.
	Seed int64
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.MaxLevel == 0 {
		o.MaxLevel = 9
	}
	if o.TriesPerLevel == 0 {
		o.TriesPerLevel = 400
	}
	return o
}

// searchCache memoises Search results: the search is a pure function
// of (k, r, opts), re-requested with identical parameters by every
// experiment in the suite, so the certified construction is computed
// once per process. Cached constructions are shared — callers must not
// mutate Gens.
var searchCache sync.Map // searchKey -> *Construction

type searchKey struct {
	k, r int
	opts SearchOptions
}

// Search finds a construction for the given parameters: the smallest
// level at which a random k-subset of W_level spans a Cayley graph of
// girth > 2r+1, with the girth certified exactly by reduced-word
// enumeration (Theorem 5.1 stands in as an existence guarantee).
// Results are memoised per (k, r, opts).
func Search(k, r int, opts SearchOptions) (*Construction, error) {
	if k < 1 || r < 0 {
		return nil, fmt.Errorf("homog: bad parameters k=%d r=%d", k, r)
	}
	// Key on the defaulted options so the zero value and its explicit
	// spelling hit the same cache entry.
	key := searchKey{k: k, r: r, opts: opts.withDefaults()}
	if c, ok := searchCache.Load(key); ok {
		return c.(*Construction), nil
	}
	c, err := searchUncached(k, r, opts)
	if err != nil {
		return nil, err
	}
	if prev, loaded := searchCache.LoadOrStore(key, c); loaded {
		return prev.(*Construction), nil
	}
	return c, nil
}

func searchUncached(k, r int, opts SearchOptions) (*Construction, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	need := 2*r + 1
	attempts := 0
	for level := 2; level <= opts.MaxLevel; level++ {
		w := group.W(level)
		if w.Order().BitLen() <= k {
			continue // group too small to host k distinct non-identity elements
		}
		// Draw all candidate generator sets sequentially (so the RNG
		// stream is schedule-independent), then certify girth in
		// parallel blocks, taking the first success in draw order —
		// the same generators and attempt count the sequential search
		// reports, with early exit after the winning block.
		cands := make([][]group.Elem, 0, opts.TriesPerLevel)
		for try := 0; try < opts.TriesPerLevel; try++ {
			if gens := randomSubset(w, k, rng); gens != nil {
				cands = append(cands, gens)
			}
		}
		blk := 4 * par.N()
		for lo := 0; lo < len(cands); lo += blk {
			hi := lo + blk
			if hi > len(cands) {
				hi = len(cands)
			}
			ok := make([]bool, hi-lo)
			par.For(hi-lo, func(j int) {
				ok[j] = w.GirthUpTo(cands[lo+j], need) == -1
			})
			for j, good := range ok {
				if good {
					return &Construction{
						K: k, R: r, Level: level, Gens: cands[lo+j],
						Attempts: attempts + lo + j + 1,
					}, nil
				}
			}
		}
		attempts += len(cands)
	}
	return nil, fmt.Errorf("homog: no generator set with girth > %d found up to level %d", need, opts.MaxLevel)
}

// randomSubset picks k distinct non-identity elements of w.
func randomSubset(w group.Family, k int, rng *rand.Rand) []group.Elem {
	seen := map[string]bool{group.EncodeElem(w.Identity()): true}
	var gens []group.Elem
	for guard := 0; len(gens) < k; guard++ {
		if guard > 100*k {
			return nil
		}
		e := w.Rand(rng)
		key := group.EncodeElem(e)
		if seen[key] {
			continue
		}
		seen[key] = true
		gens = append(gens, e)
	}
	return gens
}

// CertifiedGirthFloor re-certifies that all three Cayley graphs have
// girth > 2R+1 by searching W for short relations (relations in U and
// H(m) project onto relations in W under the mod-2 homomorphism).
func (c *Construction) CertifiedGirthFloor() (int, error) {
	w := group.W(c.Level)
	if g := w.GirthUpTo(c.Gens, 2*c.R+1); g != -1 {
		return 0, fmt.Errorf("homog: construction has a relation of length %d <= %d", g, 2*c.R+1)
	}
	return 2*c.R + 2, nil
}

// UCayley returns the infinite ordered Cayley graph C(U_level, S) as an
// implicit digraph.
func (c *Construction) UCayley() *group.Cayley {
	cay, err := group.NewCayley(group.U(c.Level), c.Gens)
	if err != nil {
		panic(fmt.Sprintf("homog: invalid construction: %v", err))
	}
	return cay
}

// HCayley returns the finite Cayley graph C(H_level(m), S); m must be
// even and at least 2.
func (c *Construction) HCayley(m int) (*group.Cayley, error) {
	fam, err := group.NewFamily(c.Level, m)
	if err != nil {
		return nil, fmt.Errorf("homog: bad modulus: %w", err)
	}
	cay, err := group.NewCayley(fam, c.Gens)
	if err != nil {
		return nil, fmt.Errorf("homog: generators degenerate mod %d: %w", m, err)
	}
	return cay, nil
}

// LessH compares two elements of H (tuples with coordinates in [0, m))
// by the order of U restricted to Z_m^d, exactly as in Section 5.2:
// the elements are reinterpreted as integer tuples and compared in U.
func (c *Construction) LessH(a, b group.Elem) bool {
	return group.U(c.Level).Less(a, b)
}

// NodeLess compares two encoded Cayley nodes by the restricted U-order.
func (c *Construction) NodeLess(u, v string) bool {
	dim := group.U(c.Level).Dim()
	a, err := group.DecodeElem(u, dim)
	if err != nil {
		panic(fmt.Sprintf("homog: bad node %q: %v", u, err))
	}
	b, err := group.DecodeElem(v, dim)
	if err != nil {
		panic(fmt.Sprintf("homog: bad node %q: %v", v, err))
	}
	return c.LessH(a, b)
}

// TauStar computes the homogeneity type τ* = (T*, <*, λ): the ordered
// radius-R view of the identity in C(U, S). It verifies that the view
// is the complete tree (girth > 2R+1 makes the ball tree-like) and
// orders the walks by the U-order of their endpoints.
func (c *Construction) TauStar() (*order.OrderedTree, error) {
	u := group.U(c.Level)
	cay := c.UCayley()
	tree, endpoints := view.BuildWithEndpoints[string](cay, cay.Node(u.Identity()), c.R)
	complete := view.Complete(c.K, c.R)
	if !view.Equal(tree, complete) {
		return nil, fmt.Errorf("homog: identity view is not the complete tree; girth certificate violated")
	}
	// Sort walks by the U-order of their endpoint elements. Distinct
	// walks have distinct endpoints within the ball (tree-likeness).
	walks := tree.Walks()
	keys := make([]string, len(walks))
	elems := make(map[string]group.Elem, len(walks))
	seenEndpoint := make(map[string]string, len(walks))
	for i, w := range walks {
		k := view.Key(w)
		keys[i] = k
		ep := endpoints[k]
		if prev, dup := seenEndpoint[ep]; dup {
			// Two distinct reduced walks reach the same element: a
			// relation of length <= 2R, contradicting the girth
			// certificate.
			return nil, fmt.Errorf("homog: walks %q and %q share endpoint %s; girth certificate violated", prev, k, ep)
		}
		seenEndpoint[ep] = k
		e, err := group.DecodeElem(ep, u.Dim())
		if err != nil {
			return nil, fmt.Errorf("homog: decode endpoint: %w", err)
		}
		elems[k] = e
	}
	sortKeysByU(u, keys, elems)
	rank := make(map[string]int, len(keys))
	for i, k := range keys {
		rank[k] = i
	}
	ot := &order.OrderedTree{Tree: tree, RankOf: rank}
	if err := ot.Validate(); err != nil {
		return nil, fmt.Errorf("homog: τ* validation: %w", err)
	}
	return ot, nil
}

// TauStarBall returns the canonical ordered ball of τ*, the reference
// against which node types are compared (by interned pointer in the
// scan hot loops).
func (c *Construction) TauStarBall() (*order.Ball, error) {
	ot, err := c.TauStar()
	if err != nil {
		return nil, err
	}
	return ot.BallOfSubtree(ot.Tree)
}

// TauStarBallEncoding returns the canonical ordered-ball encoding of
// τ* — the string form, for display and goldens.
func (c *Construction) TauStarBallEncoding() (string, error) {
	ball, err := c.TauStarBall()
	if err != nil {
		return "", err
	}
	return ball.Encode(), nil
}

// BallAt returns the canonical ordered ball of the radius-R
// neighbourhood of the given element in C(H(m), S) under the restricted
// U-order (or in C(U, S) when m == 0).
func (c *Construction) BallAt(m int, e group.Elem) (*order.Ball, error) {
	var cay *group.Cayley
	if m == 0 {
		cay = c.UCayley()
	} else {
		var err error
		cay, err = c.HCayley(m)
		if err != nil {
			return nil, err
		}
	}
	return c.CayleyBall(cay, cay.Node(e))
}

// CayleyBall classifies one node of a Cayley graph of the construction:
// the canonical ordered radius-R ball under the restricted U-order.
// Each ball vertex's element is decoded once (the sort keys), not per
// comparison as NodeLess would.
func (c *Construction) CayleyBall(cay *group.Cayley, node string) (*order.Ball, error) {
	return c.cayleyBallWith(digraph.NewBallScratch[string](), cay, node)
}

// cayleyBallWith is CayleyBall over caller-owned extraction scratch
// (one per scan worker).
func (c *Construction) cayleyBallWith(bs *digraph.BallScratch[string], cay *group.Cayley, node string) (*order.Ball, error) {
	u := group.U(c.Level)
	return order.CanonicalBallImplicitByWith[string, group.Elem](bs, cay, cay.Elem, u.Less, node, c.R)
}

// ClassifyTau reports, for each node of cay, whether its canonical
// ordered ball has type τ*. Classification interns the canonical balls
// and compares against τ*'s representative by pointer; the per-node
// ball extractions run data-parallel, each worker reusing its own
// extraction scratch. The first extraction error, in node order, is
// returned.
func (c *Construction) ClassifyTau(cay *group.Cayley, nodes []string) ([]bool, error) {
	tauBall, err := c.TauStarBall()
	if err != nil {
		return nil, err
	}
	in := order.NewInterner()
	tauBall = in.Canon(tauBall)
	flags := make([]bool, len(nodes))
	errs := make([]error, len(nodes))
	par.ForScratch(len(nodes),
		digraph.NewBallScratch[string],
		func(i int, bs *digraph.BallScratch[string]) {
			ball, err := c.cayleyBallWith(bs, cay, nodes[i])
			if err != nil {
				errs[i] = err
				return
			}
			flags[i] = in.Canon(ball) == tauBall
		})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return flags, nil
}

// TypeAt returns the canonical ordered-ball encoding of the radius-R
// neighbourhood of the given element; see BallAt for the pointer-based
// form the hot loops use.
func (c *Construction) TypeAt(m int, e group.Elem) (string, error) {
	ball, err := c.BallAt(m, e)
	if err != nil {
		return "", err
	}
	return ball.Encode(), nil
}

// InnerFraction is the analytic lower bound ((m−2R)/m)^d on the
// fraction of τ*-type vertices of (H(m), <): the interior cube
// I = [R, (m−1)−R]^d of Section 5.2.
func (c *Construction) InnerFraction(m int) float64 {
	if m <= 2*c.R {
		return 0
	}
	d := group.U(c.Level).Dim()
	return math.Pow(float64(m-2*c.R)/float64(m), float64(d))
}

// MForEpsilon returns the smallest even m such that the analytic
// interior bound guarantees (1−ε, R)-homogeneity.
func (c *Construction) MForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("homog: epsilon must be in (0,1)")
	}
	for m := 2 * c.R; ; m += 2 {
		if m >= 2 && c.InnerFraction(m) >= 1-eps {
			return m
		}
	}
}

// ExactReport is a full-scan homogeneity measurement of (H(m), <).
type ExactReport struct {
	M          int
	N          int     // |H| = m^d
	TauCount   int     // vertices whose type is τ*
	Alpha      float64 // TauCount / N
	InnerBound float64 // analytic lower bound
	TypeCount  int     // number of distinct types observed
	Girth      int     // certified girth of C(H(m), S) through the identity
}

// HomogeneityExact scans every element of H(m) (feasible only when
// m^d <= maxNodes), classifying each vertex's ordered r-neighbourhood.
// The scan rides the ball-sweep engine: the finite Cayley graph is
// materialised once, its underlying undirected host and the restricted
// U-order (as a Rank) are handed to order.SweepMeasureInto, and the
// worker-local tallies merge into counts keyed by interned *Ball —
// identical to the sequential per-element classification at every
// parallelism level.
func (c *Construction) HomogeneityExact(m, maxNodes int) (*ExactReport, error) {
	fam, err := group.NewFamily(c.Level, m)
	if err != nil {
		return nil, err
	}
	total := fam.Order()
	if !total.IsInt64() || total.Int64() > int64(maxNodes) {
		return nil, fmt.Errorf("homog: |H| = %v exceeds scan budget %d", total, maxNodes)
	}
	n := int(total.Int64())
	tauBall, err := c.TauStarBall()
	if err != nil {
		return nil, err
	}
	cay, err := c.HCayley(m)
	if err != nil {
		return nil, err
	}
	in := order.NewInterner()
	tauBall = in.Canon(tauBall)
	// Enumerate Z_m^d by odometer.
	elems := make([]group.Elem, n)
	nodes := make([]string, n)
	e := make(group.Elem, fam.Dim())
	for i := 0; i < n; i++ {
		elems[i] = append(group.Elem(nil), e...)
		nodes[i] = cay.Node(elems[i])
		for j := 0; j < len(e); j++ {
			e[j]++
			if e[j] < m {
				break
			}
			e[j] = 0
		}
	}
	// The whole finite graph fits the scan budget, so materialise it
	// once and hand the scan to the layered ball-sweep engine: the
	// underlying undirected host is built wholesale, the restricted
	// U-order becomes a Rank, and SweepMeasureInto counts every
	// element's canonical ordered ball through worker-local sweepers
	// and tallies into one shared interner — τ* occupancy is then one
	// lookup of the interned τ* representative in the merged counts.
	// Every element is a start vertex — C(H, S) may be disconnected
	// when S does not generate.
	md, mNodes, _, err := digraph.Materialize[string](cay, nodes, n)
	if err != nil {
		return nil, fmt.Errorf("homog: materialise C(H(%d), S): %w", m, err)
	}
	und, err := md.Underlying()
	if err != nil {
		// A parallel pair in the underlying graph is a 2-cycle, which
		// the girth certificate excludes; reaching this indicates a
		// degenerate generator set.
		return nil, fmt.Errorf("homog: C(H(%d), S): %w", m, err)
	}
	mElems := make([]group.Elem, len(mNodes))
	for i, s := range mNodes {
		mElems[i] = cay.Elem(s)
	}
	u := group.U(c.Level)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return u.Less(mElems[perm[a]], mElems[perm[b]]) })
	rank := make(order.Rank, n)
	for pos, v := range perm {
		rank[v] = pos
	}
	hm := order.SweepMeasureInto(in, und, rank, c.R)
	girth := digraph.UndirectedGirth[string](cay, []string{cay.Node(fam.Identity())}, 2*c.R+2)
	return &ExactReport{
		M:          m,
		N:          n,
		TauCount:   hm.Counts[tauBall],
		Alpha:      float64(hm.Counts[tauBall]) / float64(n),
		InnerBound: c.InnerFraction(m),
		TypeCount:  len(hm.Counts),
		Girth:      girth,
	}, nil
}

// SampleReport is a Monte-Carlo homogeneity estimate for large m.
type SampleReport struct {
	M          int
	Samples    int
	TauCount   int
	Alpha      float64 // estimated fraction of τ*-type vertices
	InnerBound float64
	// InteriorAllTau reports whether every sampled interior vertex had
	// type τ* (the paper proves this holds for all of them).
	InteriorAllTau bool
}

// HomogeneitySample estimates the τ*-type fraction of (H(m), <) by
// sampling uniform random elements; it additionally verifies that all
// sampled interior elements (coordinates in [R, m−1−R]) have type τ*.
// Samples are drawn from rng sequentially (schedule-independent
// stream), then classified in parallel.
func (c *Construction) HomogeneitySample(m, samples int, rng *rand.Rand) (*SampleReport, error) {
	fam, err := group.NewFamily(c.Level, m)
	if err != nil {
		return nil, err
	}
	cay, err := c.HCayley(m)
	if err != nil {
		return nil, err
	}
	elems := make([]group.Elem, samples)
	nodes := make([]string, samples)
	for i := range elems {
		elems[i] = fam.Rand(rng)
		nodes[i] = cay.Node(elems[i])
	}
	isTau, err := c.ClassifyTau(cay, nodes)
	if err != nil {
		return nil, err
	}
	rep := &SampleReport{M: m, Samples: samples, InnerBound: c.InnerFraction(m), InteriorAllTau: true}
	for i := 0; i < samples; i++ {
		if isTau[i] {
			rep.TauCount++
		}
		if interior(elems[i], m, c.R) && !isTau[i] {
			rep.InteriorAllTau = false
		}
	}
	rep.Alpha = float64(rep.TauCount) / float64(samples)
	return rep, nil
}

func interior(e group.Elem, m, r int) bool {
	for _, x := range e {
		if x < r || x > (m-1)-r {
			return false
		}
	}
	return true
}

// sortKeysByU sorts walk keys by the U-order of their endpoints.
func sortKeysByU(u group.Family, keys []string, elems map[string]group.Elem) {
	// Simple insertion-free approach: sort.Slice.
	lessFn := func(a, b string) bool { return u.Less(elems[a], elems[b]) }
	sortStrings(keys, lessFn)
}

func sortStrings(ks []string, less func(a, b string) bool) {
	// Insertion sort is fine: |T*| is small (≤ (2k)^r).
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && less(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}
