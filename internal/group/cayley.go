package group

import (
	"fmt"
	"strconv"

	"repro/internal/digraph"
)

// Cayley is the Cayley graph C(G, S) of a family member with respect to
// a generator multiset S = Gens, exposed as an implicit L-digraph with
// alphabet L = {0, …, |S|−1}: each element g has the out-arc
// g → g·s_ℓ labelled ℓ. It implements digraph.Implicit[string]; nodes
// are encoded elements.
//
// S need not generate the group — then the graph is disconnected, as
// the paper allows (Section 5.1).
type Cayley struct {
	fam  Family
	gens []Elem
	invs []Elem
}

var _ digraph.Implicit[string] = (*Cayley)(nil)

// NewCayley validates S (no identity, pairwise distinct) and returns
// the Cayley graph.
func NewCayley(f Family, gens []Elem) (*Cayley, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("group: empty generator set")
	}
	for i, g := range gens {
		if len(g) != f.Dim() {
			return nil, fmt.Errorf("group: generator %d has dim %d, want %d", i, len(g), f.Dim())
		}
		if f.IsIdentity(g) {
			return nil, fmt.Errorf("group: generator %d is the identity (self-loop)", i)
		}
		for j := 0; j < i; j++ {
			if f.Normalize(g).Equal(f.Normalize(gens[j])) {
				return nil, fmt.Errorf("group: generators %d and %d coincide", j, i)
			}
		}
	}
	c := &Cayley{fam: f}
	for _, g := range gens {
		ng := f.Normalize(g)
		c.gens = append(c.gens, ng)
		c.invs = append(c.invs, f.Inv(ng))
	}
	return c, nil
}

// Family returns the group family.
func (c *Cayley) Family() Family { return c.fam }

// Gens returns the generator list. Do not modify.
func (c *Cayley) Gens() []Elem { return c.gens }

// Alphabet returns |S|.
func (c *Cayley) Alphabet() int { return len(c.gens) }

// Node encodes an element as an implicit-digraph vertex.
func (c *Cayley) Node(e Elem) string { return EncodeElem(c.fam.Normalize(e)) }

// Elem decodes a vertex back into a group element.
func (c *Cayley) Elem(v string) Elem {
	e, err := DecodeElem(v, c.fam.Dim())
	if err != nil {
		panic(fmt.Sprintf("group: bad cayley node %q: %v", v, err))
	}
	return e
}

// Out returns the arcs g → g·s_ℓ. One scratch element is reused for
// all the products; only the encoded node strings escape.
func (c *Cayley) Out(v string) []digraph.ArcTo[string] {
	e := c.Elem(v)
	out := make([]digraph.ArcTo[string], len(c.gens))
	buf := make(Elem, len(e))
	for l, s := range c.gens {
		c.fam.mul(buf, e, s, c.fam.Level)
		out[l] = digraph.ArcTo[string]{To: EncodeElem(buf), Label: l}
	}
	return out
}

// In returns the arcs g·s_ℓ^{-1} → g (ArcTo.To is the source).
func (c *Cayley) In(v string) []digraph.ArcTo[string] {
	e := c.Elem(v)
	in := make([]digraph.ArcTo[string], len(c.invs))
	buf := make(Elem, len(e))
	for l, s := range c.invs {
		c.fam.mul(buf, e, s, c.fam.Level)
		in[l] = digraph.ArcTo[string]{To: EncodeElem(buf), Label: l}
	}
	return in
}

// EncodeElem renders a tuple as a comma-separated string. Digits are
// appended into one byte buffer (no per-coordinate Itoa strings): node
// encoding sits on the Cayley-graph hot path, where every Out/In call
// renders each neighbour.
func EncodeElem(e Elem) string {
	buf := make([]byte, 0, 4*len(e))
	for i, x := range e {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	return string(buf)
}

// DecodeElem parses EncodeElem output. The scan is a single pass over
// the bytes — no strings.Split allocation.
func DecodeElem(s string, dim int) (Elem, error) {
	e := make(Elem, dim)
	coord, pos := 0, 0
	for coord < dim {
		start := pos
		neg := false
		if pos < len(s) && s[pos] == '-' {
			neg = true
			pos++
		}
		x, digits := 0, 0
		for pos < len(s) && s[pos] >= '0' && s[pos] <= '9' {
			if x > (1<<62)/10 {
				return nil, fmt.Errorf("group: coordinate %q overflows in %q", s[start:], s)
			}
			x = x*10 + int(s[pos]-'0')
			pos++
			digits++
		}
		if digits == 0 {
			return nil, fmt.Errorf("group: bad coordinate %q in %q", s[start:pos], s)
		}
		if neg {
			x = -x
		}
		e[coord] = x
		coord++
		if coord < dim {
			if pos >= len(s) || s[pos] != ',' {
				return nil, fmt.Errorf("group: %q has fewer than %d coordinates", s, dim)
			}
			pos++
		}
	}
	if pos != len(s) {
		return nil, fmt.Errorf("group: %q has more than %d coordinates", s, dim)
	}
	return e, nil
}

// GirthUpTo returns the length of the shortest nontrivial reduced word
// over S ∪ S^{-1} that evaluates to the identity, considering words of
// length at most maxLen; it returns -1 if there is none. By
// vertex-transitivity this equals the girth of the underlying
// undirected multigraph of C(G, S) when the girth is at most maxLen.
//
// A reduced word never follows letter s_ℓ^{±1} by s_ℓ^{∓1}; any other
// repetition (including s_ℓ s_ℓ when s_ℓ has order 2, and s_ℓ s_j when
// s_j = s_ℓ^{-1} as group elements) legitimately closes a cycle.
func (f Family) GirthUpTo(gens []Elem, maxLen int) int {
	type letter struct {
		gen int
		inv bool
	}
	step := make([]Elem, 0, 2*len(gens))
	letters := make([]letter, 0, 2*len(gens))
	for i, g := range gens {
		step = append(step, f.Normalize(g))
		letters = append(letters, letter{gen: i})
		step = append(step, f.Inv(f.Normalize(g)))
		letters = append(letters, letter{gen: i, inv: true})
	}
	best := -1
	// One preallocated element buffer per depth: the DFS visits one
	// child at a time, so buf[d] is free for reuse once the subtree
	// below it returns — the whole search allocates nothing per node.
	buf := make([]Elem, maxLen+1)
	for i := range buf {
		buf[i] = make(Elem, f.Dim())
	}
	var dfs func(cur Elem, last letter, hasLast bool, depth int)
	dfs = func(cur Elem, last letter, hasLast bool, depth int) {
		if depth > 0 && f.IsIdentity(cur) {
			if best == -1 || depth < best {
				best = depth
			}
			return
		}
		if depth >= maxLen || (best != -1 && depth+1 >= best) {
			return
		}
		for i, s := range step {
			l := letters[i]
			if hasLast && l.gen == last.gen && l.inv != last.inv {
				continue // backtracking
			}
			f.mul(buf[depth+1], cur, s, f.Level)
			dfs(buf[depth+1], l, true, depth+1)
		}
	}
	dfs(f.Identity(), letter{}, false, 0)
	return best
}
