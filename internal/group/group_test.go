package group

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
)

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, 2); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := NewFamily(2, 3); err == nil {
		t.Error("odd modulus accepted")
	}
	if _, err := NewFamily(2, 1); err == nil {
		t.Error("modulus 1 accepted")
	}
	for _, f := range []Family{U(1), U(4), W(3), H(2, 6)} {
		if f.Dim() != 1<<f.Level-1 {
			t.Errorf("%v: dim %d", f, f.Dim())
		}
	}
}

func TestOrderOfFamilies(t *testing.T) {
	if W(3).Order().Int64() != 128 {
		t.Errorf("|W_3| = %v, want 2^7 = 128", W(3).Order())
	}
	if H(2, 6).Order().Int64() != 216 {
		t.Errorf("|H_2(6)| = %v, want 6^3", H(2, 6).Order())
	}
	if U(2).Order() != nil {
		t.Error("U should be infinite")
	}
}

func TestIdentityAndNormalize(t *testing.T) {
	f := H(2, 4)
	id := f.Identity()
	if !f.IsIdentity(id) {
		t.Error("identity not identity")
	}
	a := Elem{-1, 5, 7}
	n := f.Normalize(a)
	want := Elem{3, 1, 3}
	if !n.Equal(want) {
		t.Errorf("normalize = %v, want %v", n, want)
	}
	if f.IsIdentity(Elem{4, 0, 0}) != true {
		t.Error("4 ≡ 0 mod 4")
	}
}

func TestMulSemidirectAction(t *testing.T) {
	// In W_2 = Z_2² ⋊ Z_2, (x,y|z)(x',y'|z') swaps (x',y') iff z odd.
	f := W(2)
	a := Elem{1, 0, 1} // z odd
	b := Elem{1, 0, 0}
	got := f.Mul(a, b)
	// a·b = (x+y', y+x' | z+z') = (1+0, 0+1 | 1) = (1,1,1).
	if !got.Equal(Elem{1, 1, 1}) {
		t.Errorf("W2 mul = %v, want (1,1,1)", got)
	}
	// With z even no swap: (0,1|0)(1,0|1) = (1,1|1).
	got = f.Mul(Elem{0, 1, 0}, Elem{1, 0, 1})
	if !got.Equal(Elem{1, 1, 1}) {
		t.Errorf("W2 mul = %v, want (1,1,1)", got)
	}
}

func TestNonAbelian(t *testing.T) {
	f := W(2)
	a := Elem{1, 0, 0}
	b := Elem{0, 0, 1}
	if f.Mul(a, b).Equal(f.Mul(b, a)) {
		t.Error("W_2 should be non-abelian")
	}
}

func randTriple(f Family, rng *rand.Rand) (a, b, c Elem) {
	if f.Finite() {
		return f.Rand(rng), f.Rand(rng), f.Rand(rng)
	}
	return f.RandSmall(rng, 5), f.RandSmall(rng, 5), f.RandSmall(rng, 5)
}

func TestQuickGroupAxioms(t *testing.T) {
	for _, f := range []Family{U(1), U(2), U(3), W(2), W(3), W(4), H(2, 6), H(3, 4)} {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				a, b, c := randTriple(f, rng)
				id := f.Identity()
				// Associativity.
				if !f.Mul(f.Mul(a, b), c).Equal(f.Mul(a, f.Mul(b, c))) {
					return false
				}
				// Identity laws.
				if !f.Mul(a, id).Equal(f.Normalize(a)) || !f.Mul(id, a).Equal(f.Normalize(a)) {
					return false
				}
				// Inverse laws.
				if !f.IsIdentity(f.Mul(a, f.Inv(a))) || !f.IsIdentity(f.Mul(f.Inv(a), a)) {
					return false
				}
				// Anti-homomorphism of inversion: (ab)^{-1} = b^{-1} a^{-1}.
				return f.Inv(f.Mul(a, b)).Equal(f.Mul(f.Inv(b), f.Inv(a)))
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickReductionHomomorphisms(t *testing.T) {
	// ψ: U → H, φ': H → W, φ: U → W commute with multiplication and
	// with each other (the commuting diagram of Section 5.2).
	u, h, w := U(3), H(3, 6), W(3)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := u.RandSmall(rng, 7), u.RandSmall(rng, 7)
		// ψ is a homomorphism.
		pa, _ := u.Reduce(a, h)
		pb, _ := u.Reduce(b, h)
		pab, _ := u.Reduce(u.Mul(a, b), h)
		if !h.Mul(pa, pb).Equal(pab) {
			return false
		}
		// φ' is a homomorphism.
		wa, _ := h.Reduce(pa, w)
		wb, _ := h.Reduce(pb, w)
		wab, _ := h.Reduce(h.Mul(pa, pb), w)
		if !w.Mul(wa, wb).Equal(wab) {
			return false
		}
		// The diagram commutes: φ = φ' ∘ ψ.
		direct, _ := u.Reduce(a, w)
		return direct.Equal(wa)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	// H(3,6) -> W(3) requires 2 | 6: fine. H(3,6) -> H(3,4) must fail.
	if _, err := H(3, 6).Reduce(H(3, 6).Identity(), H(3, 4)); err == nil {
		t.Error("reduction with non-dividing modulus accepted")
	}
	if _, err := U(2).Reduce(U(2).Identity(), U(3)); err == nil {
		t.Error("cross-level reduction accepted")
	}
	if _, err := H(2, 4).Reduce(H(2, 4).Identity(), U(2)); err == nil {
		t.Error("reduction to infinite family accepted")
	}
}

func TestQuickOrderLaws(t *testing.T) {
	u := U(3)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randTriple(u, rng)
		// Totality: exactly one of a<b, b<a, a=b.
		lt, gt, eq := u.Less(a, b), u.Less(b, a), a.Equal(b)
		cnt := 0
		for _, x := range []bool{lt, gt, eq} {
			if x {
				cnt++
			}
		}
		if cnt != 1 {
			return false
		}
		// Left-invariance: a<b implies ca<cb.
		if lt && !u.Less(u.Mul(c, a), u.Mul(c, b)) {
			return false
		}
		// Transitivity.
		if u.Less(a, b) && u.Less(b, c) && !u.Less(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPositiveCone(t *testing.T) {
	u := U(2)
	if !u.Positive(Elem{0, 0, 1}) || !u.Positive(Elem{-5, 3, 0}) {
		t.Error("positive cone wrong on positives")
	}
	if u.Positive(Elem{1, -1, 0}) || u.Positive(Elem{0, 0, 0}) || u.Positive(Elem{3, 0, -1}) {
		t.Error("positive cone wrong on non-positives")
	}
}

func TestNewCayleyValidation(t *testing.T) {
	f := W(2)
	if _, err := NewCayley(f, nil); err == nil {
		t.Error("empty generators accepted")
	}
	if _, err := NewCayley(f, []Elem{f.Identity()}); err == nil {
		t.Error("identity generator accepted")
	}
	if _, err := NewCayley(f, []Elem{{1, 0, 0}, {1, 0, 0}}); err == nil {
		t.Error("duplicate generators accepted")
	}
	if _, err := NewCayley(f, []Elem{{1, 0}}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := NewCayley(f, []Elem{{1, 0, 0}, {0, 1, 0}}); err != nil {
		t.Error("valid generators rejected")
	}
}

func TestCayleyArcsConsistent(t *testing.T) {
	f := W(3)
	rng := rand.New(rand.NewSource(5))
	c, err := NewCayley(f, []Elem{f.Rand(rng), f.Rand(rng)})
	if err != nil {
		t.Fatal(err)
	}
	v := c.Node(f.Rand(rng))
	for _, a := range c.Out(v) {
		found := false
		for _, back := range c.In(a.To) {
			if back.To == v && back.Label == a.Label {
				found = true
			}
		}
		if !found {
			t.Fatalf("out-arc %v of %s has no matching in-arc", a, v)
		}
	}
	if c.Alphabet() != 2 {
		t.Error("alphabet wrong")
	}
}

func TestEncodeDecodeElem(t *testing.T) {
	e := Elem{-3, 0, 12}
	s := EncodeElem(e)
	got, err := DecodeElem(s, 3)
	if err != nil || !got.Equal(e) {
		t.Errorf("roundtrip failed: %q -> %v, %v", s, got, err)
	}
	if _, err := DecodeElem("1,2", 3); err == nil {
		t.Error("wrong dim accepted")
	}
	if _, err := DecodeElem("1,x,3", 3); err == nil {
		t.Error("garbage accepted")
	}
}

func TestGirthCyclicGroup(t *testing.T) {
	// C(Z_m, {1}) is the directed m-cycle: girth m.
	f := H(1, 8)
	if g := f.GirthUpTo([]Elem{{1}}, 10); g != 8 {
		t.Errorf("Z_8 with {1}: girth %d, want 8", g)
	}
	// Generator of order 2: the word s·s has length 2.
	if g := f.GirthUpTo([]Elem{{4}}, 10); g != 2 {
		t.Errorf("Z_8 with {4}: girth %d, want 2", g)
	}
	// {2} generates a 4-cycle.
	if g := f.GirthUpTo([]Elem{{2}}, 10); g != 4 {
		t.Errorf("Z_8 with {2}: girth %d, want 4", g)
	}
	// Two commuting generators have the commutator 4-cycle.
	if g := f.GirthUpTo([]Elem{{1}, {3}}, 10); g != 4 {
		t.Errorf("Z_8 with {1,3}: girth %d, want 4", g)
	}
	// maxLen smaller than the girth: -1.
	if g := f.GirthUpTo([]Elem{{1}}, 5); g != -1 {
		t.Errorf("bounded search should miss the 8-cycle, got %d", g)
	}
}

func TestGirthMatchesMaterializedCayley(t *testing.T) {
	// Cross-check word-enumeration girth against the explicit
	// undirected girth of the materialised Cayley graph of W_2.
	f := W(2)
	gens := []Elem{{1, 0, 0}, {0, 0, 1}}
	c, err := NewCayley(f, gens)
	if err != nil {
		t.Fatal(err)
	}
	wordGirth := f.GirthUpTo(gens, 12)
	implicitGirth := digraph.UndirectedGirth[string](c, []string{c.Node(f.Identity())}, 12)
	if wordGirth != implicitGirth {
		t.Errorf("word girth %d != implicit graph girth %d", wordGirth, implicitGirth)
	}
}

func TestCayleyBallGrowth(t *testing.T) {
	// In U_j, balls grow polynomially (coordinates change by at most 1
	// per step), while the free-group bound is (2k)·(2k-1)^{r-1} per
	// shell. Check the containment B(1, r) ⊆ [-r, r]^d of eq. (2).
	u := U(2)
	rng := rand.New(rand.NewSource(9))
	gens := []Elem{u.RandSmall(rng, 1), u.RandSmall(rng, 1)}
	for i, g := range gens {
		if u.IsIdentity(g) {
			gens[i] = Elem{1, 0, 0}
		}
	}
	if gens[0].Equal(gens[1]) {
		gens[1] = Elem{0, 1, 0}
	}
	c, err := NewCayley(u, gens)
	if err != nil {
		t.Fatal(err)
	}
	r := 3
	ball := digraph.Ball[string](c, c.Node(u.Identity()), r)
	for _, node := range ball.Nodes {
		e := c.Elem(node)
		for _, x := range e {
			if x < -r || x > r {
				t.Fatalf("ball element %v outside [-%d,%d]^d", e, r, r)
			}
		}
	}
}
