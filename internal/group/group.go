// Package group implements the three group families of Section 5 of
// the paper:
//
//	H_1 = Z_m,  H_{i+1} = H_i² ⋊ Z_m   (m even)
//	W_1 = Z_2,  W_{i+1} = W_i² ⋊ Z_2   (iterated wreath products of Z_2)
//	U_1 = Z,    U_{i+1} = U_i² ⋊ Z
//
// where the cyclic factor acts on the direct square by swapping the two
// coordinates iff its value is odd. The underlying set of a level-i
// group is the set of d(i)-tuples of integers, d(i) = 2^i − 1; the
// coordinate-wise reductions mod m and mod 2 are the paper's
// homomorphisms ψ: U → H and φ': H → W.
//
// The package also provides Cayley graphs of these groups as implicit
// digraphs, girth certification by enumerating reduced words, and the
// left-invariant linear order on U defined by the positive cone
// P = { (u_1, …, u_i, 0, …, 0) : u_i > 0 } (the last nonzero
// coordinate is positive).
package group

import (
	"fmt"
	"math/big"
	"math/rand"
)

// Elem is a group element: a tuple of integers of length Dim() for its
// family. Elements of finite families keep coordinates in [0, mod).
type Elem []int

// Clone returns a copy of e.
func (e Elem) Clone() Elem { return append(Elem(nil), e...) }

// Equal reports whether two elements are equal as tuples.
func (e Elem) Equal(f Elem) bool {
	if len(e) != len(f) {
		return false
	}
	for i := range e {
		if e[i] != f[i] {
			return false
		}
	}
	return true
}

// Family identifies one group family at one level.
type Family struct {
	// Level is the index i >= 1 in the iterated construction.
	Level int
	// Mod is 0 for U_i (integer coordinates), 2 for W_i, or any even
	// m >= 2 for H_i.
	Mod int
}

// U returns the infinite family U_level.
func U(level int) Family { return mustFamily(level, 0) }

// W returns the symmetric 2-group family W_level.
func W(level int) Family { return mustFamily(level, 2) }

// H returns the finite family H_level with coordinates mod m (m even).
func H(level, m int) Family { return mustFamily(level, m) }

func mustFamily(level, mod int) Family {
	f, err := NewFamily(level, mod)
	if err != nil {
		panic(err)
	}
	return f
}

// NewFamily validates and returns a family.
func NewFamily(level, mod int) (Family, error) {
	if level < 1 {
		return Family{}, fmt.Errorf("group: level %d < 1", level)
	}
	if mod < 0 || mod == 1 || mod%2 != 0 {
		return Family{}, fmt.Errorf("group: modulus %d must be 0 or a positive even number", mod)
	}
	return Family{Level: level, Mod: mod}, nil
}

// Dim returns the tuple length d(level) = 2^level − 1.
func (f Family) Dim() int { return 1<<f.Level - 1 }

// Finite reports whether the family is finite (Mod > 0).
func (f Family) Finite() bool { return f.Mod > 0 }

// Order returns |G| = Mod^Dim for finite families, or nil for U.
func (f Family) Order() *big.Int {
	if !f.Finite() {
		return nil
	}
	return new(big.Int).Exp(big.NewInt(int64(f.Mod)), big.NewInt(int64(f.Dim())), nil)
}

// Identity returns the identity element.
func (f Family) Identity() Elem { return make(Elem, f.Dim()) }

func (f Family) norm(x int) int {
	if f.Mod == 0 {
		return x
	}
	x %= f.Mod
	if x < 0 {
		x += f.Mod
	}
	return x
}

// Normalize maps each coordinate into [0, Mod) for finite families and
// returns the element unchanged for U.
func (f Family) Normalize(a Elem) Elem {
	out := make(Elem, len(a))
	for i, x := range a {
		out[i] = f.norm(x)
	}
	return out
}

// IsIdentity reports whether a is the identity.
func (f Family) IsIdentity(a Elem) bool {
	for _, x := range a {
		if f.norm(x) != 0 {
			return false
		}
	}
	return true
}

// Mul returns the product a·b.
//
// At level i+1 with a = (x, y | z) and b = (x', y' | z'):
//
//	a·b = (x·x', y·y' | z+z')  if z is even,
//	a·b = (x·y', y·x' | z+z')  if z is odd (the action swaps coordinates).
func (f Family) Mul(a, b Elem) Elem {
	f.check(a)
	f.check(b)
	out := make(Elem, f.Dim())
	f.mul(out, a, b, f.Level)
	return out
}

func (f Family) mul(dst, a, b Elem, level int) {
	if level == 1 {
		dst[0] = f.norm(a[0] + b[0])
		return
	}
	d := 1<<(level-1) - 1 // dim of each direct factor
	x, y, z := a[:d], a[d:2*d], a[2*d]
	xp, yp := b[:d], b[d:2*d]
	if odd(f.norm(z)) {
		xp, yp = yp, xp
	}
	f.mul(dst[:d], x, xp, level-1)
	f.mul(dst[d:2*d], y, yp, level-1)
	dst[2*d] = f.norm(z + b[2*d])
}

// Inv returns the inverse a^{-1}.
func (f Family) Inv(a Elem) Elem {
	f.check(a)
	out := make(Elem, f.Dim())
	f.inv(out, a, f.Level)
	return out
}

func (f Family) inv(dst, a Elem, level int) {
	if level == 1 {
		dst[0] = f.norm(-a[0])
		return
	}
	d := 1<<(level-1) - 1
	x, y, z := a[:d], a[d:2*d], a[2*d]
	if odd(f.norm(z)) {
		// (x, y | z)^{-1} = (y^{-1}, x^{-1} | −z) when z is odd.
		x, y = y, x
	}
	f.inv(dst[:d], x, level-1)
	f.inv(dst[d:2*d], y, level-1)
	dst[2*d] = f.norm(-z)
}

func (f Family) check(a Elem) {
	if len(a) != f.Dim() {
		panic(fmt.Sprintf("group: element has dim %d, want %d", len(a), f.Dim()))
	}
}

// Reduce applies the coordinate-wise reduction homomorphism onto the
// target family at the same level. The source must be U (Mod 0) or have
// a modulus divisible by the target's. These are the paper's maps
// ψ: U → H, φ': H → W, φ: U → W.
func (f Family) Reduce(a Elem, target Family) (Elem, error) {
	if target.Level != f.Level {
		return nil, fmt.Errorf("group: reduce across levels %d -> %d", f.Level, target.Level)
	}
	if !target.Finite() {
		return nil, fmt.Errorf("group: cannot reduce to the infinite family")
	}
	if f.Finite() && f.Mod%target.Mod != 0 {
		return nil, fmt.Errorf("group: modulus %d does not divide %d", target.Mod, f.Mod)
	}
	f.check(a)
	return target.Normalize(a), nil
}

// Rand returns a uniformly random element of a finite family.
func (f Family) Rand(rng *rand.Rand) Elem {
	if !f.Finite() {
		panic("group: Rand on the infinite family U")
	}
	out := make(Elem, f.Dim())
	for i := range out {
		out[i] = rng.Intn(f.Mod)
	}
	return out
}

// RandSmall returns a random element of U with coordinates in
// [-bound, bound]; used for property testing the infinite family.
func (f Family) RandSmall(rng *rand.Rand, bound int) Elem {
	out := make(Elem, f.Dim())
	for i := range out {
		out[i] = rng.Intn(2*bound+1) - bound
	}
	return out
}

// Less reports a < b in the left-invariant linear order on U given by
// the positive cone P = { u : the last nonzero coordinate of u is
// positive }. It must only be called on the U family.
func (f Family) Less(a, b Elem) bool {
	if f.Finite() {
		panic("group: Less is defined on the infinite family U only")
	}
	w := f.Mul(f.Inv(a), b)
	return f.Positive(w)
}

// Positive reports w ∈ P, i.e. 1 < w.
func (f Family) Positive(w Elem) bool {
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] != 0 {
			return w[i] > 0
		}
	}
	return false
}

// String returns e.g. "U_3", "H_3(mod 8)", or "W_4".
func (f Family) String() string {
	switch f.Mod {
	case 0:
		return fmt.Sprintf("U_%d", f.Level)
	case 2:
		return fmt.Sprintf("W_%d", f.Level)
	default:
		return fmt.Sprintf("H_%d(mod %d)", f.Level, f.Mod)
	}
}

// odd reports whether x is odd; correct for negative x as well (Go's %
// yields negative remainders for negative operands).
func odd(x int) bool { return x%2 != 0 }
