package lift

import (
	"fmt"

	"repro/internal/digraph"
)

// ShiftFunc assigns each arc (u, v, label) of the base graph a shift in
// Z_l; the l-lift connects copy i of u to copy (i+shift) mod l of v.
type ShiftFunc func(u, v, label int) int

// Cyclic builds the cyclic l-lift of a base digraph: vertex (v, i) is
// encoded as v + i*g.N(), and the arc (u, v, ℓ) with shift s becomes
// the arcs (u, i) -> (v, (i+s) mod l) for all i. The zero shift yields
// l disjoint copies of g (Fig. 3 uses l = 2). The returned FibreMap is
// the covering map onto g.
func Cyclic(g *digraph.Digraph, l int, shift ShiftFunc) (*digraph.Digraph, digraph.FibreMap, error) {
	if l < 1 {
		return nil, nil, fmt.Errorf("lift: l = %d < 1", l)
	}
	if shift == nil {
		shift = func(int, int, int) int { return 0 }
	}
	n := g.N()
	b := digraph.NewBuilder(n*l, g.Alphabet())
	for u := 0; u < n; u++ {
		for _, a := range g.Out(u) {
			s := shift(u, a.To, a.Label)
			s %= l
			if s < 0 {
				s += l
			}
			for i := 0; i < l; i++ {
				if err := b.AddArc(u+i*n, a.To+((i+s)%l)*n, a.Label); err != nil {
					return nil, nil, fmt.Errorf("lift: cyclic lift: %w", err)
				}
			}
		}
	}
	phi := make(digraph.FibreMap, n*l)
	for v := range phi {
		phi[v] = v % n
	}
	return b.Build(), phi, nil
}

// ConnectedCyclic builds the l-lift of Proposition 4.5: l disjoint
// copies of g re-joined by applying the cyclic permutation i -> i+1 to
// the fibre matching of the single arc (u, v, label). If g is
// connected and the chosen arc lies on a cycle of g, the result is a
// connected l-lift.
func ConnectedCyclic(g *digraph.Digraph, l int, u, v, label int) (*digraph.Digraph, digraph.FibreMap, error) {
	if _, ok := g.OutArc(u, label); !ok {
		return nil, nil, fmt.Errorf("lift: no out-arc of %d with label %d", u, label)
	}
	if a, _ := g.OutArc(u, label); a.To != v {
		return nil, nil, fmt.Errorf("lift: arc (%d, label %d) leads to %d, not %d", u, label, a.To, v)
	}
	return Cyclic(g, l, func(au, av, al int) int {
		if au == u && av == v && al == label {
			return 1
		}
		return 0
	})
}

// VerifyLift checks that (h, phi) is a lift of g and reports the
// common fibre size; connected lifts always have uniform fibres.
func VerifyLift(h, g *digraph.Digraph, phi digraph.FibreMap) (int, error) {
	if err := digraph.VerifyCovering(h, g, phi); err != nil {
		return 0, err
	}
	if g.N() == 0 {
		return 0, nil
	}
	fib := digraph.Fibres(g.N(), phi)
	size := len(fib[0])
	for v, f := range fib {
		if len(f) != size {
			return 0, fmt.Errorf("lift: fibre of %d has size %d, others %d", v, len(f), size)
		}
	}
	return size, nil
}
