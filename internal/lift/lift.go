// Package lift implements graph lifts (covering spaces) of
// L-digraphs: the label-matching product C = H × G of Theorem 3.3
// that transfers the homogeneous order of H onto a lift of an
// arbitrary input graph G, and the cyclic l-lifts used by Fig. 3 and
// Proposition 4.5 (including the cyclic-permutation trick that makes a
// disjoint-union lift connected).
package lift

import (
	"fmt"

	"repro/internal/digraph"
)

// Pair is a vertex of a product lift: an H-coordinate and a
// G-coordinate.
type Pair[A, B comparable] struct {
	H A
	G B
}

// Product is the label-matching product of Theorem 3.3: vertices are
// pairs (h, g), and (h, g) has an out-arc to (h', g') labelled ℓ
// exactly when h -ℓ-> h' in H and g -ℓ-> g' in G. When every node of H
// has all |L| out-labels and all |L| in-labels (H is a 2|L|-regular
// L-digraph, as the homogeneous Cayley graphs are), the projection
// onto G is a covering map, while the projection onto H is a graph
// homomorphism — so the product inherits G's local structure and H's
// girth and order.
type Product[A, B comparable] struct {
	h digraph.Implicit[A]
	g digraph.Implicit[B]
}

var _ digraph.Implicit[Pair[string, int]] = (*Product[string, int])(nil)

// NewProduct validates that the factors share an alphabet.
func NewProduct[A, B comparable](h digraph.Implicit[A], g digraph.Implicit[B]) (*Product[A, B], error) {
	if h.Alphabet() != g.Alphabet() {
		return nil, fmt.Errorf("lift: alphabet mismatch: H has %d, G has %d", h.Alphabet(), g.Alphabet())
	}
	return &Product[A, B]{h: h, g: g}, nil
}

// Alphabet returns |L|.
func (p *Product[A, B]) Alphabet() int { return p.g.Alphabet() }

// Out returns the out-arcs of (h, g): one per out-arc of g, matched
// with h's equi-labelled out-arc.
func (p *Product[A, B]) Out(v Pair[A, B]) []digraph.ArcTo[Pair[A, B]] {
	hOut := p.h.Out(v.H)
	gOut := p.g.Out(v.G)
	out := make([]digraph.ArcTo[Pair[A, B]], 0, len(gOut))
	for _, ga := range gOut {
		for _, ha := range hOut {
			if ha.Label == ga.Label {
				out = append(out, digraph.ArcTo[Pair[A, B]]{
					To:    Pair[A, B]{H: ha.To, G: ga.To},
					Label: ga.Label,
				})
				break
			}
		}
	}
	return out
}

// In returns the in-arcs of (h, g), matched on labels.
func (p *Product[A, B]) In(v Pair[A, B]) []digraph.ArcTo[Pair[A, B]] {
	hIn := p.h.In(v.H)
	gIn := p.g.In(v.G)
	in := make([]digraph.ArcTo[Pair[A, B]], 0, len(gIn))
	for _, ga := range gIn {
		for _, ha := range hIn {
			if ha.Label == ga.Label {
				in = append(in, digraph.ArcTo[Pair[A, B]]{
					To:    Pair[A, B]{H: ha.To, G: ga.To},
					Label: ga.Label,
				})
				break
			}
		}
	}
	return in
}

// PhiG is the projection onto G (a covering map when H is full).
func (p *Product[A, B]) PhiG(v Pair[A, B]) B { return v.G }

// PhiH is the projection onto H (always a graph homomorphism).
func (p *Product[A, B]) PhiH(v Pair[A, B]) A { return v.H }

// Less builds the linear order <_C of Theorem 3.3 on product vertices:
// primarily by the H-coordinate under lessH (the partial order <_p
// pulled back through φ_H), with ties — which only occur inside
// φ_H-fibres, never within a radius-r ball when H has girth > 2r+1 —
// broken by lessG to make the order total.
func (p *Product[A, B]) Less(lessH func(a, b A) bool, lessG func(a, b B) bool) func(u, v Pair[A, B]) bool {
	return func(u, v Pair[A, B]) bool {
		if lessH(u.H, v.H) {
			return true
		}
		if lessH(v.H, u.H) {
			return false
		}
		return lessG(u.G, v.G)
	}
}

// MaterializeFull builds the entire product over the given vertex
// enumerations as a concrete Digraph, returning the digraph, the pair
// naming each vertex, and the covering map onto G (as indices into gs).
func MaterializeFull[A, B comparable](p *Product[A, B], hs []A, gs []B) (*digraph.Digraph, []Pair[A, B], digraph.FibreMap) {
	gIndex := make(map[B]int, len(gs))
	for i, g := range gs {
		gIndex[g] = i
	}
	pairs := make([]Pair[A, B], 0, len(hs)*len(gs))
	index := make(map[Pair[A, B]]int, len(hs)*len(gs))
	for _, h := range hs {
		for _, g := range gs {
			pr := Pair[A, B]{H: h, G: g}
			index[pr] = len(pairs)
			pairs = append(pairs, pr)
		}
	}
	b := digraph.NewBuilder(len(pairs), p.Alphabet())
	phi := make(digraph.FibreMap, len(pairs))
	for i, pr := range pairs {
		phi[i] = gIndex[pr.G]
		for _, a := range p.Out(pr) {
			j, ok := index[a.To]
			if !ok {
				// Out-arc leaves the enumerated vertex set; the caller
				// passed an incomplete enumeration.
				panic(fmt.Sprintf("lift: product arc leaves enumeration at %v", a.To))
			}
			b.MustAddArc(i, j, a.Label)
		}
	}
	return b.Build(), pairs, phi
}
