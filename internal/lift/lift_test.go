package lift

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/digraph"
	"repro/internal/view"
)

// directedCycle returns the n-cycle directed around, single label.
func directedCycle(n int) *digraph.Digraph {
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	return b.Build()
}

// fullTwoLabel returns the Cayley graph of Z_n with generators {1, 2}:
// every node has both labels out and in ("full" in the sense needed by
// Theorem 3.3's factor H).
func fullTwoLabel(n int) *digraph.Digraph {
	b := digraph.NewBuilder(n, 2)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
		b.MustAddArc(i, (i+2)%n, 1)
	}
	return b.Build()
}

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCyclicLiftDisjointCopies(t *testing.T) {
	g := directedCycle(3)
	h, phi, err := Cyclic(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 6 || h.Arcs() != 6 {
		t.Fatalf("2-lift of C3: %v", h)
	}
	size, err := VerifyLift(h, g, phi)
	if err != nil {
		t.Fatalf("not a lift: %v", err)
	}
	if size != 2 {
		t.Errorf("fibre size %d, want 2", size)
	}
	u, err := h.Underlying()
	if err != nil {
		t.Fatal(err)
	}
	if u.Connected() {
		t.Error("zero-shift lift should be disconnected")
	}
	if len(u.Components()) != 2 {
		t.Error("want two copies")
	}
}

func TestConnectedCyclicLift(t *testing.T) {
	g := directedCycle(3)
	h, phi, err := ConnectedCyclic(g, 4, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyLift(h, g, phi); err != nil {
		t.Fatalf("not a lift: %v", err)
	}
	u, err := h.Underlying()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Connected() {
		t.Error("Prop 4.5 lift should be connected")
	}
	// The connected lift of C3 by l=4 is C12.
	if u.Girth() != 12 {
		t.Errorf("girth %d, want 12", u.Girth())
	}
}

func TestConnectedCyclicRejectsMissingArc(t *testing.T) {
	g := directedCycle(3)
	if _, _, err := ConnectedCyclic(g, 2, 0, 2, 0); err == nil {
		t.Error("wrong head accepted")
	}
	if _, _, err := ConnectedCyclic(g, 2, 0, 1, 5); err == nil {
		t.Error("missing label accepted")
	}
}

func TestCyclicRejectsBadL(t *testing.T) {
	if _, _, err := Cyclic(directedCycle(3), 0, nil); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestVerifyLiftDetectsNonUniformFibres(t *testing.T) {
	// A map that is a covering but with non-uniform fibres cannot occur
	// for connected bases; simulate by lying about the fibres.
	g := directedCycle(3)
	h, _, err := Cyclic(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := digraph.FibreMap{0, 1, 2, 0, 1, 2}
	if _, err := VerifyLift(h, g, bad); err != nil {
		// This particular map is actually a valid covering (both copies
		// project identically); it must be accepted.
		t.Fatalf("valid covering rejected: %v", err)
	}
	// Rotating the second copy is still a covering (an automorphism of
	// the base composed with the projection).
	rotated := digraph.FibreMap{0, 1, 2, 1, 2, 0}
	if _, err := VerifyLift(h, g, rotated); err != nil {
		t.Errorf("rotated covering rejected: %v", err)
	}
	// Swapping two vertices of the second copy breaks the homomorphism
	// property: the copy's arc 3 -> 4 would map to 0 -> 2, not an arc.
	worse := digraph.FibreMap{0, 1, 2, 0, 2, 1}
	if _, err := VerifyLift(h, g, worse); err == nil {
		t.Error("non-homomorphism accepted")
	}
}

func TestProductOfCycles(t *testing.T) {
	// C5 × C3 (single label) is the cyclic group product: a single
	// directed 15-cycle, covering both factors.
	p, err := NewProduct[int, int](directedCycle(5), directedCycle(3))
	if err != nil {
		t.Fatal(err)
	}
	d, pairs, phi := MaterializeFull(p, ints(5), ints(3))
	if d.N() != 15 || d.Arcs() != 15 {
		t.Fatalf("product: %v", d)
	}
	if err := digraph.VerifyCovering(d, directedCycle(3), phi); err != nil {
		t.Errorf("projection onto G is not a covering: %v", err)
	}
	u, err := d.Underlying()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Connected() || u.Girth() != 15 {
		t.Errorf("C5 × C3 should be C15; girth=%d connected=%v", u.Girth(), u.Connected())
	}
	if len(pairs) != 15 {
		t.Error("pair bookkeeping wrong")
	}
}

func TestProductAlphabetMismatch(t *testing.T) {
	if _, err := NewProduct[int, int](fullTwoLabel(5), directedCycle(3)); err == nil {
		t.Error("alphabet mismatch accepted")
	}
}

func TestProductCoversPartialG(t *testing.T) {
	// G uses only a subset of labels at each node (a path); H is full.
	// The projection onto G must still be a covering map.
	b := digraph.NewBuilder(3, 2)
	b.MustAddArc(0, 1, 0)
	b.MustAddArc(1, 2, 1)
	g := b.Build()
	h := fullTwoLabel(7)
	p, err := NewProduct[int, int](h, g)
	if err != nil {
		t.Fatal(err)
	}
	d, _, phi := MaterializeFull(p, ints(7), ints(3))
	if d.N() != 21 {
		t.Fatalf("product size %d", d.N())
	}
	if err := digraph.VerifyCovering(d, g, phi); err != nil {
		t.Errorf("not a covering: %v", err)
	}
	// Degrees match G's through the fibres.
	for v := 0; v < d.N(); v++ {
		if d.Degree(v) != g.Degree(phi[v]) {
			t.Fatalf("degree not preserved at %d", v)
		}
	}
}

func TestProductImplicitArcsConsistent(t *testing.T) {
	p, err := NewProduct[int, int](fullTwoLabel(9), fullTwoLabel(4))
	if err != nil {
		t.Fatal(err)
	}
	v := Pair[int, int]{H: 3, G: 1}
	for _, a := range p.Out(v) {
		found := false
		for _, back := range p.In(a.To) {
			if back.To == v && back.Label == a.Label {
				found = true
			}
		}
		if !found {
			t.Fatalf("out-arc %v has no matching in-arc", a)
		}
	}
	if got := len(p.Out(v)); got != 2 {
		t.Errorf("out-degree %d, want 2", got)
	}
}

func TestProductLessOrder(t *testing.T) {
	p, err := NewProduct[int, int](directedCycle(4), directedCycle(3))
	if err != nil {
		t.Fatal(err)
	}
	lessInt := func(a, b int) bool { return a < b }
	less := p.Less(lessInt, lessInt)
	a := Pair[int, int]{H: 1, G: 2}
	b := Pair[int, int]{H: 2, G: 0}
	c := Pair[int, int]{H: 1, G: 0}
	if !less(a, b) || less(b, a) {
		t.Error("H-coordinate must dominate")
	}
	if !less(c, a) || less(a, c) {
		t.Error("G-coordinate must break ties")
	}
	if less(a, a) {
		t.Error("irreflexive")
	}
}

func TestCyclicLiftGirthGrows(t *testing.T) {
	// Lifting unrolls cycles: the connected l-lift of C_n along the
	// cycle is C_{ln}, so girth grows by the factor l. (Remark 1.5: to
	// get large instances, lift.)
	for _, l := range []int{2, 3, 5} {
		h, _, err := ConnectedCyclic(directedCycle(4), l, 0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		u, err := h.Underlying()
		if err != nil {
			t.Fatal(err)
		}
		if u.Girth() != 4*l {
			t.Errorf("l=%d: girth %d, want %d", l, u.Girth(), 4*l)
		}
	}
}

// Property: views are invariant under the product lift — the view of
// (h, g) in H × G equals the view of g in G. This is the fundamental
// invariance (PO algorithms cannot distinguish a graph from its lifts)
// evaluated lazily, without materialising the product.
func TestQuickProductViewInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nH := 4 + rng.Intn(6)
		nG := 3 + rng.Intn(5)
		h := fullTwoLabel(nH)
		g := fullTwoLabel(nG)
		p, err := NewProduct[int, int](h, g)
		if err != nil {
			return false
		}
		r := 1 + rng.Intn(2)
		v := Pair[int, int]{H: rng.Intn(nH), G: rng.Intn(nG)}
		liftView := view.Build[Pair[int, int]](p, v, r)
		baseView := view.Build[int](g, v.G, r)
		return view.Equal(liftView, baseView)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
