// Package intern provides the lock-free-read shard that backs the
// repo's hash-consing tables (order.Interner for canonical ordered
// balls, view.Interner for view-tree nodes).
//
// A Shard publishes an immutable, hash-sorted entry slice through an
// atomic pointer: readers binary-search the current slice with no
// locking at all — the steady state of every interning hot path,
// where the probed value is already registered. Writers serialise on
// the shard mutex, re-probe, and republish the slice copy-on-write
// with one insertion; a published slice is never mutated, which is
// what makes the reader side safe. Collisions of the 64-bit hash are
// resolved by the caller's full structural comparison over Run's
// equal-hash run, so correctness never depends on hash quality.
package intern

import (
	"sync"
	"sync/atomic"
)

// Entry pairs a registered value with its structural hash.
type Entry[V any] struct {
	Hash uint64
	Val  V
}

// Shard is one shard of a hash-consing table. The zero value is
// ready to use.
type Shard[V any] struct {
	// entries is hash-sorted and immutable once published.
	entries atomic.Pointer[[]Entry[V]]
	mu      sync.Mutex // serialises writers (the miss path)
	// Padding to a 64-byte cache line, so adjacent shards' write
	// traffic (the mutex and the republished pointer) does not
	// false-share. The header is one pointer plus one mutex — 16
	// bytes on 64-bit platforms, padded to 64; on 32-bit the struct
	// merely ends up a little over one line, which is still correct.
	_ [48]byte
}

// Run returns the current entries with hash h, lock-free. Callers
// scan the (typically zero- or one-element) run and compare
// structurally.
func (sh *Shard[V]) Run(h uint64) []Entry[V] {
	p := sh.entries.Load()
	if p == nil {
		return nil
	}
	es := *p
	lo := searchHash(es, h)
	hi := lo
	for hi < len(es) && es[hi].Hash == h {
		hi++
	}
	return es[lo:hi]
}

// Lock takes the shard's writer lock. The miss-path protocol is:
// Lock, Run again (another writer may have registered the value),
// construct the representative only if still missing, Publish,
// Unlock.
func (sh *Shard[V]) Lock() { sh.mu.Lock() }

// Unlock releases the shard's writer lock.
func (sh *Shard[V]) Unlock() { sh.mu.Unlock() }

// Publish registers v under h by republishing the entry slice with v
// inserted at its hash position. The caller must hold the shard's
// writer lock.
func (sh *Shard[V]) Publish(h uint64, v V) {
	var old []Entry[V]
	if p := sh.entries.Load(); p != nil {
		old = *p
	}
	i := searchHash(old, h)
	next := make([]Entry[V], len(old)+1)
	copy(next, old[:i])
	next[i] = Entry[V]{Hash: h, Val: v}
	copy(next[i+1:], old[i:])
	sh.entries.Store(&next)
}

// searchHash returns the first index whose hash is >= h.
func searchHash[V any](es []Entry[V], h uint64) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if es[mid].Hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
