package intern

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// publishMissing runs the documented miss-path protocol: probe
// lock-free, lock, re-probe, publish only if still missing. It
// returns the registered representative (structural equality here is
// value equality).
func publishMissing(sh *Shard[uint64], h, v uint64) uint64 {
	for _, e := range sh.Run(h) {
		if e.Val == v {
			return e.Val
		}
	}
	sh.Lock()
	defer sh.Unlock()
	for _, e := range sh.Run(h) {
		if e.Val == v {
			return e.Val
		}
	}
	sh.Publish(h, v)
	return v
}

func TestShardZeroValue(t *testing.T) {
	var sh Shard[uint64]
	if run := sh.Run(42); run != nil {
		t.Errorf("zero-value shard returned %v", run)
	}
}

// TestShardPublishOrder: after arbitrary interleaved publishes the
// published slice is hash-sorted, and every hash's run is exactly the
// values registered under it.
func TestShardPublishOrder(t *testing.T) {
	var sh Shard[uint64]
	rng := rand.New(rand.NewSource(1))
	want := map[uint64][]uint64{}
	for i := 0; i < 200; i++ {
		h := uint64(rng.Intn(40)) // force plenty of equal-hash runs
		v := uint64(i)
		sh.Lock()
		sh.Publish(h, v)
		sh.Unlock()
		want[h] = append(want[h], v)
	}
	es := *sh.entries.Load()
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Hash < es[j].Hash }) {
		t.Fatal("published entries not hash-sorted")
	}
	if len(es) != 200 {
		t.Fatalf("%d entries, want 200", len(es))
	}
	for h, vals := range want {
		run := sh.Run(h)
		if len(run) != len(vals) {
			t.Fatalf("hash %d: run has %d entries, want %d", h, len(run), len(vals))
		}
		got := map[uint64]bool{}
		for _, e := range run {
			if e.Hash != h {
				t.Fatalf("hash %d run contains hash %d", h, e.Hash)
			}
			got[e.Val] = true
		}
		for _, v := range vals {
			if !got[v] {
				t.Fatalf("hash %d: value %d missing from run", h, v)
			}
		}
	}
	if got := sh.Run(999); len(got) != 0 {
		t.Errorf("unregistered hash returned %v", got)
	}
}

// TestShardCopyOnWrite: a slice handed out by Run is immutable — a
// later Publish republishes a copy and never mutates what readers
// already hold.
func TestShardCopyOnWrite(t *testing.T) {
	var sh Shard[uint64]
	sh.Lock()
	sh.Publish(10, 100)
	sh.Publish(30, 300)
	sh.Unlock()
	held := sh.Run(10)
	snapshot := append([]Entry[uint64](nil), held...)
	before := *sh.entries.Load()

	sh.Lock()
	sh.Publish(10, 101) // lands inside the held run's hash
	sh.Publish(20, 200) // lands between the existing hashes
	sh.Unlock()

	if len(held) != len(snapshot) {
		t.Fatal("held run changed length")
	}
	for i := range held {
		if held[i] != snapshot[i] {
			t.Fatalf("held run mutated at %d: %v != %v", i, held[i], snapshot[i])
		}
	}
	for i := range before {
		if before[i].Hash == 20 {
			t.Fatal("old published slice gained the new entry")
		}
	}
	if run := sh.Run(10); len(run) != 2 {
		t.Fatalf("republished run has %d entries, want 2", len(run))
	}
}

// TestShardForcedCollisions: many values under ONE hash — the
// caller-side structural comparison (here value equality) is the only
// thing separating them, and every one stays reachable.
func TestShardForcedCollisions(t *testing.T) {
	var sh Shard[uint64]
	const h = uint64(0xDEADBEEF)
	for v := uint64(0); v < 64; v++ {
		if got := publishMissing(&sh, h, v); got != v {
			t.Fatalf("publish %d returned %d", v, got)
		}
	}
	// Republishing every value must hit, not duplicate.
	for v := uint64(0); v < 64; v++ {
		publishMissing(&sh, h, v)
	}
	if run := sh.Run(h); len(run) != 64 {
		t.Fatalf("collision run has %d entries, want 64", len(run))
	}
}

// TestShardConcurrentStress: goroutines hammer one shard with a small
// hash space (guaranteed hit/miss interleaving and forced collisions)
// under -race. Afterwards every value is registered exactly once.
func TestShardConcurrentStress(t *testing.T) {
	var sh Shard[uint64]
	const (
		workers = 8
		space   = 24 // values per worker round
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds*space; i++ {
				v := uint64(rng.Intn(space))
				h := v % 5 // heavy collisions
				if got := publishMissing(&sh, h, v); got != v {
					t.Errorf("worker %d: publish %d returned %d", w, v, got)
					return
				}
				// Lock-free re-probe must hit.
				found := false
				for _, e := range sh.Run(h) {
					if e.Val == v {
						found = true
					}
				}
				if !found {
					t.Errorf("worker %d: value %d vanished", w, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	es := *sh.entries.Load()
	if len(es) != space {
		t.Fatalf("%d entries, want %d (duplicate publish under contention)", len(es), space)
	}
	if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Hash < es[j].Hash }) {
		t.Fatal("entries not hash-sorted after concurrent publishes")
	}
}

// FuzzShard model-checks the shard against a plain map: any sequence
// of publishes leaves every hash's run equal to the reference.
func FuzzShard(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var sh Shard[uint64]
		ref := map[uint64]map[uint64]bool{}
		for len(data) >= 2 {
			// One byte of hash space (forces runs), one byte of value.
			h := uint64(data[0] % 16)
			v := uint64(data[1])
			data = data[2:]
			if ref[h] == nil {
				ref[h] = map[uint64]bool{}
			}
			publishMissing(&sh, h, v)
			ref[h][v] = true
		}
		for h, vals := range ref {
			run := sh.Run(h)
			if len(run) != len(vals) {
				t.Fatalf("hash %d: %d entries, want %d", h, len(run), len(vals))
			}
			for _, e := range run {
				if !vals[e.Val] {
					t.Fatalf("hash %d: unexpected value %d", h, e.Val)
				}
			}
		}
		if es := sh.entries.Load(); es != nil {
			if !sort.SliceIsSorted(*es, func(i, j int) bool { return (*es)[i].Hash < (*es)[j].Hash }) {
				t.Fatal("entries not hash-sorted")
			}
		}
	})
}
