package ramsey

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestSubsetsEnumeration(t *testing.T) {
	var got [][]int
	Subsets(4, 2, func(s []int) bool {
		got = append(got, append([]int(nil), s...))
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("subset %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(10, 3, func([]int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop failed: %d calls", count)
	}
}

func TestSubsetsDegenerate(t *testing.T) {
	count := 0
	Subsets(3, 0, func(s []int) bool { count++; return true })
	if count != 1 {
		t.Errorf("one empty subset expected, got %d", count)
	}
	Subsets(2, 3, func([]int) bool { t.Error("no subsets expected"); return true })
}

func TestFindMonochromaticConstant(t *testing.T) {
	j, c, ok := FindMonochromatic(10, 2, 4, func([]int) string { return "x" })
	if !ok || c != "x" || len(j) != 4 {
		t.Fatalf("constant colouring should trivially succeed: %v %q %v", j, c, ok)
	}
	for i := 1; i < len(j); i++ {
		if j[i-1] >= j[i] {
			t.Error("result not sorted")
		}
	}
}

func TestFindMonochromaticRamseyR33(t *testing.T) {
	// R(3,3) = 6: any 2-colouring of the edges of K6 has a
	// monochromatic triangle. Try an adversarial colouring.
	color := func(s []int) string {
		// Colour pair {a,b} by parity of a+b.
		if (s[0]+s[1])%2 == 0 {
			return "red"
		}
		return "blue"
	}
	j, c, ok := FindMonochromatic(6, 2, 3, color)
	if !ok {
		t.Fatal("R(3,3)=6 violated?!")
	}
	// Verify the witness.
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			if color([]int{j[a], j[b]}) != c {
				t.Fatalf("witness %v not monochromatic", j)
			}
		}
	}
}

func TestFindMonochromaticImpossible(t *testing.T) {
	// With 3 points and all pair-colours distinct, no monochromatic
	// 3-set exists.
	color := func(s []int) string { return fmt.Sprintf("%d-%d", s[0], s[1]) }
	if _, _, ok := FindMonochromatic(3, 2, 3, color); ok {
		t.Error("impossible instance succeeded")
	}
}

func TestFindMonochromaticDegenerate(t *testing.T) {
	c := func([]int) string { return "z" }
	if _, _, ok := FindMonochromatic(5, 0, 3, c); ok {
		t.Error("t=0 accepted")
	}
	if _, _, ok := FindMonochromatic(5, 3, 2, c); ok {
		t.Error("m<t accepted")
	}
	if _, _, ok := FindMonochromatic(2, 2, 3, c); ok {
		t.Error("universe<m accepted")
	}
	j, _, ok := FindMonochromatic(4, 2, 2, c)
	if !ok || len(j) != 2 {
		t.Error("m == t should pick any t-subset")
	}
}

// Property: the returned witness really is monochromatic, across random
// colourings.
func TestQuickWitnessValid(t *testing.T) {
	f := func(seed int64) bool {
		colors := []string{"a", "b"}
		color := func(s []int) string {
			h := seed
			for _, x := range s {
				h = h*31 + int64(x)
			}
			if h < 0 {
				h = -h
			}
			return colors[h%2]
		}
		j, c, ok := FindMonochromatic(9, 2, 3, color)
		if !ok {
			// R(3,3)=6 <= 9 guarantees existence for 2 colours.
			return false
		}
		valid := true
		Subsets(len(j), 2, func(s []int) bool {
			pair := []int{j[s[0]], j[s[1]]}
			sort.Ints(pair)
			if color(pair) != c {
				valid = false
				return false
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: 3-uniform colourings (t=3) also yield valid witnesses when
// they succeed.
func TestQuickTripleColourings(t *testing.T) {
	f := func(seed int64) bool {
		color := func(s []int) string {
			h := seed
			for _, x := range s {
				h = h*37 + int64(x)
			}
			if h%3 == 0 {
				return "p"
			}
			return "q"
		}
		j, c, ok := FindMonochromatic(11, 3, 4, color)
		if !ok {
			return true // existence not guaranteed in a small universe
		}
		valid := true
		Subsets(len(j), 3, func(s []int) bool {
			trip := []int{j[s[0]], j[s[1]], j[s[2]]}
			if color(trip) != c {
				valid = false
				return false
			}
			return true
		})
		return valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
