// Package ramsey provides an explicit search for monochromatic subsets:
// the finite, constructive counterpart of Ramsey's theorem used in
// Section 4.2 of the paper. There, identifiers are t-subsets of N
// coloured by the output behaviour of an ID-algorithm A on the tree
// T*; a monochromatic m-subset J yields identifier assignments on
// which A is order-invariant.
//
// Ramsey's theorem guarantees a monochromatic subset exists once the
// universe is astronomically large; this package *finds* one in the
// small universes arising from small locality radii, which is all the
// experiments need.
package ramsey

import "sort"

// FindMonochromatic searches {0, …, universe−1} for an m-subset J all
// of whose t-subsets receive the same colour under color. The subset
// is returned in increasing order together with the common colour.
// color must be deterministic; its argument is always sorted
// increasing and must not be retained.
func FindMonochromatic(universe, t, m int, color func(subset []int) string) ([]int, string, bool) {
	if t <= 0 || m < t || universe < m {
		return nil, "", false
	}
	j := make([]int, 0, m)
	var chosen string
	haveColor := false

	// subsetsWithLast enumerates the t-subsets of j that include j's
	// last element, checking each against the chosen colour.
	consistent := func() bool {
		last := j[len(j)-1]
		rest := j[:len(j)-1]
		if len(rest) < t-1 {
			return true
		}
		idx := make([]int, t-1)
		for i := range idx {
			idx[i] = i
		}
		buf := make([]int, t)
		for {
			for i, x := range idx {
				buf[i] = rest[x]
			}
			buf[t-1] = last
			sort.Ints(buf)
			c := color(buf)
			if !haveColor {
				chosen = c
				haveColor = true
			} else if c != chosen {
				return false
			}
			// Next (t-1)-combination of rest.
			i := t - 2
			for i >= 0 && idx[i] == len(rest)-(t-1)+i {
				i--
			}
			if i < 0 {
				return true
			}
			idx[i]++
			for k := i + 1; k < t-1; k++ {
				idx[k] = idx[k-1] + 1
			}
		}
	}

	var rec func(next int) bool
	rec = func(next int) bool {
		if len(j) == m {
			return true
		}
		for cand := next; cand <= universe-(m-len(j)); cand++ {
			j = append(j, cand)
			colorWasSet := haveColor
			savedColor := chosen
			if consistent() && rec(cand+1) {
				return true
			}
			j = j[:len(j)-1]
			if !colorWasSet {
				haveColor = false
				chosen = savedColor
			}
		}
		return false
	}
	if !rec(0) {
		return nil, "", false
	}
	out := append([]int(nil), j...)
	return out, chosen, true
}

// Subsets enumerates the k-subsets of {0, …, n−1} in lexicographic
// order, calling fn with each (the slice is reused; do not retain).
// Enumeration stops early if fn returns false.
func Subsets(n, k int, fn func(subset []int) bool) {
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
