package solve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestMaxMatchingKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C4", graph.Cycle(4), 2},
		{"C5", graph.Cycle(5), 2},
		{"C6", graph.Cycle(6), 3},
		{"C9", graph.Cycle(9), 4},
		{"K4", graph.Complete(4), 2},
		{"K5", graph.Complete(5), 2},
		{"Petersen", graph.Petersen(), 5},
		{"Star5", graph.Star(5), 1},
		{"P6", graph.Path(6), 3},
		{"K33", graph.CompleteBipartite(3, 3), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := MaxMatching(tc.g)
			if len(m) != tc.want {
				t.Errorf("ν = %d, want %d", len(m), tc.want)
			}
			used := make(map[int]bool)
			for _, e := range m {
				if used[e.U] || used[e.V] {
					t.Fatal("witness is not a matching")
				}
				used[e.U], used[e.V] = true, true
				if !tc.g.HasEdge(e.U, e.V) {
					t.Fatal("witness uses a non-edge")
				}
			}
		})
	}
}

func TestMinVertexCoverKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C4", graph.Cycle(4), 2},
		{"C5", graph.Cycle(5), 3},
		{"C7", graph.Cycle(7), 4},
		{"K5", graph.Complete(5), 4},
		{"Star6", graph.Star(6), 1},
		{"Petersen", graph.Petersen(), 6},
		{"K34", graph.CompleteBipartite(3, 4), 3},
		{"P5", graph.Path(5), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := MinVertexCover(tc.g)
			if len(c) != tc.want {
				t.Errorf("τ = %d, want %d", len(c), tc.want)
			}
			in := make(map[int]bool)
			for _, v := range c {
				in[v] = true
			}
			for _, e := range tc.g.Edges() {
				if !in[e.U] && !in[e.V] {
					t.Fatal("witness is not a cover")
				}
			}
		})
	}
}

func TestMaxIndependentSetKnown(t *testing.T) {
	if got := MaxIndependentSetSize(graph.Cycle(9)); got != 4 {
		t.Errorf("α(C9) = %d, want 4", got)
	}
	if got := MaxIndependentSetSize(graph.Petersen()); got != 4 {
		t.Errorf("α(Petersen) = %d, want 4", got)
	}
	is := MaxIndependentSet(graph.Cycle(6))
	g := graph.Cycle(6)
	for i, u := range is {
		for _, v := range is[i+1:] {
			if g.HasEdge(u, v) {
				t.Fatal("witness not independent")
			}
		}
	}
}

func TestMinDominatingSetKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C4", graph.Cycle(4), 2},
		{"C6", graph.Cycle(6), 2},
		{"C7", graph.Cycle(7), 3},
		{"C9", graph.Cycle(9), 3},
		{"K5", graph.Complete(5), 1},
		{"Star6", graph.Star(6), 1},
		{"Petersen", graph.Petersen(), 3},
		{"P6", graph.Path(6), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := MinDominatingSet(tc.g)
			if len(d) != tc.want {
				t.Errorf("γ = %d, want %d", len(d), tc.want)
			}
			in := make(map[int]bool)
			for _, v := range d {
				in[v] = true
			}
			for v := 0; v < tc.g.N(); v++ {
				if in[v] {
					continue
				}
				ok := false
				for _, u := range tc.g.Neighbors(v) {
					if in[int(u)] {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("vertex %d undominated", v)
				}
			}
		})
	}
}

func TestMinEdgeCoverKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C4", graph.Cycle(4), 2},
		{"C5", graph.Cycle(5), 3},
		{"C6", graph.Cycle(6), 3},
		{"K4", graph.Complete(4), 2},
		{"Star5", graph.Star(5), 5},
		{"Petersen", graph.Petersen(), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ec, err := MinEdgeCover(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(ec) != tc.want {
				t.Errorf("ρ = %d, want %d", len(ec), tc.want)
			}
			covered := make([]bool, tc.g.N())
			for _, e := range ec {
				covered[e.U], covered[e.V] = true, true
			}
			for v := 0; v < tc.g.N(); v++ {
				if !covered[v] {
					t.Fatalf("vertex %d uncovered", v)
				}
			}
		})
	}
	g := graph.Disjoint(graph.Path(1), graph.Cycle(3))
	if _, err := MinEdgeCover(g); err == nil {
		t.Error("isolated vertex accepted")
	}
}

func TestMinEdgeDominatingSetKnown(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"C3", graph.Cycle(3), 1},
		{"C6", graph.Cycle(6), 2},
		{"C9", graph.Cycle(9), 3},
		{"C7", graph.Cycle(7), 3},
		{"K4", graph.Complete(4), 2},
		{"Star5", graph.Star(5), 1},
		{"P4", graph.Path(4), 1},
		{"Petersen", graph.Petersen(), 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := MinEdgeDominatingSet(tc.g)
			if len(d) != tc.want {
				t.Errorf("γ' = %d, want %d", len(d), tc.want)
			}
			// Feasibility: every edge shares an endpoint with D.
			for _, e := range tc.g.Edges() {
				ok := false
				for _, f := range d {
					if e.U == f.U || e.U == f.V || e.V == f.U || e.V == f.V {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("edge %v undominated", e)
				}
			}
		})
	}
}

func TestEDSOnCycleIsCeilNOver3(t *testing.T) {
	// γ'(C_n) = ⌈n/3⌉ — the key fact behind the factor-3 lower bound
	// for Δ = 2 (Theorem 1.6 with Δ' = 2: α0 = 4 − 2/2 = 3).
	for n := 3; n <= 15; n++ {
		want := (n + 2) / 3
		if got := MinEdgeDominatingSetSize(graph.Cycle(n)); got != want {
			t.Errorf("γ'(C%d) = %d, want %d", n, got, want)
		}
	}
}

func TestQuickSolversMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6) // tiny: brute force over subsets
		g := graph.RandomGraph(n, 0.25+0.5*rng.Float64(), rng)
		if g.M() > 16 {
			return true // keep brute force cheap
		}
		if MaxMatchingSize(g) != BruteMaxMatching(g) {
			return false
		}
		if MinVertexCoverSize(g) != BruteMinVertexCover(g) {
			return false
		}
		if MinDominatingSetSize(g) != BruteMinDominatingSet(g) {
			return false
		}
		return MinEdgeDominatingSetSize(g) == BruteMinEdgeDominatingSet(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickGallaiIdentity(t *testing.T) {
	// ρ(g) + ν(g) = n for graphs with no isolated vertices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomRegular(8+2*rng.Intn(4), 3, rng)
		s, err := MinEdgeCoverSize(g)
		if err != nil {
			return false
		}
		return s+MaxMatchingSize(g) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickEDSAtMostMaximalMatching(t *testing.T) {
	// A maximum matching is edge dominating, so γ' <= ν; also every
	// edge dominating set has size >= m/(2Δ-1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		g := graph.RandomGraph(n, 0.4, rng)
		if g.M() == 0 {
			return MinEdgeDominatingSetSize(g) == 0
		}
		gamma := MinEdgeDominatingSetSize(g)
		nu := MaxMatchingSize(g)
		if gamma > nu {
			return false
		}
		lb := (g.M() + 2*g.MaxDegree() - 2) / (2*g.MaxDegree() - 1)
		return gamma >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyEDSFeasibleAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, g := range []*graph.Graph{
		graph.Cycle(12),
		graph.Petersen(),
		graph.RandomRegular(16, 4, rng),
		graph.Circulant(13, 1, 5),
	} {
		d := GreedyEdgeDominatingSet(g)
		// Feasibility.
		touched := make([]bool, g.N())
		for _, e := range d {
			touched[e.U], touched[e.V] = true, true
		}
		for _, e := range g.Edges() {
			if !touched[e.U] && !touched[e.V] {
				t.Fatalf("%v: edge %v undominated by greedy", g, e)
			}
		}
		// Upper-bounds the optimum.
		if opt := MinEdgeDominatingSetSize(g); len(d) < opt {
			t.Fatalf("%v: greedy %d below optimum %d?!", g, len(d), opt)
		}
	}
}
