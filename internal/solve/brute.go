package solve

import (
	"repro/internal/graph"
)

// Brute-force reference solvers for tiny instances; used to cross-check
// the branch-and-bound solvers in tests and usable by callers that want
// certainty on very small graphs.

// BruteMaxMatching returns ν(g) by trying all edge subsets (m <= ~20).
func BruteMaxMatching(g *graph.Graph) int {
	edges := g.Edges()
	best := 0
	for mask := 0; mask < 1<<len(edges); mask++ {
		if popcount(mask) <= best {
			continue
		}
		if isMatching(g, edges, mask) {
			best = popcount(mask)
		}
	}
	return best
}

// BruteMinVertexCover returns τ(g) by trying all vertex subsets.
func BruteMinVertexCover(g *graph.Graph) int {
	best := g.N()
	for mask := 0; mask < 1<<g.N(); mask++ {
		if popcount(mask) >= best {
			continue
		}
		if coversAll(g, mask) {
			best = popcount(mask)
		}
	}
	return best
}

// BruteMinDominatingSet returns γ(g) by trying all vertex subsets.
func BruteMinDominatingSet(g *graph.Graph) int {
	best := g.N()
	for mask := 0; mask < 1<<g.N(); mask++ {
		if popcount(mask) >= best {
			continue
		}
		if dominatesAll(g, mask) {
			best = popcount(mask)
		}
	}
	return best
}

// BruteMinEdgeDominatingSet returns γ'(g) by trying all edge subsets.
func BruteMinEdgeDominatingSet(g *graph.Graph) int {
	edges := g.Edges()
	best := len(edges)
	for mask := 0; mask < 1<<len(edges); mask++ {
		if popcount(mask) >= best {
			continue
		}
		if edgeDominatesAll(edges, mask) {
			best = popcount(mask)
		}
	}
	return best
}

func isMatching(g *graph.Graph, edges []graph.Edge, mask int) bool {
	used := make([]bool, g.N())
	for i, e := range edges {
		if mask&(1<<i) == 0 {
			continue
		}
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U], used[e.V] = true, true
	}
	return true
}

func coversAll(g *graph.Graph, mask int) bool {
	for _, e := range g.Edges() {
		if mask&(1<<e.U) == 0 && mask&(1<<e.V) == 0 {
			return false
		}
	}
	return true
}

func dominatesAll(g *graph.Graph, mask int) bool {
	for v := 0; v < g.N(); v++ {
		if mask&(1<<v) != 0 {
			continue
		}
		ok := false
		for _, u := range g.Neighbors(v) {
			if mask&(1<<u) != 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func edgeDominatesAll(edges []graph.Edge, mask int) bool {
	for i, e := range edges {
		if mask&(1<<i) != 0 {
			continue
		}
		ok := false
		for j, f := range edges {
			if mask&(1<<j) == 0 {
				continue
			}
			if e.U == f.U || e.U == f.V || e.V == f.U || e.V == f.V {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
