// Package solve provides exact optimisation solvers for the six simple
// PO-checkable problems of Example 1.1 of the paper: maximum matching,
// minimum vertex cover, maximum independent set, minimum dominating
// set, minimum edge cover, and minimum edge dominating set. They are
// branch-and-bound searches intended for the small worst-case
// instances used in lower-bound experiments (tens of vertices), and
// are cross-checked against brute force in tests.
package solve

import (
	"fmt"

	"repro/internal/graph"
)

// MaxMatching returns a maximum matching of g.
func MaxMatching(g *graph.Graph) []graph.Edge {
	n := g.N()
	matched := make([]bool, n)
	var best []graph.Edge
	cur := make([]graph.Edge, 0, n/2)

	free := n // number of unmatched vertices

	var rec func(v int)
	rec = func(v int) {
		// Skip matched vertices.
		for v < n && matched[v] {
			v++
		}
		if len(cur)+free/2 <= len(best) {
			return // bound: even perfect pairing of free vertices loses
		}
		if v == n {
			if len(cur) > len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		// Branch 1: match v to a free neighbour.
		for _, u := range g.Neighbors(v) {
			if matched[u] {
				continue
			}
			matched[v], matched[u] = true, true
			free -= 2
			cur = append(cur, graph.NewEdge(v, int(u)))
			rec(v + 1)
			cur = cur[:len(cur)-1]
			free += 2
			matched[v], matched[u] = false, false
		}
		// Branch 2: leave v unmatched.
		matched[v] = true
		free--
		rec(v + 1)
		free++
		matched[v] = false
	}
	rec(0)
	return best
}

// MaxMatchingSize returns ν(g).
func MaxMatchingSize(g *graph.Graph) int { return len(MaxMatching(g)) }

// MinVertexCover returns a minimum vertex cover of g.
func MinVertexCover(g *graph.Graph) []int {
	removed := make([]bool, g.N())
	best := allVertices(g.N()) // the trivial cover
	cur := make([]int, 0, g.N())

	// lower bound: a greedy matching among non-removed vertices.
	lower := func() int {
		used := make([]bool, g.N())
		m := 0
		for _, e := range g.Edges() {
			if removed[e.U] || removed[e.V] || used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			m++
		}
		return m
	}

	var rec func()
	rec = func() {
		if len(cur)+lower() >= len(best) {
			return
		}
		// Find an uncovered edge.
		var eu, ev = -1, -1
		for _, e := range g.Edges() {
			if !removed[e.U] && !removed[e.V] {
				eu, ev = e.U, e.V
				break
			}
		}
		if eu == -1 {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		for _, v := range []int{eu, ev} {
			removed[v] = true
			cur = append(cur, v)
			rec()
			cur = cur[:len(cur)-1]
			removed[v] = false
		}
	}
	rec()
	return best
}

// MinVertexCoverSize returns τ(g).
func MinVertexCoverSize(g *graph.Graph) int { return len(MinVertexCover(g)) }

// MaxIndependentSet returns a maximum independent set (the complement
// of a minimum vertex cover).
func MaxIndependentSet(g *graph.Graph) []int {
	inCover := make([]bool, g.N())
	for _, v := range MinVertexCover(g) {
		inCover[v] = true
	}
	var out []int
	for v := 0; v < g.N(); v++ {
		if !inCover[v] {
			out = append(out, v)
		}
	}
	return out
}

// MaxIndependentSetSize returns α(g).
func MaxIndependentSetSize(g *graph.Graph) int { return g.N() - MinVertexCoverSize(g) }

// MinDominatingSet returns a minimum dominating set of g.
func MinDominatingSet(g *graph.Graph) []int {
	n := g.N()
	domCount := make([]int, n) // how many chosen vertices dominate v
	best := allVertices(n)
	cur := make([]int, 0, n)
	maxCover := g.MaxDegree() + 1

	undominated := n

	choose := func(c int, delta int) {
		for _, u := range g.AppendNeighbors([]int{c}, c) {
			if delta > 0 {
				if domCount[u] == 0 {
					undominated--
				}
				domCount[u]++
			} else {
				domCount[u]--
				if domCount[u] == 0 {
					undominated++
				}
			}
		}
	}

	var rec func()
	rec = func() {
		lb := (undominated + maxCover - 1) / maxCover
		if len(cur)+lb >= len(best) {
			return
		}
		if undominated == 0 {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		// Pick the smallest undominated vertex; someone in N[v] must be chosen.
		v := -1
		for u := 0; u < n; u++ {
			if domCount[u] == 0 {
				v = u
				break
			}
		}
		cands := g.AppendNeighbors([]int{v}, v)
		for _, c := range cands {
			choose(c, +1)
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
			choose(c, -1)
		}
	}
	rec()
	return best
}

// MinDominatingSetSize returns γ(g).
func MinDominatingSetSize(g *graph.Graph) int { return len(MinDominatingSet(g)) }

// MinEdgeCover returns a minimum edge cover via Gallai's identity: take
// a maximum matching and greedily cover the remaining vertices with one
// edge each (size n − ν). It fails if g has an isolated vertex.
func MinEdgeCover(g *graph.Graph) ([]graph.Edge, error) {
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			return nil, fmt.Errorf("solve: vertex %d is isolated; no edge cover exists", v)
		}
	}
	m := MaxMatching(g)
	covered := make([]bool, g.N())
	for _, e := range m {
		covered[e.U], covered[e.V] = true, true
	}
	out := append([]graph.Edge(nil), m...)
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			u := int(g.Neighbors(v)[0])
			out = append(out, graph.NewEdge(v, u))
			covered[v] = true
		}
	}
	return out, nil
}

// MinEdgeCoverSize returns ρ(g) = n − ν(g).
func MinEdgeCoverSize(g *graph.Graph) (int, error) {
	ec, err := MinEdgeCover(g)
	if err != nil {
		return 0, err
	}
	return len(ec), nil
}

// MinEdgeDominatingSet returns a minimum edge dominating set: a set D
// of edges such that every edge shares an endpoint with some edge of D.
func MinEdgeDominatingSet(g *graph.Graph) []graph.Edge {
	edges := g.Edges()
	m := len(edges)
	if m == 0 {
		return nil
	}
	// adjacency between edges: e dominates f iff they share an endpoint
	// (or are equal).
	incident := make([][]int, g.N()) // vertex -> incident edge indices
	for i, e := range edges {
		incident[e.U] = append(incident[e.U], i)
		incident[e.V] = append(incident[e.V], i)
	}
	dominators := make([][]int, m) // edge -> indices of edges dominating it
	for i, e := range edges {
		seen := map[int]bool{}
		for _, v := range []int{e.U, e.V} {
			for _, j := range incident[v] {
				if !seen[j] {
					seen[j] = true
					dominators[i] = append(dominators[i], j)
				}
			}
		}
	}
	maxDom := 0
	for _, d := range dominators {
		if len(d) > maxDom {
			maxDom = len(d)
		}
	}

	domCount := make([]int, m)
	undominated := m
	best := make([]int, m)
	for i := range best {
		best[i] = i
	}
	cur := make([]int, 0, m)

	apply := func(j, delta int) {
		for _, i := range dominators[j] {
			if delta > 0 {
				if domCount[i] == 0 {
					undominated--
				}
				domCount[i]++
			} else {
				domCount[i]--
				if domCount[i] == 0 {
					undominated++
				}
			}
		}
	}

	var rec func()
	rec = func() {
		lb := (undominated + maxDom - 1) / maxDom
		if len(cur)+lb >= len(best) {
			return
		}
		if undominated == 0 {
			if len(cur) < len(best) {
				best = append(best[:0], cur...)
			}
			return
		}
		// Some undominated edge; one of its dominators must be chosen.
		f := -1
		for i := 0; i < m; i++ {
			if domCount[i] == 0 {
				f = i
				break
			}
		}
		for _, j := range dominators[f] {
			apply(j, +1)
			cur = append(cur, j)
			rec()
			cur = cur[:len(cur)-1]
			apply(j, -1)
		}
	}
	rec()
	out := make([]graph.Edge, len(best))
	for i, j := range best {
		out[i] = edges[j]
	}
	return out
}

// MinEdgeDominatingSetSize returns γ'(g).
func MinEdgeDominatingSetSize(g *graph.Graph) int { return len(MinEdgeDominatingSet(g)) }

func allVertices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// GreedyEdgeDominatingSet returns a feasible edge dominating set by
// repeatedly selecting the edge that dominates the most currently
// undominated edges. Its size upper-bounds γ'(g), which lower-bounds
// the certified PO ratio n/γ' on view-homogeneous instances too large
// for the exact solver.
func GreedyEdgeDominatingSet(g *graph.Graph) []graph.Edge {
	edges := g.Edges()
	dominated := make([]bool, len(edges))
	incident := make([][]int, g.N())
	for i, e := range edges {
		incident[e.U] = append(incident[e.U], i)
		incident[e.V] = append(incident[e.V], i)
	}
	coverage := func(i int) int {
		c := 0
		seen := map[int]bool{}
		for _, v := range []int{edges[i].U, edges[i].V} {
			for _, j := range incident[v] {
				if !dominated[j] && !seen[j] {
					seen[j] = true
					c++
				}
			}
		}
		return c
	}
	var out []graph.Edge
	remaining := len(edges)
	for remaining > 0 {
		best, bestCov := -1, 0
		for i := range edges {
			if cov := coverage(i); cov > bestCov {
				best, bestCov = i, cov
			}
		}
		if best == -1 {
			break
		}
		out = append(out, edges[best])
		for _, v := range []int{edges[best].U, edges[best].V} {
			for _, j := range incident[v] {
				if !dominated[j] {
					dominated[j] = true
					remaining--
				}
			}
		}
	}
	return out
}
