package algorithms

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
	"repro/internal/view"
)

// oiAsID adapts an OI algorithm to the ID interface: the identified
// ball's vertices are already in increasing-identifier order, so
// forgetting the numeric values leaves exactly the ordered ball. Any
// output difference between two id assignments inducing the same rank
// is therefore a violation of order-invariance.
func oiAsID(alg model.OI) model.ID {
	return model.FuncID{R: alg.Radius(), Fn: func(b *model.IDBall) model.Output {
		return alg.EvalOI(&order.Ball{G: b.G, Root: b.Root})
	}}
}

// oiAlgos enumerates every OI algorithm the package ships, with its
// solution kind.
func oiAlgos() map[string]struct {
	alg  model.OI
	kind model.Kind
} {
	return map[string]struct {
		alg  model.OI
		kind model.Kind
	}{
		"oi-smallest-eds": {OISmallestNeighborEDS(), model.EdgeKind},
		"oi-nonmin-vc":    {OILocalMinJoinsVC(), model.VertexKind},
	}
}

// metamorphicHost draws a random host from a seeded generator.
func metamorphicHost(rng *rand.Rand) *model.Host {
	switch rng.Intn(3) {
	case 0:
		return model.HostFromGraph(graph.Cycle(5 + rng.Intn(20)))
	case 1:
		side := 3 + rng.Intn(3)
		return model.HostFromGraph(graph.Torus(side, side))
	default:
		n := 2 * (5 + rng.Intn(8))
		return model.HostFromGraph(graph.RandomRegular(n, 3, rng))
	}
}

// monotoneIDs maps a rank to identifiers through a random strictly
// increasing transformation: rank-preserving by construction.
func monotoneIDs(rank order.Rank, rng *rand.Rand) []int {
	n := len(rank)
	// gaps[k] >= 1, so position k maps to a strictly increasing value.
	val := make([]int, n)
	cur := rng.Intn(10)
	for k := 0; k < n; k++ {
		cur += 1 + rng.Intn(50)
		val[k] = cur
	}
	ids := make([]int, n)
	for v, k := range rank {
		ids[v] = val[k]
	}
	return ids
}

// solutionsEqual compares two solutions of one kind.
func solutionsEqual(a, b *model.Solution) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == model.VertexKind {
		return reflect.DeepEqual(a.Vertices, b.Vertices)
	}
	return reflect.DeepEqual(a.EdgeSet(), b.EdgeSet())
}

// TestMetamorphicOIInvariance: every OI algorithm's output is
// invariant under rank-preserving relabelings of the identifiers —
// RunOI on the rank and RunID under any two monotone id assignments
// all coincide. Hosts and relabelings are drawn from a seeded
// generator; a failure prints the reproducer seed.
func TestMetamorphicOIInvariance(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := metamorphicHost(rng)
		n := h.G.N()
		rank := order.Rank(rng.Perm(n))
		ids1 := monotoneIDs(rank, rng)
		ids2 := monotoneIDs(rank, rng)
		for name, a := range oiAlgos() {
			base, err := model.RunOI(h, rank, a.alg, a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunOI: %v", seed, name, err)
			}
			s1, err := model.RunID(h, ids1, oiAsID(a.alg), a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunID(ids1): %v", seed, name, err)
			}
			s2, err := model.RunID(h, ids2, oiAsID(a.alg), a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunID(ids2): %v", seed, name, err)
			}
			if !solutionsEqual(base, s1) || !solutionsEqual(s1, s2) {
				t.Errorf("%s is not order-invariant on n=%d host — reproducer seed %d", name, n, seed)
			}
		}
	}
}

// TestMetamorphicCVRoundsMaxID: Cole–Vishkin's measured round count
// depends only on the maximum identifier, not on the assignment — two
// id sets sharing a maximum always use the same number of rounds, and
// the count matches the predicted horizon. Failures print the
// reproducer seed.
func TestMetamorphicCVRoundsMaxID(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(57)
		h := dcycleHost(t, n)
		ids1 := rng.Perm(8 * n)[:n]
		maxID := 0
		for _, id := range ids1 {
			if id > maxID {
				maxID = id
			}
		}
		// ids2: a different assignment with the same maximum — shuffle
		// ids1 and also remap all non-maximal values.
		ids2 := append([]int(nil), ids1...)
		rng.Shuffle(n, func(i, j int) { ids2[i], ids2[j] = ids2[j], ids2[i] })
		for i, id := range ids2 {
			if id != maxID {
				ids2[i] = id / 2
			}
		}
		// Halving may collide; fall back to a pure shuffle (still a
		// different assignment with the same maximum) when it does.
		if !uniqueInts(ids2) {
			ids2 = append([]int(nil), ids1...)
			rng.Shuffle(n, func(i, j int) { ids2[i], ids2[j] = ids2[j], ids2[i] })
		}
		r1, err := ColeVishkinMIS(h, ids1)
		if err != nil {
			t.Fatalf("seed %d: ids1: %v", seed, err)
		}
		r2, err := ColeVishkinMIS(h, ids2)
		if err != nil {
			t.Fatalf("seed %d: ids2: %v", seed, err)
		}
		if r1.Rounds != r2.Rounds {
			t.Errorf("rounds %d vs %d for the same max id %d — reproducer seed %d",
				r1.Rounds, r2.Rounds, maxID, seed)
		}
		if want := CVRounds(maxID) + 1; r1.Rounds != want {
			t.Errorf("measured %d rounds, predicted horizon %d — reproducer seed %d",
				r1.Rounds, want, seed)
		}
		// The same property under a seeded lossy schedule: loss degrades
		// colours, never the round count — no node is ever down, so the
		// max-id horizon still decides when every node halts, for either
		// id assignment.
		const profile = "lossy:p=0.1"
		sched := model.MustParseProfile(profile).New(h, seed)
		f1, err := ColeVishkinMISFaulty(h, ids1, sched)
		if err != nil {
			t.Fatalf("faulty ids1: %v — reproducer (seed %d, profile %q)", err, seed, profile)
		}
		f2, err := ColeVishkinMISFaulty(h, ids2, sched)
		if err != nil {
			t.Fatalf("faulty ids2: %v — reproducer (seed %d, profile %q)", err, seed, profile)
		}
		if f1.Rounds != r1.Rounds || f2.Rounds != r1.Rounds {
			t.Errorf("lossy rounds %d/%d differ from clean %d — reproducer (seed %d, profile %q)",
				f1.Rounds, f2.Rounds, r1.Rounds, seed, profile)
		}
		again, err := ColeVishkinMISFaulty(h, ids1, model.MustParseProfile(profile).New(h, seed))
		if err != nil {
			t.Fatalf("faulty rerun: %v — reproducer (seed %d, profile %q)", err, seed, profile)
		}
		if !solutionsEqual(f1.MIS, again.MIS) || f1.Violations != again.Violations || f1.Uncovered != again.Uncovered {
			t.Errorf("faulty Cole–Vishkin not reproducible — reproducer (seed %d, profile %q)", seed, profile)
		}
	}
}

// floodRankAlgo is an order-invariant engine workload for the faulty
// metamorphic legs: every node floods the largest identifier heard
// for a fixed number of rounds and outputs whether it heard one
// larger than its own. Both the message pattern and the output depend
// on identifiers only through their relative order.
func floodRankAlgo(rounds int) model.RoundAlgo {
	type st struct {
		letters []view.Letter
		id      int
		best    int
	}
	return model.RoundAlgo{
		Init: func(info model.NodeInfo) any {
			return &st{letters: info.Letters, id: info.ID, best: info.ID}
		},
		Step: func(state any, round int, inbox []model.Msg) (any, []model.Msg, bool) {
			s := state.(*st)
			for _, m := range inbox {
				if v := m.Data.(int); v > s.best {
					s.best = v
				}
			}
			if round >= rounds {
				return s, nil, true
			}
			out := make([]model.Msg, 0, len(s.letters))
			for _, l := range s.letters {
				out = append(out, model.Msg{L: l, Data: s.best})
			}
			return s, out, false
		},
		Out: func(state any) model.Output {
			s := state.(*st)
			return model.Output{Member: s.best > s.id}
		},
	}
}

// TestMetamorphicFaultyOIInvariance is the OI-invariance property on
// the faulty message plane: fault decisions are pure functions of
// (seed, round, slot/node) — of the topology, never of identifiers —
// so a faulty execution of an order-invariant workload commutes with
// rank-preserving relabelings. For every seeded host, two monotone id
// assignments of one rank produce byte-identical outputs under the
// same lossy (and churn) schedule. Failures print the reproducer
// (seed, profile).
func TestMetamorphicFaultyOIInvariance(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, profile := range []string{"lossy:p=0.15", "churn:p=0.2,window=1"} {
			rng := rand.New(rand.NewSource(seed))
			h := metamorphicHost(rng)
			n := h.G.N()
			rank := order.Rank(rng.Perm(n))
			ids1 := monotoneIDs(rank, rng)
			ids2 := monotoneIDs(rank, rng)
			sched := model.MustParseProfile(profile).New(h, seed)
			o1, r1, rep1, err := model.RunRoundsFaulty(h, ids1, floodRankAlgo(3), 300, sched)
			if err != nil {
				t.Fatalf("ids1: %v — reproducer (seed %d, profile %q)", err, seed, profile)
			}
			o2, r2, rep2, err := model.RunRoundsFaulty(h, ids2, floodRankAlgo(3), 300, sched)
			if err != nil {
				t.Fatalf("ids2: %v — reproducer (seed %d, profile %q)", err, seed, profile)
			}
			if r1 != r2 || !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(rep1, rep2) {
				t.Errorf("faulty execution not order-invariant on n=%d host — reproducer (seed %d, profile %q)",
					n, seed, profile)
			}
		}
	}
}

func uniqueInts(xs []int) bool {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// floodRankTypedState mirrors floodRankAlgo's boxed state on the
// typed column: identifiers only matter through their order, and the
// word lane carries the current best id.
type floodRankTypedState struct {
	id   int64
	best int64
}

// floodRankTypedAlgo is floodRankAlgo on the typed plane — the same
// order-invariant flood, states in a contiguous column and payloads
// on the uint64 word lane.
func floodRankTypedAlgo(rounds int) model.TypedAlgo[floodRankTypedState] {
	return model.TypedAlgo[floodRankTypedState]{
		Init: func(v int, info model.NodeInfo) floodRankTypedState {
			return floodRankTypedState{id: int64(info.ID), best: int64(info.ID)}
		},
		Step: func(s *floodRankTypedState, round int, inbox []model.WordMsg, out *model.Outbox) bool {
			for _, m := range inbox {
				if v := int64(m.W); v > s.best {
					s.best = v
				}
			}
			if round >= rounds {
				return true
			}
			out.BroadcastWord(uint64(s.best))
			return false
		},
		Out: func(s *floodRankTypedState) model.Output {
			return model.Output{Member: s.best > s.id}
		},
	}
}

// TestMetamorphicTypedFaultyOIInvariance extends the faulty
// OI-invariance property to the typed engine, and couples the two
// lanes: on every seeded host and profile, (a) the typed execution is
// invariant under rank-preserving relabelings, and (b) the typed and
// untyped executions of the same workload agree byte for byte —
// outputs, rounds and fault reports — on every reproducer seed.
func TestMetamorphicTypedFaultyOIInvariance(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, profile := range []string{"lossy:p=0.15", "churn:p=0.2,window=1"} {
			rng := rand.New(rand.NewSource(seed))
			h := metamorphicHost(rng)
			n := h.G.N()
			rank := order.Rank(rng.Perm(n))
			ids1 := monotoneIDs(rank, rng)
			ids2 := monotoneIDs(rank, rng)
			sched := model.MustParseProfile(profile).New(h, seed)
			u1, ur1, urep1, err := model.RunRoundsFaulty(h, ids1, floodRankAlgo(3), 300, sched)
			if err != nil {
				t.Fatalf("untyped ids1: %v — reproducer (seed %d, profile %q)", err, seed, profile)
			}
			t1, tr1, trep1, err := model.RunRoundsTypedFaulty(h, ids1, floodRankTypedAlgo(3), 300, sched)
			if err != nil {
				t.Fatalf("typed ids1: %v — reproducer (seed %d, profile %q)", err, seed, profile)
			}
			t2, tr2, trep2, err := model.RunRoundsTypedFaulty(h, ids2, floodRankTypedAlgo(3), 300, sched)
			if err != nil {
				t.Fatalf("typed ids2: %v — reproducer (seed %d, profile %q)", err, seed, profile)
			}
			if tr1 != tr2 || !reflect.DeepEqual(t1, t2) || !reflect.DeepEqual(trep1, trep2) {
				t.Errorf("typed faulty execution not order-invariant on n=%d host — reproducer (seed %d, profile %q)",
					n, seed, profile)
			}
			if tr1 != ur1 || !reflect.DeepEqual(t1, u1) || !reflect.DeepEqual(trep1, urep1) {
				t.Errorf("typed and untyped faulty executions disagree on n=%d host — reproducer (seed %d, profile %q)",
					n, seed, profile)
			}
		}
	}
}

// TestMetamorphicTypedMatchingRelabel: the randomized matching drawn
// from one rng stream selects the same edge set whatever the (unused)
// identifier labels are, clean and under a seeded schedule — the
// typed proposal exchange is identifier-free. Failures print the
// reproducer (seed, profile).
func TestMetamorphicTypedMatchingRelabel(t *testing.T) {
	const profile = "lossy:p=0.2"
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := metamorphicHost(rng)
		a := RandomizedMatching(h, rand.New(rand.NewSource(seed+100)))
		b := RandomizedMatching(h, rand.New(rand.NewSource(seed+100)))
		if !solutionsEqual(a, b) {
			t.Errorf("matching not a pure function of the rng stream — reproducer seed %d", seed)
		}
		sched := model.MustParseProfile(profile).New(h, seed)
		fa, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(seed+100)), sched)
		if err != nil {
			t.Fatalf("faulty: %v — reproducer (seed %d, profile %q)", err, seed, profile)
		}
		fb, err := RandomizedMatchingFaulty(h, rand.New(rand.NewSource(seed+100)), model.MustParseProfile(profile).New(h, seed))
		if err != nil {
			t.Fatalf("faulty rerun: %v — reproducer (seed %d, profile %q)", err, seed, profile)
		}
		if !solutionsEqual(fa.Matching, fb.Matching) || !reflect.DeepEqual(fa.Report, fb.Report) {
			t.Errorf("faulty matching not reproducible — reproducer (seed %d, profile %q)", seed, profile)
		}
	}
}
