package algorithms

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/order"
)

// oiAsID adapts an OI algorithm to the ID interface: the identified
// ball's vertices are already in increasing-identifier order, so
// forgetting the numeric values leaves exactly the ordered ball. Any
// output difference between two id assignments inducing the same rank
// is therefore a violation of order-invariance.
func oiAsID(alg model.OI) model.ID {
	return model.FuncID{R: alg.Radius(), Fn: func(b *model.IDBall) model.Output {
		return alg.EvalOI(&order.Ball{G: b.G, Root: b.Root})
	}}
}

// oiAlgos enumerates every OI algorithm the package ships, with its
// solution kind.
func oiAlgos() map[string]struct {
	alg  model.OI
	kind model.Kind
} {
	return map[string]struct {
		alg  model.OI
		kind model.Kind
	}{
		"oi-smallest-eds": {OISmallestNeighborEDS(), model.EdgeKind},
		"oi-nonmin-vc":    {OILocalMinJoinsVC(), model.VertexKind},
	}
}

// metamorphicHost draws a random host from a seeded generator.
func metamorphicHost(rng *rand.Rand) *model.Host {
	switch rng.Intn(3) {
	case 0:
		return model.HostFromGraph(graph.Cycle(5 + rng.Intn(20)))
	case 1:
		side := 3 + rng.Intn(3)
		return model.HostFromGraph(graph.Torus(side, side))
	default:
		n := 2 * (5 + rng.Intn(8))
		return model.HostFromGraph(graph.RandomRegular(n, 3, rng))
	}
}

// monotoneIDs maps a rank to identifiers through a random strictly
// increasing transformation: rank-preserving by construction.
func monotoneIDs(rank order.Rank, rng *rand.Rand) []int {
	n := len(rank)
	// gaps[k] >= 1, so position k maps to a strictly increasing value.
	val := make([]int, n)
	cur := rng.Intn(10)
	for k := 0; k < n; k++ {
		cur += 1 + rng.Intn(50)
		val[k] = cur
	}
	ids := make([]int, n)
	for v, k := range rank {
		ids[v] = val[k]
	}
	return ids
}

// solutionsEqual compares two solutions of one kind.
func solutionsEqual(a, b *model.Solution) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == model.VertexKind {
		return reflect.DeepEqual(a.Vertices, b.Vertices)
	}
	return reflect.DeepEqual(a.EdgeSet(), b.EdgeSet())
}

// TestMetamorphicOIInvariance: every OI algorithm's output is
// invariant under rank-preserving relabelings of the identifiers —
// RunOI on the rank and RunID under any two monotone id assignments
// all coincide. Hosts and relabelings are drawn from a seeded
// generator; a failure prints the reproducer seed.
func TestMetamorphicOIInvariance(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := metamorphicHost(rng)
		n := h.G.N()
		rank := order.Rank(rng.Perm(n))
		ids1 := monotoneIDs(rank, rng)
		ids2 := monotoneIDs(rank, rng)
		for name, a := range oiAlgos() {
			base, err := model.RunOI(h, rank, a.alg, a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunOI: %v", seed, name, err)
			}
			s1, err := model.RunID(h, ids1, oiAsID(a.alg), a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunID(ids1): %v", seed, name, err)
			}
			s2, err := model.RunID(h, ids2, oiAsID(a.alg), a.kind)
			if err != nil {
				t.Fatalf("seed %d %s: RunID(ids2): %v", seed, name, err)
			}
			if !solutionsEqual(base, s1) || !solutionsEqual(s1, s2) {
				t.Errorf("%s is not order-invariant on n=%d host — reproducer seed %d", name, n, seed)
			}
		}
	}
}

// TestMetamorphicCVRoundsMaxID: Cole–Vishkin's measured round count
// depends only on the maximum identifier, not on the assignment — two
// id sets sharing a maximum always use the same number of rounds, and
// the count matches the predicted horizon. Failures print the
// reproducer seed.
func TestMetamorphicCVRoundsMaxID(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(57)
		h := dcycleHost(t, n)
		ids1 := rng.Perm(8 * n)[:n]
		maxID := 0
		for _, id := range ids1 {
			if id > maxID {
				maxID = id
			}
		}
		// ids2: a different assignment with the same maximum — shuffle
		// ids1 and also remap all non-maximal values.
		ids2 := append([]int(nil), ids1...)
		rng.Shuffle(n, func(i, j int) { ids2[i], ids2[j] = ids2[j], ids2[i] })
		for i, id := range ids2 {
			if id != maxID {
				ids2[i] = id / 2
			}
		}
		// Halving may collide; fall back to a pure shuffle (still a
		// different assignment with the same maximum) when it does.
		if !uniqueInts(ids2) {
			ids2 = append([]int(nil), ids1...)
			rng.Shuffle(n, func(i, j int) { ids2[i], ids2[j] = ids2[j], ids2[i] })
		}
		r1, err := ColeVishkinMIS(h, ids1)
		if err != nil {
			t.Fatalf("seed %d: ids1: %v", seed, err)
		}
		r2, err := ColeVishkinMIS(h, ids2)
		if err != nil {
			t.Fatalf("seed %d: ids2: %v", seed, err)
		}
		if r1.Rounds != r2.Rounds {
			t.Errorf("rounds %d vs %d for the same max id %d — reproducer seed %d",
				r1.Rounds, r2.Rounds, maxID, seed)
		}
		if want := CVRounds(maxID) + 1; r1.Rounds != want {
			t.Errorf("measured %d rounds, predicted horizon %d — reproducer seed %d",
				r1.Rounds, want, seed)
		}
	}
}

func uniqueInts(xs []int) bool {
	seen := make(map[int]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}
