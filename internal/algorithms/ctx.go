package algorithms

import (
	"context"
	"math/rand"

	"repro/internal/model"
)

// This file is the cooperative-cancellation surface of the flagship
// algorithms: each Ctx variant is its plain twin running on an engine
// armed with model.Engine.WithContext, so a cancelled or
// deadline-expired context aborts the run between rounds with an
// error wrapping ctx.Err() (errors.Is-able against
// context.DeadlineExceeded) and hands every reserved par worker back
// mid-run. These are the entry points the localapproxd service layer
// calls — a 10^6-node request that blows its deadline must free its
// workers, not finish on principle. A nil or background context
// reproduces the plain variant exactly.

// wordEngineCtx builds a word-lane engine armed with ctx.
func wordEngineCtx(ctx context.Context, h *model.Host) *model.WordEngine {
	return model.TypedOn[uint64](model.NewEngine(h).WithContext(ctx))
}

// ColeVishkinMISCtx is ColeVishkinMIS under cooperative cancellation.
func ColeVishkinMISCtx(ctx context.Context, h *model.Host, ids []int) (*ColeVishkinResult, error) {
	return coleVishkinOn(wordEngineCtx(ctx, h), h, ids)
}

// ColeVishkinMISFaultyCtx is ColeVishkinMISFaulty under cooperative
// cancellation.
func ColeVishkinMISFaultyCtx(ctx context.Context, h *model.Host, ids []int, sched model.Schedule) (*FaultyCVResult, error) {
	return coleVishkinFaultyOn(wordEngineCtx(ctx, h), h, ids, sched)
}

// RandomizedMatchingCtx is RandomizedMatching under cooperative
// cancellation. Unlike the plain variant a run can now legitimately
// fail (the context died mid-protocol), so it returns an error
// instead of promising success.
func RandomizedMatchingCtx(ctx context.Context, h *model.Host, rng *rand.Rand) (*model.Solution, error) {
	return randomizedMatchingErr(wordEngineCtx(ctx, h), h, rng)
}

// RandomizedMatchingFaultyCtx is RandomizedMatchingFaulty under
// cooperative cancellation.
func RandomizedMatchingFaultyCtx(ctx context.Context, h *model.Host, rng *rand.Rand, sched model.Schedule) (*FaultyMatchingResult, error) {
	return randomizedMatchingFaultyOn(wordEngineCtx(ctx, h), h, rng, sched)
}
