package algorithms

import (
	"fmt"
	"math/bits"

	"repro/internal/model"
)

// ColeVishkinResult reports a Cole–Vishkin MIS computation on a
// directed cycle.
type ColeVishkinResult struct {
	// MIS is the computed maximal independent set.
	MIS *model.Solution
	// Rounds is the total number of communication rounds used: the
	// O(log* n) colour-reduction phase plus O(1) cleanup.
	Rounds int
	// Colors is the final 3-colouring (values 0..2).
	Colors []int
}

// The Cole–Vishkin pipeline runs on the typed word lane: the whole
// node state is one packed uint64 and every broadcast is the state
// word with the node-local bit masked off. Layout:
//
//	bits 0..61  colour (initially the identifier)
//	bit 62      state only: the local slot index of the in-arc
//	bit 63      inMIS
//
// Colour and membership travel in one word, so a Step is pure integer
// arithmetic on two uint64 columns — no boxing, no pointer chase.
const (
	cvColorBits = 62
	cvColorMask = uint64(1)<<cvColorBits - 1
	cvPredSlot1 = uint64(1) << 62
	cvMISBit    = uint64(1) << 63
)

// ColeVishkinMIS computes a maximal independent set on a directed
// cycle in the ID model in O(log* id) + O(1) rounds: the classical
// Cole–Vishkin [1986] colour reduction from identifiers to 6 colours,
// the shift-down reduction from 6 to 3 colours, and a 3-round greedy
// sweep turning the colouring into an MIS. This is the algorithm
// behind Fig. 2's separation: it is fast in the ID model, needs Θ(n)
// time in OI, and is impossible in PO.
//
// The host must be a consistently oriented cycle (every node with out-
// and in-degree 1) with unique non-negative identifiers. As is
// standard in the LOCAL model, the nodes know the identifier space
// bound (poly(n)) and hence the reduction-step horizon S.
//
// Execution goes through the typed word-lane engine; the untyped
// RoundAlgo formulation survives as the reference the differential
// tests pin this path against, byte for byte.
func ColeVishkinMIS(h *model.Host, ids []int) (*ColeVishkinResult, error) {
	return coleVishkinOn(model.NewWordEngine(h), h, ids)
}

// coleVishkinOn is ColeVishkinMIS on a caller-provided engine, so the
// service layer can arm the engine with a cancellation context (see
// ColeVishkinMISCtx) and repeated trials can reuse one message plane.
func coleVishkinOn(e *model.WordEngine, h *model.Host, ids []int) (*ColeVishkinResult, error) {
	steps, last, err := cvPlan(h, ids)
	if err != nil {
		return nil, err
	}
	col, rounds, err := e.RunStates(ids, coleVishkinWordAlgo(steps, last), last+2)
	if err != nil {
		return nil, fmt.Errorf("algorithms: Cole–Vishkin: %w", err)
	}
	res := &ColeVishkinResult{
		MIS:    model.NewSolution(model.VertexKind, h.G.N()),
		Rounds: rounds,
		Colors: make([]int, h.G.N()),
	}
	for v, w := range col {
		c := int(w & cvColorMask)
		res.MIS.Vertices[v] = w&cvMISBit != 0
		res.Colors[v] = c
		if c < 0 || c > 2 {
			return nil, fmt.Errorf("algorithms: node %d ended with colour %d", v, c)
		}
	}
	return res, nil
}

// cvPlan validates a Cole–Vishkin instance and returns the reduction
// horizon (steps) and the halting round (last).
func cvPlan(h *model.Host, ids []int) (steps, last int, err error) {
	if !h.D.IsRegularDigraph(1) {
		return 0, 0, fmt.Errorf("algorithms: Cole–Vishkin needs a consistently oriented cycle")
	}
	if len(ids) != h.G.N() {
		return 0, 0, fmt.Errorf("algorithms: %d ids for %d nodes", len(ids), h.G.N())
	}
	maxID := 0
	for _, id := range ids {
		if id < 0 {
			return 0, 0, fmt.Errorf("algorithms: negative id %d", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	if uint64(maxID) > cvColorMask {
		return 0, 0, fmt.Errorf("algorithms: id %d exceeds the %d-bit colour lane", maxID, cvColorBits)
	}
	steps = cvSteps(maxID)
	return steps, steps + 6, nil
}

// coleVishkinWordAlgo is the word-lane Cole–Vishkin pipeline, shared
// by the clean run and the fault-schedule run. Round schedule (every
// live node broadcasts its colour and membership every round):
//
//	rounds 1..steps          — CV recolour on the predecessor's colour
//	rounds steps+1..steps+3  — shift down colour 5, then 4, then 3
//	rounds steps+4..steps+6  — MIS sweep for colour 0, then 1, then 2
//
// The recolour step is bit-parallel: the lowest differing bit against
// the predecessor comes from one XOR and one trailing-zero count
// (guarded to 0 on equal colours, which on a clean run never happens
// but under faults — a dropped colour replaced by the zero word — is
// exactly the untyped reference's behaviour). A dropped message
// leaves the zero word in its place and a node transiently down
// resumes mid-schedule — both degrade the colouring rather than crash
// it, which is what the fault experiments measure. Halting is
// round >= last so a node that was down at the scheduled halting
// round still halts at its next up round (identical to == on clean
// runs).
func coleVishkinWordAlgo(steps, last int) model.WordAlgo {
	step := coleVishkinWordStep(steps, last)
	return model.WordAlgo{
		Init: func(v int, info model.NodeInfo) uint64 { return cvInit(info) },
		Step: func(state *uint64, round int, inbox []model.WordMsg, out *model.Outbox) bool {
			return step(state, round, inbox, out)
		},
		Out: func(state *uint64) model.Output {
			return model.Output{Member: *state&cvMISBit != 0}
		},
	}
}

// cvInit packs a node's starting state: the identifier in the colour
// lane plus the in-arc slot marker. Exactly one of the two
// letter-sorted slots is the in-arc (the predecessor on the oriented
// cycle); remember which.
func cvInit(info model.NodeInfo) uint64 {
	w := uint64(info.ID)
	if info.Letters[1].In {
		w |= cvPredSlot1
	}
	return w
}

// coleVishkinWordStep is the pipeline's step over the abstract send
// surface — the one core behind both the flat WordAlgo and the
// sharded ShardedWordAlgo, so the differential tests compare a single
// implementation against itself across planes.
func coleVishkinWordStep(steps, last int) func(state *uint64, round int, inbox []model.WordMsg, out model.WordSender) bool {
	return func(state *uint64, round int, inbox []model.WordMsg, out model.WordSender) bool {
		s := *state
		predSlot := int32(0)
		if s&cvPredSlot1 != 0 {
			predSlot = 1
		}
		// An undelivered direction leaves the zero word: colour 0,
		// not in the MIS — the typed image of the zero cvMsg.
		var pred, succ uint64
		for _, m := range inbox {
			if m.Slot == predSlot {
				pred = m.W
			} else {
				succ = m.W
			}
		}
		color := s & cvColorMask
		switch {
		case round == 0:
			// Nothing received yet; just broadcast below.
		case round <= steps:
			// Bit-parallel Cole–Vishkin reduction against the
			// predecessor.
			i := uint64(0)
			if x := color ^ pred&cvColorMask; x != 0 {
				i = uint64(bits.TrailingZeros64(x))
			}
			color = 2*i | color>>i&1
		case round <= steps+3:
			// Shift down 5 -> then 4 -> then 3.
			target := uint64(5 - (round - steps - 1))
			if color == target {
				color = cvFreeColor(pred&cvColorMask, succ&cvColorMask)
			}
		default:
			// MIS sweep for colour classes 0, 1, 2.
			class := uint64(round - steps - 4)
			if color == class && pred&cvMISBit == 0 && succ&cvMISBit == 0 {
				s |= cvMISBit
			}
		}
		s = s&^cvColorMask | color
		*state = s
		if round >= last {
			return true
		}
		out.BroadcastWord(s &^ cvPredSlot1)
		return false
	}
}

// CVRounds predicts the number of rounds ColeVishkinMIS uses for a
// given maximum identifier: the Θ(log* id) separation curve of the
// Fig. 2 experiment.
func CVRounds(maxID int) int { return cvSteps(maxID) + 6 }

// cvSteps returns a safe number of Cole–Vishkin reduction steps to
// bring colours from {0..maxID} into {0..5}: iterate
// bits -> ceil(log2 bits) + 1 until bits <= 3, plus one extra step to
// settle inside {0..5}.
func cvSteps(maxID int) int {
	bits := 1
	for 1<<bits <= maxID {
		bits++
	}
	steps := 0
	for bits > 3 {
		nb := 1
		for 1<<nb < bits {
			nb++
		}
		bits = nb + 1
		steps++
	}
	return steps + 2
}

// cvFreeColor returns the smallest colour in {0,1,2} unused by the
// two arguments.
func cvFreeColor(a, b uint64) uint64 {
	for c := uint64(0); c <= 2; c++ {
		if c != a && c != b {
			return c
		}
	}
	return 0 // unreachable: two values cannot block three colours
}

// freeColor is cvFreeColor on ints, retained for the untyped
// reference formulation exercised by the differential tests.
func freeColor(a, b int) int {
	for c := 0; c <= 2; c++ {
		if c != a && c != b {
			return c
		}
	}
	return 0 // unreachable: two values cannot block three colours
}

// lowestDifferingBit is the per-bit reference of the bit-parallel
// XOR/trailing-zeros reduction above (0 on equal arguments).
func lowestDifferingBit(a, b int) int {
	x := a ^ b
	if x == 0 {
		return 0
	}
	i := 0
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}

func bitOf(x, i int) int { return (x >> i) & 1 }
