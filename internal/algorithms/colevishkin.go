package algorithms

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/view"
)

// ColeVishkinResult reports a Cole–Vishkin MIS computation on a
// directed cycle.
type ColeVishkinResult struct {
	// MIS is the computed maximal independent set.
	MIS *model.Solution
	// Rounds is the total number of communication rounds used: the
	// O(log* n) colour-reduction phase plus O(1) cleanup.
	Rounds int
	// Colors is the final 3-colouring (values 0..2).
	Colors []int
}

// cvState is a node's state in the Cole–Vishkin pipeline.
type cvState struct {
	letters []view.Letter
	color   int
	inMIS   bool
}

// cvMsg is the per-round broadcast payload.
type cvMsg struct {
	color int
	inMIS bool
}

// ColeVishkinMIS computes a maximal independent set on a directed
// cycle in the ID model in O(log* id) + O(1) rounds: the classical
// Cole–Vishkin [1986] colour reduction from identifiers to 6 colours,
// the shift-down reduction from 6 to 3 colours, and a 3-round greedy
// sweep turning the colouring into an MIS. This is the algorithm
// behind Fig. 2's separation: it is fast in the ID model, needs Θ(n)
// time in OI, and is impossible in PO.
//
// The host must be a consistently oriented cycle (every node with out-
// and in-degree 1) with unique non-negative identifiers. As is
// standard in the LOCAL model, the nodes know the identifier space
// bound (poly(n)) and hence the reduction-step horizon S.
func ColeVishkinMIS(h *model.Host, ids []int) (*ColeVishkinResult, error) {
	if !h.D.IsRegularDigraph(1) {
		return nil, fmt.Errorf("algorithms: Cole–Vishkin needs a consistently oriented cycle")
	}
	if len(ids) != h.G.N() {
		return nil, fmt.Errorf("algorithms: %d ids for %d nodes", len(ids), h.G.N())
	}
	maxID := 0
	for _, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("algorithms: negative id %d", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	steps := cvSteps(maxID)
	last := steps + 6
	states, rounds, err := model.NewEngine(h).RunStates(ids, coleVishkinAlgo(steps, last), last+2)
	if err != nil {
		return nil, fmt.Errorf("algorithms: Cole–Vishkin: %w", err)
	}
	res := &ColeVishkinResult{
		MIS:    model.NewSolution(model.VertexKind, h.G.N()),
		Rounds: rounds,
		Colors: make([]int, h.G.N()),
	}
	for v, st := range states {
		s := st.(*cvState)
		res.MIS.Vertices[v] = s.inMIS
		res.Colors[v] = s.color
		if s.color < 0 || s.color > 2 {
			return nil, fmt.Errorf("algorithms: node %d ended with colour %d", v, s.color)
		}
	}
	return res, nil
}

// coleVishkinAlgo is the engine-native Cole–Vishkin pipeline, shared
// by the clean run and the fault-schedule run. Round schedule (every
// live node broadcasts (color, inMIS) on both arcs every round):
//
//	rounds 1..steps          — CV recolour on the predecessor's colour
//	rounds steps+1..steps+3  — shift down colour 5, then 4, then 3
//	rounds steps+4..steps+6  — MIS sweep for colour 0, then 1, then 2
//
// The outbox is written straight into the message plane (no per-step
// slice), so a million-node cycle runs with no per-round allocation
// beyond the cvMsg payload boxing. A dropped message leaves the zero
// cvMsg in its place and a node transiently down resumes mid-schedule
// — both degrade the colouring rather than crash it, which is exactly
// what the fault experiments measure. Halting is round >= last so a
// node that was down at the scheduled halting round still halts at
// its next up round (identical to == on clean runs).
func coleVishkinAlgo(steps, last int) model.EngineAlgo {
	return model.EngineAlgo{
		Init: func(info model.NodeInfo) any {
			return &cvState{letters: info.Letters, color: info.ID}
		},
		Step: func(state any, round int, inbox []model.Msg, out *model.Outbox) (any, bool) {
			s := state.(*cvState)
			var pred, succ cvMsg
			for _, m := range inbox {
				c := m.Data.(cvMsg)
				if m.L.In {
					pred = c // arrived on the in-arc: from the predecessor
				} else {
					succ = c
				}
			}
			switch {
			case round == 0:
				// Nothing received yet; just broadcast below.
			case round <= steps:
				// Cole–Vishkin reduction against the predecessor.
				i := lowestDifferingBit(s.color, pred.color)
				s.color = 2*i + bitOf(s.color, i)
			case round <= steps+3:
				// Shift down 5 -> then 4 -> then 3.
				target := 5 - (round - steps - 1)
				if s.color == target {
					s.color = freeColor(pred.color, succ.color)
				}
			default:
				// MIS sweep for colour classes 0, 1, 2.
				class := round - steps - 4
				if s.color == class && !pred.inMIS && !succ.inMIS {
					s.inMIS = true
				}
			}
			if round >= last {
				return s, true
			}
			for _, l := range s.letters {
				out.Send(l, cvMsg{color: s.color, inMIS: s.inMIS})
			}
			return s, false
		},
		Out: func(state any) model.Output {
			return model.Output{Member: state.(*cvState).inMIS}
		},
	}
}

// CVRounds predicts the number of rounds ColeVishkinMIS uses for a
// given maximum identifier: the Θ(log* id) separation curve of the
// Fig. 2 experiment.
func CVRounds(maxID int) int { return cvSteps(maxID) + 6 }

// cvSteps returns a safe number of Cole–Vishkin reduction steps to
// bring colours from {0..maxID} into {0..5}: iterate
// bits -> ceil(log2 bits) + 1 until bits <= 3, plus one extra step to
// settle inside {0..5}.
func cvSteps(maxID int) int {
	bits := 1
	for 1<<bits <= maxID {
		bits++
	}
	steps := 0
	for bits > 3 {
		nb := 1
		for 1<<nb < bits {
			nb++
		}
		bits = nb + 1
		steps++
	}
	return steps + 2
}

// freeColor returns the smallest colour in {0,1,2} unused by the two
// arguments.
func freeColor(a, b int) int {
	for c := 0; c <= 2; c++ {
		if c != a && c != b {
			return c
		}
	}
	return 0 // unreachable: two values cannot block three colours
}

func lowestDifferingBit(a, b int) int {
	x := a ^ b
	if x == 0 {
		return 0
	}
	i := 0
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}

func bitOf(x, i int) int { return (x >> i) & 1 }
