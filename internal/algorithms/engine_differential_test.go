package algorithms

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/digraph"
	"repro/internal/graph"
	"repro/internal/host"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/view"
)

// diffHosts is the engine-differential host set (Petersen, torus,
// random-regular, Cayley).
func diffHosts(t *testing.T) map[string]*model.Host {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	hosts := map[string]*model.Host{
		"petersen":      model.HostFromGraph(graph.Petersen()),
		"torus6x6":      model.HostFromGraph(graph.Torus(6, 6)),
		"randomregular": model.HostFromGraph(graph.RandomRegular(18, 3, rng)),
	}
	ch := host.MustParse("cayley:H,level=2,m=4,k=2,seed=1")
	hosts["cayley"] = &model.Host{D: ch.D, G: ch.G}
	return hosts
}

func dcycleHost(t testing.TB, n int) *model.Host {
	t.Helper()
	b := digraph.NewBuilder(n, 1)
	for i := 0; i < n; i++ {
		b.MustAddArc(i, (i+1)%n, 0)
	}
	h, err := model.NewHost(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// cvState and cvMsg are the boxed state and payload of the untyped
// reference formulation: the production pipeline packs both into one
// uint64 on the typed word lane (see coleVishkinWordAlgo), and this
// pair is what the pinning below proves it equivalent to.
type cvState struct {
	letters []view.Letter
	color   int
	inMIS   bool
}

type cvMsg struct {
	color int
	inMIS bool
}

// cvRoundAlgo is the classical slice-returning form of the
// Cole–Vishkin pipeline, built from the same helpers as the engine
// form — the executable reference the typed word-lane port is pinned
// against.
func cvRoundAlgo(maxID int) (model.RoundAlgo, int) {
	steps := cvSteps(maxID)
	last := steps + 6
	return model.RoundAlgo{
		Init: func(info model.NodeInfo) any {
			return &cvState{letters: info.Letters, color: info.ID}
		},
		Step: func(state any, round int, inbox []model.Msg) (any, []model.Msg, bool) {
			s := state.(*cvState)
			var pred, succ cvMsg
			for _, m := range inbox {
				c := m.Data.(cvMsg)
				if m.L.In {
					pred = c
				} else {
					succ = c
				}
			}
			switch {
			case round == 0:
			case round <= steps:
				i := lowestDifferingBit(s.color, pred.color)
				s.color = 2*i + bitOf(s.color, i)
			case round <= steps+3:
				target := 5 - (round - steps - 1)
				if s.color == target {
					s.color = freeColor(pred.color, succ.color)
				}
			default:
				class := round - steps - 4
				if s.color == class && !pred.inMIS && !succ.inMIS {
					s.inMIS = true
				}
			}
			if round == last {
				return s, nil, true
			}
			out := make([]model.Msg, 0, len(s.letters))
			for _, l := range s.letters {
				out = append(out, model.Msg{L: l, Data: cvMsg{color: s.color, inMIS: s.inMIS}})
			}
			return s, out, false
		},
		Out: func(state any) model.Output {
			return model.Output{Member: state.(*cvState).inMIS}
		},
	}, last
}

// TestColeVishkinEngineVsReference pins the engine-native
// ColeVishkinMIS against the RoundAlgo reference executed by
// RunRoundsReference: identical MIS, colours and round counts, at
// parallelism 1 and 8.
func TestColeVishkinEngineVsReference(t *testing.T) {
	for _, n := range []int{12, 33, 128} {
		h := dcycleHost(t, n)
		rng := rand.New(rand.NewSource(int64(n)))
		ids := rng.Perm(8 * n)[:n]
		maxID := 0
		for _, id := range ids {
			if id > maxID {
				maxID = id
			}
		}
		algo, last := cvRoundAlgo(maxID)
		refStates, refRounds, err := model.RunRoundsReference(h, ids, algo, last+2)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			res, err := ColeVishkinMIS(h, ids)
			par.Set(old)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			if res.Rounds != refRounds {
				t.Fatalf("n=%d p=%d: %d rounds, reference %d", n, p, res.Rounds, refRounds)
			}
			for v, st := range refStates {
				s := st.(*cvState)
				if res.MIS.Vertices[v] != s.inMIS || res.Colors[v] != s.color {
					t.Fatalf("n=%d p=%d node %d: engine (%v,%d) vs reference (%v,%d)",
						n, p, v, res.MIS.Vertices[v], res.Colors[v], s.inMIS, s.color)
				}
			}
		}
	}
}

// TestRandomizedMatchingEngineVsReference: the engine-run proposal
// round produces exactly the matching the classical reference loop
// produces from the same pre-drawn proposals, on every differential
// host, at parallelism 1 and 8.
func TestRandomizedMatchingEngineVsReference(t *testing.T) {
	const seed = 7
	for name, h := range diffHosts(t) {
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			sol := RandomizedMatching(h, rand.New(rand.NewSource(seed)))
			par.Set(old)

			// Reference: identical draw, classical round loop.
			g := h.G
			n := g.N()
			rng := rand.New(rand.NewSource(seed))
			proposal := make([]int, n)
			letters := make([]view.Letter, n)
			for v := 0; v < n; v++ {
				proposal[v] = -1
				if d := g.Degree(v); d > 0 {
					proposal[v] = int(g.Neighbors(v)[rng.Intn(d)])
					letters[v] = letterTo(h, v, proposal[v])
				}
			}
			type mst struct {
				v       int
				matched bool
			}
			next := 0
			algo := model.RoundAlgo{
				Init: func(model.NodeInfo) any { s := &mst{v: next}; next++; return s },
				Step: func(state any, round int, inbox []model.Msg) (any, []model.Msg, bool) {
					s := state.(*mst)
					if round == 0 {
						if proposal[s.v] >= 0 {
							return s, []model.Msg{{L: letters[s.v]}}, false
						}
						return s, nil, false
					}
					if proposal[s.v] >= 0 {
						for i := range inbox {
							if inbox[i].L == letters[s.v] {
								s.matched = true
							}
						}
					}
					return s, nil, true
				},
				Out: func(any) model.Output { return model.Output{} },
			}
			states, _, err := model.RunRoundsReference(h, nil, algo, 3)
			if err != nil {
				t.Fatalf("%s: reference: %v", name, err)
			}
			want := model.NewSolution(model.EdgeKind, n)
			for _, st := range states {
				s := st.(*mst)
				if s.matched {
					want.Edges[graph.NewEdge(s.v, proposal[s.v])] = true
				}
			}
			if !reflect.DeepEqual(sol.EdgeSet(), want.EdgeSet()) {
				t.Fatalf("%s p=%d: engine matching %v differs from reference %v",
					name, p, sol.EdgeSet(), want.EdgeSet())
			}
		}
	}
}

// BenchmarkColeVishkinReference1024 runs the RoundAlgo form of
// Cole–Vishkin through the retained reference loop — the pre-engine
// execution path, kept benchmarked so BenchmarkColeVishkin1024's win
// stays visible (see BENCH_pr5.json).
func BenchmarkColeVishkinReference1024(b *testing.B) {
	h := dcycleHost(b, 1024)
	rng := rand.New(rand.NewSource(6))
	ids := rng.Perm(8192)[:1024]
	maxID := 0
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	algo, last := cvRoundAlgo(maxID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.RunRoundsReference(h, ids, algo, last+2); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEDSOneOutOperationalDifferential: the EDSOneOut operational run
// through the engine (SimulatePORounds) coincides with the gathered
// simulation and the direct ball evaluation.
func TestEDSOneOutOperationalDifferential(t *testing.T) {
	alg := EDSOneOut()
	for name, h := range diffHosts(t) {
		direct, err := model.RunPO(h, alg, model.EdgeKind)
		if err != nil {
			t.Fatalf("%s: RunPO: %v", name, err)
		}
		sim, err := model.SimulatePO(h, alg, model.EdgeKind)
		if err != nil {
			t.Fatalf("%s: SimulatePO: %v", name, err)
		}
		for _, p := range []int{1, 8} {
			old := par.Set(p)
			eng, err := model.SimulatePORounds(h, alg, model.EdgeKind)
			par.Set(old)
			if err != nil {
				t.Fatalf("%s p=%d: SimulatePORounds: %v", name, p, err)
			}
			if !reflect.DeepEqual(eng.EdgeSet(), direct.EdgeSet()) ||
				!reflect.DeepEqual(eng.EdgeSet(), sim.EdgeSet()) {
				t.Fatalf("%s p=%d: operational EDS run differs", name, p)
			}
		}
	}
}
