package algorithms

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

func floodHost(n int) *model.Host { return model.HostFromGraph(graph.Cycle(n)) }

func TestFloodMaxConverges(t *testing.T) {
	n := 24
	h := floodHost(n)
	ids := rand.New(rand.NewSource(3)).Perm(8 * n)[:n]
	leader := 0
	for _, id := range ids {
		if id > leader {
			leader = id
		}
	}
	// Horizon >= diameter: every node learns the leader.
	res, err := FloodMax(h, ids, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != leader || res.Converged != n {
		t.Fatalf("FloodMax = leader %d converged %d (want %d, %d)", res.Leader, res.Converged, leader, n)
	}
	// Horizon 1: only the leader's neighbourhood knows it.
	res, err = FloodMax(h, ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged >= n || res.Converged < 1 {
		t.Fatalf("1-round flood converged %d of %d", res.Converged, n)
	}
}

func TestFloodMaxValidation(t *testing.T) {
	h := floodHost(8)
	if _, err := FloodMax(h, []int{1, 2}, 4); err == nil {
		t.Error("short id slice accepted")
	}
	if _, err := FloodMax(h, []int{-1, 2, 3, 4, 5, 6, 7, 8}, 4); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := FloodMax(h, []int{1, 2, 3, 4, 5, 6, 7, 8}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

// TestFloodMaxFaultyDeterministic: the faulty run is a pure function
// of (host, ids, rounds, profile, seed) — two runs agree exactly.
// Crashed nodes are excluded from convergence.
func TestFloodMaxFaultyDeterministic(t *testing.T) {
	n := 32
	h := floodHost(n)
	ids := rand.New(rand.NewSource(9)).Perm(8 * n)[:n]
	run := func() *FloodMaxResult {
		sched := model.MustParseProfile("crash:f=4,by=2").New(h, 17)
		res, err := FloodMaxFaultyOn(model.NewWordEngine(h), h, ids, n, sched)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulty flood not deterministic:\n  %+v\n  %+v", a, b)
	}
	if a.Report.NumCrashed == 0 {
		t.Fatal("crash profile crashed nobody")
	}
	if a.Converged > n-a.Report.NumCrashed {
		t.Fatalf("converged %d > surviving %d", a.Converged, n-a.Report.NumCrashed)
	}
}

// TestFloodMaxResume: checkpoint mid-flood, resume on a fresh engine,
// same result as the uninterrupted run — the workload the CI
// crash-recovery drill kills and restarts.
func TestFloodMaxResume(t *testing.T) {
	n := 32
	h := floodHost(n)
	ids := rand.New(rand.NewSource(9)).Perm(8 * n)[:n]
	sched := func() model.Schedule { return model.MustParseProfile("lossy:p=0.1").New(h, 23) }

	control, err := FloodMaxFaultyOn(model.NewWordEngine(h), h, ids, n, sched())
	if err != nil {
		t.Fatal(err)
	}

	var mid []byte
	ck := &model.Checkpointer{Every: n / 2, Sink: func(s *model.Snapshot) error {
		if mid == nil {
			mid = s.Encode()
		}
		return nil
	}}
	if _, err := FloodMaxFaultyOn(model.NewWordEngine(h).WithCheckpoints(ck), h, ids, n, sched()); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	snap, err := model.DecodeSnapshot(mid)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := FloodMaxFaultyOn(model.NewWordEngine(h).Resume(snap), h, ids, n, sched())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(control, resumed) {
		t.Fatalf("resumed flood differs:\n  control %+v\n  resumed %+v", control, resumed)
	}
}
