package algorithms

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
)

// This file runs the repo's two flagship operational algorithms —
// Cole–Vishkin MIS and the one-round randomized matching — under a
// fault schedule, and measures what survives: the clean variants
// enforce their guarantees as hard errors, while these return the
// degraded output together with survivor-safety counts (violations
// among the nodes that did not crash), which is what the E17
// degradation experiments plot. Every run is deterministic in
// (host, ids/rng, schedule), so a degradation data point reproduces
// from its seed and profile descriptor alone.

// faultSlack is the extra round budget granted to faulty runs beyond
// the clean horizon: a node transiently down at its halting round
// halts at its next up round, so crash-recover and churn schedules
// need headroom the clean schedule does not. 256 rounds makes a
// stuck run astronomically unlikely (a node must be down 256
// consecutive rounds) while costing nothing when unused — only
// non-halted nodes occupy the worklist.
const faultSlack = 256

// FaultyCVResult reports a Cole–Vishkin run under a fault schedule.
type FaultyCVResult struct {
	// MIS is the computed vertex set (crashed nodes never members).
	MIS *model.Solution
	// Rounds is the number of rounds actually executed.
	Rounds int
	// Report summarises the injected faults.
	Report *model.FaultReport
	// Violations counts surviving adjacent pairs that are both in the
	// set — independence failures caused by lost coordination.
	Violations int
	// Uncovered counts surviving non-members with no surviving member
	// neighbour — maximality failures (legitimate degradation near
	// crashed regions, guaranteed 0 on a clean schedule).
	Uncovered int
}

// ColeVishkinMISFaulty is ColeVishkinMIS under a fault schedule. The
// clean variant's postconditions (a proper 3-colouring, an MIS) can
// no longer be promised — dropped colours desynchronise the
// reduction and crashed nodes leave their neighbourhoods
// uncoordinated — so instead of failing, the run reports the
// survivor-safety counts of CVSurvivorSafety. A nil schedule
// reproduces the clean result with zero counts.
func ColeVishkinMISFaulty(h *model.Host, ids []int, sched model.Schedule) (*FaultyCVResult, error) {
	return coleVishkinFaultyOn(model.NewWordEngine(h), h, ids, sched)
}

// coleVishkinFaultyOn is ColeVishkinMISFaulty on a caller-provided
// engine (see coleVishkinOn).
func coleVishkinFaultyOn(e *model.WordEngine, h *model.Host, ids []int, sched model.Schedule) (*FaultyCVResult, error) {
	steps, last, err := cvPlan(h, ids)
	if err != nil {
		return nil, err
	}
	col, rounds, rep, err := e.RunStatesFaulty(ids, coleVishkinWordAlgo(steps, last), last+2+faultSlack, sched)
	if err != nil {
		return nil, fmt.Errorf("algorithms: faulty Cole–Vishkin: %w", err)
	}
	res := &FaultyCVResult{
		MIS:    model.NewSolution(model.VertexKind, h.G.N()),
		Rounds: rounds,
		Report: rep,
	}
	for v, w := range col {
		if rep.CrashedNode(v) {
			continue
		}
		res.MIS.Vertices[v] = w&cvMISBit != 0
	}
	res.Violations, res.Uncovered = CVSurvivorSafety(h, rep, res.MIS)
	return res, nil
}

// CVSurvivorSafety checks an independent-set solution among the
// surviving (non-crashed) nodes: violations counts surviving
// adjacent member pairs, uncovered counts surviving non-members
// whose surviving neighbours are all non-members. Both are 0 exactly
// when the solution restricted to survivors is an MIS of the
// survivor-induced subgraph.
func CVSurvivorSafety(h *model.Host, rep *model.FaultReport, mis *model.Solution) (violations, uncovered int) {
	g := h.G
	for v := 0; v < g.N(); v++ {
		if rep.CrashedNode(v) {
			continue
		}
		if mis.Vertices[v] {
			for _, u := range g.Neighbors(v) {
				if int(u) > v && !rep.CrashedNode(int(u)) && mis.Vertices[u] {
					violations++
				}
			}
			continue
		}
		covered := false
		for _, u := range g.Neighbors(v) {
			if !rep.CrashedNode(int(u)) && mis.Vertices[u] {
				covered = true
				break
			}
		}
		if !covered {
			uncovered++
		}
	}
	return violations, uncovered
}

// FaultyMatchingResult reports a randomized-matching run under a
// fault schedule.
type FaultyMatchingResult struct {
	// Matching is the selected edge set, restricted to edges whose
	// endpoints both survived.
	Matching *model.Solution
	// Report summarises the injected faults.
	Report *model.FaultReport
	// Conflicts counts vertices incident to more than one selected
	// edge. The proposal protocol keeps this 0 under every schedule —
	// each node only ever selects the one edge it proposed — and the
	// checker verifies that safety property rather than assuming it.
	Conflicts int
}

// RandomizedMatchingFaulty is RandomizedMatching under a fault
// schedule: the same sequentially pre-drawn proposals are exchanged
// over the faulty plane, so a dropped direction loses at most that
// edge and the output remains a matching — losses shrink it, they
// never corrupt it. Edges with a crashed endpoint are excluded. A nil
// schedule reproduces the clean matching for the same rng stream.
func RandomizedMatchingFaulty(h *model.Host, rng *rand.Rand, sched model.Schedule) (*FaultyMatchingResult, error) {
	return randomizedMatchingFaultyOn(model.NewWordEngine(h), h, rng, sched)
}

// randomizedMatchingFaultyOn is RandomizedMatchingFaulty on a
// caller-provided engine (see coleVishkinOn).
func randomizedMatchingFaultyOn(e *model.WordEngine, h *model.Host, rng *rand.Rand, sched model.Schedule) (*FaultyMatchingResult, error) {
	n := h.G.N()
	proposal, states := drawProposals(h, rng)
	col, rep, err := runProposalsFaulty(e, states, sched)
	if err != nil {
		return nil, err
	}
	sol := model.NewSolution(model.EdgeKind, n)
	for v := 0; v < n; v++ {
		if col[v]&mMatched != 0 && !rep.CrashedNode(v) && !rep.CrashedNode(proposal[v]) {
			sol.Edges[graph.NewEdge(v, proposal[v])] = true
		}
	}
	return &FaultyMatchingResult{
		Matching:  sol,
		Report:    rep,
		Conflicts: MatchingConflicts(n, sol),
	}, nil
}

// runProposalsFaulty executes the proposal round under the schedule
// and returns the packed state column alongside the report.
func runProposalsFaulty(e *model.WordEngine, states []proposeState, sched model.Schedule) ([]uint64, *model.FaultReport, error) {
	col, _, rep, err := e.RunStatesFaulty(nil, proposalWordAlgo(states), 3+faultSlack, sched)
	if err != nil {
		return nil, nil, fmt.Errorf("algorithms: faulty randomized matching: %w", err)
	}
	return col, rep, nil
}

// MatchingConflicts counts vertices incident to two or more selected
// edges — 0 exactly when the edge set is a matching.
func MatchingConflicts(n int, sol *model.Solution) int {
	deg := make([]int, n)
	for e := range sol.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	conflicts := 0
	for _, d := range deg {
		if d > 1 {
			conflicts++
		}
	}
	return conflicts
}
