package algorithms

import (
	"context"
	"fmt"

	"repro/internal/model"
)

// FloodMax is the long-horizon workload of the job subsystem: every
// node floods the largest identifier it has heard for a caller-chosen
// number of rounds and reports whether the flood converged (every
// surviving node knows the global maximum). Unlike Cole–Vishkin's
// O(log* n) schedule, the horizon here is a free parameter, which is
// what makes FloodMax the natural subject for checkpoint/resume and
// crash-recovery drills: a run can be made arbitrarily long on any
// host, its state is one uint64 per node (the default word codec
// applies), and its result is a deterministic function of (host, ids,
// rounds, profile, seed).

// floodFaultSlack mirrors the gather workloads: headroom beyond the
// clean horizon for nodes transiently down at their halting round.
const floodFaultSlack = 256

// FloodMaxResult reports a FloodMax run.
type FloodMaxResult struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Leader is the global maximum identifier (the value a complete
	// flood converges to).
	Leader int
	// Converged counts surviving nodes that learned the leader.
	Converged int
	// Report is the fault report; nil on clean runs.
	Report *model.FaultReport
}

// floodMaxWordAlgo floods the max-id word for the given horizon.
// Halting is round >= rounds (not ==) so a node transiently down at
// its halting round halts at its next up round, like the other word
// workloads.
func floodMaxWordAlgo(rounds int) model.WordAlgo {
	return model.WordAlgo{
		Init: func(v int, info model.NodeInfo) uint64 { return uint64(info.ID) },
		Step: func(state *uint64, round int, inbox []model.WordMsg, out *model.Outbox) bool {
			for _, m := range inbox {
				if m.W > *state {
					*state = m.W
				}
			}
			if round >= rounds {
				return true
			}
			out.BroadcastWord(*state)
			return false
		},
		Out: func(state *uint64) model.Output { return model.Output{} },
	}
}

// floodPlan validates a FloodMax instance and returns the leader.
func floodPlan(h *model.Host, ids []int, rounds int) (leader int, err error) {
	if len(ids) != h.G.N() {
		return 0, fmt.Errorf("algorithms: FloodMax: %d ids for %d nodes", len(ids), h.G.N())
	}
	if rounds < 1 {
		return 0, fmt.Errorf("algorithms: FloodMax: rounds must be >= 1 (got %d)", rounds)
	}
	for _, id := range ids {
		if id < 0 {
			return 0, fmt.Errorf("algorithms: FloodMax: negative id %d", id)
		}
		if id > leader {
			leader = id
		}
	}
	return leader, nil
}

// FloodMax runs the flood on a fresh engine. See FloodMaxOn.
func FloodMax(h *model.Host, ids []int, rounds int) (*FloodMaxResult, error) {
	return FloodMaxOn(model.NewWordEngine(h), h, ids, rounds)
}

// FloodMaxCtx is FloodMax under cooperative cancellation.
func FloodMaxCtx(ctx context.Context, h *model.Host, ids []int, rounds int) (*FloodMaxResult, error) {
	return FloodMaxOn(wordEngineCtx(ctx, h), h, ids, rounds)
}

// FloodMaxOn runs the flood on a caller-provided engine, so the job
// runner can arm it with a cancellation context, a Checkpointer and a
// resume snapshot before handing it over.
func FloodMaxOn(e *model.WordEngine, h *model.Host, ids []int, rounds int) (*FloodMaxResult, error) {
	leader, err := floodPlan(h, ids, rounds)
	if err != nil {
		return nil, err
	}
	col, executed, err := e.RunStates(ids, floodMaxWordAlgo(rounds), rounds+2)
	if err != nil {
		return nil, fmt.Errorf("algorithms: FloodMax: %w", err)
	}
	res := &FloodMaxResult{Rounds: executed, Leader: leader}
	for _, w := range col {
		if int(w) == leader {
			res.Converged++
		}
	}
	return res, nil
}

// FloodMaxFaultyCtx is FloodMaxFaultyOn on a fresh context-armed
// engine.
func FloodMaxFaultyCtx(ctx context.Context, h *model.Host, ids []int, rounds int, sched model.Schedule) (*FloodMaxResult, error) {
	return FloodMaxFaultyOn(wordEngineCtx(ctx, h), h, ids, rounds, sched)
}

// FloodMaxFaultyOn is FloodMaxOn under a fault schedule: crashed
// nodes are excluded from the convergence count, and the horizon gets
// the standard slack so transiently down nodes can still halt.
func FloodMaxFaultyOn(e *model.WordEngine, h *model.Host, ids []int, rounds int, sched model.Schedule) (*FloodMaxResult, error) {
	leader, err := floodPlan(h, ids, rounds)
	if err != nil {
		return nil, err
	}
	col, executed, rep, err := e.RunStatesFaulty(ids, floodMaxWordAlgo(rounds), rounds+2+floodFaultSlack, sched)
	if err != nil {
		return nil, fmt.Errorf("algorithms: FloodMax: %w", err)
	}
	res := &FloodMaxResult{Rounds: executed, Leader: leader, Report: rep}
	for v, w := range col {
		if rep.CrashedNode(v) {
			continue
		}
		if int(w) == leader {
			res.Converged++
		}
	}
	return res, nil
}
